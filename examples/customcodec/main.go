// Customcodec: the §3.3 plug-in architecture. A new codec — a toy XOR-RLE
// scheme — is registered at runtime with a native Go encoder and a
// decoder written in VXC, compiled on the fly to an x86-32 ELF by the
// bundled toolchain. Archives written with it remain decodable by ANY
// future VXA reader, because the decoder travels in the archive.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"

	"vxa"
	"vxa/internal/codec"
	"vxa/internal/vxcc"
)

// Format "XRL1": magic, then tokens: 0x00 len byte v (run of len copies
// of v), 0x01 v (literal). Bytes are XOR-whitened with a rolling key.
func encode(dst io.Writer, src []byte) error {
	out := []byte("XRL1")
	key := byte(0xA5)
	for i := 0; i < len(src); {
		j := i
		for j < len(src) && src[j] == src[i] && j-i < 255 {
			j++
		}
		if j-i >= 3 {
			out = append(out, 0x00, byte(j-i), src[i]^key)
		} else {
			j = i + 1
			out = append(out, 0x01, src[i]^key)
		}
		key = key*31 + 7
		i = j
	}
	_, err := dst.Write(out)
	return err
}

func decode(dst io.Writer, src io.Reader) error {
	data, err := io.ReadAll(src)
	if err != nil {
		return err
	}
	if len(data) < 4 || string(data[:4]) != "XRL1" {
		return fmt.Errorf("xrle: bad magic")
	}
	data = data[4:]
	key := byte(0xA5)
	var out []byte
	for i := 0; i < len(data); {
		switch data[i] {
		case 0x00:
			n, v := int(data[i+1]), data[i+2]^key
			for k := 0; k < n; k++ {
				out = append(out, v)
			}
			i += 3
		case 0x01:
			out = append(out, data[i+1]^key)
			i += 2
		default:
			return fmt.Errorf("xrle: bad token")
		}
		key = key*31 + 7
	}
	_, err = dst.Write(out)
	return err
}

// The same decoder in VXC — this is what gets embedded in archives.
var decoderSrc = vxcc.Source{Name: "xrle.vxc", Text: `
int main(void) {
	while (1) {
		__stdio_reset();
		if (mustgetb() != 'X' || mustgetb() != 'R' || mustgetb() != 'L' || mustgetb() != '1')
			die("not an XRL1 stream");
		int key = 0xA5;
		int tok;
		while ((tok = getb()) >= 0) {
			if (tok == 0) {
				int n = mustgetb();
				int v = mustgetb() ^ key;
				while (n-- > 0) putb(v);
			} else if (tok == 1) {
				putb(mustgetb() ^ key);
			} else {
				die("bad token");
			}
			key = ((key * 31) + 7) & 0xFF;
		}
		vxa_done();
	}
	return 0;
}`}

func main() {
	codec.Register(&codec.Codec{
		Name:   "xrle",
		Desc:   "Example plug-in: XOR-whitened run-length coder",
		Output: "raw data",
		Kind:   codec.GeneralPurpose,
		Recognize: func(d []byte) bool {
			return len(d) >= 4 && string(d[:4]) == "XRL1"
		},
		Encode:  encode,
		Decode:  decode,
		Sources: []vxcc.Source{decoderSrc},
	})

	input := bytes.Repeat([]byte{0, 0, 0, 0, 0, 0, 7, 7, 7, 7, 9}, 2000)
	var buf bytes.Buffer
	w := vxa.NewWriter(&buf, vxa.WriterOptions{GeneralCodec: "xrle"})
	if err := w.AddFile("sensor.dat", input, 0644); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d bytes as %d with the plug-in codec\n", len(input), buf.Len())

	r, err := vxa.OpenReader(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	e := r.Entries()[0]
	fmt.Printf("entry %s uses codec %q\n", e.Name, e.Codec)

	// Extract through the ARCHIVED decoder (the embedded ELF), proving
	// the archive is self-contained even for a codec nobody else has.
	ctx := context.Background()
	out, err := r.ExtractBytes(ctx, &e, vxa.WithMode(vxa.AlwaysVXA))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived decoder reproduced the input exactly: %v\n", bytes.Equal(out, input))

	if errs := r.Verify(ctx); len(errs) == 0 {
		fmt.Println("integrity check with the plug-in's embedded decoder: OK")
	}
}
