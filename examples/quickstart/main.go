// Quickstart: create a VXA archive in memory, list it, extract a file
// through the fast native path, stream it through the archived decoder
// running in the sandboxed VM, then run the integrity check — the v2
// context-first API end to end.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"strings"

	"vxa"
)

func main() {
	ctx := context.Background()
	document := strings.Repeat(
		"VXA archives carry their own decoders, so the data outlives the codec. ", 300)

	// 1. Write an archive.
	var buf bytes.Buffer
	w := vxa.NewWriter(&buf, vxa.WriterOptions{})
	if err := w.AddFile("docs/durability.txt", []byte(document), 0644); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d bytes for %d bytes of input (%d embedded decoder)\n",
		buf.Len(), len(document), w.DecoderCount())

	// 2. Read it back. (vxa.OpenFile streams archives from disk without
	// loading them; OpenReader wraps bytes already in memory.)
	r, err := vxa.OpenReader(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	for _, e := range r.Entries() {
		fmt.Printf("  %-24s %6d -> %6d bytes, codec %s\n", e.Name, e.USize, e.CSize, e.Codec)
	}

	// 3. Extract: the native fast path buffered, then the archived VXA
	// decoder as a stream — decoded bytes are pulled incrementally from
	// the sandboxed VM, so output never has to be resident.
	e := &r.Entries()[0]
	native, err := r.ExtractBytes(ctx, e, vxa.WithMode(vxa.NativeFirst))
	if err != nil {
		log.Fatal(err)
	}
	stream, err := r.Extract(ctx, e, vxa.WithMode(vxa.AlwaysVXA))
	if err != nil {
		log.Fatal(err)
	}
	virtualized, err := io.ReadAll(stream)
	stream.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native and virtualized extraction agree: %v\n",
		bytes.Equal(native, virtualized) && string(native) == document)

	// 4. Integrity check — always uses the archived decoders (§2.3).
	if errs := r.Verify(ctx); len(errs) == 0 {
		fmt.Println("integrity check: OK")
	} else {
		log.Fatal(errs[0])
	}
}
