// Quickstart: create a VXA archive in memory, list it, extract a file
// through the fast native path and again through the archived decoder
// running in the sandboxed VM, then run the integrity check.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"vxa"
)

func main() {
	document := strings.Repeat(
		"VXA archives carry their own decoders, so the data outlives the codec. ", 300)

	// 1. Write an archive.
	var buf bytes.Buffer
	w := vxa.NewWriter(&buf, vxa.WriterOptions{})
	if err := w.AddFile("docs/durability.txt", []byte(document), 0644); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d bytes for %d bytes of input (%d embedded decoder)\n",
		buf.Len(), len(document), w.DecoderCount())

	// 2. Read it back.
	r, err := vxa.OpenReader(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range r.Entries() {
		fmt.Printf("  %-24s %6d -> %6d bytes, codec %s\n", e.Name, e.USize, e.CSize, e.Codec)
	}

	// 3. Extract: native fast path, then the archived VXA decoder.
	e := r.Entries()[0]
	native, err := r.Extract(&e, vxa.ExtractOptions{Mode: vxa.NativeFirst})
	if err != nil {
		log.Fatal(err)
	}
	virtualized, err := r.Extract(&e, vxa.ExtractOptions{Mode: vxa.AlwaysVXA})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native and virtualized extraction agree: %v\n",
		bytes.Equal(native, virtualized) && string(native) == document)

	// 4. Integrity check — always uses the archived decoders (§2.3).
	if errs := r.Verify(vxa.ExtractOptions{}); len(errs) == 0 {
		fmt.Println("integrity check: OK")
	} else {
		log.Fatal(errs[0])
	}
}
