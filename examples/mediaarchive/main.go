// Mediaarchive: the paper's motivating workload — archive a mixed media
// collection (images, audio, pre-compressed files) and watch the writer
// pick a specialized codec per file type. With -lossy, images and audio
// are compressed with the lossy DCT and ADPCM codecs; decoders for every
// format travel inside the archive.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"flag"
	"fmt"
	"log"

	"vxa"
	"vxa/internal/bmp"
	"vxa/internal/corpus"
	"vxa/internal/wav"
)

func main() {
	lossy := flag.Bool("lossy", true, "opt in to lossy media codecs")
	flag.Parse()

	// Synthesize a small media collection.
	photo := bmp.Encode(corpus.Image(160, 120, 7))
	song := wav.Encode(corpus.Audio(44100, 2, 8)) // one second of stereo
	notes := corpus.Text(20000, 9)
	var gz bytes.Buffer
	gw := gzip.NewWriter(&gz)
	gw.Write(notes)
	gw.Close()

	var buf bytes.Buffer
	w := vxa.NewWriter(&buf, vxa.WriterOptions{AllowLossy: *lossy})
	files := map[string][]byte{
		"photos/sunset.bmp": photo,
		"music/track01.wav": song,
		"notes/journal.txt": notes,
		"backup/old.gz":     gz.Bytes(),
	}
	for name, data := range files {
		if err := w.AddFile(name, data, 0644); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	r, err := vxa.OpenReader(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %10s %10s %-8s %s\n", "file", "raw", "stored", "codec", "note")
	for _, e := range r.Entries() {
		note := ""
		if e.PreCompressed {
			note = "stored pre-compressed, decoder attached (redec)"
		}
		fmt.Printf("%-20s %10d %10d %-8s %s\n", e.Name, e.USize, e.CSize, e.Codec, note)
	}

	// Decode the lossy image with its archived decoder: out comes a BMP.
	for i := range r.Entries() {
		e := &r.Entries()[i]
		if e.Name != "photos/sunset.bmp" || e.Codec == "deflate" {
			continue
		}
		payload, err := r.ExtractDecodedForm(context.Background(), e, vxa.WithMode(vxa.AlwaysVXA))
		if err != nil {
			log.Fatal(err)
		}
		im, err := bmp.Decode(payload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\narchived decoder reproduced a %dx%d BMP (%d bytes) from %d compressed bytes\n",
			im.W, im.H, len(payload), e.CSize)
	}
}
