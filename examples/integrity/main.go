// Integrity: the §2.3 operational story. An archive is verified with its
// own embedded decoders (never native ones), then a single flipped bit is
// shown to be caught, and finally a whole archive is extracted using
// ONLY archived decoders — simulating a future where no native decoder
// for these formats exists anymore.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"vxa"
	"vxa/internal/corpus"
	"vxa/internal/wav"
)

func main() {
	ctx := context.Background()
	var buf bytes.Buffer
	w := vxa.NewWriter(&buf, vxa.WriterOptions{})
	if err := w.AddFile("report.txt", corpus.Text(40000, 21), 0644); err != nil {
		log.Fatal(err)
	}
	if err := w.AddFile("session.wav", wav.Encode(corpus.Audio(22050, 1, 22)), 0600); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	archive := buf.Bytes()
	fmt.Printf("archive: %d bytes, %d decoders embedded\n", len(archive), w.DecoderCount())

	// 1. Verify the intact archive.
	r, err := vxa.OpenReader(archive)
	if err != nil {
		log.Fatal(err)
	}
	if errs := r.Verify(ctx); len(errs) != 0 {
		log.Fatal(errs[0])
	}
	fmt.Println("verify (archived decoders only): OK")

	// 2. Flip one payload bit and verify again.
	bad := append([]byte(nil), archive...)
	bad[len(bad)/3] ^= 0x10
	r2, err := vxa.OpenReader(bad)
	if err != nil {
		log.Fatal(err)
	}
	errs := r2.Verify(ctx)
	fmt.Printf("verify after 1-bit corruption: %d entr(ies) reported bad\n", len(errs))
	for _, e := range errs {
		fmt.Println("  detected:", e)
	}
	if len(errs) == 0 {
		log.Fatal("corruption was not detected!")
	}

	// 3. "The year is 2045": extract with archived decoders only, reusing
	// one VM per decoder except across security-attribute changes (§2.4).
	for i := range r.Entries() {
		e := &r.Entries()[i]
		out, err := r.ExtractBytes(ctx, e, vxa.WithMode(vxa.AlwaysVXA), vxa.WithReuseVM(true))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("extracted %s via archived decoder: %d bytes\n", e.Name, len(out))
	}
	fmt.Printf("pristine VM loads: %d (mode changes force re-initialization)\n", r.ReinitCount)
}
