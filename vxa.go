// Package vxa is the public API of the VXA archival storage system, a
// reproduction of Bryan Ford's "VXA: A Virtual Architecture for Durable
// Compressed Archives" (FAST 2005).
//
// VXA archives embed an executable decoder next to every compressed
// stream. Decoders are 32-bit x86 ELF executables produced by the
// bundled VXC compiler and run inside a sandboxed virtual machine with
// exactly five virtual system calls, so archived data remains decodable
// — safely — long after the codecs that produced it are gone.
//
// # Opening archives
//
// Archives open from any random-access source; parsing is lazy and
// section-at-a-time, so a multi-gigabyte archive is never resident:
//
//	r, err := vxa.OpenFile("backup.zip")   // or vxa.Open(readerAt, size)
//	defer r.Close()
//	for i := range r.Entries() {
//	    e := &r.Entries()[i]
//	    ...
//	}
//
// OpenReader remains for archives already held as bytes.
//
// # Extracting
//
// Every operation takes a context.Context and functional options.
// Extract returns a stream that pulls decoded data incrementally from a
// pooled decoder VM; ExtractBytes is the buffered convenience form:
//
//	rc, err := r.Extract(ctx, e, vxa.WithMode(vxa.AlwaysVXA))
//	if err != nil { ... }
//	defer rc.Close()
//	io.Copy(dst, rc)
//
// Canceling ctx — or closing the stream early — stops the decoder at
// its next block boundary; the sandboxed VM is rewound to its pristine
// snapshot and returned to the pool. Nothing leaks, however hostile the
// decoder.
//
// # Errors
//
// Failures carry a typed taxonomy (*vxa.Error with a Kind) instead of
// prose. Match with errors.Is against the sentinels:
//
//	if errors.Is(err, vxa.ErrDecoderTrap) { ... }   // sandbox contained it
//	if errors.Is(err, vxa.ErrFuelExhausted) { ... } // runaway decoder cut off
//	if errors.Is(err, vxa.ErrCanceled) { ... }      // also matches context.Canceled
//
// The underlying pieces — the x86 subset, the vx32-analog VM, the ELF
// tooling, the VXC compiler, and the codec plug-ins — live in internal
// packages; this package re-exports the archive-level operations.
package vxa

import (
	"io"
	"time"

	"vxa/internal/codec"
	"vxa/internal/core"
	"vxa/internal/vmpool"

	// Register the standard codec set (Table 1): general-purpose
	// deflate/zlib/bwt, still images dct/haar, audio lpc/adpcm, and the
	// gzip redec.
	_ "vxa/internal/codec/adpcm"
	_ "vxa/internal/codec/bwt"
	_ "vxa/internal/codec/dctimg"
	_ "vxa/internal/codec/deflate"
	_ "vxa/internal/codec/haarimg"
	_ "vxa/internal/codec/lpc"
)

// Re-exported archive types. See package core for full documentation.
type (
	// WriterOptions configure archive creation.
	WriterOptions = core.WriterOptions
	// Writer creates VXA archives.
	Writer = core.Writer
	// Reader extracts VXA archives. A Reader is safe for concurrent
	// use; Reader.ExtractAll and Reader.Verify fan out across a bounded
	// worker pipeline (WithParallel), drawing sandboxed decoder VMs
	// from a shared snapshot/reset pool.
	Reader = core.Reader
	// Entry is one archived file.
	Entry = core.Entry
	// Option configures one extraction call; build values with
	// WithMode, WithFuel, WithParallel, WithLimit, ...
	Option = core.Option
	// ExtractOptions is the assembled form the functional options
	// produce. No public method accepts it directly — it is re-exported
	// only so documentation and tooling can name the struct the options
	// write into.
	ExtractOptions = core.ExtractOptions
	// ExtractMode selects native-first or always-VXA decoding.
	ExtractMode = core.ExtractMode
	// ExtractResult is one entry's outcome from Reader.ExtractAll.
	ExtractResult = core.ExtractResult
	// Error is the typed error archive operations return; branch on its
	// Kind or match the Err* sentinels with errors.Is.
	Error = core.Error
	// ErrorKind classifies an Error.
	ErrorKind = core.ErrorKind
	// PoolStats are the decoder VM pool's cumulative counters, from
	// Reader.PoolStats.
	PoolStats = vmpool.Stats
	// SnapCache is a content-addressed decoder snapshot cache shared
	// across Readers (and by the vxad daemon): decoders are keyed by
	// the SHA-256 of their ELF bytes, so identical decoders embedded in
	// different archives share one snapshot, one warm translation
	// cache and one VM pool. Attach to a Reader with SetSnapCache.
	SnapCache = vmpool.SnapCache
	// SnapCacheConfig configures a SnapCache.
	SnapCacheConfig = vmpool.SnapCacheConfig
)

// Extraction modes.
const (
	// NativeFirst prefers fast native decoders, with VXA fallback.
	NativeFirst = core.NativeFirst
	// AlwaysVXA always runs the archived decoder in the sandbox.
	AlwaysVXA = core.AlwaysVXA
)

// Error kinds, for branching on (*Error).Kind.
const (
	KindBadArchive    = core.KindBadArchive
	KindUnknownCodec  = core.KindUnknownCodec
	KindDecoderTrap   = core.KindDecoderTrap
	KindFuelExhausted = core.KindFuelExhausted
	KindOutputLimit   = core.KindOutputLimit
	KindCanceled      = core.KindCanceled
	KindIO            = core.KindIO
	KindUnavailable   = core.KindUnavailable
	KindQuarantined   = core.KindQuarantined
	KindDeadline      = core.KindDeadline
)

// Error sentinels for errors.Is; each matches every *Error of its kind.
var (
	// ErrBadArchive: malformed container or failed integrity check.
	ErrBadArchive = core.ErrBadArchive
	// ErrUnknownCodec: no archived or native decoder can handle the entry.
	ErrUnknownCodec = core.ErrUnknownCodec
	// ErrDecoderTrap: the archived decoder trapped or exited nonzero in
	// the sandbox.
	ErrDecoderTrap = core.ErrDecoderTrap
	// ErrFuelExhausted: the decoder exceeded its per-stream instruction
	// budget.
	ErrFuelExhausted = core.ErrFuelExhausted
	// ErrOutputLimit: the decoded output exceeded the WithLimit bound.
	ErrOutputLimit = core.ErrOutputLimit
	// ErrCanceled: the caller's context canceled the operation; also
	// matches context.Canceled / context.DeadlineExceeded via Unwrap.
	ErrCanceled = core.ErrCanceled
	// ErrIO: a host-side I/O failure (backing store, snapshot build) —
	// a server fault, not the archive's; retryable.
	ErrIO = core.ErrIO
	// ErrUnavailable: the service could not take the request (lease
	// machinery failed or load was shed); retryable after backoff.
	ErrUnavailable = core.ErrUnavailable
	// ErrQuarantined: the entry's decoder is under circuit-breaker
	// quarantine after repeated sandbox failures; requests fail fast
	// until a half-open probe succeeds.
	ErrQuarantined = core.ErrQuarantined
	// ErrDeadline: the wall-clock watchdog killed the stream — the
	// decoder exceeded its real-time budget with instruction fuel left.
	ErrDeadline = core.ErrDeadline
)

// Extraction options.

// WithMode selects the decode path: NativeFirst (default) or AlwaysVXA.
func WithMode(m ExtractMode) Option { return core.WithMode(m) }

// WithFuel sets the absolute per-stream guest instruction budget,
// overriding the payload-scaled default; exceeding it surfaces as
// ErrFuelExhausted.
func WithFuel(n int64) Option { return core.WithFuel(n) }

// WithParallel bounds the worker count ExtractAll and Verify fan out
// to: 0 (default) selects GOMAXPROCS, 1 forces serial operation.
func WithParallel(n int) Option { return core.WithParallel(n) }

// WithLimit caps the decoded output size in bytes; crossing it aborts
// the decode with ErrOutputLimit (the decompression-bomb guard).
func WithLimit(n int64) Option { return core.WithLimit(n) }

// WithDecodeAll forces pre-compressed entries to decode to their raw
// form instead of extracting still-compressed.
func WithDecodeAll(on bool) Option { return core.WithDecodeAll(on) }

// WithReuseVM routes archived decoders through the Reader's VM pool
// (the paper's §2.4 reuse policy) instead of a fresh VM per stream.
func WithReuseVM(on bool) Option { return core.WithReuseVM(on) }

// WithVerbose streams decoder stderr diagnostics to w.
func WithVerbose(w io.Writer) Option { return core.WithVerbose(w) }

// WithWallBudget arms the per-stream wall-clock watchdog: a stream
// still running after d of real time is killed at its next block
// boundary and surfaces as ErrDeadline, independent of remaining
// instruction fuel. 0 (default) disarms it.
func WithWallBudget(d time.Duration) Option { return core.WithWallBudget(d) }

// WithMemSize sets the guest address space per decoder VM in bytes
// (default 64 MiB, capped at the paper's 1 GiB sandbox limit) — for
// decoders that hold whole image/audio planes.
func WithMemSize(n uint32) Option { return core.WithMemSize(n) }

// NewWriter begins writing an archive to w.
func NewWriter(w io.Writer, opts WriterOptions) *Writer {
	return core.NewWriter(w, opts)
}

// Open opens an archive from any random-access source. Parsing is lazy
// and section-at-a-time, so only the end record, the central directory
// and the entries actually extracted are ever read.
func Open(ra io.ReaderAt, size int64) (*Reader, error) {
	return core.Open(ra, size)
}

// OpenFile opens an archive on disk; Reader.Close releases the file.
func OpenFile(path string) (*Reader, error) {
	return core.OpenFile(path)
}

// OpenReader opens an archive held in memory (a thin adapter over Open).
func OpenReader(data []byte) (*Reader, error) {
	return core.NewReader(data)
}

// Codecs returns the registered codec set (Table 1 of the paper).
func Codecs() []*codec.Codec {
	return codec.All()
}

// NewSnapCache creates a content-addressed decoder snapshot cache to
// share across Readers via Reader.SetSnapCache.
func NewSnapCache(cfg SnapCacheConfig) *SnapCache {
	return vmpool.NewSnapCache(cfg)
}
