// Package vxa is the public API of the VXA archival storage system, a
// reproduction of Bryan Ford's "VXA: A Virtual Architecture for Durable
// Compressed Archives" (FAST 2005).
//
// VXA archives embed an executable decoder next to every compressed
// stream. Decoders are 32-bit x86 ELF executables produced by the
// bundled VXC compiler and run inside a sandboxed virtual machine with
// exactly five virtual system calls, so archived data remains decodable
// — safely — long after the codecs that produced it are gone.
//
// Quick start:
//
//	var buf bytes.Buffer
//	w := vxa.NewWriter(&buf, vxa.WriterOptions{})
//	w.AddFile("notes.txt", text, 0644)
//	w.Close()
//
//	r, _ := vxa.OpenReader(buf.Bytes())
//	for _, e := range r.Entries() {
//	    data, _ := r.Extract(&e, vxa.ExtractOptions{Mode: vxa.AlwaysVXA})
//	    ...
//	}
//
// The underlying pieces — the x86 subset, the vx32-analog VM, the ELF
// tooling, the VXC compiler, and the codec plug-ins — live in internal
// packages; this package re-exports the archive-level operations.
package vxa

import (
	"io"

	"vxa/internal/codec"
	"vxa/internal/core"
	"vxa/internal/vmpool"

	// Register the standard codec set (Table 1): general-purpose
	// deflate/zlib/bwt, still images dct/haar, audio lpc/adpcm, and the
	// gzip redec.
	_ "vxa/internal/codec/adpcm"
	_ "vxa/internal/codec/bwt"
	_ "vxa/internal/codec/dctimg"
	_ "vxa/internal/codec/deflate"
	_ "vxa/internal/codec/haarimg"
	_ "vxa/internal/codec/lpc"
)

// Re-exported archive types. See package core for full documentation.
type (
	// WriterOptions configure archive creation.
	WriterOptions = core.WriterOptions
	// Writer creates VXA archives.
	Writer = core.Writer
	// Reader extracts VXA archives. A Reader is safe for concurrent
	// use; Reader.ExtractAll and Reader.Verify fan out across a bounded
	// worker pipeline (ExtractOptions.Parallel), drawing sandboxed
	// decoder VMs from a shared snapshot/reset pool.
	Reader = core.Reader
	// Entry is one archived file.
	Entry = core.Entry
	// ExtractOptions configure extraction.
	ExtractOptions = core.ExtractOptions
	// ExtractMode selects native-first or always-VXA decoding.
	ExtractMode = core.ExtractMode
	// ExtractResult is one entry's outcome from Reader.ExtractAll.
	ExtractResult = core.ExtractResult
	// PoolStats are the decoder VM pool's cumulative counters, from
	// Reader.PoolStats.
	PoolStats = vmpool.Stats
	// SnapCache is a content-addressed decoder snapshot cache shared
	// across Readers (and by the vxad daemon): decoders are keyed by
	// the SHA-256 of their ELF bytes, so identical decoders embedded in
	// different archives share one snapshot, one warm translation
	// cache and one VM pool. Attach to a Reader with SetSnapCache.
	SnapCache = vmpool.SnapCache
	// SnapCacheConfig configures a SnapCache.
	SnapCacheConfig = vmpool.SnapCacheConfig
)

// Extraction modes.
const (
	// NativeFirst prefers fast native decoders, with VXA fallback.
	NativeFirst = core.NativeFirst
	// AlwaysVXA always runs the archived decoder in the sandbox.
	AlwaysVXA = core.AlwaysVXA
)

// NewWriter begins writing an archive to w.
func NewWriter(w io.Writer, opts WriterOptions) *Writer {
	return core.NewWriter(w, opts)
}

// OpenReader opens an archive held in memory.
func OpenReader(data []byte) (*Reader, error) {
	return core.NewReader(data)
}

// Codecs returns the registered codec set (Table 1 of the paper).
func Codecs() []*codec.Codec {
	return codec.All()
}

// NewSnapCache creates a content-addressed decoder snapshot cache to
// share across Readers via Reader.SetSnapCache.
func NewSnapCache(cfg SnapCacheConfig) *SnapCache {
	return vmpool.NewSnapCache(cfg)
}
