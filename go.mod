module vxa

go 1.22
