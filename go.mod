module vxa

go 1.21
