// Command vxrouter is the fault-tolerant front end over a fleet of
// vxad shards: it routes requests by rendezvous hashing on decoder
// content hashes (keeping each shard's snapshot cache hot and small),
// tracks per-backend health with readyz polling and circuit breakers,
// retries idempotent requests across the ring with backoff and jitter,
// hedges stragglers, and fails over only before the first response
// byte — after that a broken stream is truncated honestly. See the
// README's "Fleet" section.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vxa/internal/fault"
	"vxa/internal/router"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:7787", "HTTP listen address")
	backends := flag.String("backends", "", `comma-separated vxad shard endpoints ("host:port" or "unix:/path"); required`)
	attempts := flag.Int("attempts", router.DefaultMaxAttempts, "max attempts per request (first try + retries + hedge)")
	retryBackoff := flag.Duration("retry-backoff", router.DefaultRetryBackoff, "base retry backoff (doubled per attempt, jittered)")
	hedgeDelay := flag.Duration("hedge", 0, "hedge a second attempt after this delay (0 = adaptive p99, negative = off)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = default 1 GiB)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures opening a backend's breaker (0 = default, negative = off)")
	pollInterval := flag.Duration("poll-interval", 0, "backend /readyz poll period (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
	quiet := flag.Bool("quiet", false, "log warnings only")
	faultSpec := flag.String("fault", "", `arm deterministic fault injection, e.g. "rate=0.05,seed=1,points=dial+netread" (also via VXA_FAULT; testing only)`)
	flag.Parse()

	var fleet []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			fleet = append(fleet, b)
		}
	}
	if len(fleet) == 0 {
		fatal(fmt.Errorf("no backends: set -backends host:port[,host:port...]"))
	}

	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv("VXA_FAULT")
	}
	if spec != "" {
		if err := fault.ArmFromSpec(spec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vxrouter: FAULT INJECTION ARMED (%s)\n", spec)
	}

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	rt, err := router.New(router.Config{
		Backends:        fleet,
		MaxAttempts:     *attempts,
		RetryBackoff:    *retryBackoff,
		HedgeDelay:      *hedgeDelay,
		MaxRequestBytes: *maxBody,
		Health: router.HealthConfig{
			Threshold:    *breakerThreshold,
			PollInterval: *pollInterval,
		},
		Logger: logger,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: rt}

	errc := make(chan error, 1)
	fmt.Fprintf(os.Stderr, "vxrouter: fleet %s\n", strings.Join(fleet, " "))
	// CI's smoke jobs scrape this exact line for the bound address; keep
	// it to the bare URL.
	fmt.Fprintf(os.Stderr, "vxrouter: listening on http://%s\n", ln.Addr())
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case <-sig:
		// Drain: flip /readyz so upstream balancers stop sending work,
		// then let in-flight proxied requests finish within the budget.
		// The shards own their streams; the router has nothing to cut
		// beyond its client connections.
		fmt.Fprintln(os.Stderr, "vxrouter: draining")
		rt.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		hs.Shutdown(ctx)
		cancel()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxrouter:", err)
	os.Exit(1)
}
