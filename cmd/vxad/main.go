// Command vxad is the VXA archive-extraction daemon: it serves archive
// listing, per-entry extraction, integrity verification and raw stream
// decoding over HTTP and/or a unix socket, multiplexing every client
// over a shared content-addressed decoder snapshot cache with admission
// control. See the README's "The extraction service" section for the
// API.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vxa"
	"vxa/internal/server"
	"vxa/internal/vm"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:7788", "HTTP listen address (empty to disable)")
	unixPath := flag.String("unix", "", "unix socket path to also listen on")
	debugAddr := flag.String("debug-addr", "", "admin listen address serving /debug/pprof and /debug/vars (empty to disable)")
	inflight := flag.Int("inflight", 0, "max concurrent decode streams (0 = all cores)")
	queue := flag.Int("queue", 0, "max queued requests before shedding (0 = 4x inflight)")
	queueTimeout := flag.Duration("queue-timeout", server.DefaultQueueTimeout, "max time a request may wait for a stream slot")
	cacheBytes := flag.Int64("cache-bytes", 0, "decoder snapshot cache budget in bytes (0 = default 1 GiB)")
	memSize := flag.Uint64("mem", 0, "guest address space per decoder VM in bytes (0 = default 64 MiB)")
	maxFuel := flag.Int64("max-fuel", 0, "per-stream guest instruction ceiling (0 = default)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = default 256 MiB)")
	slowMS := flag.Int64("slow-ms", 0, "log requests slower than this many ms with their per-stage breakdown (0 = off)")
	quiet := flag.Bool("quiet", false, "suppress per-request access logs (slow-request warnings still log)")
	flag.Parse()
	_ = vxa.Codecs() // register the built-in codec set for /v1/decode

	if *httpAddr == "" && *unixPath == "" {
		fatal(fmt.Errorf("nothing to listen on: set -http and/or -unix"))
	}
	if *memSize > vm.MaxMemSize {
		fatal(fmt.Errorf("-mem %d exceeds the %d-byte (1 GiB) sandbox limit", *memSize, vm.MaxMemSize))
	}

	// Structured logs go to stderr: one line per request at Info, slow
	// requests at Warn with the per-stage timeline. -quiet keeps the
	// stream down to warnings for high-rate deployments.
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv := server.New(server.Config{
		MemSize:         uint32(*memSize),
		MaxFuel:         *maxFuel,
		CacheBytes:      *cacheBytes,
		MaxInFlight:     *inflight,
		MaxQueue:        *queue,
		QueueTimeout:    *queueTimeout,
		MaxRequestBytes: *maxBody,
		Logger:          logger,
		SlowThreshold:   time.Duration(*slowMS) * time.Millisecond,
	})
	hs := &http.Server{Handler: srv.Handler()}

	errc := make(chan error, 2)
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vxad: listening on http://%s\n", ln.Addr())
		go func() { errc <- hs.Serve(ln) }()
	}
	if *unixPath != "" {
		// A stale socket from a previous run would refuse the bind.
		os.Remove(*unixPath)
		ln, err := net.Listen("unix", *unixPath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vxad: listening on unix:%s\n", *unixPath)
		go func() { errc <- hs.Serve(ln) }()
	}
	if *debugAddr != "" {
		// The admin surface is its own listener, never the service one:
		// pprof and expvar expose internals that must not ride the
		// client-facing port.
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vxad: debug listening on http://%s\n", ln.Addr())
		go func() { errc <- http.Serve(ln, debugMux()) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "vxad: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
}

// debugMux builds the admin handler: the full net/http/pprof surface
// plus expvar. Registered on an explicit mux rather than the package
// defaults so nothing leaks onto http.DefaultServeMux.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxad:", err)
	os.Exit(1)
}
