// Command vxad is the VXA archive-extraction daemon: it serves archive
// listing, per-entry extraction, integrity verification and raw stream
// decoding over HTTP and/or a unix socket, multiplexing every client
// over a shared content-addressed decoder snapshot cache with admission
// control. See the README's "The extraction service" section for the
// API.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vxa"
	"vxa/internal/artifact"
	"vxa/internal/fault"
	"vxa/internal/server"
	"vxa/internal/vm"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:7788", "HTTP listen address (empty to disable)")
	unixPath := flag.String("unix", "", "unix socket path to also listen on")
	debugAddr := flag.String("debug-addr", "", "admin listen address serving /debug/pprof and /debug/vars (empty to disable)")
	inflight := flag.Int("inflight", 0, "max concurrent decode streams (0 = all cores)")
	queue := flag.Int("queue", 0, "max queued requests before shedding (0 = 4x inflight)")
	queueTimeout := flag.Duration("queue-timeout", server.DefaultQueueTimeout, "max time a request may wait for a stream slot")
	cacheBytes := flag.Int64("cache-bytes", 0, "decoder snapshot cache budget in bytes (0 = default 1 GiB)")
	memSize := flag.Uint64("mem", 0, "guest address space per decoder VM in bytes (0 = default 64 MiB)")
	maxFuel := flag.Int64("max-fuel", 0, "per-stream guest instruction ceiling (0 = default)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = default 256 MiB)")
	slowMS := flag.Int64("slow-ms", 0, "log requests slower than this many ms with their per-stage breakdown (0 = off)")
	quiet := flag.Bool("quiet", false, "suppress per-request access logs (slow-request warnings still log)")
	streamTimeout := flag.Duration("stream-timeout", server.DefaultStreamTimeout, "wall-clock watchdog budget per decode stream (negative = no watchdog)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight streams on shutdown before cutting them")
	memWatermark := flag.Int64("mem-watermark", 0, "heap bytes past which the snapshot cache is emergency-shrunk (0 = off)")
	artifactDir := flag.String("artifact-dir", "", "directory for persistent content-addressed snapshot artifacts (empty = disabled)")
	shardID := flag.String("shard-id", "", "fleet shard identity stamped into the X-Vxa-Shard response header (empty = the listen address)")
	faultSpec := flag.String("fault", "", `arm deterministic fault injection, e.g. "rate=0.05,seed=1,points=all" (also via VXA_FAULT; testing only)`)
	flag.Parse()
	_ = vxa.Codecs() // register the built-in codec set for /v1/decode

	if *httpAddr == "" && *unixPath == "" {
		fatal(fmt.Errorf("nothing to listen on: set -http and/or -unix"))
	}
	if *memSize > vm.MaxMemSize {
		fatal(fmt.Errorf("-mem %d exceeds the %d-byte (1 GiB) sandbox limit", *memSize, vm.MaxMemSize))
	}

	// Chaos arming: the -fault flag wins over the VXA_FAULT environment
	// variable. Both are for fault-injection testing only; disarmed (the
	// default) the injection points are a single atomic load.
	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv("VXA_FAULT")
	}
	if spec != "" {
		if err := fault.ArmFromSpec(spec); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vxad: FAULT INJECTION ARMED (%s)\n", spec)
	}

	// Structured logs go to stderr: one line per request at Info, slow
	// requests at Warn with the per-stage timeline. -quiet keeps the
	// stream down to warnings for high-rate deployments.
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// The persistent artifact tier: decoder snapshots (image + warm uop
	// block cache) survive restarts and are shared across processes on
	// the host. Opening must succeed or the operator's pre-warming
	// intent is silently lost — fail loudly at startup instead.
	var store *artifact.Store
	if *artifactDir != "" {
		var err error
		if store, err = artifact.Open(*artifactDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vxad: persistent artifacts at %s\n", *artifactDir)
	}

	// Listeners are bound before the server is built so the default
	// shard identity — the first listen address — is known up front and
	// every response, including the very first, carries X-Vxa-Shard.
	var httpLn, unixLn net.Listener
	if *httpAddr != "" {
		var err error
		if httpLn, err = net.Listen("tcp", *httpAddr); err != nil {
			fatal(err)
		}
	}
	if *unixPath != "" {
		// A stale socket from a previous run would refuse the bind.
		os.Remove(*unixPath)
		var err error
		if unixLn, err = net.Listen("unix", *unixPath); err != nil {
			fatal(err)
		}
	}
	shard := *shardID
	if shard == "" {
		if httpLn != nil {
			shard = httpLn.Addr().String()
		} else {
			shard = "unix:" + *unixPath
		}
	}

	srv := server.New(server.Config{
		MemSize:         uint32(*memSize),
		MaxFuel:         *maxFuel,
		CacheBytes:      *cacheBytes,
		MaxInFlight:     *inflight,
		MaxQueue:        *queue,
		QueueTimeout:    *queueTimeout,
		MaxRequestBytes: *maxBody,
		Logger:          logger,
		SlowThreshold:   time.Duration(*slowMS) * time.Millisecond,
		StreamTimeout:   *streamTimeout,
		MemWatermark:    *memWatermark,
		Artifacts:       store,
		ShardID:         shard,
	})
	// With a store armed, rebuild decoder lines from persisted artifacts
	// before accepting traffic: the first request after a restart should
	// run warm, not pay the load inline. Bounded by the index — codecs
	// with no recorded history are not compiled speculatively.
	if store != nil {
		start := time.Now()
		if n := srv.PrewarmArtifacts(context.Background()); n > 0 {
			fmt.Fprintf(os.Stderr, "vxad: prewarmed %d decoder line(s) from artifacts in %s\n", n, time.Since(start).Round(time.Millisecond))
		}
	}

	// baseCtx parents every request context: canceling it cooperatively
	// stops every in-flight decode stream (guests halt at their next
	// block boundary, VMs rewind to pristine and return to the pool) —
	// the hard edge of the drain sequence below.
	baseCtx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()
	hs := &http.Server{
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	errc := make(chan error, 2)
	fmt.Fprintf(os.Stderr, "vxad: shard %s\n", shard)
	if httpLn != nil {
		// CI's smoke jobs scrape this exact line for the bound address;
		// keep it to the bare URL.
		fmt.Fprintf(os.Stderr, "vxad: listening on http://%s\n", httpLn.Addr())
		go func() { errc <- hs.Serve(httpLn) }()
	}
	if unixLn != nil {
		fmt.Fprintf(os.Stderr, "vxad: listening on unix:%s\n", *unixPath)
		go func() { errc <- hs.Serve(unixLn) }()
	}
	if *debugAddr != "" {
		// The admin surface is its own listener, never the service one:
		// pprof and expvar expose internals that must not ride the
		// client-facing port.
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vxad: debug listening on http://%s\n", ln.Addr())
		go func() { errc <- http.Serve(ln, debugMux()) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case <-sig:
		// Graceful drain: stop taking work, let in-flight streams finish
		// within the drain budget, then cut survivors cooperatively.
		//
		//  1. StartDrain: /readyz flips to draining and new decode
		//     requests shed with 503 + Retry-After, so load balancers
		//     stop routing here while existing streams complete.
		//  2. Shutdown(drain budget): stop accepting connections and wait
		//     for in-flight requests to return.
		//  3. Past the budget: cancel the base context — every remaining
		//     guest halts at its next block boundary, VMs rewind pristine
		//     to the pool, clients see truncated streams (the same
		//     observable outcome as a client-side cancel) — then a short
		//     final Shutdown reaps the connections.
		fmt.Fprintln(os.Stderr, "vxad: draining")
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := hs.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vxad: drain deadline passed, canceling in-flight streams")
			cancelAll()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			hs.Shutdown(ctx)
			cancel()
		}
		srv.Close()
	}
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
}

// debugMux builds the admin handler: the full net/http/pprof surface
// plus expvar. Registered on an explicit mux rather than the package
// defaults so nothing leaks onto http.DefaultServeMux.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxad:", err)
	os.Exit(1)
}
