// Command vxbench regenerates the paper's evaluation tables and figures
// (§5) against this reproduction, plus the concurrent-engine benchmarks
// (snapshot/reset pool, parallel extraction). Each flag prints one
// artifact; the default prints everything. EXPERIMENTS.md records the
// interpretation.
//
// With -json FILE, every computed artifact is also written as one JSON
// document (BENCH_*.json style), so the performance trajectory can be
// tracked machine-readably across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vxa"
	"vxa/internal/bench"
)

// report is the -json document: every artifact that was computed in this
// run, plus enough host context to compare runs.
type report struct {
	GoVersion  string              `json:"go_version"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Table1     []bench.Table1Row   `json:"table1,omitempty"`
	Table2     []bench.Table2Row   `json:"table2,omitempty"`
	Overhead   []bench.OverheadRow `json:"overhead,omitempty"`
	Fig7       []bench.Fig7Row     `json:"fig7,omitempty"`
	Ablation   []bench.AblationRow `json:"ablation,omitempty"`
	Pool       []bench.PoolRow     `json:"pool,omitempty"`
	Parallel   *bench.ParallelRow  `json:"parallel,omitempty"`
	Server     []bench.ServerRow   `json:"server,omitempty"`
	// ServerArtifact is the persistent-store restart measurement: a
	// fresh server's first request served disk-warm from a populated
	// artifact store, vs true cold and in-process warm.
	ServerArtifact []bench.ServerArtifactRow `json:"server_artifact,omitempty"`
	ServerLoad     []bench.LoadRow           `json:"server_load,omitempty"`
	// ServerFleet is the vxrouter overhead measurement: the same
	// open-loop schedule direct to one shard vs through the router
	// fronting a small fleet, on the warm loopback path.
	ServerFleet []bench.FleetRow `json:"server_fleet,omitempty"`
	// ServerChaos is populated by -chaos only: the pass arms the
	// process-global fault registry, so it never rides the default run
	// (the clean figures must stay clean).
	ServerChaos *bench.ChaosRow `json:"server_chaos,omitempty"`
}

func main() {
	t1 := flag.Bool("table1", false, "print the decoder inventory (Table 1)")
	t2 := flag.Bool("table2", false, "print decoder code sizes (Table 2)")
	f7 := flag.Bool("fig7", false, "measure native vs virtualized decode time (Figure 7)")
	ov := flag.Bool("overhead", false, "print decoder storage overhead (section 5.3)")
	pl := flag.Bool("pool", false, "measure cold vs pooled per-stream decoder setup")
	par := flag.Bool("parallel", false, "measure serial vs parallel ExtractAll throughput")
	sv := flag.Bool("server", false, "measure vxad cold vs warm snapshot-cache request latency")
	load := flag.Bool("load", false, "drive vxad with open-loop Poisson load and report latency percentiles")
	fleet := flag.Bool("fleet", false, "measure vxrouter proxy overhead: open-loop load direct vs through a router-fronted fleet")
	target := flag.String("target", "", "drive an already-running vxad/vxrouter at this URL for -load instead of an in-process server")
	fleetShards := flag.Int("shards", 3, "fleet size for -fleet")
	chaos := flag.Bool("chaos", false, "drive vxad with fault injection armed and report containment/recovery figures")
	ablate := flag.Bool("ablate", false, "include the fragment-cache ablation in -fig7")
	ablateOpt := flag.Bool("ablate-opt", false, "measure each optimizer pass's contribution (flag elision, fusion, superblocks, tier-2)")
	streams := flag.Int("streams", 16, "streams per codec for -pool")
	entries := flag.Int("entries", 16, "archive entries for -parallel")
	warm := flag.Int("warm", 16, "warm requests per codec for -server")
	rate := flag.Float64("rate", 50, "offered request rate per second for -load")
	duration := flag.Duration("duration", 2*time.Second, "load duration per codec for -load")
	conc := flag.Int("conc", 8, "max in-flight client requests for -load and -chaos")
	chaosRate := flag.Float64("chaos-rate", 0.05, "fault-injection probability per point for -chaos")
	chaosReqs := flag.Int("chaos-reqs", 2000, "requests for -chaos")
	workers := flag.Int("p", 0, "workers for -parallel (0 = all cores)")
	jsonPath := flag.String("json", "", "also write the results to this file as JSON (e.g. BENCH_results.json)")
	baseline := flag.String("baseline", "", "compare -fig7 against a previous -json file; exit nonzero on >10% geomean regression")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	_ = vxa.Codecs()
	// -chaos and -ablate-opt are opt-in only: chaos arms the global
	// fault registry and must never contaminate the clean figures.
	all := !*t1 && !*t2 && !*f7 && !*ov && !*pl && !*par && !*sv && !*load && !*fleet && !*ablateOpt && !*chaos
	if *baseline != "" && !*load {
		*f7 = true // the compare mode needs a fresh Figure 7 run
	}

	// Load the baseline up front: it must be the *previous* run even
	// when -json later overwrites the same file, and a bad path should
	// fail before minutes of benchmarking.
	var base *report
	if *baseline != "" {
		var err error
		if base, err = loadBaseline(*baseline, *f7 || all, *load); err != nil {
			fatal(err)
		}
	}

	rep := report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	if *t1 || all {
		rep.Table1 = bench.Table1()
		fmt.Println("Table 1: Decoders Implemented in vxZIP/vxUnZIP")
		fmt.Printf("  %-8s %-14s %-16s %s\n", "codec", "role", "output", "description")
		for _, r := range rep.Table1 {
			fmt.Printf("  %-8s %-14s %-16s %s\n", r.Codec, r.Kind, r.Output, r.Desc)
		}
		fmt.Println()
	}
	if *t2 || all {
		rows, err := bench.Table2()
		if err != nil {
			fatal(err)
		}
		rep.Table2 = rows
		fmt.Println("Table 2: Code Size of Virtualized Decoders")
		fmt.Printf("  %-8s %9s %18s %18s %11s\n", "decoder", "total", "decoder", "runtime lib", "compressed")
		for _, r := range rows {
			fmt.Printf("  %-8s %8.1fKB %10.1fKB (%2.0f%%) %10.1fKB (%2.0f%%) %9.1fKB\n",
				r.Codec, kb(r.Total), kb(r.DecoderBytes), r.DecoderPercent,
				kb(r.RuntimeBytes), r.RuntimePercent, kb(r.Compressed))
		}
		fmt.Println()
	}
	if *ov || all {
		rows, err := bench.Overhead()
		if err != nil {
			fatal(err)
		}
		rep.Overhead = rows
		fmt.Println("Section 5.3: Decoder Storage Overhead")
		fmt.Printf("  %-26s %12s %12s %12s %9s\n", "scenario", "payload", "decoder", "archive", "overhead")
		for _, r := range rows {
			fmt.Printf("  %-26s %10.1fKB %10.1fKB %10.1fKB %8.2f%%\n",
				r.Scenario, kb(r.PayloadBytes), kb(r.DecoderBytes), kb(r.ArchiveBytes), r.OverheadPct)
		}
		fmt.Println()
	}
	if *pl || all {
		rows, err := bench.PoolBench(*streams)
		if err != nil {
			fatal(err)
		}
		rep.Pool = rows
		fmt.Println("Pool: per-stream decoder setup, cold VM vs snapshot/reset pool")
		fmt.Printf("  %-8s %8s %14s %14s %9s\n", "decoder", "streams", "cold/stream", "pooled/stream", "speedup")
		for _, r := range rows {
			fmt.Printf("  %-8s %8d %14v %14v %8.1fx\n",
				r.Codec, r.Streams, r.ColdPerStream.Round(10e3), r.PooledPerStream.Round(10e3), r.Speedup)
		}
		fmt.Println()
	}
	if *sv || all {
		rows, err := bench.ServerBench(*warm)
		if err != nil {
			fatal(err)
		}
		rep.Server = rows
		fmt.Println("Server: vxad /v1/decode request latency, snapshot-cache miss vs hit")
		fmt.Printf("  %-8s %8s %14s %14s %9s\n", "decoder", "input", "cold", "warm", "speedup")
		for _, r := range rows {
			fmt.Printf("  %-8s %6.0fKB %14v %14v %8.1fx\n",
				r.Codec, kb(r.InputBytes), r.ColdNS.Round(10e3), r.WarmNS.Round(10e3), r.Speedup)
		}
		fmt.Println()

		arows, err := bench.ServerArtifactBench(*warm)
		if err != nil {
			fatal(err)
		}
		rep.ServerArtifact = arows
		fmt.Println("Server artifacts: restart latency with a populated persistent store")
		fmt.Println("  (cold = compile + storeless miss, inline on the first request; prewarm =")
		fmt.Println("   the store-restored daemon's per-codec startup cost, off the request path;")
		fmt.Println("   disk-warm = that daemon's first request)")
		fmt.Printf("  %-8s %8s %12s %12s %12s %12s %12s %9s %9s %6s\n",
			"decoder", "input", "cold", "compile", "prewarm", "disk-warm", "warm", "vs-cold", "vs-warm", "hits")
		for _, r := range arows {
			fmt.Printf("  %-8s %6.0fKB %12v %12v %12v %12v %12v %8.1fx %8.2fx %6d\n",
				r.Codec, kb(r.InputBytes), r.ColdNS.Round(10e3), r.CompileNS.Round(10e3),
				r.PrewarmNS.Round(10e3), r.DiskWarmNS.Round(10e3), r.WarmNS.Round(10e3),
				r.SpeedupVsCold, r.RatioVsWarm, r.StoreHits)
		}
		fmt.Println()
	}
	if *load || all {
		var rows []bench.LoadRow
		var err error
		if *target != "" {
			rows, err = bench.LoadBenchTarget(*target, *rate, *duration, *conc)
			fmt.Printf("Server load against %s: open-loop Poisson arrivals, %v req/s for %v per codec, %d client slots\n",
				*target, *rate, *duration, *conc)
		} else {
			rows, err = bench.LoadBench(*rate, *duration, *conc)
			fmt.Printf("Server load: open-loop Poisson arrivals, %v req/s for %v per codec, %d client slots\n",
				*rate, *duration, *conc)
		}
		if err != nil {
			fatal(err)
		}
		rep.ServerLoad = rows
		fmt.Printf("  %-8s %6s %5s %5s %5s %6s %12s %12s %12s %12s %11s\n",
			"decoder", "reqs", "errs", "shed", "held", "trunc", "p50", "p90", "p99", "max", "allocs/op")
		for _, r := range rows {
			fmt.Printf("  %-8s %6d %5d %5d %5d %6d %12v %12v %12v %12v %11.0f\n",
				r.Codec, r.Requests, r.Errors, r.Sheds, r.Held, r.Truncated,
				r.P50.Round(10e3), r.P90.Round(10e3),
				r.P99.Round(10e3), r.Max.Round(10e3), r.AllocsPerOp)
		}
		fmt.Println()
	}
	if *fleet || all {
		rows, err := bench.FleetBench(*rate, *duration, *conc, *fleetShards)
		if err != nil {
			fatal(err)
		}
		rep.ServerFleet = rows
		fmt.Printf("Fleet: vxrouter overhead, direct shard vs routed fleet of %d (%v req/s for %v per codec)\n",
			*fleetShards, *rate, *duration)
		fmt.Printf("  %-8s %6s %5s %12s %12s %12s %12s %9s\n",
			"decoder", "reqs", "errs", "direct p50", "routed p50", "direct p99", "routed p99", "overhead")
		for _, r := range rows {
			fmt.Printf("  %-8s %6d %5d %12v %12v %12v %12v %8.1f%%\n",
				r.Codec, r.Requests, r.Errors, r.DirectP50.Round(10e3), r.RouterP50.Round(10e3),
				r.DirectP99.Round(10e3), r.RouterP99.Round(10e3), 100*r.OverheadP50)
		}
		fmt.Println()
	}
	if *chaos {
		row, err := bench.ChaosBench(*chaosRate, *chaosReqs, *conc)
		if err != nil {
			fatal(err)
		}
		rep.ServerChaos = &row
		fmt.Printf("Server chaos: %d mixed requests, %d workers, %.0f%% injection across all points (seed %d)\n",
			row.Requests, row.Concurrency, row.InjectionRate*100, row.Seed)
		fmt.Printf("  outcomes: %d ok, %d truncated, %d decode-err (422), %d canceled (499), %d io-err (500), %d shed (503/504), %d quarantined (521), %d conn-cut\n",
			row.OK, row.Truncated, row.DecodeErrors, row.Canceled, row.ServerErrors, row.Shed, row.Quarantined, row.TransportErrors)
		fmt.Printf("  injected %d faults; breaker: %d trips, %d probes; shed rate %.2f%%\n",
			row.InjectedFaults, row.BreakerTrips, row.BreakerProbes, row.ShedRate*100)
		fmt.Printf("  latency p50 %v  p90 %v  p99 %v  max %v; recovery after disarm %v\n\n",
			row.P50.Round(10e3), row.P90.Round(10e3), row.P99.Round(10e3),
			row.Max.Round(10e3), row.Recovery.Round(10e3))
	}
	if *par || all {
		row, err := bench.ParallelExtract(*entries, *workers)
		if err != nil {
			fatal(err)
		}
		rep.Parallel = &row
		fmt.Println("ExtractAll: serial vs parallel archived-decoder extraction")
		fmt.Printf("  %d entries, %d workers: serial %v, parallel %v, %.1fx speedup (%d VM re-inits)\n\n",
			row.Entries, row.Workers, row.Serial.Round(10e3), row.Parallel.Round(10e3), row.Speedup, row.Reinits)
	}
	if *ablateOpt {
		rows, err := bench.Ablation()
		if err != nil {
			fatal(err)
		}
		rep.Ablation = rows
		fmt.Println("Optimizer ablation: vx32 decode time with each pass disabled")
		fmt.Printf("  %-8s %12s %12s %12s %12s %12s %12s %9s %8s %5s %5s\n",
			"decoder", "full", "-elide", "-fuse", "-superblk", "-tier2", "none", "elided", "fused", "sb", "t2")
		for _, r := range rows {
			fmt.Printf("  %-8s %12v %12v %12v %12v %12v %12v %9d %8d %5d %5d\n",
				r.Codec, r.Full.Round(10e3), r.NoFlagElision.Round(10e3),
				r.NoFusion.Round(10e3), r.NoSuperblocks.Round(10e3),
				r.NoTier2.Round(10e3), r.NoOpt.Round(10e3),
				r.FlagsElided, r.UopsFused, r.SuperblocksFormed, r.Tier2Compiled)
		}
		fmt.Println()
	}
	if *f7 || all {
		fmt.Println("Figure 7: Performance of Virtualized Decoders")
		fmt.Println("  (interpreted VM; see EXPERIMENTS.md for the shape comparison)")
		rows, err := bench.Fig7(*ablate)
		if err != nil {
			fatal(err)
		}
		rep.Fig7 = rows
		fmt.Printf("  %-8s %10s %12s %12s %12s %10s %9s %9s %11s %6s\n",
			"decoder", "input", "native", "vx32", "translate", "slowdown", "vs-nat", "MIPS", "flags/kuop", "t2")
		for _, r := range rows {
			line := fmt.Sprintf("  %-8s %8.0fKB %12v %12v %12v %9.1fx %8.4fx %9.1f %11.1f %5.0f%%",
				r.Codec, kb(r.InputBytes), r.Native.Round(10e3), r.VX32.Round(10e3),
				r.Translate.Round(10e3), r.Slowdown, r.SpeedupVsNative, r.GuestMIPS, r.FlagsPerKuop,
				100*r.Tier2StepShare)
			if r.VX32NoCache > 0 {
				line += fmt.Sprintf("   (no-cache %v, %.1fx vs cached)",
					r.VX32NoCache.Round(10e3), float64(r.VX32NoCache)/float64(r.VX32))
			}
			fmt.Println(line)
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vxbench: wrote %s\n", *jsonPath)
	}

	if base != nil {
		if rep.Fig7 != nil && len(base.Fig7) > 0 {
			if err := compareBaseline(*baseline, base.Fig7, rep.Fig7); err != nil {
				fatal(err)
			}
		}
		if rep.ServerLoad != nil && len(base.ServerLoad) > 0 {
			if err := compareLoadBaseline(*baseline, base.ServerLoad, rep.ServerLoad); err != nil {
				fatal(err)
			}
		}
	}
}

// maxGeomeanRegression is the compare-mode failure threshold: a >10%
// geometric-mean slowdown across the Figure 7 codecs fails the run.
const maxGeomeanRegression = 1.10

// maxLoadP99Regression is the load-compare threshold. Tail latency on a
// loaded loopback server is far noisier than a straight-line decode, so
// the gate is correspondingly looser: it exists to catch an
// order-of-magnitude queueing pathology, not a few percent.
const maxLoadP99Regression = 1.5

// loadBaseline reads a previously written -json report and checks it
// carries the sections this run wants to compare.
func loadBaseline(path string, wantFig7, wantLoad bool) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if wantFig7 && len(base.Fig7) == 0 {
		return nil, fmt.Errorf("%s: no fig7 rows to compare against", path)
	}
	if wantLoad && len(base.ServerLoad) == 0 {
		return nil, fmt.Errorf("%s: no server_load rows to compare against (regenerate the baseline with -load)", path)
	}
	return &base, nil
}

// compareBaseline diffs the fresh Figure 7 rows against the baseline and
// enforces the regression gate.
func compareBaseline(path string, baseRows, current []bench.Fig7Row) error {
	regs, geomean := bench.CompareFig7(baseRows, current)
	if len(regs) == 0 {
		return fmt.Errorf("%s: no codecs in common with the current fig7 run", path)
	}
	fmt.Printf("\nBaseline comparison vs %s (vx32 decode time; <1.00x is faster)\n", path)
	fmt.Printf("  %-8s %14s %14s %9s\n", "decoder", "baseline", "current", "ratio")
	for _, r := range regs {
		note := ""
		if r.Ratio > maxGeomeanRegression {
			note = "  <-- regression"
		}
		fmt.Printf("  %-8s %14v %14v %8.2fx%s\n",
			r.Codec, r.Baseline.Round(10e3), r.Current.Round(10e3), r.Ratio, note)
	}
	fmt.Printf("  geomean %.3fx\n", geomean)
	if geomean > maxGeomeanRegression {
		return fmt.Errorf("geomean regression %.1f%% exceeds the %.0f%% gate",
			(geomean-1)*100, (maxGeomeanRegression-1)*100)
	}
	return nil
}

// compareLoadBaseline diffs the fresh load percentiles against the
// baseline's server_load section and enforces the p99 gate.
func compareLoadBaseline(path string, baseRows, current []bench.LoadRow) error {
	regs, geomean := bench.CompareLoad(baseRows, current)
	if len(regs) == 0 {
		return fmt.Errorf("%s: no codecs in common with the current load run", path)
	}
	fmt.Printf("\nLoad baseline comparison vs %s (p99 latency; <1.00x is faster)\n", path)
	fmt.Printf("  %-8s %14s %14s %9s\n", "decoder", "baseline", "current", "ratio")
	for _, r := range regs {
		note := ""
		if r.Ratio > maxLoadP99Regression {
			note = "  <-- regression"
		}
		fmt.Printf("  %-8s %14v %14v %8.2fx%s\n",
			r.Codec, r.Baseline.Round(10e3), r.Current.Round(10e3), r.Ratio, note)
	}
	fmt.Printf("  geomean %.3fx\n", geomean)
	if geomean > maxLoadP99Regression {
		return fmt.Errorf("load p99 geomean regression %.0f%% exceeds the %.0f%% gate",
			(geomean-1)*100, (maxLoadP99Regression-1)*100)
	}
	return nil
}

func kb(n int) float64 { return float64(n) / 1024 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxbench:", err)
	os.Exit(1)
}
