// Command vxbench regenerates the paper's evaluation tables and figures
// (§5) against this reproduction. Each flag prints one artifact; the
// default prints everything. EXPERIMENTS.md records the interpretation.
package main

import (
	"flag"
	"fmt"
	"os"

	"vxa"
	"vxa/internal/bench"
)

func main() {
	t1 := flag.Bool("table1", false, "print the decoder inventory (Table 1)")
	t2 := flag.Bool("table2", false, "print decoder code sizes (Table 2)")
	f7 := flag.Bool("fig7", false, "measure native vs virtualized decode time (Figure 7)")
	ov := flag.Bool("overhead", false, "print decoder storage overhead (section 5.3)")
	ablate := flag.Bool("ablate", false, "include the fragment-cache ablation in -fig7")
	flag.Parse()
	_ = vxa.Codecs()
	all := !*t1 && !*t2 && !*f7 && !*ov

	if *t1 || all {
		fmt.Println("Table 1: Decoders Implemented in vxZIP/vxUnZIP")
		fmt.Printf("  %-8s %-14s %-16s %s\n", "codec", "role", "output", "description")
		for _, r := range bench.Table1() {
			fmt.Printf("  %-8s %-14s %-16s %s\n", r.Codec, r.Kind, r.Output, r.Desc)
		}
		fmt.Println()
	}
	if *t2 || all {
		rows, err := bench.Table2()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Table 2: Code Size of Virtualized Decoders")
		fmt.Printf("  %-8s %9s %18s %18s %11s\n", "decoder", "total", "decoder", "runtime lib", "compressed")
		for _, r := range rows {
			fmt.Printf("  %-8s %8.1fKB %10.1fKB (%2.0f%%) %10.1fKB (%2.0f%%) %9.1fKB\n",
				r.Codec, kb(r.Total), kb(r.DecoderBytes), r.DecoderPercent,
				kb(r.RuntimeBytes), r.RuntimePercent, kb(r.Compressed))
		}
		fmt.Println()
	}
	if *ov || all {
		rows, err := bench.Overhead()
		if err != nil {
			fatal(err)
		}
		fmt.Println("Section 5.3: Decoder Storage Overhead")
		fmt.Printf("  %-26s %12s %12s %12s %9s\n", "scenario", "payload", "decoder", "archive", "overhead")
		for _, r := range rows {
			fmt.Printf("  %-26s %10.1fKB %10.1fKB %10.1fKB %8.2f%%\n",
				r.Scenario, kb(r.PayloadBytes), kb(r.DecoderBytes), kb(r.ArchiveBytes), r.OverheadPct)
		}
		fmt.Println()
	}
	if *f7 || all {
		fmt.Println("Figure 7: Performance of Virtualized Decoders")
		fmt.Println("  (interpreted VM; see EXPERIMENTS.md for the shape comparison)")
		rows, err := bench.Fig7(*ablate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-8s %10s %12s %12s %10s %9s\n", "decoder", "input", "native", "vx32", "slowdown", "MIPS")
		for _, r := range rows {
			line := fmt.Sprintf("  %-8s %8.0fKB %12v %12v %9.1fx %9.1f",
				r.Codec, kb(r.InputBytes), r.Native.Round(10e3), r.VX32.Round(10e3), r.Slowdown, r.GuestMIPS)
			if r.VX32NoCache > 0 {
				line += fmt.Sprintf("   (no-cache %v, %.1fx vs cached)",
					r.VX32NoCache.Round(10e3), float64(r.VX32NoCache)/float64(r.VX32))
			}
			fmt.Println(line)
		}
	}
}

func kb(n int) float64 { return float64(n) / 1024 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxbench:", err)
	os.Exit(1)
}
