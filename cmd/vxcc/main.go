// Command vxcc is the VXC compiler driver: it compiles VXC source files
// (a C subset) and links them with crt0 and the libvx runtime into a
// static x86-32 ELF executable for the VXA virtual machine — the
// reproduction's analog of the paper's GCC cross-compiler setup.
//
// Usage:
//
//	vxcc -o decoder.elf main.vxc [more.vxc...]
package main

import (
	"flag"
	"fmt"
	"os"

	"vxa/internal/vxcc"
)

func main() {
	out := flag.String("o", "a.elf", "output executable path")
	sizes := flag.Bool("sizes", false, "print the per-function text size table")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: vxcc [-o out.elf] [-sizes] source.vxc...")
		os.Exit(2)
	}
	var sources []vxcc.Source
	for _, path := range flag.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		sources = append(sources, vxcc.Source{Name: path, Text: string(text)})
	}
	build, err := vxcc.Compile(vxcc.Options{}, sources...)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, build.ELF, 0755); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes (decoder text %d, runtime text %d)\n",
		*out, len(build.ELF), build.UserTextBytes, build.RuntimeTextBytes)
	if *sizes {
		for _, f := range build.Funcs {
			tag := ""
			if f.Runtime {
				tag = " [libvx]"
			}
			fmt.Printf("  %08x %6d %s%s\n", f.Addr, f.Size, f.Name, tag)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxcc:", err)
	os.Exit(1)
}
