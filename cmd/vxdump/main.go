// Command vxdump inspects VXA decoder executables: ELF structure, a
// disassembly of the text segment in the VXA x86-32 subset, and (for
// registered codecs) the superblock trace plans the tier-2 compiler
// would execute.
//
// Usage:
//
//	vxdump decoder.elf
//	vxdump -codec zlib
//	vxdump -codec deflate -t2
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"

	"vxa"
	"vxa/internal/bmp"
	"vxa/internal/codec"
	"vxa/internal/corpus"
	"vxa/internal/elf32"
	"vxa/internal/vm"
	"vxa/internal/wav"
	"vxa/internal/x86"
)

func main() {
	codecName := flag.String("codec", "", "dump the named codec's built decoder")
	disasm := flag.Bool("d", true, "disassemble the executable segment")
	maxInsts := flag.Int("n", 0, "limit disassembly to n instructions (0 = all)")
	t2 := flag.Bool("t2", false, "run a sample stream and print the tier-2 trace plan of every hot superblock (needs -codec)")
	flag.Parse()
	_ = vxa.Codecs()

	var elf []byte
	switch {
	case *codecName != "":
		c, ok := codec.ByName(*codecName)
		if !ok {
			fatal(fmt.Errorf("unknown codec %q", *codecName))
		}
		var err error
		elf, err = c.DecoderELF()
		if err != nil {
			fatal(err)
		}
	case flag.NArg() == 1:
		var err error
		elf, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: vxdump (-codec name | decoder.elf)")
		os.Exit(2)
	}

	if *t2 {
		if *codecName == "" {
			fatal(fmt.Errorf("-t2 needs -codec (a sample stream must be encoded to warm the profile)"))
		}
		if err := dumpTracePlans(*codecName, elf); err != nil {
			fatal(err)
		}
		return
	}

	p, err := elf32.Parse(elf)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("entry: %#x\n", p.Entry)
	for i, s := range p.Segments {
		prot := "rw-"
		if s.ReadOnly {
			prot = "r-x"
		}
		fmt.Printf("segment %d: vaddr=%#08x filesz=%d memsz=%d %s\n",
			i, s.Vaddr, len(s.Data), s.MemSize, prot)
	}
	if !*disasm {
		return
	}
	for _, s := range p.Segments {
		if !s.ReadOnly {
			continue
		}
		fmt.Println()
		addr := s.Vaddr
		data := s.Data
		count := 0
		for len(data) > 0 {
			inst, err := x86.Decode(data)
			if err != nil {
				// Likely the rodata tail; stop at the first undecodable byte.
				fmt.Printf("%08x: (data follows)\n", addr)
				break
			}
			fmt.Printf("%08x: %s\n", addr, inst)
			addr += uint32(inst.Len)
			data = data[inst.Len:]
			count++
			if *maxInsts > 0 && count >= *maxInsts {
				return
			}
		}
	}
}

// dumpTracePlans decodes one encoded sample through a fresh VM so the
// hot paths profile, form superblocks and promote, then prints every
// trace plan: the fused micro-op sequence with per-op fuel costs, the
// guard exit slots, and which tier-2 backend the trace compiled to.
func dumpTracePlans(name string, elf []byte) error {
	c, ok := codec.ByName(name)
	if !ok {
		return fmt.Errorf("unknown codec %q", name)
	}
	// Sample input by payload type, mirroring the bench corpus.
	var raw []byte
	switch c.Output {
	case "BMP image":
		raw = bmp.Encode(corpus.Image(128, 128, 2))
	case "WAV audio":
		raw = wav.Encode(corpus.Audio(44100, 2, 3))
	default:
		raw = corpus.Text(1<<17, 1)
	}
	var enc bytes.Buffer
	if err := c.Encode(&enc, raw); err != nil {
		return fmt.Errorf("%s encode: %w", name, err)
	}
	v, err := elf32.NewVM(elf, vm.Config{MemSize: 64 << 20})
	if err != nil {
		return err
	}
	var out, diag bytes.Buffer
	if _, err := v.RunStream(context.Background(), bytes.NewReader(enc.Bytes()),
		&out, &diag, vm.StreamFuel(enc.Len())); err != nil {
		return fmt.Errorf("sample decode: %w", err)
	}
	plans := v.TracePlans()
	st := v.Stats()
	fmt.Printf("%s: %d superblocks, %d tier-2 traces compiled, %d demotions\n",
		name, len(plans), st.Tier2Compiled, st.Tier2Demotions)
	for _, p := range plans {
		fmt.Printf("\ntrace %08x: backend=%s cost=%d uops=%d guards=%d rets=%d\n",
			p.Entry, p.Backend, p.Cost, p.NUops, p.Guards, p.Rets)
		for _, u := range p.Uops {
			slot := ""
			switch {
			case u.Guard >= 0:
				slot = fmt.Sprintf("  guard[%d] -> %08x", u.Guard, u.Target)
			case u.Ret >= 0:
				slot = fmt.Sprintf("  ret[%d]", u.Ret)
			case u.Target != 0:
				slot = fmt.Sprintf("  -> %08x", u.Target)
			}
			fmt.Printf("  %3d  %08x  %-16s cost=%d%s\n", u.Index, u.EIP, u.Kind, u.Cost, slot)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxdump:", err)
	os.Exit(1)
}
