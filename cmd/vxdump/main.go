// Command vxdump inspects VXA decoder executables: ELF structure and a
// disassembly of the text segment in the VXA x86-32 subset.
//
// Usage:
//
//	vxdump decoder.elf
//	vxdump -codec zlib
package main

import (
	"flag"
	"fmt"
	"os"

	"vxa"
	"vxa/internal/codec"
	"vxa/internal/elf32"
	"vxa/internal/x86"
)

func main() {
	codecName := flag.String("codec", "", "dump the named codec's built decoder")
	disasm := flag.Bool("d", true, "disassemble the executable segment")
	maxInsts := flag.Int("n", 0, "limit disassembly to n instructions (0 = all)")
	flag.Parse()
	_ = vxa.Codecs()

	var elf []byte
	switch {
	case *codecName != "":
		c, ok := codec.ByName(*codecName)
		if !ok {
			fatal(fmt.Errorf("unknown codec %q", *codecName))
		}
		var err error
		elf, err = c.DecoderELF()
		if err != nil {
			fatal(err)
		}
	case flag.NArg() == 1:
		var err error
		elf, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: vxdump (-codec name | decoder.elf)")
		os.Exit(2)
	}

	p, err := elf32.Parse(elf)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("entry: %#x\n", p.Entry)
	for i, s := range p.Segments {
		prot := "rw-"
		if s.ReadOnly {
			prot = "r-x"
		}
		fmt.Printf("segment %d: vaddr=%#08x filesz=%d memsz=%d %s\n",
			i, s.Vaddr, len(s.Data), s.MemSize, prot)
	}
	if !*disasm {
		return
	}
	for _, s := range p.Segments {
		if !s.ReadOnly {
			continue
		}
		fmt.Println()
		addr := s.Vaddr
		data := s.Data
		count := 0
		for len(data) > 0 {
			inst, err := x86.Decode(data)
			if err != nil {
				// Likely the rodata tail; stop at the first undecodable byte.
				fmt.Printf("%08x: (data follows)\n", addr)
				break
			}
			fmt.Printf("%08x: %s\n", addr, inst)
			addr += uint32(inst.Len)
			data = data[inst.Len:]
			count++
			if *maxInsts > 0 && count >= *maxInsts {
				return
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxdump:", err)
	os.Exit(1)
}
