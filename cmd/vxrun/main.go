// Command vxrun executes one VXA decoder as a Unix filter: encoded data
// on stdin, decoded data on stdout. The decoder is either a registered
// codec's built decoder (-codec name) or an ELF image from disk — e.g.
// one extracted from an archive.
//
// With input files named on the command line, vxrun decodes each file to
// <file>.out instead, fanning the streams out over -p worker goroutines
// that draw decoder VMs from a shared snapshot/reset pool — the CLI face
// of the parallel extraction engine. SIGINT/SIGTERM cancel in-flight
// decodes cooperatively.
//
// Usage:
//
//	vxrun -codec zlib < file.z > file
//	vxrun decoder.elf < stream > out
//	vxrun -codec zlib -p 4 a.z b.z c.z d.z    (writes a.z.out, ...)
//
// Exit codes distinguish failure causes (see -h): 0 success, 1 I/O or
// internal error, 2 usage, 4 unknown codec, 5 decoder trap, 6 fuel
// exhausted, 8 canceled.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"vxa"
	"vxa/internal/codec"
	"vxa/internal/obs"
	"vxa/internal/vm"
	"vxa/internal/vmpool"
)

// Exit codes, aligned with vxunzip's so scripts can share the mapping.
const (
	exitOK       = 0
	exitIO       = 1
	exitUsage    = 2
	exitNoCodec  = 4
	exitTrap     = 5
	exitFuel     = 6
	exitCanceled = 8
)

// exitCode maps a decode failure to its exit code by trap kind.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case vm.IsCanceled(err), errors.Is(err, context.Canceled):
		return exitCanceled
	}
	var trap *vm.Trap
	if errors.As(err, &trap) {
		if trap.Kind == vm.TrapFuel {
			return exitFuel
		}
		return exitTrap
	}
	if de := (*codec.DecodeError)(nil); errors.As(err, &de) {
		return exitTrap
	}
	return exitIO
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vxrun (-codec name | decoder.elf) [-p N] [input...]")
	fmt.Fprintln(os.Stderr, "\nflags:")
	flag.PrintDefaults()
	fmt.Fprintln(os.Stderr, `
exit codes:
  0  success
  1  I/O or internal error
  2  usage error
  4  unknown codec name
  5  decoder trapped or exited nonzero in the sandbox
  6  decoder exceeded its instruction budget
  8  canceled (SIGINT/SIGTERM)`)
}

func main() {
	codecName := flag.String("codec", "", "run the named codec's VXA decoder")
	mem := flag.Int("mem", 64, "guest memory in MiB")
	verbose := flag.Bool("v", false, "show decoder diagnostics")
	parallel := flag.Int("p", 0, "decode workers for file inputs (0 = all cores)")
	flag.Usage = usage
	flag.Parse()
	_ = vxa.Codecs() // link the codec registry

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	name := *codecName
	args := flag.Args()
	var elf []byte
	switch {
	case name != "":
		c, ok := codec.ByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "vxrun: unknown codec %q (have %v)\n", name, codec.Names())
			os.Exit(exitNoCodec)
		}
		var err error
		elf, err = c.DecoderELF()
		if err != nil {
			fatal(err)
		}
	case len(args) >= 1:
		var err error
		elf, err = os.ReadFile(args[0])
		if err != nil {
			fatal(err)
		}
		name = args[0]
		args = args[1:]
	default:
		usage()
		os.Exit(exitUsage)
	}
	cfg := vm.Config{MemSize: uint32(*mem) << 20}

	// Filter mode: one stream, stdin to stdout.
	if len(args) == 0 {
		input, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		var out bytes.Buffer
		sctx, sp := obs.WithSpan(ctx)
		st, err := codec.RunDecoderELFToStats(sctx, name, elf, bytes.NewReader(input), int64(len(input)), &out, cfg)
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(out.Bytes()); err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "vxrun: decoded %d -> %d bytes\n", len(input), out.Len())
			fmt.Fprintf(os.Stderr, "vxrun: stages: %s\n", sp.Timeline())
			fmt.Fprintf(os.Stderr,
				"vxrun: engine: %d steps, %d uops, %d blocks built, %d chained, %d lookups, %d flag bits materialized, %d syscalls\n",
				st.Steps, st.UopsExecuted, st.BlocksBuilt, st.BlocksChained,
				st.BlockLookups, st.FlagsMaterialized, st.Syscalls)
			fmt.Fprintf(os.Stderr,
				"vxrun: optimizer: %d uops fused, %d flag records elided, %d superblocks formed\n",
				st.UopsFused, st.FlagsElided, st.SuperblocksFormed)
			t2share := 0.0
			if st.Steps > 0 {
				t2share = 100 * float64(st.Tier2Steps) / float64(st.Steps)
			}
			fmt.Fprintf(os.Stderr,
				"vxrun: tier2: %d traces compiled, %d trace runs, %d demotions, %.1f%% of steps\n",
				st.Tier2Compiled, st.Tier2Executed, st.Tier2Demotions, t2share)
		}
		return
	}

	// File mode: decode every input through a pooled VM per worker.
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(args) {
		workers = len(args)
	}
	pool := vmpool.New(vmpool.Options{VM: cfg, MaxIdlePerKey: workers})
	jobs := make(chan string)
	var mu sync.Mutex
	worst := exitOK
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range jobs {
				if err := decodeFile(ctx, pool, name, elf, path, *verbose); err != nil {
					fmt.Fprintf(os.Stderr, "vxrun: %s: %v\n", path, err)
					mu.Lock()
					if c := exitCode(err); c > worst {
						worst = c
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, path := range args {
		jobs <- path
	}
	close(jobs)
	wg.Wait()
	if *verbose {
		st := pool.Stats()
		fmt.Fprintf(os.Stderr, "vxrun: %d files, %d workers; pool: %d snapshot, %d built, %d resumed\n",
			len(args), workers, st.Snapshots, st.Builds, st.Resumes)
	}
	if worst != exitOK {
		os.Exit(worst)
	}
}

// decodeFile runs one input file through a leased decoder VM, streaming
// the decoded output to <path>.out; a failed decode removes the partial
// file.
func decodeFile(ctx context.Context, pool *vmpool.Pool, name string, elf []byte, path string, verbose bool) error {
	input, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dst := path + ".out"
	f, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0644)
	if err != nil {
		return err
	}
	// Per-file tracing rides the same span machinery as the daemon:
	// -v prints where the file's wall time went (lease wait, snapshot
	// build, translate, execute, host write).
	ctx, sp := obs.WithSpan(ctx)
	out := &countingWriter{w: f, sp: sp}
	var stderr io.Writer
	if verbose {
		stderr = os.Stderr
	}
	lease, err := pool.Get(ctx, name, 0, func() ([]byte, error) { return elf, nil })
	if err != nil {
		f.Close()
		os.Remove(dst)
		return err
	}
	st0 := lease.VM().Stats()
	reusable, err := lease.VM().RunStream(ctx, bytes.NewReader(input), out, stderr, vm.StreamFuel(len(input)))
	st1 := lease.VM().Stats()
	sp.Add(obs.StageTranslate, time.Duration(st1.TranslateNS-st0.TranslateNS))
	sp.Add(obs.StageExecute, time.Duration(st1.ExecuteNS-st0.ExecuteNS))
	if vm.IsCanceled(err) {
		lease.ReleaseReset()
	} else {
		lease.Release(err == nil && reusable)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	// A failed host write surfaces as itself, not as the decoder abort
	// it provokes — and never as a silently truncated output file.
	if out.err != nil {
		err = out.err
	}
	if err != nil {
		os.Remove(dst)
		return err
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "vxrun: %s: %d -> %d bytes [%s]\n", path, len(input), out.n, sp.Timeline())
	}
	return nil
}

// countingWriter counts bytes written through to w and remembers the
// first write error (the guest only sees a virtual EIO). With sp set,
// write time lands in the span's write stage.
type countingWriter struct {
	w   io.Writer
	sp  *obs.Span
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	var start time.Time
	if c.sp != nil {
		start = time.Now()
	}
	n, err := c.w.Write(p)
	if c.sp != nil {
		c.sp.Add(obs.StageWrite, time.Since(start))
	}
	c.n += int64(n)
	if err != nil && c.err == nil {
		c.err = err
	}
	return n, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxrun:", err)
	os.Exit(exitCode(err))
}
