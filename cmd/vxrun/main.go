// Command vxrun executes one VXA decoder as a Unix filter: encoded data
// on stdin, decoded data on stdout. The decoder is either a registered
// codec's built decoder (-codec name) or an ELF image from disk — e.g.
// one extracted from an archive.
//
// Usage:
//
//	vxrun -codec zlib < file.z > file
//	vxrun decoder.elf < stream > out
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vxa"
	"vxa/internal/codec"
	"vxa/internal/vm"
)

func main() {
	codecName := flag.String("codec", "", "run the named codec's VXA decoder")
	mem := flag.Int("mem", 64, "guest memory in MiB")
	verbose := flag.Bool("v", false, "show decoder diagnostics")
	flag.Parse()
	_ = vxa.Codecs() // link the codec registry

	var elf []byte
	switch {
	case *codecName != "":
		c, ok := codec.ByName(*codecName)
		if !ok {
			fatal(fmt.Errorf("unknown codec %q (have %v)", *codecName, codec.Names()))
		}
		var err error
		elf, err = c.DecoderELF()
		if err != nil {
			fatal(err)
		}
	case flag.NArg() == 1:
		var err error
		elf, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: vxrun (-codec name | decoder.elf) < in > out")
		os.Exit(2)
	}

	input, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal(err)
	}
	out, err := codec.RunDecoderELF(*codecName, elf, input, vm.Config{MemSize: uint32(*mem) << 20})
	if err != nil {
		fatal(err)
	}
	if _, err := os.Stdout.Write(out); err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "vxrun: decoded %d -> %d bytes\n", len(input), len(out))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxrun:", err)
	os.Exit(1)
}
