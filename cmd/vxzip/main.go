// Command vxzip creates VXA archives: the paper's enhanced ZIP archiver.
//
// Usage:
//
//	vxzip [-lossy] [-general codec] archive.zip file...
//
// Each input is classified per the VXA writer flow: recognized
// pre-compressed files are stored with a decoder attached, recognized
// raw media is compressed with a specialized codec (lossy codecs only
// with -lossy), and everything else goes through the general-purpose
// codec. One decoder per codec is embedded in the archive.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vxa"
)

func main() {
	lossy := flag.Bool("lossy", false, "allow lossy media codecs (operator opt-in)")
	general := flag.String("general", "", "general-purpose codec (deflate, bwt)")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: vxzip [-lossy] [-general codec] archive.zip file...")
		os.Exit(2)
	}
	out, err := os.Create(args[0])
	if err != nil {
		fatal(err)
	}
	w := vxa.NewWriter(out, vxa.WriterOptions{AllowLossy: *lossy, GeneralCodec: *general})
	for _, path := range args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			fatal(err)
		}
		name := filepath.ToSlash(filepath.Clean(path))
		if err := w.AddFile(name, data, uint32(info.Mode().Perm())); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("  added %s (%d bytes)\n", name, len(data))
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	if err := out.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s with %d embedded decoder(s)\n", args[0], w.DecoderCount())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxzip:", err)
	os.Exit(1)
}
