// Command vxunzip lists, extracts and verifies VXA archives: the
// paper's enhanced UnZIP reader.
//
// Usage:
//
//	vxunzip -l archive.zip             list contents
//	vxunzip [-vxa] [-all] [-p N] [-d dir] archive.zip   extract
//	vxunzip -t archive.zip             integrity check (always uses the
//	                                   archived VXA decoders, §2.3)
//
// Extraction and verification decode entries through a parallel worker
// pipeline over pooled decoder VMs; -p bounds the worker count (0 means
// one worker per core, 1 forces the serial path). Interrupting the
// process (SIGINT/SIGTERM) cancels in-flight decodes cooperatively.
//
// Exit codes distinguish failure causes (see -h): 0 success, 1 I/O or
// internal error, 2 usage, 3 bad archive, 4 no usable decoder, 5
// decoder trap, 6 fuel exhausted, 7 output limit, 8 canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"

	"vxa"
	"vxa/internal/obs"
)

// Exit codes, one per error kind, so scripts can branch on the cause.
const (
	exitOK         = 0
	exitIO         = 1
	exitUsage      = 2
	exitBadArchive = 3
	exitNoDecoder  = 4
	exitTrap       = 5
	exitFuel       = 6
	exitLimit      = 7
	exitCanceled   = 8
	exitDeadline   = 9
)

// exitCode maps a typed extraction error to its exit code.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, vxa.ErrBadArchive):
		return exitBadArchive
	case errors.Is(err, vxa.ErrUnknownCodec):
		return exitNoDecoder
	case errors.Is(err, vxa.ErrFuelExhausted):
		return exitFuel
	case errors.Is(err, vxa.ErrOutputLimit):
		return exitLimit
	case errors.Is(err, vxa.ErrDecoderTrap):
		return exitTrap
	case errors.Is(err, vxa.ErrCanceled), errors.Is(err, context.Canceled):
		return exitCanceled
	case errors.Is(err, vxa.ErrDeadline):
		return exitDeadline
	}
	return exitIO
}

// worstExit keeps the most severe (highest) exit code seen.
type worstExit struct {
	mu   sync.Mutex
	code int
}

func (w *worstExit) note(err error) {
	c := exitCode(err)
	w.mu.Lock()
	if c > w.code {
		w.code = c
	}
	w.mu.Unlock()
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vxunzip [-l|-t] [-vxa] [-all] [-v] [-p N] [-d dir] archive.zip")
	fmt.Fprintln(os.Stderr, "\nflags:")
	flag.PrintDefaults()
	fmt.Fprintln(os.Stderr, `
exit codes:
  0  success
  1  I/O or internal error
  2  usage error
  3  bad archive (malformed container or failed integrity check)
  4  no usable decoder for an entry
  5  archived decoder trapped or exited nonzero in the sandbox
  6  decoder exceeded its instruction budget
  7  decoded output exceeded -limit
  8  canceled (SIGINT/SIGTERM)
  9  wall-clock watchdog killed the decoder (-wall)`)
}

func main() {
	list := flag.Bool("l", false, "list the archive")
	test := flag.Bool("t", false, "verify integrity with the archived VXA decoders")
	forceVXA := flag.Bool("vxa", false, "always decode with the archived VXA decoders")
	decodeAll := flag.Bool("all", false, "decode pre-compressed files to their raw form")
	verbose := flag.Bool("v", false, "show decoder stderr diagnostics")
	dir := flag.String("d", ".", "output directory")
	parallel := flag.Int("p", 0, "extraction/verify workers (0 = all cores, 1 = serial)")
	limit := flag.Int64("limit", 0, "per-entry decoded output cap in bytes (0 = unlimited)")
	wall := flag.Duration("wall", 0, "per-stream wall-clock decoder budget (0 = no watchdog)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(exitUsage)
	}

	// SIGINT/SIGTERM cancel in-flight decodes cooperatively: pooled VMs
	// stop at their next block boundary and are returned before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r, err := vxa.OpenFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer r.Close()

	mode := vxa.NativeFirst
	if *forceVXA {
		mode = vxa.AlwaysVXA
	}
	opts := []vxa.Option{
		vxa.WithMode(mode),
		vxa.WithDecodeAll(*decodeAll),
		vxa.WithReuseVM(true),
		vxa.WithParallel(*parallel),
		vxa.WithLimit(*limit),
		vxa.WithWallBudget(*wall),
	}
	if *verbose {
		opts = append(opts, vxa.WithVerbose(os.Stderr))
	}

	switch {
	case *list:
		fmt.Printf("%-30s %10s %10s  %-8s %s\n", "name", "size", "stored", "codec", "mode")
		for _, e := range r.Entries() {
			codec := e.Codec
			if codec == "" {
				codec = "-"
			}
			kind := ""
			if e.PreCompressed {
				kind = " (pre-compressed)"
			}
			fmt.Printf("%-30s %10d %10d  %-8s %04o%s\n", e.Name, e.USize, e.CSize, codec, e.Mode, kind)
		}
	case *test:
		errs := r.Verify(ctx, opts...)
		if len(errs) == 0 {
			fmt.Printf("OK: all %d entries decode correctly under the VXA decoders\n", len(r.Entries()))
			return
		}
		var worst worstExit
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
			worst.note(err)
		}
		os.Exit(worst.code)
	default:
		// Decode entries across a bounded worker pool, each streamed
		// straight to its destination file — peak memory stays one
		// stream per worker, not the whole decoded archive.
		entries := r.Entries()
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(entries) {
			workers = len(entries)
		}
		// Entries mapping to the same output path would have two workers
		// interleaving writes into one file, so such archives extract
		// serially (preserving the traditional last-writer-wins result).
		// The comparison is case-insensitive so the fallback also covers
		// case-insensitive filesystems (macOS, Windows).
		if workers > 1 {
			seen := make(map[string]bool, len(entries))
			for i := range entries {
				p := strings.ToLower(filepath.Clean(filepath.FromSlash(entries[i].Name)))
				if seen[p] {
					fmt.Fprintf(os.Stderr, "vxunzip: entries share output path %q; extracting serially\n", entries[i].Name)
					workers = 1
					break
				}
				seen[p] = true
			}
		}
		jobs := make(chan int)
		var worst worstExit
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					e := &entries[i]
					if err := extractEntry(ctx, r, e, *dir, opts, *verbose); err != nil {
						fmt.Fprintf(os.Stderr, "vxunzip: %s: %v\n", e.Name, err)
						worst.note(err)
					}
				}
			}()
		}
		for i := range entries {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		if worst.code != exitOK {
			os.Exit(worst.code)
		}
	}
}

// extractEntry streams one entry's decoded output to its destination
// file; a failed extraction removes the partial file. Entry names are
// untrusted: anything absolute or escaping the output directory
// (zip-slip) is rejected.
func extractEntry(ctx context.Context, r *vxa.Reader, e *vxa.Entry, dir string, opts []vxa.Option, verbose bool) error {
	rel := filepath.FromSlash(e.Name)
	if !filepath.IsLocal(rel) {
		return fmt.Errorf("unsafe entry path %q", e.Name)
	}
	dst := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(dst), 0755); err != nil {
		return err
	}
	f, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, os.FileMode(e.Mode))
	if err != nil {
		return err
	}
	// The span rides the context through the extraction stack: the pool,
	// snapshot cache and VM layers attribute their stage timings to it,
	// and -v prints the per-entry breakdown.
	ctx, sp := obs.WithSpan(ctx)
	n, err := r.ExtractTo(ctx, e, f, opts...)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dst)
		return err
	}
	if verbose {
		fmt.Printf("  extracted %s (%d bytes) [%s]\n", e.Name, n, sp.Timeline())
	} else {
		fmt.Printf("  extracted %s (%d bytes)\n", e.Name, n)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxunzip:", err)
	os.Exit(exitCode(err))
}
