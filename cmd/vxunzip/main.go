// Command vxunzip lists, extracts and verifies VXA archives: the
// paper's enhanced UnZIP reader.
//
// Usage:
//
//	vxunzip -l archive.zip             list contents
//	vxunzip [-vxa] [-all] [-p N] [-d dir] archive.zip   extract
//	vxunzip -t archive.zip             integrity check (always uses the
//	                                   archived VXA decoders, §2.3)
//
// Extraction and verification decode entries through a parallel worker
// pipeline over pooled decoder VMs; -p bounds the worker count (0 means
// one worker per core, 1 forces the serial path).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"vxa"
)

func main() {
	list := flag.Bool("l", false, "list the archive")
	test := flag.Bool("t", false, "verify integrity with the archived VXA decoders")
	forceVXA := flag.Bool("vxa", false, "always decode with the archived VXA decoders")
	decodeAll := flag.Bool("all", false, "decode pre-compressed files to their raw form")
	verbose := flag.Bool("v", false, "show decoder stderr diagnostics")
	dir := flag.String("d", ".", "output directory")
	parallel := flag.Int("p", 0, "extraction/verify workers (0 = all cores, 1 = serial)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vxunzip [-l|-t] [-vxa] [-all] [-v] [-p N] [-d dir] archive.zip")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	r, err := vxa.OpenReader(data)
	if err != nil {
		fatal(err)
	}

	opts := vxa.ExtractOptions{Mode: vxa.NativeFirst, DecodeAll: *decodeAll, ReuseVM: true, Parallel: *parallel}
	if *forceVXA {
		opts.Mode = vxa.AlwaysVXA
	}
	if *verbose {
		opts.Verbose = os.Stderr
	}

	switch {
	case *list:
		fmt.Printf("%-30s %10s %10s  %-8s %s\n", "name", "size", "stored", "codec", "mode")
		for _, e := range r.Entries() {
			codec := e.Codec
			if codec == "" {
				codec = "-"
			}
			kind := ""
			if e.PreCompressed {
				kind = " (pre-compressed)"
			}
			fmt.Printf("%-30s %10d %10d  %-8s %04o%s\n", e.Name, e.USize, e.CSize, codec, e.Mode, kind)
		}
	case *test:
		errs := r.Verify(opts)
		if len(errs) == 0 {
			fmt.Printf("OK: all %d entries decode correctly under the VXA decoders\n", len(r.Entries()))
			return
		}
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
		}
		os.Exit(1)
	default:
		// Decode entries across a bounded worker pool, each streamed
		// straight to its destination file — peak memory stays one
		// stream per worker, not the whole decoded archive.
		entries := r.Entries()
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(entries) {
			workers = len(entries)
		}
		// Entries mapping to the same output path would have two workers
		// interleaving writes into one file, so such archives extract
		// serially (preserving the traditional last-writer-wins result).
		// The comparison is case-insensitive so the fallback also covers
		// case-insensitive filesystems (macOS, Windows).
		if workers > 1 {
			seen := make(map[string]bool, len(entries))
			for i := range entries {
				p := strings.ToLower(filepath.Clean(filepath.FromSlash(entries[i].Name)))
				if seen[p] {
					fmt.Fprintf(os.Stderr, "vxunzip: entries share output path %q; extracting serially\n", entries[i].Name)
					workers = 1
					break
				}
				seen[p] = true
			}
		}
		jobs := make(chan int)
		errc := make(chan error, len(entries))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					e := &entries[i]
					if err := extractEntry(r, e, *dir, opts); err != nil {
						errc <- fmt.Errorf("%s: %w", e.Name, err)
					}
				}
			}()
		}
		for i := range entries {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(errc)
		failed := false
		for err := range errc {
			fmt.Fprintln(os.Stderr, "vxunzip:", err)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
	}
}

// extractEntry streams one entry's decoded output to its destination
// file; a failed extraction removes the partial file. Entry names are
// untrusted: anything absolute or escaping the output directory
// (zip-slip) is rejected.
func extractEntry(r *vxa.Reader, e *vxa.Entry, dir string, opts vxa.ExtractOptions) error {
	rel := filepath.FromSlash(e.Name)
	if !filepath.IsLocal(rel) {
		return fmt.Errorf("unsafe entry path %q", e.Name)
	}
	dst := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(dst), 0755); err != nil {
		return err
	}
	f, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, os.FileMode(e.Mode))
	if err != nil {
		return err
	}
	n, err := r.ExtractTo(e, f, opts)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(dst)
		return err
	}
	fmt.Printf("  extracted %s (%d bytes)\n", e.Name, n)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxunzip:", err)
	os.Exit(1)
}
