// Command vxunzip lists, extracts and verifies VXA archives: the
// paper's enhanced UnZIP reader.
//
// Usage:
//
//	vxunzip -l archive.zip             list contents
//	vxunzip [-vxa] [-all] [-d dir] archive.zip   extract
//	vxunzip -t archive.zip             integrity check (always uses the
//	                                   archived VXA decoders, §2.3)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vxa"
)

func main() {
	list := flag.Bool("l", false, "list the archive")
	test := flag.Bool("t", false, "verify integrity with the archived VXA decoders")
	forceVXA := flag.Bool("vxa", false, "always decode with the archived VXA decoders")
	decodeAll := flag.Bool("all", false, "decode pre-compressed files to their raw form")
	verbose := flag.Bool("v", false, "show decoder stderr diagnostics")
	dir := flag.String("d", ".", "output directory")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vxunzip [-l|-t] [-vxa] [-all] [-v] [-d dir] archive.zip")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	r, err := vxa.OpenReader(data)
	if err != nil {
		fatal(err)
	}

	opts := vxa.ExtractOptions{Mode: vxa.NativeFirst, DecodeAll: *decodeAll, ReuseVM: true}
	if *forceVXA {
		opts.Mode = vxa.AlwaysVXA
	}
	if *verbose {
		opts.Verbose = os.Stderr
	}

	switch {
	case *list:
		fmt.Printf("%-30s %10s %10s  %-8s %s\n", "name", "size", "stored", "codec", "mode")
		for _, e := range r.Entries() {
			codec := e.Codec
			if codec == "" {
				codec = "-"
			}
			kind := ""
			if e.PreCompressed {
				kind = " (pre-compressed)"
			}
			fmt.Printf("%-30s %10d %10d  %-8s %04o%s\n", e.Name, e.USize, e.CSize, codec, e.Mode, kind)
		}
	case *test:
		errs := r.Verify(opts)
		if len(errs) == 0 {
			fmt.Printf("OK: all %d entries decode correctly under the VXA decoders\n", len(r.Entries()))
			return
		}
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
		}
		os.Exit(1)
	default:
		for i := range r.Entries() {
			e := &r.Entries()[i]
			out, err := r.Extract(e, opts)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", e.Name, err))
			}
			dst := filepath.Join(*dir, filepath.FromSlash(e.Name))
			if err := os.MkdirAll(filepath.Dir(dst), 0755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(dst, out, os.FileMode(e.Mode)); err != nil {
				fatal(err)
			}
			fmt.Printf("  extracted %s (%d bytes)\n", e.Name, len(out))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vxunzip:", err)
	os.Exit(1)
}
