// Command vxwarm manages persistent decoder-snapshot artifact stores
// (the -artifact-dir tier of vxad): it pre-warms a store by pushing
// representative streams through the real serving stack, exports and
// imports stores as tarballs for fleet distribution, and prints a
// machine-readable inventory.
//
// Typical fleet flow:
//
//	vxwarm prime -dir /var/cache/vxa      # build + translate once
//	vxwarm pack -dir /var/cache/vxa -o warm.tar
//	# ship warm.tar to every host, then on each:
//	vxwarm unpack -dir /var/cache/vxa -i warm.tar
//	vxad -artifact-dir /var/cache/vxa     # first request is disk-warm
//
// Artifacts are keyed by decoder hash, engine version and VM
// configuration, so prime must run with the same -mem and
// -stream-timeout the daemon will use (the defaults match vxad's).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vxa"
	"vxa/internal/artifact"
	"vxa/internal/bench"
	"vxa/internal/server"
	"vxa/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "prime":
		err = prime(os.Args[2:])
	case "pack":
		err = pack(os.Args[2:])
	case "unpack":
		err = unpack(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	case "sample":
		err = sample(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "vxwarm: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vxwarm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: vxwarm <subcommand> [flags]

  prime  -dir DIR [-mem N] [-stream-timeout D] [-streams N]
         build, translate and persist every built-in decoder's snapshot
         artifact by decoding sample streams through the serving stack
  pack   -dir DIR [-o FILE]
         export the store as a tar archive (stdout by default)
  unpack -dir DIR [-i FILE]
         import artifacts from a tar archive (stdin by default)
  stats  -dir DIR
         print a JSON inventory of the store
  sample -codec NAME
         write one codec's encoded sample stream to stdout
`)
}

// prime pushes each built-in codec's sample stream through an
// in-process server wired to the store. Going through server.New —
// rather than building snapshots by hand — guarantees the artifacts
// are keyed under exactly the vm.Config a vxad with the same flags
// will probe for. The second pass per codec runs against the resident
// snapshot so its absorbed (post-translation) block cache has settled
// before the close-time flush persists it.
func prime(args []string) error {
	fs := flag.NewFlagSet("prime", flag.ExitOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	mem := fs.Uint64("mem", 0, "guest address space per decoder VM in bytes (0 = vxad default)")
	streamTimeout := fs.Duration("stream-timeout", server.DefaultStreamTimeout, "wall-clock watchdog budget per stream (must match vxad's)")
	streams := fs.Int("streams", 2, "priming streams per decoder")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("prime: -dir is required")
	}
	if *mem > vm.MaxMemSize {
		return fmt.Errorf("prime: -mem %d exceeds the %d-byte sandbox limit", *mem, vm.MaxMemSize)
	}
	if *streams < 1 {
		return fmt.Errorf("prime: -streams must be >= 1")
	}
	_ = vxa.Codecs()

	store, err := artifact.Open(*dir)
	if err != nil {
		return err
	}
	ws, err := bench.ServerWorkloads()
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		MemSize:       uint32(*mem),
		StreamTimeout: *streamTimeout,
		Artifacts:     store,
	})
	h := srv.Handler()
	start := time.Now()
	for _, w := range ws {
		for i := 0; i < *streams; i++ {
			req := httptest.NewRequest("POST", "/v1/decode?codec="+w.Codec.Name, bytes.NewReader(w.Encoded))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				srv.Close()
				return fmt.Errorf("prime: %s: decode status %d: %s", w.Codec.Name, rec.Code, rec.Body.String())
			}
			if rec.Body.Len() != len(w.Raw) {
				srv.Close()
				return fmt.Errorf("prime: %s: decoded %d bytes, want %d", w.Codec.Name, rec.Body.Len(), len(w.Raw))
			}
		}
		fmt.Fprintf(os.Stderr, "vxwarm: primed %s (%d streams)\n", w.Codec.Name, *streams)
	}
	// Close flushes every grown block cache to the store.
	srv.Close()
	st := store.Stats()
	if st.Saves == 0 {
		return fmt.Errorf("prime: no artifacts written (store stats %+v)", st)
	}
	fmt.Fprintf(os.Stderr, "vxwarm: %d decoders primed in %v: %d saves (%d bytes), %d loads served from prior artifacts\n",
		len(ws), time.Since(start).Round(time.Millisecond), st.Saves, st.BytesSaved, st.Hits)
	return nil
}

func pack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	out := fs.String("o", "", "output tar file (default stdout)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("pack: -dir is required")
	}
	store, err := artifact.Open(*dir)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	n, err := store.Pack(w)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vxwarm: packed %d artifacts\n", n)
	return nil
}

func unpack(args []string) error {
	fs := flag.NewFlagSet("unpack", flag.ExitOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	in := fs.String("i", "", "input tar file (default stdin)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("unpack: -dir is required")
	}
	store, err := artifact.Open(*dir)
	if err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	n, err := store.Unpack(r)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vxwarm: unpacked %d artifacts\n", n)
	return nil
}

// storeInventory is the stats subcommand's JSON document.
type storeInventory struct {
	Dir        string          `json:"dir"`
	Count      int             `json:"count"`
	TotalBytes int64           `json:"total_bytes"`
	Artifacts  []inventoryItem `json:"artifacts"`
}

type inventoryItem struct {
	Path    string    `json:"path"` // store-relative
	Bytes   int64     `json:"bytes"`
	ModTime time.Time `json:"mod_time"`
}

func stats(args []string) error {
	fset := flag.NewFlagSet("stats", flag.ExitOnError)
	dir := fset.String("dir", "", "artifact store directory (required)")
	fset.Parse(args)
	if *dir == "" {
		return fmt.Errorf("stats: -dir is required")
	}
	inv := storeInventory{Dir: *dir, Artifacts: []inventoryItem{}}
	err := filepath.WalkDir(*dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, artifact.Suffix) ||
			strings.HasPrefix(filepath.Base(path), ".tmp-") {
			return err
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(*dir, path)
		if err != nil {
			return err
		}
		inv.Artifacts = append(inv.Artifacts, inventoryItem{
			Path: filepath.ToSlash(rel), Bytes: fi.Size(), ModTime: fi.ModTime().UTC(),
		})
		inv.Count++
		inv.TotalBytes += fi.Size()
		return nil
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(inv)
}

// sample writes one codec's encoded priming stream to stdout, so shell
// smoke tests (CI) can drive a running vxad with the same payloads
// prime used, e.g.:
//
//	vxwarm sample -codec deflate | curl --data-binary @- \
//	    'http://127.0.0.1:7788/v1/decode?codec=deflate'
func sample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ExitOnError)
	name := fs.String("codec", "", "codec name (required)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("sample: -codec is required")
	}
	_ = vxa.Codecs()
	ws, err := bench.ServerWorkloads()
	if err != nil {
		return err
	}
	for _, w := range ws {
		if w.Codec.Name == *name {
			_, err := os.Stdout.Write(w.Encoded)
			return err
		}
	}
	return fmt.Errorf("sample: unknown codec %q", *name)
}
