package vxa

// Benchmarks regenerating the paper's evaluation (§5). One benchmark per
// Figure 7 series (native vs virtualized per codec), plus the mechanism
// ablations: the §4.2 fragment cache and the §5.2 vorbis call-inlining
// anecdote. Tables 1/2 and the §5.3 overhead analysis are validated in
// vxa_test.go and printed by cmd/vxbench.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"vxa/internal/bench"
	"vxa/internal/codec"
	"vxa/internal/elf32"
	"vxa/internal/vm"
	"vxa/internal/vmpool"
	"vxa/internal/vxcc"
)

var (
	wlOnce sync.Once
	wls    []bench.Workload
	wlErr  error
)

func workloads(b *testing.B) []bench.Workload {
	wlOnce.Do(func() { wls, wlErr = bench.Workloads() })
	if wlErr != nil {
		b.Fatal(wlErr)
	}
	return wls
}

func workload(b *testing.B, name string) bench.Workload {
	for _, w := range workloads(b) {
		if w.Codec.Name == name {
			return w
		}
	}
	b.Fatalf("no workload for %s", name)
	return bench.Workload{}
}

func benchNative(b *testing.B, name string) {
	w := workload(b, name)
	b.SetBytes(int64(len(w.Raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Codec.Decode(io.Discard, bytes.NewReader(w.Encoded)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchVX32(b *testing.B, name string, cfg vm.Config) {
	w := workload(b, name)
	elf, err := w.Codec.DecoderELF()
	if err != nil {
		b.Fatal(err)
	}
	if cfg.MemSize == 0 {
		cfg.MemSize = 64 << 20
	}
	b.SetBytes(int64(len(w.Raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := elf32.NewVM(elf, cfg)
		if err != nil {
			b.Fatal(err)
		}
		v.Stdin = bytes.NewReader(w.Encoded)
		v.Stdout = io.Discard
		st, err := v.Run()
		if err != nil {
			b.Fatal(err)
		}
		if st == vm.StatusExit && v.ExitCode() != 0 {
			b.Fatalf("decoder exit %d", v.ExitCode())
		}
	}
}

// --- Figure 7: native vs virtualized decode, per codec ---

func BenchmarkFig7DeflateNative(b *testing.B) { benchNative(b, "deflate") }
func BenchmarkFig7DeflateVX32(b *testing.B)   { benchVX32(b, "deflate", vm.Config{}) }
func BenchmarkFig7BwtNative(b *testing.B)     { benchNative(b, "bwt") }
func BenchmarkFig7BwtVX32(b *testing.B)       { benchVX32(b, "bwt", vm.Config{}) }
func BenchmarkFig7DctNative(b *testing.B)     { benchNative(b, "dct") }
func BenchmarkFig7DctVX32(b *testing.B)       { benchVX32(b, "dct", vm.Config{}) }
func BenchmarkFig7HaarNative(b *testing.B)    { benchNative(b, "haar") }
func BenchmarkFig7HaarVX32(b *testing.B)      { benchVX32(b, "haar", vm.Config{}) }
func BenchmarkFig7LpcNative(b *testing.B)     { benchNative(b, "lpc") }
func BenchmarkFig7LpcVX32(b *testing.B)       { benchVX32(b, "lpc", vm.Config{}) }
func BenchmarkFig7AdpcmNative(b *testing.B)   { benchNative(b, "adpcm") }
func BenchmarkFig7AdpcmVX32(b *testing.B)     { benchVX32(b, "adpcm", vm.Config{}) }

// --- §4.2 ablation: fragment ("translation") cache off ---
//
// Run on a bounded checksum kernel rather than a full decode: without
// the cache every instruction is re-decoded, which is orders of
// magnitude slower, and the ratio is the point, not the workload size.

func BenchmarkAblationCacheOn(b *testing.B) { benchKernelCfg(b, inlinedSrc, vm.Config{}, 1<<14) }
func BenchmarkAblationCacheOff(b *testing.B) {
	benchKernelCfg(b, inlinedSrc, vm.Config{NoBlockCache: true}, 1<<14)
}

// --- §5.2 ablation: the vorbis inlining anecdote ---
//
// The paper's vorbis decoder lost 29% to subroutine calls in its inner
// loop (each call is an indirect control transfer resolved through the
// fragment cache); inlining recovered it to 11%. The same mechanism is
// measured here with two VXC builds of the same checksum kernel.

const callHeavySrc = `
int acc = 1;
int mix(int a, int c) { return (a * 33 + c) ^ (a >> 27); }
int main(void) {
	int c;
	while ((c = getb()) >= 0) acc = mix(acc, c);
	put4le(acc);
	flushout();
	return 0;
}`

const inlinedSrc = `
int acc = 1;
int main(void) {
	int c;
	while ((c = getb()) >= 0) acc = ((acc * 33 + c) ^ (acc >> 27));
	put4le(acc);
	flushout();
	return 0;
}`

func benchKernel(b *testing.B, src string) {
	benchKernelCfg(b, src, vm.Config{}, 1<<18) // 256 KiB
}

func benchKernelCfg(b *testing.B, src string, cfg vm.Config, inputLen int) {
	build, err := vxcc.Compile(vxcc.Options{}, vxcc.Source{Name: "kernel.vxc", Text: src})
	if err != nil {
		b.Fatal(err)
	}
	input := bytes.Repeat([]byte("abcdefghijklmnopqrstuvwxyz012345"), inputLen/32)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := elf32.NewVM(build.ELF, cfg)
		if err != nil {
			b.Fatal(err)
		}
		v.Stdin = bytes.NewReader(input)
		v.Stdout = io.Discard
		if _, err := v.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCallsCallHeavy(b *testing.B) { benchKernel(b, callHeavySrc) }
func BenchmarkAblationCallsInlined(b *testing.B)   { benchKernel(b, inlinedSrc) }

// --- VM primitive throughput (context for the Fig. 7 ratios) ---

func BenchmarkVMDispatch(b *testing.B) {
	// A tight arithmetic loop measures raw interpreted instruction rate.
	src := `
int main(void) {
	int i;
	int acc = 0;
	for (i = 0; i < 1000000; i++) acc = acc * 3 + i;
	return acc & 0x7F;
}`
	build, err := vxcc.Compile(vxcc.Options{}, vxcc.Source{Name: "spin.vxc", Text: src})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := elf32.NewVM(build.ELF, vm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Run(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(v.Stats().Steps), "guest-insts/op")
	}
}

// BenchmarkDecoderBuild times compiling a decoder from VXC source to ELF
// (the archiver-side cost of the toolchain).
func BenchmarkDecoderBuild(b *testing.B) {
	c, ok := codec.ByName("deflate")
	if !ok {
		b.Fatal("deflate not registered")
	}
	for i := 0; i < b.N; i++ {
		if _, err := vxcc.Compile(vxcc.Options{}, c.Sources...); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Concurrent sandbox engine: snapshot/reset pool + parallel extraction ---
//
// BenchmarkStreamColdVM vs BenchmarkStreamPooledVM is the per-stream
// decoder-setup comparison: a fresh VM parsed from the decoder ELF for
// every stream against a pooled VM resumed (or reset from the pristine
// snapshot) per stream. BenchmarkExtractAll* compares whole-archive
// extraction throughput, serial versus the bounded worker pipeline.

func smallDeflateStream(b *testing.B) (*codec.Codec, []byte, []byte) {
	c, ok := codec.ByName("deflate")
	if !ok {
		b.Fatal("deflate not registered")
	}
	raw := bytes.Repeat([]byte("a small stream that makes setup cost visible | "), 64)
	var enc bytes.Buffer
	if err := c.Encode(&enc, raw); err != nil {
		b.Fatal(err)
	}
	elf, err := c.DecoderELF()
	if err != nil {
		b.Fatal(err)
	}
	return c, elf, enc.Bytes()
}

func runBenchStream(b *testing.B, v *vm.VM, encoded []byte) (reusable bool) {
	b.Helper()
	reusable, err := v.RunStream(context.Background(), bytes.NewReader(encoded), io.Discard, nil, vm.StreamFuel(len(encoded)))
	if err != nil {
		b.Fatal(err)
	}
	return reusable
}

func BenchmarkStreamColdVM(b *testing.B) {
	_, elf, encoded := smallDeflateStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := elf32.NewVM(elf, vm.Config{MemSize: 64 << 20})
		if err != nil {
			b.Fatal(err)
		}
		runBenchStream(b, v, encoded)
	}
}

func BenchmarkStreamPooledVM(b *testing.B) {
	c, elf, encoded := smallDeflateStream(b)
	pool := vmpool.New(vmpool.Options{VM: vm.Config{MemSize: 64 << 20}})
	elfFn := func() ([]byte, error) { return elf, nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := pool.Get(context.Background(), c.Name, 0644, elfFn)
		if err != nil {
			b.Fatal(err)
		}
		lease.Release(runBenchStream(b, lease.VM(), encoded))
	}
}

// BenchmarkStreamPooledVMReset forces the reset path on every stream by
// alternating security modes: the cost of copy-on-reset from the
// pristine snapshot, without the parked-VM resume shortcut.
func BenchmarkStreamPooledVMReset(b *testing.B) {
	c, elf, encoded := smallDeflateStream(b)
	pool := vmpool.New(vmpool.Options{VM: vm.Config{MemSize: 64 << 20}})
	elfFn := func() ([]byte, error) { return elf, nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := pool.Get(context.Background(), c.Name, uint32(0600+i%2), elfFn)
		if err != nil {
			b.Fatal(err)
		}
		lease.Release(runBenchStream(b, lease.VM(), encoded))
	}
}

var (
	parallelArchOnce sync.Once
	parallelArch     []byte
	parallelArchErr  error
)

func parallelArchive(b *testing.B) []byte {
	parallelArchOnce.Do(func() {
		var buf bytes.Buffer
		w := NewWriter(&buf, WriterOptions{})
		for i := 0; i < 16; i++ {
			data := bytes.Repeat([]byte(fmt.Sprintf("archive entry %02d | ", i)), 800)
			if err := w.AddFile(fmt.Sprintf("doc%02d.txt", i), data, 0644); err != nil {
				parallelArchErr = err
				return
			}
		}
		parallelArchErr = w.Close()
		parallelArch = buf.Bytes()
	})
	if parallelArchErr != nil {
		b.Fatal(parallelArchErr)
	}
	return parallelArch
}

func benchExtractAll(b *testing.B, parallel int) {
	arch := parallelArchive(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenReader(arch)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range r.ExtractAll(context.Background(), WithMode(AlwaysVXA), WithReuseVM(true), WithParallel(parallel)) {
			if res.Err != nil {
				b.Fatalf("%s: %v", res.Entry.Name, res.Err)
			}
		}
	}
}

func BenchmarkExtractAllSerial(b *testing.B)   { benchExtractAll(b, 1) }
func BenchmarkExtractAllParallel(b *testing.B) { benchExtractAll(b, 0) }
