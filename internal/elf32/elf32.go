// Package elf32 reads and writes the 32-bit x86 ELF executables that
// carry VXA decoders. Archived decoders are "simply ELF executables for
// the 32-bit x86 architecture" (paper §3.2); this package produces a
// minimal static executable — ELF header plus two PT_LOAD segments
// (read-only text+rodata, writable data+bss) — and parses the same format
// back for loading into the virtual machine.
package elf32

import (
	"encoding/binary"
	"errors"
	"fmt"

	"vxa/internal/vm"
	"vxa/internal/x86/asm"
)

// ELF constants for the subset we emit and accept.
const (
	etExec    = 2
	emI386    = 3
	evCurrent = 1

	ptLoad = 1

	pfX = 1
	pfW = 2
	pfR = 4

	ehSize = 52 // ELF32 header size
	phSize = 32 // program header size
)

// ErrNotELF reports that the input is not an ELF file at all.
var ErrNotELF = errors.New("elf32: not an ELF file")

// ErrBadELF reports a structurally invalid or unsupported ELF file.
var ErrBadELF = errors.New("elf32: unsupported or malformed executable")

// Segment is one loadable program segment.
type Segment struct {
	Vaddr    uint32
	Data     []byte
	MemSize  uint32 // >= len(Data); the tail is zero-initialized
	ReadOnly bool
}

// Program is a parsed executable image.
type Program struct {
	Entry    uint32
	Segments []Segment
}

// Write serializes a linked image as a static ELF32 executable with the
// given entry symbol.
func Write(im *asm.Image, entrySym string) ([]byte, error) {
	entry, ok := im.Symbols[entrySym]
	if !ok {
		return nil, fmt.Errorf("elf32: entry symbol %q not defined", entrySym)
	}

	ro := append(append([]byte{}, im.Text...), im.ROData...)
	rw := im.Data
	bss := im.BSSSize

	// File layout: [ehdr][phdr x2][ro][rw]; segments are file-offset
	// aligned to their address modulo page size is not required by our
	// loader, so we keep the file dense.
	hdrSize := uint32(ehSize + 2*phSize)
	roOff := hdrSize
	rwOff := roOff + uint32(len(ro))

	buf := make([]byte, 0, int(rwOff)+len(rw))
	le := binary.LittleEndian

	// ELF header.
	ehdr := make([]byte, ehSize)
	copy(ehdr, []byte{0x7F, 'E', 'L', 'F', 1 /*ELFCLASS32*/, 1 /*LSB*/, evCurrent})
	le.PutUint16(ehdr[16:], etExec)
	le.PutUint16(ehdr[18:], emI386)
	le.PutUint32(ehdr[20:], evCurrent)
	le.PutUint32(ehdr[24:], entry)
	le.PutUint32(ehdr[28:], ehSize) // phoff
	le.PutUint32(ehdr[32:], 0)      // shoff: no section table
	le.PutUint32(ehdr[36:], 0)      // flags
	le.PutUint16(ehdr[40:], ehSize)
	le.PutUint16(ehdr[42:], phSize)
	le.PutUint16(ehdr[44:], 2) // phnum
	buf = append(buf, ehdr...)

	phdr := func(off, vaddr, filesz, memsz, flags uint32) {
		p := make([]byte, phSize)
		le.PutUint32(p[0:], ptLoad)
		le.PutUint32(p[4:], off)
		le.PutUint32(p[8:], vaddr)
		le.PutUint32(p[12:], vaddr) // paddr
		le.PutUint32(p[16:], filesz)
		le.PutUint32(p[20:], memsz)
		le.PutUint32(p[24:], flags)
		le.PutUint32(p[28:], 4) // align
		buf = append(buf, p...)
	}
	phdr(roOff, im.Base, uint32(len(ro)), uint32(len(ro)), pfR|pfX)
	phdr(rwOff, im.DataBase(), uint32(len(rw)), uint32(len(rw))+bss, pfR|pfW)

	buf = append(buf, ro...)
	buf = append(buf, rw...)
	return buf, nil
}

// Parse validates and decodes an ELF32 x86 executable.
func Parse(b []byte) (*Program, error) {
	if len(b) < ehSize || b[0] != 0x7F || b[1] != 'E' || b[2] != 'L' || b[3] != 'F' {
		return nil, ErrNotELF
	}
	le := binary.LittleEndian
	if b[4] != 1 || b[5] != 1 {
		return nil, fmt.Errorf("%w: not a little-endian 32-bit image", ErrBadELF)
	}
	if le.Uint16(b[16:]) != etExec {
		return nil, fmt.Errorf("%w: not an executable", ErrBadELF)
	}
	if le.Uint16(b[18:]) != emI386 {
		return nil, fmt.Errorf("%w: machine is not x86-32", ErrBadELF)
	}
	phoff := le.Uint32(b[28:])
	phentsize := le.Uint16(b[42:])
	phnum := le.Uint16(b[44:])
	if phentsize < phSize || phnum == 0 || phnum > 16 {
		return nil, fmt.Errorf("%w: bad program header table", ErrBadELF)
	}

	p := &Program{Entry: le.Uint32(b[24:])}
	for i := 0; i < int(phnum); i++ {
		off := int(phoff) + i*int(phentsize)
		if off+phSize > len(b) {
			return nil, fmt.Errorf("%w: program header out of range", ErrBadELF)
		}
		h := b[off:]
		if le.Uint32(h[0:]) != ptLoad {
			continue
		}
		fileOff := le.Uint32(h[4:])
		vaddr := le.Uint32(h[8:])
		filesz := le.Uint32(h[16:])
		memsz := le.Uint32(h[20:])
		flags := le.Uint32(h[24:])
		if memsz < filesz {
			return nil, fmt.Errorf("%w: memsz < filesz", ErrBadELF)
		}
		end := uint64(fileOff) + uint64(filesz)
		if end > uint64(len(b)) {
			return nil, fmt.Errorf("%w: segment data out of range", ErrBadELF)
		}
		p.Segments = append(p.Segments, Segment{
			Vaddr:    vaddr,
			Data:     b[fileOff : fileOff+filesz],
			MemSize:  memsz,
			ReadOnly: flags&pfW == 0,
		})
	}
	if len(p.Segments) == 0 {
		return nil, fmt.Errorf("%w: no loadable segments", ErrBadELF)
	}
	return p, nil
}

// Load maps a parsed program into a VM and sets its entry point.
func Load(v *vm.VM, p *Program) error {
	for _, s := range p.Segments {
		if err := v.MapSegment(s.Vaddr, s.Data, s.MemSize, s.ReadOnly); err != nil {
			return err
		}
	}
	v.SetEntry(p.Entry)
	return nil
}

// NewVM parses an ELF image and returns a fresh VM with it loaded — the
// common path for running an archived decoder.
func NewVM(elfBytes []byte, cfg vm.Config) (*vm.VM, error) {
	p, err := Parse(elfBytes)
	if err != nil {
		return nil, err
	}
	v, err := vm.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := Load(v, p); err != nil {
		return nil, err
	}
	return v, nil
}
