package elf32

import (
	"bytes"
	"debug/elf"
	"errors"
	"testing"

	"vxa/internal/vm"
	"vxa/internal/x86"
	"vxa/internal/x86/asm"
)

// buildImage assembles a trivial program: exit(7) after touching data/bss.
func buildImage(t *testing.T) *asm.Image {
	t.Helper()
	u := asm.New()
	u.DefData("greeting", asm.ROData, []byte("hello"))
	u.DefData("counter", asm.Data, []byte{1, 0, 0, 0})
	u.DefBSS("scratch", 64, 4)
	u.Label("_start")
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.MAbs("counter", 0, 4))
	u.Op2(x86.MOV, x86.R(x86.EBX), x86.ISym("scratch"))
	u.Op2(x86.MOV, x86.M(x86.EBX, 0), x86.R(x86.EAX))
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(vm.SysExit))
	u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(7))
	u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	im, err := u.Link(vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestWriteParseRoundTrip(t *testing.T) {
	im := buildImage(t)
	b, err := Write(im, "_start")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != im.Symbols["_start"] {
		t.Fatalf("entry = %#x, want %#x", p.Entry, im.Symbols["_start"])
	}
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(p.Segments))
	}
	if !p.Segments[0].ReadOnly || p.Segments[1].ReadOnly {
		t.Fatal("segment protections wrong")
	}
	// BSS must be reflected as memsz > filesz.
	if p.Segments[1].MemSize <= uint32(len(p.Segments[1].Data)) {
		t.Fatal("BSS lost in round trip")
	}
}

// TestStdlibCanParse cross-checks our writer against Go's debug/elf.
func TestStdlibCanParse(t *testing.T) {
	im := buildImage(t)
	b, err := Write(im, "_start")
	if err != nil {
		t.Fatal(err)
	}
	f, err := elf.NewFile(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("debug/elf rejects our output: %v", err)
	}
	defer f.Close()
	if f.Machine != elf.EM_386 || f.Class != elf.ELFCLASS32 || f.Type != elf.ET_EXEC {
		t.Fatalf("debug/elf sees machine=%v class=%v type=%v", f.Machine, f.Class, f.Type)
	}
	if len(f.Progs) != 2 {
		t.Fatalf("debug/elf sees %d program headers, want 2", len(f.Progs))
	}
}

func TestLoadAndRun(t *testing.T) {
	im := buildImage(t)
	b, err := Write(im, "_start")
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVM(b, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := v.Run()
	if err != nil || st != vm.StatusExit || v.ExitCode() != 7 {
		t.Fatalf("st=%v err=%v code=%d", st, err, v.ExitCode())
	}
}

func TestParseRejects(t *testing.T) {
	if _, err := Parse([]byte("PK\x03\x04 not an elf")); !errors.Is(err, ErrNotELF) {
		t.Errorf("zip magic: %v, want ErrNotELF", err)
	}
	im := buildImage(t)
	b, _ := Write(im, "_start")

	// 64-bit class.
	b64 := append([]byte{}, b...)
	b64[4] = 2
	if _, err := Parse(b64); !errors.Is(err, ErrBadELF) {
		t.Errorf("elf64: %v, want ErrBadELF", err)
	}

	// Wrong machine (ARM = 40).
	bArm := append([]byte{}, b...)
	bArm[18] = 40
	if _, err := Parse(bArm); !errors.Is(err, ErrBadELF) {
		t.Errorf("arm: %v, want ErrBadELF", err)
	}

	// Truncated segment data.
	if _, err := Parse(b[:len(b)-8]); !errors.Is(err, ErrBadELF) {
		t.Errorf("truncated: %v, want ErrBadELF", err)
	}
}
