package bench

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vxa/internal/obs"
	"vxa/internal/server"
)

// LoadRow is one codec's open-loop load measurement against vxad:
// latency percentiles under Poisson arrivals at a fixed offered rate,
// plus whole-process allocations per request (client and server share
// the process over HTTP loopback, so the figure is the serving stack's
// end-to-end allocation cost).
type LoadRow struct {
	Codec        string        `json:"codec"`
	TargetRate   float64       `json:"target_rate_per_sec"`
	AchievedRate float64       `json:"achieved_rate_per_sec"`
	Duration     time.Duration `json:"duration_ns"`
	Concurrency  int           `json:"concurrency"`
	Requests     int           `json:"requests"`
	Errors       int           `json:"errors"`
	Mean         time.Duration `json:"mean_ns"`
	P50          time.Duration `json:"p50_ns"`
	P90          time.Duration `json:"p90_ns"`
	P99          time.Duration `json:"p99_ns"`
	Max          time.Duration `json:"max_ns"`
	AllocsPerOp  float64       `json:"allocs_per_op"`
}

// loadSeed fixes the arrival-process randomness so two runs of the
// harness offer the same request schedule (run-to-run latency deltas
// then reflect the code, not the dice).
const loadSeed = 1

// LoadBench drives vxad's /v1/decode with an open-loop Poisson arrival
// process at `rate` requests/second for `dur` per codec, with at most
// `conc` in-flight client requests. Open loop means latency is measured
// from each request's *scheduled* arrival, not its dispatch: when the
// server falls behind, the queueing delay lands in the percentiles
// instead of being hidden by a coordinated-omission client that only
// asks as fast as the server answers.
func LoadBench(rate float64, dur time.Duration, conc int) ([]LoadRow, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("bench: load rate must be positive (got %v)", rate)
	}
	if dur <= 0 {
		return nil, fmt.Errorf("bench: load duration must be positive (got %v)", dur)
	}
	if conc < 1 {
		conc = 2 * runtime.GOMAXPROCS(0)
	}
	ws, err := serverWorkloads()
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		if _, err := w.Codec.DecoderELF(); err != nil {
			return nil, err
		}
	}
	var rows []LoadRow
	for _, w := range ws {
		row, err := loadOne(w, rate, dur, conc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// loadOne runs one codec's open-loop pass against a fresh server.
func loadOne(w Workload, rate float64, dur time.Duration, conc int) (LoadRow, error) {
	// The client's conc slots are the only throttle: the server queue is
	// sized past it so admission never sheds, and what the harness
	// measures is latency, not 503s.
	srv := server.New(server.Config{
		MemSize:      64 << 20,
		MaxInFlight:  runtime.GOMAXPROCS(0),
		MaxQueue:     2 * conc,
		QueueTimeout: time.Minute,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	url := ts.URL + "/v1/decode?codec=" + w.Codec.Name

	post := func() error {
		resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(w.Encoded))
		if err != nil {
			return err
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		if int(n) != len(w.Raw) {
			return fmt.Errorf("decoded %d bytes, want %d", n, len(w.Raw))
		}
		return nil
	}
	// Prime the snapshot cache: the load regime is the steady state, not
	// the one-time miss path (ServerBench measures that split).
	if err := post(); err != nil {
		return LoadRow{}, fmt.Errorf("bench: %s prime: %w", w.Codec.Name, err)
	}

	// Pre-draw the Poisson arrival schedule so the dispatch loop does no
	// arithmetic under time pressure.
	rng := rand.New(rand.NewSource(loadSeed))
	var offsets []time.Duration
	for t := time.Duration(0); ; {
		t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if t >= dur {
			break
		}
		offsets = append(offsets, t)
	}
	if len(offsets) == 0 {
		return LoadRow{}, fmt.Errorf("bench: %s: no arrivals in %v at %v req/s", w.Codec.Name, dur, rate)
	}

	hist := &obs.Histogram{}
	var errCount atomic.Int64
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for _, off := range offsets {
		sched := start.Add(off)
		if sleep := time.Until(sched); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := post(); err != nil {
				errCount.Add(1)
			}
			hist.Observe(time.Since(sched))
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	snap := hist.Snapshot()
	return LoadRow{
		Codec:        w.Codec.Name,
		TargetRate:   rate,
		AchievedRate: float64(len(offsets)) / elapsed.Seconds(),
		Duration:     dur,
		Concurrency:  conc,
		Requests:     len(offsets),
		Errors:       int(errCount.Load()),
		Mean:         snap.Mean(),
		P50:          snap.Quantile(0.50),
		P90:          snap.Quantile(0.90),
		P99:          snap.Quantile(0.99),
		Max:          time.Duration(snap.Max),
		AllocsPerOp:  float64(m1.Mallocs-m0.Mallocs) / float64(len(offsets)),
	}, nil
}

// LoadRegression is one codec's p99 comparison against a baseline load
// run.
type LoadRegression struct {
	Codec    string        `json:"codec"`
	Baseline time.Duration `json:"baseline_p99_ns"`
	Current  time.Duration `json:"p99_ns"`
	Ratio    float64       `json:"ratio"` // Current / Baseline; > 1 is a regression
}

// CompareLoad matches current load rows against a baseline by codec and
// returns per-codec p99 ratios plus their geometric mean. Codecs on
// only one side are skipped, as are degenerate zero-valued p99s.
func CompareLoad(baseline, current []LoadRow) ([]LoadRegression, float64) {
	base := make(map[string]LoadRow, len(baseline))
	for _, r := range baseline {
		base[r.Codec] = r
	}
	var regs []LoadRegression
	logSum, matched := 0.0, 0
	for _, r := range current {
		b, ok := base[r.Codec]
		if !ok || b.P99 <= 0 || r.P99 <= 0 {
			continue
		}
		ratio := float64(r.P99) / float64(b.P99)
		regs = append(regs, LoadRegression{Codec: r.Codec, Baseline: b.P99, Current: r.P99, Ratio: ratio})
		logSum += math.Log(ratio)
		matched++
	}
	if matched == 0 {
		return regs, 1
	}
	return regs, math.Exp(logSum / float64(matched))
}
