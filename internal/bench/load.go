package bench

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"vxa/internal/obs"
	"vxa/internal/server"
)

// LoadRow is one codec's open-loop load measurement against vxad:
// latency percentiles under Poisson arrivals at a fixed offered rate,
// plus whole-process allocations per request (client and server share
// the process over HTTP loopback, so the figure is the serving stack's
// end-to-end allocation cost). Sanctioned non-200 outcomes are broken
// out — a shed (503/504/521 with Retry-After), a local hold-down
// (nothing sent; the client honored earlier backpressure) and an
// honest truncation are the protocol working, not failures, and only
// Errors counts the unsanctioned remainder.
type LoadRow struct {
	Codec        string        `json:"codec"`
	TargetRate   float64       `json:"target_rate_per_sec"`
	AchievedRate float64       `json:"achieved_rate_per_sec"`
	Duration     time.Duration `json:"duration_ns"`
	Concurrency  int           `json:"concurrency"`
	Requests     int           `json:"requests"`
	Errors       int           `json:"errors"`
	Sheds        int           `json:"sheds"`
	Held         int           `json:"held"`
	Truncated    int           `json:"truncated"`
	Mean         time.Duration `json:"mean_ns"`
	P50          time.Duration `json:"p50_ns"`
	P90          time.Duration `json:"p90_ns"`
	P99          time.Duration `json:"p99_ns"`
	Max          time.Duration `json:"max_ns"`
	AllocsPerOp  float64       `json:"allocs_per_op"`
}

// loadSeed fixes the arrival-process randomness so two runs of the
// harness offer the same request schedule (run-to-run latency deltas
// then reflect the code, not the dice).
const loadSeed = 1

// loadOutcome classifies one driven request.
type loadOutcome int

const (
	outcomeOK loadOutcome = iota
	outcomeShed
	outcomeHeld
	outcomeTruncated
	outcomeError
	numOutcomes
)

// openLoopResult is what the shared engine hands back: the latency
// distribution plus the outcome tally.
type openLoopResult struct {
	Requests     int
	Outcomes     [numOutcomes]int
	AchievedRate float64
	AllocsPerOp  float64
	Snap         obs.HistSnapshot
}

// runOpenLoop is the shared open-loop engine: a Poisson arrival
// process at `rate` requests/second for `dur`, at most `conc` requests
// in flight, each arrival driven through `post`. Open loop means
// latency is measured from each request's *scheduled* arrival, not its
// dispatch: when the server falls behind, the queueing delay lands in
// the percentiles instead of being hidden by a coordinated-omission
// client that only asks as fast as the server answers. Held-down
// arrivals never touch the wire, so they are tallied but not observed
// into the latency distribution.
func runOpenLoop(rate float64, dur time.Duration, conc int, post func() loadOutcome) (openLoopResult, error) {
	// Pre-draw the arrival schedule so the dispatch loop does no
	// arithmetic under time pressure.
	rng := rand.New(rand.NewSource(loadSeed))
	var offsets []time.Duration
	for t := time.Duration(0); ; {
		t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if t >= dur {
			break
		}
		offsets = append(offsets, t)
	}
	if len(offsets) == 0 {
		return openLoopResult{}, fmt.Errorf("bench: no arrivals in %v at %v req/s", dur, rate)
	}

	hist := &obs.Histogram{}
	var mu sync.Mutex
	var outcomes [numOutcomes]int
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for _, off := range offsets {
		sched := start.Add(off)
		if sleep := time.Until(sched); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out := post()
			mu.Lock()
			outcomes[out]++
			mu.Unlock()
			if out != outcomeHeld {
				hist.Observe(time.Since(sched))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	return openLoopResult{
		Requests:     len(offsets),
		Outcomes:     outcomes,
		AchievedRate: float64(len(offsets)) / elapsed.Seconds(),
		AllocsPerOp:  float64(m1.Mallocs-m0.Mallocs) / float64(len(offsets)),
		Snap:         hist.Snapshot(),
	}, nil
}

// decodePoster builds the per-arrival request function: one POST to a
// /v1/decode endpoint through the shed-aware client, classified into
// the outcome taxonomy.
func decodePoster(c *server.Client, url string, encoded []byte, wantLen int) func() loadOutcome {
	return func() loadOutcome {
		resp, err := c.Post(url, "application/octet-stream", encoded)
		if errors.Is(err, server.ErrHeldDown) {
			return outcomeHeld
		}
		if err != nil {
			return outcomeError
		}
		n, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if server.IsShedStatus(resp.StatusCode) {
			return outcomeShed
		}
		if resp.StatusCode != http.StatusOK {
			return outcomeError
		}
		if cerr != nil {
			return outcomeTruncated // committed 200 cut mid-stream: honest
		}
		if int(n) != wantLen {
			return outcomeError
		}
		return outcomeOK
	}
}

// loadRowFrom assembles the public row from an engine result.
func loadRowFrom(codec string, rate float64, dur time.Duration, conc int, res openLoopResult) LoadRow {
	return LoadRow{
		Codec:        codec,
		TargetRate:   rate,
		AchievedRate: res.AchievedRate,
		Duration:     dur,
		Concurrency:  conc,
		Requests:     res.Requests,
		Errors:       res.Outcomes[outcomeError],
		Sheds:        res.Outcomes[outcomeShed],
		Held:         res.Outcomes[outcomeHeld],
		Truncated:    res.Outcomes[outcomeTruncated],
		Mean:         res.Snap.Mean(),
		P50:          res.Snap.Quantile(0.50),
		P90:          res.Snap.Quantile(0.90),
		P99:          res.Snap.Quantile(0.99),
		Max:          time.Duration(res.Snap.Max),
		AllocsPerOp:  res.AllocsPerOp,
	}
}

// LoadBench drives vxad's /v1/decode with the open-loop engine, one
// fresh in-process server per codec.
func LoadBench(rate float64, dur time.Duration, conc int) ([]LoadRow, error) {
	if err := validateLoad(rate, dur); err != nil {
		return nil, err
	}
	if conc < 1 {
		conc = 2 * runtime.GOMAXPROCS(0)
	}
	ws, err := serverWorkloads()
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		if _, err := w.Codec.DecoderELF(); err != nil {
			return nil, err
		}
	}
	var rows []LoadRow
	for _, w := range ws {
		row, err := loadOne(w, rate, dur, conc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LoadBenchTarget drives an already-running vxad or vxrouter at
// `target` (e.g. "http://127.0.0.1:7787") with the same open-loop
// schedule, instead of spinning an in-process server. This is how the
// fleet smoke tests exercise a real router+shards topology: the
// process under load is external, so AllocsPerOp reflects only the
// client side and the interesting columns are the percentiles and the
// outcome tally.
func LoadBenchTarget(target string, rate float64, dur time.Duration, conc int) ([]LoadRow, error) {
	if err := validateLoad(rate, dur); err != nil {
		return nil, err
	}
	if conc < 1 {
		conc = 2 * runtime.GOMAXPROCS(0)
	}
	ws, err := serverWorkloads()
	if err != nil {
		return nil, err
	}
	var rows []LoadRow
	for _, w := range ws {
		url := target + "/v1/decode?codec=" + w.Codec.Name
		client := &server.Client{}
		// Prime the target's snapshot cache so the measured regime is the
		// steady state; a shed prime is tolerated (the run itself will
		// classify), anything else fatal.
		if resp, err := client.Post(url, "application/octet-stream", w.Encoded); err != nil {
			if !errors.Is(err, server.ErrHeldDown) {
				return nil, fmt.Errorf("bench: %s prime against %s: %w", w.Codec.Name, target, err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && !server.IsShedStatus(resp.StatusCode) {
				return nil, fmt.Errorf("bench: %s prime against %s: status %d", w.Codec.Name, target, resp.StatusCode)
			}
		}
		res, err := runOpenLoop(rate, dur, conc, decodePoster(client, url, w.Encoded, len(w.Raw)))
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.Codec.Name, err)
		}
		rows = append(rows, loadRowFrom(w.Codec.Name, rate, dur, conc, res))
	}
	return rows, nil
}

func validateLoad(rate float64, dur time.Duration) error {
	if rate <= 0 {
		return fmt.Errorf("bench: load rate must be positive (got %v)", rate)
	}
	if dur <= 0 {
		return fmt.Errorf("bench: load duration must be positive (got %v)", dur)
	}
	return nil
}

// loadOne runs one codec's open-loop pass against a fresh server.
func loadOne(w Workload, rate float64, dur time.Duration, conc int) (LoadRow, error) {
	// The client's conc slots are the only throttle: the server queue is
	// sized past it so admission never sheds, and what the harness
	// measures is latency, not 503s.
	srv := server.New(server.Config{
		MemSize:      64 << 20,
		MaxInFlight:  runtime.GOMAXPROCS(0),
		MaxQueue:     2 * conc,
		QueueTimeout: time.Minute,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/decode?codec=" + w.Codec.Name
	client := &server.Client{HTTP: ts.Client()}

	post := decodePoster(client, url, w.Encoded, len(w.Raw))
	// Prime the snapshot cache: the load regime is the steady state, not
	// the one-time miss path (ServerBench measures that split).
	if out := post(); out != outcomeOK {
		return LoadRow{}, fmt.Errorf("bench: %s prime: outcome %d", w.Codec.Name, out)
	}
	res, err := runOpenLoop(rate, dur, conc, post)
	if err != nil {
		return LoadRow{}, fmt.Errorf("bench: %s: %w", w.Codec.Name, err)
	}
	return loadRowFrom(w.Codec.Name, rate, dur, conc, res), nil
}

// LoadRegression is one codec's p99 comparison against a baseline load
// run.
type LoadRegression struct {
	Codec    string        `json:"codec"`
	Baseline time.Duration `json:"baseline_p99_ns"`
	Current  time.Duration `json:"p99_ns"`
	Ratio    float64       `json:"ratio"` // Current / Baseline; > 1 is a regression
}

// CompareLoad matches current load rows against a baseline by codec and
// returns per-codec p99 ratios plus their geometric mean. Codecs on
// only one side are skipped, as are degenerate zero-valued p99s.
func CompareLoad(baseline, current []LoadRow) ([]LoadRegression, float64) {
	base := make(map[string]LoadRow, len(baseline))
	for _, r := range baseline {
		base[r.Codec] = r
	}
	var regs []LoadRegression
	logSum, matched := 0.0, 0
	for _, r := range current {
		b, ok := base[r.Codec]
		if !ok || b.P99 <= 0 || r.P99 <= 0 {
			continue
		}
		ratio := float64(r.P99) / float64(b.P99)
		regs = append(regs, LoadRegression{Codec: r.Codec, Baseline: b.P99, Current: r.P99, Ratio: ratio})
		logSum += math.Log(ratio)
		matched++
	}
	if matched == 0 {
		return regs, 1
	}
	return regs, math.Exp(logSum / float64(matched))
}
