// Package bench is the evaluation harness: it regenerates every table
// and figure of the paper's §5 against this reproduction's codecs and
// virtual machine. The cmd/vxbench tool prints the results; the
// repository-root benchmarks time the same workloads under testing.B.
package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"vxa/internal/bmp"
	"vxa/internal/codec"
	"vxa/internal/core"
	"vxa/internal/corpus"
	"vxa/internal/vm"
	"vxa/internal/wav"
)

// Workload is one codec's benchmark input: raw data plus encoded stream.
type Workload struct {
	Codec   *codec.Codec
	Raw     []byte
	Encoded []byte
}

// paperCodecs lists the six decoders of Table 1 in paper order.
var paperCodecs = []string{"deflate", "bwt", "dct", "haar", "lpc", "adpcm"}

// Workloads builds the Figure 7 corpus for every Table 1 codec:
// text for the general-purpose codecs, images for the image codecs,
// audio for the audio codecs. Sizes are scaled to interpreter speed and
// recorded in EXPERIMENTS.md.
func Workloads() ([]Workload, error) {
	text := corpus.Text(1<<18, 1)
	img := bmp.Encode(corpus.Image(256, 256, 2))
	aud := wav.Encode(corpus.Audio(88200, 2, 3))

	var out []Workload
	for _, name := range paperCodecs {
		c, ok := codec.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: codec %s not registered", name)
		}
		var raw []byte
		switch c.Output {
		case "BMP image":
			raw = img
		case "WAV audio":
			raw = aud
		default:
			raw = text
		}
		var enc bytes.Buffer
		if err := c.Encode(&enc, raw); err != nil {
			return nil, fmt.Errorf("bench: %s encode: %w", name, err)
		}
		out = append(out, Workload{Codec: c, Raw: raw, Encoded: enc.Bytes()})
	}
	return out, nil
}

// Fig7Row is one decoder's virtualization-cost measurement.
type Fig7Row struct {
	Codec       string
	InputBytes  int
	Native      time.Duration
	VX32        time.Duration
	VX32NoCache time.Duration // §4.2 ablation: fragment cache disabled
	Slowdown    float64       // VX32 / Native
	GuestMIPS   float64       // guest instructions per second under VX32
}

// Fig7 measures native vs virtualized decode time for every codec.
func Fig7(withAblation bool) ([]Fig7Row, error) {
	ws, err := Workloads()
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, w := range ws {
		row := Fig7Row{Codec: w.Codec.Name, InputBytes: len(w.Raw)}

		start := time.Now()
		if err := w.Codec.Decode(io.Discard, bytes.NewReader(w.Encoded)); err != nil {
			return nil, fmt.Errorf("%s native: %w", w.Codec.Name, err)
		}
		row.Native = time.Since(start)

		steps, dur, err := runVX(w, vm.Config{MemSize: 64 << 20})
		if err != nil {
			return nil, err
		}
		row.VX32 = dur
		row.GuestMIPS = float64(steps) / dur.Seconds() / 1e6
		if withAblation {
			_, durNC, err := runVX(w, vm.Config{MemSize: 64 << 20, NoBlockCache: true})
			if err != nil {
				return nil, err
			}
			row.VX32NoCache = durNC
		}
		row.Slowdown = float64(row.VX32) / float64(row.Native)
		rows = append(rows, row)
	}
	return rows, nil
}

func runVX(w Workload, cfg vm.Config) (steps uint64, dur time.Duration, err error) {
	elf, err := w.Codec.DecoderELF()
	if err != nil {
		return 0, 0, err
	}
	v, err := newVM(elf, cfg)
	if err != nil {
		return 0, 0, err
	}
	v.Stdin = bytes.NewReader(w.Encoded)
	v.Stdout = io.Discard
	start := time.Now()
	st, err := v.Run()
	dur = time.Since(start)
	if err != nil {
		return 0, 0, fmt.Errorf("%s vx32: %w", w.Codec.Name, err)
	}
	if st == vm.StatusExit && v.ExitCode() != 0 {
		return 0, 0, fmt.Errorf("%s vx32: exit %d", w.Codec.Name, v.ExitCode())
	}
	return v.Stats().Steps, dur, nil
}

// Table1Row is one line of the decoder inventory.
type Table1Row struct {
	Codec, Desc, Output, Kind string
}

// Table1 reproduces the decoder inventory table.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, c := range codec.All() {
		kind := "full codec"
		switch c.Kind {
		case codec.Redec:
			kind = "redec"
		case codec.GeneralPurpose:
			kind = "general-purpose"
		}
		rows = append(rows, Table1Row{c.Name, c.Desc, c.Output, kind})
	}
	return rows
}

// Table2Row is one decoder's code-size accounting.
type Table2Row struct {
	Codec          string
	Total          int // ELF executable bytes
	DecoderBytes   int // text attributable to the decoder proper
	RuntimeBytes   int // text attributable to the libvx runtime ("C library")
	Compressed     int // deflate-compressed size, as stored in archives
	DecoderPercent float64
	RuntimePercent float64
}

// Table2 reproduces the decoder code-size table.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range paperCodecs {
		c, _ := codec.ByName(name)
		b, err := c.Build()
		if err != nil {
			return nil, err
		}
		var comp bytes.Buffer
		zw := newFlateWriter(&comp)
		zw.Write(b.ELF)
		zw.Close()
		text := float64(b.UserTextBytes + b.RuntimeTextBytes)
		rows = append(rows, Table2Row{
			Codec:          name,
			Total:          len(b.ELF),
			DecoderBytes:   int(b.UserTextBytes),
			RuntimeBytes:   int(b.RuntimeTextBytes),
			Compressed:     comp.Len(),
			DecoderPercent: 100 * float64(b.UserTextBytes) / text,
			RuntimePercent: 100 * float64(b.RuntimeTextBytes) / text,
		})
	}
	return rows, nil
}

// OverheadRow is one §5.3 storage-overhead scenario.
type OverheadRow struct {
	Scenario     string
	PayloadBytes int
	DecoderBytes int
	ArchiveBytes int
	OverheadPct  float64
}

// Overhead reproduces the §5.3 analysis: decoder storage cost amortized
// over archives of one and ten audio tracks, lossy and lossless.
func Overhead() ([]OverheadRow, error) {
	var rows []OverheadRow
	scenarios := []struct {
		name  string
		songs int
		lossy bool
	}{
		{"1 track, lossy (adpcm)", 1, true},
		{"10 tracks, lossy (adpcm)", 10, true},
		{"1 track, lossless (lpc)", 1, false},
		{"10 tracks, lossless (lpc)", 10, false},
	}
	for _, sc := range scenarios {
		var buf bytes.Buffer
		w := core.NewWriter(&buf, core.WriterOptions{AllowLossy: sc.lossy})
		payload := 0
		for i := 0; i < sc.songs; i++ {
			song := corpus.Song(150, int64(10+i)) // 2.5-minute track (scaled)
			if err := w.AddFile(fmt.Sprintf("track%02d.wav", i+1), song, 0644); err != nil {
				return nil, err
			}
			payload += len(song)
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		// Decoder cost: size of the embedded pseudo-files = archive size
		// minus entries and directory; measure directly by rebuilding
		// without decoders is invasive, so approximate with the
		// compressed decoder size Table 2 reports.
		codecName := "lpc"
		if sc.lossy {
			codecName = "adpcm"
		}
		c, _ := codec.ByName(codecName)
		b, err := c.Build()
		if err != nil {
			return nil, err
		}
		var comp bytes.Buffer
		zw := newFlateWriter(&comp)
		zw.Write(b.ELF)
		zw.Close()
		rows = append(rows, OverheadRow{
			Scenario:     sc.name,
			PayloadBytes: payload,
			DecoderBytes: comp.Len(),
			ArchiveBytes: buf.Len(),
			OverheadPct:  100 * float64(comp.Len()) / float64(buf.Len()),
		})
	}
	return rows, nil
}
