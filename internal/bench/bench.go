// Package bench is the evaluation harness: it regenerates every table
// and figure of the paper's §5 against this reproduction's codecs and
// virtual machine. The cmd/vxbench tool prints the results; the
// repository-root benchmarks time the same workloads under testing.B.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"vxa/internal/artifact"
	"vxa/internal/bmp"
	"vxa/internal/codec"
	"vxa/internal/core"
	"vxa/internal/corpus"
	"vxa/internal/server"
	"vxa/internal/vm"
	"vxa/internal/vmpool"
	"vxa/internal/vxcc"
	"vxa/internal/wav"
)

// Workload is one codec's benchmark input: raw data plus encoded stream.
type Workload struct {
	Codec   *codec.Codec
	Raw     []byte
	Encoded []byte
}

// paperCodecs lists the six decoders of Table 1 in paper order.
var paperCodecs = []string{"deflate", "bwt", "dct", "haar", "lpc", "adpcm"}

// Workloads builds the Figure 7 corpus for every Table 1 codec:
// text for the general-purpose codecs, images for the image codecs,
// audio for the audio codecs. Sizes are scaled to interpreter speed and
// recorded in EXPERIMENTS.md.
func Workloads() ([]Workload, error) {
	text := corpus.Text(1<<18, 1)
	img := bmp.Encode(corpus.Image(256, 256, 2))
	aud := wav.Encode(corpus.Audio(88200, 2, 3))

	var out []Workload
	for _, name := range paperCodecs {
		c, ok := codec.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: codec %s not registered", name)
		}
		var raw []byte
		switch c.Output {
		case "BMP image":
			raw = img
		case "WAV audio":
			raw = aud
		default:
			raw = text
		}
		var enc bytes.Buffer
		if err := c.Encode(&enc, raw); err != nil {
			return nil, fmt.Errorf("bench: %s encode: %w", name, err)
		}
		out = append(out, Workload{Codec: c, Raw: raw, Encoded: enc.Bytes()})
	}
	return out, nil
}

// Fig7Row is one decoder's virtualization-cost measurement. The VX32
// time splits into the translate phase (decoding + lowering fragments to
// micro-ops) and the execute phase (running them); the translation
// engine's counters expose how the speedup mechanisms behaved.
type Fig7Row struct {
	Codec           string        `json:"codec"`
	InputBytes      int           `json:"input_bytes"`
	Native          time.Duration `json:"native_ns"`
	VX32            time.Duration `json:"vx32_ns"`
	VX32NoCache     time.Duration `json:"vx32_nocache_ns,omitempty"` // §4.2 ablation: fragment cache disabled; omitted when not measured
	Translate       time.Duration `json:"translate_ns"`              // decode+lower phase of the VX32 run
	Execute         time.Duration `json:"execute_ns"`                // VX32 minus the translate phase
	Slowdown        float64       `json:"slowdown"`                  // VX32 / Native
	SpeedupVsNative float64       `json:"speedup_vs_native"`         // Native / VX32 (< 1 while the VM is slower than native)
	GuestMIPS       float64       `json:"guest_mips"`                // guest instructions per second under VX32
	UopsExecuted    uint64        `json:"uops_executed"`
	BlocksChained   uint64        `json:"blocks_chained"`
	FlagsPerKuop    float64       `json:"flags_materialized_per_kuop"` // lazily materialized flag bits per 1000 uops
	Tier2Compiled   uint64        `json:"tier2_compiled"`              // superblock traces promoted to compiled form
	Tier2StepShare  float64       `json:"tier2_step_share"`            // fraction of guest instructions retired in tier-2 traces
}

// Fig7 measures native vs virtualized decode time for every codec.
func Fig7(withAblation bool) ([]Fig7Row, error) {
	ws, err := Workloads()
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, w := range ws {
		row := Fig7Row{Codec: w.Codec.Name, InputBytes: len(w.Raw)}

		start := time.Now()
		if err := w.Codec.Decode(io.Discard, bytes.NewReader(w.Encoded)); err != nil {
			return nil, fmt.Errorf("%s native: %w", w.Codec.Name, err)
		}
		row.Native = time.Since(start)

		stats, dur, err := runVX(w, vm.Config{MemSize: 64 << 20})
		if err != nil {
			return nil, err
		}
		row.VX32 = dur
		row.Translate = time.Duration(stats.TranslateNS)
		row.Execute = dur - row.Translate
		row.GuestMIPS = float64(stats.Steps) / dur.Seconds() / 1e6
		row.UopsExecuted = stats.UopsExecuted
		row.BlocksChained = stats.BlocksChained
		if stats.UopsExecuted > 0 {
			row.FlagsPerKuop = 1000 * float64(stats.FlagsMaterialized) / float64(stats.UopsExecuted)
		}
		row.Tier2Compiled = stats.Tier2Compiled
		if stats.Steps > 0 {
			row.Tier2StepShare = float64(stats.Tier2Steps) / float64(stats.Steps)
		}
		if withAblation {
			_, durNC, err := runVX(w, vm.Config{MemSize: 64 << 20, NoBlockCache: true})
			if err != nil {
				return nil, err
			}
			row.VX32NoCache = durNC
		}
		row.Slowdown = float64(row.VX32) / float64(row.Native)
		row.SpeedupVsNative = float64(row.Native) / float64(row.VX32)
		rows = append(rows, row)
	}
	return rows, nil
}

func runVX(w Workload, cfg vm.Config) (stats vm.Stats, dur time.Duration, err error) {
	elf, err := w.Codec.DecoderELF()
	if err != nil {
		return vm.Stats{}, 0, err
	}
	v, err := newVM(elf, cfg)
	if err != nil {
		return vm.Stats{}, 0, err
	}
	v.Stdin = bytes.NewReader(w.Encoded)
	v.Stdout = io.Discard
	start := time.Now()
	st, err := v.Run()
	dur = time.Since(start)
	if err != nil {
		return vm.Stats{}, 0, fmt.Errorf("%s vx32: %w", w.Codec.Name, err)
	}
	if st == vm.StatusExit && v.ExitCode() != 0 {
		return vm.Stats{}, 0, fmt.Errorf("%s vx32: exit %d", w.Codec.Name, v.ExitCode())
	}
	return v.Stats(), dur, nil
}

// AblationRow is one codec's per-optimizer-pass ablation: decode time
// with the full pipeline, with each pass individually disabled, and
// with the whole optimizer off. Output correctness under every
// configuration is pinned separately by the differential test wall
// (TestOptAblation); this measures only the speed each pass buys.
type AblationRow struct {
	Codec             string        `json:"codec"`
	Full              time.Duration `json:"full_ns"`
	NoFlagElision     time.Duration `json:"no_flag_elision_ns"`
	NoFusion          time.Duration `json:"no_fusion_ns"`
	NoSuperblocks     time.Duration `json:"no_superblocks_ns"`
	NoTier2           time.Duration `json:"no_tier2_ns"`
	NoOpt             time.Duration `json:"no_opt_ns"`
	FlagsElided       uint64        `json:"flags_elided"`       // full pipeline
	UopsFused         uint64        `json:"uops_fused"`         // full pipeline
	SuperblocksFormed uint64        `json:"superblocks_formed"` // full pipeline
	Tier2Compiled     uint64        `json:"tier2_compiled"`     // full pipeline
	Tier2Executed     uint64        `json:"tier2_executed"`     // full pipeline
}

// Ablation measures every codec under each optimizer-pass ablation.
func Ablation() ([]AblationRow, error) {
	ws, err := Workloads()
	if err != nil {
		return nil, err
	}
	configs := []vm.Config{
		{},
		{NoFlagElision: true},
		{NoFusion: true},
		{NoSuperblocks: true},
		{NoTier2: true},
		{NoFlagElision: true, NoFusion: true, NoSuperblocks: true},
	}
	var rows []AblationRow
	for _, w := range ws {
		row := AblationRow{Codec: w.Codec.Name}
		for i, cfg := range configs {
			cfg.MemSize = 64 << 20
			stats, dur, err := runVX(w, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s ablation %d: %w", w.Codec.Name, i, err)
			}
			switch i {
			case 0:
				row.Full = dur
				row.FlagsElided = stats.FlagsElided
				row.UopsFused = stats.UopsFused
				row.SuperblocksFormed = stats.SuperblocksFormed
				row.Tier2Compiled = stats.Tier2Compiled
				row.Tier2Executed = stats.Tier2Executed
			case 1:
				row.NoFlagElision = dur
			case 2:
				row.NoFusion = dur
			case 3:
				row.NoSuperblocks = dur
			case 4:
				row.NoTier2 = dur
			case 5:
				row.NoOpt = dur
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Regression is one codec's comparison against a baseline run.
type Regression struct {
	Codec    string        `json:"codec"`
	Baseline time.Duration `json:"baseline_vx32_ns"`
	Current  time.Duration `json:"vx32_ns"`
	Ratio    float64       `json:"ratio"` // Current / Baseline; > 1 is a regression
}

// CompareFig7 matches the current Figure-7 rows against a baseline run
// by codec name and returns the per-codec time ratios plus their
// geometric mean (1.0 = unchanged, above 1 = slower than the baseline).
// Codecs present on only one side are skipped.
func CompareFig7(baseline, current []Fig7Row) ([]Regression, float64) {
	base := make(map[string]Fig7Row, len(baseline))
	for _, r := range baseline {
		base[r.Codec] = r
	}
	var regs []Regression
	logSum, matched := 0.0, 0
	for _, r := range current {
		b, ok := base[r.Codec]
		if !ok || b.VX32 <= 0 || r.VX32 <= 0 {
			continue
		}
		ratio := float64(r.VX32) / float64(b.VX32)
		regs = append(regs, Regression{Codec: r.Codec, Baseline: b.VX32, Current: r.VX32, Ratio: ratio})
		logSum += math.Log(ratio)
		matched++
	}
	if matched == 0 {
		return regs, 1
	}
	return regs, math.Exp(logSum / float64(matched))
}

// Table1Row is one line of the decoder inventory.
type Table1Row struct {
	Codec  string `json:"codec"`
	Desc   string `json:"desc"`
	Output string `json:"output"`
	Kind   string `json:"kind"`
}

// Table1 reproduces the decoder inventory table.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, c := range codec.All() {
		kind := "full codec"
		switch c.Kind {
		case codec.Redec:
			kind = "redec"
		case codec.GeneralPurpose:
			kind = "general-purpose"
		}
		rows = append(rows, Table1Row{c.Name, c.Desc, c.Output, kind})
	}
	return rows
}

// Table2Row is one decoder's code-size accounting.
type Table2Row struct {
	Codec          string  `json:"codec"`
	Total          int     `json:"total_bytes"`      // ELF executable bytes
	DecoderBytes   int     `json:"decoder_bytes"`    // text attributable to the decoder proper
	RuntimeBytes   int     `json:"runtime_bytes"`    // text attributable to the libvx runtime ("C library")
	Compressed     int     `json:"compressed_bytes"` // deflate-compressed size, as stored in archives
	DecoderPercent float64 `json:"decoder_percent"`
	RuntimePercent float64 `json:"runtime_percent"`
}

// Table2 reproduces the decoder code-size table.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range paperCodecs {
		c, _ := codec.ByName(name)
		b, err := c.Build()
		if err != nil {
			return nil, err
		}
		var comp bytes.Buffer
		zw := newFlateWriter(&comp)
		zw.Write(b.ELF)
		zw.Close()
		text := float64(b.UserTextBytes + b.RuntimeTextBytes)
		rows = append(rows, Table2Row{
			Codec:          name,
			Total:          len(b.ELF),
			DecoderBytes:   int(b.UserTextBytes),
			RuntimeBytes:   int(b.RuntimeTextBytes),
			Compressed:     comp.Len(),
			DecoderPercent: 100 * float64(b.UserTextBytes) / text,
			RuntimePercent: 100 * float64(b.RuntimeTextBytes) / text,
		})
	}
	return rows, nil
}

// OverheadRow is one §5.3 storage-overhead scenario.
type OverheadRow struct {
	Scenario     string  `json:"scenario"`
	PayloadBytes int     `json:"payload_bytes"`
	DecoderBytes int     `json:"decoder_bytes"`
	ArchiveBytes int     `json:"archive_bytes"`
	OverheadPct  float64 `json:"overhead_pct"`
}

// Overhead reproduces the §5.3 analysis: decoder storage cost amortized
// over archives of one and ten audio tracks, lossy and lossless.
func Overhead() ([]OverheadRow, error) {
	var rows []OverheadRow
	scenarios := []struct {
		name  string
		songs int
		lossy bool
	}{
		{"1 track, lossy (adpcm)", 1, true},
		{"10 tracks, lossy (adpcm)", 10, true},
		{"1 track, lossless (lpc)", 1, false},
		{"10 tracks, lossless (lpc)", 10, false},
	}
	for _, sc := range scenarios {
		var buf bytes.Buffer
		w := core.NewWriter(&buf, core.WriterOptions{AllowLossy: sc.lossy})
		payload := 0
		for i := 0; i < sc.songs; i++ {
			song := corpus.Song(150, int64(10+i)) // 2.5-minute track (scaled)
			if err := w.AddFile(fmt.Sprintf("track%02d.wav", i+1), song, 0644); err != nil {
				return nil, err
			}
			payload += len(song)
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		// Decoder cost: size of the embedded pseudo-files = archive size
		// minus entries and directory; measure directly by rebuilding
		// without decoders is invasive, so approximate with the
		// compressed decoder size Table 2 reports.
		codecName := "lpc"
		if sc.lossy {
			codecName = "adpcm"
		}
		c, _ := codec.ByName(codecName)
		b, err := c.Build()
		if err != nil {
			return nil, err
		}
		var comp bytes.Buffer
		zw := newFlateWriter(&comp)
		zw.Write(b.ELF)
		zw.Close()
		rows = append(rows, OverheadRow{
			Scenario:     sc.name,
			PayloadBytes: payload,
			DecoderBytes: comp.Len(),
			ArchiveBytes: buf.Len(),
			OverheadPct:  100 * float64(comp.Len()) / float64(buf.Len()),
		})
	}
	return rows, nil
}

// smallWorkloads builds a reduced corpus for the per-stream pool
// benchmark: inputs small enough that decoder setup is a visible
// fraction of each stream.
func smallWorkloads() ([]Workload, error) {
	text := corpus.Text(1<<13, 1)
	img := bmp.Encode(corpus.Image(48, 48, 2))
	aud := wav.Encode(corpus.Audio(8820, 2, 3))

	var out []Workload
	for _, name := range paperCodecs {
		c, ok := codec.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: codec %s not registered", name)
		}
		var raw []byte
		switch c.Output {
		case "BMP image":
			raw = img
		case "WAV audio":
			raw = aud
		default:
			raw = text
		}
		var enc bytes.Buffer
		if err := c.Encode(&enc, raw); err != nil {
			return nil, fmt.Errorf("bench: %s encode: %w", name, err)
		}
		out = append(out, Workload{Codec: c, Raw: raw, Encoded: enc.Bytes()})
	}
	return out, nil
}

// PoolRow is one codec's per-stream decoder-setup measurement: a cold VM
// constructed from the ELF for every stream versus a pooled VM restored
// from the pristine snapshot.
type PoolRow struct {
	Codec           string        `json:"codec"`
	Streams         int           `json:"streams"`
	InputBytes      int           `json:"input_bytes"`
	ColdPerStream   time.Duration `json:"cold_per_stream_ns"`
	PooledPerStream time.Duration `json:"pooled_per_stream_ns"`
	Speedup         float64       `json:"speedup"` // Cold / Pooled
}

// PoolBench measures snapshot/reset amortization: the same short stream
// decoded `streams` times per codec, once with a fresh VM per stream
// (re-parsing the decoder ELF each time) and once drawing VMs from a
// vmpool. Alternating security modes forces the pool through its reset
// path on every stream, so the pooled figure includes the copy-on-reset
// cost, not just parked-VM resumes.
func PoolBench(streams int) ([]PoolRow, error) {
	if streams < 1 {
		return nil, fmt.Errorf("bench: streams must be >= 1 (got %d)", streams)
	}
	ws, err := smallWorkloads()
	if err != nil {
		return nil, err
	}
	cfg := vm.Config{MemSize: 64 << 20}
	var rows []PoolRow
	for _, w := range ws {
		elf, err := w.Codec.DecoderELF()
		if err != nil {
			return nil, err
		}
		runStream := func(v *vm.VM) (bool, error) {
			reusable, err := v.RunStream(context.Background(), bytes.NewReader(w.Encoded), io.Discard, nil, vm.StreamFuel(len(w.Encoded)))
			if err != nil {
				return false, fmt.Errorf("%s: %w", w.Codec.Name, err)
			}
			return reusable, nil
		}

		start := time.Now()
		for i := 0; i < streams; i++ {
			v, err := newVM(elf, cfg)
			if err != nil {
				return nil, err
			}
			if _, err := runStream(v); err != nil {
				return nil, err
			}
		}
		cold := time.Since(start)

		pool := vmpool.New(vmpool.Options{VM: cfg})
		elfFn := func() ([]byte, error) { return elf, nil }
		start = time.Now()
		for i := 0; i < streams; i++ {
			lease, err := pool.Get(context.Background(), w.Codec.Name, uint32(0600+i%2), elfFn)
			if err != nil {
				return nil, err
			}
			reusable, err := runStream(lease.VM())
			if err != nil {
				lease.Release(false)
				return nil, err
			}
			lease.Release(reusable)
		}
		pooled := time.Since(start)

		rows = append(rows, PoolRow{
			Codec:           w.Codec.Name,
			Streams:         streams,
			InputBytes:      len(w.Raw),
			ColdPerStream:   cold / time.Duration(streams),
			PooledPerStream: pooled / time.Duration(streams),
			Speedup:         float64(cold) / float64(pooled),
		})
	}
	return rows, nil
}

// ServerRow is one codec's vxad request-latency measurement: the first
// request (content-addressed snapshot cache miss: ELF parse, image
// build, translation from scratch) versus steady-state requests served
// from the warm cache (parked-VM resume with an absorbed block cache).
type ServerRow struct {
	Codec        string        `json:"codec"`
	InputBytes   int           `json:"input_bytes"`
	ColdNS       time.Duration `json:"cold_ns"`
	WarmNS       time.Duration `json:"warm_ns"` // per request, averaged
	WarmRequests int           `json:"warm_requests"`
	Speedup      float64       `json:"speedup"` // Cold / Warm
	CacheHits    uint64        `json:"cache_hits"`
	CacheMisses  uint64        `json:"cache_misses"`
}

// serverWorkloads builds the serving-regime corpus: one small request
// per codec, sized so the per-request decoder setup cost — the thing
// the snapshot cache amortizes — is visible next to the decode itself.
// Sizes differ per codec because setup costs differ: deflate's
// translation footprint only shows on a stream big enough to touch the
// whole decoder, while the audio codecs' image-copy cost shows against
// sub-second clips.
func serverWorkloads() ([]Workload, error) {
	text4k := corpus.Text(1<<12, 1)
	text1k := corpus.Text(1<<10, 1)
	img := bmp.Encode(corpus.Image(16, 16, 2))
	aud := wav.Encode(corpus.Audio(220, 2, 3))

	inputs := map[string][]byte{
		"deflate": text4k, "bwt": text1k,
		"dct": img, "haar": img,
		"lpc": aud, "adpcm": aud,
	}
	var out []Workload
	for _, name := range paperCodecs {
		c, ok := codec.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: codec %s not registered", name)
		}
		raw := inputs[name]
		var enc bytes.Buffer
		if err := c.Encode(&enc, raw); err != nil {
			return nil, fmt.Errorf("bench: %s encode: %w", name, err)
		}
		out = append(out, Workload{Codec: c, Raw: raw, Encoded: enc.Bytes()})
	}
	return out, nil
}

// ServerWorkloads exposes the serving-regime corpus: the same
// per-codec streams the server benchmarks measure, so cmd/vxwarm
// primes artifact stores with representative traffic.
func ServerWorkloads() ([]Workload, error) { return serverWorkloads() }

// serverColdRounds is how many fresh-server miss-path samples the cold
// figure averages over (snapshot build cost is noisy at the
// millisecond scale).
const serverColdRounds = 5

// postDecode sends one workload through a server's /v1/decode and
// returns the request's wall time, verifying status and output length.
func postDecode(url string, w Workload) (time.Duration, error) {
	start := time.Now()
	resp, err := http.Post(url+"/v1/decode?codec="+w.Codec.Name, "application/octet-stream", bytes.NewReader(w.Encoded))
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	dur := time.Since(start)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != 200 {
		return 0, fmt.Errorf("bench: %s: status %d", w.Codec.Name, resp.StatusCode)
	}
	if int(n) != len(w.Raw) {
		return 0, fmt.Errorf("bench: %s: decoded %d bytes, want %d", w.Codec.Name, n, len(w.Raw))
	}
	return dur, nil
}

// ServerBench measures the extraction service end to end over HTTP
// loopback: every Table 1 codec's stream is decoded through vxad's
// /v1/decode, cold (content-addressed snapshot cache miss: ELF parse,
// image build, translation from scratch; averaged over fresh servers)
// and warm (warmReqs cache-hit requests against one server). Decoder
// ELFs are compiled before timing starts, so the cold figure is the
// serving stack's own miss path, not the VXC compiler.
func ServerBench(warmReqs int) ([]ServerRow, error) {
	if warmReqs < 1 {
		return nil, fmt.Errorf("bench: warm requests must be >= 1 (got %d)", warmReqs)
	}
	ws, err := serverWorkloads()
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		if _, err := w.Codec.DecoderELF(); err != nil {
			return nil, err
		}
	}
	post := postDecode

	// Cold: every request on a fresh server is that decoder line's miss.
	cold := make(map[string]time.Duration, len(ws))
	for round := 0; round < serverColdRounds; round++ {
		srv := server.New(server.Config{MemSize: 64 << 20})
		ts := httptest.NewServer(srv.Handler())
		for _, w := range ws {
			d, err := post(ts.URL, w)
			if err != nil {
				ts.Close()
				return nil, err
			}
			cold[w.Codec.Name] += d
		}
		ts.Close()
	}

	// Warm: one long-lived server; skip each codec's priming miss.
	srv := server.New(server.Config{MemSize: 64 << 20})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var rows []ServerRow
	for _, w := range ws {
		before := srv.Cache().Stats()
		if _, err := post(ts.URL, w); err != nil {
			return nil, err
		}
		var warm time.Duration
		for i := 0; i < warmReqs; i++ {
			d, err := post(ts.URL, w)
			if err != nil {
				return nil, err
			}
			warm += d
		}
		warm /= time.Duration(warmReqs)
		after := srv.Cache().Stats()
		coldAvg := cold[w.Codec.Name] / serverColdRounds
		rows = append(rows, ServerRow{
			Codec:        w.Codec.Name,
			InputBytes:   len(w.Raw),
			ColdNS:       coldAvg,
			WarmNS:       warm,
			WarmRequests: warmReqs,
			Speedup:      float64(coldAvg) / float64(warm),
			CacheHits:    after.Hits - before.Hits,
			CacheMisses:  after.Misses - before.Misses,
		})
	}
	return rows, nil
}

// serverArtifactWorkloads builds the restart-benchmark corpus. The
// restart benchmark is a time-to-first-byte figure — how quickly a
// freshly exec'd daemon answers its first request — so the requests are
// serving-scale probes sized so setup cost (compile, image build,
// translation) is what the columns compare rather than bulk decode
// throughput; the image codecs get a single 8x8 block for the same
// reason. This regime only became honest once the VM stopped paying a
// fixed multi-megabyte heap re-zero on every fresh first stream (see
// vm.sysSetPerm's dirty high-water mark); before that fix the fixed
// warm-up drowned the store's effect at this scale.
func serverArtifactWorkloads() ([]Workload, error) {
	text4k := corpus.Text(1<<12, 1)
	text1k := corpus.Text(1<<10, 1)
	img := bmp.Encode(corpus.Image(8, 8, 2))
	aud := wav.Encode(corpus.Audio(220, 2, 3))

	inputs := map[string][]byte{
		"deflate": text4k, "bwt": text1k,
		"dct": img, "haar": img,
		"lpc": aud, "adpcm": aud,
	}
	var out []Workload
	for _, name := range paperCodecs {
		c, ok := codec.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: codec %s not registered", name)
		}
		raw := inputs[name]
		var enc bytes.Buffer
		if err := c.Encode(&enc, raw); err != nil {
			return nil, fmt.Errorf("bench: %s encode: %w", name, err)
		}
		out = append(out, Workload{Codec: c, Raw: raw, Encoded: enc.Bytes()})
	}
	return out, nil
}

// serverArtifactRounds is how many fresh-restart samples the artifact
// benchmark averages: first-request latencies sit at single-digit
// milliseconds where scheduler and allocator jitter is visible, so the
// restart ratios need the larger sample.
const serverArtifactRounds = 5

// touchServer performs one untimed /healthz round trip so a fresh
// test server's TCP connection setup and first-request allocations are
// not misattributed to the first timed decode. Both the cold and the
// disk-warm servers get the same treatment — the benchmark compares
// decode paths, not socket setup.
func touchServer(url string) error {
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// ServerArtifactRow is one codec's persistent-artifact measurement:
// first-request latency on a fresh server restored from a pre-populated
// artifact store (disk-warm), against the same server's true cold start
// (compile the decoder, then serve the miss with no store) and its
// in-process steady state (warm cache hits).
type ServerArtifactRow struct {
	Codec      string        `json:"codec"`
	InputBytes int           `json:"input_bytes"`
	ColdNS     time.Duration `json:"cold_ns"` // compile + miss request, no store
	// CompileNS is the decoder-compile share of ColdNS — the part a
	// restart skips via the store's ELF-hash index.
	CompileNS time.Duration `json:"compile_ns"`
	// PrewarmNS is this codec's share of the daemon's startup prewarm —
	// index lookup, artifact load, spare VM materialization — paid once
	// per restart before traffic, never on the request path (vxad does
	// the same at boot). The storeless daemon has no equivalent: with no
	// index it cannot know what to rebuild, so its first request eats
	// the whole ColdNS inline.
	PrewarmNS    time.Duration `json:"prewarm_ns"`
	DiskWarmNS   time.Duration `json:"disk_warm_ns"` // first request, prewarmed fresh server
	WarmNS       time.Duration `json:"warm_ns"`      // steady state, per request
	WarmRequests int           `json:"warm_requests"`
	// SpeedupVsCold is Cold / DiskWarm — what the store saves a restart.
	SpeedupVsCold float64 `json:"speedup_vs_cold"`
	// RatioVsWarm is DiskWarm / Warm — how close a disk-warm first
	// request comes to a resident cache hit (1.0 = indistinguishable).
	RatioVsWarm float64 `json:"ratio_vs_warm"`
	// StoreHits / StoreFallbacks / IndexHits are the store's counters
	// attributed to this codec across the disk-warm rounds.
	StoreHits      int64 `json:"store_hits"`
	StoreFallbacks int64 `json:"store_fallbacks"`
	IndexHits      int64 `json:"index_hits"`
}

// ServerArtifactBench measures the restart story the artifact store
// exists for: a populated store is carried across fresh server
// processes-worth of state (new Server, new SnapCache, new Store handle
// over the same directory), and the first request per codec is timed
// against the true cold start and the in-process warm path.
//
// Cold here is what a storeless restart actually pays before its first
// byte of output: compiling the decoder (timed as a fresh, uncached
// vxcc.Compile — in-process the registry caches builds, but a new
// process has no such cache) plus the serving stack's own miss path
// (ELF parse, image build, translation), all inline on the request. The
// disk-warm side restarts the way vxad restarts: the store's ELF-hash
// index says which decoder lines have history, each is prewarmed off
// the request path (PrewarmNS — artifact load plus spare-VM
// materialization, no compiler, no ELF), and then the first request is
// timed. The warm figure is measured on the final disk-warm server, so
// it is the steady state a disk-warm line converges to.
func ServerArtifactBench(warmReqs int) ([]ServerArtifactRow, error) {
	if warmReqs < 1 {
		return nil, fmt.Errorf("bench: warm requests must be >= 1 (got %d)", warmReqs)
	}
	ws, err := serverArtifactWorkloads()
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		if _, err := w.Codec.DecoderELF(); err != nil {
			return nil, err
		}
	}
	dir, err := os.MkdirTemp("", "vxa-bench-artifacts-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Populate: one server takes real decode traffic over the store,
	// then shuts down cleanly — the close-time flush persists the
	// absorbed (post-translation) block caches, which is exactly what a
	// drained production vxad leaves behind.
	store, err := artifact.Open(dir)
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{MemSize: 64 << 20, Artifacts: store})
	ts := httptest.NewServer(srv.Handler())
	for _, w := range ws {
		if _, err := postDecode(ts.URL, w); err != nil {
			ts.Close()
			return nil, err
		}
	}
	ts.Close()
	srv.Close()
	if st := store.Stats(); st.Saves == 0 {
		return nil, fmt.Errorf("bench: populate pass wrote no artifacts (store stats %+v)", st)
	}

	// Cold: fresh server, no store — every request pays a decoder
	// compile (timed directly: the in-process registry cache would
	// otherwise hide what a new process must do) plus the full miss.
	cold := make(map[string]time.Duration, len(ws))
	compile := make(map[string]time.Duration, len(ws))
	for round := 0; round < serverArtifactRounds; round++ {
		csrv := server.New(server.Config{MemSize: 64 << 20})
		cts := httptest.NewServer(csrv.Handler())
		if err := touchServer(cts.URL); err != nil {
			cts.Close()
			return nil, err
		}
		for _, w := range ws {
			start := time.Now()
			if _, err := vxcc.Compile(vxcc.Options{}, w.Codec.Sources...); err != nil {
				cts.Close()
				return nil, err
			}
			comp := time.Since(start)
			d, err := postDecode(cts.URL, w)
			if err != nil {
				cts.Close()
				return nil, err
			}
			compile[w.Codec.Name] += comp
			cold[w.Codec.Name] += comp + d
		}
		cts.Close()
	}

	// Disk-warm: fresh server and store handle per round over the
	// populated directory. Each codec's line is prewarmed the way a
	// restarted vxad prewarms at startup — artifact load, spare VM
	// materialized, off the request path — with the prewarm timed as its
	// own column, then the first request is the restart path the serving
	// fleet sees. Operations are serial, so per-codec store counters
	// fall out of Stats() deltas spanning each prewarm+request pair.
	disk := make(map[string]time.Duration, len(ws))
	prewarm := make(map[string]time.Duration, len(ws))
	hits := make(map[string]int64, len(ws))
	fallbacks := make(map[string]int64, len(ws))
	indexHits := make(map[string]int64, len(ws))
	warm := make(map[string]time.Duration, len(ws))
	for round := 0; round < serverArtifactRounds; round++ {
		rstore, err := artifact.Open(dir)
		if err != nil {
			return nil, err
		}
		rsrv := server.New(server.Config{MemSize: 64 << 20, Artifacts: rstore})
		rts := httptest.NewServer(rsrv.Handler())
		fail := func(err error) ([]ServerArtifactRow, error) {
			rts.Close()
			rsrv.Close()
			return nil, err
		}
		if err := touchServer(rts.URL); err != nil {
			return fail(err)
		}
		for _, w := range ws {
			before := rstore.Stats()
			pw := time.Now()
			if !rsrv.PrewarmCodec(context.Background(), w.Codec.Name) {
				return fail(fmt.Errorf("bench: %s: prewarm found no indexed artifact", w.Codec.Name))
			}
			prewarm[w.Codec.Name] += time.Since(pw)
			d, err := postDecode(rts.URL, w)
			if err != nil {
				return fail(err)
			}
			after := rstore.Stats()
			disk[w.Codec.Name] += d
			hits[w.Codec.Name] += after.Hits - before.Hits
			fallbacks[w.Codec.Name] += after.Fallbacks - before.Fallbacks
			indexHits[w.Codec.Name] += after.IndexHits - before.IndexHits
		}
		if round == serverArtifactRounds-1 {
			// Steady state on the same (now resident) server.
			for _, w := range ws {
				var total time.Duration
				for i := 0; i < warmReqs; i++ {
					d, err := postDecode(rts.URL, w)
					if err != nil {
						return fail(err)
					}
					total += d
				}
				warm[w.Codec.Name] = total / time.Duration(warmReqs)
			}
		}
		rts.Close()
		rsrv.Close()
	}

	var rows []ServerArtifactRow
	for _, w := range ws {
		name := w.Codec.Name
		coldAvg := cold[name] / serverArtifactRounds
		diskAvg := disk[name] / serverArtifactRounds
		rows = append(rows, ServerArtifactRow{
			Codec:          name,
			InputBytes:     len(w.Raw),
			ColdNS:         coldAvg,
			CompileNS:      compile[name] / serverArtifactRounds,
			PrewarmNS:      prewarm[name] / serverArtifactRounds,
			DiskWarmNS:     diskAvg,
			WarmNS:         warm[name],
			WarmRequests:   warmReqs,
			SpeedupVsCold:  float64(coldAvg) / float64(diskAvg),
			RatioVsWarm:    float64(diskAvg) / float64(warm[name]),
			StoreHits:      hits[name],
			StoreFallbacks: fallbacks[name],
			IndexHits:      indexHits[name],
		})
	}
	return rows, nil
}

// ParallelRow is the ExtractAll serial-vs-parallel measurement.
type ParallelRow struct {
	Entries  int           `json:"entries"`
	Workers  int           `json:"workers"`
	Serial   time.Duration `json:"serial_ns"`
	Parallel time.Duration `json:"parallel_ns"`
	Speedup  float64       `json:"speedup"` // Serial / Parallel
	Reinits  int           `json:"reinits"` // pristine VM loads in the parallel run
}

// ParallelExtract builds an archive of `entries` deflate-coded text
// files and times Reader.ExtractAll through the archived decoders,
// serial versus `workers` workers (0 = GOMAXPROCS). Each run uses a
// fresh Reader so neither sees the other's warm pool.
func ParallelExtract(entries, workers int) (ParallelRow, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var buf bytes.Buffer
	w := core.NewWriter(&buf, core.WriterOptions{})
	for i := 0; i < entries; i++ {
		data := corpus.Text(1<<14, int64(i+1))
		if err := w.AddFile(fmt.Sprintf("doc%03d.txt", i), data, 0644); err != nil {
			return ParallelRow{}, err
		}
	}
	if err := w.Close(); err != nil {
		return ParallelRow{}, err
	}

	run := func(parallel int) (time.Duration, int, error) {
		r, err := core.NewReader(buf.Bytes())
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		for _, res := range r.ExtractAll(context.Background(),
			core.WithMode(core.AlwaysVXA), core.WithReuseVM(true), core.WithParallel(parallel)) {
			if res.Err != nil {
				return 0, 0, fmt.Errorf("%s: %w", res.Entry.Name, res.Err)
			}
		}
		return time.Since(start), r.ReinitCount, nil
	}

	serial, _, err := run(1)
	if err != nil {
		return ParallelRow{}, err
	}
	parallel, reinits, err := run(workers)
	if err != nil {
		return ParallelRow{}, err
	}
	return ParallelRow{
		Entries:  entries,
		Workers:  workers,
		Serial:   serial,
		Parallel: parallel,
		Speedup:  float64(serial) / float64(parallel),
		Reinits:  reinits,
	}, nil
}
