package bench

import (
	"compress/flate"
	"io"

	"vxa/internal/elf32"
	"vxa/internal/vm"

	_ "vxa/internal/codec/adpcm"
	_ "vxa/internal/codec/bwt"
	_ "vxa/internal/codec/dctimg"
	_ "vxa/internal/codec/deflate"
	_ "vxa/internal/codec/haarimg"
	_ "vxa/internal/codec/lpc"
)

func newVM(elf []byte, cfg vm.Config) (*vm.VM, error) {
	return elf32.NewVM(elf, cfg)
}

func newFlateWriter(w io.Writer) *flate.Writer {
	fw, err := flate.NewWriter(w, flate.BestCompression)
	if err != nil {
		panic(err)
	}
	return fw
}
