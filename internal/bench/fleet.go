package bench

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"time"

	"vxa/internal/router"
	"vxa/internal/server"
)

// FleetRow is one codec's router-overhead measurement: the same
// open-loop schedule driven once straight at a vxad shard and once
// through vxrouter fronting a small fleet, on the warm loopback path.
// The interesting number is OverheadP50 — what the extra hop (routing
// key computation, health bookkeeping, proxying the stream) costs at
// the median when nothing is failing. The tail comparison rides along,
// but on a loaded loopback host it is queueing noise more than router
// cost; EXPERIMENTS.md has the caveats.
type FleetRow struct {
	Codec       string        `json:"codec"`
	Backends    int           `json:"backends"`
	Requests    int           `json:"requests"`
	Errors      int           `json:"errors"`
	Sheds       int           `json:"sheds"`
	Truncated   int           `json:"truncated"`
	DirectP50   time.Duration `json:"direct_p50_ns"`
	DirectP99   time.Duration `json:"direct_p99_ns"`
	RouterP50   time.Duration `json:"router_p50_ns"`
	RouterP99   time.Duration `json:"router_p99_ns"`
	OverheadP50 float64       `json:"overhead_p50"` // RouterP50/DirectP50 - 1
}

// FleetBench measures vxrouter's proxy overhead: per codec, an
// open-loop pass against a single fresh vxad (the direct baseline,
// identical to LoadBench's setup) and an identical pass through a
// router over `shards` fresh vxad shards. /v1/decode keys on the codec
// name, so the router sends every request of a pass to that codec's
// home shard — exactly the steady-state warm path whose overhead the
// fleet design promises to keep small.
func FleetBench(rate float64, dur time.Duration, conc, shards int) ([]FleetRow, error) {
	if err := validateLoad(rate, dur); err != nil {
		return nil, err
	}
	if conc < 1 {
		conc = 2 * runtime.GOMAXPROCS(0)
	}
	if shards < 1 {
		shards = 3
	}
	ws, err := serverWorkloads()
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		if _, err := w.Codec.DecoderELF(); err != nil {
			return nil, err
		}
	}
	var rows []FleetRow
	for _, w := range ws {
		direct, err := loadOne(w, rate, dur, conc)
		if err != nil {
			return nil, err
		}
		routed, err := fleetOne(w, rate, dur, conc, shards)
		if err != nil {
			return nil, err
		}
		row := FleetRow{
			Codec:     w.Codec.Name,
			Backends:  shards,
			Requests:  routed.Requests,
			Errors:    routed.Errors,
			Sheds:     routed.Sheds,
			Truncated: routed.Truncated,
			DirectP50: direct.P50,
			DirectP99: direct.P99,
			RouterP50: routed.P50,
			RouterP99: routed.P99,
		}
		if direct.P50 > 0 {
			row.OverheadP50 = float64(routed.P50)/float64(direct.P50) - 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// fleetOne runs one codec's open-loop pass through a fresh
// router-over-N-shards topology, all in-process on loopback.
func fleetOne(w Workload, rate float64, dur time.Duration, conc, shards int) (LoadRow, error) {
	var backends []string
	var cleanup []func()
	defer func() {
		for _, f := range cleanup {
			f()
		}
	}()
	for i := 0; i < shards; i++ {
		srv := server.New(server.Config{
			MemSize:      64 << 20,
			MaxInFlight:  runtime.GOMAXPROCS(0),
			MaxQueue:     2 * conc,
			QueueTimeout: time.Minute,
			ShardID:      fmt.Sprintf("bench-s%d", i),
		})
		ts := httptest.NewServer(srv.Handler())
		cleanup = append(cleanup, ts.Close, srv.Close)
		backends = append(backends, ts.Listener.Addr().String())
	}
	rt, err := router.New(router.Config{Backends: backends})
	if err != nil {
		return LoadRow{}, err
	}
	cleanup = append(cleanup, rt.Close)
	front := httptest.NewServer(rt)
	cleanup = append(cleanup, front.Close)

	url := front.URL + "/v1/decode?codec=" + w.Codec.Name
	client := &server.Client{HTTP: front.Client()}
	post := decodePoster(client, url, w.Encoded, len(w.Raw))
	if out := post(); out != outcomeOK {
		return LoadRow{}, fmt.Errorf("bench: %s fleet prime: outcome %d", w.Codec.Name, out)
	}
	res, err := runOpenLoop(rate, dur, conc, post)
	if err != nil {
		return LoadRow{}, fmt.Errorf("bench: %s fleet: %w", w.Codec.Name, err)
	}
	return loadRowFrom(w.Codec.Name, rate, dur, conc, res), nil
}
