package bench

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vxa/internal/core"
	"vxa/internal/fault"
	"vxa/internal/obs"
	"vxa/internal/server"
	"vxa/internal/vmpool"
)

// ChaosRow summarizes one chaos pass: mixed decode/extract traffic
// driven closed-loop against vxad with the deterministic fault
// registry armed at a fixed rate, followed by a disarm-and-heal phase.
// The interesting figures are containment (every request resolves to a
// sanctioned status, latency stays bounded) and self-healing (how long
// until every decoder serves clean again once the faults stop).
type ChaosRow struct {
	InjectionRate float64 `json:"injection_rate"`
	Seed          uint64  `json:"seed"`
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`

	// Outcome classes. OK are 200s with intact bodies; Truncated are
	// 200s whose stream was cut mid-flight (injected write faults and
	// watchdog kills after the header went out land here).
	OK           int `json:"ok"`
	Truncated    int `json:"truncated"`
	DecodeErrors int `json:"decode_errors"` // 422: traps, fuel, watchdog
	Canceled     int `json:"canceled"`      // 499: response-write faults
	ServerErrors int `json:"server_errors"` // 500: injected I/O faults
	Shed         int `json:"shed"`          // 503 + 504: lease faults, overload
	Quarantined  int `json:"quarantined"`   // 521: breaker fail-fast
	// TransportErrors are requests whose connection died before a
	// status line (a write fault can fire before the header goes out).
	TransportErrors int `json:"transport_errors"`

	// ShedRate is Shed/Requests; the graceful-degradation figure.
	ShedRate float64 `json:"shed_rate"`

	// Fault-registry and breaker activity over the pass.
	InjectedFaults uint64 `json:"injected_faults"`
	BreakerTrips   uint64 `json:"breaker_trips"`
	BreakerProbes  uint64 `json:"breaker_probes"`

	// Latency of every request, all outcomes included (fail-fast 521s
	// pull the low quantiles down; that is the point of the breaker).
	Mean time.Duration `json:"mean_ns"`
	P50  time.Duration `json:"p50_ns"`
	P90  time.Duration `json:"p90_ns"`
	P99  time.Duration `json:"p99_ns"`
	Max  time.Duration `json:"max_ns"`

	// Recovery is how long after Disarm until every codec serves a
	// clean 200 again — open breakers must walk their probe backoff.
	Recovery time.Duration `json:"recovery_ns"`
}

// chaosSeed fixes the injection schedule so two chaos runs fail the
// same requests (the same property the soak test relies on).
const chaosSeed = 7

// chaosHealth is the breaker tuning for the chaos pass: production
// threshold, but a short probe backoff so the recovery figure measures
// healing mechanics rather than a 30-second default ceiling.
var chaosHealth = vmpool.HealthConfig{
	Threshold:  vmpool.DefaultBreakerThreshold,
	Backoff:    250 * time.Millisecond,
	MaxBackoff: 2 * time.Second,
}

// ChaosBench drives `total` mixed requests (two thirds /v1/decode
// round-robined over the Table 1 codecs, one third /v1/extract) with
// `conc` closed-loop workers while the fault registry injects at
// `rate` across all five points, then disarms and measures recovery.
// The registry is process-global: callers must not run other
// benchmarks concurrently with this one.
func ChaosBench(rate float64, total, conc int) (ChaosRow, error) {
	if rate <= 0 || rate >= 1 {
		return ChaosRow{}, fmt.Errorf("bench: chaos rate must be in (0,1) (got %v)", rate)
	}
	if total < 1 {
		total = 2000
	}
	if conc < 1 {
		conc = 4
	}
	ws, err := serverWorkloads()
	if err != nil {
		return ChaosRow{}, err
	}
	for _, w := range ws {
		if _, err := w.Codec.DecoderELF(); err != nil {
			return ChaosRow{}, err
		}
	}

	// Admission is sized past the worker count so the 503s in the row
	// come from injected lease faults and quarantine, not from a queue
	// deliberately too small for the harness's own concurrency.
	maxInFlight := runtime.GOMAXPROCS(0)
	if maxInFlight < 4 {
		maxInFlight = 4
	}
	srv := server.New(server.Config{
		MemSize:      64 << 20,
		MaxInFlight:  maxInFlight,
		MaxQueue:     4 * conc,
		QueueTimeout: time.Minute,
		Health:       chaosHealth,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// The extract workload: one deflate-compressed text member, so the
	// archive-read injection point (wrapped around the payload reader
	// on the extract path) sees traffic.
	raw := ws[0].Raw
	var abuf bytes.Buffer
	aw := core.NewWriter(&abuf, core.WriterOptions{})
	if err := aw.AddFile("doc.txt", raw, 0644); err != nil {
		return ChaosRow{}, err
	}
	if err := aw.Close(); err != nil {
		return ChaosRow{}, err
	}
	arc := abuf.Bytes()
	extractURL := ts.URL + "/v1/extract?entry=doc.txt"

	// one request; returns HTTP status (0 = transport error) and
	// whether a 200 body arrived intact.
	shoot := func(url string, payload []byte, wantLen int) (status int, intact bool) {
		resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			return 0, false
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, false
		}
		return resp.StatusCode, err == nil && int(n) == wantLen
	}
	clean := func(w Workload) bool {
		st, ok := shoot(ts.URL+"/v1/decode?codec="+w.Codec.Name, w.Encoded, len(w.Raw))
		return st == http.StatusOK && ok
	}

	// Prime every snapshot disarmed: the pass measures serving under
	// faults, not cold builds racing the injector.
	for _, w := range ws {
		if !clean(w) {
			return ChaosRow{}, fmt.Errorf("bench: %s prime failed", w.Codec.Name)
		}
	}
	if st, ok := shoot(extractURL, arc, len(raw)); st != http.StatusOK || !ok {
		return ChaosRow{}, fmt.Errorf("bench: extract prime failed (status %d)", st)
	}

	fault.Arm(fault.Config{Rate: rate, Seed: chaosSeed, Points: fault.AllPoints()})
	defer fault.Disarm()

	hist := &obs.Histogram{}
	var mu sync.Mutex
	counts := make(map[int]int)
	var truncated, next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				w := ws[i%len(ws)]
				url, payload, wantLen := ts.URL+"/v1/decode?codec="+w.Codec.Name, w.Encoded, len(w.Raw)
				if i%3 == 2 {
					url, payload, wantLen = extractURL, arc, len(raw)
				}
				t0 := time.Now()
				st, intact := shoot(url, payload, wantLen)
				hist.Observe(time.Since(t0))
				if st == http.StatusOK && !intact {
					truncated.Add(1)
				}
				mu.Lock()
				counts[st]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	fstats := fault.Stats()
	fault.Disarm()

	// Heal: every codec must serve clean again; open breakers walk
	// their probe backoff here. Bounded so a wedged server fails the
	// bench instead of hanging it.
	healStart := time.Now()
	for _, w := range ws {
		for !clean(w) {
			if time.Since(healStart) > 30*time.Second {
				return ChaosRow{}, fmt.Errorf("bench: %s did not heal within 30s of disarm", w.Codec.Name)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	recovery := time.Since(healStart)

	var injected uint64
	for _, p := range fstats.Points {
		injected += p.Injected
	}
	health := srv.Cache().Health()
	snap := hist.Snapshot()
	row := ChaosRow{
		InjectionRate:   rate,
		Seed:            chaosSeed,
		Requests:        total,
		Concurrency:     conc,
		OK:              counts[http.StatusOK] - int(truncated.Load()),
		Truncated:       int(truncated.Load()),
		DecodeErrors:    counts[http.StatusUnprocessableEntity],
		Canceled:        counts[server.StatusClientClosedRequest],
		ServerErrors:    counts[http.StatusInternalServerError],
		Shed:            counts[http.StatusServiceUnavailable] + counts[http.StatusGatewayTimeout],
		Quarantined:     counts[server.StatusDecoderQuarantined],
		TransportErrors: counts[0],
		InjectedFaults:  injected,
		BreakerTrips:    health.Trips,
		BreakerProbes:   health.Probes,
		Mean:            snap.Mean(),
		P50:             snap.Quantile(0.50),
		P90:             snap.Quantile(0.90),
		P99:             snap.Quantile(0.99),
		Max:             time.Duration(snap.Max),
		Recovery:        recovery,
	}
	row.ShedRate = float64(row.Shed) / float64(total)
	return row, nil
}
