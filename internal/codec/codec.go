// Package codec defines the VXA archiver's codec plug-in architecture
// (paper §3.3). Each codec pairs a native encoder — the analog of the
// paper's natively-loaded encoder DLL — with a decoder that is a VXC
// program compiled to an x86-32 ELF executable for the VXA virtual
// machine. Codecs that cannot encode but recognize already-compressed
// input and attach a suitable decoder are recognizer-decoders ("redecs",
// §2.2).
package codec

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"sync"

	"vxa/internal/vxcc"
)

// Kind classifies a codec's role in the archiver.
type Kind int

// Codec kinds.
const (
	// GeneralPurpose codecs compress arbitrary byte streams and serve as
	// the archiver's default compressor.
	GeneralPurpose Kind = iota
	// MediaCodec codecs compress a specific raw media container (BMP,
	// WAV) into a specialized format.
	MediaCodec
	// Redec codecs only recognize existing compressed data and attach a
	// decoder; they cannot encode.
	Redec
)

// Codec is one archiver plug-in.
type Codec struct {
	// Name is the codec tag recorded in vxZIP VXA extension headers.
	Name string
	// Desc is the human-readable description (Table 1).
	Desc string
	// Output names the decoder's output format (Table 1): "raw data",
	// "BMP image" or "WAV audio".
	Output string
	// Kind classifies the codec's archiver role.
	Kind Kind
	// Lossy marks codecs whose Encode discards information. The archiver
	// applies lossy codecs only at the operator's explicit request (§2.2).
	Lossy bool
	// ZipMethod is the traditional ZIP method tag for this codec's
	// encoded form (e.g. 8 for deflate), letting VXA-unaware tools
	// extract such entries. Zero means the format has no traditional
	// tag and entries use the reserved VXA method.
	ZipMethod uint16

	// Recognize reports whether data is already compressed in this
	// codec's format (so the archiver stores it and attaches a decoder).
	Recognize func(data []byte) bool
	// CanEncode reports whether data is raw input this codec can
	// compress (e.g. a WAV file for an audio codec). Nil for Redec and
	// for general-purpose codecs (which accept anything).
	CanEncode func(data []byte) bool
	// Encode compresses raw src into the codec's format. Nil for redecs.
	Encode func(dst io.Writer, src []byte) error
	// Decode is the fast native decoder used by default on extraction
	// (§2.3); integrity checks use the VXA decoder instead.
	Decode func(dst io.Writer, src io.Reader) error

	// Sources is the decoder as a VXC program; it is compiled once on
	// demand and the ELF is embedded in archives.
	Sources []vxcc.Source

	buildOnce sync.Once
	build     *vxcc.Build
	buildErr  error
}

// Build compiles the codec's VXA decoder (cached).
func (c *Codec) Build() (*vxcc.Build, error) {
	c.buildOnce.Do(func() {
		c.build, c.buildErr = vxcc.Compile(vxcc.Options{}, c.Sources...)
		if c.buildErr != nil {
			c.buildErr = fmt.Errorf("codec %s: building decoder: %w", c.Name, c.buildErr)
		}
	})
	return c.build, c.buildErr
}

// DecoderELF returns the compiled VXA decoder executable.
func (c *Codec) DecoderELF() ([]byte, error) {
	b, err := c.Build()
	if err != nil {
		return nil, err
	}
	return b.ELF, nil
}

// SourceKey returns a stable content key for the codec's decoder: a
// SHA-256 over the codec name, every VXC source file, and the compiler
// version. Because vxcc compilation is deterministic per vxcc.Version,
// the key fully determines the decoder ELF, which is what lets the
// artifact store's ELF-hash index answer "what is this codec's content
// address?" across restarts without compiling anything. Field lengths
// are mixed into the stream so no concatenation of names and texts can
// collide with another.
func (c *Codec) SourceKey() [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "vxcc %d\ncodec %d %s\n", vxcc.Version, len(c.Name), c.Name)
	for _, s := range c.Sources {
		fmt.Fprintf(h, "src %d %s %d\n", len(s.Name), s.Name, len(s.Text))
		io.WriteString(h, s.Text)
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

var (
	mu       sync.Mutex
	registry = map[string]*Codec{}
	order    []string
)

// Register adds a codec to the global registry. It panics on duplicates
// (registration happens in package init functions).
func Register(c *Codec) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[c.Name]; dup {
		panic("codec: duplicate registration of " + c.Name)
	}
	registry[c.Name] = c
	order = append(order, c.Name)
}

// ByName returns a registered codec.
func ByName(name string) (*Codec, bool) {
	mu.Lock()
	defer mu.Unlock()
	c, ok := registry[name]
	return c, ok
}

// All returns all registered codecs in registration order.
func All() []*Codec {
	mu.Lock()
	defer mu.Unlock()
	out := make([]*Codec, 0, len(order))
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// Names returns all registered codec names, sorted.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}
