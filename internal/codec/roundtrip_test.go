package codec_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vxa/internal/bmp"
	"vxa/internal/codec"
	"vxa/internal/corpus"
	"vxa/internal/vm"
	"vxa/internal/wav"

	_ "vxa/internal/codec/adpcm"
	_ "vxa/internal/codec/bwt"
	_ "vxa/internal/codec/dctimg"
	_ "vxa/internal/codec/deflate"
	_ "vxa/internal/codec/haarimg"
	_ "vxa/internal/codec/lpc"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/roundtrip_golden.json from the current engine")

// roundTripGolden pins one codec's end-to-end behavior: the decoded
// output (by content hash) and the exact guest work the archived
// decoder performed. The uops count is deliberately brittle: any change
// to the decoder compiler, the lowering pass or the engine's execution
// semantics shows up here as a diff that has to be reviewed (and
// regenerated with -update), so silent semantic drift cannot slip
// through while the output happens to stay byte-identical — or vice
// versa.
type roundTripGolden struct {
	Codec        string `json:"codec"`
	InputBytes   int    `json:"input_bytes"`
	EncodedBytes int    `json:"encoded_bytes"`
	OutputSHA256 string `json:"output_sha256"`
	UopsExecuted uint64 `json:"uops_executed"`
	Lossless     bool   `json:"lossless"`
}

const goldenPath = "testdata/roundtrip_golden.json"

// roundTripInput picks the deterministic corpus input matching the
// codec's output format.
func roundTripInput(c *codec.Codec) []byte {
	switch c.Output {
	case "BMP image":
		return bmp.Encode(corpus.Image(64, 64, 7))
	case "WAV audio":
		return wav.Encode(corpus.Audio(5512, 2, 7))
	default:
		return corpus.Text(1<<15, 7)
	}
}

// TestRoundTripGolden runs every encodable codec over its corpus input
// through the archived VXA decoder: encode, decode twice (the sandbox
// admits no nondeterminism, so the runs must match each other exactly),
// assert losslessness where promised, and hold the output hash and
// UopsExecuted against the committed goldens.
func TestRoundTripGolden(t *testing.T) {
	var want map[string]roundTripGolden
	if !*updateGolden {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("%v (run with -update to generate)", err)
		}
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatal(err)
		}
	}

	got := make(map[string]roundTripGolden)
	for _, c := range codec.All() {
		if c.Encode == nil {
			continue // redecs have nothing to round-trip
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			input := roundTripInput(c)
			var enc bytes.Buffer
			if err := c.Encode(&enc, input); err != nil {
				t.Fatal(err)
			}
			elf, err := c.DecoderELF()
			if err != nil {
				t.Fatal(err)
			}
			cfg := vm.Config{MemSize: 64 << 20}
			var out1, out2 bytes.Buffer
			stats1, err := codec.RunDecoderELFToStats(context.Background(), c.Name, elf, bytes.NewReader(enc.Bytes()), int64(enc.Len()), &out1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			stats2, err := codec.RunDecoderELFToStats(context.Background(), c.Name, elf, bytes.NewReader(enc.Bytes()), int64(enc.Len()), &out2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
				t.Fatal("two decodes of one stream differ: the sandbox leaked nondeterminism")
			}
			if stats1.UopsExecuted != stats2.UopsExecuted {
				t.Fatalf("uops differ between identical runs: %d vs %d", stats1.UopsExecuted, stats2.UopsExecuted)
			}
			if !c.Lossy && !bytes.Equal(out1.Bytes(), input) {
				t.Fatalf("lossless codec did not reproduce its input (%d bytes out, %d in)", out1.Len(), len(input))
			}

			sum := sha256.Sum256(out1.Bytes())
			g := roundTripGolden{
				Codec:        c.Name,
				InputBytes:   len(input),
				EncodedBytes: enc.Len(),
				OutputSHA256: hex.EncodeToString(sum[:]),
				UopsExecuted: stats1.UopsExecuted,
				Lossless:     !c.Lossy,
			}
			got[c.Name] = g
			if *updateGolden {
				return
			}
			w, ok := want[c.Name]
			if !ok {
				t.Fatalf("no golden for codec %s (run with -update)", c.Name)
			}
			if g != w {
				t.Fatalf("golden mismatch (engine drift?):\n got %+v\nwant %+v", g, w)
			}
		})
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d codecs)", goldenPath, len(got))
	} else if len(got) != len(want) {
		t.Fatalf("codec set changed: %d tested, %d goldens (run with -update)", len(got), len(want))
	}
}

// TestRoundTripGoldenTier2Configs holds the committed goldens under
// every tier-2 configuration: forced hot (every superblock promotes on
// its first entry, for both the native and the closure backend) and
// forced off. Output bytes AND the uop count must match the golden
// exactly in all three — the compiled tier executes the same micro-ops
// with the same accounting as the tier-1 dispatch loop, so the tier
// split is invisible in every architectural observation.
func TestRoundTripGoldenTier2Configs(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run TestRoundTripGolden with -update to generate)", err)
	}
	var want map[string]roundTripGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	legs := []struct {
		name string
		env  map[string]string
	}{
		{"tier2-hot", map[string]string{"VXA_TIER2_HOT": "1"}},
		{"tier2-hot-closure", map[string]string{"VXA_TIER2_HOT": "1", "VXA_TIER2_BACKEND": "closure"}},
		{"tier2-off", map[string]string{"VXA_NO_TIER2": "1"}},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			for k, v := range leg.env {
				t.Setenv(k, v)
			}
			for _, c := range codec.All() {
				if c.Encode == nil {
					continue
				}
				w, ok := want[c.Name]
				if !ok {
					continue // TestRoundTripGolden reports the stale golden set
				}
				input := roundTripInput(c)
				var enc bytes.Buffer
				if err := c.Encode(&enc, input); err != nil {
					t.Fatal(err)
				}
				elf, err := c.DecoderELF()
				if err != nil {
					t.Fatal(err)
				}
				var out bytes.Buffer
				stats, err := codec.RunDecoderELFToStats(context.Background(), c.Name, elf,
					bytes.NewReader(enc.Bytes()), int64(enc.Len()), &out, vm.Config{MemSize: 64 << 20})
				if err != nil {
					t.Fatalf("%s: %v", c.Name, err)
				}
				sum := sha256.Sum256(out.Bytes())
				if got := hex.EncodeToString(sum[:]); got != w.OutputSHA256 {
					t.Errorf("%s: output hash %s, golden %s", c.Name, got, w.OutputSHA256)
				}
				if stats.UopsExecuted != w.UopsExecuted {
					t.Errorf("%s: %d uops executed, golden %d", c.Name, stats.UopsExecuted, w.UopsExecuted)
				}
			}
		})
	}
}
