package adpcm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"vxa/internal/codec"
	"vxa/internal/vm"
	"vxa/internal/wav"
)

func sine(frames, channels int, freq float64) *wav.Sound {
	s := &wav.Sound{Channels: channels, SampleRate: 44100,
		Samples: make([]int16, frames*channels)}
	for i := 0; i < frames; i++ {
		v := int16(12000 * math.Sin(2*math.Pi*freq*float64(i)/44100))
		for ch := 0; ch < channels; ch++ {
			s.Samples[i*channels+ch] = v
		}
	}
	return s
}

// TestLossyQuality: ADPCM is lossy but must track a smooth signal with
// reasonable SNR and exactly 4 bits/sample of payload.
func TestLossyQuality(t *testing.T) {
	snd := sine(20000, 1, 440)
	raw := wav.Encode(snd)
	var enc bytes.Buffer
	if err := Encode(&enc, raw); err != nil {
		t.Fatal(err)
	}
	payload := enc.Len() - 14
	if payload != (len(snd.Samples)+1)/2 {
		t.Fatalf("payload = %d bytes, want 4 bits/sample", payload)
	}
	var dec bytes.Buffer
	if err := Decode(&dec, bytes.NewReader(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := wav.Decode(dec.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var sig, noise float64
	for i := range snd.Samples {
		s := float64(snd.Samples[i])
		e := s - float64(got.Samples[i])
		sig += s * s
		noise += e * e
	}
	snr := 10 * math.Log10(sig/noise)
	if snr < 20 {
		t.Fatalf("SNR = %.1f dB, want >= 20 dB on a sine", snr)
	}
}

// TestEncoderTracksDecoder: the encoder must quantize against the
// decoder's reconstruction, not the clean signal — verified by decoding
// twice (decode(encode(x)) is a fixed point once through).
func TestEncoderTracksDecoder(t *testing.T) {
	snd := sine(5000, 2, 220)
	raw := wav.Encode(snd)
	var enc1 bytes.Buffer
	Encode(&enc1, raw)
	var dec1 bytes.Buffer
	Decode(&dec1, bytes.NewReader(enc1.Bytes()))
	var enc2 bytes.Buffer
	if err := Encode(&enc2, dec1.Bytes()); err != nil {
		t.Fatal(err)
	}
	var dec2 bytes.Buffer
	Decode(&dec2, bytes.NewReader(enc2.Bytes()))
	a, _ := wav.Decode(dec1.Bytes())
	b, _ := wav.Decode(dec2.Bytes())
	var drift float64
	for i := range a.Samples {
		d := float64(a.Samples[i]) - float64(b.Samples[i])
		drift += d * d
	}
	rms := math.Sqrt(drift / float64(len(a.Samples)))
	if rms > 600 {
		t.Fatalf("re-encoding drift RMS = %.1f, generation loss too high", rms)
	}
}

// TestVXADecoderBitExact: the VXC decoder output must equal the native
// decoder output byte for byte.
func TestVXADecoderBitExact(t *testing.T) {
	c, ok := codec.ByName("adpcm")
	if !ok {
		t.Fatal("adpcm codec not registered")
	}
	r := rand.New(rand.NewSource(8))
	snd := sine(15000, 2, 330)
	for i := range snd.Samples {
		snd.Samples[i] += int16(r.Intn(400) - 200)
	}
	raw := wav.Encode(snd)
	var enc bytes.Buffer
	if err := Encode(&enc, raw); err != nil {
		t.Fatal(err)
	}
	var nat bytes.Buffer
	if err := Decode(&nat, bytes.NewReader(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := c.RunVXA(enc.Bytes(), vm.Config{})
	if err != nil {
		t.Fatalf("vxa: %v", err)
	}
	if !bytes.Equal(got, nat.Bytes()) {
		t.Fatal("vxa decoder output differs from native decoder")
	}
	// And the output must be a valid WAV with the right shape.
	w, err := wav.Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	if w.Channels != 2 || w.SampleRate != 44100 || w.Frames() != 15000 {
		t.Fatalf("decoded WAV shape wrong: %d ch %d Hz %d frames",
			w.Channels, w.SampleRate, w.Frames())
	}
}

func TestOddSampleCount(t *testing.T) {
	snd := sine(777, 1, 100) // odd total -> half-filled final byte
	raw := wav.Encode(snd)
	var enc bytes.Buffer
	if err := Encode(&enc, raw); err != nil {
		t.Fatal(err)
	}
	var dec bytes.Buffer
	if err := Decode(&dec, bytes.NewReader(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := wav.Decode(dec.Bytes())
	if err != nil || got.Frames() != 777 {
		t.Fatalf("frames = %d err = %v", got.Frames(), err)
	}
}

func TestRejectsTruncation(t *testing.T) {
	snd := sine(1000, 1, 100)
	raw := wav.Encode(snd)
	var enc bytes.Buffer
	Encode(&enc, raw)
	if err := Decode(&dummyWriter{}, bytes.NewReader(enc.Bytes()[:enc.Len()/2])); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
}

type dummyWriter struct{}

func (d *dummyWriter) Write(p []byte) (int, error) { return len(p), nil }
