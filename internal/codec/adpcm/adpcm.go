// Package adpcm implements "vxadpcm", the reproduction's stand-in for
// the paper's lossy Ogg/Vorbis audio codec: an IMA ADPCM coder that
// compresses 16-bit PCM WAV to 4 bits per sample. Like the paper's
// vorbis redec, the decoder emits uncompressed audio "in the ubiquitous
// Windows WAV audio file format" (§5.1).
//
// Stream format "VXA1" (little-endian):
//
//	magic "VXA1", u16 channels, u32 sampleRate, u32 frames
//	then ceil(frames*channels/2) bytes of 4-bit codes, two per byte
//	(low nibble first), samples interleaved by channel.
//
// Both the Go and the VXC decoders implement the identical integer
// algorithm, so their outputs are bit-exact.
package adpcm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"vxa/internal/codec"
	"vxa/internal/vxcc"
	"vxa/internal/wav"
)

// ErrFormat reports a malformed VXA1 stream.
var ErrFormat = errors.New("adpcm: malformed VXA1 stream")

// stepTable is the standard IMA ADPCM step size table.
var stepTable = [89]int32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
	41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
	190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
	724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
	6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
	16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// indexTable is the standard IMA index adjustment table.
var indexTable = [16]int32{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

type state struct {
	pred int32 // predicted sample
	idx  int32 // step table index
}

// encodeSample quantizes one sample difference to a 4-bit code and
// updates the predictor state exactly as the decoder will.
func (s *state) encodeSample(sample int32) byte {
	step := stepTable[s.idx]
	diff := sample - s.pred
	var code byte
	if diff < 0 {
		code = 8
		diff = -diff
	}
	if diff >= step {
		code |= 4
		diff -= step
	}
	if diff >= step>>1 {
		code |= 2
		diff -= step >> 1
	}
	if diff >= step>>2 {
		code |= 1
	}
	s.decodeSample(code)
	return code
}

// decodeSample applies one 4-bit code to the predictor state and returns
// the reconstructed sample.
func (s *state) decodeSample(code byte) int32 {
	step := stepTable[s.idx]
	delta := step >> 3
	if code&4 != 0 {
		delta += step
	}
	if code&2 != 0 {
		delta += step >> 1
	}
	if code&1 != 0 {
		delta += step >> 2
	}
	if code&8 != 0 {
		s.pred -= delta
	} else {
		s.pred += delta
	}
	if s.pred > 32767 {
		s.pred = 32767
	}
	if s.pred < -32768 {
		s.pred = -32768
	}
	s.idx += indexTable[code]
	if s.idx < 0 {
		s.idx = 0
	}
	if s.idx > 88 {
		s.idx = 88
	}
	return s.pred
}

// Encode compresses a 16-bit PCM WAV file to VXA1.
func Encode(dst io.Writer, src []byte) error {
	snd, err := wav.Decode(src)
	if err != nil {
		return err
	}
	frames := snd.Frames()
	hdr := make([]byte, 14)
	copy(hdr, "VXA1")
	binary.LittleEndian.PutUint16(hdr[4:], uint16(snd.Channels))
	binary.LittleEndian.PutUint32(hdr[6:], uint32(snd.SampleRate))
	binary.LittleEndian.PutUint32(hdr[10:], uint32(frames))
	if _, err := dst.Write(hdr); err != nil {
		return err
	}
	states := make([]state, snd.Channels)
	total := frames * snd.Channels
	out := make([]byte, 0, (total+1)/2)
	var cur byte
	for i := 0; i < total; i++ {
		ch := i % snd.Channels
		code := states[ch].encodeSample(int32(snd.Samples[i]))
		if i%2 == 0 {
			cur = code
		} else {
			out = append(out, cur|code<<4)
		}
	}
	if total%2 == 1 {
		out = append(out, cur)
	}
	_, err = dst.Write(out)
	return err
}

// Decode is the native decoder: VXA1 in, canonical WAV out.
func Decode(dst io.Writer, src io.Reader) error {
	var hdr [14]byte
	if _, err := io.ReadFull(src, hdr[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if string(hdr[:4]) != "VXA1" {
		return fmt.Errorf("%w: bad magic", ErrFormat)
	}
	channels := int(binary.LittleEndian.Uint16(hdr[4:]))
	rate := int(binary.LittleEndian.Uint32(hdr[6:]))
	frames := int(binary.LittleEndian.Uint32(hdr[10:]))
	if channels < 1 || channels > 8 || frames < 0 || frames > 1<<28 {
		return fmt.Errorf("%w: bad header", ErrFormat)
	}
	total := frames * channels
	packed := make([]byte, (total+1)/2)
	if _, err := io.ReadFull(src, packed); err != nil {
		return fmt.Errorf("%w: truncated sample data", ErrFormat)
	}
	snd := &wav.Sound{Channels: channels, SampleRate: rate, Samples: make([]int16, total)}
	states := make([]state, channels)
	for i := 0; i < total; i++ {
		var code byte
		if i%2 == 0 {
			code = packed[i/2] & 15
		} else {
			code = packed[i/2] >> 4
		}
		snd.Samples[i] = int16(states[i%channels].decodeSample(code))
	}
	_, err := dst.Write(wav.Encode(snd))
	return err
}

// adpcmMain is the VXA decoder in VXC. Byte-oriented (no bit reader).
var adpcmMain = vxcc.Source{Name: "vxadpcm.vxc", Text: `
// VXA1 IMA-ADPCM decoder: VXA codec "adpcm". Output: WAV audio.

const int steptab[89] = {
	7,8,9,10,11,12,13,14,16,17,19,21,23,25,28,31,34,37,
	41,45,50,55,60,66,73,80,88,97,107,118,130,143,157,173,
	190,209,230,253,279,307,337,371,408,449,494,544,598,658,
	724,796,876,963,1060,1166,1282,1411,1552,1707,1878,2066,
	2272,2499,2749,3024,3327,3660,4026,4428,4871,5358,5894,
	6484,7132,7845,8630,9493,10442,11487,12635,13899,15289,
	16818,18500,20350,22385,24623,27086,29794,32767
};
const int idxtab[16] = {-1,-1,-1,-1,2,4,6,8,-1,-1,-1,-1,2,4,6,8};

int pred[8];
int sidx[8];

int decode_code(int ch, int code) {
	int step = steptab[sidx[ch]];
	int delta = step >> 3;
	if (code & 4) delta += step;
	if (code & 2) delta += step >> 1;
	if (code & 1) delta += step >> 2;
	if (code & 8) pred[ch] -= delta;
	else pred[ch] += delta;
	if (pred[ch] > 32767) pred[ch] = 32767;
	if (pred[ch] < -32768) pred[ch] = -32768;
	sidx[ch] += idxtab[code];
	if (sidx[ch] < 0) sidx[ch] = 0;
	if (sidx[ch] > 88) sidx[ch] = 88;
	return pred[ch];
}

void wav_header(int channels, int rate, int frames) {
	int datalen = frames * channels * 2;
	putb('R'); putb('I'); putb('F'); putb('F');
	put4le(36 + datalen);
	putb('W'); putb('A'); putb('V'); putb('E');
	putb('f'); putb('m'); putb('t'); putb(' ');
	put4le(16);
	put2le(1);
	put2le(channels);
	put4le(rate);
	put4le(rate * channels * 2);
	put2le(channels * 2);
	put2le(16);
	putb('d'); putb('a'); putb('t'); putb('a');
	put4le(datalen);
}

int main(void) {
	while (1) {
		__stdio_reset();
		if (mustgetb() != 'V' || mustgetb() != 'X' || mustgetb() != 'A' || mustgetb() != '1')
			die("not a VXA1 stream");
		int channels = get2le();
		int rate = get4le();
		int frames = get4le();
		if (channels < 1 || channels > 8) die("bad channel count");
		if (frames < 0) die("bad frame count");
		int ch;
		for (ch = 0; ch < channels; ch++) { pred[ch] = 0; sidx[ch] = 0; }
		wav_header(channels, rate, frames);
		int total = frames * channels;
		int i = 0;
		int cur = 0;
		while (i < total) {
			int code;
			if ((i & 1) == 0) {
				cur = mustgetb();
				code = cur & 15;
			} else {
				code = cur >> 4;
			}
			int s = decode_code(i % channels, code);
			put2le(s & 0xFFFF);
			i++;
		}
		vxa_done();
	}
	return 0;
}
`}

func init() {
	codec.Register(&codec.Codec{
		Name:   "adpcm",
		Desc:   "IMA ADPCM lossy audio coder (4 bits/sample)",
		Output: "WAV audio",
		Kind:   codec.MediaCodec,
		Lossy:  true,
		Recognize: func(data []byte) bool {
			return len(data) >= 14 && string(data[:4]) == "VXA1"
		},
		CanEncode: func(data []byte) bool {
			if !wav.Sniff(data) {
				return false
			}
			_, err := wav.Decode(data)
			return err == nil
		},
		Encode:  Encode,
		Decode:  Decode,
		Sources: []vxcc.Source{adpcmMain},
	})
}
