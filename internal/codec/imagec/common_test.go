package imagec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZigzagProperty(t *testing.T) {
	f := func(v int32) bool { return Unzigzag(Zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoeffStreamProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		n := r.Intn(400)
		coeffs := make([]int32, n)
		for i := range coeffs {
			switch r.Intn(3) {
			case 0: // runs of zeros dominate transform output
			case 1:
				coeffs[i] = int32(r.Intn(64) - 32)
			default:
				coeffs[i] = int32(r.Uint32())
			}
		}
		var w CoeffWriter
		for _, c := range coeffs {
			w.Put(c)
		}
		cr := NewCoeffReader(w.Bytes())
		for i, want := range coeffs {
			got, err := cr.Next()
			if err != nil || got != want {
				t.Logf("coeff %d: got %d want %d err %v", i, got, want, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoeffReaderTruncation(t *testing.T) {
	var w CoeffWriter
	for i := 0; i < 10; i++ {
		w.Put(int32(i * 1000))
	}
	full := w.Bytes()
	cr := NewCoeffReader(full[:len(full)/2])
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		_, err = cr.Next()
	}
	if err == nil {
		t.Fatal("truncated stream read to completion")
	}
}

func TestColorRoundTripBounded(t *testing.T) {
	// The integer YCbCr pair is lossy but must stay within a small error.
	for r := 0; r < 256; r += 5 {
		for g := 0; g < 256; g += 7 {
			for b := 0; b < 256; b += 11 {
				y, cb, cr := RGBToYCC(int32(r), int32(g), int32(b))
				r2, g2, b2 := YCCToRGB(y, cb, cr)
				if abs(r2-int32(r)) > 4 || abs(g2-int32(g)) > 4 || abs(b2-int32(b)) > 4 {
					t.Fatalf("color drift at (%d,%d,%d) -> (%d,%d,%d)", r, g, b, r2, g2, b2)
				}
			}
		}
	}
}

func abs(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestDivRoundSymmetry(t *testing.T) {
	for _, b := range []int32{1, 2, 3, 7, 16, 255} {
		for a := int32(-1000); a <= 1000; a += 13 {
			if DivRound(a, b) != -DivRound(-a, b) {
				t.Fatalf("DivRound not symmetric at %d/%d", a, b)
			}
		}
	}
	if DivRound(7, 2) != 4 || DivRound(-7, 2) != -4 || DivRound(5, 3) != 2 {
		t.Fatal("rounding rule wrong")
	}
}
