// Package imagec holds the machinery shared by the two lossy image
// codecs (the DCT "jpeg family" codec and the Haar-wavelet "JPEG-2000
// family" codec): integer YCbCr color conversion, the byte-oriented
// coefficient entropy coder, and their VXC twins.
//
// Coefficient token stream (byte-oriented):
//
//	0x00 varint(runLen)      — a run of zero coefficients
//	0x01 varint(zigzag(v))   — one nonzero coefficient
//
// The stream carries exactly the coefficient count implied by the image
// header, so no end marker is needed.
package imagec

import (
	"fmt"

	"vxa/internal/vxcc"
)

// --- integer color transform (identical in Go and VXC) ---

// RGBToYCC converts one pixel to integer YCbCr.
func RGBToYCC(r, g, b int32) (y, cb, cr int32) {
	y = (77*r + 150*g + 29*b) >> 8
	cb = ((-43*r - 85*g + 128*b) >> 8) + 128
	cr = ((128*r - 107*g - 21*b) >> 8) + 128
	return
}

// YCCToRGB inverts RGBToYCC (approximately; the pair is lossy).
func YCCToRGB(y, cb, cr int32) (r, g, b int32) {
	r = clamp255(y + (359*(cr-128))>>8)
	g = clamp255(y - (88*(cb-128)+183*(cr-128))>>8)
	b = clamp255(y + (454*(cb-128))>>8)
	return
}

func clamp255(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// DivRound divides with symmetric round-half-away-from-zero, matching
// the VXC decoders' integer arithmetic exactly.
func DivRound(a, b int32) int32 {
	if a >= 0 {
		return (a + b/2) / b
	}
	return -((-a + b/2) / b)
}

// --- coefficient stream ---

// Zigzag maps a signed coefficient to unsigned for varint coding.
func Zigzag(v int32) uint32 { return uint32(v<<1) ^ uint32(v>>31) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// CoeffWriter entropy-codes a coefficient stream.
type CoeffWriter struct {
	buf  []byte
	zrun uint32
}

func (w *CoeffWriter) varint(v uint32) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

// Put appends one coefficient.
func (w *CoeffWriter) Put(v int32) {
	if v == 0 {
		w.zrun++
		return
	}
	w.flushRun()
	w.buf = append(w.buf, 0x01)
	w.varint(Zigzag(v))
}

func (w *CoeffWriter) flushRun() {
	if w.zrun > 0 {
		w.buf = append(w.buf, 0x00)
		w.varint(w.zrun)
		w.zrun = 0
	}
}

// Bytes finalizes and returns the encoded stream.
func (w *CoeffWriter) Bytes() []byte {
	w.flushRun()
	return w.buf
}

// CoeffReader decodes a coefficient stream produced by CoeffWriter.
type CoeffReader struct {
	data []byte
	pos  int
	zrun uint32
}

// NewCoeffReader wraps an encoded stream.
func NewCoeffReader(data []byte) *CoeffReader { return &CoeffReader{data: data} }

func (r *CoeffReader) byteIn() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("imagec: truncated coefficient stream")
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *CoeffReader) varint() (uint32, error) {
	var v uint32
	var shift uint
	for {
		b, err := r.byteIn()
		if err != nil {
			return 0, err
		}
		v |= uint32(b&0x7F) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
		if shift > 31 {
			return 0, fmt.Errorf("imagec: varint too long")
		}
	}
}

// Next returns the next coefficient.
func (r *CoeffReader) Next() (int32, error) {
	if r.zrun > 0 {
		r.zrun--
		return 0, nil
	}
	tok, err := r.byteIn()
	if err != nil {
		return 0, err
	}
	switch tok {
	case 0x00:
		n, err := r.varint()
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, fmt.Errorf("imagec: empty zero run")
		}
		r.zrun = n - 1
		return 0, nil
	case 0x01:
		u, err := r.varint()
		if err != nil {
			return 0, err
		}
		return Unzigzag(u), nil
	}
	return 0, fmt.Errorf("imagec: bad token %#x", tok)
}

// VXCSource is the VXC twin of this package: coefficient reader, color
// inverse, clamping, rounding division, and a BMP writer. Image planes
// live on the decoder heap.
var VXCSource = vxcc.Source{Name: "<imagec>", Text: `
// Shared image decoder machinery: coefficient stream, color, BMP.

int __czrun;

int coeff_varint() {
	int v = 0;
	int shift = 0;
	while (1) {
		int b = mustgetb();
		v |= (b & 0x7F) << shift;
		if ((b & 0x80) == 0) return v;
		shift += 7;
		if (shift > 31) die("varint too long");
	}
}

void coeff_reset() { __czrun = 0; }

int coeff_next() {
	if (__czrun > 0) { __czrun--; return 0; }
	int tok = mustgetb();
	if (tok == 0) {
		int n = coeff_varint();
		if (n == 0) die("empty zero run");
		__czrun = n - 1;
		return 0;
	}
	if (tok == 1) {
		int u = coeff_varint();
		return ((uint)u >> 1) ^ (-(u & 1));
	}
	die("bad coefficient token");
	return 0;
}

int clamp255(int v) {
	if (v < 0) return 0;
	if (v > 255) return 255;
	return v;
}

int divround(int a, int b) {
	if (a >= 0) return (a + b / 2) / b;
	return -((-a + b / 2) / b);
}

void ycc_to_rgb(int y, int cb, int cr, int *rgb) {
	rgb[0] = clamp255(y + ((359 * (cr - 128)) >> 8));
	rgb[1] = clamp255(y - ((88 * (cb - 128) + 183 * (cr - 128)) >> 8));
	rgb[2] = clamp255(y + ((454 * (cb - 128)) >> 8));
}

// bmp_write emits a bottom-up 24-bit BMP from three full-size planes
// (may be padded to pw x ph; only w x h pixels are emitted).
void bmp_write(int *py, int *pcb, int *pcr, int w, int h, int pw) {
	int stride = (w * 3 + 3) & ~3;
	int datalen = stride * h;
	putb('B'); putb('M');
	put4le(54 + datalen);
	put4le(0);
	put4le(54);
	put4le(40);
	put4le(w);
	put4le(h);      // positive: bottom-up
	put2le(1);
	put2le(24);
	put4le(0);      // BI_RGB
	put4le(datalen);
	put4le(0); put4le(0); // resolution unspecified, as the native encoder
	put4le(0); put4le(0);
	int rgb[3];
	int y;
	for (y = h - 1; y >= 0; y--) {
		int x;
		int emitted = 0;
		for (x = 0; x < w; x++) {
			int idx = y * pw + x;
			ycc_to_rgb(py[idx], pcb[idx], pcr[idx], rgb);
			putb(rgb[2]); putb(rgb[1]); putb(rgb[0]); // BGR
			emitted += 3;
		}
		while (emitted < stride) { putb(0); emitted++; }
	}
}
`}
