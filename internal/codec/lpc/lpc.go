// Package lpc implements "vxlpc", the reproduction's stand-in for the
// paper's FLAC codec: a lossless audio compressor using FLAC's fixed
// linear predictors (orders 0-4) with Rice-coded residuals. Like the
// paper's flac codec it is a full encoder/decoder pair: the archiver
// recognizes uncompressed WAV input and compresses it automatically
// (§5.1). The decoder emits canonical WAV.
//
// Stream format "VXF1" (little-endian header, then one LSB-first bit
// stream to the end):
//
//	magic "VXF1", u16 channels, u32 sampleRate, u32 frames
//	per frame (up to 4096 samples per channel), per channel:
//	  3 bits predictor order (0-4), 5 bits Rice parameter k
//	  per sample: residual, zigzag-coded then Rice-coded:
//	    q ones, a zero, then k LSB-first bits; q == 40 escapes to a raw
//	    32-bit value
//
// Predictor history is continuous across frames (no warmup samples);
// at stream start the history is zero.
package lpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"vxa/internal/codec"
	"vxa/internal/codec/vxcsrc"
	"vxa/internal/vxcc"
	"vxa/internal/wav"
)

// FrameSize is the number of per-channel samples coded per frame.
const FrameSize = 4096

// riceEscape is the unary length that switches to a raw 32-bit value.
const riceEscape = 40

// ErrFormat reports a malformed VXF1 stream.
var ErrFormat = errors.New("lpc: malformed VXF1 stream")

// predict applies the fixed predictor of the given order to the last
// four history samples (h[0] is the most recent).
func predict(order int, h *[4]int32) int32 {
	switch order {
	case 1:
		return h[0]
	case 2:
		return 2*h[0] - h[1]
	case 3:
		return 3*h[0] - 3*h[1] + h[2]
	case 4:
		return 4*h[0] - 6*h[1] + 4*h[2] - h[3]
	}
	return 0
}

func zigzag(v int32) uint32 { return uint32(v<<1) ^ uint32(v>>31) }

func unzigzag(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// Encode compresses 16-bit PCM WAV losslessly into VXF1.
func Encode(dst io.Writer, src []byte) error {
	snd, err := wav.Decode(src)
	if err != nil {
		return err
	}
	frames := snd.Frames()
	hdr := make([]byte, 14)
	copy(hdr, "VXF1")
	binary.LittleEndian.PutUint16(hdr[4:], uint16(snd.Channels))
	binary.LittleEndian.PutUint32(hdr[6:], uint32(snd.SampleRate))
	binary.LittleEndian.PutUint32(hdr[10:], uint32(frames))
	if _, err := dst.Write(hdr); err != nil {
		return err
	}

	bw := &bitWriter{}
	hist := make([][4]int32, snd.Channels)
	resid := make([]uint32, FrameSize)

	for start := 0; start < frames; start += FrameSize {
		n := frames - start
		if n > FrameSize {
			n = FrameSize
		}
		for ch := 0; ch < snd.Channels; ch++ {
			// Choose the order (and then k) that minimizes coded size.
			bestOrder, bestK, bestBits := 0, 0, int64(1)<<62
			for order := 0; order <= 4; order++ {
				h := hist[ch]
				var sum uint64
				for i := 0; i < n; i++ {
					s := int32(snd.Samples[(start+i)*snd.Channels+ch])
					e := s - predict(order, &h)
					sum += uint64(zigzag(e))
					h[3], h[2], h[1], h[0] = h[2], h[1], h[0], s
				}
				k := riceParam(sum, n)
				bits := riceCost(order, k, n, &hist[ch], snd, start, ch)
				if bits < bestBits {
					bestOrder, bestK, bestBits = order, k, bits
				}
			}
			bw.writeBitsLSB(uint32(bestOrder), 3)
			bw.writeBitsLSB(uint32(bestK), 5)
			for i := 0; i < n; i++ {
				s := int32(snd.Samples[(start+i)*snd.Channels+ch])
				e := s - predict(bestOrder, &hist[ch])
				writeRice(bw, zigzag(e), bestK)
				h := &hist[ch]
				h[3], h[2], h[1], h[0] = h[2], h[1], h[0], s
			}
			_ = resid
		}
	}
	bw.flush()
	_, err = dst.Write(bw.buf)
	return err
}

// riceParam picks k from the mean zigzagged residual.
func riceParam(sum uint64, n int) int {
	if n == 0 {
		return 0
	}
	mean := sum / uint64(n)
	k := 0
	for mean > 0 && k < 30 {
		mean >>= 1
		k++
	}
	if k > 0 {
		k--
	}
	return k
}

// riceCost computes the exact coded size of a channel-frame for (order, k).
func riceCost(order, k, n int, hist0 *[4]int32, snd *wav.Sound, start, ch int) int64 {
	h := *hist0
	bits := int64(8)
	for i := 0; i < n; i++ {
		s := int32(snd.Samples[(start+i)*snd.Channels+ch])
		u := zigzag(s - predict(order, &h))
		q := u >> uint(k)
		if q >= riceEscape {
			bits += riceEscape + 1 + 32
		} else {
			bits += int64(q) + 1 + int64(k)
		}
		h[3], h[2], h[1], h[0] = h[2], h[1], h[0], s
	}
	return bits
}

func writeRice(bw *bitWriter, u uint32, k int) {
	q := u >> uint(k)
	if q >= riceEscape {
		for i := 0; i < riceEscape; i++ {
			bw.writeBit(1)
		}
		bw.writeBit(0)
		bw.writeBitsLSB(u, 32)
		return
	}
	for i := uint32(0); i < q; i++ {
		bw.writeBit(1)
	}
	bw.writeBit(0)
	bw.writeBitsLSB(u, k)
}

// bitWriter writes LSB-first, matching the VXC getbit/getbits reader.
type bitWriter struct {
	buf  []byte
	cur  uint32
	nCur uint
}

func (w *bitWriter) writeBit(b uint32) {
	w.cur |= (b & 1) << w.nCur
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nCur = 0, 0
	}
}

// writeBitsLSB writes n bits of v, least significant first (the order
// getbits reads them back).
func (w *bitWriter) writeBitsLSB(v uint32, n int) {
	for i := 0; i < n; i++ {
		w.writeBit(v >> uint(i))
	}
}

func (w *bitWriter) flush() {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nCur = 0, 0
	}
}

// Decode is the native decoder: VXF1 in, canonical WAV out.
func Decode(dst io.Writer, src io.Reader) error {
	var hdr [14]byte
	if _, err := io.ReadFull(src, hdr[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if string(hdr[:4]) != "VXF1" {
		return fmt.Errorf("%w: bad magic", ErrFormat)
	}
	channels := int(binary.LittleEndian.Uint16(hdr[4:]))
	rate := int(binary.LittleEndian.Uint32(hdr[6:]))
	frames := int(binary.LittleEndian.Uint32(hdr[10:]))
	if channels < 1 || channels > 8 || frames < 0 || frames > 1<<28 {
		return fmt.Errorf("%w: bad header", ErrFormat)
	}
	br := newBitReader(src)
	snd := &wav.Sound{Channels: channels, SampleRate: rate, Samples: make([]int16, frames*channels)}
	hist := make([][4]int32, channels)
	for start := 0; start < frames; start += FrameSize {
		n := frames - start
		if n > FrameSize {
			n = FrameSize
		}
		for ch := 0; ch < channels; ch++ {
			order, err := br.bits(3)
			if err != nil {
				return err
			}
			if order > 4 {
				return fmt.Errorf("%w: bad predictor order", ErrFormat)
			}
			k, err := br.bits(5)
			if err != nil {
				return err
			}
			h := &hist[ch]
			for i := 0; i < n; i++ {
				u, err := readRice(br, int(k))
				if err != nil {
					return err
				}
				s := predict(int(order), h) + unzigzag(u)
				if s > 32767 || s < -32768 {
					return fmt.Errorf("%w: sample out of range", ErrFormat)
				}
				snd.Samples[(start+i)*channels+ch] = int16(s)
				h[3], h[2], h[1], h[0] = h[2], h[1], h[0], s
			}
		}
	}
	_, err := dst.Write(wav.Encode(snd))
	return err
}

func readRice(br *bitReader, k int) (uint32, error) {
	q := 0
	for {
		b, err := br.bit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			break
		}
		q++
		if q > riceEscape {
			return 0, fmt.Errorf("%w: bad rice code", ErrFormat)
		}
	}
	if q == riceEscape {
		return br.bits(32)
	}
	low, err := br.bits(k)
	if err != nil {
		return 0, err
	}
	return uint32(q)<<uint(k) | low, nil
}

type bitReader struct {
	r     io.Reader
	one   [1]byte
	bits8 uint32
	n     uint
}

func newBitReader(r io.Reader) *bitReader { return &bitReader{r: r} }

func (b *bitReader) bit() (uint32, error) {
	if b.n == 0 {
		if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
			return 0, fmt.Errorf("%w: truncated bit stream", ErrFormat)
		}
		b.bits8 = uint32(b.one[0])
		b.n = 8
	}
	v := b.bits8 & 1
	b.bits8 >>= 1
	b.n--
	return v, nil
}

func (b *bitReader) bits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		bit, err := b.bit()
		if err != nil {
			return 0, err
		}
		v |= bit << uint(i)
	}
	return v, nil
}

// lpcMain is the VXA decoder in VXC.
var lpcMain = vxcc.Source{Name: "vxlpc.vxc", Text: `
// VXF1 fixed-LPC + Rice lossless audio decoder: VXA codec "lpc".
// Output: WAV audio.

enum { FRAME = 4096, ESCAPE = 40 };

int hist[32]; // 4 history samples x up to 8 channels

int predict(int order, int ch) {
	int *h = hist + ch * 4;
	if (order == 1) return h[0];
	if (order == 2) return 2 * h[0] - h[1];
	if (order == 3) return 3 * h[0] - 3 * h[1] + h[2];
	if (order == 4) return 4 * h[0] - 6 * h[1] + 4 * h[2] - h[3];
	return 0;
}

void push_hist(int ch, int s) {
	int *h = hist + ch * 4;
	h[3] = h[2];
	h[2] = h[1];
	h[1] = h[0];
	h[0] = s;
}

int read_rice(int k) {
	int q = 0;
	while (getbit()) {
		q++;
		if (q > ESCAPE) die("bad rice code");
	}
	if (q == ESCAPE) return getbits(32);
	return (q << k) | getbits(k);
}

int unzigzag(int u) {
	return ((uint)u >> 1) ^ (-(u & 1));
}

void wav_header(int channels, int rate, int frames) {
	int datalen = frames * channels * 2;
	putb('R'); putb('I'); putb('F'); putb('F');
	put4le(36 + datalen);
	putb('W'); putb('A'); putb('V'); putb('E');
	putb('f'); putb('m'); putb('t'); putb(' ');
	put4le(16);
	put2le(1);
	put2le(channels);
	put4le(rate);
	put4le(rate * channels * 2);
	put2le(channels * 2);
	put2le(16);
	putb('d'); putb('a'); putb('t'); putb('a');
	put4le(datalen);
}

// One frame's worth of one channel is decoded at a time, but samples
// must be emitted interleaved, so buffer the frame.
int framebuf[FRAME * 8];

int main(void) {
	while (1) {
		__stdio_reset();
		bits_reset();
		if (mustgetb() != 'V' || mustgetb() != 'X' || mustgetb() != 'F' || mustgetb() != '1')
			die("not a VXF1 stream");
		int channels = get2le();
		int rate = get4le();
		int frames = get4le();
		if (channels < 1 || channels > 8) die("bad channel count");
		if (frames < 0) die("bad frame count");
		int i;
		for (i = 0; i < 32; i++) hist[i] = 0;
		wav_header(channels, rate, frames);
		int start;
		for (start = 0; start < frames; start += FRAME) {
			int n = frames - start;
			if (n > FRAME) n = FRAME;
			int ch;
			for (ch = 0; ch < channels; ch++) {
				int order = getbits(3);
				if (order > 4) die("bad predictor order");
				int k = getbits(5);
				for (i = 0; i < n; i++) {
					int u = read_rice(k);
					int s = predict(order, ch) + unzigzag(u);
					if (s > 32767 || s < -32768) die("sample out of range");
					framebuf[i * channels + ch] = s;
					push_hist(ch, s);
				}
			}
			for (i = 0; i < n * channels; i++)
				put2le(framebuf[i] & 0xFFFF);
		}
		vxa_done();
	}
	return 0;
}
`}

func init() {
	codec.Register(&codec.Codec{
		Name:   "lpc",
		Desc:   "Lossless audio codec (fixed linear prediction + Rice coding, FLAC family)",
		Output: "WAV audio",
		Kind:   codec.MediaCodec,
		Recognize: func(data []byte) bool {
			return len(data) >= 14 && string(data[:4]) == "VXF1"
		},
		CanEncode: func(data []byte) bool {
			if !wav.Sniff(data) {
				return false
			}
			_, err := wav.Decode(data)
			return err == nil
		},
		Encode:  Encode,
		Decode:  Decode,
		Sources: []vxcc.Source{vxcsrc.Bitio, lpcMain},
	})
}
