package lpc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"vxa/internal/codec"
	"vxa/internal/vm"
	"vxa/internal/wav"
)

// synth builds a deterministic test tone: two mixed "oscillators"
// implemented with integer recurrences plus a little noise, per channel.
func synth(frames, channels, seed int) *wav.Sound {
	r := rand.New(rand.NewSource(int64(seed)))
	s := &wav.Sound{Channels: channels, SampleRate: 44100,
		Samples: make([]int16, frames*channels)}
	for ch := 0; ch < channels; ch++ {
		phase1, phase2 := 0, 0
		step1, step2 := 211+ch*17, 67+ch*5
		for i := 0; i < frames; i++ {
			phase1 = (phase1 + step1) % 65536
			phase2 = (phase2 + step2) % 65536
			tri := func(p int) int { // triangle wave, -8192..8191
				if p < 32768 {
					return p/2 - 8192
				}
				return 8191 - (p-32768)/2
			}
			v := tri(phase1) + tri(phase2)/2 + r.Intn(65) - 32
			if v > 32767 {
				v = 32767
			}
			if v < -32768 {
				v = -32768
			}
			s.Samples[i*channels+ch] = int16(v)
		}
	}
	return s
}

func TestZigzagProperty(t *testing.T) {
	f := func(v int32) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorsExact(t *testing.T) {
	h := [4]int32{10, 7, 3, 1} // most recent first
	if predict(0, &h) != 0 || predict(1, &h) != 10 ||
		predict(2, &h) != 13 || predict(3, &h) != 3*10-3*7+3 ||
		predict(4, &h) != 4*10-6*7+4*3-1 {
		t.Fatal("fixed predictor formulas wrong")
	}
}

func TestLosslessRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		frames   int
		channels int
	}{
		{"mono-short", 1000, 1},
		{"stereo", 9000, 2}, // crosses a frame boundary
		{"quad", 5000, 4},
		{"empty", 0, 2},
	} {
		snd := synth(tc.frames, tc.channels, 7)
		raw := wav.Encode(snd)
		var enc bytes.Buffer
		if err := Encode(&enc, raw); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var dec bytes.Buffer
		if err := Decode(&dec, bytes.NewReader(enc.Bytes())); err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		got, err := wav.Decode(dec.Bytes())
		if err != nil {
			t.Fatalf("%s: output not WAV: %v", tc.name, err)
		}
		if len(got.Samples) != len(snd.Samples) {
			t.Fatalf("%s: %d samples, want %d", tc.name, len(got.Samples), len(snd.Samples))
		}
		for i := range got.Samples {
			if got.Samples[i] != snd.Samples[i] {
				t.Fatalf("%s: lossless codec altered sample %d", tc.name, i)
			}
		}
		if tc.frames > 1000 && enc.Len() >= len(raw) {
			t.Errorf("%s: no compression: %d -> %d", tc.name, len(raw), enc.Len())
		}
	}
}

// TestRandomNoiseStillLossless: white noise defeats prediction; the
// escape path must keep the codec lossless anyway.
func TestRandomNoiseStillLossless(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	snd := &wav.Sound{Channels: 1, SampleRate: 8000, Samples: make([]int16, 6000)}
	for i := range snd.Samples {
		snd.Samples[i] = int16(r.Intn(65536) - 32768)
	}
	raw := wav.Encode(snd)
	var enc bytes.Buffer
	if err := Encode(&enc, raw); err != nil {
		t.Fatal(err)
	}
	var dec bytes.Buffer
	if err := Decode(&dec, bytes.NewReader(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, _ := wav.Decode(dec.Bytes())
	for i := range got.Samples {
		if got.Samples[i] != snd.Samples[i] {
			t.Fatalf("noise sample %d altered", i)
		}
	}
}

func TestVXADecoderMatchesNative(t *testing.T) {
	c, ok := codec.ByName("lpc")
	if !ok {
		t.Fatal("lpc codec not registered")
	}
	snd := synth(12000, 2, 3)
	raw := wav.Encode(snd)
	var enc bytes.Buffer
	if err := Encode(&enc, raw); err != nil {
		t.Fatal(err)
	}
	var nat bytes.Buffer
	if err := Decode(&nat, bytes.NewReader(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := c.RunVXA(enc.Bytes(), vm.Config{})
	if err != nil {
		t.Fatalf("vxa: %v", err)
	}
	if !bytes.Equal(got, nat.Bytes()) {
		t.Fatalf("vxa decoder output differs from native (%d vs %d bytes)", len(got), nat.Len())
	}
}

func TestRecognizeAndCanEncode(t *testing.T) {
	c, _ := codec.ByName("lpc")
	raw := wav.Encode(synth(100, 1, 1))
	if !c.CanEncode(raw) {
		t.Fatal("lpc cannot encode a WAV file")
	}
	var enc bytes.Buffer
	Encode(&enc, raw)
	if !c.Recognize(enc.Bytes()) {
		t.Fatal("lpc does not recognize its own output")
	}
	if c.Recognize(raw) || c.CanEncode(enc.Bytes()) {
		t.Fatal("recognizer confusion between raw and encoded forms")
	}
}
