// Package dctimg implements "vxdct", the reproduction's stand-in for the
// paper's JPEG codec: a lossy still-image coder built from the same
// stages as baseline JPEG — YCbCr color conversion, 8x8 block DCT,
// quality-scaled quantization, zigzag scan with DC prediction, and
// entropy coding. Like the paper's jpeg redec, the decoder outputs
// "uncompressed images in the simple and universally-understood Windows
// BMP file format" (§5.1).
//
// Stream format "VXJ1" (little-endian):
//
//	magic "VXJ1", u16 width, u16 height, u8 quality (1-100)
//	coefficient token stream (package imagec) carrying, for each of
//	Y/Cb/Cr: all 8x8 blocks in raster order, 64 quantized coefficients
//	each in zigzag order, DC delta-coded per channel.
//
// All transforms are fixed-point integer; the Go and VXC decoders are
// bit-exact.
package dctimg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"vxa/internal/bmp"
	"vxa/internal/codec"
	"vxa/internal/codec/imagec"
	"vxa/internal/vxcc"
)

// MaxDim bounds accepted image dimensions.
const MaxDim = 4096

// ErrFormat reports a malformed VXJ1 stream.
var ErrFormat = errors.New("dctimg: malformed VXJ1 stream")

// dctTab[u][x] = round(a(u) * cos((2x+1)u*pi/16) * 4096) — the orthonormal
// DCT-II basis in Q12 fixed point, shared (via source generation) with
// the VXC decoder.
var dctTab [8][8]int32

// Standard JPEG Annex K quantization tables.
var lumaQ = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

var chromaQ = [64]int32{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// zigzagOrder maps scan position to block position.
var zigzagOrder = [64]int32{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

func init() {
	for u := 0; u < 8; u++ {
		a := math.Sqrt(2.0 / 8.0)
		if u == 0 {
			a = math.Sqrt(1.0 / 8.0)
		}
		for x := 0; x < 8; x++ {
			dctTab[u][x] = int32(math.Round(a * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) * 4096))
		}
	}
	registerCodec()
}

// scaleQ applies IJG-style quality scaling to a base table.
func scaleQ(base *[64]int32, quality int32) [64]int32 {
	var scale int32
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - 2*quality
	}
	var out [64]int32
	for i, b := range base {
		v := (b*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		out[i] = v
	}
	return out
}

// fdct2 computes the 2-D DCT of an 8x8 block in place.
func fdct2(blk *[64]int32) {
	var tmp [64]int32
	for r := 0; r < 8; r++ {
		for u := 0; u < 8; u++ {
			var s int32
			for x := 0; x < 8; x++ {
				s += dctTab[u][x] * blk[r*8+x]
			}
			tmp[r*8+u] = (s + 2048) >> 12
		}
	}
	for c := 0; c < 8; c++ {
		for u := 0; u < 8; u++ {
			var s int32
			for y := 0; y < 8; y++ {
				s += dctTab[u][y] * tmp[y*8+c]
			}
			blk[u*8+c] = (s + 2048) >> 12
		}
	}
}

// idct2 computes the 2-D inverse DCT of an 8x8 block in place.
func idct2(blk *[64]int32) {
	var tmp [64]int32
	for c := 0; c < 8; c++ {
		for y := 0; y < 8; y++ {
			var s int32
			for u := 0; u < 8; u++ {
				s += dctTab[u][y] * blk[u*8+c]
			}
			tmp[y*8+c] = (s + 2048) >> 12
		}
	}
	for r := 0; r < 8; r++ {
		for x := 0; x < 8; x++ {
			var s int32
			for u := 0; u < 8; u++ {
				s += dctTab[u][x] * tmp[r*8+u]
			}
			blk[r*8+x] = (s + 2048) >> 12
		}
	}
}

// Encode compresses a 24-bit BMP into VXJ1. Quality 75 is used; use
// EncodeQuality for control.
func Encode(dst io.Writer, src []byte) error {
	return EncodeQuality(dst, src, 75)
}

// EncodeQuality compresses with an explicit quality (1-100).
func EncodeQuality(dst io.Writer, src []byte, quality int) error {
	if quality < 1 || quality > 100 {
		return fmt.Errorf("dctimg: quality %d out of range", quality)
	}
	im, err := bmp.Decode(src)
	if err != nil {
		return err
	}
	if im.W > MaxDim || im.H > MaxDim {
		return fmt.Errorf("dctimg: image too large (%dx%d)", im.W, im.H)
	}
	hdr := make([]byte, 9)
	copy(hdr, "VXJ1")
	binary.LittleEndian.PutUint16(hdr[4:], uint16(im.W))
	binary.LittleEndian.PutUint16(hdr[6:], uint16(im.H))
	hdr[8] = byte(quality)
	if _, err := dst.Write(hdr); err != nil {
		return err
	}

	pw, ph := (im.W+7)&^7, (im.H+7)&^7
	planes := toPlanes(im, pw, ph)
	qY := scaleQ(&lumaQ, int32(quality))
	qC := scaleQ(&chromaQ, int32(quality))

	var cw imagec.CoeffWriter
	for ch := 0; ch < 3; ch++ {
		q := &qY
		if ch > 0 {
			q = &qC
		}
		plane := planes[ch]
		prevDC := int32(0)
		for by := 0; by < ph; by += 8 {
			for bx := 0; bx < pw; bx += 8 {
				var blk [64]int32
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						blk[y*8+x] = plane[(by+y)*pw+bx+x] - 128
					}
				}
				fdct2(&blk)
				var zz [64]int32
				for i, pos := range zigzagOrder {
					zz[i] = imagec.DivRound(blk[pos], q[pos])
				}
				dc := zz[0]
				zz[0] = dc - prevDC
				prevDC = dc
				for _, v := range zz {
					cw.Put(v)
				}
			}
		}
	}
	_, err = dst.Write(cw.Bytes())
	return err
}

// toPlanes converts to edge-replicated YCbCr planes of size pw x ph.
func toPlanes(im *bmp.Image, pw, ph int) [3][]int32 {
	var planes [3][]int32
	for i := range planes {
		planes[i] = make([]int32, pw*ph)
	}
	for y := 0; y < ph; y++ {
		sy := y
		if sy >= im.H {
			sy = im.H - 1
		}
		for x := 0; x < pw; x++ {
			sx := x
			if sx >= im.W {
				sx = im.W - 1
			}
			r, g, b := im.At(sx, sy)
			yy, cb, cr := imagec.RGBToYCC(int32(r), int32(g), int32(b))
			planes[0][y*pw+x] = yy
			planes[1][y*pw+x] = cb
			planes[2][y*pw+x] = cr
		}
	}
	return planes
}

// Decode is the native decoder: VXJ1 in, BMP out.
func Decode(dst io.Writer, src io.Reader) error {
	all, err := io.ReadAll(src)
	if err != nil {
		return err
	}
	if len(all) < 9 || string(all[:4]) != "VXJ1" {
		return fmt.Errorf("%w: bad magic", ErrFormat)
	}
	w := int(binary.LittleEndian.Uint16(all[4:]))
	h := int(binary.LittleEndian.Uint16(all[6:]))
	quality := int32(all[8])
	if w == 0 || h == 0 || w > MaxDim || h > MaxDim || quality < 1 || quality > 100 {
		return fmt.Errorf("%w: bad header", ErrFormat)
	}
	pw, ph := (w+7)&^7, (h+7)&^7
	qY := scaleQ(&lumaQ, quality)
	qC := scaleQ(&chromaQ, quality)
	cr := imagec.NewCoeffReader(all[9:])

	var planes [3][]int32
	for i := range planes {
		planes[i] = make([]int32, pw*ph)
	}
	for ch := 0; ch < 3; ch++ {
		q := &qY
		if ch > 0 {
			q = &qC
		}
		prevDC := int32(0)
		for by := 0; by < ph; by += 8 {
			for bx := 0; bx < pw; bx += 8 {
				var blk [64]int32
				for i := 0; i < 64; i++ {
					v, err := cr.Next()
					if err != nil {
						return err
					}
					if i == 0 {
						v += prevDC
						prevDC = v
					}
					blk[zigzagOrder[i]] = v * q[zigzagOrder[i]]
				}
				idct2(&blk)
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						planes[ch][(by+y)*pw+bx+x] = blk[y*8+x] + 128
					}
				}
			}
		}
	}

	im := bmp.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, b := imagec.YCCToRGB(planes[0][y*pw+x], planes[1][y*pw+x], planes[2][y*pw+x])
			im.Set(x, y, byte(r), byte(g), byte(b))
		}
	}
	_, err = dst.Write(bmp.Encode(im))
	return err
}

// vxcIntList renders an int32 table as a VXC initializer list.
func vxcIntList(vals []int32) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// dctMain generates the VXC decoder, splicing in the exact tables the
// Go side uses so the two decoders are bit-identical.
func dctMain() vxcc.Source {
	flat := make([]int32, 64)
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			flat[u*8+x] = dctTab[u][x]
		}
	}
	text := `
// VXJ1 block-DCT image decoder: VXA codec "dct". Output: BMP image.

enum { MAXDIM = 4096, MAXPIX = 1 << 21 };

const int dcttab[64] = {` + vxcIntList(flat) + `};
const int lumaq[64] = {` + vxcIntList(lumaQ[:]) + `};
const int chromaq[64] = {` + vxcIntList(chromaQ[:]) + `};
const int zz[64] = {` + vxcIntList(zigzagOrder[:]) + `};

int qtab[128]; // scaled luma at 0..63, chroma at 64..127

void scaleq(int quality) {
	int scale;
	if (quality < 50) scale = 5000 / quality;
	else scale = 200 - 2 * quality;
	int i;
	for (i = 0; i < 64; i++) {
		int v = (lumaq[i] * scale + 50) / 100;
		if (v < 1) v = 1;
		if (v > 255) v = 255;
		qtab[i] = v;
		v = (chromaq[i] * scale + 50) / 100;
		if (v < 1) v = 1;
		if (v > 255) v = 255;
		qtab[64 + i] = v;
	}
}

int blk[64];
int tmp[64];

void idct2() {
	int c;
	int r;
	int u;
	for (c = 0; c < 8; c++) {
		int y;
		for (y = 0; y < 8; y++) {
			int s = 0;
			for (u = 0; u < 8; u++) s += dcttab[u * 8 + y] * blk[u * 8 + c];
			tmp[y * 8 + c] = (s + 2048) >> 12;
		}
	}
	for (r = 0; r < 8; r++) {
		int x;
		for (x = 0; x < 8; x++) {
			int s = 0;
			for (u = 0; u < 8; u++) s += dcttab[u * 8 + x] * tmp[r * 8 + u];
			blk[r * 8 + x] = (s + 2048) >> 12;
		}
	}
}

int *plane0;
int *plane1;
int *plane2;

int *chplane(int ch) {
	if (ch == 0) return plane0;
	if (ch == 1) return plane1;
	return plane2;
}

int main(void) {
	while (1) {
		__stdio_reset();
		coeff_reset();
		if (mustgetb() != 'V' || mustgetb() != 'X' || mustgetb() != 'J' || mustgetb() != '1')
			die("not a VXJ1 stream");
		int w = get2le();
		int h = get2le();
		int quality = mustgetb();
		if (w <= 0 || h <= 0 || w > MAXDIM || h > MAXDIM) die("bad dimensions");
		if (quality < 1 || quality > 100) die("bad quality");
		int pw = (w + 7) & ~7;
		int ph = (h + 7) & ~7;
		if (pw * ph > MAXPIX) die("image too large for decoder");
		scaleq(quality);
		if (!plane0) {
			plane0 = (int*)vxalloc(MAXPIX * 4);
			plane1 = (int*)vxalloc(MAXPIX * 4);
			plane2 = (int*)vxalloc(MAXPIX * 4);
		}
		int ch;
		for (ch = 0; ch < 3; ch++) {
			int *plane = chplane(ch);
			int qoff = 0;
			if (ch > 0) qoff = 64;
			int prevdc = 0;
			int by;
			for (by = 0; by < ph; by += 8) {
				int bx;
				for (bx = 0; bx < pw; bx += 8) {
					int i;
					for (i = 0; i < 64; i++) {
						int v = coeff_next();
						if (i == 0) {
							v += prevdc;
							prevdc = v;
						}
						blk[zz[i]] = v * qtab[qoff + zz[i]];
					}
					idct2();
					int y;
					for (y = 0; y < 8; y++) {
						int x;
						for (x = 0; x < 8; x++)
							plane[(by + y) * pw + bx + x] = blk[y * 8 + x] + 128;
					}
				}
			}
		}
		bmp_write(plane0, plane1, plane2, w, h, pw);
		vxa_done();
	}
	return 0;
}
`
	return vxcc.Source{Name: "vxdct.vxc", Text: text}
}

func registerCodec() {
	codec.Register(&codec.Codec{
		Name:   "dct",
		Desc:   "Lossy still-image coder (8x8 DCT + quantization, JPEG family)",
		Output: "BMP image",
		Kind:   codec.MediaCodec,
		Lossy:  true,
		Recognize: func(data []byte) bool {
			return len(data) >= 9 && string(data[:4]) == "VXJ1"
		},
		CanEncode: func(data []byte) bool {
			if !bmp.Sniff(data) {
				return false
			}
			_, err := bmp.Decode(data)
			return err == nil
		},
		Encode:  Encode,
		Decode:  Decode,
		Sources: []vxcc.Source{imagec.VXCSource, dctMain()},
	})
}
