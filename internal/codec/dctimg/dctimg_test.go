package dctimg

import (
	"bytes"
	"math"
	"testing"

	"vxa/internal/bmp"
	"vxa/internal/codec"
	"vxa/internal/vm"
)

// testImage builds a deterministic gradient-plus-shapes test card.
func testImage(w, h int) *bmp.Image {
	im := bmp.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := byte(x * 255 / maxi(w-1, 1))
			g := byte(y * 255 / maxi(h-1, 1))
			b := byte((x + y) % 256)
			// A few hard edges to stress the transform.
			if (x/16+y/16)%2 == 0 {
				r, g, b = 255-r, g/2, 255-b
			}
			im.Set(x, y, r, g, b)
		}
	}
	return im
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func psnr(a, b *bmp.Image) float64 {
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestDCTSelfInverse(t *testing.T) {
	var blk [64]int32
	for i := range blk {
		blk[i] = int32((i*37)%256) - 128
	}
	orig := blk
	fdct2(&blk)
	idct2(&blk)
	for i := range blk {
		d := blk[i] - orig[i]
		if d < -2 || d > 2 {
			t.Fatalf("idct(fdct) drift at %d: %d vs %d", i, blk[i], orig[i])
		}
	}
}

func TestEncodeDecodeQuality(t *testing.T) {
	im := testImage(96, 64)
	raw := bmp.Encode(im)
	for _, q := range []int{30, 75, 95} {
		var enc bytes.Buffer
		if err := EncodeQuality(&enc, raw, q); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		var dec bytes.Buffer
		if err := Decode(&dec, bytes.NewReader(enc.Bytes())); err != nil {
			t.Fatalf("q=%d: decode: %v", q, err)
		}
		got, err := bmp.Decode(dec.Bytes())
		if err != nil {
			t.Fatalf("q=%d: output not BMP: %v", q, err)
		}
		if got.W != im.W || got.H != im.H {
			t.Fatalf("q=%d: dims %dx%d", q, got.W, got.H)
		}
		p := psnr(im, got)
		if p < 20 {
			t.Fatalf("q=%d: PSNR %.1f dB too low", q, p)
		}
		if q >= 95 && p < 30 {
			t.Fatalf("q=%d: PSNR %.1f dB too low for high quality", q, p)
		}
	}
	// Higher quality must cost more bytes.
	var lo, hi bytes.Buffer
	EncodeQuality(&lo, raw, 20)
	EncodeQuality(&hi, raw, 95)
	if hi.Len() <= lo.Len() {
		t.Fatalf("quality 95 (%d bytes) not larger than quality 20 (%d bytes)", hi.Len(), lo.Len())
	}
}

func TestOddDimensions(t *testing.T) {
	for _, d := range []struct{ w, h int }{{1, 1}, {7, 5}, {17, 9}, {8, 8}} {
		im := testImage(d.w, d.h)
		raw := bmp.Encode(im)
		var enc, dec bytes.Buffer
		if err := Encode(&enc, raw); err != nil {
			t.Fatalf("%dx%d: %v", d.w, d.h, err)
		}
		if err := Decode(&dec, bytes.NewReader(enc.Bytes())); err != nil {
			t.Fatalf("%dx%d: decode: %v", d.w, d.h, err)
		}
		got, err := bmp.Decode(dec.Bytes())
		if err != nil || got.W != d.w || got.H != d.h {
			t.Fatalf("%dx%d: got %v err %v", d.w, d.h, got, err)
		}
	}
}

// TestVXADecoderBitExact: the archived decoder must reproduce the native
// decoder's BMP byte for byte.
func TestVXADecoderBitExact(t *testing.T) {
	c, ok := codec.ByName("dct")
	if !ok {
		t.Fatal("dct codec not registered")
	}
	im := testImage(72, 48)
	raw := bmp.Encode(im)
	var enc bytes.Buffer
	if err := Encode(&enc, raw); err != nil {
		t.Fatal(err)
	}
	var nat bytes.Buffer
	if err := Decode(&nat, bytes.NewReader(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := c.RunVXA(enc.Bytes(), vm.Config{MemSize: 64 << 20})
	if err != nil {
		t.Fatalf("vxa: %v", err)
	}
	if !bytes.Equal(got, nat.Bytes()) {
		t.Fatalf("vxa BMP (%d bytes) differs from native BMP (%d bytes)", len(got), nat.Len())
	}
}

func TestRejectsGarbage(t *testing.T) {
	var dec bytes.Buffer
	if err := Decode(&dec, bytes.NewReader([]byte("VXJ1 garbage"))); err == nil {
		t.Fatal("garbage decoded")
	}
	if err := Decode(&dec, bytes.NewReader([]byte("not an image"))); err == nil {
		t.Fatal("non-image decoded")
	}
}
