// Package bwt implements "vxbwt", the reproduction's stand-in for the
// paper's bzip2 codec: a block-sorting compressor with the same pipeline
// family as bzip2 — Burrows-Wheeler transform, move-to-front coding,
// zero run-length coding, and canonical Huffman entropy coding.
//
// Stream format "VXB1" (all integers little-endian):
//
//	magic "VXB1", u32 blockSize
//	per block:
//	  u32 origLen (>0), u32 bwtIndex
//	  129 bytes: 258 canonical Huffman code lengths, packed as nibbles
//	  bit stream (LSB-first): Huffman symbols
//	     0..255  MTF value (value 0 never appears; zeros are run-coded)
//	     256     zero run; Elias-gamma run length follows
//	     257     end of block (bit stream then pads to a byte boundary)
//	u32 0 marks end of stream
package bwt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"vxa/internal/codec"
	"vxa/internal/codec/vxcsrc"
	"vxa/internal/vxcc"
)

// DefaultBlockSize is the encoder's block size. Smaller than bzip2's
// 900k because the virtualized decoder allocates ~5 bytes of working
// memory per input byte inside a 16 MiB sandbox.
const DefaultBlockSize = 128 << 10

// MaxBlockSize bounds the block size a decoder will accept.
const MaxBlockSize = 4 << 20

const (
	symZRun = 256
	symEOB  = 257
	nSyms   = 258
)

// ErrFormat reports a malformed VXB1 stream.
var ErrFormat = errors.New("bwt: malformed VXB1 stream")

// ---------- Burrows-Wheeler transform ----------

// Transform computes the BWT of data by sorting its cyclic rotations
// with prefix doubling (O(n log² n), no pathological inputs). It returns
// the last column and the row index of the original string.
func Transform(data []byte) (last []byte, index int) {
	n := len(data)
	if n == 0 {
		return nil, 0
	}
	rank := make([]int, n)
	tmp := make([]int, n)
	sa := make([]int, n)
	for i := 0; i < n; i++ {
		sa[i] = i
		rank[i] = int(data[i])
	}
	for k := 1; ; k *= 2 {
		cmp := func(a, b int) bool {
			if rank[a] != rank[b] {
				return rank[a] < rank[b]
			}
			ra := rank[(a+k)%n]
			rb := rank[(b+k)%n]
			return ra < rb
		}
		sort.Slice(sa, func(i, j int) bool { return cmp(sa[i], sa[j]) })
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			tmp[sa[i]] = tmp[sa[i-1]]
			if cmp(sa[i-1], sa[i]) {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if rank[sa[n-1]] == n-1 {
			break
		}
		if k > n {
			break
		}
	}
	last = make([]byte, n)
	for i, rot := range sa {
		last[i] = data[(rot+n-1)%n]
		if rot == 0 {
			index = i
		}
	}
	return last, index
}

// Inverse reverses the BWT given the last column and original row index.
func Inverse(last []byte, index int) ([]byte, error) {
	n := len(last)
	if n == 0 {
		return nil, nil
	}
	if index < 0 || index >= n {
		return nil, fmt.Errorf("%w: bwt index out of range", ErrFormat)
	}
	var counts [256]int
	for _, c := range last {
		counts[c]++
	}
	var base [256]int
	sum := 0
	for c := 0; c < 256; c++ {
		base[c] = sum
		sum += counts[c]
	}
	// tt[j] = i means: row i of the sorted matrix is the successor row
	// reached by following the standard LF walk.
	tt := make([]int32, n)
	var seen [256]int
	for i, c := range last {
		tt[base[c]+seen[c]] = int32(i)
		seen[c]++
	}
	out := make([]byte, n)
	p := tt[index]
	for k := 0; k < n; k++ {
		out[k] = last[p]
		p = tt[p]
	}
	return out, nil
}

// ---------- move-to-front ----------

func mtfEncode(data []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(data))
	for i, c := range data {
		var j int
		for table[j] != c {
			j++
		}
		out[i] = byte(j)
		copy(table[1:j+1], table[:j])
		table[0] = c
	}
	return out
}

func mtfDecode(data []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(data))
	for i, j := range data {
		c := table[j]
		out[i] = c
		copy(table[1:int(j)+1], table[:j])
		table[0] = c
	}
	return out
}

// ---------- canonical Huffman (encoder side) ----------

// buildLengths computes length-limited (≤15) canonical code lengths.
func buildLengths(freq []int) []byte {
	lengths := make([]byte, len(freq))
	f := append([]int(nil), freq...)
	for {
		type node struct {
			weight int
			syms   []int
		}
		var heap []node
		for s, w := range f {
			if w > 0 {
				heap = append(heap, node{w, []int{s}})
			}
		}
		if len(heap) == 0 {
			return lengths
		}
		if len(heap) == 1 {
			lengths[heap[0].syms[0]] = 1
			return lengths
		}
		for i := range lengths {
			lengths[i] = 0
		}
		sort.Slice(heap, func(i, j int) bool { return heap[i].weight < heap[j].weight })
		for len(heap) > 1 {
			a, b := heap[0], heap[1]
			heap = heap[2:]
			merged := node{a.weight + b.weight, append(append([]int{}, a.syms...), b.syms...)}
			for _, s := range a.syms {
				lengths[s]++
			}
			for _, s := range b.syms {
				lengths[s]++
			}
			// insert keeping sorted order
			pos := sort.Search(len(heap), func(i int) bool { return heap[i].weight >= merged.weight })
			heap = append(heap, node{})
			copy(heap[pos+1:], heap[pos:])
			heap[pos] = merged
		}
		maxLen := byte(0)
		for _, l := range lengths {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= 15 {
			return lengths
		}
		// Flatten the distribution and retry until the limit holds.
		for s := range f {
			if f[s] > 0 {
				f[s] = (f[s] + 1) / 2
			}
		}
	}
}

// canonicalCodes assigns canonical code values from lengths, matching
// the puff-style decoder: shorter codes first, ties by symbol value.
func canonicalCodes(lengths []byte) []uint32 {
	codes := make([]uint32, len(lengths))
	var count [16]int
	for _, l := range lengths {
		count[l]++
	}
	count[0] = 0 // absent symbols take part in no code space
	var next [16]uint32
	code := uint32(0)
	for l := 1; l <= 15; l++ {
		code = (code + uint32(count[l-1])) << 1
		next[l] = code
	}
	for s, l := range lengths {
		if l > 0 {
			codes[s] = next[l]
			next[l]++
		}
	}
	return codes
}

// bitWriter writes bits LSB-first into bytes, matching the VXC getbit.
type bitWriter struct {
	buf  []byte
	cur  uint32
	nCur uint
}

func (w *bitWriter) writeBit(b uint32) {
	w.cur |= (b & 1) << w.nCur
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nCur = 0, 0
	}
}

// writeCode emits a canonical Huffman code MSB-first (the decoder
// accumulates bits into the code from the top).
func (w *bitWriter) writeCode(code uint32, length byte) {
	for i := int(length) - 1; i >= 0; i-- {
		w.writeBit(code >> uint(i))
	}
}

// writeGamma emits Elias gamma for v >= 1.
func (w *bitWriter) writeGamma(v uint32) {
	n := 0
	for vv := v; vv > 1; vv >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		w.writeBit(0)
	}
	for i := n; i >= 0; i-- {
		w.writeBit(v >> uint(i))
	}
}

func (w *bitWriter) flush() {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nCur = 0, 0
	}
}

// ---------- encoder ----------

// Encode compresses src into the VXB1 format.
func Encode(dst io.Writer, src []byte) error {
	return EncodeBlockSize(dst, src, DefaultBlockSize)
}

// EncodeBlockSize compresses with an explicit block size.
func EncodeBlockSize(dst io.Writer, src []byte, blockSize int) error {
	if blockSize <= 0 || blockSize > MaxBlockSize {
		return fmt.Errorf("bwt: bad block size %d", blockSize)
	}
	var hdr [8]byte
	copy(hdr[:4], "VXB1")
	binary.LittleEndian.PutUint32(hdr[4:], uint32(blockSize))
	if _, err := dst.Write(hdr[:]); err != nil {
		return err
	}
	for len(src) > 0 {
		n := len(src)
		if n > blockSize {
			n = blockSize
		}
		if err := encodeBlock(dst, src[:n]); err != nil {
			return err
		}
		src = src[n:]
	}
	var eos [4]byte
	_, err := dst.Write(eos[:])
	return err
}

// rle0 converts an MTF stream into the symbol/run token stream.
type token struct {
	sym uint16
	run uint32
}

func rle0(mtf []byte) []token {
	var toks []token
	i := 0
	for i < len(mtf) {
		if mtf[i] == 0 {
			j := i
			for j < len(mtf) && mtf[j] == 0 {
				j++
			}
			toks = append(toks, token{sym: symZRun, run: uint32(j - i)})
			i = j
		} else {
			toks = append(toks, token{sym: uint16(mtf[i])})
			i++
		}
	}
	toks = append(toks, token{sym: symEOB})
	return toks
}

func encodeBlock(dst io.Writer, data []byte) error {
	last, index := Transform(data)
	mtf := mtfEncode(last)
	toks := rle0(mtf)

	freq := make([]int, nSyms)
	for _, t := range toks {
		freq[t.sym]++
	}
	lengths := buildLengths(freq)
	codes := canonicalCodes(lengths)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(index))
	if _, err := dst.Write(hdr[:]); err != nil {
		return err
	}
	// 258 nibbles, low nibble first.
	nib := make([]byte, (nSyms+1)/2)
	for s, l := range lengths {
		if s%2 == 0 {
			nib[s/2] |= l & 15
		} else {
			nib[s/2] |= (l & 15) << 4
		}
	}
	if _, err := dst.Write(nib); err != nil {
		return err
	}
	var bw bitWriter
	for _, t := range toks {
		bw.writeCode(codes[t.sym], lengths[t.sym])
		if t.sym == symZRun {
			bw.writeGamma(t.run)
		}
	}
	bw.flush()
	_, err := dst.Write(bw.buf)
	return err
}

// ---------- native decoder ----------

// Decode decompresses a VXB1 stream (the native fast path).
func Decode(dst io.Writer, src io.Reader) error {
	br := &byteBitReader{r: src}
	var magic [8]byte
	if err := br.readFull(magic[:]); err != nil {
		return err
	}
	if string(magic[:4]) != "VXB1" {
		return fmt.Errorf("%w: bad magic", ErrFormat)
	}
	blockSize := binary.LittleEndian.Uint32(magic[4:])
	if blockSize == 0 || blockSize > MaxBlockSize {
		return fmt.Errorf("%w: block size %d", ErrFormat, blockSize)
	}
	for {
		var bh [4]byte
		if err := br.readFull(bh[:]); err != nil {
			return err
		}
		origLen := binary.LittleEndian.Uint32(bh[:])
		if origLen == 0 {
			return nil
		}
		if origLen > blockSize {
			return fmt.Errorf("%w: block larger than declared block size", ErrFormat)
		}
		if err := br.readFull(bh[:]); err != nil {
			return err
		}
		index := binary.LittleEndian.Uint32(bh[:])

		nib := make([]byte, (nSyms+1)/2)
		if err := br.readFull(nib); err != nil {
			return err
		}
		lengths := make([]byte, nSyms)
		for s := range lengths {
			if s%2 == 0 {
				lengths[s] = nib[s/2] & 15
			} else {
				lengths[s] = nib[s/2] >> 4
			}
		}
		counts, symbols, err := buildDecodeTable(lengths)
		if err != nil {
			return err
		}

		mtf := make([]byte, 0, origLen)
		for {
			sym, err := decodeSym(br, counts, symbols)
			if err != nil {
				return err
			}
			if sym == symEOB {
				break
			}
			if sym == symZRun {
				run, err := readGamma(br)
				if err != nil {
					return err
				}
				if uint32(len(mtf))+run > origLen {
					return fmt.Errorf("%w: zero run overflows block", ErrFormat)
				}
				for i := uint32(0); i < run; i++ {
					mtf = append(mtf, 0)
				}
				continue
			}
			if uint32(len(mtf)) >= origLen {
				return fmt.Errorf("%w: block overflow", ErrFormat)
			}
			mtf = append(mtf, byte(sym))
		}
		if uint32(len(mtf)) != origLen {
			return fmt.Errorf("%w: block underflow", ErrFormat)
		}
		br.align()

		last := mtfDecode(mtf)
		out, err := Inverse(last, int(index))
		if err != nil {
			return err
		}
		if _, err := dst.Write(out); err != nil {
			return err
		}
	}
}

// byteBitReader is the Go twin of the VXC bit reader.
type byteBitReader struct {
	r    io.Reader
	one  [1]byte
	bits uint32
	n    uint
}

func (b *byteBitReader) readByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		if err == io.EOF {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, err
	}
	return b.one[0], nil
}

func (b *byteBitReader) readFull(p []byte) error {
	if b.n != 0 {
		return fmt.Errorf("%w: byte read inside bit stream", ErrFormat)
	}
	if _, err := io.ReadFull(b.r, p); err != nil {
		if err == io.EOF && len(p) > 0 {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

func (b *byteBitReader) bit() (uint32, error) {
	if b.n == 0 {
		c, err := b.readByte()
		if err != nil {
			return 0, err
		}
		b.bits = uint32(c)
		b.n = 8
	}
	v := b.bits & 1
	b.bits >>= 1
	b.n--
	return v, nil
}

func (b *byteBitReader) align() { b.bits, b.n = 0, 0 }

func buildDecodeTable(lengths []byte) (counts [16]int, symbols []int, err error) {
	symbols = make([]int, 0, len(lengths))
	for _, l := range lengths {
		counts[l]++
	}
	counts[0] = 0
	left := 1
	for l := 1; l <= 15; l++ {
		left <<= 1
		left -= counts[l]
		if left < 0 {
			return counts, nil, fmt.Errorf("%w: over-subscribed huffman table", ErrFormat)
		}
	}
	var offs [16]int
	for l := 1; l < 15; l++ {
		offs[l+1] = offs[l] + counts[l]
	}
	symbols = make([]int, len(lengths))
	for s, l := range lengths {
		if l != 0 {
			symbols[offs[l]] = s
			offs[l]++
		}
	}
	return counts, symbols, nil
}

func decodeSym(br *byteBitReader, counts [16]int, symbols []int) (int, error) {
	code, first, index := 0, 0, 0
	for l := 1; l <= 15; l++ {
		b, err := br.bit()
		if err != nil {
			return 0, err
		}
		code |= int(b)
		count := counts[l]
		if code-first < count {
			return symbols[index+code-first], nil
		}
		index += count
		first = (first + count) << 1
		code <<= 1
	}
	return 0, fmt.Errorf("%w: bad huffman code", ErrFormat)
}

func readGamma(br *byteBitReader) (uint32, error) {
	z := 0
	for {
		b, err := br.bit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		z++
		if z > 31 {
			return 0, fmt.Errorf("%w: bad gamma code", ErrFormat)
		}
	}
	v := uint32(1)
	for i := 0; i < z; i++ {
		b, err := br.bit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// ---------- VXA decoder (VXC) ----------

var bwtMain = vxcc.Source{Name: "vxbwt.vxc", Text: `
// VXB1 block-sorting decoder: VXA codec "bwt".

enum { NSYMS = 258, ZRUN = 256, EOB = 257, MAXBLOCK = 4194304 };

int hcnt[16];
int hsym[NSYMS];
byte hlen[NSYMS];

byte *mtfbuf;   // origLen bytes of MTF output / last column
int *ttbuf;     // LF-walk table
int blocksize;

byte mtftab[256];

void decode_block(int origlen, int index) {
	// Read the 258 nibble-packed code lengths.
	int s;
	for (s = 0; s < NSYMS; s += 2) {
		int b = mustgetb();
		hlen[s] = (byte)(b & 15);
		if (s + 1 < NSYMS) hlen[s + 1] = (byte)(b >> 4);
	}
	huff_build(hlen, NSYMS, hcnt, hsym);

	// Huffman + RLE0 + MTF decode straight into the last-column buffer.
	int i;
	for (i = 0; i < 256; i++) mtftab[i] = (byte)i;
	int n = 0;
	while (1) {
		int sym = huff_decode(hcnt, hsym);
		if (sym == EOB) break;
		if (sym == ZRUN) {
			int run = getgamma();
			if (n + run > origlen) die("zero run overflows block");
			// MTF value 0 is the current front symbol, repeated.
			byte front = mtftab[0];
			while (run-- > 0) mtfbuf[n++] = front;
			continue;
		}
		if (n >= origlen) die("block overflow");
		// Move-to-front decode of a nonzero rank.
		byte c = mtftab[sym];
		int j;
		for (j = sym; j > 0; j--) mtftab[j] = mtftab[j - 1];
		mtftab[0] = c;
		mtfbuf[n++] = c;
	}
	if (n != origlen) die("block underflow");
	alignbyte();

	// Inverse BWT: counting sort then LF walk.
	int counts[256];
	int base[256];
	for (i = 0; i < 256; i++) counts[i] = 0;
	for (i = 0; i < origlen; i++) counts[mtfbuf[i]]++;
	int sum = 0;
	for (i = 0; i < 256; i++) { base[i] = sum; sum += counts[i]; }
	for (i = 0; i < origlen; i++) {
		int c = mtfbuf[i];
		ttbuf[base[c]] = i;
		base[c]++;
	}
	if (index < 0 || index >= origlen) die("bad bwt index");
	int p = ttbuf[index];
	for (i = 0; i < origlen; i++) {
		putb(mtfbuf[p]);
		p = ttbuf[p];
	}
}

int main(void) {
	while (1) {
		__stdio_reset();
		bits_reset();
		if (mustgetb() != 'V' || mustgetb() != 'X' || mustgetb() != 'B' || mustgetb() != '1')
			die("not a VXB1 stream");
		blocksize = get4le();
		if (blocksize <= 0 || blocksize > MAXBLOCK) die("bad block size");
		if (!mtfbuf) {
			mtfbuf = vxalloc(MAXBLOCK);
			ttbuf = (int*)vxalloc(MAXBLOCK * 4);
		}
		while (1) {
			int origlen = get4le();
			if (origlen == 0) break;
			if (origlen < 0 || origlen > blocksize) die("bad block length");
			int index = get4le();
			decode_block(origlen, index);
		}
		vxa_done();
	}
	return 0;
}
`}

func init() {
	codec.Register(&codec.Codec{
		Name:   "bwt",
		Desc:   "Block-sorting compressor (BWT+MTF+RLE+Huffman, bzip2 family)",
		Output: "raw data",
		Kind:   codec.GeneralPurpose,
		Recognize: func(data []byte) bool {
			return len(data) >= 8 && string(data[:4]) == "VXB1"
		},
		Encode:  Encode,
		Decode:  Decode,
		Sources: []vxcc.Source{vxcsrc.Bitio, vxcsrc.Huff, bwtMain},
	})
}
