package bwt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"vxa/internal/codec"
	"vxa/internal/vm"
)

func TestTransformKnown(t *testing.T) {
	// The classic example: BWT("banana") over rotations.
	last, idx := Transform([]byte("banana"))
	got, err := Inverse(last, idx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "banana" {
		t.Fatalf("inverse = %q", got)
	}
}

// TestBWTRoundTripProperty: Inverse(Transform(x)) == x for arbitrary x.
func TestBWTRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		last, idx := Transform(data)
		got, err := Inverse(last, idx)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBWTRepetitive: prefix doubling must handle pathological inputs.
func TestBWTRepetitive(t *testing.T) {
	for _, data := range [][]byte{
		bytes.Repeat([]byte{0}, 10000),
		bytes.Repeat([]byte("ab"), 5000),
		bytes.Repeat([]byte("aaab"), 2500),
	} {
		last, idx := Transform(data)
		got, err := Inverse(last, idx)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("round trip failed on repetitive input (err=%v)", err)
		}
	}
}

func TestMTFRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(mtfDecode(mtfEncode(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func testCorpus() map[string][]byte {
	r := rand.New(rand.NewSource(3))
	random := make([]byte, 50000)
	r.Read(random)
	text := bytes.Repeat([]byte("compression ratios improve when inputs repeat. "), 1500)
	return map[string][]byte{
		"empty":  {},
		"one":    {42},
		"text":   text,
		"random": random,
		"zeros":  make([]byte, 70000),
		"multi":  bytes.Repeat([]byte("block boundary crossing data "), 12000), // > 2 blocks
	}
}

func TestNativeRoundTrip(t *testing.T) {
	for name, data := range testCorpus() {
		var enc bytes.Buffer
		if err := Encode(&enc, data); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var dec bytes.Buffer
		if err := Decode(&dec, bytes.NewReader(enc.Bytes())); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !bytes.Equal(dec.Bytes(), data) {
			t.Fatalf("%s: round trip mismatch", name)
		}
		if name == "text" && enc.Len() >= len(data)/3 {
			t.Errorf("%s: poor compression: %d -> %d", name, len(data), enc.Len())
		}
	}
}

func TestVXADecoderMatchesNative(t *testing.T) {
	c, ok := codec.ByName("bwt")
	if !ok {
		t.Fatal("bwt codec not registered")
	}
	for name, data := range testCorpus() {
		if len(data) > 80000 {
			data = data[:80000] // keep interpreter time reasonable
		}
		var enc bytes.Buffer
		if err := Encode(&enc, data); err != nil {
			t.Fatal(err)
		}
		got, err := c.RunVXA(enc.Bytes(), vm.Config{MemSize: 64 << 20})
		if err != nil {
			t.Fatalf("%s: vxa: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: vxa decode mismatch: got %d want %d bytes", name, len(got), len(data))
		}
	}
}

func TestCorruptStreamRejected(t *testing.T) {
	data := bytes.Repeat([]byte("sensitive archive contents "), 400)
	var enc bytes.Buffer
	if err := Encode(&enc, data); err != nil {
		t.Fatal(err)
	}
	stream := enc.Bytes()
	r := rand.New(rand.NewSource(11))
	detected := 0
	for trial := 0; trial < 25; trial++ {
		bad := append([]byte{}, stream...)
		bad[8+r.Intn(len(bad)-8)] ^= 0xFF // keep the magic intact
		var dec bytes.Buffer
		if err := Decode(&dec, bytes.NewReader(bad)); err != nil {
			detected++
			continue
		}
		// Without a checksum some corruptions decode to wrong bytes; the
		// format detects structural damage, the archive CRC catches the rest.
		if !bytes.Equal(dec.Bytes(), data) {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no corruption affected the output at all")
	}
}
