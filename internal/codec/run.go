package codec

import (
	"bytes"
	"fmt"

	"vxa/internal/elf32"
	"vxa/internal/vm"
)

// DecodeError reports that a VXA decoder failed on a stream: either it
// exited nonzero (e.g. on corrupt input) or it trapped in the sandbox.
type DecodeError struct {
	Codec  string
	Code   int32  // exit code, if the decoder exited
	Trap   error  // sandbox trap, if it faulted
	Stderr string // decoder diagnostics
}

// Error implements error.
func (e *DecodeError) Error() string {
	if e.Trap != nil {
		return fmt.Sprintf("vxa decoder %s: %v (stderr: %s)", e.Codec, e.Trap, e.Stderr)
	}
	return fmt.Sprintf("vxa decoder %s: exit status %d (stderr: %s)", e.Codec, e.Code, e.Stderr)
}

// RunVXA decodes one input stream with the codec's compiled VXA decoder
// in a fresh virtual machine and returns the decoded output. A zero
// Config selects the VM defaults.
func (c *Codec) RunVXA(input []byte, cfg vm.Config) ([]byte, error) {
	elfBytes, err := c.DecoderELF()
	if err != nil {
		return nil, err
	}
	return RunDecoderELF(c.Name, elfBytes, input, cfg)
}

// RunDecoderELF runs an arbitrary decoder executable (e.g. one loaded
// from an archive rather than built locally) over one input stream.
func RunDecoderELF(name string, elfBytes, input []byte, cfg vm.Config) ([]byte, error) {
	v, err := elf32.NewVM(elfBytes, cfg)
	if err != nil {
		return nil, err
	}
	var out, diag bytes.Buffer
	v.Stdin = bytes.NewReader(input)
	v.Stdout = &out
	v.Stderr = &diag
	st, err := v.Run()
	if err != nil {
		return nil, &DecodeError{Codec: name, Trap: err, Stderr: diag.String()}
	}
	// The decoder protocol: "done" after a complete stream means success;
	// exit(0) is also accepted. Any other exit is a decode failure.
	if st == vm.StatusExit && v.ExitCode() != 0 {
		return nil, &DecodeError{Codec: name, Code: v.ExitCode(), Stderr: diag.String()}
	}
	return out.Bytes(), nil
}
