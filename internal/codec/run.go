package codec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"vxa/internal/elf32"
	"vxa/internal/obs"
	"vxa/internal/vm"
)

// DecodeError reports that a VXA decoder failed on a stream: either it
// exited nonzero (e.g. on corrupt input) or it trapped in the sandbox.
type DecodeError struct {
	Codec  string
	Code   int32  // exit code, if the decoder exited
	Trap   error  // sandbox trap, if it faulted
	Stderr string // decoder diagnostics
}

// Error implements error.
func (e *DecodeError) Error() string {
	if e.Trap != nil {
		return fmt.Sprintf("vxa decoder %s: %v (stderr: %s)", e.Codec, e.Trap, e.Stderr)
	}
	return fmt.Sprintf("vxa decoder %s: exit status %d (stderr: %s)", e.Codec, e.Code, e.Stderr)
}

// Unwrap exposes the sandbox trap (when the decoder faulted) so callers
// can match the trap kind with errors.As — e.g. distinguishing a fuel
// exhaustion from a memory fault.
func (e *DecodeError) Unwrap() error { return e.Trap }

// RunVXA decodes one input stream with the codec's compiled VXA decoder
// in a fresh virtual machine and returns the decoded output. A zero
// Config selects the VM defaults.
func (c *Codec) RunVXA(input []byte, cfg vm.Config) ([]byte, error) {
	elfBytes, err := c.DecoderELF()
	if err != nil {
		return nil, err
	}
	return RunDecoderELF(c.Name, elfBytes, input, cfg)
}

// RunDecoderELF runs an arbitrary decoder executable (e.g. one loaded
// from an archive rather than built locally) over one input stream.
func RunDecoderELF(name string, elfBytes, input []byte, cfg vm.Config) ([]byte, error) {
	var out bytes.Buffer
	if err := RunDecoderELFTo(context.Background(), name, elfBytes, bytes.NewReader(input), int64(len(input)), &out, cfg); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// RunDecoderELFTo is RunDecoderELF streaming both sides: the encoded
// input is read from r (payloadLen sizes the fuel budget) and the
// decoded output streams to w, so neither form needs to be resident. On
// a decode error, partial output may already have been written. The
// stream runs under the standard absolute per-stream fuel budget
// (vm.StreamFuel) unless cfg.Fuel overrides it, so a looping decoder is
// cut off on the cold path exactly as on the pooled one. ctx cancels
// the run cooperatively (the guest stops at the next block boundary).
func RunDecoderELFTo(ctx context.Context, name string, elfBytes []byte, r io.Reader, payloadLen int64, w io.Writer, cfg vm.Config) error {
	_, err := RunDecoderELFToStats(ctx, name, elfBytes, r, payloadLen, w, cfg)
	return err
}

// RunDecoderELFToStats is RunDecoderELFTo surfacing the VM's execution
// statistics after the run (valid even when the decode failed), for
// callers like vxrun -v that report on the translation engine.
func RunDecoderELFToStats(ctx context.Context, name string, elfBytes []byte, r io.Reader, payloadLen int64, w io.Writer, cfg vm.Config) (vm.Stats, error) {
	// Cold path: no pool, no snapshot cache. VM construction (ELF parse +
	// address-space build) is the moral equivalent of a snapshot build, so
	// a traced request attributes it to the snapshot stage; the guest's
	// own counters split the run into translate and execute below.
	sp := obs.SpanFrom(ctx)
	buildStart := time.Now()
	v, err := elf32.NewVM(elfBytes, cfg)
	sp.Add(obs.StageSnapshot, time.Since(buildStart))
	if err != nil {
		return vm.Stats{}, err
	}
	fuel := cfg.Fuel
	if fuel == 0 {
		fuel = vm.StreamFuel(int(payloadLen))
	}
	defer func(before vm.Stats) {
		after := v.Stats()
		sp.Add(obs.StageTranslate, time.Duration(after.TranslateNS-before.TranslateNS))
		sp.Add(obs.StageExecute, time.Duration(after.ExecuteNS-before.ExecuteNS))
	}(v.Stats())
	var diag bytes.Buffer
	if _, err := v.RunStream(ctx, r, w, &diag, fuel); err != nil {
		if ce := (*vm.CanceledError)(nil); errors.As(err, &ce) {
			return v.Stats(), err
		}
		return v.Stats(), ClassifyDecodeError(name, err, v.ExitCode(), diag.String())
	}
	return v.Stats(), nil
}

// ClassifyDecodeError wraps a RunStream failure as a DecodeError per the
// decoder protocol: "done" after a complete stream means success and
// exit(0) is also accepted, so a failure is either a nonzero exit
// (carried in Code) or a sandbox trap (carried in Trap). Both the cold
// and the pooled decode paths classify through this one function.
func ClassifyDecodeError(name string, err error, exitCode int32, stderr string) *DecodeError {
	de := &DecodeError{Codec: name, Stderr: stderr}
	var trap *vm.Trap
	if !errors.As(err, &trap) && exitCode != 0 {
		de.Code = exitCode
	} else {
		de.Trap = err
	}
	return de
}
