// Package vxcsrc holds VXC source fragments shared by the decoders:
// an LSB-first bit reader and a canonical Huffman decoder. Each decoder
// program links the fragments it needs exactly once.
package vxcsrc

import "vxa/internal/vxcc"

// Bitio is the LSB-first bit reader over the runtime's buffered stdin —
// the bit order DEFLATE uses, adopted by all bit-packed VXA formats.
var Bitio = vxcc.Source{Name: "<bitio>", Text: `
// LSB-first bit reader.

int __bitbuf;
int __bitcnt;

void bits_reset() {
	__bitbuf = 0;
	__bitcnt = 0;
}

int getbit() {
	if (__bitcnt == 0) {
		int c = getb();
		if (c < 0) die("unexpected end of bit stream");
		__bitbuf = c;
		__bitcnt = 8;
	}
	int b = __bitbuf & 1;
	__bitbuf >>= 1;
	__bitcnt--;
	return b;
}

int getbits(int n) {
	int v = 0;
	int i;
	for (i = 0; i < n; i++) v |= getbit() << i;
	return v;
}

// alignbyte discards bits up to the next byte boundary.
void alignbyte() {
	__bitbuf = 0;
	__bitcnt = 0;
}

// getgamma reads an Elias-gamma coded integer (>= 1): z leading zero
// bits, then z+1 value bits MSB-first.
int getgamma() {
	int z = 0;
	while (getbit() == 0) {
		z++;
		if (z > 31) die("bad gamma code");
	}
	int v = 1;
	int i;
	for (i = 0; i < z; i++) v = (v << 1) | getbit();
	return v;
}
`}

// Huff is the canonical-Huffman table builder and bit-serial decoder
// (the "puff" algorithm): codes are assigned in canonical order and
// decoded by walking code lengths, using only two small arrays.
var Huff = vxcc.Source{Name: "<huff>", Text: `
// Canonical Huffman. counts[1..15] is the number of codes per length;
// symbols[] lists symbols sorted by (length, symbol value).

void huff_build(byte *lengths, int n, int *counts, int *symbols) {
	int i;
	for (i = 0; i <= 15; i++) counts[i] = 0;
	for (i = 0; i < n; i++) counts[lengths[i]]++;
	if (counts[0] == n) die("empty huffman table");
	counts[0] = 0;
	// Check the lengths form a valid (sub-)prefix code.
	int left = 1;
	for (i = 1; i <= 15; i++) {
		left <<= 1;
		left -= counts[i];
		if (left < 0) die("over-subscribed huffman table");
	}
	int offs[16];
	offs[1] = 0;
	for (i = 1; i < 15; i++) offs[i + 1] = offs[i] + counts[i];
	for (i = 0; i < n; i++)
		if (lengths[i]) symbols[offs[lengths[i]]++] = i;
}

int huff_decode(int *counts, int *symbols) {
	int code = 0;
	int first = 0;
	int index = 0;
	int len;
	for (len = 1; len <= 15; len++) {
		code |= getbit();
		int count = counts[len];
		if (code - first < count) return symbols[index + code - first];
		index += count;
		first = (first + count) << 1;
		code <<= 1;
	}
	die("bad huffman code");
	return -1;
}
`}
