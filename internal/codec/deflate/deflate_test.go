package deflate

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"math/rand"
	"strings"
	"testing"

	"vxa/internal/codec"
	"vxa/internal/vm"
)

func zlibCodec(t *testing.T) *codec.Codec {
	t.Helper()
	c, ok := codec.ByName("zlib")
	if !ok {
		t.Fatal("zlib codec not registered")
	}
	return c
}

func gzipCodec(t *testing.T) *codec.Codec {
	t.Helper()
	c, ok := codec.ByName("gzip")
	if !ok {
		t.Fatal("gzip codec not registered")
	}
	return c
}

// corpus returns a mix of inputs that exercise stored, fixed and dynamic
// DEFLATE blocks.
func corpus() map[string][]byte {
	r := rand.New(rand.NewSource(42))
	random := make([]byte, 40000) // incompressible -> stored blocks
	r.Read(random)
	text := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 800)
	zeros := make([]byte, 60000)
	structured := make([]byte, 30000)
	for i := range structured {
		structured[i] = byte((i * 7) % 96)
	}
	return map[string][]byte{
		"empty":      {},
		"tiny":       []byte("x"),
		"text":       text,
		"random":     random,
		"zeros":      zeros,
		"structured": structured,
	}
}

// TestZlibVXADecodesStdlibStreams is the core fidelity test: the VXC
// inflate must decode real zlib streams produced by compress/zlib.
func TestZlibVXADecodesStdlibStreams(t *testing.T) {
	c := zlibCodec(t)
	for name, data := range corpus() {
		var enc bytes.Buffer
		if err := c.Encode(&enc, data); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := c.RunVXA(enc.Bytes(), vm.Config{})
		if err != nil {
			t.Fatalf("%s: vxa decode: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: vxa decode mismatch: got %d bytes want %d", name, len(got), len(data))
		}
		// Native decoder agrees.
		var nat bytes.Buffer
		if err := c.Decode(&nat, bytes.NewReader(enc.Bytes())); err != nil {
			t.Fatalf("%s: native decode: %v", name, err)
		}
		if !bytes.Equal(nat.Bytes(), data) {
			t.Fatalf("%s: native decode mismatch", name)
		}
	}
}

// TestZlibAllCompressionLevels exercises every encoder level, which
// shifts the block-type mix the decoder sees.
func TestZlibAllCompressionLevels(t *testing.T) {
	c := zlibCodec(t)
	data := bytes.Repeat([]byte("abcdefgh 0123456789 "), 500)
	for level := 0; level <= 9; level++ {
		var enc bytes.Buffer
		w, err := zlib.NewWriterLevel(&enc, level)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := c.RunVXA(enc.Bytes(), vm.Config{})
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("level %d: mismatch", level)
		}
	}
	// HuffmanOnly produces pure fixed/dynamic-literal streams.
	var enc bytes.Buffer
	w, err := zlib.NewWriterLevel(&enc, flate.HuffmanOnly)
	if err != nil {
		t.Fatal(err)
	}
	w.Write(data)
	w.Close()
	got, err := c.RunVXA(enc.Bytes(), vm.Config{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("huffman-only: err=%v", err)
	}
}

// TestZlibRejectsCorruption: flipping bits anywhere must produce a
// decode error (usually the Adler-32 check), never silent bad output.
func TestZlibRejectsCorruption(t *testing.T) {
	c := zlibCodec(t)
	data := bytes.Repeat([]byte("integrity matters for archives "), 200)
	var enc bytes.Buffer
	if err := c.Encode(&enc, data); err != nil {
		t.Fatal(err)
	}
	stream := enc.Bytes()
	r := rand.New(rand.NewSource(9))
	flipped := 0
	for trial := 0; trial < 40; trial++ {
		pos := r.Intn(len(stream))
		bad := append([]byte{}, stream...)
		bad[pos] ^= 1 << r.Intn(8)
		got, err := c.RunVXA(bad, vm.Config{Fuel: 1 << 28})
		if err == nil && bytes.Equal(got, data) {
			continue // the flip may hit a bit the format never reads
		}
		if err == nil {
			t.Fatalf("corruption at byte %d produced wrong output without an error", pos)
		}
		flipped++
	}
	if flipped == 0 {
		t.Fatal("no corruption was ever detected; integrity checking is broken")
	}
}

// TestZlibRecognize: the archiver must detect pre-compressed zlib input
// but not arbitrary data with a lucky header.
func TestZlibRecognize(t *testing.T) {
	c := zlibCodec(t)
	var enc bytes.Buffer
	c.Encode(&enc, []byte("hello world hello world"))
	if !c.Recognize(enc.Bytes()) {
		t.Fatal("failed to recognize a real zlib stream")
	}
	if c.Recognize([]byte{0x78, 0x9C, 0xFF, 0xFF, 0xFF, 0xFF}) {
		t.Fatal("recognized garbage with a plausible header")
	}
	if c.Recognize([]byte("plain text, nothing compressed")) {
		t.Fatal("recognized plain text")
	}
}

// TestGzipRedec: the gzip redec must decode stdlib-produced .gz files,
// including ones with name/comment/extra header fields.
func TestGzipRedec(t *testing.T) {
	c := gzipCodec(t)
	data := bytes.Repeat([]byte("gzip redec input data 12345 "), 700)

	var plain bytes.Buffer
	w := gzip.NewWriter(&plain)
	w.Write(data)
	w.Close()

	var fancy bytes.Buffer
	fw := gzip.NewWriter(&fancy)
	fw.Name = "notes.txt"
	fw.Comment = "archived by vxzip"
	fw.Extra = []byte{1, 2, 3, 4}
	fw.Write(data)
	fw.Close()

	for name, stream := range map[string][]byte{"plain": plain.Bytes(), "fancy": fancy.Bytes()} {
		if !c.Recognize(stream) {
			t.Fatalf("%s: not recognized", name)
		}
		got, err := c.RunVXA(stream, vm.Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: decode mismatch", name)
		}
	}
}

// TestGzipCRCMismatch: a tampered gzip payload must fail the CRC check.
func TestGzipCRCMismatch(t *testing.T) {
	c := gzipCodec(t)
	var enc bytes.Buffer
	w := gzip.NewWriter(&enc)
	w.Write([]byte(strings.Repeat("payload ", 100)))
	w.Close()
	stream := enc.Bytes()
	stream[len(stream)-5] ^= 0x40 // flip a bit inside the stored CRC/isize
	_, err := c.RunVXA(stream, vm.Config{})
	if err == nil {
		t.Fatal("tampered gzip trailer decoded without error")
	}
}

// TestZlibMultiStream: the decoder handles several files in sequence via
// the done protocol without reloading (paper §2.4 VM reuse).
func TestZlibMultiStream(t *testing.T) {
	c := zlibCodec(t)
	elf, err := c.DecoderELF()
	if err != nil {
		t.Fatal(err)
	}
	v, err := vmFromELF(t, elf)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{
		[]byte("first stream contents"),
		bytes.Repeat([]byte("second "), 500),
		{},
	}
	for i, data := range inputs {
		var enc bytes.Buffer
		c.Encode(&enc, data)
		var out bytes.Buffer
		v.Stdin = bytes.NewReader(enc.Bytes())
		v.Stdout = &out
		st, err := v.Run()
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if st != vm.StatusDone {
			t.Fatalf("stream %d: status %v, want done", i, st)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("stream %d: mismatch", i)
		}
	}
}

func vmFromELF(t *testing.T, elfBytes []byte) (*vm.VM, error) {
	t.Helper()
	return newVM(elfBytes)
}
