package deflate

import (
	"vxa/internal/elf32"
	"vxa/internal/vm"
)

func newVM(elfBytes []byte) (*vm.VM, error) {
	return elf32.NewVM(elfBytes, vm.Config{})
}
