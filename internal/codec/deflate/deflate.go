// Package deflate provides the two DEFLATE-based codecs of the vxZIP
// prototype: "zlib" (the paper's general-purpose default, RFC 1950/1951)
// and a "gzip" recognizer-decoder (RFC 1952). The native encoder and
// decoder are the Go standard library; the VXA decoder is a complete
// from-scratch inflate in VXC, including zlib Adler-32 and gzip CRC-32
// integrity verification.
package deflate

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"io"

	"vxa/internal/codec"
	"vxa/internal/codec/vxcsrc"
	"vxa/internal/vxcc"
)

// inflateCore is RFC 1951 DEFLATE decompression in VXC. The stream
// wrapper (zlib or gzip) supplies outbyte(), which receives every
// decoded byte.
var inflateCore = vxcc.Source{Name: "inflate.vxc", Text: `
// DEFLATE (RFC 1951) decoder core.

enum { WINSIZE = 32768, WINMASK = 32767 };

byte __win[WINSIZE];
int __wpos;

void outbyte(int c); // provided by the stream wrapper

void inf_out(int c) {
	__win[__wpos & WINMASK] = (byte)c;
	__wpos++;
	outbyte(c);
}

// Length and distance code tables (RFC 1951 section 3.2.5).
const int lenbase[29] = {3,4,5,6,7,8,9,10,11,13,15,17,19,23,27,31,35,43,
	51,59,67,83,99,115,131,163,195,227,258};
const int lenext[29] = {0,0,0,0,0,0,0,0,1,1,1,1,2,2,2,2,3,3,3,3,4,4,4,4,
	5,5,5,5,0};
const int distbase[30] = {1,2,3,4,5,7,9,13,17,25,33,49,65,97,129,193,257,
	385,513,769,1025,1537,2049,3073,4097,6145,8193,12289,16385,24577};
const int distext[30] = {0,0,0,0,1,1,2,2,3,3,4,4,5,5,6,6,7,7,8,8,9,9,10,
	10,11,11,12,12,13,13};

int lcnt[16];
int lsym[288];
int dcnt[16];
int dsym[30];

// inf_codes decodes one block's literal/length/distance code stream.
void inf_codes() {
	while (1) {
		int sym = huff_decode(lcnt, lsym);
		if (sym < 256) {
			inf_out(sym);
			continue;
		}
		if (sym == 256) return; // end of block
		sym -= 257;
		if (sym >= 29) die("bad length code");
		int len = lenbase[sym] + getbits(lenext[sym]);
		int d = huff_decode(dcnt, dsym);
		if (d >= 30) die("bad distance code");
		int dist = distbase[d] + getbits(distext[d]);
		if (dist > __wpos) die("distance too far back");
		int i;
		for (i = 0; i < len; i++)
			inf_out(__win[(__wpos - dist) & WINMASK]);
	}
}

void inf_stored() {
	alignbyte();
	int len = mustgetb();
	len |= mustgetb() << 8;
	int nlen = mustgetb();
	nlen |= mustgetb() << 8;
	if ((len ^ nlen) != 0xFFFF) die("stored block length check failed");
	int i;
	for (i = 0; i < len; i++) inf_out(mustgetb());
}

byte __fixlen[288];
void inf_fixed() {
	int i;
	for (i = 0; i < 144; i++) __fixlen[i] = 8;
	for (i = 144; i < 256; i++) __fixlen[i] = 9;
	for (i = 256; i < 280; i++) __fixlen[i] = 7;
	for (i = 280; i < 288; i++) __fixlen[i] = 8;
	huff_build(__fixlen, 288, lcnt, lsym);
	byte dlen[30];
	for (i = 0; i < 30; i++) dlen[i] = 5;
	huff_build(dlen, 30, dcnt, dsym);
	inf_codes();
}

const byte clorder[19] = {16,17,18,0,8,7,9,6,10,5,11,4,12,3,13,2,14,1,15};
byte __cllen[19];
int clcnt[16];
int clsym[19];
byte __alllen[320];

void inf_dynamic() {
	int hlit = getbits(5) + 257;
	int hdist = getbits(5) + 1;
	int hclen = getbits(4) + 4;
	if (hlit > 286 || hdist > 30) die("bad code counts");
	int i;
	for (i = 0; i < 19; i++) __cllen[i] = 0;
	for (i = 0; i < hclen; i++) __cllen[clorder[i]] = (byte)getbits(3);
	huff_build(__cllen, 19, clcnt, clsym);

	int n = 0;
	int total = hlit + hdist;
	while (n < total) {
		int sym = huff_decode(clcnt, clsym);
		if (sym < 16) {
			__alllen[n++] = (byte)sym;
		} else if (sym == 16) {
			if (n == 0) die("repeat with no previous length");
			int prev = __alllen[n - 1];
			int rep = 3 + getbits(2);
			while (rep-- > 0) {
				if (n >= total) die("repeat overflows code lengths");
				__alllen[n++] = (byte)prev;
			}
		} else if (sym == 17) {
			int rep = 3 + getbits(3);
			while (rep-- > 0) {
				if (n >= total) die("repeat overflows code lengths");
				__alllen[n++] = 0;
			}
		} else {
			int rep = 11 + getbits(7);
			while (rep-- > 0) {
				if (n >= total) die("repeat overflows code lengths");
				__alllen[n++] = 0;
			}
		}
	}
	if (__alllen[256] == 0) die("missing end-of-block code");
	huff_build(__alllen, hlit, lcnt, lsym);
	huff_build(__alllen + hlit, hdist, dcnt, dsym);
	inf_codes();
}

// inflate decodes one complete DEFLATE stream.
void inflate() {
	__wpos = 0;
	int final;
	do {
		final = getbit();
		int type = getbits(2);
		if (type == 0) inf_stored();
		else if (type == 1) inf_fixed();
		else if (type == 2) inf_dynamic();
		else die("invalid block type");
	} while (!final);
}
`}

// zlibMain wraps inflateCore with the RFC 1950 container: header
// validation and Adler-32 verification over the decoded output.
var zlibMain = vxcc.Source{Name: "zlib.vxc", Text: `
// zlib (RFC 1950) stream decoder: VXA codec "zlib".

uint __s1;
uint __s2;
int __acount;

void outbyte(int c) {
	putb(c);
	__s1 += (uint)c;
	__s2 += __s1;
	__acount++;
	if (__acount >= 5552) {  // largest batch that cannot overflow 32 bits
		__s1 = __s1 % 65521u;
		__s2 = __s2 % 65521u;
		__acount = 0;
	}
}

int main(void) {
	while (1) {
		__stdio_reset();
		bits_reset();
		__s1 = 1u;
		__s2 = 0u;
		__acount = 0;
		int cmf = mustgetb();
		int flg = mustgetb();
		if ((cmf & 15) != 8) die("not a zlib stream (method)");
		if (((cmf << 8) | flg) % 31 != 0) die("bad zlib header check");
		if (flg & 32) die("preset dictionary not supported");
		inflate();
		__s1 = __s1 % 65521u;
		__s2 = __s2 % 65521u;
		alignbyte();
		uint want = 0u;
		int i;
		for (i = 0; i < 4; i++) want = (want << 8) | (uint)mustgetb();
		uint got = (__s2 << 16) | __s1;
		if (want != got) die("adler32 mismatch: corrupt stream");
		vxa_done();
	}
	return 0;
}
`}

// gzipMain wraps inflateCore with the RFC 1952 container: full header
// parsing (EXTRA/NAME/COMMENT/HCRC fields) and CRC-32 + length checks.
var gzipMain = vxcc.Source{Name: "gzip.vxc", Text: `
// gzip (RFC 1952) stream decoder: VXA redec "gzip".

uint __crctab[256];
uint __crc;
uint __isize;

void crcinit() {
	int n;
	int k;
	for (n = 0; n < 256; n++) {
		uint c = (uint)n;
		for (k = 0; k < 8; k++) {
			if (c & 1u) c = 0xEDB88320u ^ (c >> 1);
			else c = c >> 1;
		}
		__crctab[n] = c;
	}
}

void outbyte(int c) {
	putb(c);
	__crc = __crctab[(__crc ^ (uint)c) & 0xFFu] ^ (__crc >> 8);
	__isize++;
}

int main(void) {
	crcinit();
	while (1) {
		__stdio_reset();
		bits_reset();
		__crc = 0xFFFFFFFFu;
		__isize = 0u;
		if (mustgetb() != 0x1F || mustgetb() != 0x8B) die("not a gzip stream");
		if (mustgetb() != 8) die("gzip method is not deflate");
		int flg = mustgetb();
		int i;
		for (i = 0; i < 6; i++) mustgetb(); // mtime, xfl, os
		if (flg & 4) { // FEXTRA
			int xlen = mustgetb();
			xlen |= mustgetb() << 8;
			for (i = 0; i < xlen; i++) mustgetb();
		}
		if (flg & 8) while (mustgetb() != 0) { }  // FNAME
		if (flg & 16) while (mustgetb() != 0) { } // FCOMMENT
		if (flg & 2) { mustgetb(); mustgetb(); }  // FHCRC
		inflate();
		alignbyte();
		uint wantcrc = 0u;
		for (i = 0; i < 4; i++) wantcrc |= (uint)mustgetb() << (8 * i);
		uint wantlen = 0u;
		for (i = 0; i < 4; i++) wantlen |= (uint)mustgetb() << (8 * i);
		if ((__crc ^ 0xFFFFFFFFu) != wantcrc) die("gzip crc32 mismatch");
		if (__isize != wantlen) die("gzip length mismatch");
		vxa_done();
	}
	return 0;
}
`}

// looksLikeZlib performs the cheap RFC 1950 header check.
func looksLikeZlib(data []byte) bool {
	if len(data) < 6 {
		return false
	}
	if data[0]&0x0F != 8 || data[0]>>4 > 7 {
		return false
	}
	return (uint32(data[0])<<8|uint32(data[1]))%31 == 0
}

func init() {
	codec.Register(&codec.Codec{
		Name:   "zlib",
		Desc:   `"Deflate" algorithm from ZIP/gzip (zlib container)`,
		Output: "raw data",
		Kind:   codec.GeneralPurpose,
		Recognize: func(data []byte) bool {
			// The zlib magic is weak (one check byte), so confirm with a
			// trial decode before classifying input as pre-compressed.
			if !looksLikeZlib(data) {
				return false
			}
			r, err := zlib.NewReader(bytes.NewReader(data))
			if err != nil {
				return false
			}
			defer r.Close()
			_, err = io.Copy(io.Discard, r)
			return err == nil
		},
		Encode: func(dst io.Writer, src []byte) error {
			w := zlib.NewWriter(dst)
			if _, err := w.Write(src); err != nil {
				return err
			}
			return w.Close()
		},
		Decode: func(dst io.Writer, src io.Reader) error {
			r, err := zlib.NewReader(src)
			if err != nil {
				return err
			}
			defer r.Close()
			_, err = io.Copy(dst, r)
			return err
		},
		Sources: []vxcc.Source{vxcsrc.Bitio, vxcsrc.Huff, inflateCore, zlibMain},
	})

	codec.Register(&codec.Codec{
		Name:   "gzip",
		Desc:   "gzip recognizer-decoder (redec) for .gz files",
		Output: "raw data",
		Kind:   codec.Redec,
		Recognize: func(data []byte) bool {
			return len(data) >= 3 && data[0] == 0x1F && data[1] == 0x8B && data[2] == 8
		},
		Decode: func(dst io.Writer, src io.Reader) error {
			r, err := gzip.NewReader(src)
			if err != nil {
				return err
			}
			defer r.Close()
			_, err = io.Copy(dst, r)
			return err
		},
		Sources: []vxcc.Source{vxcsrc.Bitio, vxcsrc.Huff, inflateCore, gzipMain},
	})
}

// deflateRawMain decodes a bare RFC 1951 stream with no container —
// exactly what a ZIP method-8 entry stores. Integrity is provided by the
// archive's own CRC-32, as in standard ZIP.
var deflateRawMain = vxcc.Source{Name: "deflateraw.vxc", Text: `
// Raw DEFLATE decoder: VXA codec "deflate" (ZIP method 8).

void outbyte(int c) { putb(c); }

int main(void) {
	while (1) {
		__stdio_reset();
		bits_reset();
		inflate();
		vxa_done();
	}
	return 0;
}
`}

func init() {
	codec.Register(&codec.Codec{
		Name:      "deflate",
		Desc:      `"Deflate" algorithm from ZIP/gzip (raw, ZIP method 8)`,
		Output:    "raw data",
		Kind:      codec.GeneralPurpose,
		ZipMethod: 8,
		// Raw deflate has no magic; it is never "recognized", only chosen
		// as the default compressor.
		Recognize: func(data []byte) bool { return false },
		Encode: func(dst io.Writer, src []byte) error {
			w, err := flate.NewWriter(dst, flate.DefaultCompression)
			if err != nil {
				return err
			}
			if _, err := w.Write(src); err != nil {
				return err
			}
			return w.Close()
		},
		Decode: func(dst io.Writer, src io.Reader) error {
			r := flate.NewReader(src)
			defer r.Close()
			_, err := io.Copy(dst, r)
			return err
		},
		Sources: []vxcc.Source{vxcsrc.Bitio, vxcsrc.Huff, inflateCore, deflateRawMain},
	})
}
