// Package haarimg implements "vxhaar", the reproduction's stand-in for
// the paper's JPEG-2000 codec: a lossy wavelet image coder using the
// reversible 2-D S-transform (integer Haar) with dead-zone quantization
// of the detail subbands. Like the paper's jp2 redec, the decoder
// outputs BMP.
//
// Stream format "VXW1" (little-endian):
//
//	magic "VXW1", u16 width, u16 height, u8 levels (1-6), u8 q (1-255)
//	coefficient token stream (package imagec) carrying each of Y/Cb/Cr
//	as the full padded transformed plane in row-major order.
//
// Quantization: the final LL band is kept exact (step 1); the detail
// band produced at decomposition level L uses step max(1, q>>L), so
// coarse scales are preserved more precisely than fine ones.
package haarimg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"vxa/internal/bmp"
	"vxa/internal/codec"
	"vxa/internal/codec/imagec"
	"vxa/internal/vxcc"
)

// MaxDim bounds accepted image dimensions.
const MaxDim = 4096

// DefaultLevels is the decomposition depth.
const DefaultLevels = 3

// ErrFormat reports a malformed VXW1 stream.
var ErrFormat = errors.New("haarimg: malformed VXW1 stream")

// forward applies one S-transform level to the top-left cw x ch region.
func forward(p []int32, stride, cw, ch int) {
	tmp := make([]int32, max(cw, ch))
	half := cw / 2
	for y := 0; y < ch; y++ {
		row := p[y*stride:]
		for j := 0; j < half; j++ {
			a, b := row[2*j], row[2*j+1]
			tmp[j] = (a + b) >> 1
			tmp[half+j] = a - b
		}
		copy(row[:cw], tmp[:cw])
	}
	half = ch / 2
	for x := 0; x < cw; x++ {
		for j := 0; j < half; j++ {
			a, b := p[(2*j)*stride+x], p[(2*j+1)*stride+x]
			tmp[j] = (a + b) >> 1
			tmp[half+j] = a - b
		}
		for j := 0; j < ch; j++ {
			p[j*stride+x] = tmp[j]
		}
	}
}

// inverse undoes one S-transform level on the top-left cw x ch region.
func inverse(p []int32, stride, cw, ch int) {
	tmp := make([]int32, max(cw, ch))
	half := ch / 2
	for x := 0; x < cw; x++ {
		for j := 0; j < half; j++ {
			s, d := p[j*stride+x], p[(half+j)*stride+x]
			a := s + ((d + 1) >> 1)
			tmp[2*j] = a
			tmp[2*j+1] = a - d
		}
		for j := 0; j < ch; j++ {
			p[j*stride+x] = tmp[j]
		}
	}
	half = cw / 2
	for y := 0; y < ch; y++ {
		row := p[y*stride:]
		for j := 0; j < half; j++ {
			s, d := row[j], row[half+j]
			a := s + ((d + 1) >> 1)
			tmp[2*j] = a
			tmp[2*j+1] = a - d
		}
		copy(row[:cw], tmp[:cw])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// stepAt returns the quantizer step for coefficient (x, y) of a
// pw x ph plane decomposed `levels` times with base step q.
func stepAt(x, y, pw, ph, levels int, q int32) int32 {
	for lev := 0; lev < levels; lev++ {
		if x < pw>>(lev+1) && y < ph>>(lev+1) {
			continue
		}
		s := q >> lev
		if s < 1 {
			s = 1
		}
		return s
	}
	return 1 // final LL band: exact
}

func padDims(w, h, levels int) (pw, ph int) {
	m := 1 << levels
	return (w + m - 1) &^ (m - 1), (h + m - 1) &^ (m - 1)
}

// Encode compresses a 24-bit BMP into VXW1 with default parameters.
func Encode(dst io.Writer, src []byte) error {
	return EncodeParams(dst, src, DefaultLevels, 16)
}

// EncodeParams compresses with explicit decomposition depth and base
// quantizer step.
func EncodeParams(dst io.Writer, src []byte, levels int, q int32) error {
	if levels < 1 || levels > 6 || q < 1 || q > 255 {
		return fmt.Errorf("haarimg: bad parameters levels=%d q=%d", levels, q)
	}
	im, err := bmp.Decode(src)
	if err != nil {
		return err
	}
	if im.W > MaxDim || im.H > MaxDim {
		return fmt.Errorf("haarimg: image too large (%dx%d)", im.W, im.H)
	}
	hdr := make([]byte, 10)
	copy(hdr, "VXW1")
	binary.LittleEndian.PutUint16(hdr[4:], uint16(im.W))
	binary.LittleEndian.PutUint16(hdr[6:], uint16(im.H))
	hdr[8] = byte(levels)
	hdr[9] = byte(q)
	if _, err := dst.Write(hdr); err != nil {
		return err
	}
	pw, ph := padDims(im.W, im.H, levels)

	var cw imagec.CoeffWriter
	for ch := 0; ch < 3; ch++ {
		plane := make([]int32, pw*ph)
		for y := 0; y < ph; y++ {
			sy := y
			if sy >= im.H {
				sy = im.H - 1
			}
			for x := 0; x < pw; x++ {
				sx := x
				if sx >= im.W {
					sx = im.W - 1
				}
				r, g, b := im.At(sx, sy)
				yy, cb, cr := imagec.RGBToYCC(int32(r), int32(g), int32(b))
				switch ch {
				case 0:
					plane[y*pw+x] = yy
				case 1:
					plane[y*pw+x] = cb
				default:
					plane[y*pw+x] = cr
				}
			}
		}
		for lev := 0; lev < levels; lev++ {
			forward(plane, pw, pw>>lev, ph>>lev)
		}
		for y := 0; y < ph; y++ {
			for x := 0; x < pw; x++ {
				step := stepAt(x, y, pw, ph, levels, q)
				v := plane[y*pw+x]
				if step > 1 {
					v = imagec.DivRound(v, step)
				}
				cw.Put(v)
			}
		}
	}
	_, err = dst.Write(cw.Bytes())
	return err
}

// Decode is the native decoder: VXW1 in, BMP out.
func Decode(dst io.Writer, src io.Reader) error {
	all, err := io.ReadAll(src)
	if err != nil {
		return err
	}
	if len(all) < 10 || string(all[:4]) != "VXW1" {
		return fmt.Errorf("%w: bad magic", ErrFormat)
	}
	w := int(binary.LittleEndian.Uint16(all[4:]))
	h := int(binary.LittleEndian.Uint16(all[6:]))
	levels := int(all[8])
	q := int32(all[9])
	if w == 0 || h == 0 || w > MaxDim || h > MaxDim || levels < 1 || levels > 6 || q < 1 {
		return fmt.Errorf("%w: bad header", ErrFormat)
	}
	pw, ph := padDims(w, h, levels)
	cr := imagec.NewCoeffReader(all[10:])

	var planes [3][]int32
	for ch := 0; ch < 3; ch++ {
		plane := make([]int32, pw*ph)
		for y := 0; y < ph; y++ {
			for x := 0; x < pw; x++ {
				v, err := cr.Next()
				if err != nil {
					return err
				}
				step := stepAt(x, y, pw, ph, levels, q)
				if step > 1 {
					v *= step
				}
				plane[y*pw+x] = v
			}
		}
		for lev := levels - 1; lev >= 0; lev-- {
			inverse(plane, pw, pw>>lev, ph>>lev)
		}
		planes[ch] = plane
	}
	im := bmp.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, b := imagec.YCCToRGB(
				clamp(planes[0][y*pw+x]), planes[1][y*pw+x], planes[2][y*pw+x])
			im.Set(x, y, byte(r), byte(g), byte(b))
		}
	}
	_, err = dst.Write(bmp.Encode(im))
	return err
}

func clamp(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// haarMain is the VXA decoder in VXC.
var haarMain = vxcc.Source{Name: "vxhaar.vxc", Text: `
// VXW1 wavelet image decoder: VXA codec "haar". Output: BMP image.

enum { MAXDIM = 4096, MAXPIX = 1 << 21 };

int lbuf[4096]; // one row/column of the current region

int step_at(int x, int y, int pw, int ph, int levels, int q) {
	int lev;
	for (lev = 0; lev < levels; lev++) {
		if (x < (pw >> (lev + 1)) && y < (ph >> (lev + 1))) continue;
		int s = q >> lev;
		if (s < 1) s = 1;
		return s;
	}
	return 1;
}

void inverse_level(int *p, int stride, int cw, int chh) {
	int half = chh / 2;
	int x;
	for (x = 0; x < cw; x++) {
		int j;
		for (j = 0; j < half; j++) {
			int s = p[j * stride + x];
			int d = p[(half + j) * stride + x];
			int a = s + ((d + 1) >> 1);
			lbuf[2 * j] = a;
			lbuf[2 * j + 1] = a - d;
		}
		for (j = 0; j < chh; j++) p[j * stride + x] = lbuf[j];
	}
	half = cw / 2;
	int y;
	for (y = 0; y < chh; y++) {
		int *row = p + y * stride;
		int j;
		for (j = 0; j < half; j++) {
			int s = row[j];
			int d = row[half + j];
			int a = s + ((d + 1) >> 1);
			lbuf[2 * j] = a;
			lbuf[2 * j + 1] = a - d;
		}
		for (j = 0; j < cw; j++) row[j] = lbuf[j];
	}
}

int *plane0;
int *plane1;
int *plane2;

int *chplane(int ch) {
	if (ch == 0) return plane0;
	if (ch == 1) return plane1;
	return plane2;
}

int clampy(int v) {
	if (v < 0) return 0;
	if (v > 255) return 255;
	return v;
}

int main(void) {
	while (1) {
		__stdio_reset();
		coeff_reset();
		if (mustgetb() != 'V' || mustgetb() != 'X' || mustgetb() != 'W' || mustgetb() != '1')
			die("not a VXW1 stream");
		int w = get2le();
		int h = get2le();
		int levels = mustgetb();
		int q = mustgetb();
		if (w <= 0 || h <= 0 || w > MAXDIM || h > MAXDIM) die("bad dimensions");
		if (levels < 1 || levels > 6 || q < 1) die("bad parameters");
		int m = 1 << levels;
		int pw = (w + m - 1) & ~(m - 1);
		int ph = (h + m - 1) & ~(m - 1);
		if (pw * ph > MAXPIX) die("image too large for decoder");
		if (!plane0) {
			plane0 = (int*)vxalloc(MAXPIX * 4);
			plane1 = (int*)vxalloc(MAXPIX * 4);
			plane2 = (int*)vxalloc(MAXPIX * 4);
		}
		int ch;
		for (ch = 0; ch < 3; ch++) {
			int *plane = chplane(ch);
			int y;
			for (y = 0; y < ph; y++) {
				int x;
				for (x = 0; x < pw; x++) {
					int v = coeff_next();
					int step = step_at(x, y, pw, ph, levels, q);
					if (step > 1) v *= step;
					plane[y * pw + x] = v;
				}
			}
			int lev;
			for (lev = levels - 1; lev >= 0; lev--)
				inverse_level(plane, pw, pw >> lev, ph >> lev);
		}
		// The Y plane must be clamped before color conversion, matching
		// the native decoder.
		int i;
		for (i = 0; i < pw * ph; i++) plane0[i] = clampy(plane0[i]);
		bmp_write(plane0, plane1, plane2, w, h, pw);
		vxa_done();
	}
	return 0;
}
`}

func init() {
	codec.Register(&codec.Codec{
		Name:   "haar",
		Desc:   "Lossy wavelet image coder (integer S-transform, JPEG-2000 family)",
		Output: "BMP image",
		Kind:   codec.MediaCodec,
		Lossy:  true,
		Recognize: func(data []byte) bool {
			return len(data) >= 10 && string(data[:4]) == "VXW1"
		},
		CanEncode: func(data []byte) bool {
			if !bmp.Sniff(data) {
				return false
			}
			_, err := bmp.Decode(data)
			return err == nil
		},
		Encode:  Encode,
		Decode:  Decode,
		Sources: []vxcc.Source{imagec.VXCSource, haarMain},
	})
}
