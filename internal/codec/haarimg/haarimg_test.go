package haarimg

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vxa/internal/bmp"
	"vxa/internal/codec"
	"vxa/internal/vm"
)

func testImage(w, h int) *bmp.Image {
	im := bmp.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y,
				byte(128+64*math.Sin(float64(x)/9)),
				byte(128+64*math.Sin(float64(y)/7)),
				byte((x*x+y*y)%256))
		}
	}
	return im
}

// TestSTransformRoundTripProperty: the integer S-transform is exactly
// reversible on arbitrary planes.
func TestSTransformRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		cw := (1 + r.Intn(16)) * 2
		ch := (1 + r.Intn(16)) * 2
		stride := cw + r.Intn(8)
		p := make([]int32, stride*ch)
		for i := range p {
			p[i] = int32(r.Intn(2048) - 1024)
		}
		orig := append([]int32(nil), p...)
		forward(p, stride, cw, ch)
		inverse(p, stride, cw, ch)
		for y := 0; y < ch; y++ {
			for x := 0; x < cw; x++ {
				if p[y*stride+x] != orig[y*stride+x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLosslessAtStepOne(t *testing.T) {
	// With q=1 every band has step 1: the codec becomes lossless except
	// for the (lossy) color transform. Verify plane-exact recovery by
	// checking PSNR is very high.
	im := testImage(64, 64)
	raw := bmp.Encode(im)
	var enc, dec bytes.Buffer
	if err := EncodeParams(&enc, raw, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := Decode(&dec, bytes.NewReader(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := bmp.Decode(dec.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if p := psnr(im, got); p < 37 {
		t.Fatalf("q=1 PSNR = %.1f dB; color round trip should dominate", p)
	}
}

func psnr(a, b *bmp.Image) float64 {
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestQualityVsSize(t *testing.T) {
	im := testImage(128, 96)
	raw := bmp.Encode(im)
	var prevSize int
	for i, q := range []int32{2, 16, 64} {
		var enc, dec bytes.Buffer
		if err := EncodeParams(&enc, raw, 3, q); err != nil {
			t.Fatal(err)
		}
		if err := Decode(&dec, bytes.NewReader(enc.Bytes())); err != nil {
			t.Fatal(err)
		}
		got, _ := bmp.Decode(dec.Bytes())
		p := psnr(im, got)
		if p < 18 {
			t.Fatalf("q=%d: PSNR %.1f dB too low", q, p)
		}
		if i > 0 && enc.Len() >= prevSize {
			t.Fatalf("coarser q=%d did not shrink the stream (%d vs %d)", q, enc.Len(), prevSize)
		}
		prevSize = enc.Len()
	}
}

func TestOddDimensions(t *testing.T) {
	for _, d := range []struct{ w, h int }{{1, 1}, {13, 27}, {33, 15}} {
		im := testImage(d.w, d.h)
		raw := bmp.Encode(im)
		var enc, dec bytes.Buffer
		if err := Encode(&enc, raw); err != nil {
			t.Fatalf("%dx%d: %v", d.w, d.h, err)
		}
		if err := Decode(&dec, bytes.NewReader(enc.Bytes())); err != nil {
			t.Fatalf("%dx%d: %v", d.w, d.h, err)
		}
		got, err := bmp.Decode(dec.Bytes())
		if err != nil || got.W != d.w || got.H != d.h {
			t.Fatalf("%dx%d: err %v", d.w, d.h, err)
		}
	}
}

func TestVXADecoderBitExact(t *testing.T) {
	c, ok := codec.ByName("haar")
	if !ok {
		t.Fatal("haar codec not registered")
	}
	im := testImage(56, 40)
	raw := bmp.Encode(im)
	var enc bytes.Buffer
	if err := Encode(&enc, raw); err != nil {
		t.Fatal(err)
	}
	var nat bytes.Buffer
	if err := Decode(&nat, bytes.NewReader(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := c.RunVXA(enc.Bytes(), vm.Config{MemSize: 64 << 20})
	if err != nil {
		t.Fatalf("vxa: %v", err)
	}
	if !bytes.Equal(got, nat.Bytes()) {
		t.Fatal("vxa BMP differs from native BMP")
	}
}
