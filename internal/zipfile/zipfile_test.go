package zipfile

import (
	"archive/zip"
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)

	decoder := bytes.Repeat([]byte{0x7F, 'E', 'L', 'F', 1, 2, 3}, 500)
	decOff, err := w.AddDecoder(decoder)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("compressed payload bytes")
	orig := []byte("the original uncompressed data")
	hdr := FileHeader{
		Name:   "a/b.txt",
		Method: MethodVXA,
		CRC32:  crc32.ChecksumIEEE(orig),
		USize:  uint32(len(orig)),
		Mode:   0640,
		VXA:    &VXAHeader{Codec: "bwt", DecoderOffset: decOff},
	}
	if err := w.AddFile(hdr, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFile(FileHeader{Name: "plain.bin", Method: MethodStore,
		CRC32: crc32.ChecksumIEEE(payload), USize: uint32(len(payload))}, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Files) != 2 {
		t.Fatalf("files = %d, want 2 (pseudo-file must be hidden)", len(r.Files))
	}
	f := &r.Files[0]
	if f.Name != "a/b.txt" || f.Method != MethodVXA || f.Mode != 0640 {
		t.Fatalf("header round trip: %+v", f)
	}
	if f.VXA == nil || f.VXA.Codec != "bwt" || f.VXA.DecoderOffset != decOff {
		t.Fatalf("VXA extension round trip: %+v", f.VXA)
	}
	got, err := r.Payload(f)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("payload: %v", err)
	}
	dec, err := r.Decoder(decOff)
	if err != nil || !bytes.Equal(dec, decoder) {
		t.Fatalf("decoder pseudo-file: %v (%d bytes)", err, len(dec))
	}
}

// TestVXAHeaderProperty round-trips arbitrary VXA extension headers.
func TestVXAHeaderProperty(t *testing.T) {
	f := func(codecName string, off uint32, pre bool) bool {
		if len(codecName) > 255 {
			codecName = codecName[:255]
		}
		h := &VXAHeader{Codec: codecName, DecoderOffset: off, PreCompressed: pre}
		got, err := parseVXAExtra(h.encode())
		if err != nil || got == nil {
			return false
		}
		return got.Codec == codecName && got.DecoderOffset == off && got.PreCompressed == pre
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestForeignExtraFieldsIgnored: VXA headers coexist with other extras.
func TestForeignExtraFieldsIgnored(t *testing.T) {
	h := &VXAHeader{Codec: "zlib", DecoderOffset: 42}
	foreign := []byte{0x55, 0x54, 4, 0, 1, 2, 3, 4} // UT timestamp field
	extra := append(foreign, h.encode()...)
	got, err := parseVXAExtra(extra)
	if err != nil || got == nil || got.Codec != "zlib" {
		t.Fatalf("got %+v err %v", got, err)
	}
	// And no VXA field at all parses to nil, nil.
	got2, err := parseVXAExtra(foreign)
	if err != nil || got2 != nil {
		t.Fatalf("foreign-only extra: %+v %v", got2, err)
	}
}

func TestStdlibInterop(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	data := []byte("interop data stored uncompressed")
	w.AddFile(FileHeader{Name: "x.txt", Method: MethodStore,
		CRC32: crc32.ChecksumIEEE(data), USize: uint32(len(data)), Mode: 0644}, data)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	zr, err := zip.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("archive/zip rejects our output: %v", err)
	}
	rc, err := zr.File[0].Open()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("stdlib extraction: %v", err)
	}
	if zr.File[0].Mode().Perm() != 0644 {
		t.Fatalf("mode = %v", zr.File[0].Mode())
	}
}

func TestReaderRejects(t *testing.T) {
	if _, err := NewReader([]byte("way too short")); !errors.Is(err, ErrFormat) {
		t.Errorf("short: %v", err)
	}
	if _, err := NewReader(make([]byte, 100)); !errors.Is(err, ErrFormat) {
		t.Errorf("no EOCD: %v", err)
	}
	// Valid archive, then truncate the central directory.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.AddFile(FileHeader{Name: "f", Method: MethodStore}, []byte("x"))
	w.Close()
	b := buf.Bytes()
	cut := append([]byte{}, b[:40]...)
	cut = append(cut, b[len(b)-22:]...)
	if _, err := NewReader(cut); err == nil {
		t.Error("truncated central directory accepted")
	}
}

// TestDecoderNotInCentralDirectory: decoders never appear in listings
// even when files reference them.
func TestDecoderNotInCentralDirectory(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if _, err := w.AddDecoder(bytes.Repeat([]byte{byte(i)}, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	w.AddFile(FileHeader{Name: "only.txt", Method: MethodStore}, []byte("data"))
	w.Close()
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Files) != 1 {
		t.Fatalf("visible files = %d, want 1", len(r.Files))
	}
	zr, err := zip.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if len(zr.File) != 1 {
		t.Fatalf("archive/zip sees %d files, want 1", len(zr.File))
	}
}
