package zipfile

import (
	"bytes"
	"testing"
)

// fuzzSeedArchive builds a small valid archive (one stored file, one
// VXA-tagged file, one decoder pseudo-file) so the fuzzer starts from
// structurally interesting bytes.
func fuzzSeedArchive(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	decOff, err := w.AddDecoder(bytes.Repeat([]byte{0x90}, 256))
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.AddFile(FileHeader{
		Name: "stored.txt", Method: MethodStore,
		CRC32: 0x1234, USize: 5, Mode: 0644,
	}, []byte("hello")); err != nil {
		tb.Fatal(err)
	}
	if err := w.AddFile(FileHeader{
		Name: "coded.bin", Method: MethodVXA,
		CRC32: 0x5678, USize: 9, Mode: 0600,
		VXA: &VXAHeader{Codec: "deflate", DecoderOffset: decOff, PreCompressed: false},
	}, []byte{1, 2, 3}); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzZipParse feeds arbitrary bytes through the whole container parse
// surface: central directory, VXA extension headers, local headers,
// payload extraction and decoder-pseudo-file decompression. The parser
// must reject garbage with an error — never panic, never over-read.
func FuzzZipParse(f *testing.F) {
	seed := fuzzSeedArchive(f)
	f.Add(seed)
	f.Add([]byte("PK\x05\x06"))
	f.Add(bytes.Repeat([]byte{0}, 22))
	// A seed with the EOCD signature buried in a trailing comment.
	f.Add(append(append([]byte{}, seed...), "comment PK\x05\x06 inside"...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			return // malformed: rejected, which is the contract
		}
		for i := range r.Files {
			fh := &r.Files[i]
			if _, err := r.Payload(fh); err != nil {
				continue
			}
			if fh.VXA != nil {
				// Decoder offsets come from attacker-controlled extra
				// fields; following them must stay memory-safe.
				_, _ = r.Decoder(fh.VXA.DecoderOffset)
			}
		}
	})
}

// TestDecoderSizeCap pins the decompression-bomb guard: a pseudo-file
// claiming an absurd decompressed size is rejected before inflation.
func TestDecoderSizeCap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	off, err := w.AddDecoder(make([]byte, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFile(FileHeader{Name: "f", Method: MethodStore}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The decoder's local header stores usize at offset+22; claim 1 GiB.
	usz := off + 22
	data[usz], data[usz+1], data[usz+2], data[usz+3] = 0, 0, 0, 0x40
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Decoder(off); err == nil {
		t.Fatal("decoder pseudo-file over the size cap was not rejected")
	}
}
