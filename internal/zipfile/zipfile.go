// Package zipfile reads and writes the vxZIP archive container: the
// standard ZIP format (local file headers, central directory, end
// record) extended exactly as the paper's §3.1-3.2 describe:
//
//   - every archived file carries a VXA extension header (extra field
//     ID 0x5658, "VX") pointing, by archive offset, at its decoder;
//   - decoders are stored as pseudo-files with empty filenames and their
//     own local headers, deflate-compressed, and are deliberately absent
//     from the central directory so VXA-unaware tools never see them;
//   - files compressed with traditional methods keep their standard
//     method tags (0 = store, 8 = deflate) so old tools can extract
//     them; formats with no traditional tag use the reserved VXA method.
//
// The package is deliberately independent of archive/zip: writing the
// container from scratch is part of the reproduction, and archive/zip
// serves as the "older UnZIP tool" in compatibility tests.
package zipfile

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ZIP method tags.
const (
	MethodStore   uint16 = 0
	MethodDeflate uint16 = 8
	// MethodVXA is the reserved "special" tag for files that can only be
	// extracted with their attached VXA decoder (§3.1).
	MethodVXA uint16 = 0x5658
)

// VXAExtraID is the extra-field header ID of the VXA extension ("VX").
const VXAExtraID uint16 = 0x5658

// Signatures.
const (
	sigLocal   = 0x04034b50
	sigCentral = 0x02014b50
	sigEOCD    = 0x06054b50
)

// ErrFormat reports a structurally invalid archive.
var ErrFormat = errors.New("zipfile: malformed archive")

// VXAHeader is the VXA extension attached to each archived file.
type VXAHeader struct {
	Codec         string // codec tag, e.g. "zlib"
	DecoderOffset uint32 // archive offset of the decoder pseudo-file
	PreCompressed bool   // input was already compressed; stored as-is
}

func (h *VXAHeader) encode() []byte {
	body := make([]byte, 0, 8+len(h.Codec))
	body = append(body, 1) // version
	flags := byte(0)
	if h.PreCompressed {
		flags |= 1
	}
	body = append(body, flags, byte(len(h.Codec)))
	body = append(body, h.Codec...)
	var off [4]byte
	binary.LittleEndian.PutUint32(off[:], h.DecoderOffset)
	body = append(body, off[:]...)

	out := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint16(out[0:], VXAExtraID)
	binary.LittleEndian.PutUint16(out[2:], uint16(len(body)))
	copy(out[4:], body)
	return out
}

// parseVXAExtra extracts a VXA header from a ZIP extra field, if present.
func parseVXAExtra(extra []byte) (*VXAHeader, error) {
	for len(extra) >= 4 {
		id := binary.LittleEndian.Uint16(extra[0:])
		size := int(binary.LittleEndian.Uint16(extra[2:]))
		if 4+size > len(extra) {
			return nil, fmt.Errorf("%w: extra field overflow", ErrFormat)
		}
		body := extra[4 : 4+size]
		if id == VXAExtraID {
			if len(body) < 7 || body[0] != 1 {
				return nil, fmt.Errorf("%w: bad VXA extension", ErrFormat)
			}
			nameLen := int(body[2])
			if 3+nameLen+4 > len(body) {
				return nil, fmt.Errorf("%w: bad VXA extension length", ErrFormat)
			}
			return &VXAHeader{
				Codec:         string(body[3 : 3+nameLen]),
				DecoderOffset: binary.LittleEndian.Uint32(body[3+nameLen:]),
				PreCompressed: body[1]&1 != 0,
			}, nil
		}
		extra = extra[4+size:]
	}
	return nil, nil
}

// FileHeader describes one archived file.
type FileHeader struct {
	Name   string
	Method uint16
	CRC32  uint32 // of the original (uncompressed) data
	CSize  uint32
	USize  uint32
	Mode   uint32 // unix permission bits (security attributes, §2.4)
	VXA    *VXAHeader
	Offset uint32 // local header offset
}

// ---------- writer ----------

// Writer writes a vxZIP archive.
type Writer struct {
	w       io.Writer
	off     uint32
	central []FileHeader
	err     error
}

// NewWriter begins an archive.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (zw *Writer) write(b []byte) {
	if zw.err != nil {
		return
	}
	n, err := zw.w.Write(b)
	zw.off += uint32(n)
	zw.err = err
}

// localHeader emits a local file header.
func (zw *Writer) localHeader(name string, method uint16, crc, csize, usize uint32, extra []byte) {
	h := make([]byte, 30)
	binary.LittleEndian.PutUint32(h[0:], sigLocal)
	binary.LittleEndian.PutUint16(h[4:], 20) // version needed
	binary.LittleEndian.PutUint16(h[6:], 0)  // flags
	binary.LittleEndian.PutUint16(h[8:], method)
	binary.LittleEndian.PutUint16(h[10:], 0)    // mod time
	binary.LittleEndian.PutUint16(h[12:], 0x21) // mod date (1980-01-01)
	binary.LittleEndian.PutUint32(h[14:], crc)
	binary.LittleEndian.PutUint32(h[18:], csize)
	binary.LittleEndian.PutUint32(h[22:], usize)
	binary.LittleEndian.PutUint16(h[26:], uint16(len(name)))
	binary.LittleEndian.PutUint16(h[28:], uint16(len(extra)))
	zw.write(h)
	zw.write([]byte(name))
	zw.write(extra)
}

// AddDecoder stores a VXA decoder as a pseudo-file: an anonymous local
// header holding the deflate-compressed ELF image, not referenced by the
// central directory (§3.2). It returns the pseudo-file's offset for use
// in VXA extension headers.
func (zw *Writer) AddDecoder(elf []byte) (uint32, error) {
	if zw.err != nil {
		return 0, zw.err
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestCompression)
	if err != nil {
		return 0, err
	}
	if _, err := fw.Write(elf); err != nil {
		return 0, err
	}
	if err := fw.Close(); err != nil {
		return 0, err
	}
	off := zw.off
	crc := crc32.ChecksumIEEE(elf)
	zw.localHeader("", MethodDeflate, crc, uint32(comp.Len()), uint32(len(elf)), nil)
	zw.write(comp.Bytes())
	return off, zw.err
}

// AddFile writes one archived file entry with pre-compressed payload.
// crc must be the CRC-32 of the original uncompressed data.
func (zw *Writer) AddFile(hdr FileHeader, payload []byte) error {
	if zw.err != nil {
		return zw.err
	}
	var extra []byte
	if hdr.VXA != nil {
		extra = hdr.VXA.encode()
	}
	hdr.Offset = zw.off
	hdr.CSize = uint32(len(payload))
	zw.localHeader(hdr.Name, hdr.Method, hdr.CRC32, hdr.CSize, hdr.USize, extra)
	zw.write(payload)
	zw.central = append(zw.central, hdr)
	return zw.err
}

// Close writes the central directory and end-of-central-directory record.
func (zw *Writer) Close() error {
	if zw.err != nil {
		return zw.err
	}
	cdStart := zw.off
	for _, f := range zw.central {
		var extra []byte
		if f.VXA != nil {
			extra = f.VXA.encode()
		}
		h := make([]byte, 46)
		binary.LittleEndian.PutUint32(h[0:], sigCentral)
		binary.LittleEndian.PutUint16(h[4:], 3<<8|20) // made by unix
		binary.LittleEndian.PutUint16(h[6:], 20)      // version needed
		binary.LittleEndian.PutUint16(h[8:], 0)
		binary.LittleEndian.PutUint16(h[10:], f.Method)
		binary.LittleEndian.PutUint16(h[12:], 0)
		binary.LittleEndian.PutUint16(h[14:], 0x21)
		binary.LittleEndian.PutUint32(h[16:], f.CRC32)
		binary.LittleEndian.PutUint32(h[20:], f.CSize)
		binary.LittleEndian.PutUint32(h[24:], f.USize)
		binary.LittleEndian.PutUint16(h[28:], uint16(len(f.Name)))
		binary.LittleEndian.PutUint16(h[30:], uint16(len(extra)))
		// comment len, disk start, internal attrs: zero
		binary.LittleEndian.PutUint32(h[38:], f.Mode<<16) // external attrs
		binary.LittleEndian.PutUint32(h[42:], f.Offset)
		zw.write(h)
		zw.write([]byte(f.Name))
		zw.write(extra)
	}
	cdSize := zw.off - cdStart
	e := make([]byte, 22)
	binary.LittleEndian.PutUint32(e[0:], sigEOCD)
	binary.LittleEndian.PutUint16(e[8:], uint16(len(zw.central)))
	binary.LittleEndian.PutUint16(e[10:], uint16(len(zw.central)))
	binary.LittleEndian.PutUint32(e[12:], cdSize)
	binary.LittleEndian.PutUint32(e[16:], cdStart)
	zw.write(e)
	return zw.err
}

// ---------- reader ----------

// Reader reads a vxZIP archive from any random-access source. Parsing
// is lazy and section-at-a-time: opening reads only the end-of-central-
// directory record and the central directory; each payload access reads
// that entry's local header and (on demand) its stored bytes. A
// multi-gigabyte archive is never resident in memory — only the
// sections actually touched are.
//
// A Reader is safe for concurrent use as long as the underlying
// io.ReaderAt is (os.File and bytes.Reader both are).
type Reader struct {
	ra    io.ReaderAt
	size  int64
	Files []FileHeader
}

// NewReader opens an archive held in memory (an adapter over
// NewReaderAt for callers that already have the whole container).
func NewReader(data []byte) (*Reader, error) {
	return NewReaderAt(bytes.NewReader(data), int64(len(data)))
}

// readFullAt reads exactly len(buf) bytes at off, tolerating the
// io.ReaderAt contract's permitted (n == len(buf), io.EOF) return for a
// read ending exactly at the end of the source — common for the tail
// sections a ZIP reader lives on.
func readFullAt(ra io.ReaderAt, buf []byte, off int64) error {
	n, err := ra.ReadAt(buf, off)
	if n == len(buf) {
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// maxEOCDScan bounds the tail window searched for the end-of-central-
// directory record: the 22-byte record plus the maximum ZIP comment.
const maxEOCDScan = 22 + 0xFFFF

// NewReaderAt opens an archive from a random-access source of the given
// size, parsing only the end record and central directory.
func NewReaderAt(ra io.ReaderAt, size int64) (*Reader, error) {
	if size < 22 {
		return nil, fmt.Errorf("%w: too small", ErrFormat)
	}
	// Find EOCD: read the tail window once, scan backwards over a
	// possible comment.
	window := int64(maxEOCDScan)
	if window > size {
		window = size
	}
	tail := make([]byte, window)
	if err := readFullAt(ra, tail, size-window); err != nil {
		return nil, fmt.Errorf("zipfile: reading end record: %w", err)
	}
	eocd := -1
	for i := len(tail) - 22; i >= 0; i-- {
		if binary.LittleEndian.Uint32(tail[i:]) == sigEOCD {
			eocd = i
			break
		}
	}
	if eocd < 0 {
		return nil, fmt.Errorf("%w: no end-of-central-directory record", ErrFormat)
	}
	count := int(binary.LittleEndian.Uint16(tail[eocd+10:]))
	cdSize := int64(binary.LittleEndian.Uint32(tail[eocd+12:]))
	cdOff := int64(binary.LittleEndian.Uint32(tail[eocd+16:]))
	if cdOff+cdSize > size || cdSize < 0 {
		return nil, fmt.Errorf("%w: central directory outside archive", ErrFormat)
	}
	// Read the central directory section in one piece; it is small
	// (tens of bytes per entry) even for huge archives.
	cd := make([]byte, cdSize)
	if err := readFullAt(ra, cd, cdOff); err != nil {
		return nil, fmt.Errorf("zipfile: reading central directory: %w", err)
	}
	r := &Reader{ra: ra, size: size}
	pos := 0
	for i := 0; i < count; i++ {
		if pos+46 > len(cd) || binary.LittleEndian.Uint32(cd[pos:]) != sigCentral {
			return nil, fmt.Errorf("%w: bad central directory entry", ErrFormat)
		}
		h := cd[pos:]
		nameLen := int(binary.LittleEndian.Uint16(h[28:]))
		extraLen := int(binary.LittleEndian.Uint16(h[30:]))
		commentLen := int(binary.LittleEndian.Uint16(h[32:]))
		if pos+46+nameLen+extraLen+commentLen > len(cd) {
			return nil, fmt.Errorf("%w: truncated central directory", ErrFormat)
		}
		f := FileHeader{
			Name:   string(h[46 : 46+nameLen]),
			Method: binary.LittleEndian.Uint16(h[10:]),
			CRC32:  binary.LittleEndian.Uint32(h[16:]),
			CSize:  binary.LittleEndian.Uint32(h[20:]),
			USize:  binary.LittleEndian.Uint32(h[24:]),
			Mode:   binary.LittleEndian.Uint32(h[38:]) >> 16,
			Offset: binary.LittleEndian.Uint32(h[42:]),
		}
		vxa, err := parseVXAExtra(h[46+nameLen : 46+nameLen+extraLen])
		if err != nil {
			return nil, err
		}
		f.VXA = vxa
		r.Files = append(r.Files, f)
		pos += 46 + nameLen + extraLen + commentLen
	}
	return r, nil
}

// sectionAt parses the local header at off and returns the payload's
// position within the archive plus the header fields.
func (r *Reader) sectionAt(off uint32) (start, csize int64, method uint16, usize uint32, err error) {
	var h [30]byte
	if int64(off)+30 > r.size {
		return 0, 0, 0, 0, fmt.Errorf("%w: bad local header at %#x", ErrFormat, off)
	}
	if err := readFullAt(r.ra, h[:], int64(off)); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("zipfile: reading local header at %#x: %w", off, err)
	}
	if binary.LittleEndian.Uint32(h[0:]) != sigLocal {
		return 0, 0, 0, 0, fmt.Errorf("%w: bad local header at %#x", ErrFormat, off)
	}
	method = binary.LittleEndian.Uint16(h[8:])
	csize = int64(binary.LittleEndian.Uint32(h[18:]))
	usize = binary.LittleEndian.Uint32(h[22:])
	nameLen := int64(binary.LittleEndian.Uint16(h[26:]))
	extraLen := int64(binary.LittleEndian.Uint16(h[28:]))
	start = int64(off) + 30 + nameLen + extraLen
	if start+csize > r.size {
		return 0, 0, 0, 0, fmt.Errorf("%w: truncated payload", ErrFormat)
	}
	return start, csize, method, usize, nil
}

// PayloadSection returns a reader over the raw stored bytes of an
// archived file (compressed form, exactly as archived) without loading
// them: the archive-native way to stream a payload into a decoder.
func (r *Reader) PayloadSection(f *FileHeader) (*io.SectionReader, error) {
	start, csize, _, _, err := r.sectionAt(f.Offset)
	if err != nil {
		return nil, err
	}
	return io.NewSectionReader(r.ra, start, csize), nil
}

// Payload returns the raw stored bytes of an archived file, fully read.
// Prefer PayloadSection when the bytes are only streamed through.
func (r *Reader) Payload(f *FileHeader) ([]byte, error) {
	start, csize, _, _, err := r.sectionAt(f.Offset)
	if err != nil {
		return nil, err
	}
	out := make([]byte, csize)
	if err := readFullAt(r.ra, out, start); err != nil {
		return nil, fmt.Errorf("zipfile: reading payload: %w", err)
	}
	return out, nil
}

// MaxDecoderSize caps a decoder pseudo-file's decompressed size. Real
// VXA decoders are tens of kilobytes (Table 2); the cap stops a
// malicious archive from using the decoder slot as a decompression
// bomb before the sandbox is even involved.
const MaxDecoderSize = 16 << 20

// Decoder extracts and decompresses the decoder pseudo-file at the given
// archive offset (decoders are always deflate-compressed, §3.2).
func (r *Reader) Decoder(off uint32) ([]byte, error) {
	start, csize, method, usize, err := r.sectionAt(off)
	if err != nil {
		return nil, err
	}
	if method != MethodDeflate {
		return nil, fmt.Errorf("%w: decoder pseudo-file not deflated", ErrFormat)
	}
	if usize > MaxDecoderSize {
		return nil, fmt.Errorf("%w: decoder pseudo-file claims %d bytes (cap %d)", ErrFormat, usize, MaxDecoderSize)
	}
	fr := flate.NewReader(io.NewSectionReader(r.ra, start, csize))
	defer fr.Close()
	out, err := io.ReadAll(io.LimitReader(fr, int64(usize)+1))
	if err != nil {
		return nil, fmt.Errorf("%w: decoder decompression: %v", ErrFormat, err)
	}
	if uint32(len(out)) != usize {
		return nil, fmt.Errorf("%w: decoder size mismatch", ErrFormat)
	}
	return out, nil
}
