// Package fault is a seeded, deterministic fault-injection registry
// for the vxad serving path. Seven injection points cover the stack's
// externally-visible failure surfaces: archive payload reads, decoder
// snapshot builds, VM lease acquisition, guest syscalls, response
// writes, and — across the process boundary — backend dials and
// backend response reads (the vxrouter -> shard network legs). The
// registry is disarmed by default and the disarmed fast
// path is a single atomic load, so shipping the hooks in production
// code is free; tests, the chaos soak, and `vxbench -chaos` arm it
// with a seed and a per-call injection rate.
//
// Decisions are deterministic: whether call number k at point p
// injects is a pure function of (seed, p, k). Two runs with the same
// seed and the same call interleaving inject at the same calls, which
// keeps chaos failures replayable.
package fault

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// Point identifies one injection site in the serving stack.
type Point uint8

const (
	// ArchiveRead fails a read of archive payload bytes (the backend
	// I/O the decoder consumes).
	ArchiveRead Point = iota
	// SnapshotBuild fails a decoder snapshot construction in the
	// SnapCache.
	SnapshotBuild
	// LeaseAcquire fails a VM lease checkout from the pool.
	LeaseAcquire
	// GuestSyscall traps a guest syscall inside the VM.
	GuestSyscall
	// ResponseWrite fails a write of response bytes toward the client.
	ResponseWrite
	// BackendDial fails a network dial toward a backend shard (the
	// vxrouter -> vxad connection setup). Dial faults are always
	// pre-first-byte, so a router seeing one may fail the attempt over
	// to another shard.
	BackendDial
	// BackendRead fails a read of a backend shard's response bytes.
	// Fired before the first byte it is a clean failover; fired
	// mid-stream it forces the honest-truncation path.
	BackendRead

	// NumPoints is the number of injection sites.
	NumPoints = int(BackendRead) + 1
)

var pointNames = [NumPoints]string{"read", "snapshot", "lease", "syscall", "write", "dial", "netread"}

func (p Point) String() string {
	if int(p) < NumPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("fault.Point(%d)", uint8(p))
}

// ErrInjected is the sentinel every injected fault matches via
// errors.Is, so callers can distinguish synthetic faults from organic
// ones without depending on the concrete *Error.
var ErrInjected = errors.New("fault: injected")

// Error is the concrete error returned by Inject. It records which
// point fired and the call sequence number, so a chaos failure log
// pins the exact replayable injection.
type Error struct {
	Point Point
	Seq   uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure (call %d)", e.Point, e.Seq)
}

// Is makes errors.Is(err, ErrInjected) match any injected fault.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Config arms the registry.
type Config struct {
	// Seed keys the deterministic injection decisions.
	Seed uint64
	// Rate is the per-call injection probability in [0, 1].
	Rate float64
	// Points is a bitmask of armed points (1 << Point). Zero arms
	// nothing; use AllPoints to arm every site.
	Points uint32
}

// AllPoints is the Points mask arming every injection site.
func AllPoints() uint32 { return 1<<NumPoints - 1 }

// regState is the armed registry. It is swapped in whole via an atomic
// pointer so Inject never takes a lock.
type regState struct {
	cfg       Config
	threshold uint64 // Rate scaled to the u64 hash range
	calls     [NumPoints]atomic.Uint64
	injected  [NumPoints]atomic.Uint64
}

var (
	armed atomic.Bool
	state atomic.Pointer[regState]
)

// Arm installs cfg and starts injecting. Counters reset.
func Arm(cfg Config) {
	if cfg.Rate < 0 {
		cfg.Rate = 0
	}
	if cfg.Rate > 1 {
		cfg.Rate = 1
	}
	st := &regState{cfg: cfg}
	if cfg.Rate >= 1 {
		st.threshold = math.MaxUint64
	} else {
		st.threshold = uint64(cfg.Rate * float64(math.MaxUint64))
	}
	state.Store(st)
	armed.Store(true)
}

// Disarm stops all injection. Counters from the last armed period
// remain readable via Stats until the next Arm.
func Disarm() { armed.Store(false) }

// Armed reports whether the registry is currently injecting.
func Armed() bool { return armed.Load() }

// Inject is called at each injection site. It returns nil when
// disarmed, when p is not in the armed mask, or when the deterministic
// decision for this call says "no fault"; otherwise it returns an
// *Error matching ErrInjected.
func Inject(p Point) error {
	if !armed.Load() {
		return nil
	}
	st := state.Load()
	if st == nil || st.cfg.Points&(1<<p) == 0 {
		return nil
	}
	seq := st.calls[p].Add(1)
	if mix(st.cfg.Seed, p, seq) > st.threshold {
		return nil
	}
	st.injected[p].Add(1)
	return &Error{Point: p, Seq: seq}
}

// mix is a splitmix64-style avalanche of (seed, point, seq): cheap,
// stateless, and uniform enough that the injection rate tracks Rate.
func mix(seed uint64, p Point, seq uint64) uint64 {
	x := seed ^ (uint64(p)+1)*0x9E3779B97F4A7C15 ^ seq*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// PointStats is one point's call/injection tally.
type PointStats struct {
	Point    string `json:"point"`
	Calls    uint64 `json:"calls"`
	Injected uint64 `json:"injected"`
}

// Snapshot is a point-in-time view of the registry.
type Snapshot struct {
	Armed  bool         `json:"armed"`
	Seed   uint64       `json:"seed"`
	Rate   float64      `json:"rate"`
	Points []PointStats `json:"points"`
}

// Stats returns the current counters (from the most recent Arm, even
// after Disarm).
func Stats() Snapshot {
	st := state.Load()
	if st == nil {
		return Snapshot{}
	}
	s := Snapshot{Armed: armed.Load(), Seed: st.cfg.Seed, Rate: st.cfg.Rate}
	for i := 0; i < NumPoints; i++ {
		s.Points = append(s.Points, PointStats{
			Point:    Point(i).String(),
			Calls:    st.calls[i].Load(),
			Injected: st.injected[i].Load(),
		})
	}
	return s
}

// ArmFromSpec parses a spec of the form
//
//	rate=0.05,seed=1,points=read+snapshot+lease+syscall+write
//
// (points=all arms every site) and arms the registry. An empty spec is
// a no-op. This is the format of vxad's -fault flag and the VXA_FAULT
// environment variable.
func ArmFromSpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	cfg := Config{Seed: 1, Rate: 0.05, Points: AllPoints()}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return fmt.Errorf("fault: bad spec field %q (want key=value)", field)
		}
		switch k {
		case "rate":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || r < 0 || r > 1 {
				return fmt.Errorf("fault: bad rate %q (want 0..1)", v)
			}
			cfg.Rate = r
		case "seed":
			s, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return fmt.Errorf("fault: bad seed %q", v)
			}
			cfg.Seed = s
		case "points":
			if v == "all" {
				cfg.Points = AllPoints()
				break
			}
			cfg.Points = 0
			for _, name := range strings.Split(v, "+") {
				p, err := parsePoint(name)
				if err != nil {
					return err
				}
				cfg.Points |= 1 << p
			}
		default:
			return fmt.Errorf("fault: unknown spec key %q", k)
		}
	}
	Arm(cfg)
	return nil
}

func parsePoint(name string) (Point, error) {
	for i, n := range pointNames {
		if n == name {
			return Point(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown point %q (want one of %s)", name, strings.Join(pointNames[:], ", "))
}
