package fault

import "io"

// Reader wraps an archive payload reader with the ArchiveRead
// injection point. The first injected fault is recorded and returned
// from every subsequent Read, so a consumer that swallows read errors
// (a guest seeing EIO, say) still leaves the host-side cause
// inspectable via Err.
type Reader struct {
	r   io.Reader
	err error
}

// NewReader wraps r. Callers typically gate on Armed() and skip the
// wrapper entirely when injection is off.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

func (f *Reader) Read(p []byte) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	if err := Inject(ArchiveRead); err != nil {
		f.err = err
		return 0, err
	}
	return f.r.Read(p)
}

// Err returns the first injected read fault, if any.
func (f *Reader) Err() error { return f.err }
