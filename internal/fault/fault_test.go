package fault

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// Injection decisions must be a pure function of (seed, point, seq):
// two armed periods with the same config inject at exactly the same
// call numbers.
func TestInjectDeterministic(t *testing.T) {
	defer Disarm()
	decide := func() []bool {
		Arm(Config{Seed: 42, Rate: 0.1, Points: AllPoints()})
		var got []bool
		for i := 0; i < 1000; i++ {
			got = append(got, Inject(GuestSyscall) != nil)
		}
		return got
	}
	a, b := decide(), decide()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical armed runs", i)
		}
	}
}

// The realized injection rate should track the configured rate.
func TestInjectRate(t *testing.T) {
	defer Disarm()
	Arm(Config{Seed: 7, Rate: 0.05, Points: 1 << ArchiveRead})
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if Inject(ArchiveRead) != nil {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.03 || rate > 0.07 {
		t.Fatalf("realized rate %.4f, want ~0.05", rate)
	}
	st := Stats()
	if st.Points[ArchiveRead].Calls != n || st.Points[ArchiveRead].Injected != uint64(hits) {
		t.Fatalf("stats %+v, want calls=%d injected=%d", st.Points[ArchiveRead], n, hits)
	}
}

// Rate 1 must inject on every call; unarmed points never inject.
func TestInjectMaskAndCertainty(t *testing.T) {
	defer Disarm()
	Arm(Config{Seed: 1, Rate: 1, Points: 1 << LeaseAcquire})
	for i := 0; i < 100; i++ {
		if Inject(LeaseAcquire) == nil {
			t.Fatal("rate=1 armed point did not inject")
		}
		if Inject(ResponseWrite) != nil {
			t.Fatal("unarmed point injected")
		}
	}
}

func TestDisarmed(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if Inject(SnapshotBuild) != nil {
			t.Fatal("disarmed registry injected")
		}
	}
}

func TestErrorIdentity(t *testing.T) {
	defer Disarm()
	Arm(Config{Seed: 3, Rate: 1, Points: AllPoints()})
	err := Inject(SnapshotBuild)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not match ErrInjected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != SnapshotBuild {
		t.Fatalf("injected error %v does not carry its point", err)
	}
	if !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("error text %q should name the point", err)
	}
}

func TestArmFromSpec(t *testing.T) {
	defer Disarm()
	if err := ArmFromSpec("rate=0.25,seed=9,points=read+write"); err != nil {
		t.Fatal(err)
	}
	st := Stats()
	if !st.Armed || st.Seed != 9 || st.Rate != 0.25 {
		t.Fatalf("spec not applied: %+v", st)
	}
	if Inject(LeaseAcquire) != nil {
		t.Fatal("lease point should not be armed by points=read+write")
	}
	for _, bad := range []string{"rate=2", "bogus", "points=nope", "seed=x"} {
		if err := ArmFromSpec(bad); err == nil {
			t.Fatalf("spec %q should be rejected", bad)
		}
	}
	if err := ArmFromSpec(""); err != nil {
		t.Fatalf("empty spec must be a no-op, got %v", err)
	}
}

// The cross-process points (backend dial, backend response read) are
// part of the registry surface: named, spec-addressable, and covered by
// points=all.
func TestBackendPoints(t *testing.T) {
	defer Disarm()
	if BackendDial.String() != "dial" || BackendRead.String() != "netread" {
		t.Fatalf("point names: dial=%q netread=%q", BackendDial, BackendRead)
	}
	if err := ArmFromSpec("rate=1,seed=2,points=dial+netread"); err != nil {
		t.Fatal(err)
	}
	if Inject(BackendDial) == nil || Inject(BackendRead) == nil {
		t.Fatal("armed backend points did not inject at rate=1")
	}
	if Inject(ResponseWrite) != nil {
		t.Fatal("write point should not be armed by points=dial+netread")
	}
	Arm(Config{Seed: 2, Rate: 1, Points: AllPoints()})
	if Inject(BackendDial) == nil || Inject(BackendRead) == nil {
		t.Fatal("points=all must cover the backend points")
	}
	st := Stats()
	if len(st.Points) != NumPoints {
		t.Fatalf("stats carry %d points, want %d", len(st.Points), NumPoints)
	}
}

// The Reader wrapper returns the injected fault to its consumer and
// pins it for the host via Err, even if the consumer keeps reading.
func TestReader(t *testing.T) {
	defer Disarm()
	Arm(Config{Seed: 5, Rate: 1, Points: 1 << ArchiveRead})
	fr := NewReader(strings.NewReader("payload"))
	if _, err := fr.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read error %v, want injected", err)
	}
	if _, err := fr.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("subsequent read error %v, want pinned injected fault", err)
	}
	if !errors.Is(fr.Err(), ErrInjected) {
		t.Fatalf("Err() = %v, want pinned fault", fr.Err())
	}

	Disarm()
	fr = NewReader(strings.NewReader("payload"))
	got, err := io.ReadAll(fr)
	if err != nil || string(got) != "payload" || fr.Err() != nil {
		t.Fatalf("disarmed reader: %q, %v, pinned %v", got, err, fr.Err())
	}
}
