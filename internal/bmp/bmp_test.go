package bmp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		w, h := 1+r.Intn(40), 1+r.Intn(40)
		im := New(w, h)
		r.Read(im.Pix)
		got, err := Decode(Encode(im))
		if err != nil || got.W != w || got.H != h {
			return false
		}
		for i := range im.Pix {
			if got.Pix[i] != im.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRowPadding(t *testing.T) {
	// Width 3 -> 9-byte rows padded to 12; a classic corruption source.
	im := New(3, 2)
	for i := range im.Pix {
		im.Pix[i] = byte(i * 11)
	}
	enc := Encode(im)
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if got.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel byte %d: %d != %d", i, got.Pix[i], im.Pix[i])
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("BM"),
		[]byte("PNG not bmp at all, padding padding padding padding padding"),
		Encode(New(2, 2))[:40], // truncated
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%d bytes) succeeded", len(c))
		}
	}
	// 8-bit BMPs are out of scope and must be rejected, not mangled.
	b := Encode(New(4, 4))
	b[28] = 8
	if _, err := Decode(b); err == nil {
		t.Error("8bpp accepted")
	}
}

func TestSniff(t *testing.T) {
	if !Sniff(Encode(New(1, 1))) || Sniff([]byte("no")) {
		t.Fatal("sniff misbehaves")
	}
}
