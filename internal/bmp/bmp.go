// Package bmp reads and writes the uncompressed 24-bit Windows BMP
// format. BMP is the "simple and universally-understood" output format
// the paper's image decoders emit (§5.1): VXA image decoders decode
// compressed pictures into BMP, and the image codecs' encoders accept
// BMP as their raw input.
package bmp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrFormat reports data that is not an uncompressed 24-bit BMP.
var ErrFormat = errors.New("bmp: not an uncompressed 24-bit BMP")

// Image is a decoded RGB image, rows top-down, 3 bytes per pixel (R,G,B).
type Image struct {
	W, H int
	Pix  []byte // len = W*H*3
}

// New allocates a black image.
func New(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, w*h*3)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) (r, g, b byte) {
	i := (y*im.W + x) * 3
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, r, g, b byte) {
	i := (y*im.W + x) * 3
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

const (
	fileHeaderSize = 14
	infoHeaderSize = 40
)

// rowStride returns the padded byte width of one BMP row.
func rowStride(w int) int { return (w*3 + 3) &^ 3 }

// Encode serializes the image as a bottom-up, 24-bit, BI_RGB BMP.
func Encode(im *Image) []byte {
	stride := rowStride(im.W)
	dataSize := stride * im.H
	total := fileHeaderSize + infoHeaderSize + dataSize
	b := make([]byte, total)
	le := binary.LittleEndian

	b[0], b[1] = 'B', 'M'
	le.PutUint32(b[2:], uint32(total))
	le.PutUint32(b[10:], fileHeaderSize+infoHeaderSize)

	le.PutUint32(b[14:], infoHeaderSize)
	le.PutUint32(b[18:], uint32(im.W))
	le.PutUint32(b[22:], uint32(im.H)) // positive height = bottom-up
	le.PutUint16(b[26:], 1)            // planes
	le.PutUint16(b[28:], 24)           // bpp
	le.PutUint32(b[30:], 0)            // BI_RGB
	le.PutUint32(b[34:], uint32(dataSize))

	off := fileHeaderSize + infoHeaderSize
	for y := 0; y < im.H; y++ {
		srcRow := im.H - 1 - y // bottom-up
		for x := 0; x < im.W; x++ {
			r, g, bl := im.At(x, srcRow)
			i := off + y*stride + x*3
			b[i], b[i+1], b[i+2] = bl, g, r // BGR order
		}
	}
	return b
}

// Decode parses an uncompressed 24-bit BMP (bottom-up or top-down).
func Decode(data []byte) (*Image, error) {
	if len(data) < fileHeaderSize+infoHeaderSize || data[0] != 'B' || data[1] != 'M' {
		return nil, ErrFormat
	}
	le := binary.LittleEndian
	pixOff := int(le.Uint32(data[10:]))
	hdrSize := int(le.Uint32(data[14:]))
	if hdrSize < infoHeaderSize {
		return nil, fmt.Errorf("%w: header size %d", ErrFormat, hdrSize)
	}
	w := int(int32(le.Uint32(data[18:])))
	h := int(int32(le.Uint32(data[22:])))
	bpp := int(le.Uint16(data[28:]))
	comp := le.Uint32(data[30:])
	if bpp != 24 || comp != 0 {
		return nil, fmt.Errorf("%w: bpp=%d compression=%d", ErrFormat, bpp, comp)
	}
	topDown := false
	if h < 0 {
		topDown = true
		h = -h
	}
	if w <= 0 || h <= 0 || w > 1<<16 || h > 1<<16 {
		return nil, fmt.Errorf("%w: bad dimensions %dx%d", ErrFormat, w, h)
	}
	stride := rowStride(w)
	if pixOff < fileHeaderSize+hdrSize || pixOff+stride*h > len(data) {
		return nil, fmt.Errorf("%w: truncated pixel data", ErrFormat)
	}
	im := New(w, h)
	for y := 0; y < h; y++ {
		src := y
		if !topDown {
			src = h - 1 - y
		}
		row := data[pixOff+src*stride:]
		for x := 0; x < w; x++ {
			im.Set(x, y, row[x*3+2], row[x*3+1], row[x*3])
		}
	}
	return im, nil
}

// Sniff reports whether data looks like a BMP file.
func Sniff(data []byte) bool {
	return len(data) >= 2 && data[0] == 'B' && data[1] == 'M'
}
