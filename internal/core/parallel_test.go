package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"vxa/internal/codec"
	"vxa/internal/elf32"
	"vxa/internal/vm"
)

// buildManyArchive writes an archive with many deflate-coded text
// entries plus the standard mixed-media set, under the given modes.
func buildManyArchive(t testing.TB, files int, mode func(i int) uint32) ([]byte, [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	var contents [][]byte
	for i := 0; i < files; i++ {
		data := bytes.Repeat([]byte(fmt.Sprintf("entry %03d of the parallel corpus | ", i)), 200+i)
		if err := w.AddFile(fmt.Sprintf("f/%03d.txt", i), data, mode(i)); err != nil {
			t.Fatal(err)
		}
		contents = append(contents, data)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), contents
}

// TestReaderConcurrentExtract hammers one shared Reader from many
// goroutines (run with -race): every combination of worker, entry and
// reuse policy must extract correctly through the shared pool.
func TestReaderConcurrentExtract(t *testing.T) {
	arch, contents := buildManyArchive(t, 12, func(i int) uint32 { return 0644 })
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := []Option{WithMode(AlwaysVXA), WithReuseVM(w%2 == 0)}
			for i := range r.Entries() {
				e := &r.Entries()[i]
				got, err := r.ExtractBytes(context.Background(), e, opts...)
				if err != nil {
					errc <- fmt.Errorf("worker %d %s: %w", w, e.Name, err)
					return
				}
				if !bytes.Equal(got, contents[i]) {
					errc <- fmt.Errorf("worker %d %s: content mismatch", w, e.Name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestExtractAllParallelMatchesSerial: the parallel pipeline returns the
// same bytes in the same order as serial extraction.
func TestExtractAllParallelMatchesSerial(t *testing.T) {
	arch, contents := buildManyArchive(t, 16, func(i int) uint32 { return 0644 })
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 4, 0} {
		results := r.ExtractAll(context.Background(), WithMode(AlwaysVXA), WithReuseVM(true), WithParallel(parallel))
		if len(results) != len(contents) {
			t.Fatalf("parallel=%d: %d results, want %d", parallel, len(results), len(contents))
		}
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("parallel=%d: %s: %v", parallel, res.Entry.Name, res.Err)
			}
			if res.Entry != &r.Entries()[i] {
				t.Fatalf("parallel=%d: result %d out of archive order", parallel, i)
			}
			if !bytes.Equal(res.Data, contents[i]) {
				t.Fatalf("parallel=%d: %s: content mismatch", parallel, res.Entry.Name)
			}
		}
	}
}

// TestExtractAllModeIsolation: entries alternate security modes, forcing
// the pool through its reset path in the middle of a parallel run; every
// entry must still decode exactly (a state leak would garble output or
// trip the CRC check).
func TestExtractAllModeIsolation(t *testing.T) {
	arch, contents := buildManyArchive(t, 16, func(i int) uint32 {
		if i%2 == 0 {
			return 0644
		}
		return 0600
	})
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	results := r.ExtractAll(context.Background(), WithMode(AlwaysVXA), WithReuseVM(true), WithParallel(4))
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Entry.Name, res.Err)
		}
		if !bytes.Equal(res.Data, contents[i]) {
			t.Fatalf("%s: content mismatch", res.Entry.Name)
		}
	}
	if st := r.PoolStats(); st.Snapshots != 1 {
		t.Fatalf("pool parsed the decoder %d times, want 1", st.Snapshots)
	}
}

// TestExtractToStreams: ExtractTo writes the same bytes Extract returns
// and reports the byte count; a corrupted payload surfaces as a CRC
// error.
func TestExtractToStreams(t *testing.T) {
	arch, inputs := buildArchive(t, WriterOptions{})
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithMode(AlwaysVXA), WithReuseVM(true)}
	for name, want := range inputs {
		e := findEntry(t, r, name)
		var out bytes.Buffer
		n, err := r.ExtractTo(context.Background(), e, &out, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != int64(out.Len()) || !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("%s: streamed %d bytes, want %d", name, n, len(want))
		}
	}

	// Corrupt the text entry's payload: the streaming CRC must catch it.
	bad := append([]byte(nil), arch...)
	e := findEntry(t, r, "docs/readme.txt")
	bad[int(e.LocalOffset())+30+len(e.Name)+20] ^= 0xFF
	r2, err := NewReader(bad)
	if err != nil {
		t.Fatal(err)
	}
	e2 := findEntry(t, r2, "docs/readme.txt")
	if _, err := r2.ExtractTo(context.Background(), e2, &bytes.Buffer{}, opts...); err == nil {
		t.Fatal("streamed extraction missed payload corruption")
	}
}

// TestParallelVerify: the fan-out integrity check agrees with the serial
// one, on both intact and corrupted archives.
func TestParallelVerify(t *testing.T) {
	arch, _ := buildManyArchive(t, 12, func(i int) uint32 { return 0644 })
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	if errs := r.Verify(context.Background(), WithReuseVM(true), WithParallel(4)); len(errs) != 0 {
		t.Fatalf("parallel verify of intact archive: %v", errs)
	}

	bad := append([]byte(nil), arch...)
	e := &r.Entries()[5]
	bad[int(e.LocalOffset())+30+len(e.Name)+20] ^= 0xFF
	r2, err := NewReader(bad)
	if err != nil {
		t.Fatal(err)
	}
	serial := r2.Verify(context.Background(), WithParallel(1))
	r3, _ := NewReader(bad)
	parallel := r3.Verify(context.Background(), WithReuseVM(true), WithParallel(4))
	if len(serial) != 1 || len(parallel) != 1 {
		t.Fatalf("serial found %d errors, parallel %d, want 1 each", len(serial), len(parallel))
	}
}

// TestStreamFuelAbsolute: a reused VM's budget is set per stream, not
// accumulated — the remaining fuel after identical streams is identical.
func TestStreamFuelAbsolute(t *testing.T) {
	c, ok := codec.ByName("deflate")
	if !ok {
		t.Fatal("deflate not registered")
	}
	elf, err := c.DecoderELF()
	if err != nil {
		t.Fatal(err)
	}
	v, err := elf32.NewVM(elf, vm.Config{MemSize: DefaultDecoderMemSize})
	if err != nil {
		t.Fatal(err)
	}
	payload := encodePayload(t, c, bytes.Repeat([]byte("fuel discipline "), 500))
	var remaining []int64
	for i := 0; i < 3; i++ {
		section := io.NewSectionReader(bytes.NewReader(payload), 0, int64(len(payload)))
		reusable, err := runOneStream(context.Background(), v, section, &bytes.Buffer{}, ExtractOptions{})
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if !reusable {
			t.Fatalf("stream %d: deflate decoder should park at the done gate", i)
		}
		remaining = append(remaining, v.FuelRemaining())
	}
	// Stream 1 may differ (lazy heap growth, cold caches); streams 2 and
	// 3 are identical work from identical state, so with an absolute
	// per-stream budget their remaining fuel matches exactly. With an
	// accumulating budget, each stream would start ~2^30 richer.
	if remaining[1] != remaining[2] {
		t.Fatalf("fuel accumulates across streams: remaining = %v", remaining)
	}
	budget := streamFuel(len(payload), vm.Config{})
	for i, rem := range remaining {
		if rem >= budget {
			t.Fatalf("stream %d: remaining %d >= budget %d (budget not consumed?)", i, rem, budget)
		}
	}
}

func encodePayload(t *testing.T, c *codec.Codec, raw []byte) []byte {
	t.Helper()
	var enc bytes.Buffer
	if err := c.Encode(&enc, raw); err != nil {
		t.Fatal(err)
	}
	return enc.Bytes()
}

// TestVerboseWriterSerialized: ExtractAll shares one Verbose writer
// across workers; decoder diagnostics (every entry here is corrupted, so
// every decoder dies with a message) must be serialized onto it. Run
// with -race: an unserialized writer fails the detector.
func TestVerboseWriterSerialized(t *testing.T) {
	arch, _ := buildManyArchive(t, 8, func(i int) uint32 { return 0644 })
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), arch...)
	for i := range r.Entries() {
		e := &r.Entries()[i]
		bad[int(e.LocalOffset())+30+len(e.Name)+20] ^= 0xFF
	}
	r2, err := NewReader(bad)
	if err != nil {
		t.Fatal(err)
	}
	var diag bytes.Buffer
	results := r2.ExtractAll(context.Background(), WithMode(AlwaysVXA), WithReuseVM(true), WithParallel(4), WithVerbose(&diag))
	for _, res := range results {
		if res.Err == nil {
			t.Fatalf("%s: corrupted entry decoded cleanly", res.Entry.Name)
		}
	}
	if diag.Len() == 0 {
		t.Fatal("no decoder diagnostics captured; the test exercised nothing")
	}
}
