package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"vxa/internal/vm"
	"vxa/internal/vmpool"

	_ "vxa/internal/codec/deflate"
)

// TestReaderSharedSnapCache is the fleet-wide amortization property the
// serving layer is built on: two Readers over two different archives
// that embed byte-identical decoders share ONE content-addressed cache
// line — one snapshot build, one translation, however many archives.
func TestReaderSharedSnapCache(t *testing.T) {
	build := func(name string, n int) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf, WriterOptions{})
		data := bytes.Repeat([]byte(fmt.Sprintf("archive %s stream ", name)), n)
		if err := w.AddFile(name, data, 0644); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	arch1, arch2 := build("one.txt", 300), build("two.txt", 400)

	cache := vmpool.NewSnapCache(vmpool.SnapCacheConfig{VM: vm.Config{MemSize: 16 << 20}})
	for i, arch := range [][]byte{arch1, arch2} {
		r, err := NewReader(arch)
		if err != nil {
			t.Fatal(err)
		}
		r.SetSnapCache(cache)
		for _, res := range r.ExtractAll(context.Background(), WithMode(AlwaysVXA)) {
			if res.Err != nil {
				t.Fatalf("archive %d: %s: %v", i, res.Entry.Name, res.Err)
			}
		}
		if errs := r.Verify(context.Background()); len(errs) != 0 {
			t.Fatalf("archive %d verify: %v", i, errs)
		}
	}

	s := cache.Stats()
	if s.Entries != 1 || s.Misses != 1 {
		t.Fatalf("cache stats = %+v: want both archives' deflate decoders on one line (1 entry, 1 miss)", s)
	}
	if s.Hits < 3 {
		t.Fatalf("hits = %d, want the 3 post-build streams served from the cache", s.Hits)
	}
	if s.VM.Steps == 0 {
		t.Fatal("aggregated engine counters never accumulated")
	}
}

// TestReaderSnapCacheIsolation: the §2.4 security-attribute isolation
// survives the content-addressed rewrite — entries with different modes
// never share a VM line even though they share a decoder snapshot line
// per mode.
func TestReaderSnapCacheIsolation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	secret := bytes.Repeat([]byte("secret data "), 200)
	public := bytes.Repeat([]byte("public data "), 200)
	if err := w.AddFile("secret.txt", secret, 0600); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFile("public.txt", public, 0644); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	cache := vmpool.NewSnapCache(vmpool.SnapCacheConfig{VM: vm.Config{MemSize: 16 << 20}})
	r.SetSnapCache(cache)
	for _, res := range r.ExtractAll(context.Background(), WithMode(AlwaysVXA)) {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Entry.Name, res.Err)
		}
	}
	// One decoder content, two security modes: two cache lines.
	if s := cache.Stats(); s.Entries != 2 || s.Misses != 2 {
		t.Fatalf("cache stats = %+v, want one line per security mode", s)
	}
}
