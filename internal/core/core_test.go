package core

import (
	"archive/zip"
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"math/rand"
	"os"
	"testing"

	"vxa/internal/bmp"
	"vxa/internal/wav"

	_ "vxa/internal/codec/adpcm"
	_ "vxa/internal/codec/bwt"
	_ "vxa/internal/codec/dctimg"
	_ "vxa/internal/codec/deflate"
	_ "vxa/internal/codec/haarimg"
	_ "vxa/internal/codec/lpc"
)

// testInputs builds a realistic file mix: text, a WAV, a BMP, a .gz, and
// incompressible noise.
func testInputs() map[string][]byte {
	text := bytes.Repeat([]byte("all of it is preserved for the long term. "), 900)

	snd := &wav.Sound{Channels: 1, SampleRate: 8000, Samples: make([]int16, 4000)}
	for i := range snd.Samples {
		snd.Samples[i] = int16((i%200)*300 - 30000)
	}

	im := bmp.New(40, 30)
	for y := 0; y < 30; y++ {
		for x := 0; x < 40; x++ {
			im.Set(x, y, byte(x*6), byte(y*8), byte(x+y))
		}
	}

	var gz bytes.Buffer
	gw := gzip.NewWriter(&gz)
	gw.Write(text[:2000])
	gw.Close()

	r := rand.New(rand.NewSource(1))
	noise := make([]byte, 5000)
	r.Read(noise)

	return map[string][]byte{
		"docs/readme.txt": text,
		"audio/tone.wav":  wav.Encode(snd),
		"img/card.bmp":    bmp.Encode(im),
		"logs/old.gz":     gz.Bytes(),
		"blob.bin":        noise,
	}
}

func buildArchive(t *testing.T, opts WriterOptions) ([]byte, map[string][]byte) {
	t.Helper()
	inputs := testInputs()
	var buf bytes.Buffer
	w := NewWriter(&buf, opts)
	for _, name := range []string{"docs/readme.txt", "audio/tone.wav", "img/card.bmp", "logs/old.gz", "blob.bin"} {
		if err := w.AddFile(name, inputs[name], 0644); err != nil {
			t.Fatalf("add %s: %v", name, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), inputs
}

func findEntry(t *testing.T, r *Reader, name string) *Entry {
	t.Helper()
	for i := range r.Entries() {
		if r.Entries()[i].Name == name {
			return &r.Entries()[i]
		}
	}
	t.Fatalf("entry %s not found", name)
	return nil
}

// TestArchiveRoundTripNative: write an archive, extract everything via
// the native fast path.
func TestArchiveRoundTripNative(t *testing.T) {
	arch, inputs := buildArchive(t, WriterOptions{})
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries()) != 5 {
		t.Fatalf("entries = %d, want 5", len(r.Entries()))
	}
	for name, want := range inputs {
		e := findEntry(t, r, name)
		got, err := r.ExtractBytes(context.Background(), e, WithMode(NativeFirst))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: round trip mismatch (%d vs %d bytes)", name, len(got), len(want))
		}
	}
}

// TestArchiveRoundTripVXA: the same extraction, forced through the
// archived decoders in the VM.
func TestArchiveRoundTripVXA(t *testing.T) {
	arch, inputs := buildArchive(t, WriterOptions{})
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range inputs {
		e := findEntry(t, r, name)
		got, err := r.ExtractBytes(context.Background(), e, WithMode(AlwaysVXA))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: VXA round trip mismatch", name)
		}
	}
}

// TestCodecSelection checks the §2.2 writer flow classifications.
func TestCodecSelection(t *testing.T) {
	arch, _ := buildArchive(t, WriterOptions{})
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]struct {
		codec string
		pre   bool
	}{
		"docs/readme.txt": {"deflate", false}, // general-purpose
		"audio/tone.wav":  {"lpc", false},     // lossless media codec
		"logs/old.gz":     {"gzip", true},     // redec: stored pre-compressed
		"blob.bin":        {"", false},        // incompressible: stored
	}
	for name, want := range cases {
		e := findEntry(t, r, name)
		if e.Codec != want.codec || e.PreCompressed != want.pre {
			t.Errorf("%s: codec=%q pre=%v, want %q/%v", name, e.Codec, e.PreCompressed, want.codec, want.pre)
		}
	}
	// Without AllowLossy the BMP goes through the general-purpose codec.
	if e := findEntry(t, r, "img/card.bmp"); e.Codec == "dct" || e.Codec == "haar" {
		t.Errorf("lossless-only archive used lossy codec %q", e.Codec)
	}
}

// TestLossyOptIn: with AllowLossy, BMP input is compressed by a lossy
// image codec and extraction yields a BMP (not the original bytes).
func TestLossyOptIn(t *testing.T) {
	arch, _ := buildArchive(t, WriterOptions{AllowLossy: true})
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	e := findEntry(t, r, "img/card.bmp")
	if e.Codec != "dct" && e.Codec != "haar" {
		t.Fatalf("lossy archive used codec %q for BMP", e.Codec)
	}
	// CRC covers the original, which lossy coding cannot reproduce, so
	// Extract reports a CRC mismatch unless we accept the decoded form.
	got, err := r.ExtractBytes(context.Background(), e, WithMode(NativeFirst))
	if err == nil {
		// If it succeeded, the codec was lossless on this input, which
		// for DCT at default quality would be surprising.
		t.Fatalf("unexpectedly exact lossy round trip (%d bytes)", len(got))
	}
}

// TestDecodeAllUnpacksPreCompressed: DecodeAll turns the .gz entry into
// its fully decoded contents (§2.3 "forced decode").
func TestDecodeAllUnpacksPreCompressed(t *testing.T) {
	arch, inputs := buildArchive(t, WriterOptions{})
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	e := findEntry(t, r, "logs/old.gz")
	got, err := r.ExtractBytes(context.Background(), e, WithMode(AlwaysVXA), WithDecodeAll(true))
	if err != nil {
		t.Fatal(err)
	}
	gr, _ := gzip.NewReader(bytes.NewReader(inputs["logs/old.gz"]))
	want, _ := io.ReadAll(gr)
	if !bytes.Equal(got, want) {
		t.Fatalf("forced decode mismatch: %d vs %d bytes", len(got), len(want))
	}
	// Without DecodeAll the compressed form comes back.
	got2, err := r.ExtractBytes(context.Background(), e, WithMode(AlwaysVXA))
	if err != nil || !bytes.Equal(got2, inputs["logs/old.gz"]) {
		t.Fatalf("default extraction should keep the compressed form (err=%v)", err)
	}
}

// TestVerify runs the always-VXA integrity check, then corrupts the
// archive and checks the damage is reported.
func TestVerify(t *testing.T) {
	arch, _ := buildArchive(t, WriterOptions{})
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	if errs := r.Verify(context.Background()); len(errs) != 0 {
		t.Fatalf("verify of intact archive failed: %v", errs)
	}

	// Corrupt one payload byte of the text entry (not its headers).
	bad := append([]byte(nil), arch...)
	e := findEntry(t, r, "docs/readme.txt")
	pos := int(entryOffset(t, r, e)) + 30 + len(e.Name) + 20 // inside payload
	bad[pos] ^= 0xFF
	r2, err := NewReader(bad)
	if err != nil {
		t.Fatal(err)
	}
	if errs := r2.Verify(context.Background()); len(errs) == 0 {
		t.Fatal("verify missed payload corruption")
	}
}

func entryOffset(t *testing.T, r *Reader, e *Entry) uint32 {
	t.Helper()
	return e.LocalOffset()
}

// TestVMReusePolicy: with ReuseVM, files sharing a codec and security
// attributes share one VM; an attribute change forces re-initialization.
func TestVMReusePolicy(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	text := bytes.Repeat([]byte("reuse me "), 500)
	if err := w.AddFile("public1.txt", text, 0644); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFile("public2.txt", text, 0644); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFile("secret.key", text, 0600); err != nil { // attribute change
		t.Fatal(err)
	}
	if err := w.AddFile("public3.txt", text, 0644); err != nil { // change back
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{WithMode(AlwaysVXA), WithReuseVM(true)}
	for i := range r.Entries() {
		e := &r.Entries()[i]
		got, err := r.ExtractBytes(context.Background(), e, opts...)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if !bytes.Equal(got, text) {
			t.Fatalf("%s: mismatch", e.Name)
		}
	}
	// public1 -> init (1); public2 -> reuse; secret -> reinit (2);
	// public3 -> reinit (3).
	if r.ReinitCount != 3 {
		t.Fatalf("ReinitCount = %d, want 3 (reuse only within equal attributes)", r.ReinitCount)
	}

	// Without reuse, every file decodes in a fresh VM.
	r2, _ := NewReader(buf.Bytes())
	for i := range r2.Entries() {
		e := &r2.Entries()[i]
		if _, err := r2.ExtractBytes(context.Background(), e, WithMode(AlwaysVXA)); err != nil {
			t.Fatal(err)
		}
	}
	if r2.ReinitCount != 4 {
		t.Fatalf("no-reuse ReinitCount = %d, want 4", r2.ReinitCount)
	}
}

// TestZipBackwardCompat: archive/zip (standing in for an old UnZIP)
// must list every real file, see no decoder pseudo-files, and extract
// the traditionally-tagged entries.
func TestZipBackwardCompat(t *testing.T) {
	arch, inputs := buildArchive(t, WriterOptions{})
	zr, err := zip.NewReader(bytes.NewReader(arch), int64(len(arch)))
	if err != nil {
		t.Fatalf("archive/zip rejects vxZIP output: %v", err)
	}
	if len(zr.File) != 5 {
		t.Fatalf("old tool sees %d files, want 5 (pseudo-files must be hidden)", len(zr.File))
	}
	for _, f := range zr.File {
		if f.Name == "" {
			t.Fatal("old tool sees an anonymous decoder pseudo-file")
		}
		switch f.Method {
		case zip.Store, zip.Deflate:
			rc, err := f.Open()
			if err != nil {
				t.Fatalf("%s: old tool cannot open: %v", f.Name, err)
			}
			got, err := io.ReadAll(rc)
			rc.Close()
			if err != nil {
				t.Fatalf("%s: old tool cannot read: %v", f.Name, err)
			}
			want := inputs[f.Name]
			if f.Name == "logs/old.gz" || f.Name == "blob.bin" || f.Name == "docs/readme.txt" {
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: old tool extracted wrong bytes", f.Name)
				}
			}
		default:
			// VXA-method entries are listed but not extractable — exactly
			// the paper's compatibility contract.
		}
	}
}

// TestOpenFileLazy: the v2 open path — an archive on disk opens through
// lazy section-at-a-time parsing, extracts identically to the in-memory
// path, streams through Extract, and Close releases the file.
func TestOpenFileLazy(t *testing.T) {
	arch, inputs := buildArchive(t, WriterOptions{})
	path := t.TempDir() + "/archive.zip"
	if err := os.WriteFile(path, arch, 0644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries()) != 5 {
		t.Fatalf("entries = %d, want 5", len(r.Entries()))
	}
	// Entries() must be stable: same backing array on every call.
	if &r.Entries()[0] != &r.Entries()[0] {
		t.Fatal("Entries() re-copies per call")
	}
	for name, want := range inputs {
		e := findEntry(t, r, name)
		if e.Size() != int64(len(want)) {
			t.Fatalf("%s: Size() = %d, want %d", name, e.Size(), len(want))
		}
		stream, err := r.Extract(context.Background(), e, WithMode(AlwaysVXA), WithReuseVM(true))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := io.ReadAll(stream)
		stream.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: streamed round trip mismatch", name)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDecoderDedup: many files, one decoder copy.
func TestDecoderDedup(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	for i := 0; i < 20; i++ {
		name := string(rune('a'+i)) + ".txt"
		if err := w.AddFile(name, bytes.Repeat([]byte("dedup "), 300), 0644); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.DecoderCount() != 1 {
		t.Fatalf("decoders embedded = %d, want 1", w.DecoderCount())
	}
}
