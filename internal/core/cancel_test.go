package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"vxa/internal/vm"
	"vxa/internal/vmpool"

	_ "vxa/internal/codec/deflate"
)

// cancelArchive builds an archive whose single deflate entry takes long
// enough to decode in the VM that a mid-stream cancellation reliably
// lands while the decoder is running.
func cancelArchive(t testing.TB) ([]byte, int) {
	t.Helper()
	data := bytes.Repeat([]byte("cancel me mid-stream, return my VM to the pool. "), 6000)
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	if err := w.AddFile("big.txt", data, 0644); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), len(data)
}

// TestCancelMidDecodeReturnsVMToPool is the v2 cancellation contract,
// run under -race in CI: canceling a context mid-decode stops the
// pooled decoder VM cooperatively, the VM is reset to the pristine
// snapshot and returned (Outstanding drops to 0, the reset is counted),
// and the next extraction succeeds immediately on the same pool.
func TestCancelMidDecodeReturnsVMToPool(t *testing.T) {
	arch, rawLen := cancelArchive(t)
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	e := &r.Entries()[0]
	opts := []Option{WithMode(AlwaysVXA), WithReuseVM(true)}

	ctx, cancel := context.WithCancel(context.Background())
	stream, err := r.Extract(ctx, e, opts...)
	if err != nil {
		t.Fatal(err)
	}
	// Read one chunk so the decode is demonstrably in flight, then pull
	// the rug out.
	if _, err := io.ReadFull(stream, make([]byte, 4096)); err != nil {
		t.Fatalf("first read: %v", err)
	}
	cancel()
	_, err = io.Copy(io.Discard, stream)
	if err == nil {
		t.Fatal("canceled extraction drained cleanly; want ErrCanceled")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("stream error = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stream error %v does not unwrap to context.Canceled", err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}

	// The lease must be back: no outstanding leases, and the canceled
	// VM re-entered the pool through the pristine-reset path.
	if n := r.PoolOutstanding(); n != 0 {
		t.Fatalf("PoolOutstanding = %d after canceled stream, want 0", n)
	}
	if st := r.PoolStats(); st.Resets == 0 {
		t.Fatalf("pool stats %+v: canceled VM was not reset back into the pool", st)
	}

	// The next Get over the same pool succeeds and decodes cleanly.
	got, err := r.ExtractBytes(context.Background(), e, opts...)
	if err != nil {
		t.Fatalf("extraction after cancel: %v", err)
	}
	if len(got) != rawLen {
		t.Fatalf("post-cancel decode returned %d bytes, want %d", len(got), rawLen)
	}
}

// TestStreamCloseAbandonsDecode: closing the Extract stream without
// canceling the context has the same effect — Close blocks until the VM
// is reset and returned.
func TestStreamCloseAbandonsDecode(t *testing.T) {
	arch, rawLen := cancelArchive(t)
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	e := &r.Entries()[0]
	opts := []Option{WithMode(AlwaysVXA), WithReuseVM(true)}

	stream, err := r.Extract(context.Background(), e, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(stream, make([]byte, 1024)); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	if n := r.PoolOutstanding(); n != 0 {
		t.Fatalf("PoolOutstanding = %d after Close, want 0", n)
	}
	got, err := r.ExtractBytes(context.Background(), e, opts...)
	if err != nil || len(got) != rawLen {
		t.Fatalf("extraction after Close: %d bytes, err %v", len(got), err)
	}
}

// TestCancelWithoutReading: a context canceled while the consumer never
// reads must still free the VM — the watcher severs the pipe so the
// guest cannot stay blocked in a write.
func TestCancelWithoutReading(t *testing.T) {
	arch, _ := cancelArchive(t)
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	e := &r.Entries()[0]

	ctx, cancel := context.WithCancel(context.Background())
	stream, err := r.Extract(ctx, e, WithMode(AlwaysVXA), WithReuseVM(true))
	if err != nil {
		t.Fatal(err)
	}
	// Let the decoder get going (and likely block on the unread pipe),
	// then cancel without a single Read.
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	if n := r.PoolOutstanding(); n != 0 {
		t.Fatalf("PoolOutstanding = %d, want 0", n)
	}
}

// TestExtractAllCancellation: canceling mid-ExtractAll reports
// ErrCanceled for the entries that never decoded, and releases every
// pooled VM.
func TestExtractAllCancellation(t *testing.T) {
	arch, _ := buildManyArchive(t, 12, func(i int) uint32 { return 0644 })
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: every entry must report ErrCanceled
	results := r.ExtractAll(ctx, WithMode(AlwaysVXA), WithReuseVM(true), WithParallel(4))
	for _, res := range results {
		if !errors.Is(res.Err, ErrCanceled) {
			t.Fatalf("%s: err = %v, want ErrCanceled", res.Entry.Name, res.Err)
		}
	}
	if n := r.PoolOutstanding(); n != 0 {
		t.Fatalf("PoolOutstanding = %d, want 0", n)
	}
}

// TestVerifyIgnoresLimit: WithLimit is an extraction policy, not an
// integrity property — an intact archive must verify clean however
// small the limit, on stored and codec entries alike.
func TestVerifyIgnoresLimit(t *testing.T) {
	arch, _ := cancelArchive(t)
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	if errs := r.Verify(context.Background(), WithLimit(64)); len(errs) != 0 {
		t.Fatalf("intact archive failed verify under WithLimit: %v", errs)
	}
}

// TestExtractDecodedFormHonorsLimit: the decoded-form accessor is a
// decode surface like any other; the bomb guard applies.
func TestExtractDecodedFormHonorsLimit(t *testing.T) {
	arch, _ := cancelArchive(t)
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	e := &r.Entries()[0]
	_, err = r.ExtractDecodedForm(context.Background(), e, WithMode(AlwaysVXA), WithLimit(1<<10))
	if !errors.Is(err, ErrOutputLimit) {
		t.Fatalf("err = %v, want ErrOutputLimit", err)
	}
}

// TestPoolOutstandingWithSnapCache: the outstanding-lease view covers
// the shared-cache path, where the backing pool is not the Reader's.
func TestPoolOutstandingWithSnapCache(t *testing.T) {
	arch, rawLen := cancelArchive(t)
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	r.SetSnapCache(vmpool.NewSnapCache(vmpool.SnapCacheConfig{VM: vm.Config{MemSize: DefaultDecoderMemSize}}))
	e := &r.Entries()[0]

	ctx, cancel := context.WithCancel(context.Background())
	stream, err := r.Extract(ctx, e, WithMode(AlwaysVXA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(stream, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if n := r.PoolOutstanding(); n != 1 {
		t.Fatalf("PoolOutstanding mid-decode = %d, want 1 (cache-path lease must be visible)", n)
	}
	cancel()
	stream.Close()
	if n := r.PoolOutstanding(); n != 0 {
		t.Fatalf("PoolOutstanding after cancel = %d, want 0", n)
	}
	got, err := r.ExtractBytes(context.Background(), e, WithMode(AlwaysVXA))
	if err != nil || len(got) != rawLen {
		t.Fatalf("extraction after cancel: %d bytes, err %v", len(got), err)
	}
}

// TestWithLimitStopsDecode: WithLimit aborts an oversized decode with
// ErrOutputLimit and the partial output never exceeds the cap.
func TestWithLimitStopsDecode(t *testing.T) {
	arch, rawLen := cancelArchive(t)
	r, err := NewReader(arch)
	if err != nil {
		t.Fatal(err)
	}
	e := &r.Entries()[0]
	// Both decode paths must honour the cap: the sandboxed decoder via
	// the output writer, and the native fast path via its bounded
	// buffer (the bomb guard must not depend on the mode).
	for _, mode := range []ExtractMode{AlwaysVXA, NativeFirst} {
		var out bytes.Buffer
		n, err := r.ExtractTo(context.Background(), e, &out, WithMode(mode), WithLimit(1<<12))
		if !errors.Is(err, ErrOutputLimit) {
			t.Fatalf("mode %v: err = %v, want ErrOutputLimit", mode, err)
		}
		if n > 1<<12 || rawLen <= 1<<12 {
			t.Fatalf("mode %v: limit did not bound output: wrote %d of %d raw bytes under a %d cap", mode, n, rawLen, 1<<12)
		}
	}
}
