package core

import (
	"errors"
	"fmt"
	"io"

	"vxa/internal/codec"
	"vxa/internal/fault"
	"vxa/internal/vm"
	"vxa/internal/vmpool"
	"vxa/internal/zipfile"
)

// ErrorKind classifies why an archive operation failed. It is the
// load-bearing half of the v2 error taxonomy: callers branch on the
// kind (HTTP status mapping, CLI exit codes, retry policy) instead of
// string-matching error text.
type ErrorKind int

// Error kinds.
const (
	// KindBadArchive: the container is malformed or its contents fail
	// their integrity checks (bad ZIP structure, truncated payload, CRC
	// mismatch).
	KindBadArchive ErrorKind = iota + 1
	// KindUnknownCodec: the entry names a codec with no usable decoder —
	// no archived decoder pseudo-file and no registered native codec.
	KindUnknownCodec
	// KindDecoderTrap: the archived decoder misbehaved in the sandbox —
	// it trapped (memory fault, illegal instruction, ...) or exited
	// nonzero. The archive may be fine; the decoder is not.
	KindDecoderTrap
	// KindFuelExhausted: the decoder exceeded its per-stream instruction
	// budget (a looping or adversarial decoder, or a budget set too low
	// via WithFuel).
	KindFuelExhausted
	// KindOutputLimit: the decoded output exceeded the WithLimit bound.
	KindOutputLimit
	// KindCanceled: the caller's context was canceled or expired before
	// the operation completed. The underlying context error
	// (context.Canceled or context.DeadlineExceeded) is reachable via
	// errors.Is/Unwrap.
	KindCanceled
	// KindIO: a host-side I/O failure — the archive's backing store or
	// the snapshot build infrastructure failed, not the client's archive
	// or decoder. Retryable; surfaces as a server error, never a client
	// one.
	KindIO
	// KindUnavailable: the service could not take the request right now
	// (VM lease machinery failed, load shed). Retryable after backoff.
	KindUnavailable
	// KindQuarantined: the entry's decoder is under circuit-breaker
	// quarantine after repeated failures; requests fail fast without
	// leasing a VM until a half-open probe succeeds. The wrapped
	// *vmpool.QuarantineError carries the retry-after hint.
	KindQuarantined
	// KindDeadline: the wall-clock watchdog killed the decoder stream —
	// it exceeded its real-time budget even though instruction fuel
	// remained (a decoder blocking or running pathologically slowly).
	KindDeadline
)

// String names the kind for diagnostics.
func (k ErrorKind) String() string {
	switch k {
	case KindBadArchive:
		return "bad archive"
	case KindUnknownCodec:
		return "unknown codec"
	case KindDecoderTrap:
		return "decoder trap"
	case KindFuelExhausted:
		return "fuel exhausted"
	case KindOutputLimit:
		return "output limit exceeded"
	case KindCanceled:
		return "canceled"
	case KindIO:
		return "host I/O failure"
	case KindUnavailable:
		return "service unavailable"
	case KindQuarantined:
		return "decoder quarantined"
	case KindDeadline:
		return "watchdog deadline exceeded"
	}
	return fmt.Sprintf("error kind %d", int(k))
}

// Error is the typed error every v2 archive operation returns: a kind
// the caller can branch on, the entry it concerns (when known), and the
// underlying cause. Match kinds with errors.Is against the exported
// sentinels (errors.Is(err, ErrDecoderTrap)) or retrieve the full value
// with errors.As:
//
//	var ve *core.Error
//	if errors.As(err, &ve) && ve.Kind == core.KindFuelExhausted { ... }
//
// Cancellation errors also satisfy errors.Is(err, context.Canceled) /
// context.DeadlineExceeded through the wrapped cause.
type Error struct {
	Kind  ErrorKind
	Entry string // archive entry name, when the failure concerns one
	Trap  error  // underlying cause: *vm.Trap, *codec.DecodeError, parse or context error
}

// Error implements error.
func (e *Error) Error() string {
	s := "vxa: " + e.Kind.String()
	if e.Entry != "" {
		s += ": " + e.Entry
	}
	if e.Trap != nil {
		s += ": " + e.Trap.Error()
	}
	return s
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Trap }

// Is matches sentinel errors by kind: a target *Error with no cause and
// no entry (the exported sentinels) matches any error of the same kind;
// a target carrying an entry name additionally requires that entry.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	return t.Kind == e.Kind && t.Trap == nil && (t.Entry == "" || t.Entry == e.Entry)
}

// Sentinel values for errors.Is. Each matches every *Error of its kind,
// whatever entry or cause it carries.
var (
	ErrBadArchive    = &Error{Kind: KindBadArchive}
	ErrUnknownCodec  = &Error{Kind: KindUnknownCodec}
	ErrDecoderTrap   = &Error{Kind: KindDecoderTrap}
	ErrFuelExhausted = &Error{Kind: KindFuelExhausted}
	ErrOutputLimit   = &Error{Kind: KindOutputLimit}
	ErrCanceled      = &Error{Kind: KindCanceled}
	ErrIO            = &Error{Kind: KindIO}
	ErrUnavailable   = &Error{Kind: KindUnavailable}
	ErrQuarantined   = &Error{Kind: KindQuarantined}
	ErrDeadline      = &Error{Kind: KindDeadline}
)

// badArchive wraps a container-level failure. Only genuine format
// errors become KindBadArchive; a real I/O failure from the underlying
// io.ReaderAt (disk, network filesystem) is not the archive's fault and
// passes through unclassified, so it surfaces as a server/internal
// error instead of blaming the client's archive.
func badArchive(entry string, err error) error {
	if err == nil {
		return nil
	}
	if !errors.Is(err, zipfile.ErrFormat) {
		return err
	}
	return &Error{Kind: KindBadArchive, Entry: entry, Trap: err}
}

// corruptf reports failed integrity checks (CRC mismatches) as
// KindBadArchive with a formatted cause.
func corruptf(entry, format string, args ...any) error {
	return &Error{Kind: KindBadArchive, Entry: entry, Trap: fmt.Errorf(format, args...)}
}

// ClassifyDecode is the exported form of classifyDecode for serving
// layers that drive VM streams directly (vxad's raw /v1/decode path)
// and need the same error taxonomy the archive paths get.
func ClassifyDecode(entry string, err error, ctxErr error) error {
	return classifyDecode(entry, err, ctxErr)
}

// classifyDecode maps a decode-path failure onto the taxonomy. ctxErr is
// the caller's context error at classification time: a context that died
// mid-stream provokes secondary failures (the guest sees EIO on its
// output pipe and aborts), all of which must surface as KindCanceled,
// not as the decoder trap they masquerade as.
func classifyDecode(entry string, err error, ctxErr error) error {
	if err == nil {
		return nil
	}
	var ve *Error
	if errors.As(err, &ve) {
		return err // already classified
	}
	if ce := (*vm.CanceledError)(nil); errors.As(err, &ce) {
		return &Error{Kind: KindCanceled, Entry: entry, Trap: ce}
	}
	if we := (*vm.WatchdogError)(nil); errors.As(err, &we) {
		return &Error{Kind: KindDeadline, Entry: entry, Trap: err}
	}
	if errors.Is(err, vmpool.ErrDecoderQuarantined) {
		return &Error{Kind: KindQuarantined, Entry: entry, Trap: err}
	}
	if fe := (*fault.Error)(nil); errors.As(err, &fe) {
		// Injected faults classify exactly as the real failure they
		// simulate would: lease machinery → unavailable, a severed client
		// write → canceled, archive reads and snapshot builds → host I/O.
		switch fe.Point {
		case fault.LeaseAcquire:
			return &Error{Kind: KindUnavailable, Entry: entry, Trap: err}
		case fault.ResponseWrite:
			return &Error{Kind: KindCanceled, Entry: entry, Trap: err}
		default:
			return &Error{Kind: KindIO, Entry: entry, Trap: err}
		}
	}
	if ctxErr != nil {
		return &Error{Kind: KindCanceled, Entry: entry, Trap: fmt.Errorf("%w (decode aborted: %v)", ctxErr, err)}
	}
	if le := (*limitError)(nil); errors.As(err, &le) {
		return &Error{Kind: KindOutputLimit, Entry: entry, Trap: le}
	}
	var de *codec.DecodeError
	if errors.As(err, &de) {
		var trap *vm.Trap
		if errors.As(err, &trap) && trap.Kind == vm.TrapFuel {
			return &Error{Kind: KindFuelExhausted, Entry: entry, Trap: de}
		}
		return &Error{Kind: KindDecoderTrap, Entry: entry, Trap: de}
	}
	if errors.Is(err, zipfile.ErrFormat) {
		return &Error{Kind: KindBadArchive, Entry: entry, Trap: err}
	}
	return err
}

// limitError marks a WithLimit overflow on the decoded-output writer.
type limitError struct {
	limit int64
}

func (e *limitError) Error() string {
	return fmt.Sprintf("decoded output exceeds the %d-byte limit", e.limit)
}

// limitWriter enforces WithLimit: the write that would cross the bound
// fails, which the guest sees as a virtual EIO on stdout. The resulting
// decoder abort is re-classified as KindOutputLimit by firstError /
// classifyDecode through the recorded err.
type limitWriter struct {
	w         io.Writer
	remaining int64
	limit     int64
	err       error
}

func (l *limitWriter) Write(p []byte) (int, error) {
	if int64(len(p)) > l.remaining {
		if l.err == nil {
			l.err = &limitError{limit: l.limit}
		}
		// Pass through what fits so the count reflects delivered bytes.
		// A real failure on that boundary write outranks the limit: a
		// full disk or dead client must not be misreported as
		// ErrOutputLimit.
		n := int(l.remaining)
		if n > 0 {
			m, werr := l.w.Write(p[:n])
			l.remaining -= int64(m)
			if werr != nil {
				return m, werr
			}
			return m, l.err
		}
		return 0, l.err
	}
	n, err := l.w.Write(p)
	l.remaining -= int64(n)
	return n, err
}
