// Package core implements the paper's primary contribution: the VXA
// archive writer and reader (vxZIP/vxUnZIP, §2.2-2.4 and §3).
//
// The writer selects a codec per input file: inputs already compressed
// in a recognized format are stored as-is with a decoder attached
// (recognizer-decoder behaviour, method 0 so older tools extract the
// compressed form); recognized raw media is compressed with a
// specialized codec (lossy ones only when the operator allows); and
// everything else is compressed with a general-purpose codec under its
// traditional ZIP method tag. One copy of each decoder is embedded per
// archive, amortized over all files that use it.
//
// The reader extracts through fast native decoders by default, falls
// back to (or is forced onto) the archived VXA decoders running in the
// sandboxed virtual machine, and always uses the archived decoders for
// integrity verification — the property that guarantees the archive
// remains decodable when native decoders have disappeared (§2.3).
package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"vxa/internal/codec"
	"vxa/internal/vm"
	"vxa/internal/zipfile"
)

// DefaultGeneralCodec is the general-purpose codec used for unrecognized
// input (the archiver's "default compressor", §2.2).
const DefaultGeneralCodec = "deflate"

// WriterOptions configure archive creation.
type WriterOptions struct {
	// AllowLossy permits lossy media codecs for raw media inputs; by
	// default only lossless automatic compression is applied (§2.2).
	AllowLossy bool
	// GeneralCodec names the general-purpose codec for unrecognized
	// input. Empty selects DefaultGeneralCodec.
	GeneralCodec string
	// StoreIncompressible stores inputs that the general codec cannot
	// shrink. Enabled by default behaviour of ZIP tools; kept true here.
	StoreIncompressible bool
}

// Writer creates VXA archives.
type Writer struct {
	zw       *zipfile.Writer
	opts     WriterOptions
	decoders map[string]uint32 // codec -> pseudo-file offset (dedup, §2.2)
	closed   bool
}

// NewWriter begins an archive.
func NewWriter(w io.Writer, opts WriterOptions) *Writer {
	if opts.GeneralCodec == "" {
		opts.GeneralCodec = DefaultGeneralCodec
	}
	opts.StoreIncompressible = true
	return &Writer{zw: zipfile.NewWriter(w), opts: opts, decoders: make(map[string]uint32)}
}

// decoderOffset embeds the codec's decoder once and returns its offset.
func (w *Writer) decoderOffset(c *codec.Codec) (uint32, error) {
	if off, ok := w.decoders[c.Name]; ok {
		return off, nil
	}
	elf, err := c.DecoderELF()
	if err != nil {
		return 0, err
	}
	off, err := w.zw.AddDecoder(elf)
	if err != nil {
		return 0, err
	}
	w.decoders[c.Name] = off
	return off, nil
}

// pickCodec classifies one input per the §2.2 writer flow.
func (w *Writer) pickCodec(data []byte) (c *codec.Codec, preCompressed bool, err error) {
	// 1. Already compressed in a recognized format?
	for _, cand := range codec.All() {
		if cand.Recognize != nil && cand.Recognize(data) {
			return cand, true, nil
		}
	}
	// 2. Raw media a specialized codec can compress?
	for _, cand := range codec.All() {
		if cand.Kind != codec.MediaCodec || cand.CanEncode == nil {
			continue
		}
		if cand.Lossy && !w.opts.AllowLossy {
			continue
		}
		if cand.CanEncode(data) {
			return cand, false, nil
		}
	}
	// 3. General-purpose default.
	gen, ok := codec.ByName(w.opts.GeneralCodec)
	if !ok {
		return nil, false, fmt.Errorf("core: general codec %q not registered", w.opts.GeneralCodec)
	}
	return gen, false, nil
}

// AddFile archives one file. mode carries the Unix permission bits used
// as the security attributes for VM-reuse decisions on extraction.
func (w *Writer) AddFile(name string, data []byte, mode uint32) error {
	c, pre, err := w.pickCodec(data)
	if err != nil {
		return err
	}
	decOff, err := w.decoderOffset(c)
	if err != nil {
		return err
	}
	hdr := zipfile.FileHeader{
		Name:  name,
		CRC32: crc32.ChecksumIEEE(data),
		USize: uint32(len(data)),
		Mode:  mode,
		VXA: &zipfile.VXAHeader{
			Codec:         c.Name,
			DecoderOffset: decOff,
			PreCompressed: pre,
		},
	}
	if pre {
		// Store the already-compressed input unchanged, method 0: older
		// tools extract it in its original compressed form (§3.1).
		hdr.Method = zipfile.MethodStore
		return w.zw.AddFile(hdr, data)
	}
	var enc bytes.Buffer
	if err := c.Encode(&enc, data); err != nil {
		return fmt.Errorf("core: %s encode: %w", c.Name, err)
	}
	if w.opts.StoreIncompressible && enc.Len() >= len(data) && c.Kind == codec.GeneralPurpose {
		// Store raw, but keep the decoder-free store tag. No VXA header
		// needed: stored data is its own "simplest form".
		hdr.VXA = nil
		hdr.Method = zipfile.MethodStore
		return w.zw.AddFile(hdr, data)
	}
	hdr.Method = zipfile.MethodVXA
	if c.ZipMethod != 0 {
		hdr.Method = c.ZipMethod
	}
	return w.zw.AddFile(hdr, enc.Bytes())
}

// Close finalizes the archive.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.zw.Close()
}

// DecoderCount reports how many distinct decoders were embedded.
func (w *Writer) DecoderCount() int { return len(w.decoders) }

// ---------- reader ----------

// ExtractMode selects the decode path (§2.3).
type ExtractMode int

// Extraction modes.
const (
	// NativeFirst uses a fast native decoder when one is available,
	// falling back to the archived VXA decoder.
	NativeFirst ExtractMode = iota
	// AlwaysVXA always runs the archived decoder in the VM — the safest
	// operational model, and the one integrity checks mandate.
	AlwaysVXA
)

// ExtractOptions configure extraction.
type ExtractOptions struct {
	Mode ExtractMode
	// DecodeAll forces decoding of pre-compressed files to their
	// uncompressed form instead of extracting them still compressed.
	DecodeAll bool
	// VM configures decoder virtual machines; zero means defaults.
	VM vm.Config
	// ReuseVM keeps one VM per decoder alive across files with equal
	// security attributes (§2.4); a change of attributes or a disabled
	// flag re-initializes from the pristine decoder image.
	ReuseVM bool
	// Verbose streams decoder stderr diagnostics to this writer.
	Verbose io.Writer
}

// Entry is one archived file as seen by the reader.
type Entry struct {
	Name          string
	Method        uint16
	Codec         string // empty if the entry has no VXA header
	PreCompressed bool
	USize, CSize  uint32
	Mode          uint32
	hdr           *zipfile.FileHeader
}

// Reader extracts VXA archives.
type Reader struct {
	zr      *zipfile.Reader
	entries []Entry

	// VM reuse state (§2.4).
	vms         map[string]*reusableVM
	ReinitCount int // statistics: how many times a pristine VM was loaded
}

type reusableVM struct {
	v    *vm.VM
	mode uint32 // security attributes the VM last touched
}

// NewReader opens an archive held in memory.
func NewReader(data []byte) (*Reader, error) {
	zr, err := zipfile.NewReader(data)
	if err != nil {
		return nil, err
	}
	r := &Reader{zr: zr, vms: make(map[string]*reusableVM)}
	for i := range zr.Files {
		f := &zr.Files[i]
		e := Entry{
			Name: f.Name, Method: f.Method, USize: f.USize, CSize: f.CSize,
			Mode: f.Mode, hdr: f,
		}
		if f.VXA != nil {
			e.Codec = f.VXA.Codec
			e.PreCompressed = f.VXA.PreCompressed
		}
		r.entries = append(r.entries, e)
	}
	return r, nil
}

// Entries lists the archive contents (central directory order; decoder
// pseudo-files are invisible, as in the paper).
func (r *Reader) Entries() []Entry { return r.entries }

// ErrNoDecoder reports an entry that cannot be decoded by any available
// path.
var ErrNoDecoder = errors.New("core: no decoder available for entry")

// Extract decodes one entry per the options and verifies its CRC-32.
func (r *Reader) Extract(e *Entry, opts ExtractOptions) ([]byte, error) {
	payload, err := r.zr.Payload(e.hdr)
	if err != nil {
		return nil, err
	}

	// Stored entries: either plain stored files or pre-compressed media.
	if e.Method == zipfile.MethodStore && (!e.PreCompressed || !opts.DecodeAll) {
		if crc32.ChecksumIEEE(payload) != e.hdr.CRC32 {
			return nil, fmt.Errorf("core: %s: stored data CRC mismatch", e.Name)
		}
		return append([]byte(nil), payload...), nil
	}

	out, err := r.decodeStream(e, payload, opts)
	if err != nil {
		return nil, err
	}
	// The archive CRC covers the original input. For pre-compressed
	// entries being force-decoded, the CRC covers the compressed form
	// (which we already have), so check that instead.
	if e.PreCompressed {
		if crc32.ChecksumIEEE(payload) != e.hdr.CRC32 {
			return nil, fmt.Errorf("core: %s: stored data CRC mismatch", e.Name)
		}
		return out, nil
	}
	if crc32.ChecksumIEEE(out) != e.hdr.CRC32 {
		return nil, fmt.Errorf("core: %s: decoded data CRC mismatch", e.Name)
	}
	return out, nil
}

func (r *Reader) decodeStream(e *Entry, payload []byte, opts ExtractOptions) ([]byte, error) {
	// Native fast path (§2.3): method tag or codec name identifies a
	// well-known algorithm with a native decoder.
	if opts.Mode == NativeFirst {
		if c, ok := codec.ByName(e.Codec); ok && c.Decode != nil {
			var out bytes.Buffer
			if err := c.Decode(&out, bytes.NewReader(payload)); err == nil {
				return out.Bytes(), nil
			}
			// Native decoder failed: fall back to the archived decoder,
			// exactly the contingency §2.3 describes.
		}
	}
	if e.hdr.VXA == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoDecoder, e.Name)
	}
	elf, err := r.zr.Decoder(e.hdr.VXA.DecoderOffset)
	if err != nil {
		return nil, err
	}
	return r.runArchivedDecoder(e, elf, payload, opts)
}

// DefaultDecoderMemSize is the guest address space the reader gives
// archived decoders unless ExtractOptions.VM says otherwise. Media
// decoders hold whole image/audio planes, so this is larger than the
// bare VM default (the paper's sandbox allows up to 1 GiB).
const DefaultDecoderMemSize = 64 << 20

// runArchivedDecoder executes the archived VXA decoder over the payload,
// honouring the VM reuse policy.
func (r *Reader) runArchivedDecoder(e *Entry, elf, payload []byte, opts ExtractOptions) ([]byte, error) {
	if opts.VM.MemSize == 0 {
		opts.VM.MemSize = DefaultDecoderMemSize
	}
	if !opts.ReuseVM {
		r.ReinitCount++
		return codec.RunDecoderELF(e.Codec, elf, payload, opts.VM)
	}
	ru := r.vms[e.Codec]
	// Re-initialize with a pristine decoder image whenever the security
	// attributes change (§2.4), so a malicious decoder cannot leak data
	// from a protected file into a public one.
	if ru == nil || ru.mode != e.Mode {
		v, err := newDecoderVM(elf, opts)
		if err != nil {
			return nil, err
		}
		r.ReinitCount++
		ru = &reusableVM{v: v, mode: e.Mode}
		r.vms[e.Codec] = ru
	}
	out, err := runOneStream(ru.v, payload, opts)
	if err != nil {
		// A trapped or exited VM is not reusable.
		delete(r.vms, e.Codec)
		return nil, &codec.DecodeError{Codec: e.Codec, Trap: err}
	}
	return out, nil
}

func newDecoderVM(elf []byte, opts ExtractOptions) (*vm.VM, error) {
	v, err := newVMFromELF(elf, opts.VM)
	if err != nil {
		return nil, err
	}
	v.Stderr = opts.Verbose
	return v, nil
}

// runOneStream feeds one payload to a (possibly resumed) decoder VM and
// collects the decoded stream, expecting the done protocol.
func runOneStream(v *vm.VM, payload []byte, opts ExtractOptions) ([]byte, error) {
	var out bytes.Buffer
	v.Stdin = bytes.NewReader(payload)
	v.Stdout = &out
	v.AddFuel(int64(len(payload))*4096 + 1<<30)
	st, err := v.Run()
	if err != nil {
		return nil, err
	}
	if st == vm.StatusExit && v.ExitCode() != 0 {
		return nil, fmt.Errorf("decoder exit status %d", v.ExitCode())
	}
	if st == vm.StatusExit {
		return nil, errors.New("decoder exited instead of signalling done; not reusable")
	}
	return out.Bytes(), nil
}

// Verify runs the §2.3 integrity check over every entry: each file is
// decoded with its archived VXA decoder (never a native one) and checked
// against its CRC. It returns one error per failing entry.
func (r *Reader) Verify(opts ExtractOptions) []error {
	opts.Mode = AlwaysVXA
	opts.DecodeAll = false
	var errs []error
	for i := range r.entries {
		e := &r.entries[i]
		if e.Codec == "" {
			// Stored entries: CRC only.
			if _, err := r.Extract(e, opts); err != nil {
				errs = append(errs, err)
			}
			continue
		}
		payload, err := r.zr.Payload(e.hdr)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		elf, err := r.zr.Decoder(e.hdr.VXA.DecoderOffset)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.Name, err))
			continue
		}
		out, err := r.runArchivedDecoder(e, elf, payload, opts)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.Name, err))
			continue
		}
		if e.PreCompressed {
			if crc32.ChecksumIEEE(payload) != e.hdr.CRC32 {
				errs = append(errs, fmt.Errorf("%s: stored CRC mismatch", e.Name))
			}
			continue // decoded form has no recorded CRC; decoding itself is the check
		}
		if crc32.ChecksumIEEE(out) != e.hdr.CRC32 {
			errs = append(errs, fmt.Errorf("%s: decoded CRC mismatch", e.Name))
		}
	}
	return errs
}

// LocalOffset returns the entry's local file header offset within the
// archive (exposed for tooling and tests).
func (e *Entry) LocalOffset() uint32 { return e.hdr.Offset }

// ExtractDecodedForm decodes an entry's stream and returns the decoder
// output without checking it against the archive CRC. The CRC covers the
// original input, which a lossy codec's decoder does not reproduce
// bit-exactly; this is the accessor for the decoded form of lossy
// entries (the BMP/WAV the archived decoder produces).
func (r *Reader) ExtractDecodedForm(e *Entry, opts ExtractOptions) ([]byte, error) {
	payload, err := r.zr.Payload(e.hdr)
	if err != nil {
		return nil, err
	}
	if e.hdr.VXA == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoDecoder, e.Name)
	}
	return r.decodeStream(e, payload, opts)
}
