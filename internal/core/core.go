// Package core implements the paper's primary contribution: the VXA
// archive writer and reader (vxZIP/vxUnZIP, §2.2-2.4 and §3).
//
// The writer selects a codec per input file: inputs already compressed
// in a recognized format are stored as-is with a decoder attached
// (recognizer-decoder behaviour, method 0 so older tools extract the
// compressed form); recognized raw media is compressed with a
// specialized codec (lossy ones only when the operator allows); and
// everything else is compressed with a general-purpose codec under its
// traditional ZIP method tag. One copy of each decoder is embedded per
// archive, amortized over all files that use it.
//
// The reader extracts through fast native decoders by default, falls
// back to (or is forced onto) the archived VXA decoders running in the
// sandboxed virtual machine, and always uses the archived decoders for
// integrity verification — the property that guarantees the archive
// remains decodable when native decoders have disappeared (§2.3).
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"vxa/internal/codec"
	"vxa/internal/fault"
	"vxa/internal/obs"
	"vxa/internal/vm"
	"vxa/internal/vmpool"
	"vxa/internal/zipfile"
)

// DefaultGeneralCodec is the general-purpose codec used for unrecognized
// input (the archiver's "default compressor", §2.2).
const DefaultGeneralCodec = "deflate"

// WriterOptions configure archive creation.
type WriterOptions struct {
	// AllowLossy permits lossy media codecs for raw media inputs; by
	// default only lossless automatic compression is applied (§2.2).
	AllowLossy bool
	// GeneralCodec names the general-purpose codec for unrecognized
	// input. Empty selects DefaultGeneralCodec.
	GeneralCodec string
	// StoreIncompressible stores inputs that the general codec cannot
	// shrink. Enabled by default behaviour of ZIP tools; kept true here.
	StoreIncompressible bool
}

// Writer creates VXA archives.
type Writer struct {
	zw       *zipfile.Writer
	opts     WriterOptions
	decoders map[string]uint32 // codec -> pseudo-file offset (dedup, §2.2)
	closed   bool
}

// NewWriter begins an archive.
func NewWriter(w io.Writer, opts WriterOptions) *Writer {
	if opts.GeneralCodec == "" {
		opts.GeneralCodec = DefaultGeneralCodec
	}
	opts.StoreIncompressible = true
	return &Writer{zw: zipfile.NewWriter(w), opts: opts, decoders: make(map[string]uint32)}
}

// decoderOffset embeds the codec's decoder once and returns its offset.
func (w *Writer) decoderOffset(c *codec.Codec) (uint32, error) {
	if off, ok := w.decoders[c.Name]; ok {
		return off, nil
	}
	elf, err := c.DecoderELF()
	if err != nil {
		return 0, err
	}
	off, err := w.zw.AddDecoder(elf)
	if err != nil {
		return 0, err
	}
	w.decoders[c.Name] = off
	return off, nil
}

// pickCodec classifies one input per the §2.2 writer flow.
func (w *Writer) pickCodec(data []byte) (c *codec.Codec, preCompressed bool, err error) {
	// 1. Already compressed in a recognized format?
	for _, cand := range codec.All() {
		if cand.Recognize != nil && cand.Recognize(data) {
			return cand, true, nil
		}
	}
	// 2. Raw media a specialized codec can compress?
	for _, cand := range codec.All() {
		if cand.Kind != codec.MediaCodec || cand.CanEncode == nil {
			continue
		}
		if cand.Lossy && !w.opts.AllowLossy {
			continue
		}
		if cand.CanEncode(data) {
			return cand, false, nil
		}
	}
	// 3. General-purpose default.
	gen, ok := codec.ByName(w.opts.GeneralCodec)
	if !ok {
		return nil, false, fmt.Errorf("core: general codec %q not registered", w.opts.GeneralCodec)
	}
	return gen, false, nil
}

// AddFile archives one file. mode carries the Unix permission bits used
// as the security attributes for VM-reuse decisions on extraction.
func (w *Writer) AddFile(name string, data []byte, mode uint32) error {
	c, pre, err := w.pickCodec(data)
	if err != nil {
		return err
	}
	decOff, err := w.decoderOffset(c)
	if err != nil {
		return err
	}
	hdr := zipfile.FileHeader{
		Name:  name,
		CRC32: crc32.ChecksumIEEE(data),
		USize: uint32(len(data)),
		Mode:  mode,
		VXA: &zipfile.VXAHeader{
			Codec:         c.Name,
			DecoderOffset: decOff,
			PreCompressed: pre,
		},
	}
	if pre {
		// Store the already-compressed input unchanged, method 0: older
		// tools extract it in its original compressed form (§3.1).
		hdr.Method = zipfile.MethodStore
		return w.zw.AddFile(hdr, data)
	}
	var enc bytes.Buffer
	if err := c.Encode(&enc, data); err != nil {
		return fmt.Errorf("core: %s encode: %w", c.Name, err)
	}
	if w.opts.StoreIncompressible && enc.Len() >= len(data) && c.Kind == codec.GeneralPurpose {
		// Store raw, but keep the decoder-free store tag. No VXA header
		// needed: stored data is its own "simplest form".
		hdr.VXA = nil
		hdr.Method = zipfile.MethodStore
		return w.zw.AddFile(hdr, data)
	}
	hdr.Method = zipfile.MethodVXA
	if c.ZipMethod != 0 {
		hdr.Method = c.ZipMethod
	}
	return w.zw.AddFile(hdr, enc.Bytes())
}

// Close finalizes the archive.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.zw.Close()
}

// DecoderCount reports how many distinct decoders were embedded.
func (w *Writer) DecoderCount() int { return len(w.decoders) }

// ---------- reader ----------

// ExtractMode selects the decode path (§2.3).
type ExtractMode int

// Extraction modes.
const (
	// NativeFirst uses a fast native decoder when one is available,
	// falling back to the archived VXA decoder.
	NativeFirst ExtractMode = iota
	// AlwaysVXA always runs the archived decoder in the VM — the safest
	// operational model, and the one integrity checks mandate.
	AlwaysVXA
)

// ExtractOptions is the assembled form of the functional options every
// extraction method accepts. Callers normally never build one directly;
// they pass WithMode/WithFuel/... values instead.
type ExtractOptions struct {
	Mode ExtractMode
	// DecodeAll forces decoding of pre-compressed files to their
	// uncompressed form instead of extracting them still compressed.
	DecodeAll bool
	// VM configures decoder virtual machines; zero means defaults. When
	// VM.Fuel is set it becomes the absolute per-stream instruction
	// budget; a stream never inherits leftovers from earlier streams.
	// The first extraction that touches the VM pool fixes its
	// configuration; later calls with a different VM config keep the
	// pool's original one.
	VM vm.Config
	// ReuseVM routes archived decoders through the reader's VM pool:
	// files with equal security attributes resume a parked VM (§2.4),
	// while an attribute change or a fresh worker re-initializes from
	// the pristine decoder snapshot instead of re-parsing the ELF.
	ReuseVM bool
	// Verbose streams decoder stderr diagnostics to this writer.
	// ExtractAll and Verify serialize concurrent writes to it; callers
	// running their own goroutines over Extract must pass a
	// concurrency-safe writer.
	Verbose io.Writer
	// Parallel bounds the worker count ExtractAll and Verify fan out
	// to: 0 selects GOMAXPROCS, 1 forces serial operation. Single-entry
	// calls (Extract, ExtractTo) are unaffected.
	Parallel int
	// Limit caps the decoded output size in bytes; crossing it aborts
	// the decode with ErrOutputLimit. 0 means unlimited. The guard
	// against decompression bombs when serving untrusted archives.
	Limit int64
}

// Option configures one extraction call.
type Option func(*ExtractOptions)

// WithMode selects the decode path: NativeFirst (default) or AlwaysVXA.
func WithMode(m ExtractMode) Option { return func(o *ExtractOptions) { o.Mode = m } }

// WithFuel sets the absolute per-stream guest instruction budget,
// overriding the payload-scaled default. Exceeding it surfaces as
// ErrFuelExhausted.
func WithFuel(n int64) Option { return func(o *ExtractOptions) { o.VM.Fuel = n } }

// WithParallel bounds the worker count ExtractAll and Verify fan out
// to: 0 (default) selects GOMAXPROCS, 1 forces serial operation.
func WithParallel(n int) Option { return func(o *ExtractOptions) { o.Parallel = n } }

// WithLimit caps the decoded output size in bytes; crossing it aborts
// the decode with ErrOutputLimit. 0 (default) means unlimited.
func WithLimit(n int64) Option { return func(o *ExtractOptions) { o.Limit = n } }

// WithDecodeAll forces pre-compressed entries to decode to their raw
// form instead of extracting still-compressed.
func WithDecodeAll(on bool) Option { return func(o *ExtractOptions) { o.DecodeAll = on } }

// WithReuseVM routes archived decoders through the Reader's VM pool
// (§2.4 reuse policy) instead of a fresh VM per stream.
func WithReuseVM(on bool) Option { return func(o *ExtractOptions) { o.ReuseVM = on } }

// WithVerbose streams decoder stderr diagnostics to w.
func WithVerbose(w io.Writer) Option { return func(o *ExtractOptions) { o.Verbose = w } }

// WithVM sets the decoder VM configuration (memory size, cache policy,
// ablation knobs). WithFuel after WithVM still overrides the budget.
func WithVM(cfg vm.Config) Option { return func(o *ExtractOptions) { o.VM = cfg } }

// WithWallBudget arms the per-stream wall-clock watchdog: a decoder
// stream still running after d of real time is killed at its next
// block boundary and surfaces as ErrDeadline, independent of how much
// instruction fuel remains. 0 (default) disarms the watchdog.
func WithWallBudget(d time.Duration) Option {
	return func(o *ExtractOptions) { o.VM.WallBudget = d }
}

// WithMemSize sets the guest address space given to each decoder VM in
// bytes (default DefaultDecoderMemSize, capped at the 1 GiB sandbox
// limit) — the public-surface knob for memory-hungry decoders that does
// not require naming the internal vm.Config.
func WithMemSize(n uint32) Option { return func(o *ExtractOptions) { o.VM.MemSize = n } }

// buildOpts assembles an option list into the struct form.
func buildOpts(opts []Option) ExtractOptions {
	var o ExtractOptions
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Entry is one archived file as seen by the reader. All fields needed
// by extraction tooling are exported or have accessors; nothing in the
// streaming path requires reaching into Reader internals.
type Entry struct {
	Name          string
	Method        uint16
	Codec         string // empty if the entry has no VXA header
	PreCompressed bool
	USize, CSize  uint32
	Mode          uint32
	hdr           *zipfile.FileHeader
}

// Size returns the entry's original (decoded) size in bytes.
func (e *Entry) Size() int64 { return int64(e.USize) }

// CompressedSize returns the entry's stored (compressed) size in bytes.
func (e *Entry) CompressedSize() int64 { return int64(e.CSize) }

// CodecName returns the archived decoder's codec tag, or "" for plain
// stored entries that need no decoder.
func (e *Entry) CodecName() string { return e.Codec }

// Reader extracts VXA archives. It is safe for concurrent use: any
// number of goroutines may call Extract/ExtractTo/ExtractAll/Verify on
// one Reader, sharing its decoder VM pool.
type Reader struct {
	zr      *zipfile.Reader
	entries []Entry
	closer  io.Closer // set by OpenFile; closed by Close

	// VM reuse state (§2.4): a pool of decoder VMs keyed by
	// (codec, security mode), created on first use. When snapCache is
	// set it takes precedence: decoders are leased from the shared
	// content-addressed snapshot cache instead, keyed by the SHA-256 of
	// their ELF bytes (hashes memoized per decoder offset).
	mu         sync.Mutex
	pool       *vmpool.Pool
	snapCache  *vmpool.SnapCache
	cacheScope uint64 // this Reader's trust scope within the shared cache
	decHashes  map[uint32][32]byte
	inFlight   int // decoder-VM leases this Reader holds (private pool or shared cache)

	// ReinitCount is a statistic: how many times a pristine decoder
	// image was loaded (cold ELF run, snapshot build or snapshot reset).
	// It is consistent once extraction calls have returned; do not read
	// it while extractions are in flight.
	ReinitCount int
}

// Open opens an archive from any random-access source. Parsing is lazy
// and section-at-a-time (end record, central directory, then per-access
// local headers and payloads), so archives far larger than memory open
// cheaply and only the entries actually extracted are ever read.
func Open(ra io.ReaderAt, size int64) (*Reader, error) {
	zr, err := zipfile.NewReaderAt(ra, size)
	if err != nil {
		return nil, badArchive("", err)
	}
	r := &Reader{zr: zr}
	for i := range zr.Files {
		f := &zr.Files[i]
		e := Entry{
			Name: f.Name, Method: f.Method, USize: f.USize, CSize: f.CSize,
			Mode: f.Mode, hdr: f,
		}
		if f.VXA != nil {
			e.Codec = f.VXA.Codec
			e.PreCompressed = f.VXA.PreCompressed
		}
		r.entries = append(r.entries, e)
	}
	return r, nil
}

// OpenFile opens an archive on disk. Close releases the file.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := Open(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader opens an archive held in memory — a thin adapter over Open
// for callers that already have the whole container as bytes.
func NewReader(data []byte) (*Reader, error) {
	return Open(bytes.NewReader(data), int64(len(data)))
}

// Close drops the Reader's idle decoder VMs and releases the underlying
// file when the Reader came from OpenFile. The Reader must not be used
// after Close; streams returned by Extract must be closed first.
func (r *Reader) Close() error {
	r.DrainVMs()
	r.mu.Lock()
	c := r.closer
	r.closer = nil
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// Entries lists the archive contents (central directory order; decoder
// pseudo-files are invisible, as in the paper). The returned slice is
// stable: every call returns the same backing array with no per-call
// copying, so iterating Entries() in a loop costs nothing. Callers must
// treat it as read-only and may keep *Entry pointers into it for the
// Reader's lifetime.
func (r *Reader) Entries() []Entry { return r.entries }

// ExtractBytes decodes one entry per the options, verifies its CRC-32,
// and returns the decoded bytes — the convenience form of Extract for
// entries known to fit in memory comfortably.
func (r *Reader) ExtractBytes(ctx context.Context, e *Entry, opts ...Option) ([]byte, error) {
	var out bytes.Buffer
	if _, err := r.extractTo(ctx, e, &out, buildOpts(opts)); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Extract decodes one entry and returns a stream over the decoded
// bytes. The decode runs concurrently on a (possibly pooled) decoder
// VM and is pulled incrementally by Read — output never has to be
// resident. The stream fails with the decode's typed error; a CRC
// mismatch surfaces as ErrBadArchive on the final Read.
//
// Close stops an unfinished decode: the context handed to the decoder
// is canceled, the VM cooperatively halts at its next block boundary,
// is rewound to the pristine decoder snapshot and returned to the pool.
// Close blocks until the VM is back; canceling ctx has the same effect
// on an in-flight decode.
func (r *Reader) Extract(ctx context.Context, e *Entry, opts ...Option) (io.ReadCloser, error) {
	o := buildOpts(opts)
	// Parse the container section synchronously so a malformed entry
	// fails here, not on the first Read; the decode goroutine reuses the
	// validated section.
	payload, err := r.zr.PayloadSection(e.hdr)
	if err != nil {
		return nil, badArchive(e.Name, err)
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &extractStream{cancel: cancel, done: make(chan struct{})}
	s.pr, s.pw = io.Pipe()
	go func() {
		defer close(s.done)
		_, err := r.extractSection(sctx, e, payload, s.pw, o)
		s.pw.CloseWithError(err) // nil closes with io.EOF
	}()
	// Cancellation watcher: a decoder blocked writing into the pipe
	// cannot reach its cooperative cancellation check, so a canceled
	// context also severs the pipe, unblocking the guest with a virtual
	// EIO. Closing the write side makes pending and future Reads return
	// the typed cancellation error. Without this, canceling ctx while
	// not reading would strand the VM until the stream was closed.
	go func() {
		select {
		case <-sctx.Done():
			s.pw.CloseWithError(&Error{Kind: KindCanceled, Entry: e.Name, Trap: sctx.Err()})
		case <-s.done:
		}
	}()
	return s, nil
}

// extractStream is the io.ReadCloser Extract hands out.
type extractStream struct {
	pr     *io.PipeReader
	pw     *io.PipeWriter
	cancel context.CancelFunc
	done   chan struct{}
}

// Read pulls decoded bytes from the in-flight decoder.
func (s *extractStream) Read(p []byte) (int, error) { return s.pr.Read(p) }

// Close abandons the stream and waits for the decoder VM to be reset
// and returned to its pool. Closing an already-drained stream is a
// cheap no-op. Close always returns nil.
func (s *extractStream) Close() error {
	s.cancel()
	// Unblock a decoder mid-Write immediately; the cooperative cancel
	// catches compute-bound guests at the next block boundary.
	s.pr.CloseWithError(ErrCanceled)
	<-s.done
	return nil
}

// ExtractTo decodes one entry, streaming the output to w, and returns
// the number of bytes written. The CRC-32 is checked incrementally as
// the decoder produces output; on a CRC or decode error, partial output
// may already have been written to w (callers extracting to files should
// remove the file on error). ctx cancels the decode cooperatively; the
// error then matches ErrCanceled.
func (r *Reader) ExtractTo(ctx context.Context, e *Entry, w io.Writer, opts ...Option) (int64, error) {
	return r.extractTo(ctx, e, w, buildOpts(opts))
}

// extractTo is the assembled-options core of ExtractTo.
func (r *Reader) extractTo(ctx context.Context, e *Entry, w io.Writer, opts ExtractOptions) (int64, error) {
	payload, err := r.zr.PayloadSection(e.hdr)
	if err != nil {
		return 0, badArchive(e.Name, err)
	}
	return r.extractSection(ctx, e, payload, w, opts)
}

// extractSection decodes one entry from its already-parsed payload
// section.
func (r *Reader) extractSection(ctx context.Context, e *Entry, payload *io.SectionReader, w io.Writer, opts ExtractOptions) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, &Error{Kind: KindCanceled, Entry: e.Name, Trap: err}
	}
	sp := obs.SpanFrom(ctx)
	if opts.Limit > 0 {
		w = &limitWriter{w: w, remaining: opts.Limit, limit: opts.Limit}
	}

	// Stored entries: either plain stored files or pre-compressed media.
	// One pass over the backing source — the payload is CRC-summed as it
	// is delivered, exactly like decoded output, so a lazily-opened
	// archive reads each stored byte once. On a mismatch, partial output
	// has been written (same contract as decoded entries: callers
	// extracting to files remove them on error).
	if e.Method == zipfile.MethodStore && (!e.PreCompressed || !opts.DecodeAll) {
		crc := crc32.NewIEEE()
		cw := &countWriter{w: io.MultiWriter(crc, w), sp: sp}
		n, err := io.Copy(cw, &ctxReader{ctx: ctx, r: payload})
		if err != nil {
			return n, classifyDecode(e.Name, err, ctx.Err())
		}
		if crc.Sum32() != e.hdr.CRC32 {
			return n, corruptf(e.Name, "stored data CRC mismatch")
		}
		return n, nil
	}

	// The archive CRC covers the original input. For pre-compressed
	// entries being force-decoded, the CRC covers the compressed form
	// (still at hand), so check that up front; decoding itself is the
	// integrity check for the decoded form.
	if e.PreCompressed {
		if err := r.checkPayloadCRC(ctx, e, payload); err != nil {
			return 0, err
		}
		cw := &countWriter{w: w, sp: sp}
		if err := r.decodeStream(ctx, e, payload, opts, cw); err != nil {
			return cw.n, classifyDecode(e.Name, cw.firstError(e, err), ctx.Err())
		}
		return cw.n, nil
	}

	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(crc, w), sp: sp}
	if err := r.decodeStream(ctx, e, payload, opts, cw); err != nil {
		return cw.n, classifyDecode(e.Name, cw.firstError(e, err), ctx.Err())
	}
	if crc.Sum32() != e.hdr.CRC32 {
		return cw.n, corruptf(e.Name, "decoded data CRC mismatch")
	}
	return cw.n, nil
}

// checkPayloadCRC streams the stored payload through a CRC-32 and
// rewinds it, reporting a mismatch as ErrBadArchive. The pass is
// ctx-aware: host-side reads over a multi-gigabyte stored payload honor
// cancellation just like guest decodes do.
func (r *Reader) checkPayloadCRC(ctx context.Context, e *Entry, payload *io.SectionReader) error {
	crc := crc32.NewIEEE()
	if _, err := io.Copy(crc, &ctxReader{ctx: ctx, r: payload}); err != nil {
		if ctx.Err() != nil {
			return &Error{Kind: KindCanceled, Entry: e.Name, Trap: ctx.Err()}
		}
		return badArchive(e.Name, err)
	}
	if crc.Sum32() != e.hdr.CRC32 {
		return corruptf(e.Name, "stored data CRC mismatch")
	}
	_, err := payload.Seek(0, io.SeekStart)
	return badArchive(e.Name, err)
}

// ctxReader makes a host-side payload pass cancelable: each Read (every
// 32 KiB under io.Copy) first checks the context, so canceling stops a
// long disk scan promptly even though no guest is involved.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, &Error{Kind: KindCanceled, Trap: err}
	}
	return c.r.Read(p)
}

// serializeWriter wraps w so concurrent workers can share it as decoder
// stderr; nil passes through.
func serializeWriter(w io.Writer) io.Writer {
	if w == nil {
		return nil
	}
	return &lockedWriter{w: w}
}

type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// countWriter counts bytes passed through to w and remembers the first
// write error, so a host-side failure (full disk, closed pipe) can be
// reported as itself rather than as the decoder abort it provokes.
// When the request is traced (sp non-nil), time spent inside Write —
// host-side output delivery plus the incremental CRC riding in w's
// MultiWriter — is attributed to the span's write stage.
type countWriter struct {
	w   io.Writer
	sp  *obs.Span
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	var start time.Time
	if c.sp != nil {
		start = time.Now()
	}
	n, err := c.w.Write(p)
	if c.sp != nil {
		c.sp.Add(obs.StageWrite, time.Since(start))
	}
	c.n += int64(n)
	if err != nil && c.err == nil {
		c.err = err
	}
	return n, err
}

// firstError prefers the host write error over the decode error it
// triggered: the guest sees only a virtual EIO and aborts with its own
// message, but the user needs the real cause.
func (c *countWriter) firstError(e *Entry, decodeErr error) error {
	if c.err != nil {
		return fmt.Errorf("core: %s: write: %w", e.Name, c.err)
	}
	return decodeErr
}

// maxNativeBuffer bounds the buffered native-decode attempt: entries
// whose decoded output would exceed it take the archived-decoder path,
// which streams. Sized to the default decoder address space — a decoded
// form the sandbox could hold, the host can afford to buffer once.
const maxNativeBuffer = int64(DefaultDecoderMemSize)

func (r *Reader) decodeStream(ctx context.Context, e *Entry, payload *io.SectionReader, opts ExtractOptions, out io.Writer) error {
	// Native fast path (§2.3): method tag or codec name identifies a
	// well-known algorithm with a native decoder. The attempt is
	// buffered so a mid-stream native failure leaves out untouched for
	// the archived-decoder fallback — which is why it only runs for
	// entries whose claimed decoded size fits maxNativeBuffer; larger
	// entries go straight to the archived decoder, preserving the
	// streaming contract (output never resident). The buffer itself is
	// capped too, so a lying size field cannot balloon it: overflowing
	// the cap counts as a native failure and falls back, while crossing
	// an explicit WithLimit is final.
	if opts.Mode == NativeFirst && int64(e.USize) <= maxNativeBuffer {
		if c, ok := codec.ByName(e.Codec); ok && c.Decode != nil {
			bound := maxNativeBuffer
			if opts.Limit > 0 && opts.Limit < bound {
				bound = opts.Limit
			}
			var buf bytes.Buffer
			lw := &limitWriter{w: &buf, remaining: bound, limit: bound}
			if err := c.Decode(lw, payload); err == nil {
				_, err := out.Write(buf.Bytes())
				return err
			}
			if lw.err != nil && opts.Limit > 0 && bound == opts.Limit {
				return lw.err
			}
			// Native decoder failed (or outgrew the buffer cap): fall
			// back to the archived decoder, exactly the contingency
			// §2.3 describes.
			if _, err := payload.Seek(0, io.SeekStart); err != nil {
				return badArchive(e.Name, err)
			}
		}
	}
	if e.hdr.VXA == nil {
		return &Error{Kind: KindUnknownCodec, Entry: e.Name}
	}
	return r.runArchivedDecoder(ctx, e, payload, opts, out)
}

// DefaultDecoderMemSize is the guest address space the reader gives
// archived decoders unless ExtractOptions.VM says otherwise. Media
// decoders hold whole image/audio planes, so this is larger than the
// bare VM default (the paper's sandbox allows up to 1 GiB).
const DefaultDecoderMemSize = 64 << 20

// vmPool returns the reader's decoder pool, creating it on first use.
// Like the VM configuration, the idle cap is fixed by the first call:
// it is sized to the larger of that call's worker count and GOMAXPROCS,
// so a Reader whose first pooled extraction is its most parallel one
// never churns VMs through the discard path. A later call with a larger
// Parallel keeps the original cap.
func (r *Reader) vmPool(cfg vm.Config, parallel int) *vmpool.Pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pool == nil {
		idle := runtime.GOMAXPROCS(0)
		if parallel > idle {
			idle = parallel
		}
		r.pool = vmpool.New(vmpool.Options{VM: cfg, MaxIdlePerKey: idle})
	}
	return r.pool
}

// SetSnapCache routes every archived-decoder run through a shared
// content-addressed snapshot cache: decoders are identified by the
// SHA-256 of their ELF bytes, so Readers over different archives that
// embed the same decoder share one pristine snapshot, one warm
// translation cache and one VM pool. It takes precedence over the
// Reader's private pool (and over ExtractOptions.ReuseVM). The cache's
// VM configuration wins over ExtractOptions.VM for everything except
// the per-stream fuel budget. Call it before the first extraction.
//
// The Reader takes its own trust scope within the cache: pristine
// snapshots and translation caches are shared with every other Reader,
// but a decoder VM parked with this Reader's stream residue is never
// resumed verbatim for another Reader — it is rewound to the pristine
// snapshot first.
func (r *Reader) SetSnapCache(c *vmpool.SnapCache) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snapCache = c
	if r.cacheScope == 0 {
		r.cacheScope = vmpool.NextScope()
	}
}

// decoderHash returns the content address of the decoder pseudo-file at
// the given archive offset, fetching and hashing it once per Reader.
func (r *Reader) decoderHash(off uint32, elf func() ([]byte, error)) ([32]byte, error) {
	r.mu.Lock()
	h, ok := r.decHashes[off]
	r.mu.Unlock()
	if ok {
		return h, nil
	}
	elfBytes, err := elf()
	if err != nil {
		return [32]byte{}, err
	}
	h = vmpool.HashELF(elfBytes)
	r.mu.Lock()
	if r.decHashes == nil {
		r.decHashes = make(map[uint32][32]byte)
	}
	r.decHashes[off] = h
	r.mu.Unlock()
	return h, nil
}

// DecoderHash returns the content address (SHA-256 of the ELF bytes)
// of the entry's archived decoder, fetching and hashing it once per
// Reader. ok is false for entries with no archived decoder (plain
// stored files). Serving layers use it to consult the shared cache
// before admission: whether the decoder's snapshot is already resident
// (warm vs cold path) and whether its circuit breaker is open.
func (r *Reader) DecoderHash(e *Entry) (hash [32]byte, ok bool, err error) {
	if e.hdr.VXA == nil {
		return [32]byte{}, false, nil
	}
	off := e.hdr.VXA.DecoderOffset
	h, err := r.decoderHash(off, func() ([]byte, error) { return r.zr.Decoder(off) })
	if err != nil {
		return [32]byte{}, false, badArchive(e.Name, err)
	}
	return h, true, nil
}

// DrainVMs drops the pool's idle decoder VMs, releasing their guest
// memory, and reports how many were dropped. Decoder snapshots are
// kept, so later extractions stay cheap. Useful on a long-lived Reader
// between bursts of extraction.
func (r *Reader) DrainVMs() int {
	r.mu.Lock()
	p := r.pool
	r.mu.Unlock()
	if p == nil {
		return 0
	}
	return p.Drain()
}

// PoolStats reports the decoder pool's cumulative counters (zero before
// the first ReuseVM extraction).
func (r *Reader) PoolStats() vmpool.Stats {
	r.mu.Lock()
	p := r.pool
	r.mu.Unlock()
	if p == nil {
		return vmpool.Stats{}
	}
	return p.Stats()
}

// PoolOutstanding reports how many decoder-VM leases this Reader holds
// in flight — whether they come from its private pool or from a shared
// SnapCache (zero before the first pooled extraction). After every
// extraction call — including canceled ones — has returned, this is 0:
// cancellation resets and returns VMs, it never leaks them.
func (r *Reader) PoolOutstanding() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inFlight
}

func (r *Reader) noteReinit() {
	r.mu.Lock()
	r.ReinitCount++
	r.mu.Unlock()
}

// runArchivedDecoder executes the archived VXA decoder over the payload,
// streaming the decoded output to out and honouring the VM reuse policy.
// A canceled context stops the guest at its next block boundary; the
// leased VM is then rewound to the pristine snapshot and returned to the
// pool, so cancellation never leaks a VM or a pool slot.
func (r *Reader) runArchivedDecoder(ctx context.Context, e *Entry, payload *io.SectionReader, opts ExtractOptions, out io.Writer) error {
	if opts.VM.MemSize == 0 {
		opts.VM.MemSize = DefaultDecoderMemSize
	}
	// The decoder executable is fetched lazily: with the pool warm, the
	// per-stream cost is a snapshot lookup, not an ELF decompress+parse.
	elf := func() ([]byte, error) { return r.zr.Decoder(e.hdr.VXA.DecoderOffset) }

	r.mu.Lock()
	cache, scope := r.snapCache, r.cacheScope
	r.mu.Unlock()

	// report feeds the stream's outcome into the shared cache's decoder
	// health tracker (a no-op on the private-pool and fresh-VM paths,
	// which have no cross-client breaker to maintain).
	report := func(vmpool.Outcome) {}

	var lease *vmpool.Lease
	switch {
	case cache != nil:
		// Content-addressed path: the decoder is identified by the
		// SHA-256 of its ELF, so identical decoders share one cache
		// line across every archive and Reader using this cache. The
		// Reader's scope keeps parked-VM residue from crossing clients.
		hash, err := r.decoderHash(e.hdr.VXA.DecoderOffset, elf)
		if err != nil {
			return badArchive(e.Name, err)
		}
		if lease, err = cache.Get(ctx, hash, e.Mode, scope, elf); err != nil {
			return classifyDecode(e.Name, err, ctx.Err())
		}
		report = func(o vmpool.Outcome) { cache.Report(hash, o) }
	case !opts.ReuseVM:
		elfBytes, err := elf()
		if err != nil {
			return badArchive(e.Name, err)
		}
		r.noteReinit()
		return codec.RunDecoderELFTo(ctx, e.Codec, elfBytes, payload, payload.Size(), out, opts.VM)
	default:
		// Pooled path (§2.4): resume a parked VM for equal security
		// attributes; an attribute change or a new worker re-initializes
		// from the pristine snapshot, so a malicious decoder cannot leak
		// data from a protected file into a public one. The pool key
		// includes the decoder offset, not just the codec name: a foreign
		// or merged archive may carry two different decoders under one
		// name, and each must run in its own VM line.
		poolKey := fmt.Sprintf("%s@%#x", e.Codec, e.hdr.VXA.DecoderOffset)
		var err error
		if lease, err = r.vmPool(opts.VM, opts.Parallel).Get(ctx, poolKey, e.Mode, elf); err != nil {
			return classifyDecode(e.Name, err, ctx.Err())
		}
	}
	// Count the lease for the Reader's own outstanding view: it covers
	// the shared-cache path too, where the backing pool is not ours to
	// ask. Every exit below releases the lease first, so the decrement
	// on return keeps PoolOutstanding exact.
	r.mu.Lock()
	r.inFlight++
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.inFlight--
		r.mu.Unlock()
	}()
	if lease.Pristine() {
		r.noteReinit()
	}
	st0 := lease.VM().Stats()
	reusable, err := runOneStream(ctx, lease.VM(), payload, out, opts)
	recordVMStages(obs.SpanFrom(ctx), st0, lease.VM().Stats())
	if err != nil {
		switch {
		case vm.IsCanceled(err) || ctx.Err() != nil:
			// The stream was abandoned, not broken: rewind the VM to the
			// pristine snapshot and park it for the next caller. No health
			// signal — a canceled stream says nothing about the decoder.
			lease.ReleaseReset()
			return classifyDecode(e.Name, err, ctx.Err())
		case vm.IsWatchdog(err):
			// Wall-clock kill: the guest was stopped at a block boundary
			// with its state intact, so a pristine-snapshot rewind returns
			// the VM to the pool undamaged. The kill indicts the decoder.
			report(vmpool.OutcomeWatchdog)
			lease.ReleaseReset()
			return &Error{Kind: KindDeadline, Entry: e.Name, Trap: err}
		case errors.Is(err, fault.ErrInjected):
			// An injected archive-read fault aborted the guest from the
			// host side; the decoder is blameless, so no health report.
			lease.Release(false)
			return classifyDecode(e.Name, err, ctx.Err())
		}
		// A trapped or failed VM is not reusable. (Diagnostics stream
		// to opts.Verbose live on this path rather than being captured.)
		// Traps and fuel exhaustion count against the decoder's breaker;
		// nonzero exits do not — those are routinely payload-driven, and
		// quarantining a shared codec over one corrupt upload would be a
		// denial of service.
		report(vmpool.OutcomeFor(err))
		de := codec.ClassifyDecodeError(e.Codec, err, lease.VM().ExitCode(), "")
		lease.Release(false)
		return de
	}
	// A decoder that decoded the stream but exited instead of parking at
	// the done gate succeeded; it just cannot serve another stream.
	report(vmpool.OutcomeOK)
	lease.Release(reusable)
	return nil
}

// recordVMStages attributes the guest-side work of one stream to the
// request span, splitting the VM's counter deltas into translation and
// execution time. No-op when the request is untraced (nil span).
func recordVMStages(sp *obs.Span, before, after vm.Stats) {
	sp.Add(obs.StageTranslate, time.Duration(after.TranslateNS-before.TranslateNS))
	sp.Add(obs.StageExecute, time.Duration(after.ExecuteNS-before.ExecuteNS))
}

// streamFuel is the absolute instruction budget for decoding one stream,
// so a reused VM cannot accumulate an unbounded budget (a looping
// decoder is cut off no matter how many streams ran before it).
// ExtractOptions.VM.Fuel, when set, overrides the standard policy.
func streamFuel(payloadLen int, cfg vm.Config) int64 {
	if cfg.Fuel != 0 {
		return cfg.Fuel
	}
	return vm.StreamFuel(payloadLen)
}

// runOneStream feeds one payload section to a (possibly resumed)
// decoder VM and streams the decoded output to out; reusable reports
// whether the VM parked at the done gate and can take another stream.
// With fault injection armed, the payload reads pass through a fault
// reader; an injected read error outranks the guest abort it provokes
// (the guest only sees a virtual EIO and fails with its own message,
// but the caller needs the real cause).
func runOneStream(ctx context.Context, v *vm.VM, payload *io.SectionReader, out io.Writer, opts ExtractOptions) (reusable bool, err error) {
	fuel := streamFuel(int(payload.Size()), opts.VM)
	if !fault.Armed() {
		return v.RunStream(ctx, payload, out, opts.Verbose, fuel)
	}
	fr := fault.NewReader(payload)
	reusable, err = v.RunStream(ctx, fr, out, opts.Verbose, fuel)
	if ferr := fr.Err(); ferr != nil && err != nil {
		return reusable, ferr
	}
	return reusable, err
}

// ExtractResult is one entry's outcome from ExtractAll.
type ExtractResult struct {
	Entry *Entry
	Data  []byte
	Err   error
}

// ExtractAll decodes every entry through a bounded worker pipeline
// (WithParallel workers; 0 selects GOMAXPROCS) and returns one result
// per entry, in archive order. Combined with WithReuseVM, workers draw
// decoder VMs from the shared pool, so each worker pays the decoder
// setup cost at most once per (codec, mode). Canceling ctx stops
// in-flight decodes cooperatively; entries not yet decoded report
// ErrCanceled.
func (r *Reader) ExtractAll(ctx context.Context, opts ...Option) []ExtractResult {
	o := buildOpts(opts)
	o.Verbose = serializeWriter(o.Verbose)
	results := make([]ExtractResult, len(r.entries))
	r.forEachEntry(o.Parallel, func(i int) {
		e := &r.entries[i]
		var out bytes.Buffer
		_, err := r.extractTo(ctx, e, &out, o)
		results[i] = ExtractResult{Entry: e, Data: out.Bytes(), Err: err}
		if err != nil {
			results[i].Data = nil
		}
	})
	return results
}

// forEachEntry runs fn(i) for every entry index across a bounded pool of
// workers. parallel <= 0 selects GOMAXPROCS; 1 degenerates to a serial
// loop.
func (r *Reader) forEachEntry(parallel int, fn func(i int)) {
	n := parallel
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(r.entries) {
		n = len(r.entries)
	}
	if n <= 1 {
		for i := range r.entries {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := range r.entries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Verify runs the §2.3 integrity check over every entry: each file is
// decoded with its archived VXA decoder (never a native one) and checked
// against its CRC. Entries are verified by a bounded worker pipeline
// (WithParallel workers; 0 selects GOMAXPROCS). It returns one error
// per failing entry, in archive order.
func (r *Reader) Verify(ctx context.Context, opts ...Option) []error {
	o := buildOpts(opts)
	o.Mode = AlwaysVXA
	o.DecodeAll = false
	// Verification measures integrity, not extraction policy: output is
	// CRC-summed and discarded, never delivered, so an output cap would
	// only make intact oversized entries fail verification.
	o.Limit = 0
	o.Verbose = serializeWriter(o.Verbose)
	perEntry := make([]error, len(r.entries))
	r.forEachEntry(o.Parallel, func(i int) {
		perEntry[i] = r.verifyEntry(ctx, &r.entries[i], o)
	})
	var errs []error
	for _, err := range perEntry {
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// verifyEntry checks one entry with its archived decoder. The decoded
// stream is CRC-summed as it is produced and never buffered.
func (r *Reader) verifyEntry(ctx context.Context, e *Entry, opts ExtractOptions) error {
	if e.Codec == "" {
		// Stored entries: CRC only, with the payload discarded unread.
		_, err := r.extractTo(ctx, e, io.Discard, opts)
		return err
	}
	payload, err := r.zr.PayloadSection(e.hdr)
	if err != nil {
		return badArchive(e.Name, err)
	}
	if e.PreCompressed {
		// Decoded form has no recorded CRC; decoding itself is the
		// check, plus the stored CRC over the compressed payload.
		if err := r.checkPayloadCRC(ctx, e, payload); err != nil {
			return err
		}
		if err := r.runArchivedDecoder(ctx, e, payload, opts, io.Discard); err != nil {
			return classifyDecode(e.Name, err, ctx.Err())
		}
		return nil
	}
	crc := crc32.NewIEEE()
	if err := r.runArchivedDecoder(ctx, e, payload, opts, crc); err != nil {
		return classifyDecode(e.Name, err, ctx.Err())
	}
	if crc.Sum32() != e.hdr.CRC32 {
		return corruptf(e.Name, "decoded CRC mismatch")
	}
	return nil
}

// LocalOffset returns the entry's local file header offset within the
// archive (exposed for tooling and tests).
func (e *Entry) LocalOffset() uint32 { return e.hdr.Offset }

// ExtractDecodedForm decodes an entry's stream and returns the decoder
// output without checking it against the archive CRC. The CRC covers the
// original input, which a lossy codec's decoder does not reproduce
// bit-exactly; this is the accessor for the decoded form of lossy
// entries (the BMP/WAV the archived decoder produces).
func (r *Reader) ExtractDecodedForm(ctx context.Context, e *Entry, opts ...Option) ([]byte, error) {
	o := buildOpts(opts)
	payload, err := r.zr.PayloadSection(e.hdr)
	if err != nil {
		return nil, badArchive(e.Name, err)
	}
	if e.hdr.VXA == nil {
		return nil, &Error{Kind: KindUnknownCodec, Entry: e.Name}
	}
	// WithLimit bounds this buffer too — the bomb guard holds on every
	// decode surface, and the countWriter preserves the limit error over
	// the decoder abort it provokes.
	var out bytes.Buffer
	dst := io.Writer(&out)
	if o.Limit > 0 {
		dst = &limitWriter{w: &out, remaining: o.Limit, limit: o.Limit}
	}
	cw := &countWriter{w: dst}
	if err := r.decodeStream(ctx, e, payload, o, cw); err != nil {
		return nil, classifyDecode(e.Name, cw.firstError(e, err), ctx.Err())
	}
	return out.Bytes(), nil
}
