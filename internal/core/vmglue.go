package core

import (
	"vxa/internal/elf32"
	"vxa/internal/vm"
)

// newVMFromELF builds a fresh decoder VM from a pristine ELF image.
func newVMFromELF(elf []byte, cfg vm.Config) (*vm.VM, error) {
	return elf32.NewVM(elf, cfg)
}
