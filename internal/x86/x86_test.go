package x86

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// canon normalizes an Inst for comparison between a hand-constructed
// instruction and its decode(encode(·)) image. The differences it erases
// are pure encoding freedom: scale on an absent index, immediate width
// choices, and the Len bookkeeping field.
func canon(i Inst) Inst {
	i.Len = 0
	i.Sym = ""
	for _, a := range []*Arg{&i.Dst, &i.Src, &i.Aux} {
		a.Sym = ""
		if a.Kind == KindMem && a.Index == NoReg {
			a.Scale = 1
		}
		if a.Kind != KindMem {
			a.Base, a.Index, a.Scale, a.Disp = 0, 0, 0, 0
		}
		if a.Kind == KindImm {
			// Width of the immediate encoding is not semantic; the
			// value is. Normalize to the value sign-extended to 32 bits.
			a.Size = 4
			a.Reg = 0
		}
		if a.Kind == KindNone {
			*a = Arg{}
		}
	}
	return i
}

func roundTrip(t *testing.T, in Inst) {
	t.Helper()
	b, err := Encode(in)
	if err != nil {
		t.Fatalf("encode %v: %v", in, err)
	}
	out, err := Decode(b)
	if err != nil {
		t.Fatalf("decode % x (from %v): %v", b, in, err)
	}
	if int(out.Len) != len(b) {
		t.Fatalf("decode %v: len=%d want %d", in, out.Len, len(b))
	}
	if canon(out) != canon(in) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v\n bytes % x", canon(in), canon(out), b)
	}
}

func TestRoundTripBasic(t *testing.T) {
	cases := []Inst{
		{Op: MOV, Dst: R(EAX), Src: I(42)},
		{Op: MOV, Dst: R(EDI), Src: I(-1)},
		{Op: MOV, Dst: R(EAX), Src: M(EBX, 0)},
		{Op: MOV, Dst: M(EBP, -8), Src: R(ECX)},
		{Op: MOV, Dst: M8(ESI, 3), Src: R8(EDX)},
		{Op: MOV, Dst: R8(EBX), Src: Arg{Kind: KindImm, Imm: 7, Size: 1}},
		{Op: MOV, Dst: M(ESP, 4), Src: I(123456)},
		{Op: MOV, Dst: M8(EAX, 0), Src: Arg{Kind: KindImm, Imm: -2, Size: 1}},
		{Op: MOV, Dst: R(EAX), Src: MSIB(EBX, ECX, 4, 100, 4)},
		{Op: MOV, Dst: R(EDX), Src: MSIB(NoReg, EDI, 2, -64, 4)},
		{Op: MOV, Dst: R(EDX), Src: MAbs("", 0x1234, 4)},
		{Op: MOVZX, Dst: R(EAX), Src: M8(ESI, 0)},
		{Op: MOVZX, Dst: R(ECX), Src: M16(EDI, 2)},
		{Op: MOVSX, Dst: R(EBX), Src: Arg{Kind: KindReg, Reg: EAX, Size: 1}},
		{Op: MOVSX, Dst: R(EBX), Src: M16(EBP, -4)},
		{Op: LEA, Dst: R(EAX), Src: MSIB(EBX, ESI, 8, 12, 4)},
		{Op: XCHG, Dst: R(EAX), Src: R(EDX)},
		{Op: ADD, Dst: R(EAX), Src: R(EBX)},
		{Op: ADD, Dst: R(EAX), Src: I(300)},
		{Op: ADD, Dst: R(EAX), Src: I(3)},
		{Op: ADC, Dst: R(EDX), Src: I(0)},
		{Op: SUB, Dst: M(EBP, -12), Src: R(EAX)},
		{Op: SBB, Dst: R(ECX), Src: R(ECX)},
		{Op: AND, Dst: R(ESI), Src: I(0xFF)},
		{Op: OR, Dst: R(EDI), Src: M(EAX, 16)},
		{Op: XOR, Dst: R(EAX), Src: R(EAX)},
		{Op: CMP, Dst: R(EAX), Src: I(-5)},
		{Op: CMP, Dst: M8(EBX, 1), Src: Arg{Kind: KindImm, Imm: 10, Size: 1}},
		{Op: TEST, Dst: R(EAX), Src: R(EAX)},
		{Op: TEST, Dst: R(EBX), Src: I(1)},
		{Op: TEST, Dst: Arg{Kind: KindReg, Reg: ECX, Size: 1}, Src: Arg{Kind: KindImm, Imm: 3, Size: 1}},
		{Op: INC, Dst: R(EAX)},
		{Op: DEC, Dst: R(EDI)},
		{Op: INC, Dst: M(EBX, 8)},
		{Op: DEC, Dst: M8(EBX, 8)},
		{Op: NEG, Dst: R(EAX)},
		{Op: NOT, Dst: M(ECX, 0)},
		{Op: IMUL, Dst: R(EAX), Src: R(EBX)},
		{Op: IMUL, Dst: R(EAX), Src: M(EBP, -4), Aux: I(100)},
		{Op: MUL1, Dst: R(EBX)},
		{Op: IMUL1, Dst: M(ESI, 0)},
		{Op: DIV, Dst: R(ECX)},
		{Op: IDIV, Dst: R(EDI)},
		{Op: SHL, Dst: R(EAX), Src: Arg{Kind: KindImm, Imm: 4, Size: 1}},
		{Op: SHR, Dst: R(EDX), Src: R8(ECX)},
		{Op: SAR, Dst: M(EBP, -16), Src: Arg{Kind: KindImm, Imm: 31, Size: 1}},
		{Op: ROL, Dst: R(EAX), Src: Arg{Kind: KindImm, Imm: 1, Size: 1}},
		{Op: ROR, Dst: R(EBX), Src: R8(ECX)},
		{Op: CDQ},
		{Op: PUSH, Dst: R(EBP)},
		{Op: PUSH, Dst: I(0x12345678)},
		{Op: PUSH, Dst: M(ESP, 0)},
		{Op: POP, Dst: R(EBP)},
		{Op: CALL, Rel: 100},
		{Op: CALLM, Dst: R(EAX)},
		{Op: CALLM, Dst: M(EBX, 4)},
		{Op: RET},
		{Op: RET, Dst: I(8)},
		{Op: JMP, Rel: -20},
		{Op: JMPM, Dst: MSIB(NoReg, EAX, 4, 0x2000, 4)},
		{Op: JCC, CC: CCE, Rel: 64},
		{Op: JCC, CC: CCG, Rel: -128},
		{Op: SETCC, CC: CCL, Dst: R8(EAX)},
		{Op: SETCC, CC: CCA, Dst: M8(EBP, -1)},
		{Op: INT, Dst: Arg{Kind: KindImm, Imm: 0x80, Size: 1}},
		{Op: NOP},
		{Op: HLT},
		{Op: UD2},
		{Op: MOVSB},
		{Op: MOVSB, Rep: true},
		{Op: STOSB, Rep: true},
		{Op: MOVSD, Rep: true},
		{Op: STOSD, Rep: true},
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestEncodeEBPBase(t *testing.T) {
	// [ebp] has no mod=00 encoding; the encoder must fall back to disp8=0.
	b, err := Encode(Inst{Op: MOV, Dst: R(EAX), Src: M(EBP, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{0x8B, 0x45, 0x00}) {
		t.Fatalf("mov eax, [ebp] = % x, want 8b 45 00", b)
	}
}

func TestEncodeESPBase(t *testing.T) {
	// [esp] requires a SIB byte.
	b, err := Encode(Inst{Op: MOV, Dst: R(EAX), Src: M(ESP, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{0x8B, 0x04, 0x24}) {
		t.Fatalf("mov eax, [esp] = % x, want 8b 04 24", b)
	}
}

func TestEncodeFixups(t *testing.T) {
	in := Inst{Op: MOV, Dst: R(EAX), Src: MAbs("g_table", 8, 4)}
	b, fix, err := EncodeFixups(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(fix) != 1 || fix[0].Sym != "g_table" {
		t.Fatalf("fixups = %+v, want one g_table slot", fix)
	}
	// The disp32 slot must hold the addend (8) before relocation.
	off := fix[0].Off
	got := uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
	if got != 8 {
		t.Fatalf("addend = %d, want 8", got)
	}

	in2 := Inst{Op: MOV, Dst: R(ECX), Src: ISym("main")}
	_, fix2, err := EncodeFixups(in2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fix2) != 1 || fix2[0].Sym != "main" {
		t.Fatalf("fixups = %+v, want one main slot", fix2)
	}
}

func TestEncodeSymbolForcesDisp32(t *testing.T) {
	// A symbolic displacement must use a full 32-bit slot even when the
	// addend would fit in 8 bits, so the linker can patch it.
	b, fix, err := EncodeFixups(Inst{Op: MOV, Dst: R(EAX), Src: Arg{
		Kind: KindMem, Base: EBX, Index: NoReg, Disp: 1, Size: 4, Sym: "g",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fix) != 1 {
		t.Fatalf("fixups = %+v", fix)
	}
	if len(b) != 2+4 {
		t.Fatalf("len = %d (% x), want mod=10 form", len(b), b)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(nil) = %v, want ErrTruncated", err)
	}
	if _, err := Decode([]byte{0xE8, 1, 2}); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated call = %v, want ErrTruncated", err)
	}
	// Privileged / unsupported opcodes must decode as illegal.
	for _, b := range [][]byte{
		{0xFA},       // cli
		{0x0F, 0x01}, // lgdt group (truncated is fine too, but must error)
		{0xEC},       // in al, dx
		{0xCF},       // iret
		{0x9C},       // pushf
		{0x66, 0x90}, // operand-size prefix
		{0x8E, 0xC0}, // mov segment reg
	} {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode(% x) succeeded, want error", b)
		}
	}
}

func TestDecodeShortForms(t *testing.T) {
	// Forms the encoder never emits must still decode (the VM scans
	// arbitrary archive-supplied code).
	cases := []struct {
		b    []byte
		want string
	}{
		{[]byte{0x04, 0x05}, "add al, 0x5"},
		{[]byte{0x05, 0x10, 0x00, 0x00, 0x00}, "add eax, 0x10"},
		{[]byte{0x74, 0xFE}, "je .-2"},
		{[]byte{0xEB, 0x00}, "jmp .+0"},
		{[]byte{0xD1, 0xE8}, "shr eax, 0x1"},
		{[]byte{0xD0, 0xE1}, "shl cl, 0x1"},
		{[]byte{0x6A, 0xFF}, "push 0xffffffff"},
		{[]byte{0xC2, 0x08, 0x00}, "ret 0x8"},
	}
	for _, c := range cases {
		in, err := Decode(c.b)
		if err != nil {
			t.Errorf("Decode(% x): %v", c.b, err)
			continue
		}
		if in.String() != c.want {
			t.Errorf("Decode(% x) = %q, want %q", c.b, in.String(), c.want)
		}
	}
}

// randInst generates a random encodable instruction.
func randInst(r *rand.Rand) Inst {
	regs := []Reg{EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI}
	randReg := func() Reg { return regs[r.Intn(len(regs))] }
	randMem := func(size uint8) Arg {
		a := Arg{Kind: KindMem, Base: NoReg, Index: NoReg, Scale: 1, Size: size}
		switch r.Intn(3) {
		case 0:
			a.Base = randReg()
		case 1:
			a.Base = randReg()
			for {
				a.Index = randReg()
				if a.Index != ESP {
					break
				}
			}
			a.Scale = uint8(1) << r.Intn(4)
		case 2: // absolute
		}
		switch r.Intn(3) {
		case 0:
		case 1:
			a.Disp = int32(int8(r.Uint32()))
		case 2:
			a.Disp = int32(r.Uint32())
		}
		return a
	}
	randRM := func(size uint8) Arg {
		if r.Intn(2) == 0 {
			return Arg{Kind: KindReg, Reg: randReg(), Size: size}
		}
		return randMem(size)
	}

	aluOps := []Op{ADD, ADC, SUB, SBB, AND, OR, XOR, CMP}
	switch r.Intn(12) {
	case 0: // mov r32, r/m32 or r/m32, r32
		if r.Intn(2) == 0 {
			return Inst{Op: MOV, Dst: R(randReg()), Src: randRM(4)}
		}
		return Inst{Op: MOV, Dst: randMem(4), Src: R(randReg())}
	case 1: // mov with immediates
		if r.Intn(2) == 0 {
			return Inst{Op: MOV, Dst: R(randReg()), Src: I(int32(r.Uint32()))}
		}
		return Inst{Op: MOV, Dst: randMem(4), Src: I(int32(r.Uint32()))}
	case 2: // byte moves
		if r.Intn(2) == 0 {
			return Inst{Op: MOV, Dst: Arg{Kind: KindReg, Reg: randReg(), Size: 1}, Src: randMem(1)}
		}
		return Inst{Op: MOV, Dst: randMem(1), Src: Arg{Kind: KindReg, Reg: randReg(), Size: 1}}
	case 3: // ALU reg forms
		op := aluOps[r.Intn(len(aluOps))]
		if r.Intn(2) == 0 {
			return Inst{Op: op, Dst: R(randReg()), Src: randRM(4)}
		}
		return Inst{Op: op, Dst: randMem(4), Src: R(randReg())}
	case 4: // ALU imm
		op := aluOps[r.Intn(len(aluOps))]
		return Inst{Op: op, Dst: randRM(4), Src: I(int32(r.Uint32()))}
	case 5: // movzx/movsx
		op := MOVZX
		if r.Intn(2) == 0 {
			op = MOVSX
		}
		size := uint8(1)
		if r.Intn(2) == 0 {
			size = 2
		}
		return Inst{Op: op, Dst: R(randReg()), Src: randRM(size)}
	case 6: // shifts
		ops := []Op{SHL, SHR, SAR, ROL, ROR}
		op := ops[r.Intn(len(ops))]
		if r.Intn(2) == 0 {
			return Inst{Op: op, Dst: randRM(4), Src: Arg{Kind: KindImm, Imm: int32(r.Intn(32)), Size: 1}}
		}
		return Inst{Op: op, Dst: randRM(4), Src: R8(ECX)}
	case 7: // unary group
		ops := []Op{NOT, NEG, MUL1, IMUL1, DIV, IDIV, INC, DEC}
		return Inst{Op: ops[r.Intn(len(ops))], Dst: randRM(4)}
	case 8: // stack
		if r.Intn(2) == 0 {
			return Inst{Op: PUSH, Dst: R(randReg())}
		}
		return Inst{Op: POP, Dst: R(randReg())}
	case 9: // branches
		switch r.Intn(3) {
		case 0:
			return Inst{Op: CALL, Rel: int32(r.Uint32())}
		case 1:
			return Inst{Op: JMP, Rel: int32(r.Uint32())}
		default:
			return Inst{Op: JCC, CC: CC(r.Intn(16)), Rel: int32(r.Uint32())}
		}
	case 10: // lea
		return Inst{Op: LEA, Dst: R(randReg()), Src: randMem(4)}
	default: // imul forms
		if r.Intn(2) == 0 {
			return Inst{Op: IMUL, Dst: R(randReg()), Src: randRM(4)}
		}
		return Inst{Op: IMUL, Dst: R(randReg()), Src: randRM(4), Aux: I(int32(r.Uint32()))}
	}
}

// TestRoundTripRandom is the encode/decode round-trip property test.
func TestRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		roundTrip(t, randInst(r))
	}
}

// TestDecodeRandomBytesStable feeds random byte windows to the decoder:
// it must never panic, and anything it accepts must re-encode to bytes
// that decode to the same instruction (decode is a left inverse of the
// encoding it reports).
func TestDecodeRandomBytesStable(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	buf := make([]byte, 16)
	for i := 0; i < 50000; i++ {
		r.Read(buf)
		in, err := Decode(buf)
		if err != nil {
			continue
		}
		b2, err := Encode(in)
		if err != nil {
			// Some decodable forms (e.g. short jumps) have no canonical
			// re-encoding only if we chose not to support them; but every
			// Op the decoder produces must be encodable.
			t.Fatalf("decoded %v (% x) but cannot re-encode: %v", in, buf[:in.Len], err)
		}
		in2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-decode of %v failed: %v", in, err)
		}
		if canon(in) != canon(in2) {
			t.Fatalf("unstable decode: % x -> %v -> % x -> %v", buf[:in.Len], in, b2, in2)
		}
	}
}
