package x86

import (
	"errors"
	"fmt"
)

// Decode errors.
var (
	// ErrTruncated reports that the byte stream ended inside an instruction.
	ErrTruncated = errors.New("x86: truncated instruction")
	// ErrIllegal reports an instruction outside the VXA subset.
	ErrIllegal = errors.New("x86: illegal or unsupported instruction")
)

type decoder struct {
	b   []byte
	pos int
}

func (d *decoder) u8() (uint8, error) {
	if d.pos >= len(d.b) {
		return 0, ErrTruncated
	}
	v := d.b[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) s8() (int32, error) {
	v, err := d.u8()
	return int32(int8(v)), err
}

func (d *decoder) u16() (uint16, error) {
	if d.pos+2 > len(d.b) {
		return 0, ErrTruncated
	}
	v := uint16(d.b[d.pos]) | uint16(d.b[d.pos+1])<<8
	d.pos += 2
	return v, nil
}

func (d *decoder) s32() (int32, error) {
	if d.pos+4 > len(d.b) {
		return 0, ErrTruncated
	}
	v := uint32(d.b[d.pos]) | uint32(d.b[d.pos+1])<<8 |
		uint32(d.b[d.pos+2])<<16 | uint32(d.b[d.pos+3])<<24
	d.pos += 4
	return int32(v), nil
}

// modRM decodes a ModRM byte (and any SIB/displacement) into the
// register field value and the r/m operand of the given access size.
func (d *decoder) modRM(size uint8) (regField uint8, rm Arg, err error) {
	m, err := d.u8()
	if err != nil {
		return 0, Arg{}, err
	}
	mod := m >> 6
	regField = (m >> 3) & 7
	rmBits := m & 7

	if mod == 3 {
		return regField, Arg{Kind: KindReg, Reg: Reg(rmBits), Size: size}, nil
	}

	mem := Arg{Kind: KindMem, Base: NoReg, Index: NoReg, Scale: 1, Size: size}
	switch {
	case rmBits == 4: // SIB follows
		sib, err := d.u8()
		if err != nil {
			return 0, Arg{}, err
		}
		scale := uint8(1) << (sib >> 6)
		index := (sib >> 3) & 7
		base := sib & 7
		if index != 4 { // index=ESP means "no index"
			mem.Index = Reg(index)
			mem.Scale = scale
		}
		if base == 5 && mod == 0 {
			disp, err := d.s32()
			if err != nil {
				return 0, Arg{}, err
			}
			mem.Disp = disp
		} else {
			mem.Base = Reg(base)
		}
	case rmBits == 5 && mod == 0: // absolute disp32
		disp, err := d.s32()
		if err != nil {
			return 0, Arg{}, err
		}
		mem.Disp = disp
	default:
		mem.Base = Reg(rmBits)
	}

	switch mod {
	case 1:
		disp, err := d.s8()
		if err != nil {
			return 0, Arg{}, err
		}
		mem.Disp += disp
	case 2:
		disp, err := d.s32()
		if err != nil {
			return 0, Arg{}, err
		}
		mem.Disp += disp
	}
	return regField, mem, nil
}

// aluOps maps the 0x00-0x3F opcode block's /r group to operations.
var aluOps = [8]Op{ADD, OR, ADC, SBB, AND, SUB, XOR, CMP}

// grp2Ops maps shift-group ModRM reg fields to operations.
var grp2Ops = [8]Op{ROL, ROR, BAD, BAD, SHL, SHR, BAD, SAR}

// Decode decodes the instruction at the start of b. It returns ErrIllegal
// for instructions outside the VXA subset and ErrTruncated if b ends
// mid-instruction. On success, Inst.Len gives the encoded length.
func Decode(b []byte) (Inst, error) {
	d := &decoder{b: b}
	inst, err := d.inst()
	if err != nil {
		return Inst{}, err
	}
	if d.pos > 15 {
		return Inst{}, ErrIllegal // architectural 15-byte limit
	}
	inst.Len = uint8(d.pos)
	return inst, nil
}

func (d *decoder) inst() (Inst, error) {
	rep := false
	op, err := d.u8()
	if err != nil {
		return Inst{}, err
	}
	if op == 0xF3 { // REP prefix
		rep = true
		op, err = d.u8()
		if err != nil {
			return Inst{}, err
		}
	}

	// The regular ALU block: 0x00-0x3D, op = block>>3, form = op&7.
	if op < 0x40 && (op&7) <= 5 {
		alu := aluOps[op>>3]
		switch op & 7 {
		case 0: // op r/m8, r8
			reg, rm, err := d.modRM(1)
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: alu, Dst: rm, Src: Arg{Kind: KindReg, Reg: Reg(reg), Size: 1}}, nil
		case 1: // op r/m32, r32
			reg, rm, err := d.modRM(4)
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: alu, Dst: rm, Src: R(Reg(reg))}, nil
		case 2: // op r8, r/m8
			reg, rm, err := d.modRM(1)
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: alu, Dst: Arg{Kind: KindReg, Reg: Reg(reg), Size: 1}, Src: rm}, nil
		case 3: // op r32, r/m32
			reg, rm, err := d.modRM(4)
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: alu, Dst: R(Reg(reg)), Src: rm}, nil
		case 4: // op al, imm8
			imm, err := d.s8()
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: alu, Dst: R8(EAX), Src: Arg{Kind: KindImm, Imm: imm, Size: 1}}, nil
		case 5: // op eax, imm32
			imm, err := d.s32()
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: alu, Dst: R(EAX), Src: I(imm)}, nil
		}
	}

	switch {
	case op >= 0x40 && op <= 0x47:
		return Inst{Op: INC, Dst: R(Reg(op - 0x40))}, nil
	case op >= 0x48 && op <= 0x4F:
		return Inst{Op: DEC, Dst: R(Reg(op - 0x48))}, nil
	case op >= 0x50 && op <= 0x57:
		return Inst{Op: PUSH, Dst: R(Reg(op - 0x50))}, nil
	case op >= 0x58 && op <= 0x5F:
		return Inst{Op: POP, Dst: R(Reg(op - 0x58))}, nil
	case op >= 0x70 && op <= 0x7F:
		rel, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: JCC, CC: CC(op - 0x70), Rel: rel}, nil
	case op >= 0xB0 && op <= 0xB7:
		imm, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: R8(Reg(op - 0xB0)), Src: Arg{Kind: KindImm, Imm: imm, Size: 1}}, nil
	case op >= 0xB8 && op <= 0xBF:
		imm, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: R(Reg(op - 0xB8)), Src: I(imm)}, nil
	}

	switch op {
	case 0x68: // push imm32
		imm, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: PUSH, Dst: I(imm)}, nil
	case 0x6A: // push imm8 (sign-extended)
		imm, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: PUSH, Dst: I(imm)}, nil
	case 0x69: // imul r32, r/m32, imm32
		reg, rm, err := d.modRM(4)
		if err != nil {
			return Inst{}, err
		}
		imm, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: IMUL, Dst: R(Reg(reg)), Src: rm, Aux: I(imm)}, nil
	case 0x6B: // imul r32, r/m32, imm8
		reg, rm, err := d.modRM(4)
		if err != nil {
			return Inst{}, err
		}
		imm, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: IMUL, Dst: R(Reg(reg)), Src: rm, Aux: I(imm)}, nil
	case 0x80, 0x81, 0x83: // group 1: ALU r/m, imm
		size := uint8(4)
		if op == 0x80 {
			size = 1
		}
		reg, rm, err := d.modRM(size)
		if err != nil {
			return Inst{}, err
		}
		var imm int32
		if op == 0x81 {
			imm, err = d.s32()
		} else {
			imm, err = d.s8()
		}
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: aluOps[reg], Dst: rm, Src: Arg{Kind: KindImm, Imm: imm, Size: size}}, nil
	case 0x84: // test r/m8, r8
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: TEST, Dst: rm, Src: Arg{Kind: KindReg, Reg: Reg(reg), Size: 1}}, nil
	case 0x85: // test r/m32, r32
		reg, rm, err := d.modRM(4)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: TEST, Dst: rm, Src: R(Reg(reg))}, nil
	case 0x87: // xchg r/m32, r32
		reg, rm, err := d.modRM(4)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: XCHG, Dst: rm, Src: R(Reg(reg))}, nil
	case 0x88: // mov r/m8, r8
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: rm, Src: Arg{Kind: KindReg, Reg: Reg(reg), Size: 1}}, nil
	case 0x89: // mov r/m32, r32
		reg, rm, err := d.modRM(4)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: rm, Src: R(Reg(reg))}, nil
	case 0x8A: // mov r8, r/m8
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: Arg{Kind: KindReg, Reg: Reg(reg), Size: 1}, Src: rm}, nil
	case 0x8B: // mov r32, r/m32
		reg, rm, err := d.modRM(4)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: R(Reg(reg)), Src: rm}, nil
	case 0x8D: // lea r32, m
		reg, rm, err := d.modRM(4)
		if err != nil {
			return Inst{}, err
		}
		if rm.Kind != KindMem {
			return Inst{}, ErrIllegal
		}
		return Inst{Op: LEA, Dst: R(Reg(reg)), Src: rm}, nil
	case 0x90:
		return Inst{Op: NOP}, nil
	case 0x99:
		return Inst{Op: CDQ}, nil
	case 0xA4:
		return Inst{Op: MOVSB, Rep: rep}, nil
	case 0xA5:
		return Inst{Op: MOVSD, Rep: rep}, nil
	case 0xAA:
		return Inst{Op: STOSB, Rep: rep}, nil
	case 0xAB:
		return Inst{Op: STOSD, Rep: rep}, nil
	case 0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3: // shift groups
		size := uint8(4)
		if op == 0xC0 || op == 0xD0 || op == 0xD2 {
			size = 1
		}
		reg, rm, err := d.modRM(size)
		if err != nil {
			return Inst{}, err
		}
		shOp := grp2Ops[reg]
		if shOp == BAD {
			return Inst{}, ErrIllegal
		}
		var src Arg
		switch op {
		case 0xC0, 0xC1:
			imm, err := d.s8()
			if err != nil {
				return Inst{}, err
			}
			src = Arg{Kind: KindImm, Imm: imm & 31, Size: 1}
		case 0xD0, 0xD1:
			src = Arg{Kind: KindImm, Imm: 1, Size: 1}
		default: // 0xD2, 0xD3: shift by CL
			src = R8(ECX)
		}
		return Inst{Op: shOp, Dst: rm, Src: src}, nil
	case 0xC2: // ret imm16
		imm, err := d.u16()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: RET, Dst: I(int32(imm))}, nil
	case 0xC3:
		return Inst{Op: RET}, nil
	case 0xC6: // mov r/m8, imm8
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		if reg != 0 {
			return Inst{}, ErrIllegal
		}
		imm, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: rm, Src: Arg{Kind: KindImm, Imm: imm, Size: 1}}, nil
	case 0xC7: // mov r/m32, imm32
		reg, rm, err := d.modRM(4)
		if err != nil {
			return Inst{}, err
		}
		if reg != 0 {
			return Inst{}, ErrIllegal
		}
		imm, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: rm, Src: I(imm)}, nil
	case 0xCD: // int imm8
		imm, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: INT, Dst: Arg{Kind: KindImm, Imm: imm & 0xFF, Size: 1}}, nil
	case 0xE8: // call rel32
		rel, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: CALL, Rel: rel}, nil
	case 0xE9: // jmp rel32
		rel, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: JMP, Rel: rel}, nil
	case 0xEB: // jmp rel8
		rel, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: JMP, Rel: rel}, nil
	case 0xF4:
		return Inst{Op: HLT}, nil
	case 0xF6, 0xF7: // group 3
		size := uint8(4)
		if op == 0xF6 {
			size = 1
		}
		reg, rm, err := d.modRM(size)
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0: // test r/m, imm
			var imm int32
			if size == 4 {
				imm, err = d.s32()
			} else {
				imm, err = d.s8()
			}
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: TEST, Dst: rm, Src: Arg{Kind: KindImm, Imm: imm, Size: size}}, nil
		case 2:
			return Inst{Op: NOT, Dst: rm}, nil
		case 3:
			return Inst{Op: NEG, Dst: rm}, nil
		case 4:
			return Inst{Op: MUL1, Dst: rm}, nil
		case 5:
			return Inst{Op: IMUL1, Dst: rm}, nil
		case 6:
			return Inst{Op: DIV, Dst: rm}, nil
		case 7:
			return Inst{Op: IDIV, Dst: rm}, nil
		}
		return Inst{}, ErrIllegal
	case 0xFE: // group 4: inc/dec r/m8
		reg, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0:
			return Inst{Op: INC, Dst: rm}, nil
		case 1:
			return Inst{Op: DEC, Dst: rm}, nil
		}
		return Inst{}, ErrIllegal
	case 0xFF: // group 5
		reg, rm, err := d.modRM(4)
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0:
			return Inst{Op: INC, Dst: rm}, nil
		case 1:
			return Inst{Op: DEC, Dst: rm}, nil
		case 2:
			return Inst{Op: CALLM, Dst: rm}, nil
		case 4:
			return Inst{Op: JMPM, Dst: rm}, nil
		case 6:
			return Inst{Op: PUSH, Dst: rm}, nil
		}
		return Inst{}, ErrIllegal
	case 0x0F:
		return d.inst0F()
	}
	return Inst{}, fmt.Errorf("%w: opcode 0x%02x", ErrIllegal, op)
}

func (d *decoder) inst0F() (Inst, error) {
	op, err := d.u8()
	if err != nil {
		return Inst{}, err
	}
	switch {
	case op >= 0x80 && op <= 0x8F: // jcc rel32
		rel, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: JCC, CC: CC(op - 0x80), Rel: rel}, nil
	case op >= 0x90 && op <= 0x9F: // setcc r/m8
		_, rm, err := d.modRM(1)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: SETCC, CC: CC(op - 0x90), Dst: rm}, nil
	}
	switch op {
	case 0x0B:
		return Inst{Op: UD2}, nil
	case 0xAF: // imul r32, r/m32
		reg, rm, err := d.modRM(4)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: IMUL, Dst: R(Reg(reg)), Src: rm}, nil
	case 0xB6, 0xB7, 0xBE, 0xBF: // movzx/movsx
		size := uint8(1)
		if op == 0xB7 || op == 0xBF {
			size = 2
		}
		xop := MOVZX
		if op >= 0xBE {
			xop = MOVSX
		}
		reg, rm, err := d.modRM(size)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: xop, Dst: R(Reg(reg)), Src: rm}, nil
	}
	return Inst{}, fmt.Errorf("%w: opcode 0x0f 0x%02x", ErrIllegal, op)
}
