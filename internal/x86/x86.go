// Package x86 models the subset of the 32-bit x86 instruction set that
// the VXA virtual architecture defines for archived decoders.
//
// The package provides three views of an instruction:
//
//   - Inst, a fully decoded symbolic form shared by the assembler, the
//     disassembler, and the virtual machine interpreter;
//   - Encode, which turns an Inst into machine bytes (the assembler
//     back-end used by the vxcc compiler);
//   - Decode, which turns machine bytes back into an Inst (used by the
//     VM's code scanner and by the vxdump disassembler).
//
// The subset is the unprivileged 32-bit integer core: the ALU block,
// moves with ModRM/SIB addressing, sign/zero extension, shifts,
// multiply/divide, stack operations, all conditional branches, calls,
// software interrupts, and the REP string primitives used by the
// decoder runtime's memcpy/memset. Anything outside the subset decodes
// to an error, which the VM treats as an illegal-instruction trap —
// mirroring vx32's refusal to translate unsafe instructions.
package x86

import "fmt"

// Reg identifies one of the eight 32-bit general-purpose registers.
type Reg uint8

// The eight general-purpose registers, in standard encoding order.
const (
	EAX Reg = 0
	ECX Reg = 1
	EDX Reg = 2
	EBX Reg = 3
	ESP Reg = 4
	EBP Reg = 5
	ESI Reg = 6
	EDI Reg = 7

	// NoReg marks an absent base or index register in a memory operand.
	NoReg Reg = 0xFF
)

var regNames = [8]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}
var reg8Names = [8]string{"al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"}
var reg16Names = [8]string{"ax", "cx", "dx", "bx", "sp", "bp", "si", "di"}

// String returns the conventional AT&T-free register mnemonic (e.g. "eax").
func (r Reg) String() string {
	if r < 8 {
		return regNames[r]
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// CC is an x86 condition code, numbered exactly as in the opcode maps
// (Jcc = 0x70+cc / 0x0F 0x80+cc, SETcc = 0x0F 0x90+cc).
type CC uint8

// Condition codes in hardware encoding order.
const (
	CCO  CC = 0x0 // overflow
	CCNO CC = 0x1 // not overflow
	CCB  CC = 0x2 // below (unsigned <)
	CCAE CC = 0x3 // above or equal (unsigned >=)
	CCE  CC = 0x4 // equal
	CCNE CC = 0x5 // not equal
	CCBE CC = 0x6 // below or equal (unsigned <=)
	CCA  CC = 0x7 // above (unsigned >)
	CCS  CC = 0x8 // sign
	CCNS CC = 0x9 // not sign
	CCP  CC = 0xA // parity
	CCNP CC = 0xB // not parity
	CCL  CC = 0xC // less (signed <)
	CCGE CC = 0xD // greater or equal (signed >=)
	CCLE CC = 0xE // less or equal (signed <=)
	CCG  CC = 0xF // greater (signed >)
)

var ccNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// String returns the condition suffix ("e", "ne", "l", ...).
func (c CC) String() string {
	if c < 16 {
		return ccNames[c]
	}
	return fmt.Sprintf("cc(%d)", uint8(c))
}

// Op is an instruction operation.
type Op uint8

// Operations in the VXA subset.
const (
	BAD Op = iota

	MOV   // mov dst, src
	MOVZX // movzx r32, r/m8 or r/m16
	MOVSX // movsx r32, r/m8 or r/m16
	LEA   // lea r32, m
	XCHG  // xchg r/m, r

	ADD
	ADC
	SUB
	SBB
	AND
	OR
	XOR
	CMP
	TEST

	INC
	DEC
	NEG
	NOT

	IMUL  // two- or three-operand signed multiply
	MUL1  // one-operand unsigned multiply (edx:eax = eax * r/m)
	IMUL1 // one-operand signed multiply (edx:eax = eax * r/m)
	DIV   // unsigned divide of edx:eax
	IDIV  // signed divide of edx:eax

	SHL
	SHR
	SAR
	ROL
	ROR

	CDQ // sign-extend eax into edx

	PUSH
	POP

	CALL  // call rel32
	CALLM // call r/m32 (indirect)
	RET   // ret, optionally with immediate stack adjustment
	JMP   // jmp rel8/rel32
	JMPM  // jmp r/m32 (indirect)
	JCC   // conditional jump

	SETCC // set byte on condition

	INT // software interrupt (the virtual system call gate)
	NOP
	HLT // privileged; always traps in the VM
	UD2 // defined-illegal instruction

	MOVSB // movs byte [edi], [esi]; honours the REP prefix
	STOSB // stos byte [edi], al; honours the REP prefix
	MOVSD // movs dword [edi], [esi]; honours the REP prefix
	STOSD // stos dword [edi], eax; honours the REP prefix
)

var opNames = map[Op]string{
	BAD: "(bad)", MOV: "mov", MOVZX: "movzx", MOVSX: "movsx", LEA: "lea",
	XCHG: "xchg", ADD: "add", ADC: "adc", SUB: "sub", SBB: "sbb",
	AND: "and", OR: "or", XOR: "xor", CMP: "cmp", TEST: "test",
	INC: "inc", DEC: "dec", NEG: "neg", NOT: "not",
	IMUL: "imul", MUL1: "mul", IMUL1: "imul", DIV: "div", IDIV: "idiv",
	SHL: "shl", SHR: "shr", SAR: "sar", ROL: "rol", ROR: "ror",
	CDQ: "cdq", PUSH: "push", POP: "pop",
	CALL: "call", CALLM: "call", RET: "ret", JMP: "jmp", JMPM: "jmp",
	JCC: "j", SETCC: "set", INT: "int", NOP: "nop", HLT: "hlt", UD2: "ud2",
	MOVSB: "movsb", STOSB: "stosb", MOVSD: "movsd", STOSD: "stosd",
}

// String returns the base mnemonic for the operation.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ArgKind classifies an instruction operand.
type ArgKind uint8

// Operand kinds.
const (
	KindNone ArgKind = iota
	KindReg          // a general-purpose register (size selects the view)
	KindMem          // a memory reference [base + index*scale + disp]
	KindImm          // an immediate value
)

// Arg is one instruction operand. The zero value is "no operand".
//
// For KindMem, Base and Index may be NoReg; Scale is 1, 2, 4 or 8 and is
// meaningful only when Index is present. Size is the access width in
// bytes (1, 2 or 4). Sym optionally names a symbol whose final address
// the assembler adds into Disp (for KindMem) or Imm (for KindImm) at
// link time; it is ignored by Encode and never produced by Decode.
type Arg struct {
	Kind  ArgKind
	Reg   Reg   // KindReg
	Base  Reg   // KindMem
	Index Reg   // KindMem
	Scale uint8 // KindMem
	Disp  int32 // KindMem
	Imm   int32 // KindImm
	Size  uint8 // access width in bytes: 1, 2 or 4
	Sym   string
}

// R returns a 32-bit register operand.
func R(r Reg) Arg { return Arg{Kind: KindReg, Reg: r, Size: 4} }

// R8 returns an 8-bit register operand (0-3 = AL..BL, 4-7 = AH..BH).
func R8(r Reg) Arg { return Arg{Kind: KindReg, Reg: r, Size: 1} }

// I returns a 32-bit immediate operand.
func I(v int32) Arg { return Arg{Kind: KindImm, Imm: v, Size: 4} }

// I8 returns an 8-bit immediate operand.
func I8(v int8) Arg { return Arg{Kind: KindImm, Imm: int32(v), Size: 1} }

// ISym returns an immediate operand holding the address of sym.
func ISym(sym string) Arg { return Arg{Kind: KindImm, Size: 4, Sym: sym} }

// M returns a 32-bit memory operand [base+disp].
func M(base Reg, disp int32) Arg {
	return Arg{Kind: KindMem, Base: base, Index: NoReg, Disp: disp, Size: 4}
}

// M8 returns an 8-bit memory operand [base+disp].
func M8(base Reg, disp int32) Arg {
	return Arg{Kind: KindMem, Base: base, Index: NoReg, Disp: disp, Size: 1}
}

// M16 returns a 16-bit memory operand [base+disp].
func M16(base Reg, disp int32) Arg {
	return Arg{Kind: KindMem, Base: base, Index: NoReg, Disp: disp, Size: 2}
}

// MSIB returns a memory operand [base + index*scale + disp] of the given
// width in bytes.
func MSIB(base, index Reg, scale uint8, disp int32, size uint8) Arg {
	return Arg{Kind: KindMem, Base: base, Index: index, Scale: scale, Disp: disp, Size: size}
}

// MAbs returns a memory operand addressing the absolute location of sym
// plus disp, with the given width.
func MAbs(sym string, disp int32, size uint8) Arg {
	return Arg{Kind: KindMem, Base: NoReg, Index: NoReg, Disp: disp, Size: size, Sym: sym}
}

// String renders the operand in Intel-ish syntax.
func (a Arg) String() string {
	switch a.Kind {
	case KindNone:
		return ""
	case KindReg:
		switch a.Size {
		case 1:
			if a.Reg < 8 {
				return reg8Names[a.Reg]
			}
		case 2:
			if a.Reg < 8 {
				return reg16Names[a.Reg]
			}
		}
		return a.Reg.String()
	case KindImm:
		if a.Sym != "" {
			return fmt.Sprintf("$%s%+d", a.Sym, a.Imm)
		}
		return fmt.Sprintf("0x%x", uint32(a.Imm))
	case KindMem:
		s := ""
		switch a.Size {
		case 1:
			s = "byte "
		case 2:
			s = "word "
		case 4:
			s = "dword "
		}
		s += "["
		sep := ""
		if a.Sym != "" {
			s += a.Sym
			sep = "+"
		}
		if a.Base != NoReg {
			s += sep + a.Base.String()
			sep = "+"
		}
		if a.Index != NoReg {
			s += fmt.Sprintf("%s%s*%d", sep, a.Index.String(), a.Scale)
			sep = "+"
		}
		if a.Disp != 0 || sep == "" {
			if a.Disp >= 0 {
				s += fmt.Sprintf("%s0x%x", sep, a.Disp)
			} else {
				s += fmt.Sprintf("-0x%x", -a.Disp)
			}
		}
		return s + "]"
	}
	return "?"
}

// Inst is one decoded instruction.
type Inst struct {
	Op  Op
	Dst Arg // first operand (destination for two-operand forms)
	Src Arg // second operand
	Aux Arg // third operand (three-operand IMUL immediate)

	CC  CC     // condition for JCC/SETCC
	Rel int32  // branch displacement for CALL/JMP/JCC, relative to next inst
	Sym string // branch target symbol (assembler only; Decode leaves it empty)

	Rep bool  // REP prefix on MOVSB/STOSB/MOVSD/STOSD
	Len uint8 // encoded length in bytes (set by Decode and Encode)
}

// String renders the instruction in Intel-ish syntax. Branch targets are
// shown as relative displacements (the decoder does not know absolute
// addresses).
func (i Inst) String() string {
	switch i.Op {
	case JCC:
		return fmt.Sprintf("j%s .%+d", i.CC, i.Rel)
	case SETCC:
		return fmt.Sprintf("set%s %s", i.CC, i.Dst)
	case CALL, JMP:
		if i.Sym != "" {
			return fmt.Sprintf("%s %s", i.Op, i.Sym)
		}
		return fmt.Sprintf("%s .%+d", i.Op, i.Rel)
	case RET:
		if i.Dst.Kind == KindImm && i.Dst.Imm != 0 {
			return fmt.Sprintf("ret 0x%x", i.Dst.Imm)
		}
		return "ret"
	case INT:
		return fmt.Sprintf("int 0x%x", i.Dst.Imm)
	case MOVSB, STOSB, MOVSD, STOSD:
		if i.Rep {
			return "rep " + i.Op.String()
		}
		return i.Op.String()
	}
	switch {
	case i.Aux.Kind != KindNone:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Dst, i.Src, i.Aux)
	case i.Src.Kind != KindNone:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Dst, i.Src)
	case i.Dst.Kind != KindNone:
		return fmt.Sprintf("%s %s", i.Op, i.Dst)
	default:
		return i.Op.String()
	}
}
