package x86

// FlagSet is a bitset over the five arithmetic EFLAGS bits the VXA
// subset can observe. It is the currency of the translator's flag
// liveness analysis: every opcode form declares which flags it reads
// and writes, and every condition code declares which flags it tests.
type FlagSet uint8

// Individual flag bits.
const (
	FlagCF FlagSet = 1 << iota
	FlagPF
	FlagZF
	FlagSF
	FlagOF

	FlagsNone FlagSet = 0
	FlagsAll  FlagSet = FlagCF | FlagPF | FlagZF | FlagSF | FlagOF
)

// ccUses[cc] is the set of flags condition code cc tests. Each
// complementary pair (cc, cc^1) tests the same set.
var ccUses = [16]FlagSet{
	CCO: FlagOF, CCNO: FlagOF,
	CCB: FlagCF, CCAE: FlagCF,
	CCE: FlagZF, CCNE: FlagZF,
	CCBE: FlagCF | FlagZF, CCA: FlagCF | FlagZF,
	CCS: FlagSF, CCNS: FlagSF,
	CCP: FlagPF, CCNP: FlagPF,
	CCL: FlagSF | FlagOF, CCGE: FlagSF | FlagOF,
	CCLE: FlagZF | FlagSF | FlagOF, CCG: FlagZF | FlagSF | FlagOF,
}

// CCUses returns the flags condition code cc reads.
func CCUses(cc CC) FlagSet {
	if cc < 16 {
		return ccUses[cc]
	}
	return FlagsAll
}

// Negate returns the complementary condition (taken exactly when cc is
// not). The hardware encoding pairs complements at bit 0.
func (c CC) Negate() CC { return c ^ 1 }

// opFlagDef[op] is the set of flags op writes; opFlagUse[op] the set it
// reads. The tables describe the architectural opcode forms, not any
// one execution: a shift with a zero count writes nothing at runtime,
// but the form is still declared as writing (consumers that need the
// may-not-write distinction, like the translator's liveness pass, must
// special-case the runtime-variable shapes themselves).
//
// INC and DEC read CF only in the sense that they preserve it: a
// translator that re-records the full flag state for them must carry
// the incoming CF through, so it appears in their use set.
var opFlagDef = map[Op]FlagSet{
	ADD: FlagsAll, ADC: FlagsAll, SUB: FlagsAll, SBB: FlagsAll,
	AND: FlagsAll, OR: FlagsAll, XOR: FlagsAll, CMP: FlagsAll, TEST: FlagsAll,
	INC: FlagsAll &^ FlagCF, DEC: FlagsAll &^ FlagCF, NEG: FlagsAll,
	IMUL: FlagsAll, MUL1: FlagsAll, IMUL1: FlagsAll,
	SHL: FlagsAll, SHR: FlagsAll, SAR: FlagsAll,
	ROL: FlagCF | FlagOF, ROR: FlagCF | FlagOF,
}

var opFlagUse = map[Op]FlagSet{
	ADC: FlagCF, SBB: FlagCF,
	JCC: FlagsAll, SETCC: FlagsAll, // refine per-instruction with CCUses
}

// OpFlagDef returns the flags op may write. Ops absent from the table
// (moves, LEA, stack, control transfers, string ops, CDQ, NOT, DIV)
// write none.
func OpFlagDef(op Op) FlagSet { return opFlagDef[op] }

// OpFlagUse returns the flags op reads. JCC and SETCC report FlagsAll
// here; callers holding the decoded instruction should refine with
// CCUses(inst.CC).
func OpFlagUse(op Op) FlagSet { return opFlagUse[op] }

// InstFlagUse returns the flags one decoded instruction reads,
// refining the per-op table with the actual condition code for
// JCC/SETCC.
func (i *Inst) InstFlagUse() FlagSet {
	switch i.Op {
	case JCC, SETCC:
		return CCUses(i.CC)
	}
	return opFlagUse[i.Op]
}
