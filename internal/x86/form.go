package x86

// Form classifies the operand shape of an instruction: which of the
// dst/src slots are present and whether each is a register, memory
// reference or immediate. Translators (the VM's micro-op lowering pass)
// switch on the form to pick an operand-specialized handler at translate
// time instead of re-inspecting Arg kinds on every execution.
type Form uint8

// Operand forms. The two-letter names read dst-then-src: FormRM is
// "register destination, memory source".
const (
	FormNone  Form = iota // no operands
	FormR                 // single register operand
	FormM                 // single memory operand
	FormI                 // single immediate operand
	FormRR                // reg, reg
	FormRI                // reg, imm
	FormRM                // reg, mem
	FormMR                // mem, reg
	FormMI                // mem, imm
	FormOther             // anything else (three-operand, mem/mem, ...)
)

// Form returns the operand form of the instruction. Only the Dst/Src
// slots participate; a three-operand IMUL reports the form of its first
// two operands (its Aux immediate is inspected separately).
func (i *Inst) Form() Form {
	switch i.Dst.Kind {
	case KindNone:
		return FormNone
	case KindReg:
		switch i.Src.Kind {
		case KindNone:
			return FormR
		case KindReg:
			return FormRR
		case KindImm:
			return FormRI
		case KindMem:
			return FormRM
		}
	case KindMem:
		switch i.Src.Kind {
		case KindNone:
			return FormM
		case KindReg:
			return FormMR
		case KindImm:
			return FormMI
		}
	case KindImm:
		if i.Src.Kind == KindNone {
			return FormI
		}
	}
	return FormOther
}

// Reg8Slot resolves an 8-bit register operand to its 32-bit storage
// register and the bit shift of the byte view: AL..BL live in bits 0-7 of
// EAX..EBX, AH..BH in bits 8-15. Resolving the slot at translate time
// lets byte handlers use one shift/mask instead of re-deriving the
// partial-register mapping per step.
func Reg8Slot(r Reg) (store Reg, shift uint8) {
	if r < 4 {
		return r, 0
	}
	return r - 4, 8
}
