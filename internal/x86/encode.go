package x86

import (
	"errors"
	"fmt"
)

// ErrCannotEncode reports an Inst with no encoding in the VXA subset.
var ErrCannotEncode = errors.New("x86: cannot encode instruction")

// Fixup records a 32-bit absolute relocation slot inside an encoded
// instruction: the final address of Sym must be added to the little-endian
// word at byte offset Off.
type Fixup struct {
	Off int
	Sym string
}

type encoder struct {
	b   []byte
	fix []Fixup
}

func (e *encoder) u8(v uint8) { e.b = append(e.b, v) }
func (e *encoder) u16(v uint16) {
	e.b = append(e.b, byte(v), byte(v>>8))
}
func (e *encoder) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// u32sym emits a 32-bit word, registering a fixup when sym is non-empty.
func (e *encoder) u32sym(v uint32, sym string) {
	if sym != "" {
		e.fix = append(e.fix, Fixup{Off: len(e.b), Sym: sym})
	}
	e.u32(v)
}

// modRM encodes the ModRM byte (and SIB/displacement) for the register
// field value regField and the r/m operand rm.
func (e *encoder) modRM(regField uint8, rm Arg) error {
	if regField > 7 {
		return ErrCannotEncode
	}
	switch rm.Kind {
	case KindReg:
		if rm.Reg > 7 {
			return ErrCannotEncode
		}
		e.u8(0xC0 | regField<<3 | uint8(rm.Reg))
		return nil
	case KindMem:
		// fall through below
	default:
		return ErrCannotEncode
	}

	// Absolute address (no base, no index): mod=00, rm=101, disp32.
	if rm.Base == NoReg && rm.Index == NoReg {
		e.u8(regField<<3 | 0x05)
		e.u32sym(uint32(rm.Disp), rm.Sym)
		return nil
	}
	if rm.Index == ESP {
		return fmt.Errorf("%w: esp cannot be an index register", ErrCannotEncode)
	}

	// Choose the displacement form. A symbol reference always forces a
	// 32-bit displacement so the linker has a full word to patch.
	var mod uint8
	switch {
	case rm.Sym != "":
		mod = 2
	case rm.Disp == 0 && rm.Base != EBP && rm.Base != NoReg:
		mod = 0
	case rm.Disp >= -128 && rm.Disp <= 127 && rm.Base != NoReg:
		mod = 1
	default:
		mod = 2
	}

	needSIB := rm.Index != NoReg || rm.Base == ESP || rm.Base == NoReg
	if needSIB {
		base := uint8(5) // "no base" encoding (requires mod=00 + disp32)
		if rm.Base != NoReg {
			if rm.Base > 7 {
				return ErrCannotEncode
			}
			base = uint8(rm.Base)
		} else {
			mod = 0
		}
		var ss uint8
		switch rm.Scale {
		case 0, 1:
			ss = 0
		case 2:
			ss = 1
		case 4:
			ss = 2
		case 8:
			ss = 3
		default:
			return fmt.Errorf("%w: scale %d", ErrCannotEncode, rm.Scale)
		}
		index := uint8(4) // "no index"
		if rm.Index != NoReg {
			if rm.Index > 7 {
				return ErrCannotEncode
			}
			index = uint8(rm.Index)
		}
		if rm.Base == NoReg {
			// mod=00, base=101: disp32 with optional index.
			e.u8(mod<<6 | regField<<3 | 0x04)
			e.u8(ss<<6 | index<<3 | base)
			e.u32sym(uint32(rm.Disp), rm.Sym)
			return nil
		}
		if mod == 0 && rm.Base == EBP {
			mod = 1
		}
		e.u8(mod<<6 | regField<<3 | 0x04)
		e.u8(ss<<6 | index<<3 | base)
	} else {
		if rm.Base > 7 {
			return ErrCannotEncode
		}
		e.u8(mod<<6 | regField<<3 | uint8(rm.Base))
	}

	switch mod {
	case 1:
		e.u8(uint8(rm.Disp))
	case 2:
		e.u32sym(uint32(rm.Disp), rm.Sym)
	}
	return nil
}

// aluIndex maps ALU operations to their 0x00-block group numbers.
var aluIndex = map[Op]uint8{ADD: 0, OR: 1, ADC: 2, SBB: 3, AND: 4, SUB: 5, XOR: 6, CMP: 7}

// grp2Index maps shift operations to their group-2 ModRM reg fields.
var grp2Index = map[Op]uint8{ROL: 0, ROR: 1, SHL: 4, SHR: 5, SAR: 7}

// Encode encodes inst into machine bytes.
func Encode(inst Inst) ([]byte, error) {
	b, _, err := EncodeFixups(inst)
	return b, err
}

// EncodeFixups encodes inst and additionally reports the absolute
// relocation slots required by symbolic operands. Branch instructions
// (CALL/JMP/JCC) are encoded with their Rel field as-is; resolving a
// symbolic branch target is the assembler's job.
func EncodeFixups(inst Inst) ([]byte, []Fixup, error) {
	e := &encoder{}
	if err := e.inst(inst); err != nil {
		return nil, nil, err
	}
	if len(e.b) > 15 {
		return nil, nil, ErrCannotEncode
	}
	return e.b, e.fix, nil
}

func (e *encoder) inst(inst Inst) error {
	switch inst.Op {
	case MOV:
		return e.mov(inst)
	case MOVZX, MOVSX:
		if inst.Dst.Kind != KindReg || inst.Dst.Size != 4 {
			return ErrCannotEncode
		}
		var op uint8
		switch {
		case inst.Op == MOVZX && inst.Src.Size == 1:
			op = 0xB6
		case inst.Op == MOVZX && inst.Src.Size == 2:
			op = 0xB7
		case inst.Op == MOVSX && inst.Src.Size == 1:
			op = 0xBE
		case inst.Op == MOVSX && inst.Src.Size == 2:
			op = 0xBF
		default:
			return ErrCannotEncode
		}
		e.u8(0x0F)
		e.u8(op)
		return e.modRM(uint8(inst.Dst.Reg), inst.Src)
	case LEA:
		if inst.Dst.Kind != KindReg || inst.Src.Kind != KindMem {
			return ErrCannotEncode
		}
		e.u8(0x8D)
		return e.modRM(uint8(inst.Dst.Reg), inst.Src)
	case XCHG:
		if inst.Src.Kind != KindReg || inst.Src.Size != 4 {
			return ErrCannotEncode
		}
		e.u8(0x87)
		return e.modRM(uint8(inst.Src.Reg), inst.Dst)
	case ADD, ADC, SUB, SBB, AND, OR, XOR, CMP:
		return e.alu(inst)
	case TEST:
		switch inst.Src.Kind {
		case KindReg:
			if inst.Src.Size == 1 {
				e.u8(0x84)
			} else {
				e.u8(0x85)
			}
			return e.modRM(uint8(inst.Src.Reg), inst.Dst)
		case KindImm:
			if inst.Dst.Size == 1 {
				e.u8(0xF6)
				if err := e.modRM(0, inst.Dst); err != nil {
					return err
				}
				e.u8(uint8(inst.Src.Imm))
				return nil
			}
			e.u8(0xF7)
			if err := e.modRM(0, inst.Dst); err != nil {
				return err
			}
			e.u32sym(uint32(inst.Src.Imm), inst.Src.Sym)
			return nil
		}
		return ErrCannotEncode
	case INC, DEC:
		n := uint8(0)
		if inst.Op == DEC {
			n = 1
		}
		if inst.Dst.Kind == KindReg && inst.Dst.Size == 4 {
			e.u8(0x40 + n*8 + uint8(inst.Dst.Reg))
			return nil
		}
		if inst.Dst.Size == 1 {
			e.u8(0xFE)
		} else {
			e.u8(0xFF)
		}
		return e.modRM(n, inst.Dst)
	case NOT, NEG, MUL1, IMUL1, DIV, IDIV:
		field := map[Op]uint8{NOT: 2, NEG: 3, MUL1: 4, IMUL1: 5, DIV: 6, IDIV: 7}[inst.Op]
		if inst.Dst.Size == 1 {
			e.u8(0xF6)
		} else {
			e.u8(0xF7)
		}
		return e.modRM(field, inst.Dst)
	case IMUL:
		if inst.Dst.Kind != KindReg {
			return ErrCannotEncode
		}
		if inst.Aux.Kind == KindImm {
			e.u8(0x69)
			if err := e.modRM(uint8(inst.Dst.Reg), inst.Src); err != nil {
				return err
			}
			e.u32sym(uint32(inst.Aux.Imm), inst.Aux.Sym)
			return nil
		}
		e.u8(0x0F)
		e.u8(0xAF)
		return e.modRM(uint8(inst.Dst.Reg), inst.Src)
	case SHL, SHR, SAR, ROL, ROR:
		field := grp2Index[inst.Op]
		switch {
		case inst.Src.Kind == KindImm:
			if inst.Dst.Size == 1 {
				e.u8(0xC0)
			} else {
				e.u8(0xC1)
			}
			if err := e.modRM(field, inst.Dst); err != nil {
				return err
			}
			e.u8(uint8(inst.Src.Imm) & 31)
			return nil
		case inst.Src.Kind == KindReg && inst.Src.Reg == ECX && inst.Src.Size == 1:
			if inst.Dst.Size == 1 {
				e.u8(0xD2)
			} else {
				e.u8(0xD3)
			}
			return e.modRM(field, inst.Dst)
		}
		return ErrCannotEncode
	case CDQ:
		e.u8(0x99)
		return nil
	case PUSH:
		switch inst.Dst.Kind {
		case KindReg:
			if inst.Dst.Size != 4 || inst.Dst.Reg > 7 {
				return ErrCannotEncode
			}
			e.u8(0x50 + uint8(inst.Dst.Reg))
			return nil
		case KindImm:
			e.u8(0x68)
			e.u32sym(uint32(inst.Dst.Imm), inst.Dst.Sym)
			return nil
		case KindMem:
			e.u8(0xFF)
			return e.modRM(6, inst.Dst)
		}
		return ErrCannotEncode
	case POP:
		if inst.Dst.Kind != KindReg || inst.Dst.Size != 4 || inst.Dst.Reg > 7 {
			return ErrCannotEncode
		}
		e.u8(0x58 + uint8(inst.Dst.Reg))
		return nil
	case CALL:
		e.u8(0xE8)
		e.u32(uint32(inst.Rel))
		return nil
	case CALLM:
		e.u8(0xFF)
		return e.modRM(2, inst.Dst)
	case RET:
		if inst.Dst.Kind == KindImm && inst.Dst.Imm != 0 {
			e.u8(0xC2)
			e.u16(uint16(inst.Dst.Imm))
			return nil
		}
		e.u8(0xC3)
		return nil
	case JMP:
		e.u8(0xE9)
		e.u32(uint32(inst.Rel))
		return nil
	case JMPM:
		e.u8(0xFF)
		return e.modRM(4, inst.Dst)
	case JCC:
		e.u8(0x0F)
		e.u8(0x80 + uint8(inst.CC))
		e.u32(uint32(inst.Rel))
		return nil
	case SETCC:
		if inst.Dst.Size != 1 {
			return ErrCannotEncode
		}
		e.u8(0x0F)
		e.u8(0x90 + uint8(inst.CC))
		return e.modRM(0, inst.Dst)
	case INT:
		if inst.Dst.Kind != KindImm {
			return ErrCannotEncode
		}
		e.u8(0xCD)
		e.u8(uint8(inst.Dst.Imm))
		return nil
	case NOP:
		e.u8(0x90)
		return nil
	case HLT:
		e.u8(0xF4)
		return nil
	case UD2:
		e.u8(0x0F)
		e.u8(0x0B)
		return nil
	case MOVSB, STOSB, MOVSD, STOSD:
		if inst.Rep {
			e.u8(0xF3)
		}
		e.u8(map[Op]uint8{MOVSB: 0xA4, MOVSD: 0xA5, STOSB: 0xAA, STOSD: 0xAB}[inst.Op])
		return nil
	}
	return fmt.Errorf("%w: %v", ErrCannotEncode, inst.Op)
}

func (e *encoder) mov(inst Inst) error {
	dst, src := inst.Dst, inst.Src
	switch {
	case src.Kind == KindImm && dst.Kind == KindReg && dst.Size == 4:
		if dst.Reg > 7 {
			return ErrCannotEncode
		}
		e.u8(0xB8 + uint8(dst.Reg))
		e.u32sym(uint32(src.Imm), src.Sym)
		return nil
	case src.Kind == KindImm && dst.Kind == KindReg && dst.Size == 1:
		if dst.Reg > 7 {
			return ErrCannotEncode
		}
		e.u8(0xB0 + uint8(dst.Reg))
		e.u8(uint8(src.Imm))
		return nil
	case src.Kind == KindImm && dst.Kind == KindMem && dst.Size == 1:
		e.u8(0xC6)
		if err := e.modRM(0, dst); err != nil {
			return err
		}
		e.u8(uint8(src.Imm))
		return nil
	case src.Kind == KindImm && dst.Kind == KindMem:
		e.u8(0xC7)
		if err := e.modRM(0, dst); err != nil {
			return err
		}
		e.u32sym(uint32(src.Imm), src.Sym)
		return nil
	case src.Kind == KindReg && src.Size == 1:
		e.u8(0x88)
		return e.modRM(uint8(src.Reg), dst)
	case src.Kind == KindReg:
		e.u8(0x89)
		return e.modRM(uint8(src.Reg), dst)
	case dst.Kind == KindReg && dst.Size == 1 && src.Kind == KindMem:
		e.u8(0x8A)
		return e.modRM(uint8(dst.Reg), src)
	case dst.Kind == KindReg && src.Kind == KindMem:
		e.u8(0x8B)
		return e.modRM(uint8(dst.Reg), src)
	}
	return ErrCannotEncode
}

func (e *encoder) alu(inst Inst) error {
	group := aluIndex[inst.Op]
	dst, src := inst.Dst, inst.Src
	switch {
	case src.Kind == KindImm && dst.Size == 1:
		e.u8(0x80)
		if err := e.modRM(group, dst); err != nil {
			return err
		}
		e.u8(uint8(src.Imm))
		return nil
	case src.Kind == KindImm:
		if src.Sym == "" && src.Imm >= -128 && src.Imm <= 127 {
			e.u8(0x83)
			if err := e.modRM(group, dst); err != nil {
				return err
			}
			e.u8(uint8(src.Imm))
			return nil
		}
		e.u8(0x81)
		if err := e.modRM(group, dst); err != nil {
			return err
		}
		e.u32sym(uint32(src.Imm), src.Sym)
		return nil
	case src.Kind == KindReg && src.Size == 1:
		e.u8(group<<3 | 0x00)
		return e.modRM(uint8(src.Reg), dst)
	case src.Kind == KindReg:
		e.u8(group<<3 | 0x01)
		return e.modRM(uint8(src.Reg), dst)
	case dst.Kind == KindReg && dst.Size == 1 && src.Kind == KindMem:
		e.u8(group<<3 | 0x02)
		return e.modRM(uint8(dst.Reg), src)
	case dst.Kind == KindReg && src.Kind == KindMem:
		e.u8(group<<3 | 0x03)
		return e.modRM(uint8(dst.Reg), src)
	}
	return ErrCannotEncode
}
