package asm

import (
	"testing"

	"vxa/internal/x86"
)

func TestLinkLayout(t *testing.T) {
	u := New()
	u.DefData("ro1", ROData, []byte("hello"))
	u.DefData("d1", Data, []byte{1, 2, 3, 4})
	u.DefBSS("b1", 100, 16)
	u.DefBSS("b2", 4, 4)
	u.Label("start")
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.ISym("ro1"))
	u.Op2(x86.MOV, x86.R(x86.EBX), x86.ISym("b1"))
	u.Op0(x86.RET)
	im, err := u.Link(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if im.Symbols["start"] != 0x1000 {
		t.Fatalf("start = %#x", im.Symbols["start"])
	}
	if im.Symbols["ro1"] != im.ROBase() {
		t.Fatalf("ro1 = %#x, ROBase = %#x", im.Symbols["ro1"], im.ROBase())
	}
	if im.Symbols["d1"] != im.DataBase() {
		t.Fatalf("d1 = %#x, DataBase = %#x", im.Symbols["d1"], im.DataBase())
	}
	if b1 := im.Symbols["b1"]; b1 < im.BSSBase() || b1%16 != 0 {
		t.Fatalf("b1 = %#x (bss base %#x)", b1, im.BSSBase())
	}
	if im.Symbols["__end"] != im.End() {
		t.Fatalf("__end = %#x, End = %#x", im.Symbols["__end"], im.End())
	}
	// The ro1 string must actually be in the blob at its address.
	blob := im.Blob()
	off := im.Symbols["ro1"] - im.Base
	if string(blob[off:off+5]) != "hello" {
		t.Fatalf("ro1 content misplaced")
	}
}

func TestBranchResolution(t *testing.T) {
	u := New()
	u.Label("start")
	u.Jmp("target")
	u.Op0(x86.NOP) // skipped
	u.Label("target")
	u.Op0(x86.RET)
	im, err := u.Link(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	// jmp rel32 is 5 bytes; target is at +6; rel = 6 - 5 = 1.
	inst, err := x86.Decode(im.Text)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Op != x86.JMP || inst.Rel != 1 {
		t.Fatalf("jmp rel = %d, want 1", inst.Rel)
	}
}

func TestBackwardBranch(t *testing.T) {
	u := New()
	u.Label("loop")
	u.Op1(x86.DEC, x86.R(x86.ECX))
	u.Jcc(x86.CCNE, "loop")
	im, err := u.Link(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	// dec ecx = 1 byte, jcc rel32 = 6 bytes; rel = -(1+6) = -7.
	inst, err := x86.Decode(im.Text[1:])
	if err != nil {
		t.Fatal(err)
	}
	if inst.Rel != -7 {
		t.Fatalf("jcc rel = %d, want -7", inst.Rel)
	}
}

func TestErrors(t *testing.T) {
	u := New()
	u.Label("start")
	u.Jmp("nowhere")
	if _, err := u.Link(0x1000); err == nil {
		t.Error("undefined branch target accepted")
	}

	u2 := New()
	u2.Label("dup")
	u2.Label("dup")
	if _, err := u2.Link(0x1000); err == nil {
		t.Error("duplicate label accepted")
	}

	u3 := New()
	u3.DefData("x", ROData, []byte{1})
	u3.DefBSS("x", 4, 4)
	if _, err := u3.Link(0x1000); err == nil {
		t.Error("duplicate data symbol accepted")
	}
}
