// Package asm is a programmatic assembler and linker for the VXA x86-32
// subset. It is the back-end of the vxcc compiler and of the hand-written
// assembly fragments in the decoder runtime.
//
// A Unit collects text-section instructions plus read-only data,
// initialized data, and BSS allocations, all addressed by symbol. Link
// lays the sections out at a base address, resolves branch targets and
// absolute relocations, and produces a flat Image ready to be wrapped in
// an ELF executable or loaded straight into the VM.
package asm

import (
	"fmt"
	"sort"

	"vxa/internal/x86"
)

// Section identifies a data section of a Unit.
type Section uint8

// Sections, in layout order after text.
const (
	ROData Section = iota // read-only data (string literals, tables)
	Data                  // initialized writable data
	BSS                   // zero-initialized writable data
)

type textItem struct {
	inst    x86.Inst
	isLabel bool
	label   string
}

type dataSym struct {
	name    string
	section Section
	data    []byte // nil for BSS
	size    uint32
	align   uint32
}

// Unit is a program being assembled.
type Unit struct {
	text  []textItem
	data  []dataSym
	names map[string]bool
	errs  []error
}

// New returns an empty Unit.
func New() *Unit {
	return &Unit{names: make(map[string]bool)}
}

func (u *Unit) errf(format string, args ...any) {
	u.errs = append(u.errs, fmt.Errorf(format, args...))
}

// Label defines a text symbol at the current position.
func (u *Unit) Label(name string) {
	if u.names[name] {
		u.errf("asm: duplicate symbol %q", name)
		return
	}
	u.names[name] = true
	u.text = append(u.text, textItem{isLabel: true, label: name})
}

// Emit appends an instruction to the text section.
func (u *Unit) Emit(inst x86.Inst) {
	u.text = append(u.text, textItem{inst: inst})
}

// Op2 appends a two-operand instruction.
func (u *Unit) Op2(op x86.Op, dst, src x86.Arg) {
	u.Emit(x86.Inst{Op: op, Dst: dst, Src: src})
}

// Op1 appends a one-operand instruction.
func (u *Unit) Op1(op x86.Op, dst x86.Arg) {
	u.Emit(x86.Inst{Op: op, Dst: dst})
}

// Op0 appends a zero-operand instruction.
func (u *Unit) Op0(op x86.Op) {
	u.Emit(x86.Inst{Op: op})
}

// Call appends a call to the named text symbol.
func (u *Unit) Call(sym string) {
	u.Emit(x86.Inst{Op: x86.CALL, Sym: sym})
}

// Jmp appends an unconditional jump to the named symbol.
func (u *Unit) Jmp(sym string) {
	u.Emit(x86.Inst{Op: x86.JMP, Sym: sym})
}

// Jcc appends a conditional jump to the named symbol.
func (u *Unit) Jcc(cc x86.CC, sym string) {
	u.Emit(x86.Inst{Op: x86.JCC, CC: cc, Sym: sym})
}

// DefData defines an initialized symbol in the given section.
func (u *Unit) DefData(name string, section Section, data []byte) {
	if u.names[name] {
		u.errf("asm: duplicate symbol %q", name)
		return
	}
	if section == BSS {
		u.errf("asm: DefData into BSS for %q; use DefBSS", name)
		return
	}
	u.names[name] = true
	u.data = append(u.data, dataSym{
		name: name, section: section,
		data: append([]byte(nil), data...), size: uint32(len(data)), align: 4,
	})
}

// DefBSS reserves size zero bytes for name with the given alignment.
func (u *Unit) DefBSS(name string, size, align uint32) {
	if u.names[name] {
		u.errf("asm: duplicate symbol %q", name)
		return
	}
	if align == 0 {
		align = 4
	}
	u.names[name] = true
	u.data = append(u.data, dataSym{name: name, section: BSS, size: size, align: align})
}

// Image is the linked program.
type Image struct {
	Base    uint32 // address of the first text byte
	Text    []byte
	ROData  []byte // placed immediately after Text
	Data    []byte // placed after ROData
	BSSSize uint32 // zero region after Data

	Symbols map[string]uint32 // every defined symbol's final address
}

// ROBase returns the address of the read-only data section.
func (im *Image) ROBase() uint32 { return im.Base + uint32(len(im.Text)) }

// DataBase returns the address of the writable data section.
func (im *Image) DataBase() uint32 { return im.ROBase() + uint32(len(im.ROData)) }

// BSSBase returns the address of the BSS region.
func (im *Image) BSSBase() uint32 { return im.DataBase() + uint32(len(im.Data)) }

// End returns the first address past the image (end of BSS).
func (im *Image) End() uint32 { return im.BSSBase() + im.BSSSize }

func align(v, a uint32) uint32 {
	return (v + a - 1) &^ (a - 1)
}

// Link assembles and links the unit at the given base address.
func (u *Unit) Link(base uint32) (*Image, error) {
	if len(u.errs) > 0 {
		return nil, u.errs[0]
	}

	type placed struct {
		off  int // offset in text blob
		len  int
		inst x86.Inst
		fix  []x86.Fixup
	}

	// Pass 1: encode text with zero rel fields, note label offsets.
	syms := make(map[string]uint32)
	var text []byte
	var insts []placed
	for _, it := range u.text {
		if it.isLabel {
			syms[it.label] = uint32(len(text))
			continue
		}
		inst := it.inst
		// Branches to symbols are encoded with rel=0 now, patched in pass 2.
		b, fix, err := x86.EncodeFixups(inst)
		if err != nil {
			return nil, fmt.Errorf("asm: %v: %w", inst, err)
		}
		insts = append(insts, placed{off: len(text), len: len(b), inst: inst, fix: fix})
		text = append(text, b...)
	}

	// Lay out data sections after text.
	im := &Image{Base: base, Text: text, Symbols: syms}
	roBase := align(base+uint32(len(text)), 16)
	// Padding between text end and rodata start is folded into Text so the
	// sections stay contiguous in one loadable blob.
	pad := roBase - (base + uint32(len(text)))
	im.Text = append(im.Text, make([]byte, pad)...)

	cursor := roBase
	for _, sec := range []Section{ROData, Data} {
		var blob []byte
		for i := range u.data {
			d := &u.data[i]
			if d.section != sec {
				continue
			}
			off := align(cursor+uint32(len(blob)), d.align) - cursor
			blob = append(blob, make([]byte, int(off)-len(blob))...)
			syms[d.name] = cursor + off
			blob = append(blob, d.data...)
		}
		// Pad each section to a 16-byte boundary so the next section's
		// base is just the previous end; the image stays one flat blob.
		padded := align(cursor+uint32(len(blob)), 16) - cursor
		blob = append(blob, make([]byte, int(padded)-len(blob))...)
		if sec == ROData {
			im.ROData = blob
		} else {
			im.Data = blob
		}
		cursor += uint32(len(blob))
	}
	bssBase := cursor
	bss := uint32(0)
	for i := range u.data {
		d := &u.data[i]
		if d.section != BSS {
			continue
		}
		a := align(bssBase+bss, d.align) - bssBase
		syms[d.name] = bssBase + a
		bss = a + d.size
	}
	im.BSSSize = bss

	// Text labels become absolute addresses.
	for _, it := range u.text {
		if it.isLabel {
			syms[it.label] += base
		}
	}
	// The linker-provided __end symbol marks the end of BSS — the start
	// of the heap a program may claim with setperm.
	if _, defined := syms["__end"]; !defined {
		syms["__end"] = im.End()
	}

	// Pass 2: patch branch targets and absolute fixups by adding the
	// resolved address into the 32-bit little-endian slot.
	add32 := func(off int, v uint32) {
		old := uint32(im.Text[off]) | uint32(im.Text[off+1])<<8 |
			uint32(im.Text[off+2])<<16 | uint32(im.Text[off+3])<<24
		n := old + v
		im.Text[off] = byte(n)
		im.Text[off+1] = byte(n >> 8)
		im.Text[off+2] = byte(n >> 16)
		im.Text[off+3] = byte(n >> 24)
	}

	for _, p := range insts {
		switch p.inst.Op {
		case x86.CALL, x86.JMP, x86.JCC:
			if p.inst.Sym == "" {
				break
			}
			target, ok := syms[p.inst.Sym]
			if !ok {
				return nil, fmt.Errorf("asm: undefined symbol %q in %v", p.inst.Sym, p.inst)
			}
			next := base + uint32(p.off) + uint32(p.len)
			rel := target - next
			add32(p.off+p.len-4, rel)
		}
		for _, f := range p.fix {
			target, ok := syms[f.Sym]
			if !ok {
				return nil, fmt.Errorf("asm: undefined symbol %q in %v", f.Sym, p.inst)
			}
			add32(p.off+f.Off, target)
		}
	}
	return im, nil
}

// Blob returns the contiguous initialized image (text + rodata + data).
func (im *Image) Blob() []byte {
	b := make([]byte, 0, len(im.Text)+len(im.ROData)+len(im.Data))
	b = append(b, im.Text...)
	b = append(b, im.ROData...)
	b = append(b, im.Data...)
	return b
}

// SortedSymbols returns symbol names sorted by address, for disassembly.
func (im *Image) SortedSymbols() []string {
	names := make([]string, 0, len(im.Symbols))
	for n := range im.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := im.Symbols[names[i]], im.Symbols[names[j]]
		if a != b {
			return a < b
		}
		return names[i] < names[j]
	})
	return names
}
