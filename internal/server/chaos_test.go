package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vxa/internal/fault"
	"vxa/internal/vmpool"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// arm arms the fault registry for the test body and guarantees disarm
// on exit, whatever the test does in between.
func arm(t *testing.T, spec string) {
	t.Helper()
	if err := fault.ArmFromSpec(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disarm)
}

// ---------- decoder quarantine over HTTP ----------

// TestQuarantineFailFastAndRecovery is the acceptance check for the
// circuit breaker end to end: a deterministically-trapping decoder is
// quarantined after Threshold failures, subsequent requests fail fast
// with 521 + Retry-After without consuming an admission slot or VM
// lease, readiness degrades, and once the decoder behaves again the
// half-open probe closes the breaker and traffic flows.
func TestQuarantineFailFastAndRecovery(t *testing.T) {
	const threshold = 3
	backoff := 400 * time.Millisecond
	s := New(Config{
		MemSize: 16 << 20,
		Health:  vmpool.HealthConfig{Threshold: threshold, Backoff: backoff, MaxBackoff: 2 * time.Second},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testText(1 << 12)
	enc := encodeDeflate(t, raw)

	// Every guest syscall faults: the decoder traps deterministically on
	// its very first read, which is exactly the "hostile decoder"
	// failure the breaker exists to contain.
	arm(t, "rate=1,seed=1,points=syscall")
	for i := 0; i < threshold; i++ {
		resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", enc)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("trap %d: status %d, want 422: %s", i, resp.StatusCode, body)
		}
	}
	fault.Disarm() // the decoder is "fixed"; only the breaker remembers

	// The breaker is now open: requests fail fast pre-admission.
	admBefore := s.Admission().Stats()
	missBefore := s.Cache().Stats().Misses
	start := time.Now()
	resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", enc)
	elapsed := time.Since(start)
	if resp.StatusCode != StatusDecoderQuarantined {
		t.Fatalf("quarantined: status %d, want %d: %s", resp.StatusCode, StatusDecoderQuarantined, body)
	}
	if !strings.Contains(string(body), "quarantined") {
		t.Fatalf("quarantined body does not say so: %s", body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("fail-fast took %v, expected well under the decode cost", elapsed)
	}
	admAfter := s.Admission().Stats()
	if admAfter.Admitted != admBefore.Admitted {
		t.Fatalf("fail-fast consumed an admission slot: %+v -> %+v", admBefore, admAfter)
	}
	if got := s.Cache().Stats().Misses; got != missBefore {
		t.Fatalf("fail-fast built a snapshot: misses %d -> %d", missBefore, got)
	}

	h := s.Cache().Health()
	if h.Trips == 0 || h.Open != 1 || h.Failures.Traps < threshold {
		t.Fatalf("health after trip = %+v", h)
	}
	if q := s.Cache().Stats().Quarantined; q == 0 {
		t.Fatalf("quarantine evicted no snapshot lines")
	}
	if m := s.MetricsSnapshot(); m.ErrorKinds["decoder quarantined"] == 0 {
		t.Fatalf("error kinds missing quarantine: %v", m.ErrorKinds)
	}
	if ready, reasons := s.Readiness(); ready || len(reasons) == 0 {
		t.Fatalf("readiness with an open breaker = %v %v", ready, reasons)
	}

	// Past the backoff the next request is the half-open probe; the
	// decoder behaves now, so it closes the breaker and serves.
	time.Sleep(backoff + 100*time.Millisecond)
	resp, body = post(t, ts.URL+"/v1/decode?codec=deflate", enc)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, raw) {
		t.Fatalf("probe: status %d, %d bytes", resp.StatusCode, len(body))
	}
	h = s.Cache().Health()
	if h.Open != 0 || h.ProbeSuccesses == 0 {
		t.Fatalf("health after probe = %+v", h)
	}
	if ready, reasons := s.Readiness(); !ready {
		t.Fatalf("not ready after recovery: %v", reasons)
	}
	// And ordinary traffic flows again.
	if resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", enc); resp.StatusCode != http.StatusOK || !bytes.Equal(body, raw) {
		t.Fatalf("post-recovery: status %d, %d bytes", resp.StatusCode, len(body))
	}
}

// ---------- drain and readiness ----------

// TestDrainLifecycle: StartDrain flips readiness (not liveness), decode
// work sheds with 503 + Retry-After, and Close empties the cache.
func TestDrainLifecycle(t *testing.T) {
	s := New(Config{MemSize: 16 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testText(1 << 10)
	enc := encodeDeflate(t, raw)
	if resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", enc); resp.StatusCode != http.StatusOK || !bytes.Equal(body, raw) {
		t.Fatalf("pre-drain decode: status %d", resp.StatusCode)
	}

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}
	resp, body := get("/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d %s", resp.StatusCode, body)
	}

	s.StartDrain()

	// Liveness is untouched: the process is healthy, just leaving.
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	resp, body = get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz has no Retry-After")
	}
	var rz struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons"`
	}
	if err := json.Unmarshal(body, &rz); err != nil || rz.Ready || len(rz.Reasons) == 0 || rz.Reasons[0] != "draining" {
		t.Fatalf("readyz body = %s (err %v)", body, err)
	}

	// New decode work sheds with 503 + Retry-After on every endpoint.
	arc := buildArchive(t, map[string][]byte{"doc.txt": raw})
	for _, req := range []struct {
		path    string
		payload []byte
	}{
		{"/v1/decode?codec=deflate", enc},
		{"/v1/extract?entry=doc.txt", arc},
		{"/v1/verify", arc},
	} {
		resp, body := post(t, ts.URL+req.path, req.payload)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: %d %s", req.path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s while draining: no Retry-After", req.path)
		}
	}

	// Close drops the cache's idle VMs (snapshots stay resident — they
	// are cheap and Close must stay useful mid-flight) and leaves the
	// server in its terminal draining state.
	s.Close()
	if n := s.Cache().Outstanding(); n != 0 {
		t.Fatalf("%d leases outstanding after Close", n)
	}
	if m := s.MetricsSnapshot(); !m.Draining || m.Ready {
		t.Fatalf("metrics after Close: draining=%v ready=%v", m.Draining, m.Ready)
	}
}

// TestReadinessShedRate: a window in which most admissions shed flips
// readiness; a clean window restores it.
func TestReadinessShedRate(t *testing.T) {
	s := New(Config{
		MemSize:       16 << 20,
		MaxInFlight:   1,
		MaxQueue:      1,
		ReadyShedRate: 0.2,
		ReadyWindow:   10 * time.Millisecond,
	})
	defer s.Close()
	if ready, reasons := s.Readiness(); !ready { // primes the window
		t.Fatalf("fresh server not ready: %v", reasons)
	}

	// One admitted, one expired, one shed: shed rate 2/3 over the window.
	a := s.Admission()
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		_, err := a.Acquire(ctx)
		queued <- err
	}()
	waitFor(t, time.Second, "waiter to queue", func() bool { return a.QueueDepth() == 1 })
	if _, err := a.Acquire(context.Background()); err != ErrOverloaded {
		t.Fatalf("overflow acquire: %v", err)
	}
	if err := <-queued; err != ErrExpired {
		t.Fatalf("queued acquire: %v", err)
	}
	release()

	time.Sleep(15 * time.Millisecond) // let the window rotate
	ready, reasons := s.Readiness()
	if ready {
		t.Fatalf("ready despite a 2/3 shed window (stats %+v)", a.Stats())
	}
	found := false
	for _, r := range reasons {
		if strings.Contains(r, "shed rate") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons = %v, want a shed-rate entry", reasons)
	}

	// A quiet window (no sheds, no admissions) decays the rate to zero.
	time.Sleep(15 * time.Millisecond)
	waitFor(t, time.Second, "readiness to recover", func() bool {
		ready, _ := s.Readiness()
		if !ready {
			time.Sleep(15 * time.Millisecond)
		}
		return ready
	})
}

// TestColdTierShedsFirst pins graceful degradation's first tier: once
// the queue passes the cold watermark, snapshot-miss (cold) requests
// shed with ErrColdShed while warm requests still queue.
func TestColdTierShedsFirst(t *testing.T) {
	a := NewAdmission(1, 4) // cold watermark = 2
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Two warm waiters put the queue at the watermark.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			go func() { <-stop; cancel() }()
			a.Acquire(ctx)
		}()
	}
	waitFor(t, time.Second, "warm waiters to queue", func() bool { return a.QueueDepth() == 2 })

	if _, err := a.AcquireTier(context.Background(), true); err != ErrColdShed {
		t.Fatalf("cold acquire at the watermark: err = %v, want ErrColdShed", err)
	}
	if StatusFor(ErrColdShed) != http.StatusServiceUnavailable {
		t.Fatalf("ErrColdShed status = %d, want 503", StatusFor(ErrColdShed))
	}
	// A warm request still joins the queue (depth 3 < 4).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.AcquireTier(ctx, false); err != ErrExpired {
		t.Fatalf("warm acquire past the watermark: err = %v, want ErrExpired (queued)", err)
	}
	close(stop)
	wg.Wait()
	if st := a.Stats(); st.ShedCold != 1 {
		t.Fatalf("stats = %+v, want exactly one cold shed", st)
	}
}

// ---------- lease-wait cancellation accounting ----------

// TestLeaseWaitCancelStatus499 pins the accounting contract for a
// client that gives up while queued for a slot: the wait lands in the
// queue span stage and the request files under the 499 cell as a
// cancellation, not under 504/expired semantics.
func TestLeaseWaitCancelStatus499(t *testing.T) {
	s := New(Config{MemSize: 16 << 20, MaxInFlight: 1, MaxQueue: 4, QueueTimeout: time.Minute})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Hold the only slot so the request under test must queue.
	release, err := s.Admission().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	enc := encodeDeflate(t, testText(1<<10))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/decode?codec=deflate", bytes.NewReader(enc))
		if err != nil {
			done <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request succeeded with status %d despite cancel", resp.StatusCode)
		}
		done <- err
	}()
	waitFor(t, 2*time.Second, "request to queue", func() bool { return s.Admission().QueueDepth() >= 1 })
	time.Sleep(30 * time.Millisecond) // accumulate measurable queue-stage time
	cancel()
	if err := <-done; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error = %v, want context canceled", err)
	}

	// The handler finishes asynchronously after the client goes away.
	waitFor(t, 2*time.Second, "499 to be recorded", func() bool {
		return s.MetricsSnapshot().StatusClasses["499"] >= 1
	})
	m := s.MetricsSnapshot()
	if m.ErrorKinds["canceled"] == 0 {
		t.Fatalf("error kinds = %v, want a canceled count", m.ErrorKinds)
	}
	q, ok := m.Stages["queue"]
	if !ok || q.Count == 0 {
		t.Fatalf("queue stage not populated: %+v", m.Stages)
	}
	if q.MaxNS < (20 * time.Millisecond).Nanoseconds() {
		t.Fatalf("queue stage max %dns does not cover the %v wait", q.MaxNS, 30*time.Millisecond)
	}
}

// ---------- wall-clock watchdog over HTTP ----------

// TestWatchdogKillsSlowDecode: with a tiny stream budget a large decode
// cannot finish in time; the watchdog kills the guest at a block
// boundary and the kill is visible in the breaker's failure accounting.
// Depending on whether the decoder produced output before the kill the
// client sees either a clean 422 or a truncated stream — both are
// acceptable containment; a completed 200 is not.
func TestWatchdogKillsSlowDecode(t *testing.T) {
	s := New(Config{
		MemSize:       16 << 20,
		StreamTimeout: 200 * time.Microsecond,
		Health:        vmpool.HealthConfig{Threshold: 100}, // accounting only
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	enc := encodeDeflate(t, testText(4<<20))
	resp, err := http.Post(ts.URL+"/v1/decode?codec=deflate", "application/octet-stream", bytes.NewReader(enc))
	if err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && rerr == nil && len(body) == 4<<20 {
			t.Fatal("4 MiB decode completed inside a 200µs wall budget")
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("watchdog kill surfaced as %d, want 422 or a truncated stream", resp.StatusCode)
		}
	}
	waitFor(t, 2*time.Second, "watchdog kill to be counted", func() bool {
		return s.Cache().Health().Failures.Watchdog >= 1
	})
	// The kill returned the VM pristine: nothing leaked out of the pool.
	waitFor(t, 2*time.Second, "leases to settle", func() bool { return s.Cache().Outstanding() == 0 })
	if m := s.MetricsSnapshot(); m.ErrorKinds["watchdog deadline exceeded"] == 0 && m.TruncatedStreams == 0 {
		t.Fatalf("kill invisible in metrics: kinds=%v truncated=%d", m.ErrorKinds, m.TruncatedStreams)
	}
}

// ---------- chaos soak ----------

// chaosServer builds the soak server: breaker tuned so the targeted
// phases control exactly when it trips, admission sized explicitly so
// the soak exercises the decode paths rather than the shed path on
// small CI machines (the default in-flight bound is GOMAXPROCS, which
// can be 1).
func chaosServer() *Server {
	return New(Config{
		MemSize:     16 << 20,
		MaxInFlight: 4,
		MaxQueue:    64,
		Health:      vmpool.HealthConfig{Threshold: 4, Backoff: 300 * time.Millisecond, MaxBackoff: 2 * time.Second},
	})
}

// soakTotal picks the endurance request count: enough traffic for every
// point to fire many times at a 5% rate, scaled down for -short, and
// overridable (VXA_SOAK_TOTAL) for long soaks on real hardware.
func soakTotal(t *testing.T) int {
	if v := os.Getenv("VXA_SOAK_TOTAL"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad VXA_SOAK_TOTAL %q", v)
		}
		return n
	}
	if testing.Short() {
		return 800
	}
	return 2500
}

// TestChaosSoak is the fault-injection acceptance test. Structure
// matters: at a low mixed rate a consecutive-failure breaker can never
// trip (the odds of Threshold injected failures in a row are
// negligible), so the soak runs targeted rate=1 single-point phases
// first — pinning each injection point's error-kind/status mapping and
// the breaker's open → probe → closed transitions — then a mixed ~5%
// all-points endurance phase that checks the global invariants: only
// sanctioned statuses escape, 200 bodies are byte-exact, and when the
// dust settles nothing leaked (no outstanding lease, no admission
// residue) and the server serves clean traffic again.
func TestChaosSoak(t *testing.T) {
	s := chaosServer()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testText(4 << 10)
	enc := encodeDeflate(t, raw)
	arc := buildArchive(t, map[string][]byte{"doc.txt": raw})
	decodeURL := ts.URL + "/v1/decode?codec=deflate"
	extractURL := ts.URL + "/v1/extract?entry=doc.txt"

	// settle asserts the no-residue invariant and that a disarmed
	// request serves clean — the self-healing check between phases. It
	// also resets the breaker's consecutive-failure record via the OK
	// report, so failure counts never bleed across phases.
	settle := func(phase string) {
		t.Helper()
		fault.Disarm()
		waitFor(t, 2*time.Second, phase+": leases to settle", func() bool { return s.Cache().Outstanding() == 0 })
		resp, body := post(t, decodeURL, enc)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, raw) {
			t.Fatalf("%s: clean decode after disarm: status %d, %d bytes", phase, resp.StatusCode, len(body))
		}
		resp, body = post(t, extractURL, arc)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, raw) {
			t.Fatalf("%s: clean extract after disarm: status %d, %d bytes", phase, resp.StatusCode, len(body))
		}
	}
	// injected asserts the armed point actually fired.
	injected := func(point string) uint64 {
		for _, p := range fault.Stats().Points {
			if p.Point == point {
				return p.Injected
			}
		}
		return 0
	}

	settle("warmup")

	// --- Targeted phases: every point, rate=1, pinned status. ---
	// Counts stay under the breaker threshold (build failures count
	// against the decoder; injected read/write/lease faults do not).
	targeted := []struct {
		point  string
		url    string
		body   []byte
		status int
		kind   string
	}{
		// Archive payload reads fail: host I/O, the client did nothing wrong.
		{"read", extractURL, arc, http.StatusInternalServerError, "host I/O failure"},
		// Snapshot builds fail: host I/O; the failed entry is dropped so
		// the next attempt rebuilds. Targets a codec the warmup has not
		// built — injection only fires on a cache miss.
		{"snapshot", ts.URL + "/v1/decode?codec=bwt", enc, http.StatusInternalServerError, "host I/O failure"},
		// Lease checkouts fail: the service is momentarily unavailable.
		{"lease", decodeURL, enc, http.StatusServiceUnavailable, "service unavailable"},
		// Response writes fail: indistinguishable from a vanished client.
		{"write", decodeURL, enc, StatusClientClosedRequest, "canceled"},
	}
	for _, ph := range targeted {
		arm(t, "rate=1,seed=1,points="+ph.point)
		for i := 0; i < 3; i++ {
			resp, body := post(t, ts.URL+ph.url[len(ts.URL):], ph.body)
			if resp.StatusCode != ph.status {
				t.Fatalf("phase %s request %d: status %d, want %d: %s", ph.point, i, resp.StatusCode, ph.status, body)
			}
		}
		if injected(ph.point) == 0 {
			t.Fatalf("phase %s: no faults injected: %+v", ph.point, fault.Stats())
		}
		if m := s.MetricsSnapshot(); m.ErrorKinds[ph.kind] == 0 {
			t.Fatalf("phase %s: error kinds missing %q: %v", ph.point, ph.kind, m.ErrorKinds)
		}
		settle(ph.point)
	}

	// --- Syscall phase doubles as the breaker transition check. ---
	arm(t, "rate=1,seed=1,points=syscall")
	for i := 0; i < 4; i++ { // Threshold consecutive traps
		resp, body := post(t, decodeURL, enc)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("syscall trap %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if injected("syscall") == 0 {
		t.Fatal("syscall phase: no faults injected")
	}
	fault.Disarm()
	resp, body := post(t, decodeURL, enc)
	if resp.StatusCode != StatusDecoderQuarantined {
		t.Fatalf("post-trip decode: status %d, want %d: %s", resp.StatusCode, StatusDecoderQuarantined, body)
	}
	if h := s.Cache().Health(); h.Trips == 0 || h.Open != 1 {
		t.Fatalf("breaker did not trip: %+v", h)
	}
	time.Sleep(400 * time.Millisecond) // past the probe backoff
	if resp, body := post(t, decodeURL, enc); resp.StatusCode != http.StatusOK || !bytes.Equal(body, raw) {
		t.Fatalf("probe decode: status %d, %d bytes", resp.StatusCode, len(body))
	}
	if h := s.Cache().Health(); h.Open != 0 || h.ProbeSuccesses == 0 {
		t.Fatalf("breaker did not recover: %+v", h)
	}
	settle("syscall")

	// --- Mixed endurance phase: ~5% on every point, full status audit. ---
	total := soakTotal(t)
	arm(t, "rate=0.05,seed=7,points=all")
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusUnprocessableEntity: true, // injected syscall traps
		StatusClientClosedRequest:      true, // injected response-write faults
		http.StatusInternalServerError: true, // injected read / snapshot-build faults
		http.StatusServiceUnavailable:  true, // injected lease faults, shed
		http.StatusGatewayTimeout:      true, // queue expiry under the churn
		StatusDecoderQuarantined:       true, // an unlucky consecutive run
	}
	var connErr, truncated, served atomic.Uint64
	counts := make([]uint64, 600)
	var countMu sync.Mutex
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += workers {
				url, payload, want := decodeURL, enc, raw
				if i%3 == 1 {
					url, payload, want = extractURL, arc, raw
				}
				resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(payload))
				if err != nil {
					connErr.Add(1) // connection cut by an aborted handler
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if !allowed[resp.StatusCode] {
					t.Errorf("request %d: unsanctioned status %d: %s", i, resp.StatusCode, body)
					continue
				}
				countMu.Lock()
				counts[resp.StatusCode]++
				countMu.Unlock()
				if resp.StatusCode != http.StatusOK {
					continue
				}
				if rerr != nil {
					truncated.Add(1) // stream cut after the 200
					continue
				}
				if !bytes.Equal(body, want) {
					t.Errorf("request %d: 200 with corrupt body (%d bytes, want %d)", i, len(body), len(want))
					continue
				}
				served.Add(1)
			}
		}(w)
	}
	wg.Wait()
	st := fault.Stats()
	t.Logf("endurance: %d served clean, %d truncated after 200, %d connections cut, statuses: 200=%d 422=%d 499=%d 500=%d 503=%d 504=%d 521=%d; faults: %+v",
		served.Load(), truncated.Load(), connErr.Load(), counts[200], counts[422], counts[499], counts[500], counts[503], counts[504], counts[521], st.Points)
	if served.Load() == 0 {
		t.Fatal("endurance phase served nothing cleanly")
	}
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum+connErr.Load() != uint64(total) {
		t.Fatalf("request accounting does not add up: %d responses + %d cut != %d", sum, connErr.Load(), total)
	}

	// --- Aftermath: zero residue, full recovery, coherent telemetry. ---
	fault.Disarm()
	waitFor(t, 5*time.Second, "outstanding leases to drain", func() bool { return s.Cache().Outstanding() == 0 })
	waitFor(t, 5*time.Second, "admission to drain", func() bool {
		a := s.Admission().Stats()
		return a.InFlight == 0 && a.QueueDepth == 0
	})
	// The breaker may still be open from an unlucky run; a probe past
	// the backoff must heal it without intervention.
	waitFor(t, 5*time.Second, "clean service to resume", func() bool {
		resp, body := post(t, decodeURL, enc)
		if resp.StatusCode == http.StatusOK && bytes.Equal(body, raw) {
			return true
		}
		time.Sleep(50 * time.Millisecond)
		return false
	})
	m := s.MetricsSnapshot()
	if m.Requests == 0 || m.StatusClasses["2xx"] == 0 {
		t.Fatalf("metrics lost the traffic: %+v", m)
	}
	var prom bytes.Buffer
	if err := s.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	validatePromText(t, prom.String())
}
