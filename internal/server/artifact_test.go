package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"vxa/internal/artifact"
	"vxa/internal/codec"
)

// artifactFiles lists the artifact files under the store directory.
func artifactFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == artifact.Suffix {
			files = append(files, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestServerArtifactRestart is the restart story end to end: a server
// populates the store through real decode traffic, a second server
// over the same directory serves its first request disk-warm — the
// store reports hits, the artifact stage appears in the metrics, and
// the decoded bytes are identical.
func TestServerArtifactRestart(t *testing.T) {
	dir := t.TempDir()
	text := testText(1 << 14)
	stream := encodeDeflate(t, text)

	store1, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{MemSize: 16 << 20, Artifacts: store1})
	ts1 := httptest.NewServer(s1.Handler())
	resp, body := post(t, ts1.URL+"/v1/decode?codec=deflate", stream)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, text) {
		t.Fatalf("populate decode: status %d, %d bytes", resp.StatusCode, len(body))
	}
	golden := body
	ts1.Close()
	// Close flushes grown block caches to the store.
	s1.Close()
	if s := store1.Stats(); s.Saves == 0 {
		t.Fatalf("store stats after populate = %+v, want saves", s)
	}
	if len(artifactFiles(t, dir)) == 0 {
		t.Fatal("no artifact files on disk after populate")
	}

	store2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{MemSize: 16 << 20, Artifacts: store2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	resp, body = post(t, ts2.URL+"/v1/decode?codec=deflate", stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disk-warm decode: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, golden) {
		t.Fatalf("disk-warm decode differs: %d bytes, want %d", len(body), len(golden))
	}
	if s := store2.Stats(); s.Hits == 0 || s.Fallbacks != 0 {
		t.Fatalf("store stats after restart = %+v, want a hit and no fallbacks", s)
	}
	// The restarted server learned the codec's content address from the
	// persistent ELF-hash index (recorded when s1 compiled), not by
	// running the compiler again — the other half of the cold start.
	if s := store2.Stats(); s.IndexHits == 0 {
		t.Fatalf("store stats after restart = %+v, want an index hit", s)
	}

	// The metrics document carries the store section and the artifact
	// stage latency.
	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	err = json.NewDecoder(mresp.Body).Decode(&m)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.ArtifactStore == nil || m.ArtifactStore.Hits == 0 {
		t.Fatalf("metrics artifact_store = %+v, want hits recorded", m.ArtifactStore)
	}
	if _, ok := m.Stages["artifact"]; !ok {
		t.Fatalf("metrics stages = %v, want an artifact stage", m.Stages)
	}
}

// TestServerArtifactCorruptionFallback: a server pointed at a damaged
// store must serve every request correctly from the ELF build path and
// surface the damage only as a fallback metric.
func TestServerArtifactCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	text := testText(1 << 14)
	stream := encodeDeflate(t, text)

	seedStore, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed := New(Config{MemSize: 16 << 20, Artifacts: seedStore})
	tsSeed := httptest.NewServer(seed.Handler())
	if resp, body := post(t, tsSeed.URL+"/v1/decode?codec=deflate", stream); resp.StatusCode != http.StatusOK || !bytes.Equal(body, text) {
		t.Fatalf("seed decode failed: status %d", resp.StatusCode)
	}
	tsSeed.Close()
	seed.Close()

	for _, f := range artifactFiles(t, dir) {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	store, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{MemSize: 16 << 20, Artifacts: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode over corrupt store: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, text) {
		t.Fatalf("decode over corrupt store returned %d bytes, want %d (output must be unchanged)", len(body), len(text))
	}
	st := store.Stats()
	if st.Fallbacks == 0 {
		t.Fatalf("store stats = %+v, want the corruption surfaced as a fallback", st)
	}
	if st.Hits != 0 {
		t.Fatalf("store stats = %+v, want no hits from a corrupt store", st)
	}
}

// TestServerPrewarmArtifacts: a restarted server prewarmed from the
// store must pay the artifact load at startup, not on the request
// path — after PrewarmArtifacts the first decode is a pure snapshot
// cache hit with no further store traffic.
func TestServerPrewarmArtifacts(t *testing.T) {
	dir := t.TempDir()
	text := testText(1 << 14)
	stream := encodeDeflate(t, text)

	store1, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{MemSize: 16 << 20, Artifacts: store1})
	ts1 := httptest.NewServer(s1.Handler())
	if resp, body := post(t, ts1.URL+"/v1/decode?codec=deflate", stream); resp.StatusCode != http.StatusOK || !bytes.Equal(body, text) {
		t.Fatalf("populate decode: status %d", resp.StatusCode)
	}
	ts1.Close()
	s1.Close()

	store2, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{MemSize: 16 << 20, Artifacts: store2})
	defer s2.Close()
	if n := s2.PrewarmArtifacts(context.Background()); n != 1 {
		t.Fatalf("PrewarmArtifacts = %d, want 1 (only deflate has index history)", n)
	}
	after := store2.Stats()
	if after.Hits != 1 || after.Fallbacks != 0 {
		t.Fatalf("store stats after prewarm = %+v, want exactly one hit", after)
	}

	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, body := post(t, ts2.URL+"/v1/decode?codec=deflate", stream)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, text) {
		t.Fatalf("decode after prewarm: status %d, %d bytes", resp.StatusCode, len(body))
	}
	if st := store2.Stats(); st.Hits != after.Hits || st.Misses != after.Misses {
		t.Fatalf("store stats moved during the request (%+v -> %+v): the load was not absorbed at startup", after, st)
	}

	// A codec with no recorded history must not trigger a speculative
	// compile: prewarm skips it and the store records an index miss.
	if s2.PrewarmCodec(context.Background(), "bwt") {
		t.Fatal("PrewarmCodec compiled a codec with no index history")
	}
}

// TestServerStaleIndexSelfHeals: an ELF-hash index entry that no longer
// matches what the compiler produces (the unbumped-vxcc.Version hazard)
// must never be served around silently — the first request that would
// build under the stale address fails loudly, the entry is scrubbed,
// and the next request resolves cleanly from a fresh compile.
func TestServerStaleIndexSelfHeals(t *testing.T) {
	dir := t.TempDir()
	text := testText(1 << 12)
	stream := encodeDeflate(t, text)

	store, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := codec.ByName("deflate")
	if !ok {
		t.Fatal("deflate not registered")
	}
	stale := [32]byte{0xde, 0xad, 0xbe, 0xef}
	if err := store.RecordELF(c.SourceKey(), stale); err != nil {
		t.Fatal(err)
	}

	s := New(Config{MemSize: 16 << 20, Artifacts: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// No artifact exists under the stale address, so the snapshot miss
	// compiles — and the hash check catches the lie before anything is
	// filed under the wrong address.
	if resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", stream); resp.StatusCode == http.StatusOK {
		t.Fatalf("request under a stale index entry succeeded: %d bytes", len(body))
	}
	if _, ok := store.LookupELF(c.SourceKey()); ok {
		t.Fatal("stale index entry survived the failed build")
	}

	// The retry re-resolves: compile, correct hash, correct output.
	resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", stream)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, text) {
		t.Fatalf("retry after self-heal: status %d, %d bytes", resp.StatusCode, len(body))
	}
	if h, ok := store.LookupELF(c.SourceKey()); !ok || h == stale {
		t.Fatalf("index after self-heal = %x, %v; want the fresh hash", h, ok)
	}
}
