package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vxa/internal/codec"
	"vxa/internal/core"

	_ "vxa/internal/codec/bwt"
	_ "vxa/internal/codec/deflate"
)

// ---------- admission controller ----------

// TestAdmissionBound is the acceptance check for the in-flight bound:
// many times more concurrent acquirers than capacity, none may observe
// more than Capacity running at once, and none may deadlock.
func TestAdmissionBound(t *testing.T) {
	const capacity, workers, rounds = 3, 24, 8
	a := NewAdmission(capacity, workers*rounds)

	var running, maxRunning atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				release, err := a.Acquire(context.Background())
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				n := running.Add(1)
				for {
					m := maxRunning.Load()
					if n <= m || maxRunning.CompareAndSwap(m, n) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond)
				running.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if got := maxRunning.Load(); got > capacity {
		t.Fatalf("observed %d concurrent streams, bound is %d", got, capacity)
	}
	st := a.Stats()
	if st.Admitted != workers*rounds {
		t.Fatalf("admitted = %d, want %d", st.Admitted, workers*rounds)
	}
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("controller not drained: %+v", st)
	}
}

// TestAdmissionShedAndExpire pins the two rejection paths: a full queue
// sheds immediately, a queued request expires at its deadline.
func TestAdmissionShedAndExpire(t *testing.T) {
	a := NewAdmission(1, 1)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Fill the one queue slot with a waiter that will expire.
	expired := make(chan error, 1)
	queued := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		close(queued)
		_, err := a.Acquire(ctx)
		expired <- err
	}()
	<-queued
	// Give the waiter time to join the queue, then overflow it.
	deadline := time.Now().Add(time.Second)
	for a.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Acquire(context.Background()); err != ErrOverloaded {
		t.Fatalf("overflow acquire: err = %v, want ErrOverloaded", err)
	}
	if err := <-expired; err != ErrExpired {
		t.Fatalf("queued acquire: err = %v, want ErrExpired", err)
	}
	release()
	st := a.Stats()
	if st.Shed != 1 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want one shed and one expired", st)
	}
}

// ---------- HTTP integration ----------

func buildArchive(t *testing.T, files map[string][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := core.NewWriter(&buf, core.WriterOptions{})
	for name, data := range files {
		if err := w.AddFile(name, data, 0644); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testText(n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, "the archive decoder stream compress buffer format "...)
	}
	return out[:n]
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServerEndToEnd(t *testing.T) {
	s := New(Config{MemSize: 16 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	text := testText(1 << 14)
	archive := buildArchive(t, map[string][]byte{"doc.txt": text})

	// Listing.
	resp, body := post(t, ts.URL+"/v1/entries", archive)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("entries: status %d: %s", resp.StatusCode, body)
	}
	var entries []entryInfo
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "doc.txt" || entries[0].Codec != "deflate" {
		t.Fatalf("entries = %+v", entries)
	}

	// Extraction, twice: the second request must hit the snapshot cache.
	for i := 0; i < 2; i++ {
		resp, body = post(t, ts.URL+"/v1/extract?entry=doc.txt", archive)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("extract %d: status %d: %s", i, resp.StatusCode, body)
		}
		if !bytes.Equal(body, text) {
			t.Fatalf("extract %d: decoded %d bytes, want %d", i, len(body), len(text))
		}
	}
	cs := s.Cache().Stats()
	if cs.Misses != 1 || cs.Hits < 1 {
		t.Fatalf("cache stats after two extracts: %+v, want 1 miss and >=1 hit", cs)
	}

	// Unknown entry and malformed archive.
	if resp, _ = post(t, ts.URL+"/v1/extract?entry=nope", archive); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing entry: status %d, want 404", resp.StatusCode)
	}
	if resp, _ = post(t, ts.URL+"/v1/extract?entry=doc.txt", []byte("not a zip")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad archive: status %d, want 400", resp.StatusCode)
	}

	// Verify.
	resp, body = post(t, ts.URL+"/v1/verify", archive)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status %d: %s", resp.StatusCode, body)
	}
	var vr struct {
		Entries int `json:"entries"`
		Failed  int `json:"failed"`
	}
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Entries != 1 || vr.Failed != 0 {
		t.Fatalf("verify = %+v", vr)
	}

	// Raw stream decode through a built-in codec.
	c, _ := codec.ByName("deflate")
	var enc bytes.Buffer
	if err := c.Encode(&enc, text); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/v1/decode?codec=deflate", enc.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, text) {
		t.Fatalf("decode: got %d bytes, want %d", len(body), len(text))
	}
	if resp, _ = post(t, ts.URL+"/v1/decode?codec=nope", enc.Bytes()); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown codec: status %d, want 404", resp.StatusCode)
	}
	// Corrupt stream: the sandbox contains the failure, 422 comes back.
	if resp, _ = post(t, ts.URL+"/v1/decode?codec=deflate", []byte{0xff, 0xfe, 0xfd}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt stream: status %d, want 422", resp.StatusCode)
	}

	// Metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	var m Metrics
	if err := json.Unmarshal(mbody, &m); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, mbody)
	}
	if m.Requests == 0 || m.Cache.Misses == 0 || m.Cache.VM.Steps == 0 {
		t.Fatalf("metrics missing counters: %s", mbody)
	}
	// The optimizer counters ride the same aggregated engine stats.
	if m.Cache.VM.UopsFused == 0 || m.Cache.VM.FlagsElided == 0 {
		t.Fatalf("metrics missing optimizer counters: %s", mbody)
	}
}

// TestServerAdmissionUnderBurst is the end-to-end half of the admission
// acceptance criterion: N x capacity concurrent requests against a
// 2-slot server neither deadlock nor exceed the in-flight bound, and
// every request is either served or cleanly shed.
func TestServerAdmissionUnderBurst(t *testing.T) {
	const capacity = 2
	s := New(Config{
		MemSize:      16 << 20,
		MaxInFlight:  capacity,
		MaxQueue:     1024, // roomy queue: everything should eventually run
		QueueTimeout: time.Minute,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	text := testText(1 << 15)
	c, _ := codec.ByName("deflate")
	var enc bytes.Buffer
	if err := c.Encode(&enc, text); err != nil {
		t.Fatal(err)
	}
	payload := enc.Bytes()

	// Sample the in-flight gauge during the burst.
	stop := make(chan struct{})
	var maxSeen atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := int64(s.Admission().InFlight()); n > maxSeen.Load() {
				maxSeen.Store(n)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const burst = 8 * capacity
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", payload)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			if !bytes.Equal(body, text) {
				errs <- fmt.Errorf("bad payload: %d bytes", len(body))
			}
		}()
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := maxSeen.Load(); got > capacity {
		t.Fatalf("observed %d in-flight streams, bound is %d", got, capacity)
	}
	st := s.Admission().Stats()
	if st.Admitted != burst {
		t.Fatalf("admitted = %d, want %d", st.Admitted, burst)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after the burst, want 0", st.InFlight)
	}
}

// TestServerShedsWhenSaturated pins the shedding path over HTTP: with a
// single slot, a tiny queue and an instant queue timeout, a burst must
// produce 503s/504s rather than waiting forever.
func TestServerShedsWhenSaturated(t *testing.T) {
	s := New(Config{
		MemSize:      16 << 20,
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueTimeout: time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The payload must keep a slot busy long enough for the burst to
	// overlap even when the execution engine is at its fastest (tier-2
	// native traces on a warm pool), or the requests serialize and
	// nothing sheds.
	text := testText(1 << 21)
	c, _ := codec.ByName("deflate")
	var enc bytes.Buffer
	if err := c.Encode(&enc, text); err != nil {
		t.Fatal(err)
	}
	payload := enc.Bytes()

	const burst = 8
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", payload)
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				shed.Add(1)
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no request was served")
	}
	if shed.Load() == 0 {
		t.Fatal("saturated server shed nothing")
	}
}

// A ShardID must stamp every reply — success, error and health paths
// alike — and surface in the readyz document, so routed traffic is
// attributable wherever it lands.
func TestShardIdentityHeader(t *testing.T) {
	s := New(Config{MemSize: 16 << 20, ShardID: "shard-7"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(ShardHeader); got != "shard-7" {
		t.Fatalf("healthz %s = %q, want shard-7", ShardHeader, got)
	}

	// An error response still names its shard.
	resp, _ = post(t, ts.URL+"/v1/decode", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing codec: status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get(ShardHeader); got != "shard-7" {
		t.Fatalf("error reply %s = %q, want shard-7", ShardHeader, got)
	}

	resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", encodeDeflate(t, testText(1<<10)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(ShardHeader); got != "shard-7" {
		t.Fatalf("decode reply %s = %q, want shard-7", ShardHeader, got)
	}

	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Ready bool   `json:"ready"`
		Shard string `json:"shard"`
	}
	if err := json.NewDecoder(rz.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if !doc.Ready || doc.Shard != "shard-7" {
		t.Fatalf("readyz = %+v, want ready shard-7", doc)
	}

	// Without a ShardID the header is absent, not empty.
	s2 := New(Config{MemSize: 16 << 20})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := resp.Header[ShardHeader]; ok {
		t.Fatalf("unconfigured shard id still set %s", ShardHeader)
	}
}
