package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// Admission is the server's load shedder: it bounds how many decode
// streams run concurrently (each stream pins a decoder VM and burns a
// core) and how many may wait for a slot. Requests beyond the queue
// bound are shed immediately; queued requests that outlive their
// context deadline are shed without ever starting work — a late decode
// is worthless, so the queue never does work the client gave up on.
//
// Degradation is tiered: cold requests — those that would have to build
// a decoder snapshot before streaming — are shed once the queue is half
// full, before warm requests feel any pressure. Under overload the
// expensive cold path is the first thing to go, and the cheap
// resume-a-warm-snapshot path keeps absorbing traffic.
//
// The zero value is not usable; use NewAdmission.
type Admission struct {
	slots     chan struct{} // in-flight capacity; holding a token = running
	queue     chan struct{} // waiting capacity; holding a token = queued
	coldLimit int           // queue depth at which cold requests shed

	admitted atomic.Uint64
	shed     atomic.Uint64 // rejected: queue full
	shedCold atomic.Uint64 // rejected: cold request over the cold watermark
	expired  atomic.Uint64 // rejected: deadline passed while queued
}

// Admission outcomes.
var (
	// ErrOverloaded: the wait queue is full; shed immediately (HTTP 503).
	ErrOverloaded = errors.New("server: overloaded, queue full")
	// ErrColdShed: the queue passed the cold watermark and the request
	// needs a cold snapshot build; shed immediately (HTTP 503) so the
	// warm path keeps its remaining headroom.
	ErrColdShed = errors.New("server: overloaded, shedding cold (snapshot-miss) requests")
	// ErrExpired: the request deadline passed while queued (HTTP 504).
	ErrExpired = errors.New("server: deadline expired while queued")
)

// NewAdmission creates a controller admitting at most inFlight
// concurrent streams with at most queue waiters. Both are clamped to a
// minimum of 1.
func NewAdmission(inFlight, queue int) *Admission {
	if inFlight < 1 {
		inFlight = 1
	}
	if queue < 1 {
		queue = 1
	}
	coldLimit := queue / 2
	if coldLimit < 1 {
		coldLimit = 1
	}
	return &Admission{
		slots:     make(chan struct{}, inFlight),
		queue:     make(chan struct{}, queue),
		coldLimit: coldLimit,
	}
}

// Acquire admits the caller or sheds it. On success it returns a
// release function the caller must invoke exactly once when the stream
// is finished. On failure it returns ErrOverloaded (queue full) or
// ErrExpired (ctx done while waiting). Equivalent to AcquireTier with
// cold=false.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	return a.AcquireTier(ctx, false)
}

// AcquireTier is Acquire with the degradation tier made explicit: a
// cold request (one that must build a decoder snapshot before it can
// stream) is additionally shed with ErrColdShed whenever the queue sits
// at or past the cold watermark (half the queue bound).
func (a *Admission) AcquireTier(ctx context.Context, cold bool) (release func(), err error) {
	if cold && len(a.queue) >= a.coldLimit {
		a.shedCold.Add(1)
		return nil, ErrColdShed
	}
	// Join the queue, or shed: a full queue means the backlog already
	// exceeds what we are willing to ever serve.
	select {
	case a.queue <- struct{}{}:
	default:
		a.shed.Add(1)
		return nil, ErrOverloaded
	}
	// Wait for an in-flight slot until the deadline.
	select {
	case a.slots <- struct{}{}:
		<-a.queue // leave the queue; we are running now
		a.admitted.Add(1)
		return func() { <-a.slots }, nil
	case <-ctx.Done():
		<-a.queue
		a.expired.Add(1)
		return nil, ErrExpired
	}
}

// InFlight reports how many admitted streams are currently running.
func (a *Admission) InFlight() int { return len(a.slots) }

// QueueDepth reports how many requests are waiting for a slot (admitted
// requests transiently count while they hand their queue token back).
func (a *Admission) QueueDepth() int { return len(a.queue) }

// Capacity reports the in-flight bound.
func (a *Admission) Capacity() int { return cap(a.slots) }

// AdmissionStats is a point-in-time counter snapshot.
type AdmissionStats struct {
	InFlight   int    `json:"in_flight"`
	Capacity   int    `json:"capacity"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Admitted   uint64 `json:"admitted"`
	Shed       uint64 `json:"shed"`
	ShedCold   uint64 `json:"shed_cold"`
	Expired    uint64 `json:"expired"`
}

// Stats returns the counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		InFlight:   a.InFlight(),
		Capacity:   a.Capacity(),
		QueueDepth: a.QueueDepth(),
		QueueCap:   cap(a.queue),
		Admitted:   a.admitted.Load(),
		Shed:       a.shed.Load(),
		ShedCold:   a.shedCold.Load(),
		Expired:    a.expired.Load(),
	}
}
