package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"vxa/internal/codec"
)

// encodeDeflate produces a deflate-coded stream for /v1/decode tests.
func encodeDeflate(t *testing.T, raw []byte) []byte {
	t.Helper()
	c, ok := codec.ByName("deflate")
	if !ok {
		t.Fatal("deflate codec not registered")
	}
	var enc bytes.Buffer
	if err := c.Encode(&enc, raw); err != nil {
		t.Fatal(err)
	}
	return enc.Bytes()
}

// ---------- Prometheus exposition self-check ----------

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// promLineRe splits a sample line into name, optional label block,
	// and value.
	promLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	promPairRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// validatePromText is the promtool-style format check: every line must
// be a comment or a well-formed sample, metric and label names must be
// legal, every TYPE is declared once, and no series (name + full label
// set) may appear twice.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	series := make(map[string]bool)
	typed := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Errorf("blank line in exposition")
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || !promMetricRe.MatchString(parts[2]) {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			if _, dup := typed[parts[2]]; dup {
				t.Errorf("duplicate TYPE declaration for %s", parts[2])
			}
			switch parts[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Errorf("unknown metric type %q in %q", parts[3], line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		m := promLineRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if !promMetricRe.MatchString(name) {
			t.Errorf("bad metric name %q", name)
		}
		var fv float64
		if _, err := fmt.Sscanf(value, "%g", &fv); err != nil {
			t.Errorf("bad sample value %q in %q", value, line)
		}
		for _, pair := range promPairRe.FindAllStringSubmatch(labels, -1) {
			if !promLabelRe.MatchString(pair[1]) {
				t.Errorf("bad label name %q in %q", pair[1], line)
			}
		}
		key := name + labels
		if series[key] {
			t.Errorf("duplicate series: %s", key)
		}
		series[key] = true
		// Every sample's family must carry a TYPE declaration
		// (summaries declare under the base name).
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Errorf("series %s has no TYPE declaration", name)
			}
		}
	}
	if len(series) == 0 {
		t.Error("exposition contains no samples")
	}
}

// TestMetricsPrometheusFormat drives real traffic, scrapes the text
// exposition both ways a scraper can ask for it, and validates the
// format end to end.
func TestMetricsPrometheusFormat(t *testing.T) {
	s := New(Config{MemSize: 16 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testText(1 << 12)
	enc := encodeDeflate(t, raw)
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.URL+"/v1/decode?codec=deflate", enc)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, raw) {
			t.Fatalf("decode %d: status %d, %d bytes", i, resp.StatusCode, len(body))
		}
	}
	// One client mistake for the 4xx counters.
	if resp, _ := post(t, ts.URL+"/v1/decode?codec=nope", enc); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown codec: status %d", resp.StatusCode)
	}

	for _, mode := range []struct {
		name, query, accept string
	}{
		{"query-param", "?format=prometheus", ""},
		{"accept-header", "", "text/plain;version=0.0.4"},
	} {
		req, err := http.NewRequest("GET", ts.URL+"/metrics"+mode.query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mode.accept != "" {
			req.Header.Set("Accept", mode.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("%s: Content-Type = %q", mode.name, ct)
		}
		text := string(body)
		validatePromText(t, text)
		for _, want := range []string{
			"vxad_requests_total",
			`vxad_request_duration_seconds{endpoint="decode",quantile="0.5"}`,
			`vxad_codec_duration_seconds{codec="deflate",quantile="0.99"}`,
			`vxad_stage_duration_seconds{stage="execute"`,
			`vxad_responses_total{class="4xx"}`,
			"vxad_snapcache_hits_total",
			"vxad_ready 1",
			"vxad_draining 0",
			"vxad_admission_shed_cold_total",
			"vxad_snapcache_quarantined_total",
			"vxad_snapcache_shrinks_total",
			"vxad_breaker_open",
			"vxad_breaker_trips_total",
			"vxad_breaker_probes_total",
			`vxad_decoder_failures_total{class="trap"}`,
			`vxad_decoder_failures_total{class="watchdog"}`,
			"vxad_engine_steps_total",
			"vxad_engine_tier2_compiled_total",
			"vxad_engine_tier2_executed_total",
			"vxad_engine_tier2_demotions_total",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("%s: missing %q in exposition", mode.name, want)
			}
		}
	}

	// The JSON default is unchanged by the new format.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("default /metrics no longer JSON: %v", err)
	}
}

// ---------- JSON latency surfaces ----------

// TestMetricsLatencyHistograms pins the JSON document's new shape:
// per-endpoint, per-codec and per-stage summaries with populated
// quantiles, and status-class counters that classify a 4xx as a client
// error rather than an Errors increment.
func TestMetricsLatencyHistograms(t *testing.T) {
	s := New(Config{MemSize: 16 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testText(1 << 12)
	enc := encodeDeflate(t, raw)
	const reqs = 4
	for i := 0; i < reqs; i++ {
		if resp, _ := post(t, ts.URL+"/v1/decode?codec=deflate", enc); resp.StatusCode != http.StatusOK {
			t.Fatalf("decode: status %d", resp.StatusCode)
		}
	}
	if resp, _ := post(t, ts.URL+"/v1/decode?codec=nope", enc); resp.StatusCode != http.StatusNotFound {
		t.Fatal("expected 404")
	}
	// A starved fuel budget produces a typed core.Error for the
	// per-kind counter.
	arc := buildArchive(t, map[string][]byte{"doc.txt": raw})
	if resp, _ := post(t, ts.URL+"/v1/extract?entry=doc.txt&fuel=100", arc); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("starved extract: status %d, want 422", resp.StatusCode)
	}

	m := s.MetricsSnapshot()
	ep, ok := m.Endpoints["decode"]
	if !ok || ep.Count != reqs+1 {
		t.Fatalf("endpoint decode stats = %+v (want count %d)", ep, reqs+1)
	}
	if ep.P50NS <= 0 || ep.P99NS < ep.P50NS || ep.MaxNS < ep.P99NS {
		t.Fatalf("endpoint quantiles not ordered: %+v", ep)
	}
	// 4 decodes + the starved extract (its codec is resolved before the
	// fuel check, so failed requests still count toward codec latency).
	cd, ok := m.Codecs["deflate"]
	if !ok || cd.Count != reqs+1 {
		t.Fatalf("codec deflate stats = %+v (want count %d)", cd, reqs+1)
	}
	for _, stage := range []string{"queue", "translate", "execute", "write"} {
		if st, ok := m.Stages[stage]; !ok || st.Count == 0 {
			t.Errorf("stage %q not populated: %+v", stage, m.Stages)
		}
	}
	if m.Errors != 0 {
		t.Errorf("Errors = %d after only 2xx/4xx traffic (must count 5xx only)", m.Errors)
	}
	if m.StatusClasses["2xx"] != reqs || m.StatusClasses["4xx"] != 2 {
		t.Errorf("status classes = %v", m.StatusClasses)
	}
	if m.ErrorKinds["fuel exhausted"] == 0 {
		t.Errorf("error kinds = %v, want a fuel-exhausted count", m.ErrorKinds)
	}
}

// ---------- concurrent scrape stress ----------

// TestMetricsConcurrentScrape runs decode traffic while hammering both
// exposition formats; under -race this is the proof that the scrape
// path takes consistent snapshots of live counters.
func TestMetricsConcurrentScrape(t *testing.T) {
	s := New(Config{MemSize: 16 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testText(1 << 10)
	enc := encodeDeflate(t, raw)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/decode?codec=deflate", "application/octet-stream", bytes.NewReader(enc))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	scrape := func(url string) {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	wg.Add(2)
	go scrape(ts.URL + "/metrics")
	go scrape(ts.URL + "/metrics?format=prometheus")
	// Let scrapers finish first, then stop traffic: 2 (writers) + 2
	// (scrapers) are in wg, so close stop once scrapes are done.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	<-done

	// A final scrape must still validate cleanly.
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	validatePromText(t, string(body))
}

// ---------- slow-request logging ----------

// TestSlowRequestLog: a request past SlowThreshold logs at Warn with
// the per-stage timeline; fast requests log at Info without it.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedBuffer{buf: &buf, mu: &mu}, nil))
	s := New(Config{
		MemSize:       16 << 20,
		Logger:        logger,
		SlowThreshold: time.Nanosecond, // everything is slow
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw := testText(1 << 10)
	if resp, _ := post(t, ts.URL+"/v1/decode?codec=deflate", encodeDeflate(t, raw)); resp.StatusCode != http.StatusOK {
		t.Fatalf("decode: status %d", resp.StatusCode)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "slow request") || !strings.Contains(out, "level=WARN") {
		t.Fatalf("no slow-request warning in log:\n%s", out)
	}
	if !strings.Contains(out, "stages=") || !strings.Contains(out, "execute=") {
		t.Fatalf("slow log missing stage timeline:\n%s", out)
	}
	if !strings.Contains(out, "endpoint=decode") || !strings.Contains(out, "codec=deflate") {
		t.Fatalf("slow log missing endpoint/codec attrs:\n%s", out)
	}
}

// lockedBuffer serializes concurrent handler writes during tests.
type lockedBuffer struct {
	buf *bytes.Buffer
	mu  *sync.Mutex
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

// TestAccessLog: with a threshold that nothing crosses, requests log at
// Info without a stage dump.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedBuffer{buf: &buf, mu: &mu}, nil))
	s := New(Config{MemSize: 16 << 20, Logger: logger, SlowThreshold: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, `msg=request`) || !strings.Contains(out, "endpoint=healthz") {
		t.Fatalf("no access log line:\n%s", out)
	}
	if strings.Contains(out, "level=WARN") {
		t.Fatalf("fast request logged as slow:\n%s", out)
	}
}
