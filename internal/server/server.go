// Package server implements vxad, the VXA archive-extraction daemon: a
// long-running service that multiplexes many clients over shared
// decoder snapshots. Where the library's Reader amortizes decoder setup
// within one archive, the server amortizes it across the whole fleet of
// requests: every decoder is content-addressed (SHA-256 of its ELF), so
// two clients extracting different archives that embed the same decoder
// share one pristine snapshot, one warm micro-op translation cache and
// one VM pool. An admission controller bounds concurrent decode streams
// and sheds load when the backlog exceeds the queue, so the daemon
// degrades by rejecting quickly instead of collapsing.
//
// Endpoints (see the README for the wire details):
//
//	GET  /healthz                  liveness
//	GET  /metrics                  counters (JSON, snake_case)
//	POST /v1/entries               archive -> entry listing (JSON)
//	POST /v1/extract?entry=NAME    archive -> one entry's decoded bytes
//	POST /v1/verify                archive -> per-entry verify results (JSON)
//	POST /v1/decode?codec=NAME     raw stream -> decoded bytes (built-in codec)
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vxa/internal/codec"
	"vxa/internal/core"
	"vxa/internal/vm"
	"vxa/internal/vmpool"
	"vxa/internal/zipfile"
)

// Config configures a Server. The zero value selects the defaults.
type Config struct {
	// MemSize is the guest address space given to every decoder VM.
	// Defaults to core.DefaultDecoderMemSize. Fixed for the server
	// lifetime — a per-request memory ceiling, not a knob.
	MemSize uint32
	// MaxFuel caps the per-stream instruction budget. A request may ask
	// for less (?fuel=N) but never more. Defaults to DefaultMaxFuel.
	MaxFuel int64
	// CacheBytes is the snapshot cache's resident byte budget.
	// Defaults to vmpool.DefaultSnapCacheBytes.
	CacheBytes int64
	// MaxInFlight bounds concurrently running decode streams.
	// Defaults to GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a stream slot; beyond it
	// requests are shed with 503. Defaults to 4x MaxInFlight.
	MaxQueue int
	// QueueTimeout bounds how long a request may wait in the queue
	// before being shed with 504. Defaults to DefaultQueueTimeout.
	QueueTimeout time.Duration
	// MaxRequestBytes caps the request body (the archive or stream).
	// Defaults to DefaultMaxRequestBytes.
	MaxRequestBytes int64
}

// Server defaults.
const (
	DefaultMaxFuel         = int64(1) << 36
	DefaultQueueTimeout    = 10 * time.Second
	DefaultMaxRequestBytes = int64(256) << 20
)

// Server is the extraction daemon. Create with New; serve its Handler
// on any net listener (TCP, unix socket, httptest).
type Server struct {
	cfg   Config
	cache *vmpool.SnapCache
	adm   *Admission
	mux   *http.ServeMux
	start time.Time

	requests atomic.Uint64
	errors   atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64

	mu        sync.Mutex
	codecHash map[string][32]byte // built-in codec name -> ELF content hash
}

// New creates a Server with its own snapshot cache and admission
// controller.
func New(cfg Config) *Server {
	if cfg.MemSize == 0 {
		cfg.MemSize = core.DefaultDecoderMemSize
	}
	if cfg.MaxFuel <= 0 {
		cfg.MaxFuel = DefaultMaxFuel
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	s := &Server{
		cfg: cfg,
		cache: vmpool.NewSnapCache(vmpool.SnapCacheConfig{
			VM:       vm.Config{MemSize: cfg.MemSize},
			MaxBytes: cfg.CacheBytes,
		}),
		adm:       NewAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		codecHash: make(map[string][32]byte),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/entries", s.handleEntries)
	s.mux.HandleFunc("POST /v1/extract", s.handleExtract)
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("POST /v1/decode", s.handleDecode)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the server's snapshot cache (for the bench harness and
// tests).
func (s *Server) Cache() *vmpool.SnapCache { return s.cache }

// Admission exposes the server's admission controller.
func (s *Server) Admission() *Admission { return s.adm }

// ---------- metrics ----------

// Metrics is the /metrics document.
type Metrics struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Requests      uint64                `json:"requests"`
	Errors        uint64                `json:"errors"`
	BytesIn       uint64                `json:"bytes_in"`
	BytesOut      uint64                `json:"bytes_out"`
	Admission     AdmissionStats        `json:"admission"`
	Cache         vmpool.SnapCacheStats `json:"cache"`
}

// MetricsSnapshot returns the current counters.
func (s *Server) MetricsSnapshot() Metrics {
	return Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Errors:        s.errors.Load(),
		BytesIn:       s.bytesIn.Load(),
		BytesOut:      s.bytesOut.Load(),
		Admission:     s.adm.Stats(),
		Cache:         s.cache.Stats(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.MetricsSnapshot())
}

// ---------- request plumbing ----------

// StatusClientClosedRequest is the (nginx-convention) status recorded
// when the client's own context canceled the work mid-request; the
// client is gone, so the code is for logs and metrics, not the wire.
const StatusClientClosedRequest = 499

// kindStatus maps the library's error taxonomy onto HTTP statuses — the
// v2 replacement for classifying failures by error-string shape. Every
// core.ErrorKind has a row; the round-trip test pins that.
var kindStatus = map[core.ErrorKind]int{
	core.KindBadArchive:    http.StatusBadRequest,          // the request body is at fault
	core.KindUnknownCodec:  http.StatusNotFound,            // nothing can decode the entry
	core.KindDecoderTrap:   http.StatusUnprocessableEntity, // well-formed request, hostile/buggy decoder
	core.KindFuelExhausted: http.StatusUnprocessableEntity, // decoder exceeded its instruction budget
	core.KindOutputLimit:   http.StatusRequestEntityTooLarge,
	core.KindCanceled:      StatusClientClosedRequest,
}

// StatusFor resolves any error the serving paths produce to its HTTP
// status: typed archive errors through the kind table, admission and
// transport errors through their sentinels, everything else 500.
// Exported so the error-taxonomy round trip is testable end to end.
func StatusFor(err error) int {
	var ve *core.Error
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrExpired):
		return http.StatusGatewayTimeout
	case errors.As(err, &ve):
		if status, ok := kindStatus[ve.Kind]; ok {
			return status
		}
	case errors.Is(err, zipfile.ErrFormat), errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, errNotFound):
		return http.StatusNotFound
	case errors.As(err, new(*codec.DecodeError)):
		// Raw-stream decode failures (/v1/decode) that bypassed the
		// archive layer's classification.
		return http.StatusUnprocessableEntity
	case errors.As(err, new(*http.MaxBytesError)):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusInternalServerError
}

// fail writes an error response with the status implied by err.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	status := StatusFor(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, err.Error(), status)
}

var (
	errBadRequest = errors.New("server: bad request")
	errNotFound   = errors.New("server: not found")
)

// readBody reads the full request body under the size cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		return nil, err
	}
	s.bytesIn.Add(uint64(len(body)))
	return body, nil
}

// admit runs the admission controller for one decode stream. The wait
// context is the request's own (a client disconnect counts as expiry)
// bounded by the configured queue timeout.
func (s *Server) admit(r *http.Request) (release func(), err error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueueTimeout)
	defer cancel()
	return s.adm.Acquire(ctx)
}

// fuel computes the per-stream budget: the standard payload-scaled
// policy, capped by MaxFuel. An explicit ?fuel=N can only lower it —
// letting a request raise its own CPU budget would turn a tiny body
// into minutes of guest execution holding an admission slot.
func (s *Server) fuel(r *http.Request, payloadLen int) (int64, error) {
	f := vm.StreamFuel(payloadLen)
	if f > s.cfg.MaxFuel {
		f = s.cfg.MaxFuel
	}
	if q := r.URL.Query().Get("fuel"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("%w: bad fuel %q", errBadRequest, q)
		}
		if n < f {
			f = n
		}
	}
	return f, nil
}

// reader opens the archive in the request body, routed through the
// shared snapshot cache.
func (s *Server) reader(w http.ResponseWriter, r *http.Request) (*core.Reader, error) {
	body, err := s.readBody(w, r)
	if err != nil {
		return nil, err
	}
	cr, err := core.NewReader(body)
	if err != nil {
		return nil, err
	}
	cr.SetSnapCache(s.cache)
	return cr, nil
}

// countWriter tracks decoded bytes streamed to the client.
type countWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ---------- endpoints ----------

// entryInfo is one row of the /v1/entries listing.
type entryInfo struct {
	Name          string `json:"name"`
	Codec         string `json:"codec,omitempty"`
	Method        uint16 `json:"method"`
	PreCompressed bool   `json:"pre_compressed,omitempty"`
	USize         uint32 `json:"usize"`
	CSize         uint32 `json:"csize"`
	Mode          uint32 `json:"mode"`
}

func (s *Server) handleEntries(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	cr, err := s.reader(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	var out []entryInfo
	for _, e := range cr.Entries() {
		out = append(out, entryInfo{
			Name: e.Name, Codec: e.Codec, Method: e.Method,
			PreCompressed: e.PreCompressed, USize: e.USize, CSize: e.CSize,
			Mode: e.Mode,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// extractOptions builds the decode options shared by extract and verify.
func (s *Server) extractOptions(r *http.Request, fuel int64) []core.Option {
	mode := core.AlwaysVXA
	if r.URL.Query().Get("mode") == "native" {
		mode = core.NativeFirst
	}
	opts := []core.Option{
		core.WithMode(mode),
		core.WithVM(vm.Config{MemSize: s.cfg.MemSize, Fuel: fuel}),
	}
	if r.URL.Query().Get("decode_all") != "" {
		opts = append(opts, core.WithDecodeAll(true))
	}
	return opts
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	name := r.URL.Query().Get("entry")
	if name == "" {
		s.fail(w, fmt.Errorf("%w: missing ?entry=", errBadRequest))
		return
	}
	cr, err := s.reader(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	var entry *core.Entry
	for i, e := range cr.Entries() {
		if e.Name == name {
			entry = &cr.Entries()[i]
			break
		}
	}
	if entry == nil {
		s.fail(w, fmt.Errorf("%w: entry %q", errNotFound, name))
		return
	}
	fuel, err := s.fuel(r, int(entry.CSize))
	if err != nil {
		s.fail(w, err)
		return
	}

	release, err := s.admit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countWriter{w: w}
	// The request's own context drives the decode: a client that
	// disconnects mid-stream cancels the guest at its next block
	// boundary, and the VM goes back to the shared pool immediately
	// instead of decoding for a reader that is gone.
	_, err = cr.ExtractTo(r.Context(), entry, cw, s.extractOptions(r, fuel)...)
	s.bytesOut.Add(uint64(cw.n))
	if err != nil {
		if cw.n == 0 {
			s.fail(w, err)
			return
		}
		// Decoded bytes already reached the client under a 200: all we
		// can do is cut the stream short so the truncation is visible.
		s.errors.Add(1)
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	}
}

// verifyResult is one row of the /v1/verify report.
type verifyResult struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	cr, err := s.reader(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	release, err := s.admit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()

	// One admission slot covers the whole archive, so verification runs
	// serial: a verify request is one stream of work, however many
	// entries it touches.
	results := make([]verifyResult, 0, len(cr.Entries()))
	failed := 0
	for i := range cr.Entries() {
		e := &cr.Entries()[i]
		fuel, ferr := s.fuel(r, int(e.CSize))
		if ferr != nil {
			s.fail(w, ferr)
			return
		}
		res := verifyResult{Name: e.Name, OK: true}
		if _, err := cr.ExtractTo(r.Context(), e, io.Discard, s.extractOptions(r, fuel)...); err != nil {
			res.OK, res.Error = false, err.Error()
			failed++
		}
		results = append(results, res)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Entries int            `json:"entries"`
		Failed  int            `json:"failed"`
		Results []verifyResult `json:"results"`
	}{len(results), failed, results})
}

// decodeMode is the security mode /v1/decode streams run under: the
// endpoint serves public one-shot streams, so every request shares one
// reuse class per codec.
const decodeMode = 0644

// builtinCodec resolves a registered codec and the content hash of its
// decoder ELF (hashed once per server).
func (s *Server) builtinCodec(name string) (*codec.Codec, [32]byte, error) {
	c, ok := codec.ByName(name)
	if !ok {
		return nil, [32]byte{}, fmt.Errorf("%w: codec %q", errNotFound, name)
	}
	s.mu.Lock()
	h, ok := s.codecHash[name]
	s.mu.Unlock()
	if ok {
		return c, h, nil
	}
	elf, err := c.DecoderELF()
	if err != nil {
		return nil, [32]byte{}, err
	}
	h = vmpool.HashELF(elf)
	s.mu.Lock()
	s.codecHash[name] = h
	s.mu.Unlock()
	return c, h, nil
}

func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	name := r.URL.Query().Get("codec")
	if name == "" {
		s.fail(w, fmt.Errorf("%w: missing ?codec=", errBadRequest))
		return
	}
	c, hash, err := s.builtinCodec(name)
	if err != nil {
		s.fail(w, err)
		return
	}
	payload, err := s.readBody(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	fuel, err := s.fuel(r, len(payload))
	if err != nil {
		s.fail(w, err)
		return
	}

	release, err := s.admit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()

	// Scope 0 (the single trusted tenant): /v1/decode runs only the
	// registry's own compiled decoders, which carry no per-client
	// secrets, so resume-in-place across requests is safe and keeps the
	// endpoint at warm-cache latency.
	lease, err := s.cache.Get(r.Context(), hash, decodeMode, 0, func() ([]byte, error) { return c.DecoderELF() })
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countWriter{w: w}
	var diag bytes.Buffer
	reusable, err := lease.VM().RunStream(r.Context(), bytes.NewReader(payload), cw, &diag, fuel)
	s.bytesOut.Add(uint64(cw.n))
	if err != nil {
		if vm.IsCanceled(err) {
			// The client is gone; reset the VM to pristine and park it.
			lease.ReleaseReset()
			s.errors.Add(1)
			panic(http.ErrAbortHandler)
		}
		de := codec.ClassifyDecodeError(name, err, lease.VM().ExitCode(), diag.String())
		lease.Release(false)
		if cw.n == 0 {
			s.fail(w, de)
			return
		}
		s.errors.Add(1)
		panic(http.ErrAbortHandler)
	}
	lease.Release(reusable)
}
