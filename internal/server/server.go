// Package server implements vxad, the VXA archive-extraction daemon: a
// long-running service that multiplexes many clients over shared
// decoder snapshots. Where the library's Reader amortizes decoder setup
// within one archive, the server amortizes it across the whole fleet of
// requests: every decoder is content-addressed (SHA-256 of its ELF), so
// two clients extracting different archives that embed the same decoder
// share one pristine snapshot, one warm micro-op translation cache and
// one VM pool. An admission controller bounds concurrent decode streams
// and sheds load when the backlog exceeds the queue, so the daemon
// degrades by rejecting quickly instead of collapsing.
//
// Endpoints (see the README for the wire details):
//
//	GET  /healthz                  liveness
//	GET  /metrics                  counters (JSON, snake_case)
//	POST /v1/entries               archive -> entry listing (JSON)
//	POST /v1/extract?entry=NAME    archive -> one entry's decoded bytes
//	POST /v1/verify                archive -> per-entry verify results (JSON)
//	POST /v1/decode?codec=NAME     raw stream -> decoded bytes (built-in codec)
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vxa/internal/codec"
	"vxa/internal/core"
	"vxa/internal/obs"
	"vxa/internal/vm"
	"vxa/internal/vmpool"
	"vxa/internal/zipfile"
)

// Config configures a Server. The zero value selects the defaults.
type Config struct {
	// MemSize is the guest address space given to every decoder VM.
	// Defaults to core.DefaultDecoderMemSize. Fixed for the server
	// lifetime — a per-request memory ceiling, not a knob.
	MemSize uint32
	// MaxFuel caps the per-stream instruction budget. A request may ask
	// for less (?fuel=N) but never more. Defaults to DefaultMaxFuel.
	MaxFuel int64
	// CacheBytes is the snapshot cache's resident byte budget.
	// Defaults to vmpool.DefaultSnapCacheBytes.
	CacheBytes int64
	// MaxInFlight bounds concurrently running decode streams.
	// Defaults to GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a stream slot; beyond it
	// requests are shed with 503. Defaults to 4x MaxInFlight.
	MaxQueue int
	// QueueTimeout bounds how long a request may wait in the queue
	// before being shed with 504. Defaults to DefaultQueueTimeout.
	QueueTimeout time.Duration
	// MaxRequestBytes caps the request body (the archive or stream).
	// Defaults to DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// Logger receives structured access and slow-request logs. Nil
	// disables logging (the default, and what tests and the bench
	// harness want: metrics still accumulate, nothing is printed).
	Logger *slog.Logger
	// SlowThreshold, when positive, logs any request whose total wall
	// time meets it at Warn level with the full per-stage breakdown.
	SlowThreshold time.Duration
}

// Server defaults.
const (
	DefaultMaxFuel         = int64(1) << 36
	DefaultQueueTimeout    = 10 * time.Second
	DefaultMaxRequestBytes = int64(256) << 20
)

// Server is the extraction daemon. Create with New; serve its Handler
// on any net listener (TCP, unix socket, httptest).
type Server struct {
	cfg   Config
	cache *vmpool.SnapCache
	adm   *Admission
	mux   *http.ServeMux
	start time.Time

	requests  atomic.Uint64
	errors    atomic.Uint64 // 5xx responses only; see statusClass for the rest
	bytesIn   atomic.Uint64
	bytesOut  atomic.Uint64
	truncated atomic.Uint64 // streams aborted after a partial 200

	// statusClass counts responses by status family, indexed status/100;
	// client-cancel 499s get their own cell (index 0) so cancellations
	// are visible without inflating the 4xx class.
	statusClass [6]atomic.Uint64
	// errKinds counts typed archive failures by core.ErrorKind (indexed
	// by the kind's own value), however the status maps out.
	errKinds [8]atomic.Uint64

	// Latency histograms: endpoint and stage families are fixed at
	// construction (lock-free observe); the per-codec family grows on
	// first use under mu.
	epHist    map[string]*obs.Histogram
	stageHist map[obs.Stage]*obs.Histogram

	mu        sync.Mutex
	codecHist map[string]*obs.Histogram
	codecHash map[string][32]byte // built-in codec name -> ELF content hash
}

// errorKinds enumerates the taxonomy for the metrics surfaces.
var errorKinds = []core.ErrorKind{
	core.KindBadArchive, core.KindUnknownCodec, core.KindDecoderTrap,
	core.KindFuelExhausted, core.KindOutputLimit, core.KindCanceled,
}

// New creates a Server with its own snapshot cache and admission
// controller.
func New(cfg Config) *Server {
	if cfg.MemSize == 0 {
		cfg.MemSize = core.DefaultDecoderMemSize
	}
	if cfg.MaxFuel <= 0 {
		cfg.MaxFuel = DefaultMaxFuel
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	s := &Server{
		cfg: cfg,
		cache: vmpool.NewSnapCache(vmpool.SnapCacheConfig{
			VM:       vm.Config{MemSize: cfg.MemSize},
			MaxBytes: cfg.CacheBytes,
		}),
		adm:       NewAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		epHist:    make(map[string]*obs.Histogram),
		stageHist: make(map[obs.Stage]*obs.Histogram),
		codecHist: make(map[string]*obs.Histogram),
		codecHash: make(map[string][32]byte),
	}
	for _, st := range obs.Stages() {
		s.stageHist[st] = &obs.Histogram{}
	}
	route := func(pattern, endpoint string, h http.HandlerFunc) {
		s.epHist[endpoint] = &obs.Histogram{}
		s.mux.HandleFunc(pattern, s.instrument(endpoint, h))
	}
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /metrics", "metrics", s.handleMetrics)
	route("POST /v1/entries", "entries", s.handleEntries)
	route("POST /v1/extract", "extract", s.handleExtract)
	route("POST /v1/verify", "verify", s.handleVerify)
	route("POST /v1/decode", "decode", s.handleDecode)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the server's snapshot cache (for the bench harness and
// tests).
func (s *Server) Cache() *vmpool.SnapCache { return s.cache }

// Admission exposes the server's admission controller.
func (s *Server) Admission() *Admission { return s.adm }

// ---------- request instrumentation ----------

// reqInfo carries per-request annotations from handler to middleware:
// the handler knows the codec once it has parsed the request; the
// middleware owns observation.
type reqInfo struct {
	codec string
}

type reqInfoKey struct{}

// setCodec labels the in-flight request with the codec doing the work,
// feeding the per-codec latency histogram.
func setCodec(ctx context.Context, name string) {
	if info, ok := ctx.Value(reqInfoKey{}).(*reqInfo); ok && name != "" {
		info.codec = name
	}
}

// statusWriter captures the response status actually sent. A handler
// that never calls WriteHeader implicitly sends 200 on first write.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status, sw.wrote = code, true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.wrote {
		sw.status, sw.wrote = http.StatusOK, true
	}
	return sw.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so handlers can still cut a
// truncated stream short through the wrapper.
func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps a handler with the observation pipeline: it opens a
// tracing span on the request context, captures the response status,
// and on the way out feeds the latency histograms, status-class
// counters and the structured access/slow logs. A panic after partial
// output (the deliberate truncation of a broken 200 stream) is
// observed as a truncated stream, then re-raised so net/http still
// severs the connection.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.epHist[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		info := &reqInfo{}
		ctx := context.WithValue(r.Context(), reqInfoKey{}, info)
		ctx, sp := obs.WithSpan(ctx)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			aborted := recover()
			elapsed := sp.Elapsed()
			hist.Observe(elapsed)
			s.observeStages(sp)
			s.observeCodec(info.codec, elapsed)
			s.observeStatus(sw.status)
			if aborted != nil {
				s.truncated.Add(1)
			}
			s.logRequest(r, endpoint, sw.status, elapsed, sp, info.codec, aborted != nil)
			if aborted != nil {
				panic(http.ErrAbortHandler)
			}
		}()
		h(sw, r.WithContext(ctx))
	}
}

// observeStages feeds each stage the request actually passed through
// into the per-stage histograms. Zero stages are skipped: a warm
// request records no snapshot-build sample, so the snapshot histogram
// describes cold-path builds instead of being flattened by zeros.
func (s *Server) observeStages(sp *obs.Span) {
	for _, st := range obs.Stages() {
		if d := sp.Get(st); d > 0 {
			s.stageHist[st].Observe(d)
		}
	}
}

// observeCodec records latency under the codec label, creating the
// series on first use.
func (s *Server) observeCodec(name string, d time.Duration) {
	if name == "" {
		return
	}
	s.mu.Lock()
	h := s.codecHist[name]
	if h == nil {
		h = &obs.Histogram{}
		s.codecHist[name] = h
	}
	s.mu.Unlock()
	h.Observe(d)
}

// observeStatus files the response under its status family. 499 gets
// its own cell; Errors means 5xx — a client mistake (4xx) or a client
// hangup (499) is not a server error.
func (s *Server) observeStatus(status int) {
	switch {
	case status == StatusClientClosedRequest:
		s.statusClass[0].Add(1)
	case status >= 100 && status < 600:
		s.statusClass[status/100].Add(1)
	}
	if status >= 500 {
		s.errors.Add(1)
	}
}

// logRequest emits the structured access log line and, past the slow
// threshold, a warning with the per-stage timeline.
func (s *Server) logRequest(r *http.Request, endpoint string, status int, elapsed time.Duration, sp *obs.Span, codecName string, aborted bool) {
	log := s.cfg.Logger
	if log == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("endpoint", endpoint),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Duration("elapsed", elapsed),
	}
	if codecName != "" {
		attrs = append(attrs, slog.String("codec", codecName))
	}
	if aborted {
		attrs = append(attrs, slog.Bool("truncated", true))
	}
	if s.cfg.SlowThreshold > 0 && elapsed >= s.cfg.SlowThreshold {
		attrs = append(attrs, slog.String("stages", sp.Timeline()))
		log.LogAttrs(r.Context(), slog.LevelWarn, "slow request", attrs...)
		return
	}
	log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

// ---------- metrics ----------

// Metrics is the /metrics document (JSON form). Errors counts 5xx
// responses only; shed/expired admissions, client mistakes and client
// hangups appear under StatusClasses and Admission instead.
type Metrics struct {
	UptimeSeconds    float64                  `json:"uptime_seconds"`
	Requests         uint64                   `json:"requests"`
	Errors           uint64                   `json:"errors"`
	BytesIn          uint64                   `json:"bytes_in"`
	BytesOut         uint64                   `json:"bytes_out"`
	TruncatedStreams uint64                   `json:"truncated_streams"`
	StatusClasses    map[string]uint64        `json:"status_classes"`
	ErrorKinds       map[string]uint64        `json:"error_kinds,omitempty"`
	Endpoints        map[string]obs.HistStats `json:"endpoint_latency"`
	Codecs           map[string]obs.HistStats `json:"codec_latency,omitempty"`
	Stages           map[string]obs.HistStats `json:"stage_latency,omitempty"`
	Admission        AdmissionStats           `json:"admission"`
	Cache            vmpool.SnapCacheStats    `json:"cache"`
}

// MetricsSnapshot returns the current counters and latency summaries.
func (s *Server) MetricsSnapshot() Metrics {
	m := Metrics{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Requests:         s.requests.Load(),
		Errors:           s.errors.Load(),
		BytesIn:          s.bytesIn.Load(),
		BytesOut:         s.bytesOut.Load(),
		TruncatedStreams: s.truncated.Load(),
		StatusClasses:    make(map[string]uint64),
		Endpoints:        make(map[string]obs.HistStats),
		Admission:        s.adm.Stats(),
		Cache:            s.cache.Stats(),
	}
	for class := 1; class < len(s.statusClass); class++ {
		if n := s.statusClass[class].Load(); n > 0 {
			m.StatusClasses[fmt.Sprintf("%dxx", class)] = n
		}
	}
	if n := s.statusClass[0].Load(); n > 0 {
		m.StatusClasses["499"] = n
	}
	for _, k := range errorKinds {
		if n := s.errKinds[k].Load(); n > 0 {
			if m.ErrorKinds == nil {
				m.ErrorKinds = make(map[string]uint64)
			}
			m.ErrorKinds[k.String()] = n
		}
	}
	for name, h := range s.epHist {
		m.Endpoints[name] = h.Snapshot().Stats()
	}
	for _, st := range obs.Stages() {
		snap := s.stageHist[st].Snapshot()
		if snap.Count == 0 {
			continue
		}
		if m.Stages == nil {
			m.Stages = make(map[string]obs.HistStats)
		}
		m.Stages[st.String()] = snap.Stats()
	}
	s.mu.Lock()
	for name, h := range s.codecHist {
		if m.Codecs == nil {
			m.Codecs = make(map[string]obs.HistStats)
		}
		m.Codecs[name] = h.Snapshot().Stats()
	}
	s.mu.Unlock()
	return m
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// wantsPrometheus reports whether the scrape asked for text exposition:
// either explicitly (?format=prometheus) or via an Accept header
// preferring text/plain, which is what a stock Prometheus scraper
// sends. JSON stays the default for humans and the existing tooling.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WritePrometheus(w); err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Error("metrics: prometheus write failed", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.MetricsSnapshot()); err != nil && s.cfg.Logger != nil {
		// A scrape client that hung up mid-encode is the usual cause;
		// the failure is the scraper's problem but must not be silent.
		s.cfg.Logger.Error("metrics: JSON encode failed", "err", err)
	}
}

// WritePrometheus renders the metrics in Prometheus text exposition
// format 0.0.4. Latency families are summaries (precomputed quantiles
// in seconds); counter families carry the same values as the JSON
// document. Exported so the format self-check can scrape it directly.
func (s *Server) WritePrometheus(w io.Writer) error {
	p := obs.NewPromWriter(w)
	p.Gauge("vxad_uptime_seconds", "Seconds since the server started.", nil, time.Since(s.start).Seconds())
	p.Counter("vxad_requests_total", "HTTP requests received.", nil, float64(s.requests.Load()))
	p.Counter("vxad_errors_total", "Responses with a 5xx status.", nil, float64(s.errors.Load()))
	p.Counter("vxad_bytes_in_total", "Request body bytes read.", nil, float64(s.bytesIn.Load()))
	p.Counter("vxad_bytes_out_total", "Decoded bytes streamed to clients.", nil, float64(s.bytesOut.Load()))
	p.Counter("vxad_truncated_streams_total", "Streams aborted after partial output.", nil, float64(s.truncated.Load()))
	for class := 1; class < len(s.statusClass); class++ {
		p.Counter("vxad_responses_total", "Responses by status class.",
			map[string]string{"class": fmt.Sprintf("%dxx", class)}, float64(s.statusClass[class].Load()))
	}
	p.Counter("vxad_responses_total", "", map[string]string{"class": "499"}, float64(s.statusClass[0].Load()))
	for _, k := range errorKinds {
		p.Counter("vxad_error_kinds_total", "Typed archive failures by core.ErrorKind.",
			map[string]string{"kind": k.String()}, float64(s.errKinds[k].Load()))
	}

	adm := s.adm.Stats()
	p.Gauge("vxad_admission_in_flight", "Decode streams currently running.", nil, float64(adm.InFlight))
	p.Gauge("vxad_admission_capacity", "Concurrent stream capacity.", nil, float64(adm.Capacity))
	p.Gauge("vxad_admission_queue_depth", "Requests waiting for a slot.", nil, float64(adm.QueueDepth))
	p.Counter("vxad_admission_admitted_total", "Requests granted a stream slot.", nil, float64(adm.Admitted))
	p.Counter("vxad_admission_shed_total", "Requests shed with 503 (queue full).", nil, float64(adm.Shed))
	p.Counter("vxad_admission_expired_total", "Requests expired with 504 (queue timeout).", nil, float64(adm.Expired))

	cache := s.cache.Stats()
	p.Counter("vxad_snapcache_hits_total", "Snapshot cache hits.", nil, float64(cache.Hits))
	p.Counter("vxad_snapcache_misses_total", "Snapshot cache misses (builds).", nil, float64(cache.Misses))
	p.Counter("vxad_snapcache_evictions_total", "Snapshot cache evictions.", nil, float64(cache.Evictions))
	p.Gauge("vxad_snapcache_entries", "Resident snapshot cache entries.", nil, float64(cache.Entries))
	p.Gauge("vxad_snapcache_bytes", "Resident snapshot cache bytes.", nil, float64(cache.Bytes))

	for _, name := range sortedKeys(s.epHist) {
		p.Summary("vxad_request_duration_seconds", "Request latency by endpoint.",
			map[string]string{"endpoint": name}, s.epHist[name].Snapshot())
	}
	s.mu.Lock()
	codecSnaps := make(map[string]obs.HistSnapshot, len(s.codecHist))
	for name, h := range s.codecHist {
		codecSnaps[name] = h.Snapshot()
	}
	s.mu.Unlock()
	for _, name := range sortedKeys(codecSnaps) {
		p.Summary("vxad_codec_duration_seconds", "Decode latency by codec.",
			map[string]string{"codec": name}, codecSnaps[name])
	}
	for _, st := range obs.Stages() {
		snap := s.stageHist[st].Snapshot()
		if snap.Count == 0 {
			continue
		}
		p.Summary("vxad_stage_duration_seconds", "Per-stage time within traced requests.",
			map[string]string{"stage": st.String()}, snap)
	}
	return p.Err()
}

// sortedKeys returns m's keys sorted, for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// ---------- request plumbing ----------

// StatusClientClosedRequest is the (nginx-convention) status recorded
// when the client's own context canceled the work mid-request; the
// client is gone, so the code is for logs and metrics, not the wire.
const StatusClientClosedRequest = 499

// kindStatus maps the library's error taxonomy onto HTTP statuses — the
// v2 replacement for classifying failures by error-string shape. Every
// core.ErrorKind has a row; the round-trip test pins that.
var kindStatus = map[core.ErrorKind]int{
	core.KindBadArchive:    http.StatusBadRequest,          // the request body is at fault
	core.KindUnknownCodec:  http.StatusNotFound,            // nothing can decode the entry
	core.KindDecoderTrap:   http.StatusUnprocessableEntity, // well-formed request, hostile/buggy decoder
	core.KindFuelExhausted: http.StatusUnprocessableEntity, // decoder exceeded its instruction budget
	core.KindOutputLimit:   http.StatusRequestEntityTooLarge,
	core.KindCanceled:      StatusClientClosedRequest,
}

// StatusFor resolves any error the serving paths produce to its HTTP
// status: typed archive errors through the kind table, admission and
// transport errors through their sentinels, everything else 500.
// Exported so the error-taxonomy round trip is testable end to end.
func StatusFor(err error) int {
	var ve *core.Error
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrExpired):
		return http.StatusGatewayTimeout
	case errors.As(err, &ve):
		if status, ok := kindStatus[ve.Kind]; ok {
			return status
		}
	case errors.Is(err, zipfile.ErrFormat), errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, errNotFound):
		return http.StatusNotFound
	case errors.As(err, new(*codec.DecodeError)):
		// Raw-stream decode failures (/v1/decode) that bypassed the
		// archive layer's classification.
		return http.StatusUnprocessableEntity
	case errors.As(err, new(*http.MaxBytesError)):
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusInternalServerError
}

// fail writes an error response with the status implied by err. The
// middleware derives the error counters from the status it sees on the
// way out; fail only files the typed-kind breakdown.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.noteErrorKind(err)
	status := StatusFor(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, err.Error(), status)
}

// noteErrorKind counts a typed archive failure under its ErrorKind.
func (s *Server) noteErrorKind(err error) {
	var ve *core.Error
	if errors.As(err, &ve) && int(ve.Kind) < len(s.errKinds) {
		s.errKinds[ve.Kind].Add(1)
	}
}

var (
	errBadRequest = errors.New("server: bad request")
	errNotFound   = errors.New("server: not found")
)

// readBody reads the full request body under the size cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		return nil, err
	}
	s.bytesIn.Add(uint64(len(body)))
	return body, nil
}

// admit runs the admission controller for one decode stream. The wait
// context is the request's own (a client disconnect counts as expiry)
// bounded by the configured queue timeout. Time spent waiting — slot
// granted or not — is the request's queue stage.
func (s *Server) admit(r *http.Request) (release func(), err error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueueTimeout)
	defer cancel()
	waitStart := time.Now()
	defer func() { obs.SpanFrom(r.Context()).Add(obs.StageQueue, time.Since(waitStart)) }()
	return s.adm.Acquire(ctx)
}

// fuel computes the per-stream budget: the standard payload-scaled
// policy, capped by MaxFuel. An explicit ?fuel=N can only lower it —
// letting a request raise its own CPU budget would turn a tiny body
// into minutes of guest execution holding an admission slot.
func (s *Server) fuel(r *http.Request, payloadLen int) (int64, error) {
	f := vm.StreamFuel(payloadLen)
	if f > s.cfg.MaxFuel {
		f = s.cfg.MaxFuel
	}
	if q := r.URL.Query().Get("fuel"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("%w: bad fuel %q", errBadRequest, q)
		}
		if n < f {
			f = n
		}
	}
	return f, nil
}

// reader opens the archive in the request body, routed through the
// shared snapshot cache.
func (s *Server) reader(w http.ResponseWriter, r *http.Request) (*core.Reader, error) {
	body, err := s.readBody(w, r)
	if err != nil {
		return nil, err
	}
	cr, err := core.NewReader(body)
	if err != nil {
		return nil, err
	}
	cr.SetSnapCache(s.cache)
	return cr, nil
}

// countWriter tracks decoded bytes streamed to the client. With sp set
// it also attributes write time to the span's write stage — only the
// raw-stream decode path sets it; archive extraction is timed by the
// core layer's own writer, and double counting would overstate the
// stage.
type countWriter struct {
	w  http.ResponseWriter
	sp *obs.Span
	n  int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	var start time.Time
	if c.sp != nil {
		start = time.Now()
	}
	n, err := c.w.Write(p)
	if c.sp != nil {
		c.sp.Add(obs.StageWrite, time.Since(start))
	}
	c.n += int64(n)
	return n, err
}

// ---------- endpoints ----------

// entryInfo is one row of the /v1/entries listing.
type entryInfo struct {
	Name          string `json:"name"`
	Codec         string `json:"codec,omitempty"`
	Method        uint16 `json:"method"`
	PreCompressed bool   `json:"pre_compressed,omitempty"`
	USize         uint32 `json:"usize"`
	CSize         uint32 `json:"csize"`
	Mode          uint32 `json:"mode"`
}

func (s *Server) handleEntries(w http.ResponseWriter, r *http.Request) {
	cr, err := s.reader(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	var out []entryInfo
	for _, e := range cr.Entries() {
		out = append(out, entryInfo{
			Name: e.Name, Codec: e.Codec, Method: e.Method,
			PreCompressed: e.PreCompressed, USize: e.USize, CSize: e.CSize,
			Mode: e.Mode,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// extractOptions builds the decode options shared by extract and verify.
func (s *Server) extractOptions(r *http.Request, fuel int64) []core.Option {
	mode := core.AlwaysVXA
	if r.URL.Query().Get("mode") == "native" {
		mode = core.NativeFirst
	}
	opts := []core.Option{
		core.WithMode(mode),
		core.WithVM(vm.Config{MemSize: s.cfg.MemSize, Fuel: fuel}),
	}
	if r.URL.Query().Get("decode_all") != "" {
		opts = append(opts, core.WithDecodeAll(true))
	}
	return opts
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("entry")
	if name == "" {
		s.fail(w, fmt.Errorf("%w: missing ?entry=", errBadRequest))
		return
	}
	cr, err := s.reader(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	var entry *core.Entry
	for i, e := range cr.Entries() {
		if e.Name == name {
			entry = &cr.Entries()[i]
			break
		}
	}
	if entry == nil {
		s.fail(w, fmt.Errorf("%w: entry %q", errNotFound, name))
		return
	}
	setCodec(r.Context(), entry.Codec)
	fuel, err := s.fuel(r, int(entry.CSize))
	if err != nil {
		s.fail(w, err)
		return
	}

	release, err := s.admit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countWriter{w: w}
	// The request's own context drives the decode: a client that
	// disconnects mid-stream cancels the guest at its next block
	// boundary, and the VM goes back to the shared pool immediately
	// instead of decoding for a reader that is gone.
	_, err = cr.ExtractTo(r.Context(), entry, cw, s.extractOptions(r, fuel)...)
	s.bytesOut.Add(uint64(cw.n))
	if err != nil {
		if cw.n == 0 {
			s.fail(w, err)
			return
		}
		// Decoded bytes already reached the client under a 200: all we
		// can do is cut the stream short so the truncation is visible.
		// The middleware files it under the truncated-streams counter.
		s.noteErrorKind(err)
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	}
}

// verifyResult is one row of the /v1/verify report.
type verifyResult struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	cr, err := s.reader(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	release, err := s.admit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()

	// One admission slot covers the whole archive, so verification runs
	// serial: a verify request is one stream of work, however many
	// entries it touches.
	results := make([]verifyResult, 0, len(cr.Entries()))
	failed := 0
	for i := range cr.Entries() {
		e := &cr.Entries()[i]
		fuel, ferr := s.fuel(r, int(e.CSize))
		if ferr != nil {
			s.fail(w, ferr)
			return
		}
		res := verifyResult{Name: e.Name, OK: true}
		if _, err := cr.ExtractTo(r.Context(), e, io.Discard, s.extractOptions(r, fuel)...); err != nil {
			res.OK, res.Error = false, err.Error()
			failed++
		}
		results = append(results, res)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Entries int            `json:"entries"`
		Failed  int            `json:"failed"`
		Results []verifyResult `json:"results"`
	}{len(results), failed, results})
}

// decodeMode is the security mode /v1/decode streams run under: the
// endpoint serves public one-shot streams, so every request shares one
// reuse class per codec.
const decodeMode = 0644

// builtinCodec resolves a registered codec and the content hash of its
// decoder ELF (hashed once per server).
func (s *Server) builtinCodec(name string) (*codec.Codec, [32]byte, error) {
	c, ok := codec.ByName(name)
	if !ok {
		return nil, [32]byte{}, fmt.Errorf("%w: codec %q", errNotFound, name)
	}
	s.mu.Lock()
	h, ok := s.codecHash[name]
	s.mu.Unlock()
	if ok {
		return c, h, nil
	}
	elf, err := c.DecoderELF()
	if err != nil {
		return nil, [32]byte{}, err
	}
	h = vmpool.HashELF(elf)
	s.mu.Lock()
	s.codecHash[name] = h
	s.mu.Unlock()
	return c, h, nil
}

func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("codec")
	if name == "" {
		s.fail(w, fmt.Errorf("%w: missing ?codec=", errBadRequest))
		return
	}
	c, hash, err := s.builtinCodec(name)
	if err != nil {
		s.fail(w, err)
		return
	}
	setCodec(r.Context(), name)
	payload, err := s.readBody(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	fuel, err := s.fuel(r, len(payload))
	if err != nil {
		s.fail(w, err)
		return
	}

	release, err := s.admit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()

	// Scope 0 (the single trusted tenant): /v1/decode runs only the
	// registry's own compiled decoders, which carry no per-client
	// secrets, so resume-in-place across requests is safe and keeps the
	// endpoint at warm-cache latency.
	lease, err := s.cache.Get(r.Context(), hash, decodeMode, 0, func() ([]byte, error) { return c.DecoderELF() })
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	sp := obs.SpanFrom(r.Context())
	cw := &countWriter{w: w, sp: sp}
	var diag bytes.Buffer
	st0 := lease.VM().Stats()
	reusable, err := lease.VM().RunStream(r.Context(), bytes.NewReader(payload), cw, &diag, fuel)
	st1 := lease.VM().Stats()
	sp.Add(obs.StageTranslate, time.Duration(st1.TranslateNS-st0.TranslateNS))
	sp.Add(obs.StageExecute, time.Duration(st1.ExecuteNS-st0.ExecuteNS))
	s.bytesOut.Add(uint64(cw.n))
	if err != nil {
		if vm.IsCanceled(err) {
			// The client is gone; reset the VM to pristine and park it.
			lease.ReleaseReset()
			panic(http.ErrAbortHandler)
		}
		de := codec.ClassifyDecodeError(name, err, lease.VM().ExitCode(), diag.String())
		lease.Release(false)
		if cw.n == 0 {
			s.fail(w, de)
			return
		}
		panic(http.ErrAbortHandler)
	}
	lease.Release(reusable)
}
