// Package server implements vxad, the VXA archive-extraction daemon: a
// long-running service that multiplexes many clients over shared
// decoder snapshots. Where the library's Reader amortizes decoder setup
// within one archive, the server amortizes it across the whole fleet of
// requests: every decoder is content-addressed (SHA-256 of its ELF), so
// two clients extracting different archives that embed the same decoder
// share one pristine snapshot, one warm micro-op translation cache and
// one VM pool. An admission controller bounds concurrent decode streams
// and sheds load when the backlog exceeds the queue, so the daemon
// degrades by rejecting quickly instead of collapsing.
//
// Endpoints (see the README for the wire details):
//
//	GET  /healthz                  liveness (process is up)
//	GET  /readyz                   readiness (degrades under drain,
//	                               open breakers or sustained shedding)
//	GET  /metrics                  counters (JSON, snake_case)
//	POST /v1/entries               archive -> entry listing (JSON)
//	POST /v1/extract?entry=NAME    archive -> one entry's decoded bytes
//	POST /v1/verify                archive -> per-entry verify results (JSON)
//	POST /v1/decode?codec=NAME     raw stream -> decoded bytes (built-in codec)
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vxa/internal/artifact"
	"vxa/internal/codec"
	"vxa/internal/core"
	"vxa/internal/fault"
	"vxa/internal/obs"
	"vxa/internal/vm"
	"vxa/internal/vmpool"
	"vxa/internal/zipfile"
)

// Config configures a Server. The zero value selects the defaults.
type Config struct {
	// MemSize is the guest address space given to every decoder VM.
	// Defaults to core.DefaultDecoderMemSize. Fixed for the server
	// lifetime — a per-request memory ceiling, not a knob.
	MemSize uint32
	// MaxFuel caps the per-stream instruction budget. A request may ask
	// for less (?fuel=N) but never more. Defaults to DefaultMaxFuel.
	MaxFuel int64
	// CacheBytes is the snapshot cache's resident byte budget.
	// Defaults to vmpool.DefaultSnapCacheBytes.
	CacheBytes int64
	// MaxInFlight bounds concurrently running decode streams.
	// Defaults to GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a stream slot; beyond it
	// requests are shed with 503. Defaults to 4x MaxInFlight.
	MaxQueue int
	// QueueTimeout bounds how long a request may wait in the queue
	// before being shed with 504. Defaults to DefaultQueueTimeout.
	QueueTimeout time.Duration
	// MaxRequestBytes caps the request body (the archive or stream).
	// Defaults to DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// Logger receives structured access and slow-request logs. Nil
	// disables logging (the default, and what tests and the bench
	// harness want: metrics still accumulate, nothing is printed).
	Logger *slog.Logger
	// SlowThreshold, when positive, logs any request whose total wall
	// time meets it at Warn level with the full per-stage breakdown.
	SlowThreshold time.Duration
	// StreamTimeout is the wall-clock watchdog budget per decode stream:
	// a guest still running after this much real time is killed at its
	// next block boundary (422, ErrDeadline) no matter how much
	// instruction fuel remains. Defaults to DefaultStreamTimeout;
	// negative disables the watchdog.
	StreamTimeout time.Duration
	// Health configures the per-decoder circuit breaker (failure
	// threshold, probe backoff). The zero value selects the vmpool
	// defaults; Threshold < 0 disables quarantine.
	Health vmpool.HealthConfig
	// MemWatermark, when positive, arms the memory janitor: whenever the
	// process heap exceeds it, the snapshot cache is shrunk to half its
	// resident bytes (idle VMs dropped, LRU snapshots evicted) so the
	// daemon sheds memory instead of dying.
	MemWatermark int64
	// ReadyShedRate is the shed fraction (shed+expired over all
	// admission outcomes, sampled over ReadyWindow) past which /readyz
	// reports degraded. Defaults to DefaultReadyShedRate.
	ReadyShedRate float64
	// ReadyWindow is the minimum interval between readiness shed-rate
	// samples. Defaults to DefaultReadyWindow.
	ReadyWindow time.Duration
	// Artifacts, when non-nil, arms the persistent snapshot-artifact
	// tier: snapshot-cache misses probe the store before building from
	// the decoder ELF, builds are written back, and a background loop
	// re-persists entries whose absorbed block caches have grown (so
	// translation work done by live traffic survives a restart). The
	// caller owns the store (vxad opens it from -artifact-dir).
	Artifacts *artifact.Store
	// ArtifactFlushInterval is how often grown block caches are
	// re-persisted. Defaults to DefaultArtifactFlushInterval; only
	// meaningful with Artifacts set.
	ArtifactFlushInterval time.Duration
	// ShardID identifies this daemon within a routed fleet. When set,
	// every response carries it in the X-Vxa-Shard header and /readyz
	// names it, so routed traffic stays attributable in logs, metrics
	// and the load harness. vxad defaults it to the listen address.
	ShardID string
}

// Server defaults.
const (
	DefaultMaxFuel         = int64(1) << 36
	DefaultQueueTimeout    = 10 * time.Second
	DefaultMaxRequestBytes = int64(256) << 20
	DefaultStreamTimeout   = 30 * time.Second
	DefaultReadyShedRate   = 0.5
	DefaultReadyWindow     = time.Second
	// DefaultArtifactFlushInterval is how often the artifact flush loop
	// re-persists snapshot lines whose block caches have grown.
	DefaultArtifactFlushInterval = 30 * time.Second
	// memJanitorInterval is how often the memory janitor samples the
	// heap when MemWatermark is armed.
	memJanitorInterval = 2 * time.Second
)

// Server is the extraction daemon. Create with New; serve its Handler
// on any net listener (TCP, unix socket, httptest).
type Server struct {
	cfg   Config
	cache *vmpool.SnapCache
	adm   *Admission
	mux   *http.ServeMux
	start time.Time

	requests  atomic.Uint64
	errors    atomic.Uint64 // 5xx responses only; see statusClass for the rest
	bytesIn   atomic.Uint64
	bytesOut  atomic.Uint64
	truncated atomic.Uint64 // streams aborted after a partial 200

	// statusClass counts responses by status family, indexed status/100;
	// client-cancel 499s get their own cell (index 0) so cancellations
	// are visible without inflating the 4xx class.
	statusClass [6]atomic.Uint64
	// errKinds counts typed archive failures by core.ErrorKind (indexed
	// by the kind's own value), however the status maps out.
	errKinds [16]atomic.Uint64

	// draining is set by StartDrain: new decode requests are shed with
	// 503 + Retry-After while in-flight streams finish.
	draining atomic.Bool
	// janitorStop/janitorDone bound the memory janitor's lifetime;
	// flushStop/flushDone bound the artifact flush loop's.
	janitorStop chan struct{}
	janitorDone chan struct{}
	flushStop   chan struct{}
	flushDone   chan struct{}
	closeOnce   sync.Once

	// Latency histograms: endpoint and stage families are fixed at
	// construction (lock-free observe); the per-codec family grows on
	// first use under mu.
	epHist    map[string]*obs.Histogram
	stageHist map[obs.Stage]*obs.Histogram

	mu        sync.Mutex
	codecHist map[string]*obs.Histogram
	codecHash map[string][32]byte // built-in codec name -> ELF content hash

	// Readiness shed-rate sampling state (under readyMu): the previous
	// window's admission counters and the verdict computed from them.
	readyMu      sync.Mutex
	readySampled time.Time
	readyPrev    AdmissionStats
	readyRate    float64
}

// errorKinds enumerates the taxonomy for the metrics surfaces.
var errorKinds = []core.ErrorKind{
	core.KindBadArchive, core.KindUnknownCodec, core.KindDecoderTrap,
	core.KindFuelExhausted, core.KindOutputLimit, core.KindCanceled,
	core.KindIO, core.KindUnavailable, core.KindQuarantined,
	core.KindDeadline,
}

// New creates a Server with its own snapshot cache and admission
// controller.
func New(cfg Config) *Server {
	if cfg.MemSize == 0 {
		cfg.MemSize = core.DefaultDecoderMemSize
	}
	if cfg.MaxFuel <= 0 {
		cfg.MaxFuel = DefaultMaxFuel
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if cfg.StreamTimeout == 0 {
		cfg.StreamTimeout = DefaultStreamTimeout
	}
	wallBudget := cfg.StreamTimeout
	if wallBudget < 0 {
		wallBudget = 0 // watchdog explicitly disabled
	}
	if cfg.ReadyShedRate <= 0 {
		cfg.ReadyShedRate = DefaultReadyShedRate
	}
	if cfg.ReadyWindow <= 0 {
		cfg.ReadyWindow = DefaultReadyWindow
	}
	if cfg.ArtifactFlushInterval <= 0 {
		cfg.ArtifactFlushInterval = DefaultArtifactFlushInterval
	}
	s := &Server{
		cfg: cfg,
		cache: vmpool.NewSnapCache(vmpool.SnapCacheConfig{
			VM:        vm.Config{MemSize: cfg.MemSize, WallBudget: wallBudget},
			MaxBytes:  cfg.CacheBytes,
			Health:    cfg.Health,
			Artifacts: cfg.Artifacts,
		}),
		adm:       NewAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		epHist:    make(map[string]*obs.Histogram),
		stageHist: make(map[obs.Stage]*obs.Histogram),
		codecHist: make(map[string]*obs.Histogram),
		codecHash: make(map[string][32]byte),
	}
	for _, st := range obs.Stages() {
		s.stageHist[st] = &obs.Histogram{}
	}
	route := func(pattern, endpoint string, h http.HandlerFunc) {
		s.epHist[endpoint] = &obs.Histogram{}
		s.mux.HandleFunc(pattern, s.instrument(endpoint, h))
	}
	route("GET /healthz", "healthz", s.handleHealthz)
	route("GET /readyz", "readyz", s.handleReadyz)
	route("GET /metrics", "metrics", s.handleMetrics)
	route("POST /v1/entries", "entries", s.handleEntries)
	route("POST /v1/extract", "extract", s.handleExtract)
	route("POST /v1/verify", "verify", s.handleVerify)
	route("POST /v1/decode", "decode", s.handleDecode)
	if cfg.MemWatermark > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		go s.memJanitor()
	}
	if cfg.Artifacts != nil {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.artifactFlusher()
	}
	return s
}

// artifactFlusher periodically re-persists snapshot lines whose
// absorbed uop block caches have grown since their artifact was
// written, so the translation work live streams pay for reaches disk
// (and through vxwarm pack, the rest of the fleet) without waiting for
// a clean shutdown.
func (s *Server) artifactFlusher() {
	defer close(s.flushDone)
	t := time.NewTicker(s.cfg.ArtifactFlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-t.C:
		}
		if n := s.cache.FlushArtifacts(); n > 0 && s.cfg.Logger != nil {
			s.cfg.Logger.Info("persisted grown snapshot artifacts", "artifacts", n)
		}
	}
}

// memJanitor watches the heap against the configured watermark and
// shrinks the snapshot cache to half its resident bytes when crossed:
// idle decoder VMs are dropped and LRU snapshot lines evicted, trading
// warm-path latency for staying alive. Lines rebuild on demand once
// pressure subsides.
func (s *Server) memJanitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(memJanitorInterval)
	defer t.Stop()
	var ms runtime.MemStats
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
		}
		runtime.ReadMemStats(&ms)
		if int64(ms.HeapAlloc) <= s.cfg.MemWatermark {
			continue
		}
		// Aim to halve total snapshot residency. Orphan-pinned bytes
		// (evicted lines with leases still in flight) can't be evicted
		// again, so the evictable target absorbs their share — without
		// this the janitor under-shrinks by exactly the orphaned amount.
		st := s.cache.Stats()
		target := (st.Bytes+st.OrphanBytes)/2 - st.OrphanBytes
		if target < 0 {
			target = 0
		}
		freed := s.cache.Shrink(target)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Warn("memory watermark exceeded, shrank snapshot cache",
				"heap_bytes", ms.HeapAlloc, "watermark", s.cfg.MemWatermark,
				"cache_bytes_freed", freed, "orphan_bytes", st.OrphanBytes)
		}
	}
}

// StartDrain begins graceful shutdown: /readyz flips to draining (so
// load balancers stop routing here) and new decode requests are shed
// with 503 + Retry-After while streams already admitted run to
// completion. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the server's background work (the memory janitor) and
// drops the snapshot cache's idle VMs. It does not wait for in-flight
// requests — pair it with StartDrain plus http.Server.Shutdown, which
// do. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		if s.janitorStop != nil {
			close(s.janitorStop)
			<-s.janitorDone
		}
		if s.flushStop != nil {
			close(s.flushStop)
			<-s.flushDone
			// Final flush: block caches grown since the last tick reach
			// disk before the process goes away.
			s.cache.FlushArtifacts()
		}
		s.cache.Drain()
	})
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the server's snapshot cache (for the bench harness and
// tests).
func (s *Server) Cache() *vmpool.SnapCache { return s.cache }

// Admission exposes the server's admission controller.
func (s *Server) Admission() *Admission { return s.adm }

// ---------- request instrumentation ----------

// reqInfo carries per-request annotations from handler to middleware:
// the handler knows the codec once it has parsed the request; the
// middleware owns observation.
type reqInfo struct {
	codec string
}

type reqInfoKey struct{}

// setCodec labels the in-flight request with the codec doing the work,
// feeding the per-codec latency histogram.
func setCodec(ctx context.Context, name string) {
	if info, ok := ctx.Value(reqInfoKey{}).(*reqInfo); ok && name != "" {
		info.codec = name
	}
}

// statusWriter captures the response status actually sent. A handler
// that never calls WriteHeader implicitly sends 200 on first write.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status, sw.wrote = code, true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.wrote {
		sw.status, sw.wrote = http.StatusOK, true
	}
	return sw.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so handlers can still cut a
// truncated stream short through the wrapper.
func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps a handler with the observation pipeline: it opens a
// tracing span on the request context, captures the response status,
// and on the way out feeds the latency histograms, status-class
// counters and the structured access/slow logs. A panic after partial
// output (the deliberate truncation of a broken 200 stream) is
// observed as a truncated stream, then re-raised so net/http still
// severs the connection.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.epHist[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if s.cfg.ShardID != "" {
			w.Header().Set(ShardHeader, s.cfg.ShardID)
		}
		info := &reqInfo{}
		ctx := context.WithValue(r.Context(), reqInfoKey{}, info)
		ctx, sp := obs.WithSpan(ctx)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			aborted := recover()
			elapsed := sp.Elapsed()
			hist.Observe(elapsed)
			s.observeStages(sp)
			s.observeCodec(info.codec, elapsed)
			s.observeStatus(sw.status)
			if aborted != nil {
				s.truncated.Add(1)
			}
			s.logRequest(r, endpoint, sw.status, elapsed, sp, info.codec, aborted != nil)
			if aborted != nil {
				panic(http.ErrAbortHandler)
			}
		}()
		h(sw, r.WithContext(ctx))
	}
}

// observeStages feeds each stage the request actually passed through
// into the per-stage histograms. Zero stages are skipped: a warm
// request records no snapshot-build sample, so the snapshot histogram
// describes cold-path builds instead of being flattened by zeros.
func (s *Server) observeStages(sp *obs.Span) {
	for _, st := range obs.Stages() {
		if d := sp.Get(st); d > 0 {
			s.stageHist[st].Observe(d)
		}
	}
}

// observeCodec records latency under the codec label, creating the
// series on first use.
func (s *Server) observeCodec(name string, d time.Duration) {
	if name == "" {
		return
	}
	s.mu.Lock()
	h := s.codecHist[name]
	if h == nil {
		h = &obs.Histogram{}
		s.codecHist[name] = h
	}
	s.mu.Unlock()
	h.Observe(d)
}

// observeStatus files the response under its status family. 499 gets
// its own cell; Errors means 5xx — a client mistake (4xx) or a client
// hangup (499) is not a server error.
func (s *Server) observeStatus(status int) {
	switch {
	case status == StatusClientClosedRequest:
		s.statusClass[0].Add(1)
	case status >= 100 && status < 600:
		s.statusClass[status/100].Add(1)
	}
	if status >= 500 {
		s.errors.Add(1)
	}
}

// logRequest emits the structured access log line and, past the slow
// threshold, a warning with the per-stage timeline.
func (s *Server) logRequest(r *http.Request, endpoint string, status int, elapsed time.Duration, sp *obs.Span, codecName string, aborted bool) {
	log := s.cfg.Logger
	if log == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("endpoint", endpoint),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Duration("elapsed", elapsed),
	}
	if codecName != "" {
		attrs = append(attrs, slog.String("codec", codecName))
	}
	if aborted {
		attrs = append(attrs, slog.Bool("truncated", true))
	}
	if s.cfg.SlowThreshold > 0 && elapsed >= s.cfg.SlowThreshold {
		attrs = append(attrs, slog.String("stages", sp.Timeline()))
		log.LogAttrs(r.Context(), slog.LevelWarn, "slow request", attrs...)
		return
	}
	log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

// ---------- metrics ----------

// Metrics is the /metrics document (JSON form). Errors counts 5xx
// responses only; shed/expired admissions, client mistakes and client
// hangups appear under StatusClasses and Admission instead.
type Metrics struct {
	UptimeSeconds    float64                  `json:"uptime_seconds"`
	Shard            string                   `json:"shard,omitempty"`
	Ready            bool                     `json:"ready"`
	Draining         bool                     `json:"draining"`
	Requests         uint64                   `json:"requests"`
	Errors           uint64                   `json:"errors"`
	BytesIn          uint64                   `json:"bytes_in"`
	BytesOut         uint64                   `json:"bytes_out"`
	TruncatedStreams uint64                   `json:"truncated_streams"`
	StatusClasses    map[string]uint64        `json:"status_classes"`
	ErrorKinds       map[string]uint64        `json:"error_kinds,omitempty"`
	Endpoints        map[string]obs.HistStats `json:"endpoint_latency"`
	Codecs           map[string]obs.HistStats `json:"codec_latency,omitempty"`
	Stages           map[string]obs.HistStats `json:"stage_latency,omitempty"`
	Admission        AdmissionStats           `json:"admission"`
	Cache            vmpool.SnapCacheStats    `json:"cache"`
	// ArtifactStore is present only when the persistent artifact tier
	// is armed (-artifact-dir).
	ArtifactStore *artifact.Stats `json:"artifact_store,omitempty"`
}

// MetricsSnapshot returns the current counters and latency summaries.
func (s *Server) MetricsSnapshot() Metrics {
	ready, _ := s.Readiness()
	m := Metrics{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Shard:            s.cfg.ShardID,
		Ready:            ready,
		Draining:         s.draining.Load(),
		Requests:         s.requests.Load(),
		Errors:           s.errors.Load(),
		BytesIn:          s.bytesIn.Load(),
		BytesOut:         s.bytesOut.Load(),
		TruncatedStreams: s.truncated.Load(),
		StatusClasses:    make(map[string]uint64),
		Endpoints:        make(map[string]obs.HistStats),
		Admission:        s.adm.Stats(),
		Cache:            s.cache.Stats(),
	}
	if s.cfg.Artifacts != nil {
		st := s.cfg.Artifacts.Stats()
		m.ArtifactStore = &st
	}
	for class := 1; class < len(s.statusClass); class++ {
		if n := s.statusClass[class].Load(); n > 0 {
			m.StatusClasses[fmt.Sprintf("%dxx", class)] = n
		}
	}
	if n := s.statusClass[0].Load(); n > 0 {
		m.StatusClasses["499"] = n
	}
	for _, k := range errorKinds {
		if n := s.errKinds[k].Load(); n > 0 {
			if m.ErrorKinds == nil {
				m.ErrorKinds = make(map[string]uint64)
			}
			m.ErrorKinds[k.String()] = n
		}
	}
	for name, h := range s.epHist {
		m.Endpoints[name] = h.Snapshot().Stats()
	}
	for _, st := range obs.Stages() {
		snap := s.stageHist[st].Snapshot()
		if snap.Count == 0 {
			continue
		}
		if m.Stages == nil {
			m.Stages = make(map[string]obs.HistStats)
		}
		m.Stages[st.String()] = snap.Stats()
	}
	s.mu.Lock()
	for name, h := range s.codecHist {
		if m.Codecs == nil {
			m.Codecs = make(map[string]obs.HistStats)
		}
		m.Codecs[name] = h.Snapshot().Stats()
	}
	s.mu.Unlock()
	return m
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// Operational degradation never shows here — a draining or quarantine-
// heavy daemon is still alive; restarting it would only make things
// worse. Orchestrators should restart on /healthz and route on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// Readiness reports whether the daemon should receive new traffic,
// with the reasons it should not. Degraded when draining, when any
// decoder circuit breaker is open (the fleet has healthier members to
// route to), or when the recent shed rate — shed + expired admissions
// over all admission outcomes, sampled at most once per ReadyWindow —
// exceeds ReadyShedRate.
func (s *Server) Readiness() (ready bool, reasons []string) {
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	h := s.cache.Health()
	if h.Open > 0 {
		reasons = append(reasons, fmt.Sprintf("%d decoder breaker(s) open", h.Open))
	}
	if rate := s.shedRate(); rate > s.cfg.ReadyShedRate {
		reasons = append(reasons, fmt.Sprintf("shed rate %.2f over the last window", rate))
	}
	return len(reasons) == 0, reasons
}

// shedRate returns the shed fraction over the last completed sampling
// window. Windows rotate lazily: the first call past ReadyWindow since
// the previous rotation computes the rate from the counter deltas and
// starts the next window.
func (s *Server) shedRate() float64 {
	now := time.Now()
	cur := s.adm.Stats()
	s.readyMu.Lock()
	defer s.readyMu.Unlock()
	if s.readySampled.IsZero() {
		s.readySampled, s.readyPrev = now, cur
		return 0
	}
	if now.Sub(s.readySampled) >= s.cfg.ReadyWindow {
		shed := float64(cur.Shed - s.readyPrev.Shed + cur.ShedCold - s.readyPrev.ShedCold + cur.Expired - s.readyPrev.Expired)
		total := shed + float64(cur.Admitted-s.readyPrev.Admitted)
		if total > 0 {
			s.readyRate = shed / total
		} else {
			s.readyRate = 0
		}
		s.readySampled, s.readyPrev = now, cur
	}
	return s.readyRate
}

// handleReadyz is the routing signal: 200 while the daemon wants
// traffic, 503 (with the reasons) while it should be avoided.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reasons := s.Readiness()
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(struct {
		Ready   bool     `json:"ready"`
		Shard   string   `json:"shard,omitempty"`
		Reasons []string `json:"reasons,omitempty"`
	}{ready, s.cfg.ShardID, reasons})
}

// wantsPrometheus reports whether the scrape asked for text exposition:
// either explicitly (?format=prometheus) or via an Accept header
// preferring text/plain, which is what a stock Prometheus scraper
// sends. JSON stays the default for humans and the existing tooling.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WritePrometheus(w); err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Error("metrics: prometheus write failed", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.MetricsSnapshot()); err != nil && s.cfg.Logger != nil {
		// A scrape client that hung up mid-encode is the usual cause;
		// the failure is the scraper's problem but must not be silent.
		s.cfg.Logger.Error("metrics: JSON encode failed", "err", err)
	}
}

// WritePrometheus renders the metrics in Prometheus text exposition
// format 0.0.4. Latency families are summaries (precomputed quantiles
// in seconds); counter families carry the same values as the JSON
// document. Exported so the format self-check can scrape it directly.
func (s *Server) WritePrometheus(w io.Writer) error {
	p := obs.NewPromWriter(w)
	p.Gauge("vxad_uptime_seconds", "Seconds since the server started.", nil, time.Since(s.start).Seconds())
	p.Counter("vxad_requests_total", "HTTP requests received.", nil, float64(s.requests.Load()))
	p.Counter("vxad_errors_total", "Responses with a 5xx status.", nil, float64(s.errors.Load()))
	p.Counter("vxad_bytes_in_total", "Request body bytes read.", nil, float64(s.bytesIn.Load()))
	p.Counter("vxad_bytes_out_total", "Decoded bytes streamed to clients.", nil, float64(s.bytesOut.Load()))
	p.Counter("vxad_truncated_streams_total", "Streams aborted after partial output.", nil, float64(s.truncated.Load()))
	for class := 1; class < len(s.statusClass); class++ {
		p.Counter("vxad_responses_total", "Responses by status class.",
			map[string]string{"class": fmt.Sprintf("%dxx", class)}, float64(s.statusClass[class].Load()))
	}
	p.Counter("vxad_responses_total", "", map[string]string{"class": "499"}, float64(s.statusClass[0].Load()))
	for _, k := range errorKinds {
		p.Counter("vxad_error_kinds_total", "Typed archive failures by core.ErrorKind.",
			map[string]string{"kind": k.String()}, float64(s.errKinds[k].Load()))
	}

	ready, _ := s.Readiness()
	p.Gauge("vxad_ready", "1 while the daemon should receive traffic, else 0.", nil, boolGauge(ready))
	p.Gauge("vxad_draining", "1 while the daemon is draining for shutdown.", nil, boolGauge(s.draining.Load()))

	adm := s.adm.Stats()
	p.Gauge("vxad_admission_in_flight", "Decode streams currently running.", nil, float64(adm.InFlight))
	p.Gauge("vxad_admission_capacity", "Concurrent stream capacity.", nil, float64(adm.Capacity))
	p.Gauge("vxad_admission_queue_depth", "Requests waiting for a slot.", nil, float64(adm.QueueDepth))
	p.Counter("vxad_admission_admitted_total", "Requests granted a stream slot.", nil, float64(adm.Admitted))
	p.Counter("vxad_admission_shed_total", "Requests shed with 503 (queue full).", nil, float64(adm.Shed))
	p.Counter("vxad_admission_shed_cold_total", "Cold (snapshot-miss) requests shed at the cold watermark.", nil, float64(adm.ShedCold))
	p.Counter("vxad_admission_expired_total", "Requests expired with 504 (queue timeout).", nil, float64(adm.Expired))

	cache := s.cache.Stats()
	p.Counter("vxad_snapcache_hits_total", "Snapshot cache hits.", nil, float64(cache.Hits))
	p.Counter("vxad_snapcache_misses_total", "Snapshot cache misses (builds).", nil, float64(cache.Misses))
	p.Counter("vxad_snapcache_evictions_total", "Snapshot cache evictions.", nil, float64(cache.Evictions))
	p.Counter("vxad_snapcache_quarantined_total", "Snapshot lines evicted by decoder quarantine.", nil, float64(cache.Quarantined))
	p.Counter("vxad_snapcache_shrinks_total", "Emergency cache shrinks (memory watermark).", nil, float64(cache.Shrinks))
	p.Gauge("vxad_snapcache_entries", "Resident snapshot cache entries.", nil, float64(cache.Entries))
	p.Gauge("vxad_snapcache_bytes", "Resident snapshot cache bytes (live footprint).", nil, float64(cache.Bytes))
	p.Gauge("vxad_snapcache_orphan_bytes", "Snapshot bytes pinned by evicted lines with in-flight leases.", nil, float64(cache.OrphanBytes))

	engine := cache.VM
	p.Counter("vxad_engine_steps_total", "Guest instructions retired across released streams.", nil, float64(engine.Steps))
	p.Counter("vxad_engine_uops_total", "Micro-ops executed across released streams.", nil, float64(engine.UopsExecuted))
	p.Counter("vxad_engine_superblocks_formed_total", "Hot-path superblocks assembled from edge profiles.", nil, float64(engine.SuperblocksFormed))
	p.Counter("vxad_engine_tier2_compiled_total", "Superblock traces fused into tier-2 compiled programs.", nil, float64(engine.Tier2Compiled))
	p.Counter("vxad_engine_tier2_executed_total", "Tier-2 trace iterations run (one full superblock pass each).", nil, float64(engine.Tier2Executed))
	p.Counter("vxad_engine_tier2_demotions_total", "Compiled tier-2 traces dropped with their superblock.", nil, float64(engine.Tier2Demotions))
	p.Counter("vxad_engine_tier2_steps_total", "Guest instructions retired inside tier-2 traces.", nil, float64(engine.Tier2Steps))
	p.Counter("vxad_engine_translate_seconds_total", "Wall time spent translating guest code.", nil, float64(engine.TranslateNS)/1e9)
	p.Counter("vxad_engine_syscalls_total", "Guest syscalls serviced.", nil, float64(engine.Syscalls))

	if s.cfg.Artifacts != nil {
		st := s.cfg.Artifacts.Stats()
		p.Counter("vxad_artifact_hits_total", "Persistent artifact store hits (disk-warm builds).", nil, float64(st.Hits))
		p.Counter("vxad_artifact_misses_total", "Persistent artifact store misses.", nil, float64(st.Misses))
		p.Counter("vxad_artifact_fallbacks_total", "Artifact loads that failed verification and fell back to the ELF build.", nil, float64(st.Fallbacks))
		p.Counter("vxad_artifact_saves_total", "Artifacts written (builds plus flushes).", nil, float64(st.Saves))
		p.Counter("vxad_artifact_save_errors_total", "Artifact writes that failed.", nil, float64(st.SaveErrors))
		p.Counter("vxad_artifact_bytes_loaded_total", "Artifact bytes loaded from the store.", nil, float64(st.BytesLoaded))
		p.Counter("vxad_artifact_bytes_saved_total", "Artifact bytes written to the store.", nil, float64(st.BytesSaved))
		p.Counter("vxad_artifact_load_seconds_total", "Wall time spent in successful artifact loads.", nil, float64(st.LoadNanos)/1e9)
	}

	health := cache.Health
	p.Gauge("vxad_breaker_open", "Decoder circuit breakers currently open.", nil, float64(health.Open))
	p.Gauge("vxad_breaker_half_open", "Decoder circuit breakers currently half-open (probing).", nil, float64(health.HalfOpen))
	p.Gauge("vxad_breaker_tracked", "Decoders with a live failure record.", nil, float64(health.Tracked))
	p.Counter("vxad_breaker_trips_total", "Breaker transitions to open.", nil, float64(health.Trips))
	p.Counter("vxad_breaker_probes_total", "Half-open probe admissions.", nil, float64(health.Probes))
	p.Counter("vxad_breaker_probe_successes_total", "Probes that closed a breaker.", nil, float64(health.ProbeSuccesses))
	for _, c := range []struct {
		class string
		n     uint64
	}{
		{"trap", health.Failures.Traps},
		{"fuel", health.Failures.Fuel},
		{"watchdog", health.Failures.Watchdog},
		{"build", health.Failures.Builds},
	} {
		p.Counter("vxad_decoder_failures_total", "Counted decoder failures by class.",
			map[string]string{"class": c.class}, float64(c.n))
	}

	for _, name := range sortedKeys(s.epHist) {
		p.Summary("vxad_request_duration_seconds", "Request latency by endpoint.",
			map[string]string{"endpoint": name}, s.epHist[name].Snapshot())
	}
	s.mu.Lock()
	codecSnaps := make(map[string]obs.HistSnapshot, len(s.codecHist))
	for name, h := range s.codecHist {
		codecSnaps[name] = h.Snapshot()
	}
	s.mu.Unlock()
	for _, name := range sortedKeys(codecSnaps) {
		p.Summary("vxad_codec_duration_seconds", "Decode latency by codec.",
			map[string]string{"codec": name}, codecSnaps[name])
	}
	for _, st := range obs.Stages() {
		snap := s.stageHist[st].Snapshot()
		if snap.Count == 0 {
			continue
		}
		p.Summary("vxad_stage_duration_seconds", "Per-stage time within traced requests.",
			map[string]string{"stage": st.String()}, snap)
	}
	return p.Err()
}

// boolGauge renders a boolean as a 0/1 gauge value.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sortedKeys returns m's keys sorted, for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// ---------- request plumbing ----------

// ShardHeader is the response header naming the shard that served a
// request (Config.ShardID). The router forwards it untouched, so a
// client two hops away can still attribute its bytes to a process.
const ShardHeader = "X-Vxa-Shard"

// StatusClientClosedRequest is the (nginx-convention) status recorded
// when the client's own context canceled the work mid-request; the
// client is gone, so the code is for logs and metrics, not the wire.
const StatusClientClosedRequest = 499

// StatusDecoderQuarantined is the status for requests failed fast
// because the entry's decoder is under circuit-breaker quarantine. A
// dedicated non-standard code (the 52x range is conventional for
// origin-side trouble) so clients and dashboards can tell "your decoder
// is quarantined, retry after the probe window" apart from both 422
// (your decoder just crashed) and 503 (the whole daemon is overloaded).
const StatusDecoderQuarantined = 521

// kindStatus maps the library's error taxonomy onto HTTP statuses — the
// v2 replacement for classifying failures by error-string shape. Every
// core.ErrorKind has a row; the round-trip test pins that.
var kindStatus = map[core.ErrorKind]int{
	core.KindBadArchive:    http.StatusBadRequest,          // the request body is at fault
	core.KindUnknownCodec:  http.StatusNotFound,            // nothing can decode the entry
	core.KindDecoderTrap:   http.StatusUnprocessableEntity, // well-formed request, hostile/buggy decoder
	core.KindFuelExhausted: http.StatusUnprocessableEntity, // decoder exceeded its instruction budget
	core.KindOutputLimit:   http.StatusRequestEntityTooLarge,
	core.KindCanceled:      StatusClientClosedRequest,
	core.KindIO:            http.StatusInternalServerError, // host-side fault, not the client's
	core.KindUnavailable:   http.StatusServiceUnavailable,  // lease machinery failed or load shed
	core.KindQuarantined:   StatusDecoderQuarantined,
	core.KindDeadline:      http.StatusUnprocessableEntity, // decoder blew its wall-clock budget
}

// StatusFor resolves any error the serving paths produce to its HTTP
// status: typed archive errors through the kind table, admission and
// transport errors through their sentinels, everything else 500.
// Exported so the error-taxonomy round trip is testable end to end.
func StatusFor(err error) int {
	var ve *core.Error
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrColdShed), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrExpired):
		return http.StatusGatewayTimeout
	case errors.Is(err, vmpool.ErrDecoderQuarantined):
		return StatusDecoderQuarantined
	case errors.As(err, &ve):
		if status, ok := kindStatus[ve.Kind]; ok {
			return status
		}
	case errors.Is(err, zipfile.ErrFormat), errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, errNotFound):
		return http.StatusNotFound
	case errors.As(err, new(*codec.DecodeError)):
		// Raw-stream decode failures (/v1/decode) that bypassed the
		// archive layer's classification.
		return http.StatusUnprocessableEntity
	case errors.As(err, new(*http.MaxBytesError)):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// retryAfter derives the Retry-After hint for a fail-fast response:
// quarantine errors carry the exact time until the next half-open
// probe; overload and drain responses use a flat second.
func retryAfter(err error) string {
	var qe *vmpool.QuarantineError
	if errors.As(err, &qe) {
		secs := int(qe.RetryAfter/time.Second) + 1
		return strconv.Itoa(secs)
	}
	return "1"
}

// fail writes an error response with the status implied by err. The
// middleware derives the error counters from the status it sees on the
// way out; fail only files the typed-kind breakdown.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.noteErrorKind(err)
	status := StatusFor(err)
	if status == http.StatusServiceUnavailable || status == StatusDecoderQuarantined {
		w.Header().Set("Retry-After", retryAfter(err))
	}
	http.Error(w, err.Error(), status)
}

// noteErrorKind counts a typed archive failure under its ErrorKind.
func (s *Server) noteErrorKind(err error) {
	var ve *core.Error
	if errors.As(err, &ve) && int(ve.Kind) < len(s.errKinds) {
		s.errKinds[ve.Kind].Add(1)
	}
}

var (
	errBadRequest = errors.New("server: bad request")
	errNotFound   = errors.New("server: not found")
	// ErrDraining: the daemon is draining for shutdown; new decode work
	// is shed with 503 + Retry-After so clients re-resolve elsewhere.
	ErrDraining = errors.New("server: draining, not accepting new work")
)

// readBody reads the full request body under the size cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		return nil, err
	}
	s.bytesIn.Add(uint64(len(body)))
	return body, nil
}

// admit runs the admission controller for one decode stream. The wait
// context is the request's own (a client disconnect counts as expiry)
// bounded by the configured queue timeout. Time spent waiting — slot
// granted or not — is the request's queue stage. cold marks requests
// that would have to build a decoder snapshot before streaming; those
// are the first tier shed under pressure.
//
// A wait that ends because the client itself went away is reported as a
// cancellation (499), not as a queue expiry: the admission machinery
// did nothing wrong, and filing client hangups under 504 would make the
// shed-rate readiness signal lie.
func (s *Server) admit(r *http.Request, cold bool) (release func(), err error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueueTimeout)
	defer cancel()
	waitStart := time.Now()
	defer func() { obs.SpanFrom(r.Context()).Add(obs.StageQueue, time.Since(waitStart)) }()
	release, err = s.adm.AcquireTier(ctx, cold)
	if errors.Is(err, ErrExpired) && errors.Is(r.Context().Err(), context.Canceled) {
		return nil, &core.Error{Kind: core.KindCanceled, Trap: r.Context().Err()}
	}
	return release, err
}

// fuel computes the per-stream budget: the standard payload-scaled
// policy, capped by MaxFuel. An explicit ?fuel=N can only lower it —
// letting a request raise its own CPU budget would turn a tiny body
// into minutes of guest execution holding an admission slot.
func (s *Server) fuel(r *http.Request, payloadLen int) (int64, error) {
	f := vm.StreamFuel(payloadLen)
	if f > s.cfg.MaxFuel {
		f = s.cfg.MaxFuel
	}
	if q := r.URL.Query().Get("fuel"); q != "" {
		n, err := strconv.ParseInt(q, 10, 64)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("%w: bad fuel %q", errBadRequest, q)
		}
		if n < f {
			f = n
		}
	}
	return f, nil
}

// reader opens the archive in the request body, routed through the
// shared snapshot cache.
func (s *Server) reader(w http.ResponseWriter, r *http.Request) (*core.Reader, error) {
	body, err := s.readBody(w, r)
	if err != nil {
		return nil, err
	}
	cr, err := core.NewReader(body)
	if err != nil {
		return nil, err
	}
	cr.SetSnapCache(s.cache)
	return cr, nil
}

// countWriter tracks decoded bytes streamed to the client and pins the
// first write error (a severed client connection — or, under chaos
// testing, an injected response-write fault, which simulates exactly
// that). With sp set it also attributes write time to the span's write
// stage — only the raw-stream decode path sets it; archive extraction
// is timed by the core layer's own writer, and double counting would
// overstate the stage.
type countWriter struct {
	w   http.ResponseWriter
	sp  *obs.Span
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if err := fault.Inject(fault.ResponseWrite); err != nil {
		if c.err == nil {
			c.err = err
		}
		return 0, err
	}
	var start time.Time
	if c.sp != nil {
		start = time.Now()
	}
	n, err := c.w.Write(p)
	if c.sp != nil {
		c.sp.Add(obs.StageWrite, time.Since(start))
	}
	c.n += int64(n)
	if err != nil && c.err == nil {
		c.err = err
	}
	return n, err
}

// ---------- endpoints ----------

// entryInfo is one row of the /v1/entries listing.
type entryInfo struct {
	Name          string `json:"name"`
	Codec         string `json:"codec,omitempty"`
	Method        uint16 `json:"method"`
	PreCompressed bool   `json:"pre_compressed,omitempty"`
	USize         uint32 `json:"usize"`
	CSize         uint32 `json:"csize"`
	Mode          uint32 `json:"mode"`
}

func (s *Server) handleEntries(w http.ResponseWriter, r *http.Request) {
	cr, err := s.reader(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	var out []entryInfo
	for _, e := range cr.Entries() {
		out = append(out, entryInfo{
			Name: e.Name, Codec: e.Codec, Method: e.Method,
			PreCompressed: e.PreCompressed, USize: e.USize, CSize: e.CSize,
			Mode: e.Mode,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// extractOptions builds the decode options shared by extract and verify.
func (s *Server) extractOptions(r *http.Request, fuel int64) []core.Option {
	mode := core.AlwaysVXA
	if r.URL.Query().Get("mode") == "native" {
		mode = core.NativeFirst
	}
	opts := []core.Option{
		core.WithMode(mode),
		core.WithVM(vm.Config{MemSize: s.cfg.MemSize, Fuel: fuel}),
	}
	if r.URL.Query().Get("decode_all") != "" {
		opts = append(opts, core.WithDecodeAll(true))
	}
	return opts
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("entry")
	if name == "" {
		s.fail(w, fmt.Errorf("%w: missing ?entry=", errBadRequest))
		return
	}
	cr, err := s.reader(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	var entry *core.Entry
	for i, e := range cr.Entries() {
		if e.Name == name {
			entry = &cr.Entries()[i]
			break
		}
	}
	if entry == nil {
		s.fail(w, fmt.Errorf("%w: entry %q", errNotFound, name))
		return
	}
	setCodec(r.Context(), entry.Codec)
	fuel, err := s.fuel(r, int(entry.CSize))
	if err != nil {
		s.fail(w, err)
		return
	}

	// Resolve the entry's decoder content hash before admission: a
	// quarantined decoder fails fast right here — no queue wait, no VM
	// lease — and a snapshot miss marks the request cold, the first
	// tier shed under load.
	cold := false
	if hash, ok, herr := cr.DecoderHash(entry); herr != nil {
		s.fail(w, herr)
		return
	} else if ok {
		if qerr := s.cache.CheckQuarantine(hash); qerr != nil {
			s.fail(w, &core.Error{Kind: core.KindQuarantined, Entry: entry.Name, Trap: qerr})
			return
		}
		cold = !s.cache.Contains(hash, entry.Mode)
	}

	release, err := s.admit(r, cold)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countWriter{w: w}
	// The request's own context drives the decode: a client that
	// disconnects mid-stream cancels the guest at its next block
	// boundary, and the VM goes back to the shared pool immediately
	// instead of decoding for a reader that is gone.
	_, err = cr.ExtractTo(r.Context(), entry, cw, s.extractOptions(r, fuel)...)
	s.bytesOut.Add(uint64(cw.n))
	if err != nil {
		if cw.n == 0 {
			s.fail(w, err)
			return
		}
		// Decoded bytes already reached the client under a 200: all we
		// can do is cut the stream short so the truncation is visible.
		// The middleware files it under the truncated-streams counter.
		s.noteErrorKind(err)
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	}
}

// verifyResult is one row of the /v1/verify report.
type verifyResult struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	cr, err := s.reader(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	release, err := s.admit(r, false)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()

	// One admission slot covers the whole archive, so verification runs
	// serial: a verify request is one stream of work, however many
	// entries it touches.
	results := make([]verifyResult, 0, len(cr.Entries()))
	failed := 0
	for i := range cr.Entries() {
		e := &cr.Entries()[i]
		fuel, ferr := s.fuel(r, int(e.CSize))
		if ferr != nil {
			s.fail(w, ferr)
			return
		}
		res := verifyResult{Name: e.Name, OK: true}
		if _, err := cr.ExtractTo(r.Context(), e, io.Discard, s.extractOptions(r, fuel)...); err != nil {
			res.OK, res.Error = false, err.Error()
			failed++
		}
		results = append(results, res)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Entries int            `json:"entries"`
		Failed  int            `json:"failed"`
		Results []verifyResult `json:"results"`
	}{len(results), failed, results})
}

// decodeMode is the security mode /v1/decode streams run under: the
// endpoint serves public one-shot streams, so every request shares one
// reuse class per codec.
const decodeMode = 0644

// builtinCodec resolves a registered codec and the content hash of its
// decoder ELF (learned once per server). With an artifact store armed,
// the hash comes from the store's persistent ELF-hash index when
// possible: that is what lets a restarted daemon address a codec's
// snapshot artifact without first spending hundreds of milliseconds in
// the VXC compiler just to hash its output — the compile was the cold
// start. Only when the index misses is the decoder compiled, and the
// resulting hash is recorded for the next restart.
func (s *Server) builtinCodec(name string) (*codec.Codec, [32]byte, error) {
	c, ok := codec.ByName(name)
	if !ok {
		return nil, [32]byte{}, fmt.Errorf("%w: codec %q", errNotFound, name)
	}
	s.mu.Lock()
	h, ok := s.codecHash[name]
	s.mu.Unlock()
	if ok {
		return c, h, nil
	}
	if st := s.cfg.Artifacts; st != nil {
		if h, ok := st.LookupELF(c.SourceKey()); ok {
			s.mu.Lock()
			s.codecHash[name] = h
			s.mu.Unlock()
			return c, h, nil
		}
	}
	elf, err := c.DecoderELF()
	if err != nil {
		return nil, [32]byte{}, err
	}
	h = vmpool.HashELF(elf)
	if st := s.cfg.Artifacts; st != nil {
		// Best-effort: a failed record costs the next restart one
		// compile, nothing else.
		_ = st.RecordELF(c.SourceKey(), h)
	}
	s.mu.Lock()
	s.codecHash[name] = h
	s.mu.Unlock()
	return c, h, nil
}

// builtinELF returns the snapshot-miss build callback for a built-in
// codec whose content hash was resolved by builtinCodec. When the hash
// may have come from the ELF-hash index, the freshly compiled bytes
// are checked against it: a mismatch means the index entry predates an
// ELF-affecting compiler change that did not bump vxcc.Version, so the
// stale entry and the server's cached hash are dropped and the request
// fails loudly rather than filing the new decoder under the old
// address (a retry re-resolves cleanly). Mismatch is impossible when
// the hash was computed from this process's own compile — the build is
// cached per codec — so the check only ever fires on the index path.
func (s *Server) builtinELF(c *codec.Codec, hash [32]byte) func() ([]byte, error) {
	return func() ([]byte, error) {
		elf, err := c.DecoderELF()
		if err != nil {
			return nil, err
		}
		if vmpool.HashELF(elf) != hash {
			if st := s.cfg.Artifacts; st != nil {
				st.DropELF(c.SourceKey())
			}
			s.mu.Lock()
			delete(s.codecHash, c.Name)
			s.mu.Unlock()
			return nil, fmt.Errorf("server: codec %s: compiled decoder does not match indexed hash %x (stale ELF index entry dropped; was vxcc.Version bumped?)", c.Name, hash)
		}
		return elf, nil
	}
}

// PrewarmCodec restores one registered codec's decoder line from the
// persistent artifact store, if the store's ELF-hash index knows its
// content address: the snapshot line is built now — artifact load,
// pool seeded with a materialized (page-faulted) spare VM — so the
// codec's first request after a daemon restart runs at warm-cache
// latency instead of paying the probe, image load and VM
// materialization inline. An indexed-but-lost artifact self-heals
// through the normal miss path (compile fallback) here rather than on
// the first request. Reports whether the line was warmed; false when
// there is no store, the codec is unknown or unindexed, or the build
// failed (the first request will then retry the full path).
func (s *Server) PrewarmCodec(ctx context.Context, name string) bool {
	st := s.cfg.Artifacts
	if st == nil {
		return false
	}
	c, ok := codec.ByName(name)
	if !ok {
		return false
	}
	h, ok := st.LookupELF(c.SourceKey())
	if !ok {
		return false
	}
	s.mu.Lock()
	s.codecHash[c.Name] = h
	s.mu.Unlock()
	lease, err := s.cache.Get(ctx, h, decodeMode, 0, s.builtinELF(c, h))
	if err != nil {
		return false
	}
	lease.Release(true)
	return true
}

// PrewarmArtifacts prewarms every registered codec the artifact store's
// index has history for (see PrewarmCodec) and returns how many decoder
// lines were warmed. Codecs with no recorded history are skipped —
// prewarming never compiles speculatively, so daemon readiness is never
// delayed for a codec that may never be asked for. No-op without a
// store.
func (s *Server) PrewarmArtifacts(ctx context.Context) int {
	if s.cfg.Artifacts == nil {
		return 0
	}
	n := 0
	for _, c := range codec.All() {
		if s.PrewarmCodec(ctx, c.Name) {
			n++
		}
	}
	return n
}

func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("codec")
	if name == "" {
		s.fail(w, fmt.Errorf("%w: missing ?codec=", errBadRequest))
		return
	}
	c, hash, err := s.builtinCodec(name)
	if err != nil {
		s.fail(w, err)
		return
	}
	setCodec(r.Context(), name)
	payload, err := s.readBody(w, r)
	if err != nil {
		s.fail(w, err)
		return
	}
	fuel, err := s.fuel(r, len(payload))
	if err != nil {
		s.fail(w, err)
		return
	}

	// Built-in decoders get the same containment as archived ones: a
	// quarantined codec fails fast pre-admission, and a snapshot miss
	// rides the cold tier.
	if qerr := s.cache.CheckQuarantine(hash); qerr != nil {
		s.fail(w, &core.Error{Kind: core.KindQuarantined, Entry: name, Trap: qerr})
		return
	}
	release, err := s.admit(r, !s.cache.Contains(hash, decodeMode))
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()

	// Scope 0 (the single trusted tenant): /v1/decode runs only the
	// registry's own compiled decoders, which carry no per-client
	// secrets, so resume-in-place across requests is safe and keeps the
	// endpoint at warm-cache latency.
	lease, err := s.cache.Get(r.Context(), hash, decodeMode, 0, s.builtinELF(c, hash))
	if err != nil {
		s.fail(w, core.ClassifyDecode(name, err, r.Context().Err()))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	sp := obs.SpanFrom(r.Context())
	cw := &countWriter{w: w, sp: sp}
	var diag bytes.Buffer
	st0 := lease.VM().Stats()
	reusable, err := lease.VM().RunStream(r.Context(), bytes.NewReader(payload), cw, &diag, fuel)
	st1 := lease.VM().Stats()
	sp.Add(obs.StageTranslate, time.Duration(st1.TranslateNS-st0.TranslateNS))
	sp.Add(obs.StageExecute, time.Duration(st1.ExecuteNS-st0.ExecuteNS))
	s.bytesOut.Add(uint64(cw.n))
	if err != nil {
		switch {
		case vm.IsCanceled(err):
			// The client is gone; reset the VM to pristine and park it.
			lease.ReleaseReset()
			panic(http.ErrAbortHandler)
		case vm.IsWatchdog(err):
			// Wall-clock kill: the VM rewinds clean; the kill counts
			// against the codec's breaker.
			s.cache.Report(hash, vmpool.OutcomeWatchdog)
			lease.ReleaseReset()
			if cw.n == 0 {
				s.fail(w, &core.Error{Kind: core.KindDeadline, Entry: name, Trap: err})
				return
			}
			panic(http.ErrAbortHandler)
		case cw.err != nil && errors.Is(cw.err, fault.ErrInjected):
			// An injected response-write fault severed the stream from
			// the host side — the guest only saw EIO. Not the decoder's
			// fault; same containment as a vanished client.
			lease.ReleaseReset()
			if cw.n == 0 {
				s.fail(w, &core.Error{Kind: core.KindCanceled, Entry: name, Trap: cw.err})
				return
			}
			panic(http.ErrAbortHandler)
		}
		s.cache.Report(hash, vmpool.OutcomeFor(err))
		de := codec.ClassifyDecodeError(name, err, lease.VM().ExitCode(), diag.String())
		lease.Release(false)
		if cw.n == 0 {
			s.fail(w, de)
			return
		}
		panic(http.ErrAbortHandler)
	}
	s.cache.Report(hash, vmpool.OutcomeOK)
	lease.Release(reusable)
}
