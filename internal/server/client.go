package server

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client is a shed-aware HTTP client for the vxad/vxrouter wire
// surface. A plain http.Client treats a 503 like any other response
// and will happily hammer a daemon that is telling every caller to
// back off; this wrapper honors the backpressure: any 503/504/521
// response's Retry-After starts a hold-down window, and requests
// issued inside the window fail fast locally with ErrHeldDown instead
// of reaching the wire. The load harness uses it so shed responses are
// counted as sheds — a sanctioned, polite outcome — rather than as
// generic failures that keep kicking a degraded server.
type Client struct {
	// HTTP is the underlying client. Nil means http.DefaultClient.
	HTTP *http.Client

	mu        sync.Mutex
	holdUntil time.Time
	held      uint64
	sheds     uint64
}

// ErrHeldDown is returned (wrapped in *HeldError) by Post while the
// client is inside a Retry-After hold-down window; nothing was sent.
var ErrHeldDown = errors.New("server: held down by Retry-After")

// HeldError reports a request refused locally during hold-down.
type HeldError struct{ Remaining time.Duration }

func (e *HeldError) Error() string {
	return fmt.Sprintf("server: held down by Retry-After (%v remaining)", e.Remaining.Round(time.Millisecond))
}

// Is makes errors.Is(err, ErrHeldDown) match.
func (e *HeldError) Is(target error) bool { return target == ErrHeldDown }

// IsShedStatus reports whether an HTTP status is a load-management
// outcome the server wants the client to back off from: 503 (shed or
// draining), 504 (queue expiry) and 521 (decoder quarantined).
func IsShedStatus(status int) bool {
	return status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout ||
		status == StatusDecoderQuarantined
}

// ParseRetryAfter reads a Retry-After header as a delay. Only the
// delta-seconds form is produced by vxad and vxrouter; absent or
// unparseable values report ok=false.
func ParseRetryAfter(h http.Header) (d time.Duration, ok bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// Post sends one request, unless the client is inside a hold-down
// window (ErrHeldDown, nothing sent). A shed response (see
// IsShedStatus) is returned to the caller like any other — its status
// is the caller's to classify — but its Retry-After first extends the
// hold-down so subsequent Posts back off. A shed without a Retry-After
// header holds for one second, matching the server's flat hint.
func (c *Client) Post(url, contentType string, body []byte) (*http.Response, error) {
	now := time.Now()
	c.mu.Lock()
	if now.Before(c.holdUntil) {
		remaining := c.holdUntil.Sub(now)
		c.held++
		c.mu.Unlock()
		return nil, &HeldError{Remaining: remaining}
	}
	c.mu.Unlock()

	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if IsShedStatus(resp.StatusCode) {
		hold, ok := ParseRetryAfter(resp.Header)
		if !ok {
			hold = time.Second
		}
		c.mu.Lock()
		c.sheds++
		if until := now.Add(hold); until.After(c.holdUntil) {
			c.holdUntil = until
		}
		c.mu.Unlock()
	}
	return resp, nil
}

// ClientStats is a point-in-time view of the client's shed accounting.
type ClientStats struct {
	// Sheds counts shed responses received from the wire.
	Sheds uint64 `json:"sheds"`
	// Held counts requests refused locally during hold-down.
	Held uint64 `json:"held"`
}

// Stats returns the shed/hold-down counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{Sheds: c.sheds, Held: c.held}
}
