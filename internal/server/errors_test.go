package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"vxa/internal/codec"
	"vxa/internal/core"
	"vxa/internal/vm"
	"vxa/internal/vmpool"
)

// TestErrorKindStatusRoundTrip pins the v2 error taxonomy end to end:
// every core.ErrorKind survives an errors.Is/As round trip through
// wrapping, matches exactly its own sentinel, and maps to its HTTP
// status through the server's table. A new kind without a table row
// fails here.
func TestErrorKindStatusRoundTrip(t *testing.T) {
	cases := []struct {
		kind     core.ErrorKind
		sentinel *core.Error
		cause    error
		status   int
	}{
		{core.KindBadArchive, core.ErrBadArchive, fmt.Errorf("zip: bad magic"), http.StatusBadRequest},
		{core.KindUnknownCodec, core.ErrUnknownCodec, nil, http.StatusNotFound},
		{core.KindDecoderTrap, core.ErrDecoderTrap,
			&codec.DecodeError{Codec: "deflate", Trap: &vm.Trap{Kind: vm.TrapMemory, EIP: 0x1000}},
			http.StatusUnprocessableEntity},
		{core.KindFuelExhausted, core.ErrFuelExhausted,
			&codec.DecodeError{Codec: "deflate", Trap: &vm.Trap{Kind: vm.TrapFuel, EIP: 0x1000}},
			http.StatusUnprocessableEntity},
		{core.KindOutputLimit, core.ErrOutputLimit, nil, http.StatusRequestEntityTooLarge},
		{core.KindCanceled, core.ErrCanceled, context.Canceled, StatusClientClosedRequest},
		{core.KindIO, core.ErrIO, fmt.Errorf("read: connection reset"), http.StatusInternalServerError},
		{core.KindUnavailable, core.ErrUnavailable, nil, http.StatusServiceUnavailable},
		{core.KindQuarantined, core.ErrQuarantined,
			&vmpool.QuarantineError{RetryAfter: time.Second},
			StatusDecoderQuarantined},
		{core.KindDeadline, core.ErrDeadline,
			&vm.WatchdogError{Budget: time.Second},
			http.StatusUnprocessableEntity},
	}
	sentinels := []*core.Error{
		core.ErrBadArchive, core.ErrUnknownCodec, core.ErrDecoderTrap,
		core.ErrFuelExhausted, core.ErrOutputLimit, core.ErrCanceled,
		core.ErrIO, core.ErrUnavailable, core.ErrQuarantined, core.ErrDeadline,
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			err := error(&core.Error{Kind: tc.kind, Entry: "a.txt", Trap: tc.cause})
			// Another layer of prose wrapping must not break matching.
			err = fmt.Errorf("handler: %w", err)

			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(err, %v sentinel) = false", tc.kind)
			}
			for _, other := range sentinels {
				if other.Kind != tc.kind && errors.Is(err, other) {
					t.Fatalf("kind %v also matches sentinel %v", tc.kind, other.Kind)
				}
			}
			var ve *core.Error
			if !errors.As(err, &ve) || ve.Kind != tc.kind || ve.Entry != "a.txt" {
				t.Fatalf("errors.As round trip lost the value: %+v", ve)
			}
			if got := StatusFor(err); got != tc.status {
				t.Fatalf("StatusFor(%v) = %d, want %d", tc.kind, got, tc.status)
			}
		})
	}

	// Cancellation must also unwrap to the context error itself.
	cerr := fmt.Errorf("x: %w", &core.Error{Kind: core.KindCanceled, Trap: context.Canceled})
	if !errors.Is(cerr, context.Canceled) {
		t.Fatal("KindCanceled does not unwrap to context.Canceled")
	}

	// Non-taxonomy errors fall through to 500.
	if got := StatusFor(errors.New("disk on fire")); got != http.StatusInternalServerError {
		t.Fatalf("unknown error mapped to %d, want 500", got)
	}

	// Every kind the taxonomy defines must have a status row — a new
	// kind that reaches HTTP without a mapping would silently 500.
	for _, k := range errorKinds {
		if _, ok := kindStatus[k]; !ok {
			t.Errorf("kind %v has no kindStatus row", k)
		}
	}

	// A raw quarantine error (before core classification) must still
	// map to the quarantine status.
	qerr := fmt.Errorf("get: %w", &vmpool.QuarantineError{RetryAfter: time.Second})
	if got := StatusFor(qerr); got != StatusDecoderQuarantined {
		t.Fatalf("raw quarantine error mapped to %d, want %d", got, StatusDecoderQuarantined)
	}
	// Bare context errors map to their nginx-convention codes.
	if got := StatusFor(fmt.Errorf("x: %w", context.Canceled)); got != StatusClientClosedRequest {
		t.Fatalf("bare context.Canceled mapped to %d, want 499", got)
	}
	if got := StatusFor(fmt.Errorf("x: %w", context.DeadlineExceeded)); got != http.StatusGatewayTimeout {
		t.Fatalf("bare DeadlineExceeded mapped to %d, want 504", got)
	}
}
