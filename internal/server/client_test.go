package server

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// A shed response must start a hold-down window: the client returns
// the 503 for classification, then refuses to touch the wire until the
// Retry-After elapses, then flows again.
func TestClientHoldDown(t *testing.T) {
	var hits atomic.Int64
	var shed atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if shed.Load() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	c := &Client{HTTP: ts.Client()}
	resp, err := c.Post(ts.URL, "application/octet-stream", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy post: %v / %v", err, resp)
	}
	resp.Body.Close()

	shed.Store(true)
	resp, err = c.Post(ts.URL, "application/octet-stream", nil)
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed post: %v / %v", err, resp)
	}
	resp.Body.Close()
	wireHits := hits.Load()

	// Inside the window: refused locally, nothing sent.
	for i := 0; i < 3; i++ {
		_, err = c.Post(ts.URL, "application/octet-stream", nil)
		if !errors.Is(err, ErrHeldDown) {
			t.Fatalf("post %d inside hold-down: err %v, want ErrHeldDown", i, err)
		}
		var he *HeldError
		if !errors.As(err, &he) || he.Remaining <= 0 {
			t.Fatalf("held error %v should carry remaining time", err)
		}
	}
	if hits.Load() != wireHits {
		t.Fatalf("held-down posts reached the wire (%d -> %d hits)", wireHits, hits.Load())
	}
	st := c.Stats()
	if st.Sheds != 1 || st.Held != 3 {
		t.Fatalf("stats %+v, want 1 shed / 3 held", st)
	}

	// Past the window: the client flows again.
	shed.Store(false)
	time.Sleep(1100 * time.Millisecond)
	resp, err = c.Post(ts.URL, "application/octet-stream", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post after hold-down: %v / %v", err, resp)
	}
	resp.Body.Close()
}

// 521 quarantine responses carry a decoder-scoped Retry-After; the
// client honors it the same way (its traffic is per-target anyway).
func TestClientQuarantineHoldDown(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(StatusDecoderQuarantined)
	}))
	defer ts.Close()
	c := &Client{HTTP: ts.Client()}
	resp, err := c.Post(ts.URL, "application/octet-stream", nil)
	if err != nil || resp.StatusCode != StatusDecoderQuarantined {
		t.Fatalf("quarantined post: %v / %v", err, resp)
	}
	resp.Body.Close()
	if _, err = c.Post(ts.URL, "application/octet-stream", nil); !errors.Is(err, ErrHeldDown) {
		t.Fatalf("want hold-down after 521, got %v", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		v    string
		want time.Duration
		ok   bool
	}{
		{"", 0, false}, {"3", 3 * time.Second, true}, {"0", 0, true},
		{"-1", 0, false}, {"soon", 0, false},
	} {
		h := http.Header{}
		if tc.v != "" {
			h.Set("Retry-After", tc.v)
		}
		d, ok := ParseRetryAfter(h)
		if d != tc.want || ok != tc.ok {
			t.Fatalf("ParseRetryAfter(%q) = %v,%v want %v,%v", tc.v, d, ok, tc.want, tc.ok)
		}
	}
}

// A shed without Retry-After still holds for the flat second — the
// convention every vxad shed response follows.
func TestClientDefaultHold(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGatewayTimeout)
	}))
	defer ts.Close()
	c := &Client{HTTP: ts.Client()}
	resp, err := c.Post(ts.URL, "application/octet-stream", nil)
	if err != nil || resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired post: %v / %v", err, resp)
	}
	resp.Body.Close()
	if _, err = c.Post(ts.URL, "application/octet-stream", nil); !errors.Is(err, ErrHeldDown) {
		t.Fatalf("want default 1s hold-down, got %v", err)
	}
}
