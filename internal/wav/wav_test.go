package wav

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		ch := 1 + r.Intn(4)
		frames := r.Intn(500)
		s := &Sound{Channels: ch, SampleRate: 8000 + r.Intn(40000),
			Samples: make([]int16, ch*frames)}
		for i := range s.Samples {
			s.Samples[i] = int16(r.Intn(65536) - 32768)
		}
		got, err := Decode(Encode(s))
		if err != nil || got.Channels != ch || got.SampleRate != s.SampleRate {
			return false
		}
		if len(got.Samples) != len(s.Samples) {
			return false
		}
		for i := range s.Samples {
			if got.Samples[i] != s.Samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestExtraChunks: real-world WAVs carry LIST/fact chunks before data.
func TestExtraChunks(t *testing.T) {
	s := &Sound{Channels: 1, SampleRate: 8000, Samples: []int16{1, -2, 3}}
	enc := Encode(s)
	// Splice a LIST chunk between fmt and data.
	list := make([]byte, 8+6)
	copy(list, "LIST")
	binary.LittleEndian.PutUint32(list[4:], 6)
	spliced := append([]byte{}, enc[:36]...)
	spliced = append(spliced, list...)
	spliced = append(spliced, enc[36:]...)
	binary.LittleEndian.PutUint32(spliced[4:], uint32(len(spliced)-8))
	got, err := Decode(spliced)
	if err != nil {
		t.Fatal(err)
	}
	if got.Frames() != 3 || got.Samples[1] != -2 {
		t.Fatalf("spliced decode: %+v", got)
	}
}

func TestRejects(t *testing.T) {
	for _, c := range [][]byte{
		nil,
		[]byte("RIFFxxxxWAVE"),
		[]byte("not a wav file at all, definitely not one of those things"),
	} {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%d bytes) succeeded", len(c))
		}
	}
	// 8-bit PCM rejected.
	s := &Sound{Channels: 1, SampleRate: 8000, Samples: []int16{0}}
	enc := Encode(s)
	enc[34] = 8
	if _, err := Decode(enc); err == nil {
		t.Error("8-bit WAV accepted")
	}
}
