// Package wav reads and writes canonical 16-bit PCM RIFF/WAVE files —
// the "ubiquitous" uncompressed audio format the paper's audio decoders
// emit (§5.1). VXA audio decoders decode compressed streams into WAV,
// and the audio codecs' encoders accept WAV as their raw input.
package wav

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrFormat reports data that is not 16-bit PCM WAV.
var ErrFormat = errors.New("wav: not a 16-bit PCM WAV file")

// Sound is decoded PCM audio: samples are interleaved by channel.
type Sound struct {
	Channels   int
	SampleRate int
	Samples    []int16 // frame-interleaved
}

// Frames returns the number of per-channel sample frames.
func (s *Sound) Frames() int {
	if s.Channels == 0 {
		return 0
	}
	return len(s.Samples) / s.Channels
}

// Encode serializes the sound as a canonical 44-byte-header WAV file.
func Encode(s *Sound) []byte {
	dataLen := len(s.Samples) * 2
	b := make([]byte, 44+dataLen)
	le := binary.LittleEndian

	copy(b[0:], "RIFF")
	le.PutUint32(b[4:], uint32(36+dataLen))
	copy(b[8:], "WAVE")
	copy(b[12:], "fmt ")
	le.PutUint32(b[16:], 16)
	le.PutUint16(b[20:], 1) // PCM
	le.PutUint16(b[22:], uint16(s.Channels))
	le.PutUint32(b[24:], uint32(s.SampleRate))
	le.PutUint32(b[28:], uint32(s.SampleRate*s.Channels*2)) // byte rate
	le.PutUint16(b[32:], uint16(s.Channels*2))              // block align
	le.PutUint16(b[34:], 16)                                // bits per sample
	copy(b[36:], "data")
	le.PutUint32(b[40:], uint32(dataLen))
	for i, v := range s.Samples {
		le.PutUint16(b[44+2*i:], uint16(v))
	}
	return b
}

// Decode parses a 16-bit PCM WAV file, tolerating extra chunks before
// the data chunk.
func Decode(data []byte) (*Sound, error) {
	if len(data) < 44 || string(data[0:4]) != "RIFF" || string(data[8:12]) != "WAVE" {
		return nil, ErrFormat
	}
	le := binary.LittleEndian
	s := &Sound{}
	pos := 12
	var haveFmt, haveData bool
	for pos+8 <= len(data) {
		id := string(data[pos : pos+4])
		size := int(le.Uint32(data[pos+4:]))
		body := pos + 8
		if size < 0 || body+size > len(data) {
			return nil, fmt.Errorf("%w: truncated %q chunk", ErrFormat, id)
		}
		switch id {
		case "fmt ":
			if size < 16 {
				return nil, fmt.Errorf("%w: short fmt chunk", ErrFormat)
			}
			format := le.Uint16(data[body:])
			s.Channels = int(le.Uint16(data[body+2:]))
			s.SampleRate = int(le.Uint32(data[body+4:]))
			bits := le.Uint16(data[body+14:])
			if format != 1 || bits != 16 || s.Channels < 1 || s.Channels > 8 {
				return nil, fmt.Errorf("%w: format=%d bits=%d channels=%d", ErrFormat, format, bits, s.Channels)
			}
			haveFmt = true
		case "data":
			if !haveFmt {
				return nil, fmt.Errorf("%w: data before fmt", ErrFormat)
			}
			n := size / 2
			s.Samples = make([]int16, n)
			for i := 0; i < n; i++ {
				s.Samples[i] = int16(le.Uint16(data[body+2*i:]))
			}
			haveData = true
		}
		pos = body + size
		if size%2 == 1 {
			pos++ // RIFF chunks are word-aligned
		}
		if haveData {
			break
		}
	}
	if !haveFmt || !haveData {
		return nil, fmt.Errorf("%w: missing fmt or data chunk", ErrFormat)
	}
	return s, nil
}

// Sniff reports whether data looks like a WAV file.
func Sniff(data []byte) bool {
	return len(data) >= 12 && string(data[0:4]) == "RIFF" && string(data[8:12]) == "WAVE"
}
