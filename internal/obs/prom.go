package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromWriter emits Prometheus text exposition format (version 0.0.4) —
// hand-rolled, no client library. It tracks which metrics have had
// their # TYPE header written so a metric family is declared exactly
// once however many labeled series it carries, which is what makes the
// output promtool-parseable.
//
// Latency histograms are exposed as summaries (precomputed quantiles +
// _sum/_count): the histogram's log-bucket geometry is an internal
// representation, and shipping ~1000 cumulative le-buckets per series
// would bloat every scrape for no monitoring value.
type PromWriter struct {
	w     io.Writer
	typed map[string]bool
	err   error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: make(map[string]bool)}
}

// Err returns the first underlying write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header writes the # HELP / # TYPE preamble once per metric family.
func (p *PromWriter) header(name, help, typ string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	if help != "" {
		p.printf("# HELP %s %s\n", name, help)
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatLabels renders a label set in sorted key order (deterministic
// output, and duplicate-series detection in tests stays trivial).
// Extra pairs are appended after the sorted base set.
func formatLabels(labels map[string]string, extra ...[2]string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(labels[k]))
	}
	for i, kv := range extra {
		if i > 0 || len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, kv[0], escapeLabel(kv[1]))
	}
	b.WriteByte('}')
	return b.String()
}

// Counter writes one counter series.
func (p *PromWriter) Counter(name, help string, labels map[string]string, value float64) {
	p.header(name, help, "counter")
	p.printf("%s%s %v\n", name, formatLabels(labels), value)
}

// Gauge writes one gauge series.
func (p *PromWriter) Gauge(name, help string, labels map[string]string, value float64) {
	p.header(name, help, "gauge")
	p.printf("%s%s %v\n", name, formatLabels(labels), value)
}

// promQuantiles is the summary quantile set exposed for every latency
// histogram (matches the JSON HistStats surface).
var promQuantiles = []struct {
	q string
	f float64
}{
	{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999}, {"1", 1},
}

// Summary writes a latency snapshot as a summary family: one series per
// quantile plus <name>_sum and <name>_count. Durations are exposed in
// seconds, per Prometheus convention.
func (p *PromWriter) Summary(name, help string, labels map[string]string, s HistSnapshot) {
	p.header(name, help, "summary")
	for _, q := range promQuantiles {
		p.printf("%s%s %v\n", name, formatLabels(labels, [2]string{"quantile", q.q}),
			s.Quantile(q.f).Seconds())
	}
	p.printf("%s_sum%s %v\n", name, formatLabels(labels), float64(s.Sum)/1e9)
	p.printf("%s_count%s %d\n", name, formatLabels(labels), s.Count)
}
