package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	var c CounterVec
	if c.Get("a") != 0 || c.Total() != 0 || c.Snapshot() != nil {
		t.Fatal("zero-value CounterVec should read as empty")
	}
	c.Inc("a")
	c.Add("b", 5)
	c.Inc("a")
	if c.Get("a") != 2 || c.Get("b") != 5 || c.Total() != 7 {
		t.Fatalf("counts a=%d b=%d total=%d", c.Get("a"), c.Get("b"), c.Total())
	}
	snap := c.Snapshot()
	if snap["a"] != 2 || snap["b"] != 5 || len(snap) != 2 {
		t.Fatalf("snapshot %v", snap)
	}
	if got := c.Labels(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("labels %v, want sorted [a b]", got)
	}
}

// Concurrent first-use creation and increments must not lose counts
// (run under -race in CI).
func TestCounterVecConcurrent(t *testing.T) {
	var c CounterVec
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%2))
			for i := 0; i < per; i++ {
				c.Inc(label)
			}
		}(w)
	}
	wg.Wait()
	if c.Total() != workers*per {
		t.Fatalf("total %d, want %d", c.Total(), workers*per)
	}
}

func TestPromCounterVec(t *testing.T) {
	var c CounterVec
	c.Add("s2", 3)
	c.Add("s1", 1)
	var b strings.Builder
	p := NewPromWriter(&b)
	p.CounterVec("vxr_routed_total", "Requests routed per backend.", "backend", &c)
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	out := b.String()
	want := []string{
		"# TYPE vxr_routed_total counter",
		`vxr_routed_total{backend="s1"} 1`,
		`vxr_routed_total{backend="s2"} 3`,
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
	}
	if strings.Count(out, "# TYPE") != 1 {
		t.Fatalf("TYPE header must appear once:\n%s", out)
	}
	if strings.Index(out, `backend="s1"`) > strings.Index(out, `backend="s2"`) {
		t.Fatalf("series must be in sorted label order:\n%s", out)
	}
}
