package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// CounterVec is a family of monotonic counters keyed by one label value
// (a backend id, an outcome class, ...). Series are created on first
// Add; increments on an existing series are a lock-free atomic add, so
// a CounterVec sits on request hot paths the way a bare atomic.Uint64
// does. The router uses these for its per-backend route/retry/hedge
// accounting.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*atomic.Uint64
}

// Add increments the label's series by n, creating it on first use.
func (c *CounterVec) Add(label string, n uint64) {
	c.mu.RLock()
	ctr := c.m[label]
	c.mu.RUnlock()
	if ctr == nil {
		c.mu.Lock()
		if c.m == nil {
			c.m = make(map[string]*atomic.Uint64)
		}
		if ctr = c.m[label]; ctr == nil {
			ctr = &atomic.Uint64{}
			c.m[label] = ctr
		}
		c.mu.Unlock()
	}
	ctr.Add(n)
}

// Inc increments the label's series by one.
func (c *CounterVec) Inc(label string) { c.Add(label, 1) }

// Get returns the label's current count (zero for an unknown label).
func (c *CounterVec) Get(label string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ctr := c.m[label]; ctr != nil {
		return ctr.Load()
	}
	return 0
}

// Total returns the sum across every series.
func (c *CounterVec) Total() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var t uint64
	for _, ctr := range c.m {
		t += ctr.Load()
	}
	return t
}

// Snapshot returns the current label -> count map (a copy). Labels that
// were never incremented past zero still appear: a zero-valued series
// was still explicitly created, and monitoring wants to see it.
func (c *CounterVec) Snapshot() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.m) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(c.m))
	for k, ctr := range c.m {
		out[k] = ctr.Load()
	}
	return out
}

// Labels returns the series labels in sorted order, for deterministic
// exposition.
func (c *CounterVec) Labels() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CounterVec writes the vector as one counter family with `label` as
// the label key, series in sorted label order.
func (p *PromWriter) CounterVec(name, help, label string, c *CounterVec) {
	for _, l := range c.Labels() {
		p.Counter(name, help, map[string]string{label: l}, float64(c.Get(l)))
	}
}
