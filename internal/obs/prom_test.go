package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestPromWriterBasic: one family gets exactly one TYPE header however
// many series it carries, and label values are escaped.
func TestPromWriterBasic(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("x_total", "help text", map[string]string{"a": "1"}, 3)
	p.Counter("x_total", "help text", map[string]string{"a": `q"u\ o` + "\n" + `te`}, 4)
	p.Gauge("g", "", nil, 1.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "# TYPE x_total counter"); n != 1 {
		t.Errorf("TYPE header count = %d, want 1\n%s", n, out)
	}
	if !strings.Contains(out, `a="q\"u\\ o\nte"`) {
		t.Errorf("label not escaped:\n%s", out)
	}
	if !strings.Contains(out, "g 1.5\n") {
		t.Errorf("bare gauge series missing:\n%s", out)
	}
}

// TestPromWriterSummary: the summary family carries the quantile
// series plus _sum/_count, in seconds.
func TestPromWriterSummary(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Second)
	}
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Summary("lat_seconds", "latency", map[string]string{"ep": "x"}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds summary",
		`lat_seconds{ep="x",quantile="0.5"} `,
		`lat_seconds{ep="x",quantile="0.99"} `,
		`lat_seconds_sum{ep="x"} 100`,
		`lat_seconds_count{ep="x"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Quantile values are bucket midpoints in seconds: within the
	// histogram's documented error of the true 1s sample.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `lat_seconds{`) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < 0.93 || v > 1.0 {
			t.Errorf("quantile value %v outside [0.93, 1.0]: %s", v, line)
		}
	}
}

// TestFormatLabelsSorted: label rendering is deterministic (sorted) so
// duplicate-series checks can compare strings.
func TestFormatLabelsSorted(t *testing.T) {
	got := formatLabels(map[string]string{"b": "2", "a": "1"})
	if got != `{a="1",b="2"}` {
		t.Errorf("formatLabels = %s", got)
	}
	if formatLabels(nil) != "" {
		t.Error("empty labels should render as empty string")
	}
	got = formatLabels(map[string]string{"a": "1"}, [2]string{"quantile", "0.5"})
	if got != `{a="1",quantile="0.5"}` {
		t.Errorf("formatLabels with extra = %s", got)
	}
}
