// Package obs is the cross-cutting observability layer: lock-free
// latency histograms, per-request spans carried via context.Context,
// and a hand-rolled Prometheus text-exposition writer. It sits below
// every serving layer (vm, vmpool, core, server) and imports nothing
// but the standard library, so any package can record into it without
// creating an import cycle.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: values (nanoseconds) are bucketed
// log-linearly, HDR-style — one octave per power of two, histSub
// linear sub-buckets per octave. With 16 sub-buckets the bucket width
// is value/16, so a reported quantile is within ~±3% of the true
// sample, which is far below run-to-run latency noise.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per octave
	// histBuckets covers [0, 2^63): histSub exact small-value buckets
	// plus (63-histSubBits) octaves of histSub sub-buckets each.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// Histogram is a lock-free log-bucketed latency histogram. Observe is
// wait-free (one atomic add per bucket counter plus a CAS loop for the
// max) and safe for any number of concurrent writers and readers; the
// zero value is ready to use. Snapshots are mergeable, so per-worker or
// per-shard histograms can be aggregated for exposition.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < histSub {
		return int(u) // exact buckets for tiny values
	}
	e := bits.Len64(u) - histSubBits - 1 // halvings until u fits a sub-bucket
	sub := u >> uint(e)                  // in [histSub, 2*histSub)
	return e*histSub + int(sub)
}

// bucketBounds returns the [lo, hi] value range of bucket idx.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histSub {
		return int64(idx), int64(idx)
	}
	e := idx/histSub - 1
	sub := uint64(idx - e*histSub)
	lo = int64(sub << uint(e))
	return lo, lo + (1 << uint(e)) - 1
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns how many observations the histogram holds.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a Histogram: mergeable,
// quantile-extractable, and cheap to take (one pass over the buckets
// with no locks — concurrent Observes may or may not be included,
// which is the usual monotonic-counter scrape contract).
type HistSnapshot struct {
	Count   uint64
	Sum     int64 // nanoseconds
	Max     int64 // nanoseconds, exact
	buckets [histBuckets]uint64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Merge folds other into s, so shard snapshots aggregate into one view.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	for i := range s.buckets {
		s.buckets[i] += other.buckets[i]
	}
}

// Quantile returns the value at quantile q in [0, 1] as a duration: the
// bucket midpoint of the sample at ceil(q*count) in rank order, clamped
// to the exact observed maximum. An empty snapshot returns 0.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	// Buckets can race against count in a live snapshot; trust the
	// bucket mass, which is what the walk below distributes.
	var total uint64
	for i := range s.buckets {
		total += s.buckets[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := range s.buckets {
		c := s.buckets[i]
		if c == 0 {
			continue
		}
		cum += c
		if cum > rank {
			lo, hi := bucketBounds(i)
			mid := lo + (hi-lo)/2
			if mid > s.Max {
				mid = s.Max
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(s.Max)
}

// Mean returns the average observed duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}

// HistStats is the JSON wire form of a snapshot: the standard quantile
// set every latency surface of this repo reports.
type HistStats struct {
	Count  uint64 `json:"count"`
	SumNS  int64  `json:"sum_ns"`
	MeanNS int64  `json:"mean_ns"`
	P50NS  int64  `json:"p50_ns"`
	P90NS  int64  `json:"p90_ns"`
	P99NS  int64  `json:"p99_ns"`
	P999NS int64  `json:"p999_ns"`
	MaxNS  int64  `json:"max_ns"`
}

// Stats extracts the standard quantile set.
func (s HistSnapshot) Stats() HistStats {
	return HistStats{
		Count:  s.Count,
		SumNS:  s.Sum,
		MeanNS: int64(s.Mean()),
		P50NS:  int64(s.Quantile(0.50)),
		P90NS:  int64(s.Quantile(0.90)),
		P99NS:  int64(s.Quantile(0.99)),
		P999NS: int64(s.Quantile(0.999)),
		MaxNS:  int64(s.Max),
	}
}
