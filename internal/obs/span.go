package obs

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Stage labels one segment of a request's end-to-end timeline. The
// stages partition where a decode request spends its life: waiting for
// admission, waiting for a decoder VM, building a pristine snapshot on
// the cold path, guest-side translation and execution, and host-side
// output writing (stream write + CRC). Stages a request never touches
// stay zero and are omitted from the rendered timeline.
type Stage int

// Span stages, in timeline order.
const (
	// StageQueue: backpressure wait — the admission queue's slot wait
	// plus any blocked wait for a MaxLive VM-pool slot.
	StageQueue Stage = iota
	// StageLease: VM-pool lease work — parked-VM pickup, pristine
	// reset, or fresh materialization from the snapshot.
	StageLease
	// StageSnapshot: pristine decoder snapshot build (ELF fetch + parse
	// + image capture) — the cold path a content-addressed cache hit
	// skips entirely.
	StageSnapshot
	// StageArtifact: persistent artifact-store probe on the cold path —
	// mmap, verification and snapshot reconstruction on a disk-warm hit,
	// or the (cheap) failed probe preceding an ELF build.
	StageArtifact
	// StageTranslate: guest fragment decode + lowering + optimization
	// (the translation half of vm.Stats' translate/execute split).
	StageTranslate
	// StageExecute: guest micro-op execution (the run minus its
	// translation time).
	StageExecute
	// StageWrite: host-side output delivery — stream writes to the
	// client or file plus incremental CRC summing.
	StageWrite
	numStages
)

// stageNames index by Stage; these are also the metric label values.
var stageNames = [numStages]string{
	"queue", "lease", "snapshot", "artifact", "translate", "execute", "write",
}

// String names the stage (also its metric label value).
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return fmt.Sprintf("stage%d", int(s))
	}
	return stageNames[s]
}

// Stages lists every stage in timeline order (for metric registration
// and exposition).
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Span accumulates one request's per-stage timings. Every layer a
// request passes through (server admission, vmpool lease, core decode,
// host write path) adds the time it spent into the stage it owns, so
// the finished span is a full attribution of the request's latency.
// Stage adds are atomic: a span may be written from the decode
// goroutine and read by the serving goroutine that logs it.
//
// The zero value is usable; a nil *Span is a no-op on every method, so
// instrumented code paths call obs.SpanFrom(ctx).Add(...) without
// checking whether the request is traced.
type Span struct {
	start time.Time
	ns    [numStages]atomic.Int64
}

// NewSpan starts a span at now.
func NewSpan() *Span { return &Span{start: time.Now()} }

// Add folds d into the stage's accumulated time. Nil-safe; negative
// durations are dropped.
func (sp *Span) Add(st Stage, d time.Duration) {
	if sp == nil || d <= 0 || st < 0 || st >= numStages {
		return
	}
	sp.ns[st].Add(int64(d))
}

// Get returns the stage's accumulated time (0 on a nil span).
func (sp *Span) Get(st Stage) time.Duration {
	if sp == nil || st < 0 || st >= numStages {
		return 0
	}
	return time.Duration(sp.ns[st].Load())
}

// Start returns when the span began (zero time on a nil span).
func (sp *Span) Start() time.Time {
	if sp == nil {
		return time.Time{}
	}
	return sp.start
}

// Elapsed returns the wall time since the span began.
func (sp *Span) Elapsed() time.Duration {
	if sp == nil {
		return 0
	}
	return time.Since(sp.start)
}

// Timeline renders the non-zero stages in order, e.g.
// "queue=1.2ms lease=310µs translate=80µs execute=4.1ms write=220µs".
// An untraced (nil) or empty span renders as "-".
func (sp *Span) Timeline() string {
	if sp == nil {
		return "-"
	}
	var b strings.Builder
	for st := Stage(0); st < numStages; st++ {
		d := sp.Get(st)
		if d == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", st, d.Round(time.Microsecond))
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// spanKey is the context key spans travel under.
type spanKey struct{}

// WithSpan returns a context carrying a fresh span, plus the span.
func WithSpan(ctx context.Context) (context.Context, *Span) {
	sp := NewSpan()
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFrom returns the context's span, or nil when the request is not
// traced. The nil return composes with Span's nil-safe methods: layers
// record unconditionally and untraced requests pay one context lookup.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
