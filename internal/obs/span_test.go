package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestSpanNilSafety: every method must be a no-op on a nil span — the
// untraced-request contract the instrumented layers rely on.
func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	sp.Add(StageQueue, time.Second) // must not panic
	if sp.Get(StageQueue) != 0 {
		t.Error("nil Get != 0")
	}
	if !sp.Start().IsZero() {
		t.Error("nil Start not zero")
	}
	if sp.Elapsed() != 0 {
		t.Error("nil Elapsed != 0")
	}
	if sp.Timeline() != "-" {
		t.Errorf("nil Timeline = %q, want -", sp.Timeline())
	}
}

// TestSpanAccumulation: adds accumulate per stage, negatives and
// out-of-range stages are dropped.
func TestSpanAccumulation(t *testing.T) {
	sp := NewSpan()
	sp.Add(StageTranslate, 10*time.Millisecond)
	sp.Add(StageTranslate, 5*time.Millisecond)
	sp.Add(StageExecute, -time.Second)
	sp.Add(Stage(99), time.Second)
	if got := sp.Get(StageTranslate); got != 15*time.Millisecond {
		t.Errorf("translate = %v, want 15ms", got)
	}
	if got := sp.Get(StageExecute); got != 0 {
		t.Errorf("negative add recorded: %v", got)
	}
	if got := sp.Get(Stage(99)); got != 0 {
		t.Errorf("out-of-range stage recorded: %v", got)
	}
}

// TestSpanTimeline: only non-zero stages render, in timeline order.
func TestSpanTimeline(t *testing.T) {
	sp := NewSpan()
	if sp.Timeline() != "-" {
		t.Errorf("empty timeline = %q, want -", sp.Timeline())
	}
	sp.Add(StageExecute, 4*time.Millisecond)
	sp.Add(StageQueue, 1*time.Millisecond)
	tl := sp.Timeline()
	qi, ei := strings.Index(tl, "queue="), strings.Index(tl, "execute=")
	if qi < 0 || ei < 0 || qi > ei {
		t.Errorf("timeline %q: want queue before execute", tl)
	}
	if strings.Contains(tl, "lease=") {
		t.Errorf("timeline %q renders a zero stage", tl)
	}
}

// TestSpanContextRoundTrip: WithSpan/SpanFrom carry the span; a bare
// context yields nil.
func TestSpanContextRoundTrip(t *testing.T) {
	if SpanFrom(context.Background()) != nil {
		t.Fatal("bare context returned a span")
	}
	ctx, sp := WithSpan(context.Background())
	if got := SpanFrom(ctx); got != sp {
		t.Fatalf("SpanFrom = %p, want %p", got, sp)
	}
	sp.Add(StageLease, time.Millisecond)
	if SpanFrom(ctx).Get(StageLease) != time.Millisecond {
		t.Fatal("stage write not visible through context")
	}
}

// TestStageNames: every stage has a distinct non-placeholder name.
func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range Stages() {
		name := st.String()
		if name == "" || strings.HasPrefix(name, "stage") || seen[name] {
			t.Errorf("stage %d has bad or duplicate name %q", int(st), name)
		}
		seen[name] = true
	}
}
