package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// refQuantile is the brute-force reference: quantile by rank over the
// sorted sample set, matching Quantile's rank = floor(q*n) (clamped)
// convention.
func refQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// distributions generates the sample sets the quantile accuracy test
// runs over: shapes chosen to stress different bucket regimes (tiny
// exact buckets, wide log buckets, heavy tails, all-equal).
func distributions(n int) map[string][]int64 {
	rng := rand.New(rand.NewSource(42))
	uniform := make([]int64, n)
	expo := make([]int64, n)
	lognorm := make([]int64, n)
	constant := make([]int64, n)
	small := make([]int64, n)
	for i := 0; i < n; i++ {
		uniform[i] = rng.Int63n(50_000_000) // 0..50ms
		expo[i] = int64(rng.ExpFloat64() * 5_000_000)
		lognorm[i] = int64(math.Exp(rng.NormFloat64()*1.5 + 13)) // ~µs..100ms tail
		constant[i] = 1_234_567
		small[i] = rng.Int63n(16) // the exact-bucket range
	}
	return map[string][]int64{
		"uniform": uniform, "exponential": expo,
		"lognormal": lognorm, "constant": constant, "small": small,
	}
}

// TestHistogramQuantileAccuracy pins the log-bucket quantile error
// bound: every reported quantile must be within one sub-bucket width
// (~value/16, i.e. ~6.25% relative) of the rank-order reference, and
// exact for values inside the small-value exact buckets.
func TestHistogramQuantileAccuracy(t *testing.T) {
	const n = 20_000
	quantiles := []float64{0, 0.25, 0.50, 0.90, 0.99, 0.999, 1}
	for name, samples := range distributions(n) {
		var h Histogram
		for _, v := range samples {
			h.Observe(time.Duration(v))
		}
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		snap := h.Snapshot()
		if snap.Count != n {
			t.Fatalf("%s: count = %d, want %d", name, snap.Count, n)
		}
		if snap.Max != sorted[n-1] {
			t.Errorf("%s: max = %d, want %d", name, snap.Max, sorted[n-1])
		}
		for _, q := range quantiles {
			got := int64(snap.Quantile(q))
			want := refQuantile(sorted, q)
			// One sub-bucket of slack either side: the reported value is a
			// bucket midpoint, and the reference sample may sit anywhere in
			// a neighboring bucket when counts straddle the rank boundary.
			tol := want/(histSub/2) + 1
			if got < want-tol || got > want+tol {
				t.Errorf("%s: q%.3f = %d, want %d ±%d", name, q, got, want, tol)
			}
		}
	}
}

// TestHistogramExactSmallValues: values below histSub land in exact
// buckets and quantiles return them exactly.
func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := int64(0); v < histSub; v++ {
		h.Observe(time.Duration(v))
	}
	snap := h.Snapshot()
	if got := int64(snap.Quantile(0)); got != 0 {
		t.Errorf("q0 = %d, want 0", got)
	}
	if got := int64(snap.Quantile(1)); got != histSub-1 {
		t.Errorf("q1 = %d, want %d", got, histSub-1)
	}
}

// TestHistogramNegativeClamp: negative durations count as zero rather
// than corrupting a bucket index.
func TestHistogramNegativeClamp(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Sum != 0 || int64(snap.Quantile(0.5)) != 0 {
		t.Fatalf("negative observe: count=%d sum=%d p50=%v", snap.Count, snap.Sum, snap.Quantile(0.5))
	}
}

// TestHistogramMerge: merging shard snapshots must equal observing the
// union into one histogram.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, whole Histogram
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(100_000_000))
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := whole.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum || merged.Max != want.Max {
		t.Fatalf("merged header = {%d %d %d}, want {%d %d %d}",
			merged.Count, merged.Sum, merged.Max, want.Count, want.Sum, want.Max)
	}
	if merged.buckets != want.buckets {
		t.Fatal("merged buckets differ from whole-set buckets")
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Errorf("q%.2f: merged %v, whole %v", q, merged.Quantile(q), want.Quantile(q))
		}
	}
}

// TestHistogramBucketBoundsRoundTrip: every bucket's bounds contain the
// values that map to it.
func TestHistogramBucketBoundsRoundTrip(t *testing.T) {
	probes := []int64{0, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, (1 << 40) + 12345, math.MaxInt64}
	for _, v := range probes {
		idx := bucketOf(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Errorf("value %d maps to bucket %d with bounds [%d, %d]", v, idx, lo, hi)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many writers with
// concurrent snapshot readers; run under -race this is the lock-freedom
// proof, and the final count must be exact.
func TestHistogramConcurrent(t *testing.T) {
	const writers = 8
	const perWriter = 10_000
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := h.Snapshot()
				_ = snap.Quantile(0.99)
				_ = snap.Stats()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(rng.Int63n(10_000_000)))
			}
		}(int64(w))
	}
	for h.Count() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
}
