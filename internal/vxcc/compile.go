// Package vxcc is the VXC compiler: it compiles a small C dialect to
// 32-bit x86 machine code and links the result (with crt0 and the libvx
// runtime) into the static ELF executables that VXA archives carry as
// decoders.
//
// The paper builds its decoders from C sources "using a basic GCC
// cross-compiler setup" (§5.1). This package is that toolchain for the
// reproduction: VXC is the C subset the decoder sources are written in —
// int/uint/byte scalars, pointers, one-dimensional arrays, enums, the
// full statement and operator repertoire of portable decoder code, and
// three intrinsics (__vxa_syscall, __builtin_memcpy, __builtin_memset)
// from which the runtime builds the five-call VXA system interface.
package vxcc

import (
	"fmt"
	"sort"
	"strings"

	"vxa/internal/elf32"
	"vxa/internal/vm"
	"vxa/internal/x86"
	"vxa/internal/x86/asm"
)

// Version identifies the compiler's code generation. It participates
// in persistent caches keyed by decoder source text — the artifact
// store's ELF-hash index, which lets a restarted daemon learn a
// decoder's content address without recompiling it. The contract
// mirrors vm.EngineVersion: compilation is deterministic for a given
// Version, and any codegen, runtime-library or linking change that can
// alter the emitted ELF for unchanged sources must bump it, so stale
// index entries miss instead of aliasing a different executable.
const Version = 1

// Source is one VXC compilation unit.
type Source struct {
	Name string
	Text string
}

// Options configures a build.
type Options struct {
	// Base is the load address of the image; defaults to vm.PageSize.
	Base uint32
	// OmitRuntime builds without libvx (used by compiler tests only).
	OmitRuntime bool
}

// FuncInfo describes one function in the linked image.
type FuncInfo struct {
	Name    string
	File    string // defining source file (RuntimeFile for libvx)
	Addr    uint32
	Size    uint32 // text bytes, including padding up to the next symbol
	Runtime bool
}

// Build is the result of a compilation.
type Build struct {
	Image *asm.Image
	ELF   []byte
	Funcs []FuncInfo

	// Table 2 accounting: text bytes attributable to the decoder proper
	// versus the statically linked runtime library.
	UserTextBytes    uint32
	RuntimeTextBytes uint32
}

// Compile compiles and links the given sources into a VXA decoder
// executable. The program must define "int main(void)"; crt0 calls it and
// exits with its return value.
func Compile(opts Options, sources ...Source) (*Build, error) {
	if opts.Base == 0 {
		opts.Base = vm.PageSize
	}
	g := newCodegen()

	var files []*File
	if !opts.OmitRuntime {
		rt, err := Parse(RuntimeFile, RuntimeSource)
		if err != nil {
			return nil, fmt.Errorf("vxcc: internal error in runtime: %w", err)
		}
		files = append(files, rt)
	}
	for _, s := range sources {
		f, err := Parse(s.Name, s.Text)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Pass 1: declare everything so order never matters.
	for _, f := range files {
		if err := g.declare(f); err != nil {
			return nil, err
		}
	}
	mainFn, ok := g.funcs["main"]
	if !ok {
		return nil, fmt.Errorf("vxcc: no main function defined")
	}
	if len(mainFn.params) != 0 || mainFn.ret.Kind != TInt {
		return nil, fmt.Errorf("vxcc: main must be declared as int main(void)")
	}

	// crt0: call main, then exit(main()).
	g.u.Label("_start")
	g.u.Call("main")
	g.u.Op2(x86.MOV, x86.R(x86.EBX), x86.R(x86.EAX))
	g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(vm.SysExit))
	g.u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})

	// Pass 2: globals, then function bodies.
	if err := g.emitGlobals(); err != nil {
		return nil, err
	}
	funcFile := make(map[string]string)
	for _, f := range files {
		for _, fn := range f.Funcs {
			if err := g.emitFunc(fn, f.Name); err != nil {
				return nil, err
			}
			funcFile[fn.Name] = f.Name
		}
	}

	im, err := g.u.Link(opts.Base)
	if err != nil {
		return nil, err
	}
	elfBytes, err := elf32.Write(im, "_start")
	if err != nil {
		return nil, err
	}

	b := &Build{Image: im, ELF: elfBytes}
	b.accountFunctions(funcFile)
	return b, nil
}

// accountFunctions computes per-function text sizes from symbol layout.
func (b *Build) accountFunctions(funcFile map[string]string) {
	textEnd := b.Image.Base + uint32(len(b.Image.Text))
	type sym struct {
		name string
		addr uint32
	}
	var fns []sym
	for name, addr := range b.Image.Symbols {
		if name == "_start" || funcFile[name] != "" {
			if !strings.HasPrefix(name, ".") && addr < textEnd {
				fns = append(fns, sym{name, addr})
			}
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].addr < fns[j].addr })
	for i, f := range fns {
		end := textEnd
		if i+1 < len(fns) {
			end = fns[i+1].addr
		}
		file := funcFile[f.name]
		if f.name == "_start" {
			file = RuntimeFile
		}
		info := FuncInfo{
			Name: f.name, File: file, Addr: f.addr, Size: end - f.addr,
			Runtime: file == RuntimeFile,
		}
		b.Funcs = append(b.Funcs, info)
		if info.Runtime {
			b.RuntimeTextBytes += info.Size
		} else {
			b.UserTextBytes += info.Size
		}
	}
}

// MustCompile is Compile for sources known to be valid (the embedded
// decoders); it panics on error.
func MustCompile(opts Options, sources ...Source) *Build {
	b, err := Compile(opts, sources...)
	if err != nil {
		panic(err)
	}
	return b
}
