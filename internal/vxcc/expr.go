package vxcc

import (
	"fmt"

	"vxa/internal/x86"
	"vxa/internal/x86/asm"
)

// genExpr generates code leaving the expression's value in EAX
// (zero-extended for byte) and returns its type.
func (g *codegen) genExpr(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *IntLit:
		g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(int32(uint32(x.Val))))
		if x.Unsigned {
			return typeUint, nil
		}
		return typeInt, nil

	case *StrLit:
		sym := g.internString(x.Val)
		g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.ISym(sym))
		return &Type{Kind: TPtr, Elem: typeByte}, nil

	case *SizeofType:
		g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(int32(x.Type.Size())))
		return typeInt, nil

	case *Ident:
		if v, ok := g.enums[x.Name]; ok {
			g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(int32(uint32(v))))
			return typeInt, nil
		}
		if l, ok := g.lookupLocal(x.Name); ok {
			if l.typ.Kind == TArray {
				g.u.Op2(x86.LEA, x86.R(x86.EAX), x86.M(x86.EBP, l.off))
				return &Type{Kind: TPtr, Elem: l.typ.Elem}, nil
			}
			if l.typ.Size() == 1 {
				g.u.Op2(x86.MOVZX, x86.R(x86.EAX), x86.M8(x86.EBP, l.off))
			} else {
				g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.M(x86.EBP, l.off))
			}
			return l.typ, nil
		}
		if gl, ok := g.globs[x.Name]; ok {
			if gl.typ.Kind == TArray {
				g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.ISym(gl.sym))
				return &Type{Kind: TPtr, Elem: gl.typ.Elem}, nil
			}
			if gl.typ.Size() == 1 {
				g.u.Op2(x86.MOVZX, x86.R(x86.EAX), x86.MAbs(gl.sym, 0, 1))
			} else {
				g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.MAbs(gl.sym, 0, 4))
			}
			return gl.typ, nil
		}
		return nil, cErrf(x.Pos, "undefined identifier %q", x.Name)

	case *Unary:
		return g.genUnary(x)

	case *Binary:
		return g.genBinary(x)

	case *Assign:
		return g.genAssign(x)

	case *IncDec:
		return g.genIncDec(x)

	case *Cond:
		elseL := g.newLabel("condf")
		endL := g.newLabel("condend")
		if err := g.genCondJump(x.C, elseL, false); err != nil {
			return nil, err
		}
		tt, err := g.genExpr(x.T)
		if err != nil {
			return nil, err
		}
		g.u.Jmp(endL)
		g.u.Label(elseL)
		tf, err := g.genExpr(x.F)
		if err != nil {
			return nil, err
		}
		g.u.Label(endL)
		if !tt.IsScalar() || !tf.IsScalar() {
			return nil, cErrf(x.Pos, "ternary arms must be scalar")
		}
		if tt.Kind == TPtr {
			return tt, nil
		}
		return arith2(tt, tf), nil

	case *Call:
		return g.genCall(x)

	case *Index:
		elem, err := g.genAddrIndex(x)
		if err != nil {
			return nil, err
		}
		return g.loadFromEAX(elem), nil

	case *Cast:
		t, err := g.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !t.IsScalar() || !(x.Type.IsScalar() || x.Type.Kind == TVoid) {
			return nil, cErrf(x.Pos, "invalid cast from %s to %s", t, x.Type)
		}
		if x.Type.Kind == TByte && t.Kind != TByte {
			g.u.Op2(x86.AND, x86.R(x86.EAX), x86.I(0xFF))
		}
		return x.Type, nil
	}
	return nil, cErrf(e.exprPos(), "unhandled expression")
}

// loadFromEAX dereferences the address in EAX with the given element type.
func (g *codegen) loadFromEAX(elem *Type) *Type {
	if elem.Size() == 1 {
		g.u.Op2(x86.MOVZX, x86.R(x86.EAX), x86.M8(x86.EAX, 0))
	} else {
		g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.M(x86.EAX, 0))
	}
	return elem
}

// internString places a string literal in rodata (NUL-terminated) and
// returns its symbol.
func (g *codegen) internString(b []byte) string {
	g.strSeq++
	sym := fmt.Sprintf(".str.%d", g.strSeq)
	g.u.DefData(sym, asm.ROData, append(append([]byte{}, b...), 0))
	return sym
}

// genAddr generates code leaving an lvalue's address in EAX and returns
// the type of the addressed object.
func (g *codegen) genAddr(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *Ident:
		if l, ok := g.lookupLocal(x.Name); ok {
			g.u.Op2(x86.LEA, x86.R(x86.EAX), x86.M(x86.EBP, l.off))
			return l.typ, nil
		}
		if gl, ok := g.globs[x.Name]; ok {
			if gl.decl.Const {
				return nil, cErrf(x.Pos, "cannot assign to const %q", x.Name)
			}
			g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.ISym(gl.sym))
			return gl.typ, nil
		}
		if _, ok := g.enums[x.Name]; ok {
			return nil, cErrf(x.Pos, "enum constant %q is not an lvalue", x.Name)
		}
		return nil, cErrf(x.Pos, "undefined identifier %q", x.Name)

	case *Unary:
		if x.Op != tStar {
			return nil, cErrf(x.Pos, "not an lvalue")
		}
		t, err := g.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if t.Kind != TPtr {
			return nil, cErrf(x.Pos, "dereference of non-pointer %s", t)
		}
		return t.Elem, nil

	case *Index:
		return g.genAddrIndex(x)
	}
	return nil, cErrf(e.exprPos(), "not an lvalue")
}

// genAddrIndex computes &x[i] into EAX and returns the element type.
func (g *codegen) genAddrIndex(x *Index) (*Type, error) {
	base, err := g.genExpr(x.X) // arrays decay to pointers in genExpr
	if err != nil {
		return nil, err
	}
	if base.Kind != TPtr {
		return nil, cErrf(x.Pos, "indexing non-pointer %s", base)
	}
	elem := base.Elem
	g.u.Op1(x86.PUSH, x86.R(x86.EAX))
	it, err := g.genExpr(x.I)
	if err != nil {
		return nil, err
	}
	if !it.IsInteger() {
		return nil, cErrf(x.Pos, "index is not an integer")
	}
	g.u.Op2(x86.MOV, x86.R(x86.ECX), x86.R(x86.EAX))
	g.u.Op1(x86.POP, x86.R(x86.EAX))
	g.scaleECX(elem)
	g.u.Op2(x86.ADD, x86.R(x86.EAX), x86.R(x86.ECX))
	return elem, nil
}

// scaleECX multiplies ECX by an element size.
func (g *codegen) scaleECX(elem *Type) {
	switch elem.Size() {
	case 1:
	case 4:
		g.u.Op2(x86.SHL, x86.R(x86.ECX), x86.Arg{Kind: x86.KindImm, Imm: 2, Size: 1})
	default:
		g.u.Emit(x86.Inst{Op: x86.IMUL, Dst: x86.R(x86.ECX), Src: x86.R(x86.ECX), Aux: x86.I(int32(elem.Size()))})
	}
}

func (g *codegen) genUnary(x *Unary) (*Type, error) {
	switch x.Op {
	case tMinus:
		t, err := g.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !t.IsInteger() {
			return nil, cErrf(x.Pos, "unary minus on %s", t)
		}
		g.u.Op1(x86.NEG, x86.R(x86.EAX))
		return promote(t), nil
	case tTilde:
		t, err := g.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !t.IsInteger() {
			return nil, cErrf(x.Pos, "bitwise not on %s", t)
		}
		g.u.Op1(x86.NOT, x86.R(x86.EAX))
		return promote(t), nil
	case tBang:
		t, err := g.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !t.IsScalar() {
			return nil, cErrf(x.Pos, "logical not on %s", t)
		}
		g.u.Op2(x86.TEST, x86.R(x86.EAX), x86.R(x86.EAX))
		g.u.Emit(x86.Inst{Op: x86.SETCC, CC: x86.CCE, Dst: x86.R8(x86.EAX)})
		g.u.Op2(x86.MOVZX, x86.R(x86.EAX), x86.R8(x86.EAX))
		return typeInt, nil
	case tStar:
		t, err := g.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if t.Kind != TPtr {
			return nil, cErrf(x.Pos, "dereference of non-pointer %s", t)
		}
		return g.loadFromEAX(t.Elem), nil
	case tAmp:
		t, err := g.genAddr(x.X)
		if err != nil {
			return nil, err
		}
		return &Type{Kind: TPtr, Elem: t}, nil
	}
	return nil, cErrf(x.Pos, "unhandled unary operator")
}

// promote applies the integer promotion: byte becomes int.
func promote(t *Type) *Type {
	if t.Kind == TByte {
		return typeInt
	}
	return t
}

// arith2 is the usual arithmetic conversion for two integer operands.
func arith2(a, b *Type) *Type {
	a, b = promote(a), promote(b)
	if a.Kind == TUint || b.Kind == TUint {
		return typeUint
	}
	return typeInt
}

func (g *codegen) genBinary(x *Binary) (*Type, error) {
	switch x.Op {
	case tAndAnd, tOrOr:
		return g.genLogical(x)
	}

	// Evaluate left, stash, evaluate right into ECX, recover left in EAX.
	lt, err := g.genExpr(x.X)
	if err != nil {
		return nil, err
	}
	g.u.Op1(x86.PUSH, x86.R(x86.EAX))
	rt, err := g.genExpr(x.Y)
	if err != nil {
		return nil, err
	}
	g.u.Op2(x86.MOV, x86.R(x86.ECX), x86.R(x86.EAX))
	g.u.Op1(x86.POP, x86.R(x86.EAX))
	return g.applyBinary(x.Pos, x.Op, lt, rt)
}

// applyBinary emits the operator with the left operand in EAX and the
// right in ECX, leaving the result in EAX.
func (g *codegen) applyBinary(pos Pos, op tokKind, lt, rt *Type) (*Type, error) {
	// Pointer arithmetic.
	if lt.Kind == TPtr || rt.Kind == TPtr {
		switch op {
		case tPlus:
			if lt.Kind == TPtr && rt.IsInteger() {
				g.scaleECX(lt.Elem)
				g.u.Op2(x86.ADD, x86.R(x86.EAX), x86.R(x86.ECX))
				return lt, nil
			}
			if rt.Kind == TPtr && lt.IsInteger() {
				// int + ptr: scale EAX instead.
				g.u.Op2(x86.XCHG, x86.R(x86.EAX), x86.R(x86.ECX))
				g.scaleECX(rt.Elem)
				g.u.Op2(x86.ADD, x86.R(x86.EAX), x86.R(x86.ECX))
				return rt, nil
			}
			return nil, cErrf(pos, "invalid pointer addition")
		case tMinus:
			if lt.Kind == TPtr && rt.IsInteger() {
				g.scaleECX(lt.Elem)
				g.u.Op2(x86.SUB, x86.R(x86.EAX), x86.R(x86.ECX))
				return lt, nil
			}
			if lt.Kind == TPtr && rt.Kind == TPtr {
				if !lt.Elem.Equal(rt.Elem) {
					return nil, cErrf(pos, "subtracting incompatible pointers")
				}
				g.u.Op2(x86.SUB, x86.R(x86.EAX), x86.R(x86.ECX))
				if lt.Elem.Size() == 4 {
					g.u.Op2(x86.SAR, x86.R(x86.EAX), x86.Arg{Kind: x86.KindImm, Imm: 2, Size: 1})
				} else if lt.Elem.Size() != 1 {
					g.u.Op2(x86.MOV, x86.R(x86.ECX), x86.I(int32(lt.Elem.Size())))
					g.u.Op0(x86.CDQ)
					g.u.Op1(x86.IDIV, x86.R(x86.ECX))
				}
				return typeInt, nil
			}
			return nil, cErrf(pos, "invalid pointer subtraction")
		case tEq, tNe, tLt, tLe, tGt, tGe:
			return g.emitCompare(op, typeUint)
		default:
			return nil, cErrf(pos, "invalid pointer operation")
		}
	}

	if !lt.IsInteger() || !rt.IsInteger() {
		return nil, cErrf(pos, "operator requires integer operands (%s, %s)", lt, rt)
	}
	res := arith2(lt, rt)

	switch op {
	case tPlus:
		g.u.Op2(x86.ADD, x86.R(x86.EAX), x86.R(x86.ECX))
	case tMinus:
		g.u.Op2(x86.SUB, x86.R(x86.EAX), x86.R(x86.ECX))
	case tStar:
		g.u.Op2(x86.IMUL, x86.R(x86.EAX), x86.R(x86.ECX))
	case tSlash, tPercent:
		if res.Kind == TUint {
			g.u.Op2(x86.XOR, x86.R(x86.EDX), x86.R(x86.EDX))
			g.u.Op1(x86.DIV, x86.R(x86.ECX))
		} else {
			g.u.Op0(x86.CDQ)
			g.u.Op1(x86.IDIV, x86.R(x86.ECX))
		}
		if op == tPercent {
			g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.R(x86.EDX))
		}
	case tAmp:
		g.u.Op2(x86.AND, x86.R(x86.EAX), x86.R(x86.ECX))
	case tPipe:
		g.u.Op2(x86.OR, x86.R(x86.EAX), x86.R(x86.ECX))
	case tCaret:
		g.u.Op2(x86.XOR, x86.R(x86.EAX), x86.R(x86.ECX))
	case tShl:
		g.u.Op2(x86.SHL, x86.R(x86.EAX), x86.R8(x86.ECX))
		return promote(lt), nil
	case tShr:
		if promote(lt).Kind == TUint {
			g.u.Op2(x86.SHR, x86.R(x86.EAX), x86.R8(x86.ECX))
		} else {
			g.u.Op2(x86.SAR, x86.R(x86.EAX), x86.R8(x86.ECX))
		}
		return promote(lt), nil
	case tEq, tNe, tLt, tLe, tGt, tGe:
		return g.emitCompare(op, res)
	default:
		return nil, cErrf(pos, "unhandled binary operator")
	}
	return res, nil
}

// emitCompare emits cmp eax, ecx; setcc with signedness chosen by opType.
func (g *codegen) emitCompare(op tokKind, opType *Type) (*Type, error) {
	g.u.Op2(x86.CMP, x86.R(x86.EAX), x86.R(x86.ECX))
	signed := opType.Kind == TInt
	var cc x86.CC
	switch op {
	case tEq:
		cc = x86.CCE
	case tNe:
		cc = x86.CCNE
	case tLt:
		cc = x86.CCL
		if !signed {
			cc = x86.CCB
		}
	case tLe:
		cc = x86.CCLE
		if !signed {
			cc = x86.CCBE
		}
	case tGt:
		cc = x86.CCG
		if !signed {
			cc = x86.CCA
		}
	case tGe:
		cc = x86.CCGE
		if !signed {
			cc = x86.CCAE
		}
	}
	g.u.Emit(x86.Inst{Op: x86.SETCC, CC: cc, Dst: x86.R8(x86.EAX)})
	g.u.Op2(x86.MOVZX, x86.R(x86.EAX), x86.R8(x86.EAX))
	return typeInt, nil
}

func (g *codegen) genLogical(x *Binary) (*Type, error) {
	falseL := g.newLabel("sfalse")
	trueL := g.newLabel("strue")
	endL := g.newLabel("send")
	if x.Op == tAndAnd {
		if err := g.genCondJump(x.X, falseL, false); err != nil {
			return nil, err
		}
		if err := g.genCondJump(x.Y, falseL, false); err != nil {
			return nil, err
		}
		g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(1))
		g.u.Jmp(endL)
		g.u.Label(falseL)
		g.u.Op2(x86.XOR, x86.R(x86.EAX), x86.R(x86.EAX))
		g.u.Label(endL)
	} else {
		if err := g.genCondJump(x.X, trueL, true); err != nil {
			return nil, err
		}
		if err := g.genCondJump(x.Y, trueL, true); err != nil {
			return nil, err
		}
		g.u.Op2(x86.XOR, x86.R(x86.EAX), x86.R(x86.EAX))
		g.u.Jmp(endL)
		g.u.Label(trueL)
		g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(1))
		g.u.Label(endL)
	}
	return typeInt, nil
}

func assignBaseOp(k tokKind) tokKind {
	switch k {
	case tPlusEq:
		return tPlus
	case tMinusEq:
		return tMinus
	case tStarEq:
		return tStar
	case tSlashEq:
		return tSlash
	case tPercentEq:
		return tPercent
	case tAmpEq:
		return tAmp
	case tPipeEq:
		return tPipe
	case tCaretEq:
		return tCaret
	case tShlEq:
		return tShl
	case tShrEq:
		return tShr
	}
	return tAssign
}

func (g *codegen) genAssign(x *Assign) (*Type, error) {
	// Fast path: plain assignment to a simple variable.
	lt, err := g.genAddr(x.LHS)
	if err != nil {
		return nil, err
	}
	if !lt.IsScalar() {
		return nil, cErrf(x.Pos, "cannot assign to %s", lt)
	}
	g.u.Op1(x86.PUSH, x86.R(x86.EAX)) // address

	rt, err := g.genExpr(x.RHS)
	if err != nil {
		return nil, err
	}

	if x.Op == tAssign {
		if err := g.checkAssignable(x.Pos, lt, rt); err != nil {
			return nil, err
		}
		g.u.Op1(x86.POP, x86.R(x86.ECX))
		g.storeEAXTo(lt)
		return lt, nil
	}

	// Compound assignment: old value in EAX, rhs in ECX.
	baseOp := assignBaseOp(x.Op)
	g.u.Op2(x86.MOV, x86.R(x86.ECX), x86.R(x86.EAX)) // rhs
	g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.M(x86.ESP, 0))
	if lt.Size() == 1 {
		g.u.Op2(x86.MOVZX, x86.R(x86.EAX), x86.M8(x86.EAX, 0))
	} else {
		g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.M(x86.EAX, 0))
	}
	resT, err := g.applyBinary(x.Pos, baseOp, lt, rt)
	if err != nil {
		return nil, err
	}
	_ = resT
	g.u.Op1(x86.POP, x86.R(x86.ECX))
	g.storeEAXTo(lt)
	return lt, nil
}

// storeEAXTo stores EAX through the address in ECX at lt's width.
func (g *codegen) storeEAXTo(lt *Type) {
	if lt.Size() == 1 {
		g.u.Op2(x86.MOV, x86.M8(x86.ECX, 0), x86.R8(x86.EAX))
	} else {
		g.u.Op2(x86.MOV, x86.M(x86.ECX, 0), x86.R(x86.EAX))
	}
}

func (g *codegen) genIncDec(x *IncDec) (*Type, error) {
	lt, err := g.genAddr(x.X)
	if err != nil {
		return nil, err
	}
	if !lt.IsScalar() {
		return nil, cErrf(x.Pos, "++/-- on %s", lt)
	}
	delta := int32(1)
	if lt.Kind == TPtr {
		delta = int32(lt.Elem.Size())
	}
	g.u.Op2(x86.MOV, x86.R(x86.ECX), x86.R(x86.EAX)) // address
	if lt.Size() == 1 {
		g.u.Op2(x86.MOVZX, x86.R(x86.EAX), x86.M8(x86.ECX, 0))
	} else {
		g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.M(x86.ECX, 0))
	}
	g.u.Op2(x86.MOV, x86.R(x86.EDX), x86.R(x86.EAX)) // old value
	if x.Op == tInc {
		g.u.Op2(x86.ADD, x86.R(x86.EAX), x86.I(delta))
	} else {
		g.u.Op2(x86.SUB, x86.R(x86.EAX), x86.I(delta))
	}
	g.storeEAXTo(lt)
	if x.Post {
		g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.R(x86.EDX))
		if lt.Size() == 1 {
			g.u.Op2(x86.AND, x86.R(x86.EAX), x86.I(0xFF))
		}
	}
	return lt, nil
}

func (g *codegen) genCall(x *Call) (*Type, error) {
	if t, handled, err := g.genBuiltin(x); handled {
		return t, err
	}
	fn, ok := g.funcs[x.Name]
	if !ok {
		return nil, cErrf(x.Pos, "undefined function %q", x.Name)
	}
	if len(x.Args) != len(fn.params) {
		return nil, cErrf(x.Pos, "%s takes %d arguments, got %d", x.Name, len(fn.params), len(x.Args))
	}
	// Push right to left.
	for i := len(x.Args) - 1; i >= 0; i-- {
		at, err := g.genExpr(x.Args[i])
		if err != nil {
			return nil, err
		}
		if err := g.checkAssignable(x.Args[i].exprPos(), fn.params[i].Type, at); err != nil {
			return nil, err
		}
		g.u.Op1(x86.PUSH, x86.R(x86.EAX))
	}
	g.u.Call(x.Name)
	if n := len(x.Args); n > 0 {
		g.u.Op2(x86.ADD, x86.R(x86.ESP), x86.I(int32(n*4)))
	}
	return fn.ret, nil
}

// genBuiltin handles the compiler intrinsics. It reports whether the call
// was a builtin.
func (g *codegen) genBuiltin(x *Call) (*Type, bool, error) {
	pushArgs := func(want int) error {
		if len(x.Args) != want {
			return cErrf(x.Pos, "%s takes %d arguments", x.Name, want)
		}
		for i := len(x.Args) - 1; i >= 0; i-- {
			t, err := g.genExpr(x.Args[i])
			if err != nil {
				return err
			}
			if !t.IsScalar() {
				return cErrf(x.Args[i].exprPos(), "argument %d is not scalar", i+1)
			}
			g.u.Op1(x86.PUSH, x86.R(x86.EAX))
		}
		return nil
	}
	switch x.Name {
	case "__vxa_syscall":
		if err := pushArgs(4); err != nil {
			return nil, true, err
		}
		g.u.Op1(x86.POP, x86.R(x86.EAX))
		g.u.Op1(x86.POP, x86.R(x86.EBX))
		g.u.Op1(x86.POP, x86.R(x86.ECX))
		g.u.Op1(x86.POP, x86.R(x86.EDX))
		g.u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		return typeInt, true, nil
	case "__builtin_memcpy":
		if err := pushArgs(3); err != nil {
			return nil, true, err
		}
		g.u.Op1(x86.POP, x86.R(x86.EDI))
		g.u.Op1(x86.POP, x86.R(x86.ESI))
		g.u.Op1(x86.POP, x86.R(x86.ECX))
		g.u.Emit(x86.Inst{Op: x86.MOVSB, Rep: true})
		return typeVoid, true, nil
	case "__builtin_memset":
		if err := pushArgs(3); err != nil {
			return nil, true, err
		}
		g.u.Op1(x86.POP, x86.R(x86.EDI))
		g.u.Op1(x86.POP, x86.R(x86.EAX))
		g.u.Op1(x86.POP, x86.R(x86.ECX))
		g.u.Emit(x86.Inst{Op: x86.STOSB, Rep: true})
		return typeVoid, true, nil
	case "__vxa_end":
		if len(x.Args) != 0 {
			return nil, true, cErrf(x.Pos, "__vxa_end takes no arguments")
		}
		g.u.Op2(x86.MOV, x86.R(x86.EAX), x86.ISym("__end"))
		return &Type{Kind: TPtr, Elem: typeByte}, true, nil
	}
	return nil, false, nil
}
