package vxcc

// RuntimeFile is the pseudo-filename of the built-in runtime library.
// Table 2 of the paper splits decoder code size into "decoder" versus
// "C library"; functions defined in this file are the library half.
const RuntimeFile = "<libvx>"

// RuntimeSource is libvx, the decoder runtime linked into every VXA
// decoder. It is written in VXC itself (plus three compiler intrinsics)
// and provides exactly what a decoder filter needs: the five virtual
// system calls, buffered stdin/stdout, block I/O, string and memory
// helpers, and a bump allocator over setperm.
//
// I/O discipline: a decoder must pick ONE input style (the buffered
// getb/... family or raw readn) and ONE output style (putb/... plus a
// final flushout, or raw writen); mixing the buffered and raw families
// on the same stream would reorder bytes.
const RuntimeSource = `
// libvx — the VXA decoder runtime.

enum {
	SYS_exit = 1,
	SYS_read = 3,
	SYS_write = 4,
	SYS_setperm = 5,
	SYS_done = 6
};

enum { IOBUF = 65536 };

int read(int fd, byte *buf, int n) {
	return __vxa_syscall(SYS_read, fd, (int)buf, n);
}

int write(int fd, byte *buf, int n) {
	return __vxa_syscall(SYS_write, fd, (int)buf, n);
}

void exit(int code) {
	__vxa_syscall(SYS_exit, code, 0, 0);
	while (1) { }  // unreachable
}

int setperm(byte *addr, int n) {
	return __vxa_syscall(SYS_setperm, (int)addr, n, 0);
}

// done signals that one stream is fully decoded and the decoder is ready
// for another (paper section 4.3). It also resets the stdio state so the
// next stream starts clean.
void flushout();
int vxa_done() {
	flushout();
	return __vxa_syscall(SYS_done, 0, 0, 0);
}

void memcpy(byte *dst, byte *src, int n) { __builtin_memcpy(dst, src, n); }
void memset(byte *p, int c, int n) { __builtin_memset(p, c, n); }

int strlen(byte *s) {
	int n = 0;
	while (s[n]) n++;
	return n;
}

// eputs writes a diagnostic to the stderr handle.
void eputs(byte *s) { write(2, s, strlen(s)); }

// die reports a fatal decoder error and exits nonzero. The archive
// reader treats any nonzero exit as "stream undecodable".
void die(byte *msg) {
	eputs(msg);
	eputs("\n");
	exit(101);
}

// ---- buffered input ----

byte __inbuf[IOBUF];
int __inpos;
int __inlen;
int __ineof;

// getb returns the next input byte, or -1 at end of stream.
int getb() {
	if (__inpos >= __inlen) {
		if (__ineof) return -1;
		__inlen = read(0, __inbuf, IOBUF);
		__inpos = 0;
		if (__inlen <= 0) { __ineof = 1; __inlen = 0; return -1; }
	}
	return __inbuf[__inpos++];
}

// mustgetb is getb that treats EOF as a fatal truncation error.
int mustgetb() {
	int c = getb();
	if (c < 0) die("unexpected end of input");
	return c;
}

// get2le/get4le read little-endian integers from the buffered input.
int get2le() {
	int a = mustgetb();
	return a | (mustgetb() << 8);
}

int get4le() {
	int a = get2le();
	return a | (get2le() << 16);
}

// getn copies n buffered input bytes to p; returns 0 on EOF short read.
int getn(byte *p, int n) {
	int i;
	for (i = 0; i < n; i++) {
		int c = getb();
		if (c < 0) return 0;
		p[i] = (byte)c;
	}
	return 1;
}

// ---- raw input (do not mix with getb on the same stream) ----

int readn(byte *p, int n) {
	int got = 0;
	while (got < n) {
		int r = read(0, p + got, n - got);
		if (r <= 0) break;
		got += r;
	}
	return got;
}

// ---- buffered output ----

byte __outbuf[IOBUF];
int __outpos;

void flushout() {
	int off = 0;
	while (off < __outpos) {
		int n = write(1, __outbuf + off, __outpos - off);
		if (n <= 0) exit(102);
		off += n;
	}
	__outpos = 0;
}

void putb(int c) {
	if (__outpos >= IOBUF) flushout();
	__outbuf[__outpos++] = (byte)c;
}

void put2le(int v) {
	putb(v);
	putb(v >> 8);
}

void put4le(int v) {
	put2le(v);
	put2le(v >> 16);
}

// putn writes n bytes through the buffered output.
void putn(byte *p, int n) {
	int i;
	for (i = 0; i < n; i++) putb(p[i]);
}

// ---- raw output ----

void writen(byte *p, int n) {
	int off = 0;
	while (off < n) {
		int w = write(1, p + off, n - off);
		if (w <= 0) exit(103);
		off += w;
	}
}

// ---- heap ----
// A bump allocator over the setperm system call. There is no free();
// decoders allocate fixed working storage up front, exactly like the
// paper's statically-linked C decoders.

byte *__heapbase;
int __heapused;
int __heapcap;

byte *vxalloc(int n) {
	if (!__heapbase) {
		__heapbase = __vxa_end();
		__heapused = 0;
		__heapcap = 0;
	}
	n = (n + 15) & ~15;
	while (__heapused + n > __heapcap) {
		int grow = 1048576;
		if (n > grow) grow = (n + 1048575) & ~1048575;
		if (setperm(__heapbase, __heapcap + grow) != 0) die("out of memory");
		__heapcap += grow;
	}
	byte *p = __heapbase + __heapused;
	__heapused += n;
	return p;
}

// __stdio_reset clears the buffered-I/O state between streams.
void __stdio_reset() {
	__inpos = 0;
	__inlen = 0;
	__ineof = 0;
	__outpos = 0;
}
`
