package vxcc

import "fmt"

// tokKind enumerates VXC token kinds.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt  // integer literal (value in tok.val)
	tStr  // string literal (bytes in tok.str)
	tChar // character literal (value in tok.val)

	// Punctuation and operators. Multi-character operators are distinct
	// kinds so the parser never needs lookahead beyond one token.
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tComma
	tSemi
	tColon
	tQuestion

	tAssign    // =
	tPlus      // +
	tMinus     // -
	tStar      // *
	tSlash     // /
	tPercent   // %
	tAmp       // &
	tPipe      // |
	tCaret     // ^
	tTilde     // ~
	tBang      // !
	tLt        // <
	tGt        // >
	tLe        // <=
	tGe        // >=
	tEq        // ==
	tNe        // !=
	tShl       // <<
	tShr       // >>
	tAndAnd    // &&
	tOrOr      // ||
	tPlusEq    // +=
	tMinusEq   // -=
	tStarEq    // *=
	tSlashEq   // /=
	tPercentEq // %=
	tAmpEq     // &=
	tPipeEq    // |=
	tCaretEq   // ^=
	tShlEq     // <<=
	tShrEq     // >>=
	tInc       // ++
	tDec       // --

	// Keywords.
	kwInt
	kwUint
	kwByte
	kwVoid
	kwIf
	kwElse
	kwWhile
	kwDo
	kwFor
	kwReturn
	kwBreak
	kwContinue
	kwEnum
	kwConst
	kwSizeof
)

var keywords = map[string]tokKind{
	"int": kwInt, "uint": kwUint, "byte": kwByte, "void": kwVoid,
	"if": kwIf, "else": kwElse, "while": kwWhile, "do": kwDo, "for": kwFor,
	"return": kwReturn, "break": kwBreak, "continue": kwContinue,
	"enum": kwEnum, "const": kwConst, "sizeof": kwSizeof,
}

var kindNames = map[tokKind]string{
	tEOF: "end of file", tIdent: "identifier", tInt: "integer literal",
	tStr: "string literal", tChar: "character literal",
	tLParen: "(", tRParen: ")", tLBrace: "{", tRBrace: "}",
	tLBracket: "[", tRBracket: "]", tComma: ",", tSemi: ";",
	tColon: ":", tQuestion: "?", tAssign: "=", tPlus: "+", tMinus: "-",
	tStar: "*", tSlash: "/", tPercent: "%", tAmp: "&", tPipe: "|",
	tCaret: "^", tTilde: "~", tBang: "!", tLt: "<", tGt: ">", tLe: "<=",
	tGe: ">=", tEq: "==", tNe: "!=", tShl: "<<", tShr: ">>",
	tAndAnd: "&&", tOrOr: "||", tPlusEq: "+=", tMinusEq: "-=",
	tStarEq: "*=", tSlashEq: "/=", tPercentEq: "%=", tAmpEq: "&=",
	tPipeEq: "|=", tCaretEq: "^=", tShlEq: "<<=", tShrEq: ">>=",
	tInc: "++", tDec: "--",
	kwInt: "int", kwUint: "uint", kwByte: "byte", kwVoid: "void",
	kwIf: "if", kwElse: "else", kwWhile: "while", kwDo: "do", kwFor: "for",
	kwReturn: "return", kwBreak: "break", kwContinue: "continue",
	kwEnum: "enum", kwConst: "const", kwSizeof: "sizeof",
}

func (k tokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d", p.File, p.Line) }

type token struct {
	kind tokKind
	pos  Pos
	text string // identifier text
	val  int64  // integer/char value
	str  []byte // string literal bytes (NUL-terminated at use sites)
}
