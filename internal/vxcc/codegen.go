package vxcc

import (
	"fmt"

	"vxa/internal/x86"
	"vxa/internal/x86/asm"
)

// The VXC calling convention ("vxcc ABI"):
//
//   - arguments are pushed right to left, 4 bytes each (byte arguments
//     are promoted), caller pops;
//   - the return value is in EAX;
//   - ALL registers are caller-clobbered. Generated code never keeps a
//     live value in a register across a call, so no callee-save traffic
//     is ever emitted. EBP is the frame pointer, ESP the stack pointer.
//
// Expression evaluation targets EAX, with ECX as the secondary operand
// register and EDX as transient scratch (CDQ/IDIV). Temporaries spill to
// the stack via PUSH/POP. EBX/ESI/EDI are used only by the builtin
// syscall/memcpy/memset sequences.

type global struct {
	sym  string
	typ  *Type
	decl *GlobalDecl
}

type function struct {
	name    string
	ret     *Type
	params  []Param
	file    string
	defined bool
}

type local struct {
	off int32 // ebp-relative
	typ *Type
}

type codegen struct {
	u     *asm.Unit
	funcs map[string]*function
	globs map[string]*global
	enums map[string]int64

	// Per-function state.
	fn         *function
	scopes     []map[string]local
	frameSize  int32
	labelSeq   int
	breakLbl   []string
	contLbl    []string
	curFile    string
	strSeq     int
	inlineHint bool
}

func newCodegen() *codegen {
	return &codegen{
		u:     asm.New(),
		funcs: make(map[string]*function),
		globs: make(map[string]*global),
		enums: make(map[string]int64),
	}
}

type compileError struct {
	pos Pos
	msg string
}

func (e *compileError) Error() string { return fmt.Sprintf("%s: %s", e.pos, e.msg) }

func cErrf(pos Pos, format string, args ...any) error {
	return &compileError{pos: pos, msg: fmt.Sprintf(format, args...)}
}

func (g *codegen) newLabel(hint string) string {
	g.labelSeq++
	return fmt.Sprintf(".L%s.%s.%d", g.fn.name, hint, g.labelSeq)
}

// declare registers all top-level symbols of a file (pass 1).
func (g *codegen) declare(f *File) error {
	for _, e := range f.Enums {
		for i, n := range e.Names {
			if _, dup := g.enums[n]; dup {
				return cErrf(e.Pos, "duplicate enum constant %q", n)
			}
			g.enums[n] = e.Vals[i]
		}
	}
	for _, gd := range f.Globals {
		if _, dup := g.globs[gd.Name]; dup {
			return cErrf(gd.Pos, "duplicate global %q", gd.Name)
		}
		if _, dup := g.enums[gd.Name]; dup {
			return cErrf(gd.Pos, "%q already an enum constant", gd.Name)
		}
		g.globs[gd.Name] = &global{sym: gd.Name, typ: gd.Type, decl: gd}
	}
	for _, fn := range f.Funcs {
		if prev, dup := g.funcs[fn.Name]; dup && prev.defined {
			return cErrf(fn.Pos, "duplicate function %q", fn.Name)
		}
		g.funcs[fn.Name] = &function{
			name: fn.Name, ret: fn.Ret, params: fn.Params,
			file: f.Name, defined: true,
		}
	}
	return nil
}

// emitGlobals lays out all global variables (pass 2a).
func (g *codegen) emitGlobals() error {
	for _, gl := range g.globs {
		gd := gl.decl
		t := gd.Type
		// Infer the length of byte name[] = "..." style declarations.
		if t.Kind == TArray && t.Len < 0 {
			switch {
			case gd.Str != nil:
				t.Len = len(gd.Str) + 1 // NUL-terminated
			case gd.Inits != nil:
				t.Len = len(gd.Inits)
			default:
				return cErrf(gd.Pos, "array %q needs a length or initializer", gd.Name)
			}
		}
		section := asm.Data
		if gd.Const {
			section = asm.ROData
		}
		switch {
		case gd.Str != nil:
			if t.Kind == TPtr {
				return cErrf(gd.Pos, "initialized pointer globals are not supported; use a byte array")
			}
			if t.Kind != TArray || t.Elem.Kind != TByte {
				return cErrf(gd.Pos, "string initializer requires a byte array")
			}
			if len(gd.Str)+1 > t.Size() {
				return cErrf(gd.Pos, "string longer than array %q", gd.Name)
			}
			buf := make([]byte, t.Size())
			copy(buf, gd.Str)
			g.u.DefData(gl.sym, section, buf)
		case gd.Inits != nil:
			if t.Kind != TArray {
				return cErrf(gd.Pos, "brace initializer requires an array")
			}
			if len(gd.Inits) > t.Len {
				return cErrf(gd.Pos, "too many initializers for %q", gd.Name)
			}
			esz := t.Elem.Size()
			buf := make([]byte, t.Size())
			for i, e := range gd.Inits {
				v, err := g.constVal(e)
				if err != nil {
					return err
				}
				switch esz {
				case 1:
					buf[i] = byte(v)
				case 4:
					off := i * 4
					buf[off] = byte(v)
					buf[off+1] = byte(v >> 8)
					buf[off+2] = byte(v >> 16)
					buf[off+3] = byte(v >> 24)
				}
			}
			g.u.DefData(gl.sym, section, buf)
		case gd.Init != nil:
			v, err := g.constVal(gd.Init)
			if err != nil {
				return err
			}
			if !t.IsScalar() {
				return cErrf(gd.Pos, "scalar initializer on non-scalar %q", gd.Name)
			}
			var buf []byte
			if t.Size() == 1 {
				buf = []byte{byte(v)}
			} else {
				buf = []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
			}
			g.u.DefData(gl.sym, section, buf)
		default:
			if gd.Const {
				return cErrf(gd.Pos, "const global %q needs an initializer", gd.Name)
			}
			g.u.DefBSS(gl.sym, uint32(t.Size()), 4)
		}
	}
	return nil
}

// constVal folds a constant initializer, with enum constants visible.
func (g *codegen) constVal(e Expr) (int64, error) {
	switch x := e.(type) {
	case *Ident:
		if v, ok := g.enums[x.Name]; ok {
			return v, nil
		}
		return 0, cErrf(x.Pos, "%q is not a constant", x.Name)
	case *Unary:
		v, err := g.constVal(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case tMinus:
			return int64(int32(-v)), nil
		case tTilde:
			return int64(^uint32(v)), nil
		case tBang:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *Binary:
		a, err := g.constVal(x.X)
		if err != nil {
			return 0, err
		}
		b, err := g.constVal(x.Y)
		if err != nil {
			return 0, err
		}
		return foldBinary(x, a, b)
	case *IntLit:
		return x.Val, nil
	case *SizeofType:
		return int64(x.Type.Size()), nil
	case *Cast:
		v, err := g.constVal(x.X)
		if err != nil {
			return 0, err
		}
		if x.Type.Kind == TByte {
			return v & 0xFF, nil
		}
		return v, nil
	}
	return 0, cErrf(e.exprPos(), "not a constant expression")
}

func foldBinary(x *Binary, a, b int64) (int64, error) {
	au, bu := uint32(a), uint32(b)
	switch x.Op {
	case tPlus:
		return int64(au + bu), nil
	case tMinus:
		return int64(int32(au - bu)), nil
	case tStar:
		return int64(int32(au * bu)), nil
	case tSlash:
		if bu == 0 {
			return 0, cErrf(x.Pos, "constant division by zero")
		}
		return int64(int32(a) / int32(b)), nil
	case tPercent:
		if bu == 0 {
			return 0, cErrf(x.Pos, "constant division by zero")
		}
		return int64(int32(a) % int32(b)), nil
	case tShl:
		return int64(au << (bu & 31)), nil
	case tShr:
		return int64(au >> (bu & 31)), nil
	case tAmp:
		return int64(au & bu), nil
	case tPipe:
		return int64(au | bu), nil
	case tCaret:
		return int64(au ^ bu), nil
	case tLt:
		return b2i(int32(a) < int32(b)), nil
	case tGt:
		return b2i(int32(a) > int32(b)), nil
	case tLe:
		return b2i(int32(a) <= int32(b)), nil
	case tGe:
		return b2i(int32(a) >= int32(b)), nil
	case tEq:
		return b2i(au == bu), nil
	case tNe:
		return b2i(au != bu), nil
	}
	return 0, cErrf(x.Pos, "not a constant operator")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// frameBytes pre-computes the stack frame a function body needs: every
// local declaration gets its own slot (no reuse across scopes; decoders
// are not frame-size critical).
func frameBytes(s Stmt) int32 {
	switch x := s.(type) {
	case *Block:
		var n int32
		for _, st := range x.Stmts {
			n += frameBytes(st)
		}
		return n
	case *DeclStmt:
		return int32((x.Type.Size() + 3) &^ 3)
	case *If:
		n := frameBytes(x.Then)
		if x.Else != nil {
			n += frameBytes(x.Else)
		}
		return n
	case *While:
		return frameBytes(x.Body)
	case *DoWhile:
		return frameBytes(x.Body)
	case *For:
		var n int32
		if x.Init != nil {
			n += frameBytes(x.Init)
		}
		return n + frameBytes(x.Body)
	}
	return 0
}

// emitFunc generates one function (pass 2b).
func (g *codegen) emitFunc(fd *FuncDecl, file string) error {
	g.fn = g.funcs[fd.Name]
	g.curFile = file
	g.scopes = []map[string]local{{}}
	g.frameSize = 0
	g.breakLbl, g.contLbl = nil, nil

	// Parameters live above the return address.
	off := int32(8)
	for _, p := range fd.Params {
		if _, dup := g.scopes[0][p.Name]; dup {
			return cErrf(fd.Pos, "duplicate parameter %q", p.Name)
		}
		g.scopes[0][p.Name] = local{off: off, typ: p.Type}
		off += 4
	}

	frame := frameBytes(fd.Body)
	g.u.Label(fd.Name)
	g.u.Op1(x86.PUSH, x86.R(x86.EBP))
	g.u.Op2(x86.MOV, x86.R(x86.EBP), x86.R(x86.ESP))
	if frame > 0 {
		g.u.Op2(x86.SUB, x86.R(x86.ESP), x86.I(frame))
	}

	if err := g.genBlock(fd.Body); err != nil {
		return err
	}

	// Implicit return (value undefined for non-void, as in old C).
	g.u.Label(".Lret." + fd.Name)
	g.u.Op2(x86.MOV, x86.R(x86.ESP), x86.R(x86.EBP))
	g.u.Op1(x86.POP, x86.R(x86.EBP))
	g.u.Op0(x86.RET)
	return nil
}

func (g *codegen) pushScope() { g.scopes = append(g.scopes, map[string]local{}) }
func (g *codegen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *codegen) lookupLocal(name string) (local, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if l, ok := g.scopes[i][name]; ok {
			return l, true
		}
	}
	return local{}, false
}

func (g *codegen) genBlock(b *Block) error {
	g.pushScope()
	defer g.popScope()
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s Stmt) error {
	switch x := s.(type) {
	case *Block:
		return g.genBlock(x)

	case *ExprStmt:
		_, err := g.genExpr(x.X)
		return err

	case *DeclStmt:
		sz := int32((x.Type.Size() + 3) &^ 3)
		g.frameSize += sz
		l := local{off: -g.frameSize, typ: x.Type}
		scope := g.scopes[len(g.scopes)-1]
		if _, dup := scope[x.Name]; dup {
			return cErrf(x.Pos, "duplicate local %q", x.Name)
		}
		scope[x.Name] = l
		if x.Init != nil {
			if !x.Type.IsScalar() {
				return cErrf(x.Pos, "array locals cannot be initialized")
			}
			t, err := g.genExpr(x.Init)
			if err != nil {
				return err
			}
			if err := g.checkAssignable(x.Pos, x.Type, t); err != nil {
				return err
			}
			g.storeToEBP(l.off, x.Type)
		}
		return nil

	case *If:
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		if err := g.genCondJump(x.C, elseL, false); err != nil {
			return err
		}
		if err := g.genStmt(x.Then); err != nil {
			return err
		}
		if x.Else != nil {
			g.u.Jmp(endL)
		}
		g.u.Label(elseL)
		if x.Else != nil {
			if err := g.genStmt(x.Else); err != nil {
				return err
			}
			g.u.Label(endL)
		}
		return nil

	case *While:
		top := g.newLabel("while")
		end := g.newLabel("endwhile")
		g.u.Label(top)
		if err := g.genCondJump(x.C, end, false); err != nil {
			return err
		}
		g.breakLbl = append(g.breakLbl, end)
		g.contLbl = append(g.contLbl, top)
		err := g.genStmt(x.Body)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		if err != nil {
			return err
		}
		g.u.Jmp(top)
		g.u.Label(end)
		return nil

	case *DoWhile:
		top := g.newLabel("do")
		cont := g.newLabel("docond")
		end := g.newLabel("enddo")
		g.u.Label(top)
		g.breakLbl = append(g.breakLbl, end)
		g.contLbl = append(g.contLbl, cont)
		err := g.genStmt(x.Body)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		if err != nil {
			return err
		}
		g.u.Label(cont)
		if err := g.genCondJump(x.C, top, true); err != nil {
			return err
		}
		g.u.Label(end)
		return nil

	case *For:
		g.pushScope() // the init declaration scopes to the loop
		defer g.popScope()
		if x.Init != nil {
			if err := g.genStmt(x.Init); err != nil {
				return err
			}
		}
		top := g.newLabel("for")
		cont := g.newLabel("forpost")
		end := g.newLabel("endfor")
		g.u.Label(top)
		if x.C != nil {
			if err := g.genCondJump(x.C, end, false); err != nil {
				return err
			}
		}
		g.breakLbl = append(g.breakLbl, end)
		g.contLbl = append(g.contLbl, cont)
		err := g.genStmt(x.Body)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		if err != nil {
			return err
		}
		g.u.Label(cont)
		if x.Post != nil {
			if _, err := g.genExpr(x.Post); err != nil {
				return err
			}
		}
		g.u.Jmp(top)
		g.u.Label(end)
		return nil

	case *Return:
		if x.X != nil {
			if g.fn.ret.Kind == TVoid {
				return cErrf(x.Pos, "void function returns a value")
			}
			t, err := g.genExpr(x.X)
			if err != nil {
				return err
			}
			if err := g.checkAssignable(x.Pos, g.fn.ret, t); err != nil {
				return err
			}
		} else if g.fn.ret.Kind != TVoid {
			return cErrf(x.Pos, "missing return value")
		}
		g.u.Jmp(".Lret." + g.fn.name)
		return nil

	case *Break:
		if len(g.breakLbl) == 0 {
			return cErrf(x.Pos, "break outside a loop")
		}
		g.u.Jmp(g.breakLbl[len(g.breakLbl)-1])
		return nil

	case *Continue:
		if len(g.contLbl) == 0 {
			return cErrf(x.Pos, "continue outside a loop")
		}
		g.u.Jmp(g.contLbl[len(g.contLbl)-1])
		return nil
	}
	return cErrf(s.stmtPos(), "unhandled statement")
}

// genCondJump evaluates a condition and jumps to target when the
// condition's truth equals jumpIfTrue.
func (g *codegen) genCondJump(c Expr, target string, jumpIfTrue bool) error {
	t, err := g.genExpr(c)
	if err != nil {
		return err
	}
	if !t.IsScalar() {
		return cErrf(c.exprPos(), "condition is not scalar")
	}
	g.u.Op2(x86.TEST, x86.R(x86.EAX), x86.R(x86.EAX))
	if jumpIfTrue {
		g.u.Jcc(x86.CCNE, target)
	} else {
		g.u.Jcc(x86.CCE, target)
	}
	return nil
}

// storeToEBP stores EAX into an EBP-relative slot with the type's width.
func (g *codegen) storeToEBP(off int32, t *Type) {
	if t.Size() == 1 {
		g.u.Op2(x86.MOV, x86.M8(x86.EBP, off), x86.R8(x86.EAX))
	} else {
		g.u.Op2(x86.MOV, x86.M(x86.EBP, off), x86.R(x86.EAX))
	}
}

// checkAssignable enforces VXC's (permissive, old-C flavored) assignment
// compatibility: scalars interconvert; pointers convert to/from any
// pointer and integer explicitly, but implicit cross-pointer assignment
// of unrelated element types is allowed only via void*-less casts —
// since VXC has no void*, we allow byte* <-> T* implicitly, matching how
// the decoder sources use byte buffers.
func (g *codegen) checkAssignable(pos Pos, dst, src *Type) error {
	if dst.IsScalar() && src.IsScalar() {
		if dst.Kind == TPtr && src.Kind == TPtr {
			if dst.Elem.Equal(src.Elem) || dst.Elem.Kind == TByte || src.Elem.Kind == TByte {
				return nil
			}
			return cErrf(pos, "incompatible pointer assignment (%s = %s); cast explicitly", dst, src)
		}
		return nil
	}
	return cErrf(pos, "cannot assign %s to %s", src, dst)
}
