package vxcc

import "fmt"

type parser struct {
	toks  []token
	i     int
	file  string
	enums map[string]int64 // constants seen so far, for array bounds etc.
}

// Parse parses one VXC source file.
func Parse(name, src string) (*File, error) {
	toks, err := lexAll(name, src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: name, enums: map[string]int64{}}
	return p.parseFile()
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek() token { // token after cur
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errf(t.pos, "expected %v, found %v", k, t.kind)
	}
	return p.advance(), nil
}

func (p *parser) accept(k tokKind) bool {
	if p.cur().kind == k {
		p.advance()
		return true
	}
	return false
}

func isTypeKeyword(k tokKind) bool {
	return k == kwInt || k == kwUint || k == kwByte || k == kwVoid
}

// parseType parses a base type plus pointer stars.
func (p *parser) parseType() (*Type, error) {
	var base *Type
	switch p.cur().kind {
	case kwInt:
		base = typeInt
	case kwUint:
		base = typeUint
	case kwByte:
		base = typeByte
	case kwVoid:
		base = typeVoid
	default:
		return nil, p.errf(p.cur().pos, "expected a type, found %v", p.cur().kind)
	}
	p.advance()
	for p.accept(tStar) {
		base = &Type{Kind: TPtr, Elem: base}
	}
	return base, nil
}

func (p *parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().kind != tEOF {
		switch {
		case p.cur().kind == kwEnum:
			e, err := p.parseEnum()
			if err != nil {
				return nil, err
			}
			f.Enums = append(f.Enums, e)
		default:
			isConst := p.accept(kwConst)
			if !isTypeKeyword(p.cur().kind) {
				return nil, p.errf(p.cur().pos, "expected a declaration, found %v", p.cur().kind)
			}
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			nameTok, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			if p.cur().kind == tLParen {
				if isConst {
					return nil, p.errf(nameTok.pos, "const functions are not a thing in VXC")
				}
				fn, err := p.parseFuncRest(typ, nameTok)
				if err != nil {
					return nil, err
				}
				if fn != nil { // nil for a forward declaration
					f.Funcs = append(f.Funcs, fn)
				}
			} else {
				g, err := p.parseGlobalRest(typ, nameTok, isConst)
				if err != nil {
					return nil, err
				}
				f.Globals = append(f.Globals, g)
			}
		}
	}
	return f, nil
}

func (p *parser) parseEnum() (*EnumDecl, error) {
	pos := p.advance().pos // enum
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	e := &EnumDecl{Pos: pos}
	next := int64(0)
	for {
		nameTok, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		val := next
		if p.accept(tAssign) {
			expr, err := p.parseTernary()
			if err != nil {
				return nil, err
			}
			v, err := p.evalConst(expr)
			if err != nil {
				return nil, err
			}
			val = v
		}
		e.Names = append(e.Names, nameTok.text)
		e.Vals = append(e.Vals, val)
		p.enums[nameTok.text] = val
		next = val + 1
		if !p.accept(tComma) {
			break
		}
		if p.cur().kind == tRBrace { // trailing comma
			break
		}
	}
	if _, err := p.expect(tRBrace); err != nil {
		return nil, err
	}
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	return e, nil
}

// evalConst folds constant expressions appearing in enum values and
// array bounds. Enum constants declared earlier in the file are visible.
func (p *parser) evalConst(e Expr) (int64, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *SizeofType:
		return int64(x.Type.Size()), nil
	case *Ident:
		if v, ok := p.enums[x.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("%s: %q is not a constant here", x.Pos, x.Name)
	case *Unary:
		v, err := p.evalConst(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case tMinus:
			return int64(int32(-v)), nil
		case tTilde:
			return int64(^uint32(v)), nil
		case tBang:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("%s: not a constant expression", x.Pos)
	case *Binary:
		a, err := p.evalConst(x.X)
		if err != nil {
			return 0, err
		}
		b, err := p.evalConst(x.Y)
		if err != nil {
			return 0, err
		}
		au, bu := uint32(a), uint32(b)
		switch x.Op {
		case tPlus:
			return int64(au + bu), nil
		case tMinus:
			return int64(int32(au - bu)), nil
		case tStar:
			return int64(int32(au * bu)), nil
		case tSlash:
			if b == 0 {
				return 0, fmt.Errorf("%s: constant division by zero", x.Pos)
			}
			return int64(int32(a) / int32(b)), nil
		case tPercent:
			if b == 0 {
				return 0, fmt.Errorf("%s: constant division by zero", x.Pos)
			}
			return int64(int32(a) % int32(b)), nil
		case tShl:
			return int64(au << (bu & 31)), nil
		case tShr:
			return int64(au >> (bu & 31)), nil
		case tAmp:
			return int64(au & bu), nil
		case tPipe:
			return int64(au | bu), nil
		case tCaret:
			return int64(au ^ bu), nil
		}
		return 0, fmt.Errorf("%s: not a constant expression", x.Pos)
	}
	return 0, fmt.Errorf("%s: not a constant expression", e.exprPos())
}

func (p *parser) parseFuncRest(ret *Type, nameTok token) (*FuncDecl, error) {
	p.advance() // (
	fn := &FuncDecl{Pos: nameTok.pos, Name: nameTok.text, Ret: ret}
	if p.cur().kind == kwVoid && p.peek().kind == tRParen {
		p.advance() // void parameter list
	}
	if p.cur().kind != tRParen {
		for {
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if typ.Kind == TVoid {
				return nil, p.errf(p.cur().pos, "void parameter")
			}
			pn, err := p.expect(tIdent)
			if err != nil {
				return nil, err
			}
			// Array parameters decay to pointers, as in C.
			if p.accept(tLBracket) {
				if _, err := p.expect(tRBracket); err != nil {
					return nil, err
				}
				typ = &Type{Kind: TPtr, Elem: typ}
			}
			fn.Params = append(fn.Params, Param{Name: pn.text, Type: typ})
			if !p.accept(tComma) {
				break
			}
		}
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	if p.accept(tSemi) {
		return nil, nil // forward declaration; definitions are two-pass anyway
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseGlobalRest(typ *Type, nameTok token, isConst bool) (*GlobalDecl, error) {
	g := &GlobalDecl{Pos: nameTok.pos, Name: nameTok.text, Type: typ, Const: isConst}
	if p.accept(tLBracket) {
		if p.accept(tRBracket) {
			// byte name[] = "..." / int name[] = {...}: the length is
			// inferred from the initializer during code generation.
			g.Type = &Type{Kind: TArray, Elem: typ, Len: -1}
		} else {
			lenExpr, err := p.parseTernary()
			if err != nil {
				return nil, err
			}
			n, err := p.evalConst(lenExpr)
			if err != nil {
				return nil, err
			}
			if n <= 0 || n > 64<<20 {
				return nil, p.errf(nameTok.pos, "bad array length %d", n)
			}
			if _, err := p.expect(tRBracket); err != nil {
				return nil, err
			}
			g.Type = &Type{Kind: TArray, Elem: typ, Len: int(n)}
		}
	}
	if p.accept(tAssign) {
		switch {
		case p.cur().kind == tStr && g.Type.Kind == TArray:
			g.Str = p.advance().str
		case p.cur().kind == tStr && g.Type.Kind == TPtr && g.Type.Elem.Kind == TByte:
			g.Str = p.advance().str
		case p.accept(tLBrace):
			for {
				e, err := p.parseTernary()
				if err != nil {
					return nil, err
				}
				g.Inits = append(g.Inits, e)
				if !p.accept(tComma) {
					break
				}
				if p.cur().kind == tRBrace {
					break
				}
			}
			if _, err := p.expect(tRBrace); err != nil {
				return nil, err
			}
		default:
			e, err := p.parseTernary()
			if err != nil {
				return nil, err
			}
			g.Init = e
		}
	}
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect(tLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.pos}
	for p.cur().kind != tRBrace {
		if p.cur().kind == tEOF {
			return nil, p.errf(lb.pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.kind {
	case tLBrace:
		return p.parseBlock()
	case tSemi:
		p.advance()
		return &Block{Pos: t.pos}, nil
	case kwInt, kwUint, kwByte:
		return p.parseLocalDecl()
	case kwIf:
		p.advance()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(kwElse) {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{Pos: t.pos, C: c, Then: then, Else: els}, nil
	case kwWhile:
		p.advance()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &While{Pos: t.pos, C: c, Body: body}, nil
	case kwDo:
		p.advance()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(kwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &DoWhile{Pos: t.pos, C: c, Body: body}, nil
	case kwFor:
		p.advance()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		var init Stmt
		if p.cur().kind != tSemi {
			if isTypeKeyword(p.cur().kind) {
				d, err := p.parseLocalDecl() // consumes the ';'
				if err != nil {
					return nil, err
				}
				init = d
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				init = &ExprStmt{Pos: e.exprPos(), X: e}
				if _, err := p.expect(tSemi); err != nil {
					return nil, err
				}
			}
		} else {
			p.advance()
		}
		var cond Expr
		if p.cur().kind != tSemi {
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cond = c
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		var post Expr
		if p.cur().kind != tRParen {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			post = e
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &For{Pos: t.pos, Init: init, C: cond, Post: post, Body: body}, nil
	case kwReturn:
		p.advance()
		if p.accept(tSemi) {
			return &Return{Pos: t.pos}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &Return{Pos: t.pos, X: x}, nil
	case kwBreak:
		p.advance()
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &Break{Pos: t.pos}, nil
	case kwContinue:
		p.advance()
		if _, err := p.expect(tSemi); err != nil {
			return nil, err
		}
		return &Continue{Pos: t.pos}, nil
	}
	// Expression statement.
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: t.pos, X: x}, nil
}

func (p *parser) parseLocalDecl() (Stmt, error) {
	pos := p.cur().pos
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if typ.Kind == TVoid {
		return nil, p.errf(pos, "void variable")
	}
	nameTok, err := p.expect(tIdent)
	if err != nil {
		return nil, err
	}
	if p.accept(tLBracket) {
		lenExpr, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		n, err := p.evalConst(lenExpr)
		if err != nil {
			return nil, err
		}
		if n <= 0 || n > 1<<20 {
			return nil, p.errf(pos, "bad local array length %d", n)
		}
		if _, err := p.expect(tRBracket); err != nil {
			return nil, err
		}
		typ = &Type{Kind: TArray, Elem: typ, Len: int(n)}
	}
	var init Expr
	if p.accept(tAssign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		init = e
	}
	if _, err := p.expect(tSemi); err != nil {
		return nil, err
	}
	return &DeclStmt{Pos: pos, Name: nameTok.text, Type: typ, Init: init}, nil
}

// Expression parsing. parseExpr handles assignment (right-associative,
// lowest precedence); parseTernary and below handle the rest.

func isAssignOp(k tokKind) bool {
	switch k {
	case tAssign, tPlusEq, tMinusEq, tStarEq, tSlashEq, tPercentEq,
		tAmpEq, tPipeEq, tCaretEq, tShlEq, tShrEq:
		return true
	}
	return false
}

func (p *parser) parseExpr() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if isAssignOp(p.cur().kind) {
		op := p.advance()
		rhs, err := p.parseExpr() // right associative
		if err != nil {
			return nil, err
		}
		return &Assign{Pos: op.pos, Op: op.kind, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseTernary() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(tQuestion) {
		return c, nil
	}
	t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tColon); err != nil {
		return nil, err
	}
	f, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Cond{Pos: c.exprPos(), C: c, T: t, F: f}, nil
}

// binPrec returns the precedence of a binary operator, or -1.
func binPrec(k tokKind) int {
	switch k {
	case tOrOr:
		return 1
	case tAndAnd:
		return 2
	case tPipe:
		return 3
	case tCaret:
		return 4
	case tAmp:
		return 5
	case tEq, tNe:
		return 6
	case tLt, tLe, tGt, tGe:
		return 7
	case tShl, tShr:
		return 8
	case tPlus, tMinus:
		return 9
	case tStar, tSlash, tPercent:
		return 10
	}
	return -1
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := binPrec(p.cur().kind)
		if prec < 0 || prec < minPrec {
			return lhs, nil
		}
		op := p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: op.pos, Op: op.kind, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tMinus, tBang, tTilde, tStar, tAmp:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.pos, Op: t.kind, X: x}, nil
	case tInc, tDec:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDec{Pos: t.pos, Op: t.kind, X: x}, nil
	case kwSizeof:
		p.advance()
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return &SizeofType{Pos: t.pos, Type: typ}, nil
	case tLParen:
		if isTypeKeyword(p.peek().kind) {
			p.advance() // (
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Cast{Pos: t.pos, Type: typ, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.kind {
		case tLBracket:
			p.advance()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBracket); err != nil {
				return nil, err
			}
			x = &Index{Pos: t.pos, X: x, I: i}
		case tLParen:
			id, ok := x.(*Ident)
			if !ok {
				return nil, p.errf(t.pos, "VXC calls must name a function directly")
			}
			p.advance()
			call := &Call{Pos: t.pos, Name: id.Name}
			if p.cur().kind != tRParen {
				for {
					a, err := p.parseTernary()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(tComma) {
						break
					}
				}
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			x = call
		case tInc, tDec:
			p.advance()
			x = &IncDec{Pos: t.pos, Op: t.kind, X: x, Post: true}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tInt:
		p.advance()
		return &IntLit{Pos: t.pos, Val: t.val, Unsigned: t.val > 0x7FFFFFFF}, nil
	case tChar:
		p.advance()
		return &IntLit{Pos: t.pos, Val: t.val}, nil
	case tStr:
		p.advance()
		return &StrLit{Pos: t.pos, Val: t.str}, nil
	case tIdent:
		p.advance()
		return &Ident{Pos: t.pos, Name: t.text}, nil
	case tLParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf(t.pos, "expected an expression, found %v", t.kind)
}
