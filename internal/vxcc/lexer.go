package vxcc

import (
	"fmt"
	"strconv"
)

type lexer struct {
	src  string
	file string
	pos  int
	line int
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, file: file, line: 1}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", l.file, l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdent(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// skipSpace consumes whitespace and comments.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.at(1) == '*':
			l.pos += 2
			for {
				if l.pos >= len(l.src) {
					return l.errf("unterminated block comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.at(1) == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

// escape decodes one escape sequence after a backslash.
func (l *lexer) escape() (byte, error) {
	c := l.peekByte()
	l.pos++
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	case 'x':
		hi, lo := l.peekByte(), l.at(1)
		v, err := strconv.ParseUint(string([]byte{hi, lo}), 16, 8)
		if err != nil {
			return 0, l.errf("bad hex escape")
		}
		l.pos += 2
		return byte(v), nil
	}
	return 0, l.errf("bad escape \\%c", c)
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	tok := token{pos: Pos{File: l.file, Line: l.line}}
	if l.pos >= len(l.src) {
		tok.kind = tEOF
		return tok, nil
	}
	c := l.src[l.pos]

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.pos++
		}
		tok.text = l.src[start:l.pos]
		if k, ok := keywords[tok.text]; ok {
			tok.kind = k
		} else {
			tok.kind = tIdent
		}
		return tok, nil

	case isDigit(c):
		start := l.pos
		base := 10
		if c == '0' && (l.at(1) == 'x' || l.at(1) == 'X') {
			base = 16
			l.pos += 2
			start = l.pos
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) ||
				l.src[l.pos] >= 'a' && l.src[l.pos] <= 'f' ||
				l.src[l.pos] >= 'A' && l.src[l.pos] <= 'F') {
				l.pos++
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		if l.pos < len(l.src) && isIdentStart(l.src[l.pos]) {
			// Reject suffixes like 5u or 0xFFz; VXC literals are bare.
			if l.src[l.pos] == 'u' || l.src[l.pos] == 'U' {
				l.pos++ // tolerate a lone unsigned suffix for C compatibility
			} else {
				return tok, l.errf("bad numeric literal")
			}
		}
		digits := l.src[start:l.pos]
		if base == 16 && len(digits) > 0 && (digits[len(digits)-1] == 'u' || digits[len(digits)-1] == 'U') {
			digits = digits[:len(digits)-1]
		}
		if base == 10 && len(digits) > 0 && (digits[len(digits)-1] == 'u' || digits[len(digits)-1] == 'U') {
			digits = digits[:len(digits)-1]
		}
		v, err := strconv.ParseUint(digits, base, 64)
		if err != nil || v > 0xFFFFFFFF {
			return tok, l.errf("integer literal out of 32-bit range")
		}
		tok.kind = tInt
		tok.val = int64(v)
		return tok, nil

	case c == '\'':
		l.pos++
		var v byte
		if l.peekByte() == '\\' {
			l.pos++
			b, err := l.escape()
			if err != nil {
				return tok, err
			}
			v = b
		} else {
			v = l.peekByte()
			l.pos++
		}
		if l.peekByte() != '\'' {
			return tok, l.errf("unterminated character literal")
		}
		l.pos++
		tok.kind = tChar
		tok.val = int64(v)
		return tok, nil

	case c == '"':
		l.pos++
		var buf []byte
		for {
			if l.pos >= len(l.src) {
				return tok, l.errf("unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '"' {
				l.pos++
				break
			}
			if ch == '\n' {
				return tok, l.errf("newline in string literal")
			}
			if ch == '\\' {
				l.pos++
				b, err := l.escape()
				if err != nil {
					return tok, err
				}
				buf = append(buf, b)
				continue
			}
			buf = append(buf, ch)
			l.pos++
		}
		tok.kind = tStr
		tok.str = buf
		return tok, nil
	}

	// Operators, longest match first.
	three := ""
	if l.pos+3 <= len(l.src) {
		three = l.src[l.pos : l.pos+3]
	}
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch three {
	case "<<=":
		tok.kind = tShlEq
		l.pos += 3
		return tok, nil
	case ">>=":
		tok.kind = tShrEq
		l.pos += 3
		return tok, nil
	}
	twoMap := map[string]tokKind{
		"<=": tLe, ">=": tGe, "==": tEq, "!=": tNe, "<<": tShl, ">>": tShr,
		"&&": tAndAnd, "||": tOrOr, "+=": tPlusEq, "-=": tMinusEq,
		"*=": tStarEq, "/=": tSlashEq, "%=": tPercentEq, "&=": tAmpEq,
		"|=": tPipeEq, "^=": tCaretEq, "++": tInc, "--": tDec,
	}
	if k, ok := twoMap[two]; ok {
		tok.kind = k
		l.pos += 2
		return tok, nil
	}
	oneMap := map[byte]tokKind{
		'(': tLParen, ')': tRParen, '{': tLBrace, '}': tRBrace,
		'[': tLBracket, ']': tRBracket, ',': tComma, ';': tSemi,
		':': tColon, '?': tQuestion, '=': tAssign, '+': tPlus, '-': tMinus,
		'*': tStar, '/': tSlash, '%': tPercent, '&': tAmp, '|': tPipe,
		'^': tCaret, '~': tTilde, '!': tBang, '<': tLt, '>': tGt,
	}
	if k, ok := oneMap[c]; ok {
		tok.kind = k
		l.pos++
		return tok, nil
	}
	return tok, l.errf("unexpected character %q", c)
}

// lexAll tokenizes the whole source.
func lexAll(file, src string) ([]token, error) {
	l := newLexer(file, src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			return toks, nil
		}
	}
}
