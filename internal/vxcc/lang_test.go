package vxcc

import (
	"bytes"
	"testing"

	"vxa/internal/elf32"
	"vxa/internal/vm"
)

func newTestVM(elf []byte) (*vm.VM, error) {
	return elf32.NewVM(elf, vm.Config{})
}

// Additional language-level tests: edge cases of scoping, operators,
// and the compiler/VM contract that the decoder sources depend on.

func TestShadowing(t *testing.T) {
	expectExit(t, `
int x = 1;
int main(void) {
	int x = 2;
	{
		int x = 3;
		if (x != 3) return 10;
	}
	return x * 10;  // inner scope ended; local x == 2
}`, 20)
	// A local shadows a global of the same name; the global is intact
	// after the function returns.
	expectExit(t, `
int g = 7;
int stomp() { int g = 100; return g; }
int main(void) { return stomp() + g; }`, 107)
}

func TestDeepRecursion(t *testing.T) {
	// ~20k frames of 3 words each easily fit the 1 MiB guest stack.
	expectExit(t, `
int depth(int n) {
	if (n == 0) return 0;
	return 1 + depth(n - 1);
}
int main(void) { return depth(20000) == 20000 ? 0 : 1; }`, 0)
}

func TestCharLiteralsAndEscapes(t *testing.T) {
	expectExit(t, `int main(void) { return 'A' + '\n' + '\t' + '\0' + '\\' + '\x10'; }`,
		65+10+9+0+92+16)
	code, out := runVXC(t, `
byte msg[] = "a\tb\nc\x21\\";
int main(void) {
	putn(msg, strlen(msg));
	flushout();
	return 0;
}`, nil)
	if code != 0 || string(out) != "a\tb\nc!\\" {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestComments(t *testing.T) {
	expectExit(t, `
// line comment with code: return 99;
/* block comment
   spanning lines */
int main(void) { return /* inline */ 5; }`, 5)
}

func TestOperatorPrecedence(t *testing.T) {
	// Mirror C precedence exactly; each case computed by Go for reference.
	cases := []struct {
		expr string
		want int32
	}{
		{"1 + 2 * 3", 1 + 2*3},
		{"10 - 4 - 3", 10 - 4 - 3}, // left assoc
		{"100 / 10 / 5", 100 / 10 / 5},
		{"1 << 2 + 1", 1 << 3}, // shift binds looser than +
		{"7 & 3 == 3", b2iHost(7&int32(b2iHost(3 == 3)) != 0)},
		{"1 | 2 ^ 3 & 2", 1 | (2 ^ (3 & 2))},
		{"2 < 3 == 1", b2iHost((2 < 3) == (1 == 1))},
		{"-3 * -4", 12},
		{"~5 & 0xFF", ^int32(5) & 0xFF},
	}
	for _, c := range cases {
		expectExit(t, "int main(void) { return "+c.expr+"; }", c.want)
	}
}

func b2iHost(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func TestNestedLoopsBreakContinue(t *testing.T) {
	expectExit(t, `
int main(void) {
	int total = 0;
	int i;
	int j;
	for (i = 0; i < 10; i++) {
		for (j = 0; j < 10; j++) {
			if (j == 3) continue;  // affects inner loop only
			if (j == 7) break;
			total++;
		}
		if (i == 5) break;
	}
	// inner contributes 6 per outer pass (j=0,1,2,4,5,6), outer runs 6x
	return total;
}`, 36)
}

func TestWhileWithSideEffectCondition(t *testing.T) {
	code, out := runVXC(t, `
int main(void) {
	int c;
	int n = 0;
	while ((c = getb()) >= 0 && n < 5) {
		putb(c + 1);
		n++;
	}
	flushout();
	return n;
}`, []byte("abcdefgh"))
	if code != 5 || string(out) != "bcdef" {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestGlobalByteScalar(t *testing.T) {
	expectExit(t, `
byte state = 200;
int main(void) {
	state += 100;  // wraps at 8 bits
	return state;
}`, 44)
}

func TestPointerCompare(t *testing.T) {
	expectExit(t, `
byte buf[16];
int main(void) {
	byte *a = buf;
	byte *b = buf + 8;
	int n = 0;
	if (a < b) n |= 1;
	if (b >= a) n |= 2;
	if (a != b) n |= 4;
	a += 8;
	if (a == b) n |= 8;
	return n;
}`, 15)
}

func TestTernaryNested(t *testing.T) {
	expectExit(t, `
int classify(int v) {
	return v < 0 ? -1 : v == 0 ? 0 : 1;
}
int main(void) {
	return classify(-5) * 100 + classify(0) * 10 + classify(9);
}`, -100+0+1)
}

func TestArrayOfIntsAsBytesView(t *testing.T) {
	// The decoders routinely view int buffers as byte memory via casts.
	expectExit(t, `
int words[2];
int main(void) {
	words[0] = 0x04030201;
	byte *p = (byte*)words;
	return p[0] + p[1] * 10 + p[2] * 100 + p[3] * 1000;
}`, 1+20+300+4000)
}

func TestUnsignedWrapArithmetic(t *testing.T) {
	expectExit(t, `
int main(void) {
	uint a = 0xFFFFFFFFu;
	a += 2u;          // wraps to 1
	uint b = 3u - 5u; // wraps to 0xFFFFFFFE
	return (int)(a + (b == 0xFFFFFFFEu ? 1u : 0u));
}`, 2)
}

// TestMultiFileProgram: declarations resolve across compilation units in
// any order, as the codec sources (bitio/huff/main) require.
func TestMultiFileProgram(t *testing.T) {
	b, err := Compile(Options{},
		Source{Name: "a.vxc", Text: `
int helper(int x); // forward use across files is fine even without this
int main(void) { return helper(6) + TWENTY; }`},
		Source{Name: "b.vxc", Text: `
enum { TWENTY = 20 };
int helper(int x) { return x * 7; }`},
	)
	if err != nil {
		t.Fatal(err)
	}
	v, err := newTestVM(b.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode() != 62 {
		t.Fatalf("exit = %d, want 62", v.ExitCode())
	}
}

// TestStderrOrderIndependence: writes to stderr do not disturb stdout.
func TestStderrOrderIndependence(t *testing.T) {
	b, err := Compile(Options{}, Source{Name: "t.vxc", Text: `
int main(void) {
	putb('o');
	eputs("E1");
	putb('k');
	flushout();
	eputs("E2");
	return 0;
}`})
	if err != nil {
		t.Fatal(err)
	}
	v, err := newTestVM(b.ELF)
	if err != nil {
		t.Fatal(err)
	}
	var out, diag bytes.Buffer
	v.Stdout = &out
	v.Stderr = &diag
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "ok" || diag.String() != "E1E2" {
		t.Fatalf("out=%q diag=%q", out.String(), diag.String())
	}
}
