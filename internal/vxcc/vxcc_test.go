package vxcc

import (
	"bytes"
	"hash/crc32"
	"strings"
	"testing"

	"vxa/internal/elf32"
	"vxa/internal/vm"
)

// runVXC compiles one source file (plus runtime), runs it in the VM, and
// returns the exit code and stdout.
func runVXC(t *testing.T, src string, stdin []byte) (int32, []byte) {
	t.Helper()
	b, err := Compile(Options{}, Source{Name: "test.vxc", Text: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	v, err := elf32.NewVM(b.ELF, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	var diag bytes.Buffer
	v.Stdin = bytes.NewReader(stdin)
	v.Stdout = &out
	v.Stderr = &diag
	st, err := v.Run()
	if err != nil {
		t.Fatalf("vm: %v (stderr: %q)", err, diag.String())
	}
	if st != vm.StatusExit {
		t.Fatalf("status = %v, want exit", st)
	}
	return v.ExitCode(), out.Bytes()
}

// expectExit asserts the program exits with the given code.
func expectExit(t *testing.T, src string, want int32) {
	t.Helper()
	code, _ := runVXC(t, src, nil)
	if code != want {
		t.Fatalf("exit = %d, want %d", code, want)
	}
}

func TestArithmetic(t *testing.T) {
	expectExit(t, `int main(void) { return 2 + 3 * 4 - 6 / 2; }`, 11)
	expectExit(t, `int main(void) { return (2 + 3) * 4; }`, 20)
	expectExit(t, `int main(void) { return 17 % 5; }`, 2)
	expectExit(t, `int main(void) { return -7 / 2; }`, -3) // C truncation
	expectExit(t, `int main(void) { return -7 % 2; }`, -1)
	expectExit(t, `int main(void) { uint a = 0x80000000u; return (int)(a / 2); }`, 0x40000000)
	expectExit(t, `int main(void) { uint a = 0xFFFFFFFEu; return (int)(a % 7); }`, int32(0xFFFFFFFE%7))
	expectExit(t, `int main(void) { return 1 << 10; }`, 1024)
	expectExit(t, `int main(void) { return -16 >> 2; }`, -4) // arithmetic shift for int
	expectExit(t, `int main(void) { uint v = 0x80000000u; return (int)(v >> 31); }`, 1)
	expectExit(t, `int main(void) { return (5 & 3) | (8 ^ 12); }`, 1|4)
	expectExit(t, `int main(void) { return ~0 + 2; }`, 1)
	expectExit(t, `int main(void) { return -(-42); }`, 42)
}

func TestComparisons(t *testing.T) {
	expectExit(t, `int main(void) { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }`, 4)
	// Signed vs unsigned comparison semantics.
	expectExit(t, `int main(void) { int a = -1; return a < 1; }`, 1)
	expectExit(t, `int main(void) { uint a = 0xFFFFFFFFu; return a < 1u; }`, 0)
	expectExit(t, `int main(void) { uint a = 0xFFFFFFFFu; return a > 1; }`, 1)
}

func TestControlFlow(t *testing.T) {
	expectExit(t, `
int main(void) {
	int s = 0;
	int i;
	for (i = 1; i <= 100; i++) s += i;
	return s;
}`, 5050)
	expectExit(t, `
int main(void) {
	int n = 0;
	int i = 0;
	while (1) {
		i++;
		if (i % 3 == 0) continue;
		if (i > 10) break;
		n += i;
	}
	return n;
}`, 1+2+4+5+7+8+10)
	expectExit(t, `
int main(void) {
	int n = 0;
	do { n++; } while (n < 5);
	return n;
}`, 5)
	expectExit(t, `
int main(void) {
	for (int i = 0; i < 4; i++) { }
	int j = 7;
	if (j > 5) { if (j > 10) return 1; else return 2; }
	return 3;
}`, 2)
}

func TestFunctionsAndRecursion(t *testing.T) {
	expectExit(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(15); }`, 610)
	expectExit(t, `
int add3(int a, int b, int c) { return a + b * 10 + c * 100; }
int main(void) { return add3(1, 2, 3); }`, 321)
	expectExit(t, `
void bump(int *p, int by) { *p += by; }
int main(void) { int x = 5; bump(&x, 37); return x; }`, 42)
}

func TestGlobals(t *testing.T) {
	expectExit(t, `
int counter = 40;
int tbl[4] = {1, 2, 3, 4};
byte flags[8];
int main(void) {
	counter += tbl[1];
	flags[3] = 9;
	return counter + flags[3] - 9;
}`, 42)
	expectExit(t, `
byte msg[] = "hello";
int main(void) { return strlen(msg); }`, 5)
	expectExit(t, `
const int scale = 6;
int main(void) { return scale * 7; }`, 42)
	expectExit(t, `
enum { A, B, C = 10, D };
int main(void) { return A + B + C + D; }`, 0+1+10+11)
}

func TestPointers(t *testing.T) {
	expectExit(t, `
int main(void) {
	int arr[5];
	int *p = arr;
	int i;
	for (i = 0; i < 5; i++) arr[i] = i * i;
	p += 2;
	return *p + p[1] + *(arr + 4);
}`, 4+9+16)
	expectExit(t, `
int main(void) {
	byte buf[10];
	byte *p = buf;
	*p++ = 65;
	*p++ = 66;
	return (buf[0] == 65 && buf[1] == 66) ? p - buf : -1;
}`, 2)
	expectExit(t, `
int main(void) {
	int a[3];
	a[0] = 1; a[1] = 2; a[2] = 3;
	int *end = a + 3;
	int *p = a;
	int s = 0;
	while (p < end) s += *p++;
	return s;
}`, 6)
}

func TestByteSemantics(t *testing.T) {
	// byte is unsigned and wraps at 8 bits.
	expectExit(t, `int main(void) { byte b = 250; b += 10; return b; }`, 4)
	expectExit(t, `int main(void) { byte b = 200; return b + 100; }`, 300) // promoted before add
	expectExit(t, `int main(void) { byte b = 0xFF; return b >> 4; }`, 15)
	expectExit(t, `int main(void) { return (byte)0x1FF; }`, 0xFF)
	expectExit(t, `
int main(void) {
	byte buf[4];
	buf[0] = 0x78; buf[1] = 0x56; buf[2] = 0x34; buf[3] = 0x12;
	return buf[0] | (buf[1] << 8) | (buf[2] << 16) | (buf[3] << 24);
}`, 0x12345678)
}

func TestIncDec(t *testing.T) {
	expectExit(t, `int main(void) { int i = 5; return i++ * 10 + i; }`, 56)
	expectExit(t, `int main(void) { int i = 5; return ++i * 10 + i; }`, 66)
	expectExit(t, `int main(void) { int i = 5; return i-- - --i; }`, 5-3)
	expectExit(t, `
int main(void) {
	int a[4];
	int i = 0;
	a[i++] = 10; a[i++] = 20;
	return a[0] + a[1] + i;
}`, 32)
}

func TestTernaryAndLogic(t *testing.T) {
	expectExit(t, `int main(void) { int x = 7; return x > 5 ? 1 : 2; }`, 1)
	expectExit(t, `
int calls = 0;
int bump() { calls++; return 1; }
int main(void) {
	// Short circuit: bump must not run.
	int a = 0 && bump();
	int b = 1 || bump();
	return calls * 10 + a + b;
}`, 1)
	expectExit(t, `
int main(void) {
	int x = 3;
	if (x > 1 && x < 5 || x == 99) return 1;
	return 0;
}`, 1)
}

func TestCompoundAssign(t *testing.T) {
	expectExit(t, `
int main(void) {
	int x = 100;
	x += 5; x -= 3; x *= 2; x /= 4; x %= 40;
	x <<= 2; x >>= 1; x &= 0xFF; x |= 0x100; x ^= 0x3;
	return x;
}`, func() int32 {
		x := int32(100)
		x += 5
		x -= 3
		x *= 2
		x /= 4
		x %= 40
		x <<= 2
		x >>= 1
		x &= 0xFF
		x |= 0x100
		x ^= 0x3
		return x
	}())
	// Compound assignment through a pointer evaluates the address once.
	expectExit(t, `
int idx = 0;
int arr[4];
int next() { return idx++; }
int main(void) {
	arr[next()] += 7;
	return arr[0] * 10 + idx;
}`, 71)
}

func TestSizeof(t *testing.T) {
	expectExit(t, `int main(void) { return sizeof(int) + sizeof(byte) + sizeof(int*) + sizeof(uint); }`, 4+1+4+4)
}

func TestRuntimeEcho(t *testing.T) {
	input := bytes.Repeat([]byte("abcdefgh"), 5000)
	code, out := runVXC(t, `
int main(void) {
	int c;
	while ((c = getb()) >= 0) putb(c);
	flushout();
	return 0;
}`, input)
	if code != 0 || !bytes.Equal(out, input) {
		t.Fatalf("echo: code=%d len=%d want %d", code, len(out), len(input))
	}
}

func TestRuntimeLE(t *testing.T) {
	code, out := runVXC(t, `
int main(void) {
	int v = get4le();
	int w = get2le();
	put4le(v + 1);
	put2le(w + 1);
	flushout();
	return 0;
}`, []byte{0x78, 0x56, 0x34, 0x12, 0xFE, 0xCA})
	if code != 0 {
		t.Fatal(code)
	}
	want := []byte{0x79, 0x56, 0x34, 0x12, 0xFF, 0xCA}
	if !bytes.Equal(out, want) {
		t.Fatalf("out = % x, want % x", out, want)
	}
}

func TestRuntimeAlloc(t *testing.T) {
	expectExit(t, `
int main(void) {
	byte *a = vxalloc(100000);
	byte *b = vxalloc(5000000);
	int i;
	for (i = 0; i < 100000; i++) a[i] = (byte)i;
	for (i = 0; i < 5000000; i += 4096) b[i] = 7;
	// The allocator must return disjoint regions...
	if (b - a < 100000) return 1;
	// ...that do not alias (writing b did not disturb a)...
	if (a[77] != 77 || a[256 + 99] != 99) return 2;
	// ...and fresh memory arrives zeroed.
	if (b[4095] != 0 || b[4097] != 0) return 3;
	return 0;
}`, 0)
}

func TestRuntimeMemOps(t *testing.T) {
	expectExit(t, `
byte src[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};
byte dst[16];
int main(void) {
	memcpy(dst, src, 16);
	int s = 0;
	int i;
	for (i = 0; i < 16; i++) s += dst[i];
	memset(dst, 0xAB, 16);
	return s + (dst[7] == 0xAB ? 1000 : 0);
}`, 136+1000)
}

func TestDieGoesToStderr(t *testing.T) {
	b, err := Compile(Options{}, Source{Name: "die.vxc", Text: `
int main(void) { die("boom"); return 0; }`})
	if err != nil {
		t.Fatal(err)
	}
	v, err := elf32.NewVM(b.ELF, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var diag bytes.Buffer
	v.Stderr = &diag
	st, err := v.Run()
	if err != nil || st != vm.StatusExit {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if v.ExitCode() != 101 || !strings.Contains(diag.String(), "boom") {
		t.Fatalf("code=%d stderr=%q", v.ExitCode(), diag.String())
	}
}

// TestCRC32Differential compiles a bitwise CRC-32 in VXC and checks it
// against hash/crc32 over the same input — an end-to-end differential
// test of the compiler, the assembler, and the interpreter together.
func TestCRC32Differential(t *testing.T) {
	input := []byte("The VXA architecture ensures that archived data can always be decoded. 0123456789")
	code, out := runVXC(t, `
uint crctab[256];
void initcrc() {
	uint c;
	int n;
	int k;
	for (n = 0; n < 256; n++) {
		c = (uint)n;
		for (k = 0; k < 8; k++) {
			if (c & 1) c = 0xEDB88320u ^ (c >> 1);
			else c = c >> 1;
		}
		crctab[n] = c;
	}
}
int main(void) {
	initcrc();
	uint crc = 0xFFFFFFFFu;
	int ch;
	while ((ch = getb()) >= 0)
		crc = crctab[(crc ^ (uint)ch) & 0xFFu] ^ (crc >> 8);
	crc = crc ^ 0xFFFFFFFFu;
	put4le((int)crc);
	flushout();
	return 0;
}`, input)
	if code != 0 || len(out) != 4 {
		t.Fatalf("code=%d out=% x", code, out)
	}
	got := uint32(out[0]) | uint32(out[1])<<8 | uint32(out[2])<<16 | uint32(out[3])<<24
	want := crc32.ChecksumIEEE(input)
	if got != want {
		t.Fatalf("crc = %#x, want %#x", got, want)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`int main(void) { return x; }`,                                             // undefined
		`int main(void) { int x; int x; return 0; }`,                               // duplicate local
		`int main(void) { break; }`,                                                // break outside loop
		`int f() { return 1; } int f() { return 2; } int main(void) { return 0; }`, // dup func
		`void main(void) { }`,                                                      // wrong main signature
		`int main(void) { return 1 }`,                                              // missing semicolon
		`int main(void) { int *p; return *p(); }`,                                  // call of non-function
		`int main(void) { int a[3]; a = 0; return 0; }`,                            // assign to array
		`int g = f(); int main(void) { return 0; }`,                                // non-constant global init
		`const int k; int main(void) { return 0; }`,                                // const without init
		`int main(void) { k = 1; return 0; }
		 const int k = 3;`, // assign to const
		`int main(void) { return sizeof(0); }`, // sizeof expr unsupported
	}
	for _, src := range cases {
		if _, err := Compile(Options{}, Source{Name: "err.vxc", Text: src}); err == nil {
			t.Errorf("compile succeeded, want error:\n%s", src)
		}
	}
}

// TestTable2Accounting checks the decoder/runtime text split used by the
// Table 2 harness.
func TestTable2Accounting(t *testing.T) {
	b, err := Compile(Options{}, Source{Name: "dec.vxc", Text: `
int work(int x) { return x * 3; }
int main(void) { return work(2); }`})
	if err != nil {
		t.Fatal(err)
	}
	if b.UserTextBytes == 0 || b.RuntimeTextBytes == 0 {
		t.Fatalf("split = user %d / runtime %d", b.UserTextBytes, b.RuntimeTextBytes)
	}
	if b.RuntimeTextBytes < b.UserTextBytes {
		t.Fatalf("runtime (%d) should dominate this tiny decoder (%d)", b.RuntimeTextBytes, b.UserTextBytes)
	}
	var sawMain, sawGetb bool
	for _, f := range b.Funcs {
		if f.Name == "main" && !f.Runtime {
			sawMain = true
		}
		if f.Name == "getb" && f.Runtime {
			sawGetb = true
		}
	}
	if !sawMain || !sawGetb {
		t.Fatalf("function table incomplete: %+v", b.Funcs)
	}
}
