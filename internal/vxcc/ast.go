package vxcc

import "fmt"

// TypeKind enumerates VXC types.
type TypeKind int

// VXC type kinds.
const (
	TVoid TypeKind = iota
	TInt           // 32-bit signed
	TUint          // 32-bit unsigned
	TByte          // 8-bit unsigned
	TPtr
	TArray
)

// Type describes a VXC type. Types are compared structurally.
type Type struct {
	Kind TypeKind
	Elem *Type // TPtr, TArray
	Len  int   // TArray
}

// Predefined scalar types.
var (
	typeVoid = &Type{Kind: TVoid}
	typeInt  = &Type{Kind: TInt}
	typeUint = &Type{Kind: TUint}
	typeByte = &Type{Kind: TByte}
)

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TVoid:
		return 0
	case TByte:
		return 1
	case TArray:
		return t.Elem.Size() * t.Len
	default:
		return 4
	}
}

// IsScalar reports whether the type fits in a register.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case TInt, TUint, TByte, TPtr:
		return true
	}
	return false
}

// IsInteger reports whether the type is an integer scalar.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case TInt, TUint, TByte:
		return true
	}
	return false
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TPtr:
		return t.Elem.Equal(o.Elem)
	case TArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	}
	return true
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TUint:
		return "uint"
	case TByte:
		return "byte"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	}
	return "?"
}

// Expr is a VXC expression node.
type Expr interface{ exprPos() Pos }

// IntLit is an integer or character literal.
type IntLit struct {
	Pos Pos
	Val int64
	// Unsigned marks literals that should type as uint (e.g. 0x80000000).
	Unsigned bool
}

// StrLit is a string literal; it denotes a byte* into rodata.
type StrLit struct {
	Pos Pos
	Val []byte
}

// Ident references a variable, parameter, enum constant or function.
type Ident struct {
	Pos  Pos
	Name string
}

// Unary is -x, !x, ~x, *x, &x.
type Unary struct {
	Pos Pos
	Op  tokKind
	X   Expr
}

// Binary is x op y for arithmetic/logical/comparison operators.
type Binary struct {
	Pos Pos
	Op  tokKind
	X   Expr
	Y   Expr
}

// Assign is lhs op= rhs (op == tAssign for plain assignment).
type Assign struct {
	Pos Pos
	Op  tokKind
	LHS Expr
	RHS Expr
}

// IncDec is ++x, --x, x++, x--.
type IncDec struct {
	Pos  Pos
	Op   tokKind // tInc or tDec
	X    Expr
	Post bool
}

// Cond is c ? t : f.
type Cond struct {
	Pos     Pos
	C, T, F Expr
}

// Call invokes a named function (VXC has no function pointers).
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// Index is x[i].
type Index struct {
	Pos Pos
	X   Expr
	I   Expr
}

// Cast is (type)x.
type Cast struct {
	Pos  Pos
	Type *Type
	X    Expr
}

// SizeofType is sizeof(type).
type SizeofType struct {
	Pos  Pos
	Type *Type
}

func (e *IntLit) exprPos() Pos     { return e.Pos }
func (e *StrLit) exprPos() Pos     { return e.Pos }
func (e *Ident) exprPos() Pos      { return e.Pos }
func (e *Unary) exprPos() Pos      { return e.Pos }
func (e *Binary) exprPos() Pos     { return e.Pos }
func (e *Assign) exprPos() Pos     { return e.Pos }
func (e *IncDec) exprPos() Pos     { return e.Pos }
func (e *Cond) exprPos() Pos       { return e.Pos }
func (e *Call) exprPos() Pos       { return e.Pos }
func (e *Index) exprPos() Pos      { return e.Pos }
func (e *Cast) exprPos() Pos       { return e.Pos }
func (e *SizeofType) exprPos() Pos { return e.Pos }

// Stmt is a VXC statement node.
type Stmt interface{ stmtPos() Pos }

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// DeclStmt declares a local variable, optionally initialized.
type DeclStmt struct {
	Pos  Pos
	Name string
	Type *Type
	Init Expr // nil if none
}

// If is if (c) then else els.
type If struct {
	Pos  Pos
	C    Expr
	Then Stmt
	Else Stmt // nil if none
}

// While is while (c) body.
type While struct {
	Pos  Pos
	C    Expr
	Body Stmt
}

// DoWhile is do body while (c);.
type DoWhile struct {
	Pos  Pos
	C    Expr
	Body Stmt
}

// For is for (init; c; post) body. Init/C/Post may be nil.
type For struct {
	Pos  Pos
	Init Stmt
	C    Expr
	Post Expr
	Body Stmt
}

// Return is return x; (x nil for void).
type Return struct {
	Pos Pos
	X   Expr
}

// Break/Continue affect the innermost loop.
type Break struct{ Pos Pos }

// Continue affects the innermost loop.
type Continue struct{ Pos Pos }

// Block is { stmts }.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

func (s *ExprStmt) stmtPos() Pos { return s.Pos }
func (s *DeclStmt) stmtPos() Pos { return s.Pos }
func (s *If) stmtPos() Pos       { return s.Pos }
func (s *While) stmtPos() Pos    { return s.Pos }
func (s *DoWhile) stmtPos() Pos  { return s.Pos }
func (s *For) stmtPos() Pos      { return s.Pos }
func (s *Return) stmtPos() Pos   { return s.Pos }
func (s *Break) stmtPos() Pos    { return s.Pos }
func (s *Continue) stmtPos() Pos { return s.Pos }
func (s *Block) stmtPos() Pos    { return s.Pos }

// Param is one function parameter.
type Param struct {
	Name string
	Type *Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    *Type
	Params []Param
	Body   *Block
}

// GlobalDecl is a file-scope variable.
type GlobalDecl struct {
	Pos   Pos
	Name  string
	Type  *Type
	Init  Expr   // scalar initializer (constant expression), or nil
	Inits []Expr // array initializer list, or nil
	Str   []byte // string initializer for byte arrays, or nil
	Const bool   // declared const: placed in rodata
}

// EnumDecl is enum { A, B = k, ... };
type EnumDecl struct {
	Pos   Pos
	Names []string
	Vals  []int64
}

// File is one parsed source file.
type File struct {
	Name    string
	Funcs   []*FuncDecl
	Globals []*GlobalDecl
	Enums   []*EnumDecl
}
