// Package artifact is the persistent tier under the in-process snapshot
// cache: a content-addressed on-disk store of decoder snapshot
// artifacts — the pristine memory image plus the lowered/optimized uop
// block cache — so translation and snapshot work for a given decoder is
// paid once per fleet, not once per process (ROADMAP item 2; the
// serving-at-scale corollary of the paper's self-contained-decoder
// thesis).
//
// Keying. An artifact is addressed by the triple that fully determines
// its contents: the decoder ELF's SHA-256, the translation engine's
// vm.EngineVersion, and a fingerprint of the vm.Config the snapshot was
// built under. Change any of the three and the store simply misses —
// stale artifacts are never consulted, and invalidation is just "bump
// vm.EngineVersion".
//
// Durability and integrity. Saves are atomic (temp file + rename, both
// fsync'd) so a crash can never leave a half-written artifact under a
// live name, and every file carries a whole-artifact checksum. Loads
// verify magic, engine version, decoder hash, config fingerprint,
// length and checksum before a single byte reaches the VM layer; any
// mismatch, truncation or I/O error is returned to the caller, which
// falls back to the ELF build path. A corrupt store can cost a cold
// start — it can never serve wrong bytes or take the daemon down.
//
// Sharing. On Linux the payload is mmap'd read-only and shared, so N
// vxad processes serving the same decoder keep one page-cache copy of
// the pristine image between them. Mappings are retained for the life
// of the process: because saves always rename a fresh inode over the
// old name, a mapped file is immutable, and snapshots hold aliases into
// it indefinitely.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"vxa/internal/vm"
)

const (
	// fileMagic brands an artifact file; the trailing byte versions the
	// container format itself (header layout), independent of the
	// engine version that governs the payload.
	fileMagic = "VXAART1\x00"

	// headerLen is the fixed artifact-file prefix:
	// magic(8) engineVersion(4) cfgFP(8) payloadLen(8) crc(4) hash(32).
	headerLen = 64

	// Suffix is the artifact file extension (shared with vxwarm's
	// tarball packer).
	Suffix = ".vxart"
)

// castagnoli is the CRC-32C table: hardware-accelerated on amd64/arm64,
// which keeps whole-artifact verification cheap enough that a disk-warm
// load stays in the same latency class as an in-process warm hit.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats is a point-in-time snapshot of store activity. Hits+Misses
// count probes; Fallbacks counts loads that failed verification or I/O
// after the file was found (the corrupt-store signal, always also a
// miss from the caller's point of view).
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Fallbacks   int64 `json:"fallbacks"`
	Saves       int64 `json:"saves"`
	SaveErrors  int64 `json:"save_errors"`
	BytesLoaded int64 `json:"bytes_loaded"`
	BytesSaved  int64 `json:"bytes_saved"`
	LoadNanos   int64 `json:"load_nanos"`

	// ELF-hash index traffic (see index.go). An IndexHits probe saved
	// the caller a decoder compile; an IndexMisses probe cost nothing
	// but the failed read.
	IndexHits   int64 `json:"index_hits"`
	IndexMisses int64 `json:"index_misses"`
}

// Store is a directory of checksummed snapshot artifacts. All methods
// are safe for concurrent use.
type Store struct {
	dir string

	hits, misses, fallbacks atomic.Int64
	saves, saveErrors       atomic.Int64
	bytesLoaded, bytesSaved atomic.Int64
	loadNanos               atomic.Int64
	indexHits, indexMisses  atomic.Int64

	// maps pins every payload ever handed to vm.Deserialize: returned
	// snapshots alias into these buffers (that is what makes the memory
	// image shareable), so they must stay alive and mapped for the
	// process lifetime. Bounded by the number of distinct artifacts
	// loaded, i.e. the decoder working set.
	mu   sync.Mutex
	maps [][]byte
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ConfigFingerprint condenses the vm.Config fields that shape a
// snapshot into 8 bytes of its description's SHA-256. Deriving it from
// the printed struct means any future Config field automatically
// changes the fingerprint — new knobs can never alias old artifacts.
func ConfigFingerprint(cfg vm.Config) uint64 {
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", cfg)))
	return binary.LittleEndian.Uint64(h[:8])
}

// Path returns the artifact file path for a decoder hash + config
// pair under the current engine version. Files are fanned out by the
// leading hash byte to keep directories small at fleet scale.
func (s *Store) Path(hash [32]byte, cfg vm.Config) string {
	name := fmt.Sprintf("%x-e%d-c%016x%s", hash, vm.EngineVersion, ConfigFingerprint(cfg), Suffix)
	return filepath.Join(s.dir, fmt.Sprintf("%02x", hash[0]), name)
}

// Load probes the store for the decoder's artifact and reconstructs
// its snapshot. A missing file is a plain miss (error wraps
// os.ErrNotExist); anything else that goes wrong — torn write, bit
// rot, foreign engine, hash mismatch — is counted as a fallback and
// returned as an error. Load never panics on hostile file contents.
func (s *Store) Load(hash [32]byte, cfg vm.Config) (*vm.Snapshot, error) {
	start := time.Now()
	data, err := mapFile(s.Path(hash, cfg))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return nil, fmt.Errorf("artifact: %w", err)
		}
		s.misses.Add(1)
		s.fallbacks.Add(1)
		return nil, fmt.Errorf("artifact: read: %w", err)
	}
	snap, err := s.decode(hash, cfg, data)
	if err != nil {
		unmapFile(data)
		s.misses.Add(1)
		s.fallbacks.Add(1)
		return nil, err
	}
	// The snapshot aliases data (memory image and, transitively,
	// nothing else — blocks are rebuilt on the heap); pin the buffer.
	s.mu.Lock()
	s.maps = append(s.maps, data)
	s.mu.Unlock()
	s.hits.Add(1)
	s.bytesLoaded.Add(int64(len(data)))
	s.loadNanos.Add(time.Since(start).Nanoseconds())
	return snap, nil
}

func (s *Store) decode(hash [32]byte, cfg vm.Config, data []byte) (*vm.Snapshot, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("artifact: truncated header (%d bytes)", len(data))
	}
	if string(data[:8]) != fileMagic {
		return nil, fmt.Errorf("artifact: bad magic")
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:]); v != vm.EngineVersion {
		return nil, fmt.Errorf("artifact: engine version %d, want %d", v, vm.EngineVersion)
	}
	if fp := le.Uint64(data[12:]); fp != ConfigFingerprint(cfg) {
		return nil, fmt.Errorf("artifact: config fingerprint mismatch")
	}
	payloadLen := le.Uint64(data[20:])
	if payloadLen != uint64(len(data)-headerLen) {
		return nil, fmt.Errorf("artifact: payload length %d, file carries %d", payloadLen, len(data)-headerLen)
	}
	if got := [32]byte(data[32:64]); got != hash {
		return nil, fmt.Errorf("artifact: decoder hash mismatch")
	}
	// The checksum covers the header (with the crc field zeroed) and
	// the payload, so a flipped bit anywhere in the file is caught.
	var hdr [headerLen]byte
	copy(hdr[:], data[:headerLen])
	le.PutUint32(hdr[28:], 0)
	crc := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, data[headerLen:])
	if crc != le.Uint32(data[28:]) {
		return nil, fmt.Errorf("artifact: checksum mismatch")
	}
	snap, err := vm.Deserialize(data[headerLen:])
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return snap, nil
}

// Save serializes the snapshot and atomically publishes it under the
// decoder's content address: written to a temp file in the same
// directory, fsync'd, renamed over the final name, directory fsync'd.
// Readers (and mmap'd loads in other processes) either see the old
// complete artifact or the new complete artifact, never a tear.
func (s *Store) Save(hash [32]byte, cfg vm.Config, snap *vm.Snapshot) error {
	err := s.save(hash, cfg, snap)
	if err != nil {
		s.saveErrors.Add(1)
		return err
	}
	s.saves.Add(1)
	return nil
}

func (s *Store) save(hash [32]byte, cfg vm.Config, snap *vm.Snapshot) error {
	payload, err := snap.Serialize()
	if err != nil {
		return fmt.Errorf("artifact: serialize: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:8], fileMagic)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], vm.EngineVersion)
	le.PutUint64(hdr[12:], ConfigFingerprint(cfg))
	le.PutUint64(hdr[20:], uint64(len(payload)))
	copy(hdr[32:64], hash[:])
	crc := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, payload)
	le.PutUint32(hdr[28:], crc)

	path := s.Path(hash, cfg)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artifact: save: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*"+Suffix)
	if err != nil {
		return fmt.Errorf("artifact: save: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(payload)
		if err == nil {
			err = tmp.Sync()
		}
	} else {
		tmp.Close()
		return fmt.Errorf("artifact: save: %w", err)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("artifact: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("artifact: save: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	s.bytesSaved.Add(int64(headerLen + len(payload)))
	return nil
}

// Stats returns a consistent-enough snapshot of the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Fallbacks:   s.fallbacks.Load(),
		Saves:       s.saves.Load(),
		SaveErrors:  s.saveErrors.Load(),
		BytesLoaded: s.bytesLoaded.Load(),
		BytesSaved:  s.bytesSaved.Load(),
		LoadNanos:   s.loadNanos.Load(),
		IndexHits:   s.indexHits.Load(),
		IndexMisses: s.indexMisses.Load(),
	}
}
