package artifact

import (
	"archive/tar"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"vxa/internal/vm"
	"vxa/internal/x86"
	"vxa/internal/x86/asm"
)

var testCfg = vm.Config{MemSize: 4 << 20}

// buildSnapshot assembles a tiny multi-stream counter guest, runs one
// stream to warm the translation cache, absorbs it, and returns the
// snapshot, a synthetic decoder hash, and the stream's golden output.
func buildSnapshot(t *testing.T) (*vm.Snapshot, [32]byte, []byte) {
	t.Helper()
	u := asm.New()
	u.DefBSS("ctr", 4, 4)
	u.Label("start")
	u.Label("loop")
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(vm.SysWrite))
	u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(1))
	u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("ctr"))
	u.Op2(x86.MOV, x86.R(x86.EDX), x86.I(4))
	u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("ctr"))
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.M(x86.ECX, 0))
	u.Op1(x86.INC, x86.R(x86.EAX))
	u.Op2(x86.MOV, x86.M(x86.ECX, 0), x86.R(x86.EAX))
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(vm.SysDone))
	u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	u.Jmp("loop")
	im, err := u.Link(vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	ro := append(append([]byte{}, im.Text...), im.ROData...)
	if err := v.MapSegment(im.Base, ro, uint32(len(ro)), true); err != nil {
		t.Fatal(err)
	}
	if rw := uint32(len(im.Data)) + im.BSSSize; rw > 0 {
		if err := v.MapSegment(im.DataBase(), im.Data, rw, false); err != nil {
			t.Fatal(err)
		}
	}
	v.SetEntry(im.Symbols["start"])
	snap := v.Snapshot()
	var out bytes.Buffer
	v.Stdout = &out
	if st, err := v.Run(); err != nil || st != vm.StatusDone {
		t.Fatalf("warm stream: st=%v err=%v", st, err)
	}
	snap.AbsorbBlocks(v)
	if snap.BlockCount() == 0 {
		t.Fatal("no blocks absorbed")
	}
	hash := [32]byte{}
	copy(hash[:], "test-decoder-content-hash-000001")
	return snap, hash, out.Bytes()
}

func runStream(t *testing.T, snap *vm.Snapshot) ([]byte, vm.Stats) {
	t.Helper()
	v := snap.NewVM()
	var out bytes.Buffer
	v.Stdout = &out
	if st, err := v.Run(); err != nil || st != vm.StatusDone {
		t.Fatalf("stream: st=%v err=%v", st, err)
	}
	return out.Bytes(), v.Stats()
}

// TestStoreRoundTrip: save in one store, load in a fresh one (a new
// process in disguise), and the restored snapshot reproduces the golden
// output with zero re-translation.
func TestStoreRoundTrip(t *testing.T) {
	snap, hash, golden := buildSnapshot(t)
	dir := t.TempDir()

	st1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Save(hash, testCfg, snap); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.Load(hash, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.BlockCount() != snap.BlockCount() {
		t.Fatalf("loaded %d blocks, want %d", got.BlockCount(), snap.BlockCount())
	}
	out, stats := runStream(t, got)
	if !bytes.Equal(out, golden) {
		t.Fatalf("loaded snapshot output %x, want %x", out, golden)
	}
	if stats.BlocksBuilt != 0 {
		t.Fatalf("loaded snapshot re-translated %d blocks", stats.BlocksBuilt)
	}
	s := st2.Stats()
	if s.Hits != 1 || s.Misses != 0 || s.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want one clean hit", s)
	}
	if s.BytesLoaded == 0 || s.LoadNanos == 0 {
		t.Fatalf("stats = %+v, want load bytes and latency recorded", s)
	}
}

// TestStoreMiss: an absent artifact is a plain miss, not a fallback.
func TestStoreMiss(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load([32]byte{1}, testCfg); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if s := st.Stats(); s.Misses != 1 || s.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want one miss, no fallback", s)
	}
}

// TestStoreRejectsDamage: corruption, truncation, engine-version and
// key mismatches all fail the load and count as fallbacks — and none of
// them panics.
func TestStoreRejectsDamage(t *testing.T) {
	snap, hash, _ := buildSnapshot(t)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(hash, testCfg, snap); err != nil {
		t.Fatal(err)
	}
	path := st.Path(hash, testCfg)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	check := func(name string, wantFallback bool) {
		t.Helper()
		fresh, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fresh.Load(hash, testCfg); err == nil {
			t.Fatalf("%s: load succeeded on damaged artifact", name)
		}
		if s := fresh.Stats(); s.Hits != 0 || (s.Fallbacks > 0) != wantFallback {
			t.Fatalf("%s: stats = %+v, want fallback=%v", name, s, wantFallback)
		}
		restore()
	}

	// Payload bit rot (also exercises that crc covers the body).
	d := append([]byte(nil), pristine...)
	d[len(d)-1] ^= 0x01
	os.WriteFile(path, d, 0o644)
	check("payload corruption", true)

	// Header bit rot.
	d = append([]byte(nil), pristine...)
	d[33] ^= 0xff
	os.WriteFile(path, d, 0o644)
	check("header corruption", true)

	// Truncation.
	os.WriteFile(path, pristine[:len(pristine)/2], 0o644)
	check("truncation", true)
	os.WriteFile(path, pristine[:17], 0o644)
	check("header truncation", true)
	os.WriteFile(path, nil, 0o644)
	check("empty file", true)

	// Engine-version mismatch with a recomputed checksum: the file is
	// internally consistent, just written by a different engine.
	d = append([]byte(nil), pristine...)
	binary.LittleEndian.PutUint32(d[8:], vm.EngineVersion+1)
	rehash(d)
	os.WriteFile(path, d, 0o644)
	check("engine version mismatch", true)

	// Stored decoder hash differs from the requested one (a mis-filed
	// artifact must not load for the wrong decoder).
	d = append([]byte(nil), pristine...)
	d[32+5] ^= 0xff
	rehash(d)
	os.WriteFile(path, d, 0o644)
	check("decoder hash mismatch", true)

	// Config mismatch is a different address: plain miss, no fallback.
	fresh, _ := Open(dir)
	other := testCfg
	other.MemSize = 8 << 20
	if _, err := fresh.Load(hash, other); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("config-mismatch load: err = %v, want ErrNotExist", err)
	}

	// And after every round of damage, the pristine bytes still load.
	if _, err := fresh.Load(hash, testCfg); err != nil {
		t.Fatalf("pristine reload failed: %v", err)
	}
}

// rehash recomputes an artifact file's whole-file checksum in place.
func rehash(d []byte) {
	le := binary.LittleEndian
	le.PutUint32(d[28:], 0)
	var hdr [headerLen]byte
	copy(hdr[:], d[:headerLen])
	crc := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, d[headerLen:])
	le.PutUint32(d[28:], crc)
}

// TestPackUnpack: artifacts exported from one store import into
// another and load cleanly; hostile entry names are rejected.
func TestPackUnpack(t *testing.T) {
	snap, hash, golden := buildSnapshot(t)
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Save(hash, testCfg, snap); err != nil {
		t.Fatal(err)
	}

	key := [32]byte{9}
	if err := src.RecordELF(key, hash); err != nil {
		t.Fatal(err)
	}

	var tarball bytes.Buffer
	n, err := src.Pack(&tarball)
	if err != nil || n != 2 {
		t.Fatalf("pack: n=%d err=%v, want the artifact and the index entry", n, err)
	}

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := dst.Unpack(bytes.NewReader(tarball.Bytes())); err != nil || n != 2 {
		t.Fatalf("unpack: n=%d err=%v", n, err)
	}
	got, err := dst.Load(hash, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if out, _ := runStream(t, got); !bytes.Equal(out, golden) {
		t.Fatalf("unpacked snapshot output %x, want %x", out, golden)
	}
	if h, ok := dst.LookupELF(key); !ok || h != hash {
		t.Fatalf("index entry did not survive pack/unpack: ok=%v h=%x", ok, h)
	}

	// A traversal entry must be refused before anything is written.
	evil := makeTar(t, "../escape"+Suffix, []byte("boom"))
	if _, err := dst.Unpack(bytes.NewReader(evil)); err == nil {
		t.Fatal("unpack accepted a path-traversal entry")
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dst.Dir()), "escape"+Suffix)); err == nil {
		t.Fatal("traversal entry escaped the store")
	}
	// Non-artifact entries are skipped, not extracted.
	other := makeTar(t, "notes.txt", []byte("hi"))
	if n, err := dst.Unpack(bytes.NewReader(other)); err != nil || n != 0 {
		t.Fatalf("unpack of non-artifact: n=%d err=%v", n, err)
	}
}

// TestStoreConcurrent: concurrent saves and loads of the same artifact
// are race-free (run with -race) and every successful load behaves.
func TestStoreConcurrent(t *testing.T) {
	snap, hash, golden := buildSnapshot(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(hash, testCfg, snap); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(save bool) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				if save {
					if err := st.Save(hash, testCfg, snap); err != nil {
						t.Error(err)
						return
					}
				} else {
					got, err := st.Load(hash, testCfg)
					if err != nil {
						t.Error(err)
						return
					}
					if out, _ := runStream(t, got); !bytes.Equal(out, golden) {
						t.Errorf("load under contention: output %x", out)
						return
					}
				}
			}
		}(i%2 == 0)
	}
	wg.Wait()
	if s := st.Stats(); s.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want no fallbacks under clean contention", s)
	}
}

func makeTar(t *testing.T, name string, body []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	if err := tw.WriteHeader(&tar.Header{Name: name, Mode: 0o644, Size: int64(len(body))}); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Paths in artifact names stay hex-and-metadata only.
func TestPathShape(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := st.Path([32]byte{0xab, 0xcd}, testCfg)
	rel, err := filepath.Rel(st.Dir(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rel, "ab"+string(filepath.Separator)+"abcd") || !strings.HasSuffix(rel, Suffix) {
		t.Fatalf("unexpected artifact path shape %q", rel)
	}
	if !strings.Contains(rel, fmt.Sprintf("-e%d-", vm.EngineVersion)) {
		t.Fatalf("path %q does not carry the engine version", rel)
	}
}
