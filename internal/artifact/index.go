package artifact

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// The ELF-hash index: a second, tiny map the store keeps next to the
// snapshot artifacts, from a decoder's *source* key (codec sources +
// vxcc.Version, see codec.SourceKey) to the SHA-256 of its compiled
// ELF. The snapshot artifacts are content-addressed, which is exactly
// right for integrity but leaves a bootstrap problem: a restarted
// daemon must compile the decoder just to learn the address to probe —
// and that compile IS the cold start the store exists to kill. The
// index closes the loop: source key -> ELF hash without running the
// compiler, so a restart's first request goes straight to the mmap'd
// artifact.
//
// Trust model. Index entries are advisory, never load-bearing for
// integrity: the artifact named by the looked-up hash still passes the
// full header/checksum verification, and the serving layer verifies
// any freshly compiled ELF against the indexed hash, dropping the
// entry on mismatch (the backstop for a codegen change that forgot to
// bump vxcc.Version). A corrupt or stale index entry can cost one
// compile; it cannot alter output.

const (
	// IndexSuffix is the index entry file extension (also packed into
	// vxwarm tarballs, so a shipped store carries its bootstrap map).
	IndexSuffix = ".elfhash"

	// indexMagic brands an index entry file and versions its layout.
	indexMagic = "vxa-elf-index 1\n"
)

// indexPath returns the index entry file for a source key. Entries
// live in one flat directory: there is one per codec, not per content
// version, so the fanout the artifacts need is pointless here.
func (s *Store) indexPath(key [32]byte) string {
	return filepath.Join(s.dir, "index", fmt.Sprintf("%x%s", key, IndexSuffix))
}

// LookupELF returns the recorded ELF hash for a decoder source key.
// Any defect — missing file, bad magic, short or non-hex payload — is
// a miss; defective files (not plain absences) are removed so the next
// RecordELF rewrites them cleanly.
func (s *Store) LookupELF(key [32]byte) ([32]byte, bool) {
	var h [32]byte
	path := s.indexPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.indexMisses.Add(1)
		return h, false
	}
	rest, ok := bytes.CutPrefix(data, []byte(indexMagic))
	if !ok || len(bytes.TrimSuffix(rest, []byte("\n"))) != 64 {
		os.Remove(path)
		s.indexMisses.Add(1)
		return h, false
	}
	if _, err := hex.Decode(h[:], rest[:64]); err != nil {
		os.Remove(path)
		s.indexMisses.Add(1)
		return h, false
	}
	s.indexHits.Add(1)
	return h, true
}

// RecordELF publishes source key -> ELF hash, atomically (temp file +
// rename) like every other store write, so concurrent daemons racing
// to record the same codec each leave a complete entry.
func (s *Store) RecordELF(key, elfHash [32]byte) error {
	path := s.indexPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artifact: index: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*"+IndexSuffix)
	if err != nil {
		return fmt.Errorf("artifact: index: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, err = fmt.Fprintf(tmp, "%s%x\n", indexMagic, elfHash)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		return fmt.Errorf("artifact: index: %w", err)
	}
	return nil
}

// DropELF removes a source key's index entry. The serving layer calls
// this when a compile proves the entry stale — the self-healing path
// for an ELF-affecting compiler change that did not bump vxcc.Version.
func (s *Store) DropELF(key [32]byte) {
	os.Remove(s.indexPath(key))
}
