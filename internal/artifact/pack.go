package artifact

import (
	"archive/tar"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// packable reports whether a store file belongs in a Pack tarball:
// snapshot artifacts and ELF-hash index entries, never temp files.
func packable(path string) bool {
	if strings.HasPrefix(filepath.Base(path), ".tmp-") {
		return false
	}
	return strings.HasSuffix(path, Suffix) || strings.HasSuffix(path, IndexSuffix)
}

// Pack streams every artifact in the store into a tar archive — the
// fleet pre-warming export: build artifacts once (vxwarm prime or a
// warmed vxad), pack, push to a registry, unpack on every new host.
// ELF-hash index entries ride along, so an unpacked store also answers
// the "which artifact is this codec?" bootstrap question without a
// compile. Entries are store-relative paths
// ("ab/abcdef...-e1-c....vxart", "index/....elfhash"). Returns the
// number of files written.
func (s *Store) Pack(w io.Writer) (int, error) {
	tw := tar.NewWriter(w)
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !packable(path) {
			return err
		}
		rel, err := filepath.Rel(s.dir, path)
		if err != nil {
			return err
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		hdr := &tar.Header{
			Name:    filepath.ToSlash(rel),
			Mode:    0o644,
			Size:    fi.Size(),
			ModTime: fi.ModTime(),
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		_, err = io.Copy(tw, f)
		f.Close()
		if err == nil {
			n++
		}
		return err
	})
	if err != nil {
		return n, fmt.Errorf("artifact: pack: %w", err)
	}
	if err := tw.Close(); err != nil {
		return n, fmt.Errorf("artifact: pack: %w", err)
	}
	return n, nil
}

// Unpack imports artifacts from a tar archive produced by Pack.
// Defensive on hostile input: entry names are confined to the store
// directory (no absolute paths, no ".." escapes), only regular files
// with the artifact or index suffix are taken, and each file is extracted via
// the same temp-file + rename dance as Save, so a truncated tarball
// never leaves a partial artifact under a live name. File contents are
// NOT trusted here — every Load re-verifies the checksum and keys, so
// a malicious tarball can at worst waste disk. Returns the number of
// artifacts imported.
func (s *Store) Unpack(r io.Reader) (int, error) {
	tr := tar.NewReader(r)
	n := 0
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("artifact: unpack: %w", err)
		}
		if hdr.Typeflag != tar.TypeReg ||
			!(strings.HasSuffix(hdr.Name, Suffix) || strings.HasSuffix(hdr.Name, IndexSuffix)) {
			continue
		}
		rel := filepath.Clean(filepath.FromSlash(hdr.Name))
		if filepath.IsAbs(rel) || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return n, fmt.Errorf("artifact: unpack: entry %q escapes the store", hdr.Name)
		}
		dst := filepath.Join(s.dir, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return n, fmt.Errorf("artifact: unpack: %w", err)
		}
		tmp, err := os.CreateTemp(filepath.Dir(dst), ".tmp-*"+Suffix)
		if err != nil {
			return n, fmt.Errorf("artifact: unpack: %w", err)
		}
		_, err = io.Copy(tmp, tr)
		if err == nil {
			err = tmp.Sync()
		}
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), dst)
		}
		if err != nil {
			os.Remove(tmp.Name())
			return n, fmt.Errorf("artifact: unpack %q: %w", hdr.Name, err)
		}
		n++
	}
}
