//go:build !linux

package artifact

import "os"

// mapFile falls back to a plain read where mmap sharing is not wired
// up; the store stays correct, processes just don't share pages.
func mapFile(path string) ([]byte, error) { return os.ReadFile(path) }

func unmapFile([]byte) {}
