//go:build linux

package artifact

import (
	"os"
	"syscall"
)

// mapFile maps the artifact read-only and shared: every vxad process on
// the host that loads the same artifact shares one page-cache copy of
// the pristine decoder image. Because saves publish by renaming a fresh
// inode over the old name, a mapped file can never change underneath
// us. Empty files take the read path (zero-length mmap is an error).
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 || size != int64(int(size)) {
		return os.ReadFile(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems that refuse mmap still get correctness.
		return os.ReadFile(path)
	}
	return data, nil
}

// unmapFile releases a mapping that failed verification. Buffers that
// made it into a snapshot are pinned forever and never reach here.
func unmapFile(data []byte) {
	if len(data) > 0 {
		syscall.Munmap(data)
	}
}
