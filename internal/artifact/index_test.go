package artifact

import (
	"os"
	"testing"
)

// TestELFIndex: the source-key -> ELF-hash map round-trips across store
// instances, counts its traffic, survives overwrites, and treats every
// kind of damage as a clean miss that also scrubs the bad entry.
func TestELFIndex(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := [32]byte{1, 2, 3}
	elf := [32]byte{4, 5, 6}

	if _, ok := st.LookupELF(key); ok {
		t.Fatal("lookup hit on an empty index")
	}
	if err := st.RecordELF(key, elf); err != nil {
		t.Fatal(err)
	}
	if h, ok := st.LookupELF(key); !ok || h != elf {
		t.Fatalf("lookup = %x, %v; want %x", h, ok, elf)
	}
	if s := st.Stats(); s.IndexHits != 1 || s.IndexMisses != 1 {
		t.Fatalf("stats = %+v, want 1 index hit and 1 index miss", s)
	}

	// A fresh store over the same directory (a restart) sees the entry.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := st2.LookupELF(key); !ok || h != elf {
		t.Fatalf("restart lookup = %x, %v; want %x", h, ok, elf)
	}

	// Re-recording overwrites in place.
	elf2 := [32]byte{7, 8, 9}
	if err := st.RecordELF(key, elf2); err != nil {
		t.Fatal(err)
	}
	if h, ok := st.LookupELF(key); !ok || h != elf2 {
		t.Fatalf("after overwrite: %x, %v; want %x", h, ok, elf2)
	}

	// Damage in every shape — truncation, bad magic, non-hex payload —
	// reads as a miss and removes the defective file.
	for _, bad := range [][]byte{
		{},
		[]byte("not an index entry"),
		[]byte(indexMagic + "zz"),
		[]byte(indexMagic + "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz\n"),
	} {
		if err := os.WriteFile(st.indexPath(key), bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.LookupELF(key); ok {
			t.Fatalf("lookup hit on damaged entry %q", bad)
		}
		if _, err := os.Stat(st.indexPath(key)); !os.IsNotExist(err) {
			t.Fatalf("damaged entry %q not scrubbed: %v", bad, err)
		}
	}

	// DropELF removes an entry; dropping a missing one is a no-op.
	if err := st.RecordELF(key, elf); err != nil {
		t.Fatal(err)
	}
	st.DropELF(key)
	if _, ok := st.LookupELF(key); ok {
		t.Fatal("lookup hit after drop")
	}
	st.DropELF(key)
}
