package vm

// Tier-2 integration: promotion of hot superblocks into compiled closure
// traces (package tier2) and the exit dispatch that hands control back
// to the tier-1 engine. The tier is invisible to guest semantics: every
// exit path below re-joins exactly the code path the tier-1 dispatch
// loop would have taken for the same micro-op, including fuel refunds,
// chain-slot resolution and trap construction.

import (
	"os"
	"strconv"
	"time"

	"vxa/internal/vm/tier2"
	"vxa/internal/x86"
)

// t2HotDefault is the number of superblock entries before the trace is
// fused into a tier-2 closure program. Superblocks themselves form at
// sbHotThreshold block entries, so a trace must prove itself on the
// tier-1 loop first; compilation is cheap (one closure per micro-op)
// but profile-teardown churn is not worth compiling for.
const t2HotDefault = 32

// envNoTier2 reports whether VXA_NO_TIER2 forces the tier off
// process-wide (the CI interpreter-fallback leg).
func envNoTier2() bool {
	s := os.Getenv("VXA_NO_TIER2")
	return s != "" && s != "0"
}

// t2HotThreshold resolves the promotion threshold, honoring the
// VXA_TIER2_HOT override (the test wall uses 1 to force every
// superblock hot).
func t2HotThreshold() uint32 {
	if s := os.Getenv("VXA_TIER2_HOT"); s != "" {
		if n, err := strconv.ParseUint(s, 10, 32); err == nil && n > 0 {
			return uint32(n)
		}
	}
	return t2HotDefault
}

// compileTier2 fuses sb's trace into a compiled closure program bound
// to this VM's machine view. One attempt per superblock: a bail
// (reference-engine escapes in the trace) leaves it on tier-1 for good.
func (v *VM) compileTier2(sb *bref) {
	sb.t2Tried = true
	start := time.Now()
	m := v.t2m
	if m == nil {
		m = &tier2.Machine{}
		v.t2m = m
	}
	// Refresh the geometry the compiler captures. Everything here is
	// fixed for the life of the guest address space; any event that
	// changes it (Reset, snapshot materialization) replaces the bref
	// graph and with it every compiled trace.
	m.Mem = v.mem
	m.MemLen = uint32(len(v.mem))
	m.ROLimit = v.roLimit
	m.StackBase = v.stackBase
	t := tier2.Compile(sb.b.uops, sb.b.uops[0].EIP, m)
	v.stats.TranslateNS += uint64(time.Since(start).Nanoseconds())
	if t == nil {
		return
	}
	// Charge fuel by the superblock's block cost, exactly as tier-1
	// does (the per-uop costs the refund paths sum are identical).
	t.Cost = sb.b.cost
	sb.t2 = t
	v.stats.Tier2Compiled++
}

// runTier2 executes sb's compiled trace until it exits, then re-joins
// the tier-1 engine: state is synced through the tier-2 machine view,
// accounting is applied per full iteration (Run charges fuel itself),
// and the exit descriptor is dispatched onto the same chain-slot /
// refund / trap paths the tier-1 handler for the exiting micro-op uses.
// The caller must have checked v.fuel >= sb.b.cost and counted the
// entry in sb.sbEntries.
func (v *VM) runTier2(sb *bref, t *tier2.Trace) (*bref, error) {
	if t.NeedFlags {
		// The native compiler pinned this trace's entry flag state to
		// FlagNone; representation-only, so architecturally invisible.
		v.materializeFlags()
	}
	m := v.t2m
	m.Regs = v.regs
	m.Fl = v.fl
	m.CF, m.ZF, m.SF, m.OF, m.PF = v.cf, v.zf, v.sf, v.of, v.pf
	m.Brk = v.brk
	m.Fuel = v.fuel
	m.PollArmed = v.cancel != nil || v.wallDeadline != 0
	m.Credit = v.cancelCredit
	m.Iters = 0
	m.FlagsMaterialized = 0

	e := t.Run(m)

	v.regs = m.Regs
	v.fl = m.Fl
	v.cf, v.zf, v.sf, v.of, v.pf = m.CF, m.ZF, m.SF, m.OF, m.PF
	v.fuel = m.Fuel
	if m.PollArmed {
		v.cancelCredit = m.Credit
	}
	iters := m.Iters
	// Tier2Steps is the tier's exact share of Steps: every refund a
	// mid-trace exit performs below (guard tails via sbLeave, fault
	// windows via uopTrapN) lands before this function returns, so the
	// net Steps delta is precisely the instructions the trace retired.
	defer func(before uint64) {
		v.stats.Tier2Steps += v.stats.Steps - before
	}(v.stats.Steps)
	v.stats.Steps += iters * uint64(t.Cost)
	v.stats.UopsExecuted += iters * uint64(t.NUops)
	v.stats.FlagsMaterialized += m.FlagsMaterialized
	v.stats.Tier2Executed += iters
	sb.sbEntries += iters - 1 // the entry that brought us here is already counted

	us := sb.b.uops
	i := e.Uop
	u := &us[i]
	switch e.Kind {
	case tier2.ExitEnd:
		v.eip = e.Target
		if c := sb.taken; c != nil {
			return c, nil
		}
		return v.chainTo(&sb.taken, e.Target)
	case tier2.ExitJccTaken:
		sb.takenCnt++
		v.eip = e.Target
		if c := sb.taken; c != nil {
			return c, nil
		}
		return v.chainTo(&sb.taken, e.Target)
	case tier2.ExitJccFall:
		sb.fallCnt++
		v.eip = e.Target
		if c := sb.fall; c != nil {
			return c, nil
		}
		return v.chainTo(&sb.fall, e.Target)
	case tier2.ExitJccLazy:
		// Native-backend plain Jcc terminator: the condition reads the
		// lazily-recorded flags, which have just been synced back, so
		// the tier-1 evaluator picks the edge (and counts any flag
		// materialization in the VM's own stat).
		if v.ucond(x86.CC(u.Sub)) {
			sb.takenCnt++
			v.eip = u.Target
			if c := sb.taken; c != nil {
				return c, nil
			}
			return v.chainTo(&sb.taken, u.Target)
		}
		sb.fallCnt++
		v.eip = u.Next
		if c := sb.fall; c != nil {
			return c, nil
		}
		return v.chainTo(&sb.fall, u.Next)
	case tier2.ExitInd:
		target := m.ExitTarget
		v.eip = target
		return v.indirect(sb, target)
	case tier2.ExitGuard:
		v.eip = u.Target
		return v.guardExit(sb, us, i, u)
	case tier2.ExitRetGuard:
		target := m.ExitTarget
		v.eip = target
		return v.retGuardExit(sb, us, i, u, target)
	case tier2.ExitInt:
		v.eip = u.Next // the guest resumes after the gate
		if u.Imm != 0x80 {
			return nil, v.uopTrap(us, i, &Trap{Kind: TrapSyscall, EIP: u.EIP,
				Msg: "interrupt vector not the VXA syscall gate"})
		}
		if err := v.syscall(); err != nil {
			return nil, v.uopTrap(us, i, err)
		}
		if c := sb.taken; c != nil {
			return c, nil
		}
		return v.chainTo(&sb.taken, u.Next)
	case tier2.ExitReadFault:
		return nil, v.uopTrapN(us, i, e.Started, memTrap(e.EIP, m.TrapAddr))
	case tier2.ExitWriteFault:
		return nil, v.uopTrapN(us, i, e.Started, v.storeTrap(e.EIP, m.TrapAddr, e.Size))
	case tier2.ExitDivide:
		tr := &Trap{Kind: TrapDivide, EIP: e.EIP}
		if m.TrapAux == 1 {
			tr.Msg = "quotient overflow"
		}
		return nil, v.uopTrapN(us, i, e.Started, tr)
	default: // tier2.ExitIllegal
		tr := &Trap{Kind: TrapIllegal, EIP: e.EIP, Msg: "privileged instruction"}
		if m.TrapAux == 1 {
			tr.Msg = "ud2"
		}
		return nil, v.uopTrapN(us, i, e.Started, tr)
	}
}
