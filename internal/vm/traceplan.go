package vm

import (
	"sort"

	"vxa/internal/vm/uop"
)

// TracePlanUop is one micro-op of a superblock trace as the tier-2
// compiler sees it: the (possibly fused) operation, the guest
// instructions it accounts for, and — for guards — the exit-chain slot
// a failure dispatches through.
type TracePlanUop struct {
	Index  int    // position within the trace
	EIP    uint32 // source instruction address
	Kind   string // micro-op mnemonic (fused forms keep their fused name)
	Cost   uint8  // guest instructions this micro-op represents (fuel units)
	Guard  int    // guard exit-chain slot, -1 for non-guards
	Ret    int    // return-guard inline-cache slot, -1 otherwise
	Target uint32 // guard/branch exit target (0 when not a transfer)
}

// TracePlan describes one formed superblock and what tier-2 made of
// it: the fused micro-op sequence, the per-trace fuel cost, the guard
// and return-slot geometry, and which backend (if any) the trace
// compiled to. This is the inspection surface behind `vxdump -t2`.
type TracePlan struct {
	Entry   uint32 // guest entry address
	Cost    int64  // fuel charged per full trace iteration
	NUops   int
	Guards  int // conditional guard exits (chain slots)
	Rets    int // return guards (inline-cache slots)
	Backend string
	Uops    []TracePlanUop
}

// TracePlans returns the tier-2 trace plan of every superblock the VM
// has formed, sorted by entry address. Superblocks not yet promoted are
// compiled on the spot (unless tier-2 is disabled), so the dump shows
// the plan a hot run would execute; a plan whose Backend is "tier1"
// contains a micro-op the compiler bails on and runs on the dispatch
// loop forever.
func (v *VM) TracePlans() []TracePlan {
	var plans []TracePlan
	for _, br := range v.blocks {
		sb := br.sb
		if sb == nil {
			continue
		}
		if !sb.t2Tried && !v.noT2 {
			v.compileTier2(sb)
		}
		backend := "tier1"
		switch {
		case v.noT2 && sb.t2 == nil:
			backend = "disabled"
		case sb.t2 != nil && sb.t2.Native():
			backend = "native"
		case sb.t2 != nil:
			backend = "closure"
		}
		us := sb.b.uops
		p := TracePlan{
			Entry:   us[0].EIP,
			Cost:    sb.b.cost,
			NUops:   len(us),
			Guards:  len(sb.sbChains),
			Rets:    len(sb.sbInd),
			Backend: backend,
			Uops:    make([]TracePlanUop, len(us)),
		}
		for i := range us {
			u := &us[i]
			pu := TracePlanUop{Index: i, EIP: u.EIP, Kind: u.Kind.String(),
				Cost: u.Cost, Guard: -1, Ret: -1}
			switch {
			case sbGuardKind(u.Kind):
				pu.Guard = int(u.Aux)
				pu.Target = u.Target
			case u.Kind == uop.KindRetGuard:
				pu.Ret = int(u.Aux)
			case u.Target != 0:
				pu.Target = u.Target
			}
			p.Uops[i] = pu
		}
		plans = append(plans, p)
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].Entry < plans[j].Entry })
	return plans
}
