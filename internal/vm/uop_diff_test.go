package vm

import (
	"bytes"
	"math/rand"
	"testing"

	"vxa/internal/x86"
)

// These are the differential tests for the micro-op translation engine:
// every instruction shape the lowering pass specializes (and several it
// routes through the generic escape) is executed on both engines — the
// uop engine with lazy flags, and the reference exec interpreter with
// eager flags — from identical randomized register/flag/memory states,
// and the full architectural outcome (registers, all five flags
// materialized bit-for-bit, memory) must agree. The randomized operand
// tables cover the AH/CH/DH/BH partial-register paths and the
// carry-consuming ADC/SBB/INC/DEC cases explicitly.

const (
	diffCode = PageSize            // where the instruction under test is placed
	diffData = PageSize + PageSize // scratch data page for memory operands
)

// diffVM builds a VM with a writable two-page region covering the code
// and data areas used by the differential tests.
func diffVM(t *testing.T) *VM {
	t.Helper()
	v, err := New(Config{MemSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.MapSegment(PageSize, make([]byte, 2*PageSize), 2*PageSize, false); err != nil {
		t.Fatal(err)
	}
	return v
}

// seedState randomizes one architectural state and mirrors it onto both
// VMs: registers, eager flags, and the data page.
func seedState(t *testing.T, rng *rand.Rand, v1, v2 *VM) {
	t.Helper()
	for r := 0; r < 8; r++ {
		val := rng.Uint32()
		if x86.Reg(r) == x86.ESP {
			val = v1.MemSize() - 16 // keep the stack usable
		}
		v1.regs[r] = val
		v2.regs[r] = val
	}
	cf, zf, sf, of, pf := rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0
	v1.cf, v1.zf, v1.sf, v1.of, v1.pf = cf, zf, sf, of, pf
	v2.cf, v2.zf, v2.sf, v2.of, v2.pf = cf, zf, sf, of, pf
	v1.fl.Op = 0 // FlagNone: the seeded bools are authoritative
	v2.fl.Op = 0
	data := make([]byte, 64)
	rng.Read(data)
	copy(v1.mem[diffData:], data)
	copy(v2.mem[diffData:], data)
}

// diffRun executes inst on both engines: v1 through lowering and the uop
// executor (followed by a UD2 so the block terminates), v2 on the
// reference interpreter. It returns the non-UD2 error from each engine.
func diffRun(t *testing.T, v1, v2 *VM, inst x86.Inst) (err1, err2 error) {
	t.Helper()
	enc, err := x86.Encode(inst)
	if err != nil {
		t.Fatalf("encode %v: %v", inst, err)
	}
	code := append(append([]byte{}, enc...), 0x0F, 0x0B) // inst; ud2
	copy(v1.mem[diffCode:], code)
	copy(v2.mem[diffCode:], code)

	// The uop engine: translate the tiny block fresh (the code bytes
	// change between trials, so never reuse the cache) and run it.
	v1.blocks = make(map[uint32]*bref)
	v1.eip = diffCode
	br, err := v1.lookupBlock(diffCode)
	if err != nil {
		t.Fatalf("lookupBlock %v: %v", inst, err)
	}
	err1 = v1.execUops(br)
	if tr, ok := err1.(*Trap); ok && tr.Kind == TrapIllegal && tr.EIP == diffCode+uint32(len(enc)) {
		err1 = nil // the terminating UD2, as planned
	}
	v1.materializeFlags()

	// The reference engine.
	decoded, err := x86.Decode(code)
	if err != nil {
		t.Fatalf("decode %v: %v", inst, err)
	}
	err2 = v2.exec(&decoded, diffCode)
	return err1, err2
}

// diffCompare asserts both engines produced the same architectural state.
func diffCompare(t *testing.T, v1, v2 *VM, inst x86.Inst, trial int) {
	t.Helper()
	for r := 0; r < 8; r++ {
		if v1.regs[r] != v2.regs[r] {
			t.Fatalf("trial %d %v: %s = %#x (uop) vs %#x (ref)",
				trial, inst, x86.Reg(r), v1.regs[r], v2.regs[r])
		}
	}
	if v1.cf != v2.cf || v1.zf != v2.zf || v1.sf != v2.sf || v1.of != v2.of || v1.pf != v2.pf {
		t.Fatalf("trial %d %v: flags cf=%v zf=%v sf=%v of=%v pf=%v (uop) vs cf=%v zf=%v sf=%v of=%v pf=%v (ref)",
			trial, inst, v1.cf, v1.zf, v1.sf, v1.of, v1.pf, v2.cf, v2.zf, v2.sf, v2.of, v2.pf)
	}
	if !bytes.Equal(v1.mem[diffData:diffData+64], v2.mem[diffData:diffData+64]) {
		t.Fatalf("trial %d %v: data page diverged", trial, inst)
	}
}

// diffTrials runs n randomized trials of the instructions gen produces.
func diffTrials(t *testing.T, seed int64, n int, gen func(rng *rand.Rand) x86.Inst) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v1 := diffVM(t)
	v2 := diffVM(t)
	for trial := 0; trial < n; trial++ {
		seedState(t, rng, v1, v2)
		inst := gen(rng)
		err1, err2 := diffRun(t, v1, v2, inst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d %v: uop err=%v, ref err=%v", trial, inst, err1, err2)
		}
		diffCompare(t, v1, v2, inst, trial)
	}
}

// memArg returns a memory operand of the given width inside the data
// page, addressed through a register so the EA path is exercised.
func memArg(rng *rand.Rand, v1, v2 *VM, size uint8) x86.Arg {
	off := int32(rng.Intn(48))
	v1.regs[x86.ESI] = diffData
	v2.regs[x86.ESI] = diffData
	return x86.MSIB(x86.ESI, x86.NoReg, 1, off, size)
}

var diffALUOps = []x86.Op{
	x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR, x86.CMP, x86.TEST,
}

func TestDiffALU32(t *testing.T) {
	diffTrials(t, 1, 4000, func(rng *rand.Rand) x86.Inst {
		op := diffALUOps[rng.Intn(len(diffALUOps))]
		dst := x86.R(x86.Reg(rng.Intn(4))) // keep off ESP/ESI
		switch rng.Intn(3) {
		case 0:
			return x86.Inst{Op: op, Dst: dst, Src: x86.R(x86.Reg(rng.Intn(4)))}
		case 1:
			return x86.Inst{Op: op, Dst: dst, Src: x86.I(int32(rng.Uint32()))}
		default:
			// Interesting boundary immediates.
			picks := []int32{0, 1, -1, 0x7FFFFFFF, -0x80000000, 0x80}
			return x86.Inst{Op: op, Dst: dst, Src: x86.I(picks[rng.Intn(len(picks))])}
		}
	})
}

// TestDiffALU8 covers the byte forms, including the AH/CH/DH/BH
// partial-register slots on both operands.
func TestDiffALU8(t *testing.T) {
	diffTrials(t, 2, 4000, func(rng *rand.Rand) x86.Inst {
		op := diffALUOps[rng.Intn(len(diffALUOps))]
		dst := x86.R8(x86.Reg(rng.Intn(8))) // AL..BL and AH..BH
		if rng.Intn(2) == 0 {
			return x86.Inst{Op: op, Dst: dst, Src: x86.R8(x86.Reg(rng.Intn(8)))}
		}
		return x86.Inst{Op: op, Dst: dst, Src: x86.I8(int8(rng.Intn(256)))}
	})
}

func TestDiffALUMem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v1 := diffVM(t)
	v2 := diffVM(t)
	for trial := 0; trial < 3000; trial++ {
		seedState(t, rng, v1, v2)
		op := diffALUOps[rng.Intn(len(diffALUOps))]
		size := uint8(4)
		if rng.Intn(2) == 0 {
			size = 1
		}
		m := memArg(rng, v1, v2, size)
		var inst x86.Inst
		form := rng.Intn(3)
		if op == x86.TEST && form == 0 {
			form = 1 // TEST has no reg←mem encoding
		}
		switch form {
		case 0: // reg op= mem
			if size == 4 {
				inst = x86.Inst{Op: op, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: m}
			} else {
				inst = x86.Inst{Op: op, Dst: x86.R8(x86.Reg(rng.Intn(8))), Src: m}
			}
		case 1: // mem op= reg
			if size == 4 {
				inst = x86.Inst{Op: op, Dst: m, Src: x86.R(x86.Reg(rng.Intn(4)))}
			} else {
				inst = x86.Inst{Op: op, Dst: m, Src: x86.R8(x86.Reg(rng.Intn(8)))}
			}
		default: // mem op= imm
			if size == 4 {
				inst = x86.Inst{Op: op, Dst: m, Src: x86.I(int32(rng.Uint32()))}
			} else {
				inst = x86.Inst{Op: op, Dst: m, Src: x86.Arg{Kind: x86.KindImm, Imm: int32(rng.Intn(256)), Size: 1}}
			}
		}
		err1, err2 := diffRun(t, v1, v2, inst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d %v: uop err=%v, ref err=%v", trial, inst, err1, err2)
		}
		diffCompare(t, v1, v2, inst, trial)
	}
}

// TestDiffShifts covers SHL/SHR/SAR by immediate (including zero counts,
// which must leave every flag untouched) and by CL, plus the rotates
// that ride the generic escape.
func TestDiffShifts(t *testing.T) {
	ops := []x86.Op{x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR}
	diffTrials(t, 4, 5000, func(rng *rand.Rand) x86.Inst {
		op := ops[rng.Intn(len(ops))]
		dst := x86.R(x86.Reg(rng.Intn(4)))
		if rng.Intn(2) == 0 {
			count := int32(rng.Intn(40)) & 31 // the decoder masks to 5 bits
			return x86.Inst{Op: op, Dst: dst, Src: x86.Arg{Kind: x86.KindImm, Imm: count, Size: 1}}
		}
		// Shift by CL; ECX was randomized by seedState, so counts of 0,
		// small, 31 and >=32 (mod behaviour) all occur.
		return x86.Inst{Op: op, Dst: dst, Src: x86.R8(x86.ECX)}
	})
}

// TestDiffUnary covers NEG/NOT/INC/DEC across register, byte-register
// and memory destinations (the latter two take the generic escape).
func TestDiffUnary(t *testing.T) {
	ops := []x86.Op{x86.NEG, x86.NOT, x86.INC, x86.DEC}
	rng := rand.New(rand.NewSource(5))
	v1 := diffVM(t)
	v2 := diffVM(t)
	for trial := 0; trial < 3000; trial++ {
		seedState(t, rng, v1, v2)
		op := ops[rng.Intn(len(ops))]
		var inst x86.Inst
		switch rng.Intn(3) {
		case 0:
			inst = x86.Inst{Op: op, Dst: x86.R(x86.Reg(rng.Intn(4)))}
		case 1:
			inst = x86.Inst{Op: op, Dst: x86.R8(x86.Reg(rng.Intn(8)))}
		default:
			inst = x86.Inst{Op: op, Dst: memArg(rng, v1, v2, 4)}
		}
		err1, err2 := diffRun(t, v1, v2, inst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d %v: uop err=%v, ref err=%v", trial, inst, err1, err2)
		}
		diffCompare(t, v1, v2, inst, trial)
	}
}

// TestDiffMulWide covers the IMUL forms and the widening MUL/IMUL.
func TestDiffMulWide(t *testing.T) {
	diffTrials(t, 6, 3000, func(rng *rand.Rand) x86.Inst {
		switch rng.Intn(4) {
		case 0:
			return x86.Inst{Op: x86.IMUL, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: x86.R(x86.Reg(rng.Intn(4)))}
		case 1:
			return x86.Inst{Op: x86.IMUL, Dst: x86.R(x86.Reg(rng.Intn(4))),
				Src: x86.R(x86.Reg(rng.Intn(4))), Aux: x86.I(int32(rng.Uint32()))}
		case 2:
			return x86.Inst{Op: x86.MUL1, Dst: x86.R(x86.Reg(rng.Intn(4)))}
		default:
			return x86.Inst{Op: x86.IMUL1, Dst: x86.R(x86.Reg(rng.Intn(4)))}
		}
	})
}

// TestDiffMovExtSetcc covers the move/widening/setcc handlers, whose
// results depend on the partial-register slots and lazily evaluated
// conditions.
func TestDiffMovExtSetcc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v1 := diffVM(t)
	v2 := diffVM(t)
	for trial := 0; trial < 4000; trial++ {
		seedState(t, rng, v1, v2)
		var inst x86.Inst
		switch rng.Intn(8) {
		case 0:
			inst = x86.Inst{Op: x86.MOV, Dst: x86.R8(x86.Reg(rng.Intn(8))), Src: x86.R8(x86.Reg(rng.Intn(8)))}
		case 1:
			inst = x86.Inst{Op: x86.MOV, Dst: x86.R8(x86.Reg(rng.Intn(8))), Src: memArg(rng, v1, v2, 1)}
		case 2:
			inst = x86.Inst{Op: x86.MOV, Dst: memArg(rng, v1, v2, 1), Src: x86.R8(x86.Reg(rng.Intn(8)))}
		case 3:
			inst = x86.Inst{Op: x86.MOVZX, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: x86.R8(x86.Reg(rng.Intn(8)))}
		case 4:
			inst = x86.Inst{Op: x86.MOVSX, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: x86.R8(x86.Reg(rng.Intn(8)))}
		case 5:
			inst = x86.Inst{Op: x86.MOVZX, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: memArg(rng, v1, v2, 2)}
		case 6:
			inst = x86.Inst{Op: x86.MOVSX, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: memArg(rng, v1, v2, 2)}
		default:
			inst = x86.Inst{Op: x86.SETCC, CC: x86.CC(rng.Intn(16)), Dst: x86.R8(x86.Reg(rng.Intn(8)))}
		}
		err1, err2 := diffRun(t, v1, v2, inst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d %v: uop err=%v, ref err=%v", trial, inst, err1, err2)
		}
		diffCompare(t, v1, v2, inst, trial)
	}
}

// TestDiffCondAfterLazyOp pins the lazy condition evaluator: after a
// random flag-writing instruction runs on the uop engine (leaving a lazy
// record) and on the reference engine (eager flags), every one of the 16
// condition codes must evaluate identically — without materializing the
// record.
func TestDiffCondAfterLazyOp(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v1 := diffVM(t)
	v2 := diffVM(t)
	flagOps := []x86.Op{x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.XOR,
		x86.CMP, x86.TEST, x86.SHL, x86.SHR, x86.SAR, x86.INC, x86.DEC, x86.NEG}
	for trial := 0; trial < 3000; trial++ {
		seedState(t, rng, v1, v2)
		op := flagOps[rng.Intn(len(flagOps))]
		var inst x86.Inst
		switch op {
		case x86.INC, x86.DEC, x86.NEG:
			inst = x86.Inst{Op: op, Dst: x86.R(x86.Reg(rng.Intn(4)))}
		case x86.SHL, x86.SHR, x86.SAR:
			inst = x86.Inst{Op: op, Dst: x86.R(x86.Reg(rng.Intn(4))),
				Src: x86.Arg{Kind: x86.KindImm, Imm: int32(rng.Intn(32)), Size: 1}}
		default:
			if rng.Intn(2) == 0 {
				inst = x86.Inst{Op: op, Dst: x86.R8(x86.Reg(rng.Intn(8))), Src: x86.R8(x86.Reg(rng.Intn(8)))}
			} else {
				inst = x86.Inst{Op: op, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: x86.R(x86.Reg(rng.Intn(4)))}
			}
		}
		enc, err := x86.Encode(inst)
		if err != nil {
			t.Fatalf("encode %v: %v", inst, err)
		}
		code := append(append([]byte{}, enc...), 0x0F, 0x0B)
		copy(v1.mem[diffCode:], code)
		copy(v2.mem[diffCode:], code)
		v1.blocks = make(map[uint32]*bref)
		br, err := v1.lookupBlock(diffCode)
		if err != nil {
			t.Fatal(err)
		}
		_ = v1.execUops(br) // ends at the ud2; the lazy record survives
		decoded, err := x86.Decode(code)
		if err != nil {
			t.Fatal(err)
		}
		if err := v2.exec(&decoded, diffCode); err != nil {
			t.Fatal(err)
		}
		for cc := x86.CC(0); cc < 16; cc++ {
			if got, want := v1.ucond(cc), v2.cond(cc); got != want {
				t.Fatalf("trial %d %v: cond %v = %v (lazy) vs %v (eager)", trial, inst, cc, got, want)
			}
		}
	}
}
