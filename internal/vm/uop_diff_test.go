package vm

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"vxa/internal/vm/tier2"
	"vxa/internal/x86"
)

// These are the differential tests for the micro-op translation engine:
// every instruction shape the lowering pass specializes (and several it
// routes through the generic escape) is executed on both engines — the
// uop engine with lazy flags, and the reference exec interpreter with
// eager flags — from identical randomized register/flag/memory states,
// and the full architectural outcome (registers, all five flags
// materialized bit-for-bit, memory) must agree. The randomized operand
// tables cover the AH/CH/DH/BH partial-register paths and the
// carry-consuming ADC/SBB/INC/DEC cases explicitly.

const (
	diffCode = PageSize            // where the instruction under test is placed
	diffData = PageSize + PageSize // scratch data page for memory operands
)

// diffVM builds a VM with a writable two-page region covering the code
// and data areas used by the differential tests.
func diffVM(t *testing.T) *VM {
	t.Helper()
	v, err := New(Config{MemSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.MapSegment(PageSize, make([]byte, 2*PageSize), 2*PageSize, false); err != nil {
		t.Fatal(err)
	}
	return v
}

// seedState randomizes one architectural state and mirrors it onto both
// VMs: registers, eager flags, and the data page.
func seedState(t *testing.T, rng *rand.Rand, v1, v2 *VM) {
	t.Helper()
	for r := 0; r < 8; r++ {
		val := rng.Uint32()
		if x86.Reg(r) == x86.ESP {
			val = v1.MemSize() - 16 // keep the stack usable
		}
		v1.regs[r] = val
		v2.regs[r] = val
	}
	cf, zf, sf, of, pf := rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0
	v1.cf, v1.zf, v1.sf, v1.of, v1.pf = cf, zf, sf, of, pf
	v2.cf, v2.zf, v2.sf, v2.of, v2.pf = cf, zf, sf, of, pf
	v1.fl.Op = 0 // FlagNone: the seeded bools are authoritative
	v2.fl.Op = 0
	data := make([]byte, 64)
	rng.Read(data)
	copy(v1.mem[diffData:], data)
	copy(v2.mem[diffData:], data)
}

// diffRun executes inst on both engines: v1 through lowering and the uop
// executor (followed by a UD2 so the block terminates), v2 on the
// reference interpreter. It returns the non-UD2 error from each engine.
func diffRun(t *testing.T, v1, v2 *VM, inst x86.Inst) (err1, err2 error) {
	t.Helper()
	enc, err := x86.Encode(inst)
	if err != nil {
		t.Fatalf("encode %v: %v", inst, err)
	}
	code := append(append([]byte{}, enc...), 0x0F, 0x0B) // inst; ud2
	copy(v1.mem[diffCode:], code)
	copy(v2.mem[diffCode:], code)

	// The uop engine: translate the tiny block fresh (the code bytes
	// change between trials, so never reuse the cache) and run it.
	v1.blocks = make(map[uint32]*bref)
	v1.eip = diffCode
	br, err := v1.lookupBlock(diffCode)
	if err != nil {
		t.Fatalf("lookupBlock %v: %v", inst, err)
	}
	err1 = v1.execUops(br)
	if tr, ok := err1.(*Trap); ok && tr.Kind == TrapIllegal && tr.EIP == diffCode+uint32(len(enc)) {
		err1 = nil // the terminating UD2, as planned
	}
	v1.materializeFlags()

	// The reference engine.
	decoded, err := x86.Decode(code)
	if err != nil {
		t.Fatalf("decode %v: %v", inst, err)
	}
	err2 = v2.exec(&decoded, diffCode)
	return err1, err2
}

// diffCompare asserts both engines produced the same architectural state.
func diffCompare(t *testing.T, v1, v2 *VM, inst x86.Inst, trial int) {
	t.Helper()
	for r := 0; r < 8; r++ {
		if v1.regs[r] != v2.regs[r] {
			t.Fatalf("trial %d %v: %s = %#x (uop) vs %#x (ref)",
				trial, inst, x86.Reg(r), v1.regs[r], v2.regs[r])
		}
	}
	if v1.cf != v2.cf || v1.zf != v2.zf || v1.sf != v2.sf || v1.of != v2.of || v1.pf != v2.pf {
		t.Fatalf("trial %d %v: flags cf=%v zf=%v sf=%v of=%v pf=%v (uop) vs cf=%v zf=%v sf=%v of=%v pf=%v (ref)",
			trial, inst, v1.cf, v1.zf, v1.sf, v1.of, v1.pf, v2.cf, v2.zf, v2.sf, v2.of, v2.pf)
	}
	if !bytes.Equal(v1.mem[diffData:diffData+64], v2.mem[diffData:diffData+64]) {
		t.Fatalf("trial %d %v: data page diverged", trial, inst)
	}
}

// diffTrials runs n randomized trials of the instructions gen produces.
func diffTrials(t *testing.T, seed int64, n int, gen func(rng *rand.Rand) x86.Inst) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v1 := diffVM(t)
	v2 := diffVM(t)
	for trial := 0; trial < n; trial++ {
		seedState(t, rng, v1, v2)
		inst := gen(rng)
		err1, err2 := diffRun(t, v1, v2, inst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d %v: uop err=%v, ref err=%v", trial, inst, err1, err2)
		}
		diffCompare(t, v1, v2, inst, trial)
	}
}

// memArg returns a memory operand of the given width inside the data
// page, addressed through a register so the EA path is exercised.
func memArg(rng *rand.Rand, v1, v2 *VM, size uint8) x86.Arg {
	off := int32(rng.Intn(48))
	v1.regs[x86.ESI] = diffData
	v2.regs[x86.ESI] = diffData
	return x86.MSIB(x86.ESI, x86.NoReg, 1, off, size)
}

var diffALUOps = []x86.Op{
	x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR, x86.CMP, x86.TEST,
}

func TestDiffALU32(t *testing.T) {
	diffTrials(t, 1, 4000, func(rng *rand.Rand) x86.Inst {
		op := diffALUOps[rng.Intn(len(diffALUOps))]
		dst := x86.R(x86.Reg(rng.Intn(4))) // keep off ESP/ESI
		switch rng.Intn(3) {
		case 0:
			return x86.Inst{Op: op, Dst: dst, Src: x86.R(x86.Reg(rng.Intn(4)))}
		case 1:
			return x86.Inst{Op: op, Dst: dst, Src: x86.I(int32(rng.Uint32()))}
		default:
			// Interesting boundary immediates.
			picks := []int32{0, 1, -1, 0x7FFFFFFF, -0x80000000, 0x80}
			return x86.Inst{Op: op, Dst: dst, Src: x86.I(picks[rng.Intn(len(picks))])}
		}
	})
}

// TestDiffALU8 covers the byte forms, including the AH/CH/DH/BH
// partial-register slots on both operands.
func TestDiffALU8(t *testing.T) {
	diffTrials(t, 2, 4000, func(rng *rand.Rand) x86.Inst {
		op := diffALUOps[rng.Intn(len(diffALUOps))]
		dst := x86.R8(x86.Reg(rng.Intn(8))) // AL..BL and AH..BH
		if rng.Intn(2) == 0 {
			return x86.Inst{Op: op, Dst: dst, Src: x86.R8(x86.Reg(rng.Intn(8)))}
		}
		return x86.Inst{Op: op, Dst: dst, Src: x86.I8(int8(rng.Intn(256)))}
	})
}

func TestDiffALUMem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v1 := diffVM(t)
	v2 := diffVM(t)
	for trial := 0; trial < 3000; trial++ {
		seedState(t, rng, v1, v2)
		op := diffALUOps[rng.Intn(len(diffALUOps))]
		size := uint8(4)
		if rng.Intn(2) == 0 {
			size = 1
		}
		m := memArg(rng, v1, v2, size)
		var inst x86.Inst
		form := rng.Intn(3)
		if op == x86.TEST && form == 0 {
			form = 1 // TEST has no reg←mem encoding
		}
		switch form {
		case 0: // reg op= mem
			if size == 4 {
				inst = x86.Inst{Op: op, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: m}
			} else {
				inst = x86.Inst{Op: op, Dst: x86.R8(x86.Reg(rng.Intn(8))), Src: m}
			}
		case 1: // mem op= reg
			if size == 4 {
				inst = x86.Inst{Op: op, Dst: m, Src: x86.R(x86.Reg(rng.Intn(4)))}
			} else {
				inst = x86.Inst{Op: op, Dst: m, Src: x86.R8(x86.Reg(rng.Intn(8)))}
			}
		default: // mem op= imm
			if size == 4 {
				inst = x86.Inst{Op: op, Dst: m, Src: x86.I(int32(rng.Uint32()))}
			} else {
				inst = x86.Inst{Op: op, Dst: m, Src: x86.Arg{Kind: x86.KindImm, Imm: int32(rng.Intn(256)), Size: 1}}
			}
		}
		err1, err2 := diffRun(t, v1, v2, inst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d %v: uop err=%v, ref err=%v", trial, inst, err1, err2)
		}
		diffCompare(t, v1, v2, inst, trial)
	}
}

// TestDiffShifts covers SHL/SHR/SAR by immediate (including zero counts,
// which must leave every flag untouched) and by CL, plus the rotates
// that ride the generic escape.
func TestDiffShifts(t *testing.T) {
	ops := []x86.Op{x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR}
	diffTrials(t, 4, 5000, func(rng *rand.Rand) x86.Inst {
		op := ops[rng.Intn(len(ops))]
		dst := x86.R(x86.Reg(rng.Intn(4)))
		if rng.Intn(2) == 0 {
			count := int32(rng.Intn(40)) & 31 // the decoder masks to 5 bits
			return x86.Inst{Op: op, Dst: dst, Src: x86.Arg{Kind: x86.KindImm, Imm: count, Size: 1}}
		}
		// Shift by CL; ECX was randomized by seedState, so counts of 0,
		// small, 31 and >=32 (mod behaviour) all occur.
		return x86.Inst{Op: op, Dst: dst, Src: x86.R8(x86.ECX)}
	})
}

// TestDiffUnary covers NEG/NOT/INC/DEC across register, byte-register
// and memory destinations (the latter two take the generic escape).
func TestDiffUnary(t *testing.T) {
	ops := []x86.Op{x86.NEG, x86.NOT, x86.INC, x86.DEC}
	rng := rand.New(rand.NewSource(5))
	v1 := diffVM(t)
	v2 := diffVM(t)
	for trial := 0; trial < 3000; trial++ {
		seedState(t, rng, v1, v2)
		op := ops[rng.Intn(len(ops))]
		var inst x86.Inst
		switch rng.Intn(3) {
		case 0:
			inst = x86.Inst{Op: op, Dst: x86.R(x86.Reg(rng.Intn(4)))}
		case 1:
			inst = x86.Inst{Op: op, Dst: x86.R8(x86.Reg(rng.Intn(8)))}
		default:
			inst = x86.Inst{Op: op, Dst: memArg(rng, v1, v2, 4)}
		}
		err1, err2 := diffRun(t, v1, v2, inst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d %v: uop err=%v, ref err=%v", trial, inst, err1, err2)
		}
		diffCompare(t, v1, v2, inst, trial)
	}
}

// TestDiffMulWide covers the IMUL forms and the widening MUL/IMUL.
func TestDiffMulWide(t *testing.T) {
	diffTrials(t, 6, 3000, func(rng *rand.Rand) x86.Inst {
		switch rng.Intn(4) {
		case 0:
			return x86.Inst{Op: x86.IMUL, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: x86.R(x86.Reg(rng.Intn(4)))}
		case 1:
			return x86.Inst{Op: x86.IMUL, Dst: x86.R(x86.Reg(rng.Intn(4))),
				Src: x86.R(x86.Reg(rng.Intn(4))), Aux: x86.I(int32(rng.Uint32()))}
		case 2:
			return x86.Inst{Op: x86.MUL1, Dst: x86.R(x86.Reg(rng.Intn(4)))}
		default:
			return x86.Inst{Op: x86.IMUL1, Dst: x86.R(x86.Reg(rng.Intn(4)))}
		}
	})
}

// TestDiffMovExtSetcc covers the move/widening/setcc handlers, whose
// results depend on the partial-register slots and lazily evaluated
// conditions.
func TestDiffMovExtSetcc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v1 := diffVM(t)
	v2 := diffVM(t)
	for trial := 0; trial < 4000; trial++ {
		seedState(t, rng, v1, v2)
		var inst x86.Inst
		switch rng.Intn(8) {
		case 0:
			inst = x86.Inst{Op: x86.MOV, Dst: x86.R8(x86.Reg(rng.Intn(8))), Src: x86.R8(x86.Reg(rng.Intn(8)))}
		case 1:
			inst = x86.Inst{Op: x86.MOV, Dst: x86.R8(x86.Reg(rng.Intn(8))), Src: memArg(rng, v1, v2, 1)}
		case 2:
			inst = x86.Inst{Op: x86.MOV, Dst: memArg(rng, v1, v2, 1), Src: x86.R8(x86.Reg(rng.Intn(8)))}
		case 3:
			inst = x86.Inst{Op: x86.MOVZX, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: x86.R8(x86.Reg(rng.Intn(8)))}
		case 4:
			inst = x86.Inst{Op: x86.MOVSX, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: x86.R8(x86.Reg(rng.Intn(8)))}
		case 5:
			inst = x86.Inst{Op: x86.MOVZX, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: memArg(rng, v1, v2, 2)}
		case 6:
			inst = x86.Inst{Op: x86.MOVSX, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: memArg(rng, v1, v2, 2)}
		default:
			inst = x86.Inst{Op: x86.SETCC, CC: x86.CC(rng.Intn(16)), Dst: x86.R8(x86.Reg(rng.Intn(8)))}
		}
		err1, err2 := diffRun(t, v1, v2, inst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d %v: uop err=%v, ref err=%v", trial, inst, err1, err2)
		}
		diffCompare(t, v1, v2, inst, trial)
	}
}

// TestDiffCondAfterLazyOp pins the lazy condition evaluator: after a
// random flag-writing instruction runs on the uop engine (leaving a lazy
// record) and on the reference engine (eager flags), every one of the 16
// condition codes must evaluate identically — without materializing the
// record.
func TestDiffCondAfterLazyOp(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v1 := diffVM(t)
	v2 := diffVM(t)
	flagOps := []x86.Op{x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.XOR,
		x86.CMP, x86.TEST, x86.SHL, x86.SHR, x86.SAR, x86.INC, x86.DEC, x86.NEG}
	for trial := 0; trial < 3000; trial++ {
		seedState(t, rng, v1, v2)
		op := flagOps[rng.Intn(len(flagOps))]
		var inst x86.Inst
		switch op {
		case x86.INC, x86.DEC, x86.NEG:
			inst = x86.Inst{Op: op, Dst: x86.R(x86.Reg(rng.Intn(4)))}
		case x86.SHL, x86.SHR, x86.SAR:
			inst = x86.Inst{Op: op, Dst: x86.R(x86.Reg(rng.Intn(4))),
				Src: x86.Arg{Kind: x86.KindImm, Imm: int32(rng.Intn(32)), Size: 1}}
		default:
			if rng.Intn(2) == 0 {
				inst = x86.Inst{Op: op, Dst: x86.R8(x86.Reg(rng.Intn(8))), Src: x86.R8(x86.Reg(rng.Intn(8)))}
			} else {
				inst = x86.Inst{Op: op, Dst: x86.R(x86.Reg(rng.Intn(4))), Src: x86.R(x86.Reg(rng.Intn(4)))}
			}
		}
		enc, err := x86.Encode(inst)
		if err != nil {
			t.Fatalf("encode %v: %v", inst, err)
		}
		code := append(append([]byte{}, enc...), 0x0F, 0x0B)
		copy(v1.mem[diffCode:], code)
		copy(v2.mem[diffCode:], code)
		v1.blocks = make(map[uint32]*bref)
		br, err := v1.lookupBlock(diffCode)
		if err != nil {
			t.Fatal(err)
		}
		_ = v1.execUops(br) // ends at the ud2; the lazy record survives
		decoded, err := x86.Decode(code)
		if err != nil {
			t.Fatal(err)
		}
		if err := v2.exec(&decoded, diffCode); err != nil {
			t.Fatal(err)
		}
		for cc := x86.CC(0); cc < 16; cc++ {
			if got, want := v1.ucond(cc), v2.cond(cc); got != want {
				t.Fatalf("trial %d %v: cond %v = %v (lazy) vs %v (eager)", trial, inst, cc, got, want)
			}
		}
	}
}

// TestDiffFusedPairTraps pins the trap behavior of the fused data-
// movement pairs: when the second constituent instruction faults, the
// first must be architecturally committed, the trap must report the
// second instruction's EIP, and the fuel charge must match the
// reference engine's charge-before-execute discipline exactly.
func TestDiffFusedPairTraps(t *testing.T) {
	const fuel = 100
	type pairCase struct {
		name  string
		insts []x86.Inst
		setup func(v *VM)
	}
	badStack := func(v *VM) { v.regs[x86.ESP] = 0x10 } // below the first page
	cases := []pairCase{
		{"push-load", []x86.Inst{
			{Op: x86.PUSH, Dst: x86.R(x86.EAX)},
			{Op: x86.MOV, Dst: x86.R(x86.EDX), Src: x86.MSIB(x86.ECX, x86.NoReg, 1, 0, 4)},
		}, func(v *VM) { v.regs[x86.ECX] = 0x10 }},
		{"mov-load", []x86.Inst{
			{Op: x86.MOV, Dst: x86.R(x86.EBX), Src: x86.R(x86.EAX)},
			{Op: x86.MOV, Dst: x86.R(x86.EDX), Src: x86.MSIB(x86.ECX, x86.NoReg, 1, 0, 4)},
		}, func(v *VM) { v.regs[x86.ECX] = 0x10 }},
		{"load-push", []x86.Inst{
			{Op: x86.MOV, Dst: x86.R(x86.EDX), Src: x86.MSIB(x86.ESI, x86.NoReg, 1, 0, 4)},
			{Op: x86.PUSH, Dst: x86.R(x86.EDX)},
		}, badStack},
		{"mov-pop", []x86.Inst{
			{Op: x86.MOV, Dst: x86.R(x86.ECX), Src: x86.R(x86.EAX)},
			{Op: x86.POP, Dst: x86.R(x86.EDX)},
		}, badStack},
		{"mov-pop-alu", []x86.Inst{
			{Op: x86.MOV, Dst: x86.R(x86.ECX), Src: x86.R(x86.EAX)},
			{Op: x86.POP, Dst: x86.R(x86.EAX)},
			{Op: x86.ADD, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)},
		}, badStack},
		{"pop-store", []x86.Inst{
			{Op: x86.POP, Dst: x86.R(x86.EDX)},
			{Op: x86.MOV, Dst: x86.MSIB(x86.ECX, x86.NoReg, 1, 0, 4), Src: x86.R(x86.EAX)},
		}, func(v *VM) { v.regs[x86.ECX] = 0x10 }},
		{"movi-push", []x86.Inst{
			{Op: x86.MOV, Dst: x86.R(x86.EAX), Src: x86.I(42)},
			{Op: x86.PUSH, Dst: x86.R(x86.EBX)},
		}, badStack},
		{"pop-ret", []x86.Inst{
			{Op: x86.POP, Dst: x86.R(x86.EDX)},
			{Op: x86.RET},
		}, func(v *VM) { v.regs[x86.ESP] = v.MemSize() - 4 }}, // pop ok, ret beyond the top
		{"push-call", []x86.Inst{
			{Op: x86.PUSH, Dst: x86.R(x86.EAX)},
			{Op: x86.CALL, Rel: 16},
		}, func(v *VM) { v.regs[x86.ESP] = v.stackBase + 4 }}, // arg push ok, return push in the guard gap
	}

	rng := rand.New(rand.NewSource(9))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v1 := diffVM(t)
			v2 := diffVM(t)
			seedState(t, rng, v1, v2)
			v1.regs[x86.ESI], v2.regs[x86.ESI] = diffData, diffData
			tc.setup(v1)
			tc.setup(v2)
			v1.fuel, v2.fuel = fuel, fuel

			var code []byte
			for _, inst := range tc.insts {
				enc, err := x86.Encode(inst)
				if err != nil {
					t.Fatal(err)
				}
				code = append(code, enc...)
			}
			code = append(code, 0x0F, 0x0B) // ud2
			copy(v1.mem[diffCode:], code)
			copy(v2.mem[diffCode:], code)

			v1.blocks = make(map[uint32]*bref)
			v1.eip = diffCode
			br, err := v1.lookupBlock(diffCode)
			if err != nil {
				t.Fatal(err)
			}
			err1 := v1.execUops(br)
			v1.materializeFlags()

			v2.eip = diffCode
			refSteps, err2 := refRun(v2, 100)

			tr1, ok1 := err1.(*Trap)
			tr2, ok2 := err2.(*Trap)
			if !ok1 || !ok2 {
				t.Fatalf("no trap: uop %v, ref %v", err1, err2)
			}
			if tr1.Kind != tr2.Kind || tr1.EIP != tr2.EIP || tr1.Addr != tr2.Addr {
				t.Fatalf("trap diverged: uop %v, ref %v", tr1, tr2)
			}
			for r := 0; r < 8; r++ {
				if v1.regs[r] != v2.regs[r] {
					t.Fatalf("%s = %#x (uop) vs %#x (ref)", x86.Reg(r), v1.regs[r], v2.regs[r])
				}
			}
			// Reference discipline: every started instruction (the
			// faulting one included) costs one fuel.
			if want := int64(fuel - refSteps - 1); v1.fuel != want {
				t.Fatalf("fuel = %d, want %d (ref started %d+1 instructions)", v1.fuel, want, refSteps)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Long-horizon differential soak: whole random programs, not single
// instructions. Each program is a web of basic blocks — conditional
// branches, direct jumps, table-driven indirect jumps, call/return pairs,
// partial-register writes, memory traffic — that runs for >10k guest
// instructions on both engines. Every block opens with a checkpoint
// prologue that the *guest itself* executes: it stores the scratch
// register file and the five SETcc-materialized arithmetic flags into a
// trace region and advances the trace pointer. Comparing the two
// engines' trace regions byte-for-byte therefore compares the full
// observable state at every basic-block boundary, including the lazy
// flag records the uop engine must materialize exactly where the eager
// reference engine already has them.

// Soak program geometry. Registers are role-split: EAX/ECX/EDX are
// random scratch, EBX pins the jump table, ESI is terminator/memory
// scratch, EDI walks the trace, EBP counts down to termination.
const (
	soakSlot      = 192                            // bytes reserved per block
	soakBlocks    = 16                             // block count (power of two: indirect index mask)
	soakFuncs     = 3                              // trailing blocks reachable only via CALL, ending in RET
	soakCode      = PageSize                       // block i sits at soakCode + i*soakSlot
	soakExit      = soakCode + soakBlocks*soakSlot // exit block: a single UD2
	soakTable     = PageSize + 0x2000              // jump table: soakBlocks dwords
	soakData      = soakTable + 0x100              // scratch page for memory operands
	soakTrace     = PageSize + 0x3000              // checkpoint trace region
	soakCkptBytes = 24                             // bytes one checkpoint writes
	soakCountdown = 1200                           // block executions before the guest exits
	soakSpan      = 0x10000                        // mapped guest region: code+table+data+trace
)

// soakEmit appends one encoded instruction at the current address.
type soakEmit struct {
	t   *testing.T
	mem []byte // the whole program image, offset soakCode
	cur uint32
}

func (e *soakEmit) emit(inst x86.Inst) {
	enc, err := x86.Encode(inst)
	if err != nil {
		e.t.Fatalf("soak encode %v: %v", inst, err)
	}
	copy(e.mem[e.cur-soakCode:], enc)
	e.cur += uint32(len(enc))
}

// branch emits a CALL/JMP/JCC with the rel32 displacement resolved
// against the fixed instruction lengths (5, 5 and 6 bytes).
func (e *soakEmit) branch(op x86.Op, cc x86.CC, target uint32) {
	ilen := uint32(5)
	if op == x86.JCC {
		ilen = 6
	}
	e.emit(x86.Inst{Op: op, CC: cc, Rel: int32(target - (e.cur + ilen))})
}

// soakCheckpoint emits the block prologue: dump EAX/ECX/EDX/EBP and the
// five flags (via SETcc, exercising the lazy materializer) to the trace
// cursor, advance it, and count down toward the exit.
func (e *soakEmit) soakCheckpoint() {
	regs := []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBP}
	for i, r := range regs {
		e.emit(x86.Inst{Op: x86.MOV, Dst: x86.MSIB(x86.EDI, x86.NoReg, 1, int32(4*i), 4), Src: x86.R(r)})
	}
	ccs := []x86.CC{x86.CCB, x86.CCE, x86.CCS, x86.CCO, x86.CCP}
	for i, cc := range ccs {
		e.emit(x86.Inst{Op: x86.SETCC, CC: cc, Dst: x86.MSIB(x86.EDI, x86.NoReg, 1, int32(16+i), 1)})
	}
	e.emit(x86.Inst{Op: x86.ADD, Dst: x86.R(x86.EDI), Src: x86.I(soakCkptBytes)})
	e.emit(x86.Inst{Op: x86.DEC, Dst: x86.R(x86.EBP)})
	e.branch(x86.JCC, x86.CCE, soakExit)
}

// soakScratch32 picks a scratch 32-bit register.
func soakScratch32(rng *rand.Rand) x86.Arg {
	return x86.R([]x86.Reg{x86.EAX, x86.ECX, x86.EDX}[rng.Intn(3)])
}

// soakScratch8 picks a scratch byte register, including the high slots.
func soakScratch8(rng *rand.Rand) x86.Arg {
	// AL, CL, DL, AH, CH, DH (EBX is pinned, so BL/BH are off limits).
	return x86.R8([]x86.Reg{0, 1, 2, 4, 5, 6}[rng.Intn(6)])
}

// soakBody emits 2-6 random computation instructions. Memory operands
// go through ESI, re-pointed at the scratch page first.
func (e *soakEmit) soakBody(rng *rand.Rand) {
	aluOps := []x86.Op{x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR, x86.CMP, x86.TEST}
	for n := 2 + rng.Intn(5); n > 0; n-- {
		switch rng.Intn(12) {
		case 0:
			e.emit(x86.Inst{Op: aluOps[rng.Intn(len(aluOps))], Dst: soakScratch32(rng), Src: soakScratch32(rng)})
		case 1:
			e.emit(x86.Inst{Op: aluOps[rng.Intn(len(aluOps))], Dst: soakScratch32(rng), Src: x86.I(int32(rng.Uint32()))})
		case 2: // partial-register traffic
			if rng.Intn(2) == 0 {
				e.emit(x86.Inst{Op: aluOps[rng.Intn(len(aluOps))], Dst: soakScratch8(rng), Src: soakScratch8(rng)})
			} else {
				e.emit(x86.Inst{Op: x86.MOV, Dst: soakScratch8(rng), Src: x86.I8(int8(rng.Intn(256)))})
			}
		case 3:
			ops := []x86.Op{x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR}
			if rng.Intn(2) == 0 {
				e.emit(x86.Inst{Op: ops[rng.Intn(len(ops))], Dst: soakScratch32(rng),
					Src: x86.Arg{Kind: x86.KindImm, Imm: int32(rng.Intn(32)), Size: 1}})
			} else {
				e.emit(x86.Inst{Op: ops[rng.Intn(len(ops))], Dst: soakScratch32(rng), Src: x86.R8(x86.ECX)})
			}
		case 4:
			ops := []x86.Op{x86.INC, x86.DEC, x86.NEG, x86.NOT}
			e.emit(x86.Inst{Op: ops[rng.Intn(len(ops))], Dst: soakScratch32(rng)})
		case 5:
			op := x86.MOVZX
			if rng.Intn(2) == 0 {
				op = x86.MOVSX
			}
			e.emit(x86.Inst{Op: op, Dst: soakScratch32(rng), Src: soakScratch8(rng)})
		case 6:
			e.emit(x86.Inst{Op: x86.IMUL, Dst: soakScratch32(rng), Src: soakScratch32(rng)})
		case 7: // widening multiply / sign extend pair
			if rng.Intn(2) == 0 {
				e.emit(x86.Inst{Op: x86.MUL1, Dst: soakScratch32(rng)})
			} else {
				e.emit(x86.Inst{Op: x86.CDQ})
			}
		case 8: // memory round trip through the scratch page
			off := int32(rng.Intn(32))
			e.emit(x86.Inst{Op: x86.MOV, Dst: x86.R(x86.ESI), Src: x86.I(int32(soakData))})
			if rng.Intn(2) == 0 {
				e.emit(x86.Inst{Op: x86.MOV, Dst: x86.MSIB(x86.ESI, x86.NoReg, 1, off, 4), Src: soakScratch32(rng)})
			} else {
				// TEST has no reg<-mem encoding; the others all do.
				memOps := []x86.Op{x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR, x86.CMP}
				e.emit(x86.Inst{Op: memOps[rng.Intn(len(memOps))], Dst: soakScratch32(rng),
					Src: x86.MSIB(x86.ESI, x86.NoReg, 1, off, 4)})
			}
		case 9: // balanced stack round trip: the movement-pair fusions
			// (push/load, mov-imm/push, mov;pop and the mov;pop;op
			// binary-operation tail — exactly the compiler's idiom).
			e.emit(x86.Inst{Op: x86.PUSH, Dst: soakScratch32(rng)})
			switch rng.Intn(5) {
			case 0: // mov ; pop ; op — the MovPopAlu shape
				e.emit(x86.Inst{Op: x86.MOV, Dst: x86.R(x86.ECX), Src: soakScratch32(rng)})
				e.emit(x86.Inst{Op: x86.POP, Dst: x86.R(x86.EAX)})
				ops := []x86.Op{x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR}
				e.emit(x86.Inst{Op: ops[rng.Intn(len(ops))], Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)})
			case 4: // register-aliased tail: mov rB,rA ; pop rB ; op rB,rB —
				// the pop overwrites the moved value, so any fusion that
				// forwards the pre-pop register here miscomputes
				r := soakScratch32(rng)
				e.emit(x86.Inst{Op: x86.MOV, Dst: r, Src: soakScratch32(rng)})
				e.emit(x86.Inst{Op: x86.POP, Dst: r})
				ops := []x86.Op{x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR}
				e.emit(x86.Inst{Op: ops[rng.Intn(len(ops))], Dst: r, Src: r})
			case 1: // push ; mov imm ; pop
				e.emit(x86.Inst{Op: x86.MOV, Dst: soakScratch32(rng), Src: x86.I(int32(rng.Uint32()))})
				e.emit(x86.Inst{Op: x86.POP, Dst: soakScratch32(rng)})
			case 2: // push ; load ; pop ; store
				e.emit(x86.Inst{Op: x86.MOV, Dst: x86.R(x86.ESI), Src: x86.I(int32(soakData))})
				e.emit(x86.Inst{Op: x86.MOV, Dst: x86.R(x86.EDX), Src: x86.MSIB(x86.ESI, x86.NoReg, 1, int32(rng.Intn(32)), 4)})
				e.emit(x86.Inst{Op: x86.POP, Dst: x86.R(x86.EAX)})
				e.emit(x86.Inst{Op: x86.MOV, Dst: x86.MSIB(x86.ESI, x86.NoReg, 1, int32(rng.Intn(32)), 4), Src: soakScratch32(rng)})
			default: // plain push ; pop pair
				e.emit(x86.Inst{Op: x86.POP, Dst: soakScratch32(rng)})
			}
		case 10: // load ; push (the LoadPush shape)
			e.emit(x86.Inst{Op: x86.MOV, Dst: x86.R(x86.ESI), Src: x86.I(int32(soakData))})
			e.emit(x86.Inst{Op: x86.MOV, Dst: x86.R(x86.EAX), Src: x86.MSIB(x86.ESI, x86.NoReg, 1, int32(rng.Intn(32)), 4)})
			e.emit(x86.Inst{Op: x86.PUSH, Dst: x86.R(x86.EAX)})
			e.emit(x86.Inst{Op: x86.POP, Dst: soakScratch32(rng)})
		case 11: // cmp/test ; setcc ; movzx — the boolean idiom
			if rng.Intn(2) == 0 {
				e.emit(x86.Inst{Op: x86.CMP, Dst: x86.R(x86.EAX), Src: x86.R(x86.ECX)})
			} else {
				e.emit(x86.Inst{Op: x86.TEST, Dst: x86.R(x86.EAX), Src: x86.R(x86.EAX)})
			}
			e.emit(x86.Inst{Op: x86.SETCC, CC: x86.CC(rng.Intn(16)), Dst: x86.R8(x86.EAX)})
			e.emit(x86.Inst{Op: x86.MOVZX, Dst: x86.R(x86.EAX), Src: x86.R8(x86.EAX)})
		default:
			e.emit(x86.Inst{Op: x86.MOV, Dst: soakScratch32(rng), Src: x86.I(int32(rng.Uint32()))})
		}
	}
}

// soakBlockAddr returns block i's entry address.
func soakBlockAddr(i int) uint32 { return soakCode + uint32(i)*soakSlot }

// soakNormal picks a random non-func block (funcs are only entered via
// CALL; jumping into one would RET through an unbalanced stack).
func soakNormal(rng *rand.Rand) int { return rng.Intn(soakBlocks - soakFuncs) }

// soakBuildProgram assembles one randomized program into mem (a slice
// covering the guest image starting at soakCode) and returns it.
func soakBuildProgram(t *testing.T, rng *rand.Rand, mem []byte) {
	for i := 0; i < soakBlocks; i++ {
		e := &soakEmit{t: t, mem: mem, cur: soakBlockAddr(i)}
		e.soakCheckpoint()
		e.soakBody(rng)
		isFunc := i >= soakBlocks-soakFuncs
		if isFunc {
			e.emit(x86.Inst{Op: x86.RET})
		} else {
			switch rng.Intn(5) {
			case 0: // direct jump
				e.branch(x86.JMP, 0, soakBlockAddr(soakNormal(rng)))
			case 1: // conditional branch with a jump on the fall side
				e.branch(x86.JCC, x86.CC(rng.Intn(16)), soakBlockAddr(soakNormal(rng)))
				e.branch(x86.JMP, 0, soakBlockAddr(soakNormal(rng)))
			case 4: // compare/branch chain: the cmp+jcc fusion and, once
				// hot, the superblock's fused compare guards
				if rng.Intn(2) == 0 {
					e.emit(x86.Inst{Op: x86.CMP, Dst: soakScratch32(rng), Src: soakScratch32(rng)})
				} else {
					e.emit(x86.Inst{Op: x86.TEST, Dst: x86.R(x86.EAX), Src: x86.R(x86.EAX)})
				}
				e.branch(x86.JCC, x86.CC(rng.Intn(16)), soakBlockAddr(soakNormal(rng)))
				e.branch(x86.JMP, 0, soakBlockAddr(soakNormal(rng)))
			case 2: // table-driven indirect jump, index data-dependent
				e.emit(x86.Inst{Op: x86.MOV, Dst: x86.R(x86.ESI), Src: soakScratch32(rng)})
				e.emit(x86.Inst{Op: x86.AND, Dst: x86.R(x86.ESI), Src: x86.I(soakBlocks - 1)})
				e.emit(x86.Inst{Op: x86.MOV, Dst: x86.R(x86.ESI), Src: x86.MSIB(x86.EBX, x86.ESI, 4, 0, 4)})
				e.emit(x86.Inst{Op: x86.JMPM, Dst: x86.R(x86.ESI)})
			default: // call a func block, then jump on
				e.branch(x86.CALL, 0, soakBlockAddr(soakBlocks-soakFuncs+rng.Intn(soakFuncs)))
				e.branch(x86.JMP, 0, soakBlockAddr(soakNormal(rng)))
			}
		}
		if e.cur > soakBlockAddr(i)+soakSlot {
			t.Fatalf("soak block %d overflows its %d-byte slot (%d bytes)", i, soakSlot, e.cur-soakBlockAddr(i))
		}
	}
	// The exit block: one UD2, trapping both engines at a known EIP.
	e := &soakEmit{t: t, mem: mem, cur: soakExit}
	e.emit(x86.Inst{Op: x86.UD2})

	// The jump table: every index resolves to a normal block.
	for i := 0; i < soakBlocks; i++ {
		addr := soakBlockAddr(soakNormal(rng))
		off := soakTable - soakCode + uint32(4*i)
		mem[off] = byte(addr)
		mem[off+1] = byte(addr >> 8)
		mem[off+2] = byte(addr >> 16)
		mem[off+3] = byte(addr >> 24)
	}
}

// soakVM builds a VM with the program image mapped read-write.
func soakVM(t *testing.T, image []byte) *VM {
	t.Helper()
	v, err := New(Config{MemSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.MapSegment(soakCode, image, soakSpan, false); err != nil {
		t.Fatal(err)
	}
	return v
}

// soakSeedRegs puts both VMs in the same randomized start state with
// the role registers pinned.
func soakSeedRegs(rng *rand.Rand, vms ...*VM) {
	vals := [8]uint32{}
	for r := range vals {
		vals[r] = rng.Uint32()
	}
	vals[x86.EBX] = soakTable
	vals[x86.EDI] = soakTrace
	vals[x86.EBP] = soakCountdown
	cf, zf, sf, of, pf := rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0
	for _, v := range vms {
		copy(v.regs[:8], vals[:])
		v.regs[x86.ESP] = v.MemSize() - 16
		v.cf, v.zf, v.sf, v.of, v.pf = cf, zf, sf, of, pf
		v.fl.Op = 0
	}
}

// refRun drives the reference interpreter instruction-by-instruction
// until the program traps (the soak exit) or maxSteps elapse.
func refRun(v *VM, maxSteps int) (int, error) {
	for steps := 0; steps < maxSteps; steps++ {
		cur := v.eip
		if !v.readable(cur, 1) {
			return steps, &Trap{Kind: TrapMemory, EIP: cur, Addr: cur, Msg: "instruction fetch"}
		}
		win := uint32(15)
		for win > 1 && !v.readable(cur, win) {
			win--
		}
		inst, err := x86.Decode(v.mem[cur : cur+win])
		if err != nil {
			return steps, &Trap{Kind: TrapIllegal, EIP: cur, Msg: err.Error()}
		}
		if err := v.exec(&inst, cur); err != nil {
			return steps, err
		}
	}
	return maxSteps, fmt.Errorf("no termination after %d steps", maxSteps)
}

// soakRunUop builds a soak VM for image with cfg, runs it from block 0
// to the exit trap, and returns the VM and its trap.
func soakRunUop(t *testing.T, image []byte, cfg Config, seed func(*VM)) (*VM, *Trap) {
	t.Helper()
	v, err := New(Config{
		MemSize: 4 << 20, Fuel: cfg.Fuel,
		NoBlockCache: cfg.NoBlockCache, NoFlagElision: cfg.NoFlagElision,
		NoFusion: cfg.NoFusion, NoSuperblocks: cfg.NoSuperblocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.MapSegment(soakCode, image, soakSpan, false); err != nil {
		t.Fatal(err)
	}
	seed(v)
	v.eip = soakBlockAddr(0)
	br, err := v.lookupBlock(v.eip)
	if err != nil {
		t.Fatal(err)
	}
	err1 := v.execUops(br)
	v.materializeFlags()
	tr, ok := err1.(*Trap)
	if !ok {
		t.Fatalf("soak run did not trap: %v", err1)
	}
	return v, tr
}

// TestOptAblation runs identical soak programs under every optimizer
// configuration — full pipeline, each pass disabled, everything
// disabled — and requires the complete architectural outcome (trap
// site, registers, flags, the whole guest image including the per-
// block checkpoint trace) to be identical. The optimizer may only buy
// speed, never observable behavior. A second round repeats the
// comparison under a tight fuel budget, pinning the fuel-trap EIP and
// accounting through fused micro-ops and superblock promotion.
func TestOptAblation(t *testing.T) {
	configs := []Config{
		{},
		{NoFlagElision: true},
		{NoFusion: true},
		{NoSuperblocks: true},
		{NoFlagElision: true, NoFusion: true, NoSuperblocks: true},
	}
	for _, seed := range []int64{11, 22} {
		rng := rand.New(rand.NewSource(seed))
		image := make([]byte, soakSpan)
		soakBuildProgram(t, rng, image)
		var regSeed [8]uint32
		for r := range regSeed {
			regSeed[r] = rng.Uint32()
		}
		seedVM := func(v *VM) {
			copy(v.regs[:8], regSeed[:])
			v.regs[x86.EBX] = soakTable
			v.regs[x86.EDI] = soakTrace
			v.regs[x86.EBP] = soakCountdown
			v.regs[x86.ESP] = v.MemSize() - 16
			v.fl.Op = 0
		}

		for _, fuel := range []int64{0 /* unlimited */, 20011} {
			base, baseTrap := soakRunUop(t, image, Config{Fuel: fuel}, seedVM)
			for ci := 1; ci < len(configs); ci++ {
				cfg := configs[ci]
				cfg.Fuel = fuel
				v, tr := soakRunUop(t, image, cfg, seedVM)
				if tr.Kind != baseTrap.Kind || tr.EIP != baseTrap.EIP {
					t.Fatalf("seed %d fuel %d config %d: trap %v, want %v", seed, fuel, ci, tr, baseTrap)
				}
				for r := 0; r < 8; r++ {
					if v.regs[r] != base.regs[r] {
						t.Fatalf("seed %d fuel %d config %d: %s = %#x, want %#x",
							seed, fuel, ci, x86.Reg(r), v.regs[r], base.regs[r])
					}
				}
				if v.cf != base.cf || v.zf != base.zf || v.sf != base.sf || v.of != base.of || v.pf != base.pf {
					t.Fatalf("seed %d fuel %d config %d: flags diverged", seed, fuel, ci)
				}
				if !bytes.Equal(v.mem[soakCode:soakCode+soakSpan], base.mem[soakCode:soakCode+soakSpan]) {
					t.Fatalf("seed %d fuel %d config %d: guest image diverged", seed, fuel, ci)
				}
				if v.Stats().Steps != base.Stats().Steps {
					t.Fatalf("seed %d fuel %d config %d: steps %d, want %d",
						seed, fuel, ci, v.Stats().Steps, base.Stats().Steps)
				}
			}
		}
	}
}

// TestSuperblockSnapshotReset pins the superblock/snapshot interplay:
// superblocks are per-VM profile state, so a Reset must drop them (the
// bref wrappers are replaced) while the shared base-block cache
// survives — and the rewound VM must re-profile, re-form and produce
// the identical outcome.
func TestSuperblockSnapshotReset(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	image := make([]byte, soakSpan)
	soakBuildProgram(t, rng, image)
	v := soakVM(t, image)
	snap := v.Snapshot() // pristine, pre-run

	soakSeedRegs(rand.New(rand.NewSource(34)), v)
	v.eip = soakBlockAddr(0)
	br, err := v.lookupBlock(v.eip)
	if err != nil {
		t.Fatal(err)
	}
	_ = v.execUops(br)
	formed := v.Stats().SuperblocksFormed
	if formed == 0 {
		t.Fatal("soak run formed no superblocks; the hot threshold is not being reached")
	}
	trace1 := append([]byte(nil), v.mem[soakTrace:soakTrace+soakCountdown*soakCkptBytes]...)

	// Reset rewinds to the pristine image and drops every bref — and
	// with them the formed superblocks. The re-run must re-form them
	// (stats accumulate across resets) and reproduce the trace exactly.
	if err := v.Reset(snap); err != nil {
		t.Fatal(err)
	}
	soakSeedRegs(rand.New(rand.NewSource(34)), v)
	v.eip = soakBlockAddr(0)
	br, err = v.lookupBlock(v.eip)
	if err != nil {
		t.Fatal(err)
	}
	_ = v.execUops(br)
	if again := v.Stats().SuperblocksFormed; again <= formed {
		t.Fatalf("no superblocks re-formed after Reset: %d then %d", formed, again)
	}
	trace2 := v.mem[soakTrace : soakTrace+soakCountdown*soakCkptBytes]
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("checkpoint trace diverged across Reset")
	}
}

// TestDiffSoakMultiBlock is the long-horizon differential soak. Each
// seed builds a fresh random program and runs it to completion on the
// uop engine (blocks, chaining, inline caches, lazy flags) and on the
// reference interpreter (instruction at a time, eager flags). The trap
// site, the final architectural state, the memory image — including
// the per-block-boundary checkpoint trace — must agree exactly, over
// 10k+ steps per seed.
func TestDiffSoakMultiBlock(t *testing.T) { runDiffSoakMultiBlock(t) }

// TestDiffSoakTier2Forced reruns the multi-block soak with the tier-2
// engine forced to both extremes: every superblock promoted on first
// entry (native and closure backends) and the tier disabled outright.
// The soak's exactness assertions — trap EIP, steps==fuel accounting,
// registers, flags, memory image — must hold identically in all three,
// which is the wall that keeps compiled traces architecturally
// indistinguishable from the dispatch loop.
func TestDiffSoakTier2Forced(t *testing.T) {
	legs := []struct {
		name string
		env  map[string]string
	}{
		{"hot-native", map[string]string{"VXA_TIER2_HOT": "1"}},
		{"hot-closure", map[string]string{"VXA_TIER2_HOT": "1", "VXA_TIER2_BACKEND": "closure"}},
		{"off", map[string]string{"VXA_NO_TIER2": "1"}},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			for k, v := range leg.env {
				t.Setenv(k, v)
			}
			runDiffSoakMultiBlock(t)
		})
	}
}

func runDiffSoakMultiBlock(t *testing.T) {
	seeds := []int64{101, 202, 303, 404, 505, 606}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			image := make([]byte, soakSpan)
			soakBuildProgram(t, rng, image)
			v1 := soakVM(t, image) // uop engine
			v2 := soakVM(t, image) // reference engine
			soakSeedRegs(rng, v1, v2)

			v1.eip, v2.eip = soakBlockAddr(0), soakBlockAddr(0)
			br, err := v1.lookupBlock(v1.eip)
			if err != nil {
				t.Fatal(err)
			}
			err1 := v1.execUops(br)
			v1.materializeFlags()
			refSteps, err2 := refRun(v2, 1<<20)

			tr1, ok1 := err1.(*Trap)
			tr2, ok2 := err2.(*Trap)
			if !ok1 || !ok2 {
				t.Fatalf("termination differs: uop err=%v, ref err=%v", err1, err2)
			}
			if tr1.Kind != tr2.Kind || tr1.EIP != tr2.EIP {
				t.Fatalf("trap diverged: uop %v, ref %v", tr1, tr2)
			}
			if tr1.EIP != soakExit {
				t.Fatalf("program trapped at %#x, not the exit block %#x: %v", tr1.EIP, soakExit, tr1)
			}
			if steps := v1.Stats().Steps; steps < 10000 {
				t.Fatalf("soak too short: %d uop-engine steps (ref: %d), want >= 10000", steps, refSteps)
			}
			// Fuel/steps accounting must stay exact through fusion (one
			// micro-op charging several instructions), superblock guard
			// exits (tail refunds) and trap refunds. The uop engine
			// charges the trapping UD2 itself; refRun's count excludes
			// it, hence the +1.
			if steps := v1.Stats().Steps; steps != uint64(refSteps)+1 {
				t.Errorf("steps accounting diverged: %d (uop) vs %d+1 (ref)", steps, refSteps)
			}
			// When the forced-hot wall is running, the comparison above
			// must actually have covered compiled traces — a soak that
			// silently stayed on tier-1 would prove nothing. The one
			// legitimate escape: a seed whose every superblock holds a
			// micro-op unsupported by design (a KindGeneric/KindString
			// interpreter escape), which no tier-2 backend compiles.
			if os.Getenv("VXA_TIER2_HOT") == "1" && !envNoTier2() &&
				v1.Stats().Tier2Executed == 0 {
				for _, br := range v1.blocks {
					if br.sb == nil {
						continue
					}
					if i, k := tier2.Unsupported(br.sb.b.uops); i < 0 {
						t.Errorf("tier-2 forced hot but no compiled trace ran (%d compiled), "+
							"yet superblock %#x has no unsupported micro-op",
							v1.Stats().Tier2Compiled, br.sb.b.uops[0].EIP)
					} else {
						t.Logf("superblock %#x stays on tier-1 by design: uop %d is %v",
							br.sb.b.uops[0].EIP, i, k)
					}
				}
			}

			for r := 0; r < 8; r++ {
				if v1.regs[r] != v2.regs[r] {
					t.Errorf("%s = %#x (uop) vs %#x (ref)", x86.Reg(r), v1.regs[r], v2.regs[r])
				}
			}
			if v1.cf != v2.cf || v1.zf != v2.zf || v1.sf != v2.sf || v1.of != v2.of || v1.pf != v2.pf {
				t.Errorf("final flags diverged: cf=%v zf=%v sf=%v of=%v pf=%v (uop) vs cf=%v zf=%v sf=%v of=%v pf=%v (ref)",
					v1.cf, v1.zf, v1.sf, v1.of, v1.pf, v2.cf, v2.zf, v2.sf, v2.of, v2.pf)
			}
			// The checkpoint trace is the per-block-boundary comparison:
			// find the first diverging checkpoint for a usable failure.
			traceEnd := v1.regs[x86.EDI]
			if v2.regs[x86.EDI] == traceEnd {
				for ck := uint32(soakTrace); ck < traceEnd; ck += soakCkptBytes {
					if !bytes.Equal(v1.mem[ck:ck+soakCkptBytes], v2.mem[ck:ck+soakCkptBytes]) {
						t.Errorf("checkpoint %d diverged: uop %x, ref %x",
							(ck-soakTrace)/soakCkptBytes, v1.mem[ck:ck+soakCkptBytes], v2.mem[ck:ck+soakCkptBytes])
						break
					}
				}
			}
			if !bytes.Equal(v1.mem[soakCode:soakCode+soakSpan], v2.mem[soakCode:soakCode+soakSpan]) {
				t.Error("guest memory image diverged")
			}
			if t.Failed() {
				t.FailNow()
			}
		})
	}
}
