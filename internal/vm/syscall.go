package vm

import (
	"io"

	"vxa/internal/fault"
	"vxa/internal/x86"
)

// maxIOChunk bounds a single virtual read/write so a guest cannot force
// the host to stage an arbitrarily large buffer in one call; larger
// requests complete in multiple system calls, as on a real kernel.
const maxIOChunk = 1 << 20

// syscall dispatches the VXA virtual system call in EAX. It mirrors the
// paper's §4.3: the host services the call directly out of the guest's
// address space; no data is copied across a protection domain.
func (v *VM) syscall() error {
	v.stats.Syscalls++
	// Chaos hook: an injected guest-syscall fault traps exactly as a
	// hostile or buggy decoder would, exercising the trap-containment
	// path (classification, breaker accounting, VM discard). Disarmed
	// cost is one atomic load per syscall — never on the per-uop path.
	if err := fault.Inject(fault.GuestSyscall); err != nil {
		return &Trap{Kind: TrapSyscall, EIP: v.eip, Msg: err.Error()}
	}
	nr := v.regs[x86.EAX]
	switch nr {
	case SysExit:
		v.exitCode = int32(v.regs[x86.EBX])
		return errExit

	case SysDone:
		// The guest is parked after the INT; Run returns StatusDone and a
		// subsequent Run resumes with EAX = 0.
		v.regs[x86.EAX] = 0
		return errDone

	case SysRead:
		v.regs[x86.EAX] = uint32(v.sysRead())
		return nil

	case SysWrite:
		v.regs[x86.EAX] = uint32(v.sysWrite())
		return nil

	case SysSetPerm:
		v.regs[x86.EAX] = uint32(v.sysSetPerm())
		return nil
	}
	// Anything else is outside the decoder contract: trap rather than
	// emulate, so that decoders relying on host OS facilities are caught
	// immediately (they would not be durable).
	return &Trap{Kind: TrapSyscall, EIP: v.eip, Msg: "unknown system call"}
}

func (v *VM) sysRead() int32 {
	fd := v.regs[x86.EBX]
	buf := v.regs[x86.ECX]
	n := v.regs[x86.EDX]
	if fd != 0 {
		return -ErrnoBADF
	}
	if n == 0 {
		return 0
	}
	if n > maxIOChunk {
		n = maxIOChunk
	}
	if !v.writable(buf, n) {
		return -ErrnoFAULT
	}
	if v.Stdin == nil {
		return 0 // empty input stream
	}
	for {
		got, err := v.Stdin.Read(v.mem[buf : buf+n])
		if got > 0 {
			return int32(got)
		}
		if err == io.EOF {
			return 0
		}
		if err != nil {
			return -ErrnoIO
		}
	}
}

func (v *VM) sysWrite() int32 {
	fd := v.regs[x86.EBX]
	buf := v.regs[x86.ECX]
	n := v.regs[x86.EDX]
	var w io.Writer
	switch fd {
	case 1:
		w = v.Stdout
	case 2:
		w = v.Stderr
		if w == nil {
			return int32(n) // discard diagnostics unless verbose
		}
	default:
		return -ErrnoBADF
	}
	if n == 0 {
		return 0
	}
	if n > maxIOChunk {
		n = maxIOChunk
	}
	if !v.readable(buf, n) {
		return -ErrnoFAULT
	}
	if w == nil {
		return -ErrnoBADF
	}
	got, err := w.Write(v.mem[buf : buf+n])
	if err != nil {
		return -ErrnoIO
	}
	return int32(got)
}

// sysSetPerm implements the heap-growth call: setperm(addr, len) makes
// [addr, addr+len) accessible, provided it lies between the current heap
// end and the stack guard. It returns 0 on success.
func (v *VM) sysSetPerm() int32 {
	addr := v.regs[x86.EBX]
	n := v.regs[x86.ECX]
	end := addr + n
	if end < addr {
		return -ErrnoINVAL
	}
	if end <= v.brk {
		return 0 // already accessible
	}
	// Leave one guard page between heap and stack so runaway heap use and
	// stack overflow cannot silently meet.
	if end > v.stackBase-PageSize {
		return -ErrnoNOMEM
	}
	if addr > v.brk {
		return -ErrnoINVAL // the heap must stay contiguous
	}
	// Newly exposed memory must be zero even after VM reuse. Bytes past
	// the dirty high-water mark have never been guest-writable on this
	// address space (allocGuestMem hands back zeroed pages and every
	// write path is bounded by brk), so only the previously exposed
	// prefix needs clearing — on a freshly materialized VM the first
	// heap growth is free instead of a multi-megabyte memclr.
	if top := min(end, v.dirtyBrk); top > v.brk {
		clear(v.mem[v.brk:top])
	}
	v.brk = end
	if end > v.dirtyBrk {
		v.dirtyBrk = end
	}
	return 0
}
