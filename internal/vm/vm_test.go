package vm

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vxa/internal/x86"
	"vxa/internal/x86/asm"
)

// loadImage maps a linked image into the VM the way the ELF loader does:
// text+rodata read-only, data+bss writable.
func loadImage(t *testing.T, v *VM, im *asm.Image) {
	t.Helper()
	ro := append(append([]byte{}, im.Text...), im.ROData...)
	if err := v.MapSegment(im.Base, ro, uint32(len(ro)), true); err != nil {
		t.Fatal(err)
	}
	rw := uint32(len(im.Data)) + im.BSSSize
	if rw > 0 {
		if err := v.MapSegment(im.DataBase(), im.Data, rw, false); err != nil {
			t.Fatal(err)
		}
	}
}

// buildVM assembles a program and returns a VM ready to run it from the
// "start" label.
func buildVM(t *testing.T, cfg Config, stdin []byte, build func(u *asm.Unit)) (*VM, *bytes.Buffer) {
	t.Helper()
	u := asm.New()
	build(u)
	im, err := u.Link(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loadImage(t, v, im)
	entry, ok := im.Symbols["start"]
	if !ok {
		t.Fatal("no start symbol")
	}
	v.SetEntry(entry)
	var out bytes.Buffer
	v.Stdin = bytes.NewReader(stdin)
	v.Stdout = &out
	return v, &out
}

// sysExit emits mov eax,1; mov ebx,code; int 0x80.
func sysExit(u *asm.Unit, code int32) {
	u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysExit))
	u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(code))
	u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
}

func TestExitCode(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		sysExit(u, 42)
	})
	st, err := v.Run()
	if err != nil || st != StatusExit || v.ExitCode() != 42 {
		t.Fatalf("st=%v err=%v code=%d", st, err, v.ExitCode())
	}
}

func TestLoopSum(t *testing.T) {
	// sum = 1+2+...+100 = 5050, returned as the exit code.
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.I(100))
		u.Op2(x86.XOR, x86.R(x86.EDX), x86.R(x86.EDX))
		u.Label("loop")
		u.Op2(x86.ADD, x86.R(x86.EDX), x86.R(x86.ECX))
		u.Op1(x86.DEC, x86.R(x86.ECX))
		u.Jcc(x86.CCNE, "loop")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysExit))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.R(x86.EDX))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode() != 5050 {
		t.Fatalf("exit = %d, want 5050", v.ExitCode())
	}
}

func TestCallRet(t *testing.T) {
	// start calls triple(7) twice via a cdecl-ish convention.
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(7))
		u.Call("triple")
		u.Call("triple")
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.R(x86.EAX))
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysExit))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Label("triple")
		u.Op2(x86.LEA, x86.R(x86.EAX), x86.MSIB(x86.EAX, x86.EAX, 2, 0, 4))
		u.Op0(x86.RET)
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode() != 63 {
		t.Fatalf("exit = %d, want 63", v.ExitCode())
	}
}

// TestEchoProgram is the canonical VXA decoder skeleton: copy stdin to
// stdout through a heap buffer until EOF.
func TestEchoProgram(t *testing.T) {
	input := bytes.Repeat([]byte("the quick brown fox "), 1000)
	v, out := buildVM(t, Config{}, input, func(u *asm.Unit) {
		u.DefBSS("buf", 256, 4)
		u.Label("start")
		u.Label("again")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysRead))
		u.Op2(x86.XOR, x86.R(x86.EBX), x86.R(x86.EBX)) // fd 0
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("buf"))
		u.Op2(x86.MOV, x86.R(x86.EDX), x86.I(256))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Op2(x86.TEST, x86.R(x86.EAX), x86.R(x86.EAX))
		u.Jcc(x86.CCLE, "eof")
		u.Op2(x86.MOV, x86.R(x86.EDX), x86.R(x86.EAX)) // count
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysWrite))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(1)) // fd 1
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("buf"))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Jmp("again")
		u.Label("eof")
		sysExit(u, 0)
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), input) {
		t.Fatalf("echo mismatch: got %d bytes, want %d", out.Len(), len(input))
	}
}

// TestDoneProtocol checks the multi-stream decoder protocol: done parks
// the guest, the host swaps streams, and Run resumes after the gate.
func TestDoneProtocol(t *testing.T) {
	v, out := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.DefData("a", asm.ROData, []byte("first"))
		u.DefData("b", asm.ROData, []byte("second"))
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysWrite))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(1))
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("a"))
		u.Op2(x86.MOV, x86.R(x86.EDX), x86.I(5))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysDone))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysWrite))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(1))
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("b"))
		u.Op2(x86.MOV, x86.R(x86.EDX), x86.I(6))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		sysExit(u, 0)
	})
	st, err := v.Run()
	if err != nil || st != StatusDone {
		t.Fatalf("first run: st=%v err=%v", st, err)
	}
	if out.String() != "first" {
		t.Fatalf("stream 1 = %q", out.String())
	}
	var out2 bytes.Buffer
	v.Stdout = &out2
	st, err = v.Run()
	if err != nil || st != StatusExit {
		t.Fatalf("second run: st=%v err=%v", st, err)
	}
	if out2.String() != "second" {
		t.Fatalf("stream 2 = %q", out2.String())
	}
}

func trapKind(err error) (TrapKind, bool) {
	var tr *Trap
	if errors.As(err, &tr) {
		return tr.Kind, true
	}
	return 0, false
}

// TestSandboxNullDeref: page zero is never mapped.
func TestSandboxNullDeref(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.M(x86.NoReg, 0)) // load [0]
		sysExit(u, 0)
	})
	_, err := v.Run()
	if k, ok := trapKind(err); !ok || k != TrapMemory {
		t.Fatalf("err = %v, want memory trap", err)
	}
}

// TestSandboxWildPointer: accesses beyond the heap fault.
func TestSandboxWildPointer(t *testing.T) {
	for _, addr := range []int32{0x00800000, 0x3FFFFFFC, -4} {
		v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
			u.Label("start")
			u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(addr))
			u.Op2(x86.MOV, x86.M(x86.EBX, 0), x86.I(1))
			sysExit(u, 0)
		})
		_, err := v.Run()
		if k, ok := trapKind(err); !ok || k != TrapMemory {
			t.Fatalf("addr %#x: err = %v, want memory trap", uint32(addr), err)
		}
	}
}

// TestSandboxWriteToText: the code region is write-protected.
func TestSandboxWriteToText(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.ISym("start"))
		u.Op2(x86.MOV, x86.M(x86.EBX, 0), x86.I(int32(-0x6f6f6f70)))
		sysExit(u, 0)
	})
	_, err := v.Run()
	if k, ok := trapKind(err); !ok || k != TrapWrite {
		t.Fatalf("err = %v, want write trap", err)
	}
}

// TestSandboxJumpOutside: control transfer outside the sandbox faults at
// fetch time rather than executing host memory.
func TestSandboxJumpOutside(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(0x30000000))
		u.Op1(x86.JMPM, x86.R(x86.EAX))
	})
	_, err := v.Run()
	if k, ok := trapKind(err); !ok || k != TrapMemory {
		t.Fatalf("err = %v, want memory trap", err)
	}
}

// TestSandboxBadSyscall: unknown syscall numbers and interrupt vectors trap.
func TestSandboxBadSyscall(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(11)) // execve on Linux; not in VXA
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	})
	_, err := v.Run()
	if k, ok := trapKind(err); !ok || k != TrapSyscall {
		t.Fatalf("err = %v, want syscall trap", err)
	}

	v2, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x21, Size: 1}) // DOS!
	})
	_, err = v2.Run()
	if k, ok := trapKind(err); !ok || k != TrapSyscall {
		t.Fatalf("err = %v, want syscall trap", err)
	}
}

// TestSandboxReadBadFD: only fd 0 is readable, 1/2 writable.
func TestSandboxReadBadFD(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.DefBSS("buf", 16, 4)
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysRead))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(3)) // no such handle
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("buf"))
		u.Op2(x86.MOV, x86.R(x86.EDX), x86.I(16))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.R(x86.EAX))
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysExit))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode() != -ErrnoBADF {
		t.Fatalf("read(3) = %d, want -EBADF", v.ExitCode())
	}
}

// TestSandboxReadIntoText: a decoder cannot ask the host to overwrite its
// own text via the read syscall.
func TestSandboxReadIntoText(t *testing.T) {
	v, _ := buildVM(t, Config{}, []byte("payload"), func(u *asm.Unit) {
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysRead))
		u.Op2(x86.XOR, x86.R(x86.EBX), x86.R(x86.EBX))
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("start"))
		u.Op2(x86.MOV, x86.R(x86.EDX), x86.I(16))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.R(x86.EAX))
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysExit))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode() != -ErrnoFAULT {
		t.Fatalf("read into text = %d, want -EFAULT", v.ExitCode())
	}
}

// TestFuelExhaustion: an infinite loop is stopped by the fuel budget.
func TestFuelExhaustion(t *testing.T) {
	v, _ := buildVM(t, Config{Fuel: 10000}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Label("spin")
		u.Jmp("spin")
	})
	_, err := v.Run()
	if k, ok := trapKind(err); !ok || k != TrapFuel {
		t.Fatalf("err = %v, want fuel trap", err)
	}
}

// TestStackOverflow: unbounded recursion hits the guard gap, not the heap.
func TestStackOverflow(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Label("recurse")
		u.Call("recurse")
	})
	_, err := v.Run()
	if k, ok := trapKind(err); !ok || k != TrapMemory {
		t.Fatalf("err = %v, want memory trap from guard gap", err)
	}
}

// TestSetPermGrowsHeap: setperm extends the accessible region and the
// new memory is zeroed and usable.
func TestSetPermGrowsHeap(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		// Ask for 64 KiB past the current break.
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysSetPerm))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(0))
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.I(0x40000))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Op2(x86.TEST, x86.R(x86.EAX), x86.R(x86.EAX))
		u.Jcc(x86.CCNE, "fail")
		// Store and reload at 0x30000.
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(0x30000))
		u.Op2(x86.MOV, x86.M(x86.EBX, 0), x86.I(0xBEEF))
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.M(x86.EBX, 0))
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysExit))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.R(x86.ECX))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Label("fail")
		sysExit(u, -1)
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode() != 0xBEEF {
		t.Fatalf("exit = %#x, want 0xBEEF", v.ExitCode())
	}
}

// TestSetPermCannotReachStack: heap growth must stop at the guard page.
func TestSetPermCannotReachStack(t *testing.T) {
	v, _ := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysSetPerm))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(0))
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.I(int32(DefaultMemSize-1))) // everything
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.R(x86.EAX))
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysExit))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode() != -ErrnoNOMEM {
		t.Fatalf("setperm over stack = %d, want -ENOMEM", v.ExitCode())
	}
}

// TestRepMovsOverlap verifies the architectural forward-propagation
// behaviour that LZ77 match copies depend on.
func TestRepMovsOverlap(t *testing.T) {
	v, out := buildVM(t, Config{}, nil, func(u *asm.Unit) {
		u.DefData("buf", asm.Data, append([]byte("ab"), make([]byte, 14)...))
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.ESI), x86.ISym("buf"))
		u.Op2(x86.LEA, x86.R(x86.EDI), x86.MSIB(x86.ESI, x86.NoReg, 1, 2, 4))
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.I(12))
		u.Emit(x86.Inst{Op: x86.MOVSB, Rep: true})
		// write(1, buf, 14)
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysWrite))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(1))
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("buf"))
		u.Op2(x86.MOV, x86.R(x86.EDX), x86.I(14))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		sysExit(u, 0)
	})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "ababababababab" {
		t.Fatalf("overlap copy = %q, want abab pattern", out.String())
	}
}

// TestBlockCacheAblation: disabling the fragment cache must not change
// results, only the translation work.
func TestBlockCacheAblation(t *testing.T) {
	prog := func(u *asm.Unit) {
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.I(1000))
		u.Op2(x86.XOR, x86.R(x86.EDX), x86.R(x86.EDX))
		u.Label("loop")
		u.Op2(x86.ADD, x86.R(x86.EDX), x86.R(x86.ECX))
		u.Op1(x86.DEC, x86.R(x86.ECX))
		u.Jcc(x86.CCNE, "loop")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysExit))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.R(x86.EDX))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	}
	vCached, _ := buildVM(t, Config{}, nil, prog)
	vRaw, _ := buildVM(t, Config{NoBlockCache: true}, nil, prog)
	if _, err := vCached.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := vRaw.Run(); err != nil {
		t.Fatal(err)
	}
	if vCached.ExitCode() != vRaw.ExitCode() {
		t.Fatalf("results differ: %d vs %d", vCached.ExitCode(), vRaw.ExitCode())
	}
	cs, rs := vCached.Stats(), vRaw.Stats()
	if cs.Steps != rs.Steps {
		t.Fatalf("step counts differ: %d vs %d", cs.Steps, rs.Steps)
	}
	if rs.BlocksBuilt <= cs.BlocksBuilt {
		t.Fatalf("expected many more fragment builds without the cache: %d vs %d",
			rs.BlocksBuilt, cs.BlocksBuilt)
	}
}

// TestStderrDiscardedUnlessVerbose mirrors vxUnZIP's handling of decoder
// diagnostics.
func TestStderrDiscardedUnlessVerbose(t *testing.T) {
	prog := func(u *asm.Unit) {
		u.DefData("msg", asm.ROData, []byte("diag\n"))
		u.Label("start")
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysWrite))
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.I(2))
		u.Op2(x86.MOV, x86.R(x86.ECX), x86.ISym("msg"))
		u.Op2(x86.MOV, x86.R(x86.EDX), x86.I(5))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
		u.Op2(x86.MOV, x86.R(x86.EBX), x86.R(x86.EAX))
		u.Op2(x86.MOV, x86.R(x86.EAX), x86.I(SysExit))
		u.Op1(x86.INT, x86.Arg{Kind: x86.KindImm, Imm: 0x80, Size: 1})
	}
	// Quiet: stderr nil, write succeeds (discarded).
	v, _ := buildVM(t, Config{}, nil, prog)
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode() != 5 {
		t.Fatalf("quiet stderr write = %d, want 5", v.ExitCode())
	}
	// Verbose: captured.
	v2, _ := buildVM(t, Config{}, nil, prog)
	var diag strings.Builder
	v2.Stderr = &diag
	if _, err := v2.Run(); err != nil {
		t.Fatal(err)
	}
	if diag.String() != "diag\n" {
		t.Fatalf("stderr = %q", diag.String())
	}
}
