package vm

import (
	"fmt"
	"sync"
	"time"
	"unsafe"

	"vxa/internal/vm/uop"
	"vxa/internal/x86"
)

// Snapshot is a frozen copy of a VM's architectural state: the accessible
// memory image, registers, flags, sandbox bounds and (optionally) the
// predecoded basic-block cache. It is the mechanism behind cheap decoder
// reuse (§2.4): the reader captures one snapshot per decoder right after
// ELF load, then materializes or re-pristines VMs from it per stream
// instead of re-parsing the executable each time.
//
// A Snapshot is safe for concurrent use: many goroutines may NewVM/Reset
// from the same snapshot at once. Decoded blocks are immutable after
// construction, so they are shared, never copied.
type Snapshot struct {
	memSize uint32

	// Only the accessible regions are stored: [0, brk) covers the
	// never-mapped first page plus text/data/heap, and [stackBase,
	// memSize) covers the stack. The guard gap between them is
	// unreachable by the guest, so its contents never need restoring.
	low  []byte // copy of mem[0:brk]
	high []byte // copy of mem[stackBase:memSize]

	regs               [8]uint32
	eip                uint32
	cf, zf, sf, of, pf bool

	brk, roLimit, stackBase uint32
	fuel                    int64
	noCache                 bool
	noSB                    bool
	noT2                    bool
	optCfg                  uop.OptConfig
	wallBudget              time.Duration

	mu     sync.Mutex
	blocks map[uint32]*block
	// sbs carries absorbed superblocks by entry address. A superblock is
	// profile-driven but deterministic re-translation of read-only guest
	// code, so one VM's formation work is valid for every sibling — and
	// re-forming them (uop lowering plus a full optimizer pass per hot
	// trace) is the dominant first-stream cost once images and blocks are
	// already cached. Each record keeps the guard/return slot counts so
	// materialization can size the per-VM chain arrays without rescanning.
	sbs map[uint32]*sbRecord
}

// sbRecord is one absorbed superblock: the shared immutable fragment
// plus the chain-slot geometry every per-VM wrapper needs.
type sbRecord struct {
	b      *block
	guards int
	rets   int
}

// Snapshot captures the VM's current state. The usual call site is right
// after elf32.Load, when the image is pristine; AbsorbBlocks can later
// fold a warmed-up VM's translation cache into the snapshot. Lazy flags
// are materialized first, so the snapshot stores the architectural bits.
func (v *VM) Snapshot() *Snapshot {
	v.materializeFlags()
	s := &Snapshot{
		memSize: uint32(len(v.mem)),
		low:     append([]byte(nil), v.mem[:v.brk]...),
		high:    append([]byte(nil), v.mem[v.stackBase:]...),
		regs:    [8]uint32(v.regs[:8]),
		eip:     v.eip,
		cf:      v.cf, zf: v.zf, sf: v.sf, of: v.of, pf: v.pf,
		brk:        v.brk,
		roLimit:    v.roLimit,
		stackBase:  v.stackBase,
		fuel:       v.fuel,
		noCache:    v.noCache,
		noSB:       v.noSB,
		noT2:       v.noT2,
		optCfg:     v.optCfg,
		wallBudget: v.wallBudget,
		blocks:     make(map[uint32]*block, len(v.blocks)),
		sbs:        make(map[uint32]*sbRecord),
	}
	for addr, br := range v.blocks {
		s.blocks[addr] = br.b
	}
	return s
}

// MemSize returns the guest address-space size the snapshot was taken at.
func (s *Snapshot) MemSize() uint32 { return s.memSize }

// blockMap returns a private view of the snapshot's block cache: the
// *block values are shared (immutable once built), but each is wrapped
// in a fresh per-VM bref, since chain links and cache growth are private
// to the receiving VM. Handing out fresh wrappers is also what
// invalidates chained successor links across Reset.
//
// Absorbed superblocks are re-attached through fresh wrappers too, with
// empty guard chains and a clean entry/exit profile: the receiving VM
// starts on the optimized traces immediately but still re-validates the
// profile with its own counters, so a stale trace tears down and
// re-forms exactly as if this VM had built it.
func (s *Snapshot) blockMap() map[uint32]*bref {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[uint32]*bref, len(s.blocks))
	for addr, b := range s.blocks {
		br := &bref{b: b}
		if r, ok := s.sbs[addr]; ok && !s.noSB && !s.noCache {
			br.sb = &bref{
				b:        r.b,
				owner:    br,
				sbChains: make([]*bref, r.guards),
				sbInd:    make([]sbIndEntry, r.rets),
				sbTried:  true,
			}
			br.sbTried = true
		}
		m[addr] = br
	}
	return m
}

// NewVM materializes a fresh VM in the snapshot's state, including the
// predecoded block cache — the fast path for spinning up one more decoder
// instance for parallel extraction.
func (s *Snapshot) NewVM() *VM {
	owner, mem := allocGuestMem(s.memSize)
	v := &VM{mem: mem, memOwner: owner}
	s.restore(v)
	return v
}

// Reset rewinds an existing VM to the snapshot: every guest-visible
// region is restored byte-for-byte, registers/flags/bounds/fuel return to
// their captured values, and the I/O streams are detached so no writer
// from a previous stream can leak into the next. Execution statistics
// accumulate across resets. The VM must have the same memory size as the
// snapshot.
func (v *VM) Reset(s *Snapshot) error {
	if uint32(len(v.mem)) != s.memSize {
		return fmt.Errorf("vm: reset across memory sizes (%d != %d)", len(v.mem), s.memSize)
	}
	s.restore(v)
	return nil
}

func (s *Snapshot) restore(v *VM) {
	// Memory beyond the restored brk stays dirty but unreachable: the
	// sandbox bounds make it inaccessible, and sysSetPerm re-zeroes the
	// dirtied prefix (up to v.dirtyBrk) before exposing it again.
	copy(v.mem[:s.brk], s.low)
	copy(v.mem[s.stackBase:], s.high)
	copy(v.regs[:], s.regs[:])
	v.eip = s.eip
	v.cf, v.zf, v.sf, v.of, v.pf = s.cf, s.zf, s.sf, s.of, s.pf
	v.fl = uop.Flags{} // snapshots carry materialized flags
	v.brk = s.brk
	if s.brk > v.dirtyBrk {
		v.dirtyBrk = s.brk
	}
	v.roLimit = s.roLimit
	v.stackBase = s.stackBase
	v.fuel = s.fuel
	v.noCache = s.noCache
	v.noSB = s.noSB
	// Tier-2 policy follows the snapshot, but the process-wide kill
	// switch and promotion threshold are re-read here: a snapshot taken
	// in one process may materialize in another (Deserialize), and the
	// env knobs describe the running process, not the captured image.
	v.noT2 = s.noT2 || envNoTier2()
	v.t2Hot = t2HotThreshold()
	v.optCfg = s.optCfg
	v.wallBudget = s.wallBudget
	v.wallDeadline = 0
	v.blocks = s.blockMap()
	v.exitCode = 0
	v.Stdin, v.Stdout, v.Stderr = nil, nil, nil
}

// AbsorbBlocks folds v's decoded block cache into the snapshot so that
// future NewVM/Reset calls start with a warm translation cache. Only
// blocks that lie entirely inside the read-only region below the
// snapshot's roLimit are taken: those bytes cannot have changed since the
// snapshot, so the decoded fragments are valid for the pristine image.
//
// The VM's formed superblocks ride along under the same rule — every
// instruction a trace re-translates must come from the pristine
// read-only window — so sibling VMs (and, via Serialize, sibling
// processes) skip the per-trace lowering and optimizer passes that
// otherwise dominate a fresh VM's first stream.
func (s *Snapshot) AbsorbBlocks(v *VM) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for addr, br := range v.blocks {
		if _, ok := s.blocks[addr]; !ok {
			b := br.b
			if len(b.insts) == 0 {
				continue
			}
			if addr >= PageSize && b.end <= s.roLimit {
				s.blocks[addr] = b
			}
		}
	}
	for addr, br := range v.blocks {
		sb := br.sb
		if sb == nil {
			continue
		}
		if _, ok := s.sbs[addr]; ok {
			continue
		}
		// The entry block must itself be absorbed, and the whole trace
		// must execute read-only pristine bytes.
		if _, ok := s.blocks[addr]; !ok || !sbInRO(sb.b, s.roLimit) {
			continue
		}
		s.sbs[addr] = &sbRecord{b: sb.b, guards: len(sb.sbChains), rets: len(sb.sbInd)}
	}
}

// sbInRO reports whether every micro-op of a superblock fragment was
// re-translated from instruction bytes inside the pristine read-only
// window [PageSize, roLimit). Guard exit targets may point anywhere —
// exits resolve through the normal block lookup, which re-validates.
func sbInRO(b *block, roLimit uint32) bool {
	for i := range b.uops {
		u := &b.uops[i]
		if u.EIP < PageSize || u.EIP > roLimit || u.Next > roLimit {
			return false
		}
	}
	return true
}

// BlockCount reports how many decoded fragments the snapshot carries
// (exposed for the evaluation harness).
func (s *Snapshot) BlockCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// SBCount reports how many absorbed superblocks the snapshot carries.
func (s *Snapshot) SBCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sbs)
}

// DropSuperblocks discards the snapshot's absorbed superblocks, so
// subsequent NewVM/Reset materializations profile and form their own —
// the ablation hook for measuring what absorbed traces are worth.
func (s *Snapshot) DropSuperblocks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sbs = make(map[uint32]*sbRecord)
}

// Footprint estimates the resident bytes a snapshot pins: the stored
// memory image plus the translated block cache. It is the accounting
// unit for content-addressed snapshot caches with a byte budget. Blocks
// absorbed after the call are not re-counted; their total is bounded by
// the decoder's read-only text, which the image term already dominates.
func (s *Snapshot) Footprint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := int64(len(s.low)) + int64(len(s.high))
	for _, b := range s.blocks {
		n += blockFootprint(b)
	}
	for _, r := range s.sbs {
		n += blockFootprint(r.b)
	}
	return n
}

// blockFootprint estimates one translated fragment's resident bytes.
func blockFootprint(b *block) int64 {
	return int64(len(b.insts))*int64(unsafe.Sizeof(x86.Inst{})) +
		int64(len(b.uops))*int64(unsafe.Sizeof(uop.Uop{})) +
		int64(len(b.addrs))*4 + 64
}

// BlockExport is a frozen view of a snapshot's translated block cache,
// for sharing translation work between snapshots of the same decoder
// image (e.g. the same content hash cached under two security modes).
// The blocks are immutable and shared, never copied.
type BlockExport struct {
	blocks  map[uint32]*block
	sbs     map[uint32]*sbRecord
	roLimit uint32
}

// ExportBlocks captures the snapshot's current block cache (and its
// absorbed superblocks) for import into a sibling snapshot.
func (s *Snapshot) ExportBlocks() BlockExport {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[uint32]*block, len(s.blocks))
	for addr, b := range s.blocks {
		m[addr] = b
	}
	sbs := make(map[uint32]*sbRecord, len(s.sbs))
	for addr, r := range s.sbs {
		sbs[addr] = r
	}
	return BlockExport{blocks: m, sbs: sbs, roLimit: s.roLimit}
}

// ImportBlocks folds an exported block cache into the snapshot and
// reports how many fragments were taken. Only fragments lying entirely
// inside the read-only region of BOTH snapshots are imported: those
// bytes are fixed by the decoder image, so a fragment translated for one
// snapshot of the image is valid for every other. Callers are
// responsible for only importing across snapshots of the same decoder
// content (the cache keys imports by content hash).
func (s *Snapshot) ImportBlocks(e BlockExport) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for addr, b := range e.blocks {
		if _, ok := s.blocks[addr]; ok {
			continue
		}
		if addr >= PageSize && b.end <= s.roLimit && b.end <= e.roLimit {
			s.blocks[addr] = b
			n++
		}
	}
	for addr, r := range e.sbs {
		if _, ok := s.sbs[addr]; ok {
			continue
		}
		if _, ok := s.blocks[addr]; ok && sbInRO(r.b, min(s.roLimit, e.roLimit)) {
			s.sbs[addr] = r
			n++
		}
	}
	return n
}

// SetFuel sets the remaining instruction budget to an absolute value —
// the per-stream discipline: each stream gets exactly its own budget,
// never the leftovers of earlier streams.
func (v *VM) SetFuel(n int64) { v.fuel = n }

// StreamFuel is the standard absolute per-stream instruction budget for
// decoding a payload of n bytes: generous per input byte plus a flat
// floor, but never carried over between streams. Every per-stream
// consumer (the archive reader, vxrun, the benchmarks) budgets through
// this one function so the policy cannot silently diverge.
func StreamFuel(n int) int64 { return int64(n)*4096 + 1<<30 }
