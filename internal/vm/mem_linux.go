//go:build linux

package vm

import (
	"runtime"
	"syscall"
)

// guestMem owns one guest address space allocated outside the Go heap.
// The VM that uses the buffer holds the owner; when the VM becomes
// unreachable the finalizer returns the mapping to the kernel.
type guestMem struct {
	buf []byte
}

// allocGuestMem returns a zeroed guest address space of the given size.
//
// On Linux the buffer is an anonymous private mapping rather than a Go
// heap allocation. The distinction is the VM materialization cost: a
// heap make() of a large buffer must clear it word by word when the
// allocator reuses a span (~13ms for 64 MiB), while a fresh mapping is
// backed by kernel zero pages that fault in lazily, so a new VM costs
// page-table setup plus its image copy — microseconds, not
// milliseconds. That difference is what lets a disk-warm artifact load
// stay in the latency class of an in-process warm hit. MAP_NORESERVE
// keeps a mostly-untouched 1 GiB guest from charging swap it will
// never use.
//
// The mapping is released by a finalizer on the returned owner, which
// the VM must keep referenced for as long as the buffer is in use; a
// failed mmap falls back to the heap (owner carries a nil-release).
func allocGuestMem(size uint32) (*guestMem, []byte) {
	if size == 0 {
		return &guestMem{}, nil
	}
	buf, err := syscall.Mmap(-1, 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE|syscall.MAP_NORESERVE)
	if err != nil {
		return &guestMem{}, make([]byte, size)
	}
	g := &guestMem{buf: buf}
	runtime.SetFinalizer(g, (*guestMem).release)
	return g, buf
}

func (g *guestMem) release() {
	if g.buf != nil {
		syscall.Munmap(g.buf)
		g.buf = nil
	}
}
