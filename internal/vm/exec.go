package vm

import (
	"math/bits"

	"vxa/internal/x86"
)

// load/store helpers — all guest accesses funnel through these, which is
// where the sandbox is enforced.

func (v *VM) load(addr, size uint32) (uint32, error) {
	if !v.readable(addr, size) {
		return 0, &Trap{Kind: TrapMemory, EIP: v.eip, Addr: addr}
	}
	m := v.mem
	switch size {
	case 1:
		return uint32(m[addr]), nil
	case 2:
		return uint32(m[addr]) | uint32(m[addr+1])<<8, nil
	default:
		return uint32(m[addr]) | uint32(m[addr+1])<<8 |
			uint32(m[addr+2])<<16 | uint32(m[addr+3])<<24, nil
	}
}

func (v *VM) store(addr, size, val uint32) error {
	if !v.writable(addr, size) {
		k := TrapMemory
		if v.readable(addr, size) {
			k = TrapWrite
		}
		return &Trap{Kind: k, EIP: v.eip, Addr: addr}
	}
	m := v.mem
	switch size {
	case 1:
		m[addr] = byte(val)
	case 2:
		m[addr] = byte(val)
		m[addr+1] = byte(val >> 8)
	default:
		m[addr] = byte(val)
		m[addr+1] = byte(val >> 8)
		m[addr+2] = byte(val >> 16)
		m[addr+3] = byte(val >> 24)
	}
	return nil
}

// effAddr computes the effective address of a memory operand.
func (v *VM) effAddr(a *x86.Arg) uint32 {
	addr := uint32(a.Disp)
	if a.Base != x86.NoReg {
		addr += v.regs[a.Base]
	}
	if a.Index != x86.NoReg {
		addr += v.regs[a.Index] * uint32(a.Scale)
	}
	return addr
}

// readReg reads a register operand of the given width, zero-extended.
func (v *VM) readReg(r x86.Reg, size uint8) uint32 {
	if size == 1 {
		if r < 4 {
			return v.regs[r] & 0xFF
		}
		return (v.regs[r-4] >> 8) & 0xFF // AH/CH/DH/BH
	}
	return v.regs[r]
}

func (v *VM) writeReg(r x86.Reg, size uint8, val uint32) {
	if size == 1 {
		if r < 4 {
			v.regs[r] = v.regs[r]&^uint32(0xFF) | val&0xFF
		} else {
			v.regs[r-4] = v.regs[r-4]&^uint32(0xFF00) | (val&0xFF)<<8
		}
		return
	}
	v.regs[r] = val
}

// readArg reads an operand value, zero-extended to 32 bits.
func (v *VM) readArg(a *x86.Arg) (uint32, error) {
	switch a.Kind {
	case x86.KindReg:
		return v.readReg(a.Reg, a.Size), nil
	case x86.KindImm:
		if a.Size == 1 {
			return uint32(a.Imm) & 0xFF, nil
		}
		return uint32(a.Imm), nil
	case x86.KindMem:
		return v.load(v.effAddr(a), uint32(a.Size))
	}
	return 0, &Trap{Kind: TrapIllegal, EIP: v.eip, Msg: "bad operand"}
}

func (v *VM) writeArg(a *x86.Arg, val uint32) error {
	switch a.Kind {
	case x86.KindReg:
		v.writeReg(a.Reg, a.Size, val)
		return nil
	case x86.KindMem:
		return v.store(v.effAddr(a), uint32(a.Size), val)
	}
	return &Trap{Kind: TrapIllegal, EIP: v.eip, Msg: "bad store operand"}
}

// widthMask and signBit return the value mask and sign bit for an operand
// width in bytes.
func widthMask(size uint8) uint32 {
	if size == 1 {
		return 0xFF
	}
	return 0xFFFFFFFF
}

func signBit(size uint8) uint32 {
	if size == 1 {
		return 0x80
	}
	return 0x80000000
}

// setSZP sets the sign, zero and parity flags from a result of the given
// width. PF considers only the low byte, as on hardware.
func (v *VM) setSZP(res uint32, size uint8) {
	res &= widthMask(size)
	v.zf = res == 0
	v.sf = res&signBit(size) != 0
	v.pf = bits.OnesCount8(uint8(res))%2 == 0
}

func (v *VM) setLogicFlags(res uint32, size uint8) {
	v.cf, v.of = false, false
	v.setSZP(res, size)
}

// addFlags computes a+b+carry of the given width and sets CF/OF/SZP.
func (v *VM) addFlags(a, b uint32, carry uint32, size uint8) uint32 {
	mask := widthMask(size)
	a &= mask
	b &= mask
	wide := uint64(a) + uint64(b) + uint64(carry)
	res := uint32(wide) & mask
	v.cf = wide > uint64(mask)
	v.of = (^(a ^ b) & (a ^ res) & signBit(size)) != 0
	v.setSZP(res, size)
	return res
}

// subFlags computes a-b-borrow of the given width and sets CF/OF/SZP.
func (v *VM) subFlags(a, b uint32, borrow uint32, size uint8) uint32 {
	mask := widthMask(size)
	a &= mask
	b &= mask
	res := (a - b - borrow) & mask
	v.cf = uint64(a) < uint64(b)+uint64(borrow)
	v.of = ((a ^ b) & (a ^ res) & signBit(size)) != 0
	v.setSZP(res, size)
	return res
}

// cond evaluates a condition code against the current flags.
func (v *VM) cond(cc x86.CC) bool {
	switch cc {
	case x86.CCO:
		return v.of
	case x86.CCNO:
		return !v.of
	case x86.CCB:
		return v.cf
	case x86.CCAE:
		return !v.cf
	case x86.CCE:
		return v.zf
	case x86.CCNE:
		return !v.zf
	case x86.CCBE:
		return v.cf || v.zf
	case x86.CCA:
		return !v.cf && !v.zf
	case x86.CCS:
		return v.sf
	case x86.CCNS:
		return !v.sf
	case x86.CCP:
		return v.pf
	case x86.CCNP:
		return !v.pf
	case x86.CCL:
		return v.sf != v.of
	case x86.CCGE:
		return v.sf == v.of
	case x86.CCLE:
		return v.zf || v.sf != v.of
	default: // CCG
		return !v.zf && v.sf == v.of
	}
}

func (v *VM) push32(val uint32) error {
	sp := v.regs[x86.ESP] - 4
	if err := v.store(sp, 4, val); err != nil {
		return err
	}
	v.regs[x86.ESP] = sp
	return nil
}

func (v *VM) pop32() (uint32, error) {
	sp := v.regs[x86.ESP]
	val, err := v.load(sp, 4)
	if err != nil {
		return 0, err
	}
	v.regs[x86.ESP] = sp + 4
	return val, nil
}

// exec executes one instruction located at addr. On return v.eip points
// at the next instruction to execute.
func (v *VM) exec(inst *x86.Inst, addr uint32) error {
	v.eip = addr // so traps report the faulting instruction
	next := addr + uint32(inst.Len)

	switch inst.Op {
	case x86.MOV:
		val, err := v.readArg(&inst.Src)
		if err != nil {
			return err
		}
		if err := v.writeArg(&inst.Dst, val); err != nil {
			return err
		}

	case x86.MOVZX:
		val, err := v.readArg(&inst.Src)
		if err != nil {
			return err
		}
		v.regs[inst.Dst.Reg] = val // readArg already zero-extends

	case x86.MOVSX:
		val, err := v.readArg(&inst.Src)
		if err != nil {
			return err
		}
		if inst.Src.Size == 1 {
			val = uint32(int32(int8(val)))
		} else {
			val = uint32(int32(int16(val)))
		}
		v.regs[inst.Dst.Reg] = val

	case x86.LEA:
		v.regs[inst.Dst.Reg] = v.effAddr(&inst.Src)

	case x86.XCHG:
		a, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		b, err := v.readArg(&inst.Src)
		if err != nil {
			return err
		}
		if err := v.writeArg(&inst.Dst, b); err != nil {
			return err
		}
		if err := v.writeArg(&inst.Src, a); err != nil {
			return err
		}

	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR, x86.CMP, x86.TEST:
		if err := v.alu(inst); err != nil {
			return err
		}

	case x86.INC, x86.DEC:
		val, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		cf := v.cf // INC/DEC preserve CF
		var res uint32
		if inst.Op == x86.INC {
			res = v.addFlags(val, 1, 0, inst.Dst.Size)
		} else {
			res = v.subFlags(val, 1, 0, inst.Dst.Size)
		}
		v.cf = cf
		if err := v.writeArg(&inst.Dst, res); err != nil {
			return err
		}

	case x86.NEG:
		val, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		res := v.subFlags(0, val, 0, inst.Dst.Size)
		v.cf = val&widthMask(inst.Dst.Size) != 0
		if err := v.writeArg(&inst.Dst, res); err != nil {
			return err
		}

	case x86.NOT:
		val, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		if err := v.writeArg(&inst.Dst, ^val); err != nil {
			return err
		}

	case x86.IMUL:
		src, err := v.readArg(&inst.Src)
		if err != nil {
			return err
		}
		var a uint32
		if inst.Aux.Kind == x86.KindImm {
			a = uint32(inst.Aux.Imm)
		} else {
			a = v.regs[inst.Dst.Reg]
		}
		full := int64(int32(a)) * int64(int32(src))
		res := uint32(full)
		v.regs[inst.Dst.Reg] = res
		over := full != int64(int32(res))
		v.cf, v.of = over, over
		v.setSZP(res, 4) // SF/ZF/PF architecturally undefined; we define them

	case x86.MUL1:
		src, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		full := uint64(v.regs[x86.EAX]) * uint64(src)
		v.regs[x86.EAX] = uint32(full)
		v.regs[x86.EDX] = uint32(full >> 32)
		over := v.regs[x86.EDX] != 0
		v.cf, v.of = over, over
		v.setSZP(uint32(full), 4)

	case x86.IMUL1:
		src, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		full := int64(int32(v.regs[x86.EAX])) * int64(int32(src))
		v.regs[x86.EAX] = uint32(full)
		v.regs[x86.EDX] = uint32(uint64(full) >> 32)
		over := full != int64(int32(full))
		v.cf, v.of = over, over
		v.setSZP(uint32(full), 4)

	case x86.DIV:
		src, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		if src == 0 {
			return &Trap{Kind: TrapDivide, EIP: addr}
		}
		dividend := uint64(v.regs[x86.EDX])<<32 | uint64(v.regs[x86.EAX])
		q := dividend / uint64(src)
		if q > 0xFFFFFFFF {
			return &Trap{Kind: TrapDivide, EIP: addr, Msg: "quotient overflow"}
		}
		v.regs[x86.EAX] = uint32(q)
		v.regs[x86.EDX] = uint32(dividend % uint64(src))

	case x86.IDIV:
		src, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		if src == 0 {
			return &Trap{Kind: TrapDivide, EIP: addr}
		}
		dividend := int64(uint64(v.regs[x86.EDX])<<32 | uint64(v.regs[x86.EAX]))
		divisor := int64(int32(src))
		q := dividend / divisor
		if q > 0x7FFFFFFF || q < -0x80000000 {
			return &Trap{Kind: TrapDivide, EIP: addr, Msg: "quotient overflow"}
		}
		v.regs[x86.EAX] = uint32(int32(q))
		v.regs[x86.EDX] = uint32(int32(dividend % divisor))

	case x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR:
		if err := v.shift(inst); err != nil {
			return err
		}

	case x86.CDQ:
		v.regs[x86.EDX] = uint32(int32(v.regs[x86.EAX]) >> 31)

	case x86.PUSH:
		val, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		if err := v.push32(val); err != nil {
			return err
		}

	case x86.POP:
		val, err := v.pop32()
		if err != nil {
			return err
		}
		if err := v.writeArg(&inst.Dst, val); err != nil {
			return err
		}

	case x86.CALL:
		if err := v.push32(next); err != nil {
			return err
		}
		v.eip = next + uint32(inst.Rel)
		return nil

	case x86.CALLM:
		target, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		if err := v.push32(next); err != nil {
			return err
		}
		v.eip = target
		return nil

	case x86.RET:
		target, err := v.pop32()
		if err != nil {
			return err
		}
		if inst.Dst.Kind == x86.KindImm {
			v.regs[x86.ESP] += uint32(inst.Dst.Imm)
		}
		v.eip = target
		return nil

	case x86.JMP:
		v.eip = next + uint32(inst.Rel)
		return nil

	case x86.JMPM:
		target, err := v.readArg(&inst.Dst)
		if err != nil {
			return err
		}
		v.eip = target
		return nil

	case x86.JCC:
		if v.cond(inst.CC) {
			v.eip = next + uint32(inst.Rel)
		} else {
			v.eip = next
		}
		return nil

	case x86.SETCC:
		var val uint32
		if v.cond(inst.CC) {
			val = 1
		}
		if err := v.writeArg(&inst.Dst, val); err != nil {
			return err
		}

	case x86.INT:
		v.eip = next // the guest resumes after the gate
		if inst.Dst.Imm != 0x80 {
			return &Trap{Kind: TrapSyscall, EIP: addr,
				Msg: "interrupt vector not the VXA syscall gate"}
		}
		return v.syscall()

	case x86.NOP:

	case x86.HLT:
		return &Trap{Kind: TrapIllegal, EIP: addr, Msg: "privileged instruction"}

	case x86.UD2:
		return &Trap{Kind: TrapIllegal, EIP: addr, Msg: "ud2"}

	case x86.MOVSB, x86.MOVSD, x86.STOSB, x86.STOSD:
		if err := v.stringOp(inst); err != nil {
			return err
		}

	default:
		return &Trap{Kind: TrapIllegal, EIP: addr, Msg: inst.Op.String()}
	}

	v.eip = next
	return nil
}

func (v *VM) alu(inst *x86.Inst) error {
	a, err := v.readArg(&inst.Dst)
	if err != nil {
		return err
	}
	b, err := v.readArg(&inst.Src)
	if err != nil {
		return err
	}
	size := inst.Dst.Size
	var res uint32
	write := true
	switch inst.Op {
	case x86.ADD:
		res = v.addFlags(a, b, 0, size)
	case x86.ADC:
		c := uint32(0)
		if v.cf {
			c = 1
		}
		res = v.addFlags(a, b, c, size)
	case x86.SUB:
		res = v.subFlags(a, b, 0, size)
	case x86.SBB:
		c := uint32(0)
		if v.cf {
			c = 1
		}
		res = v.subFlags(a, b, c, size)
	case x86.CMP:
		v.subFlags(a, b, 0, size)
		write = false
	case x86.AND:
		res = (a & b) & widthMask(size)
		v.setLogicFlags(res, size)
	case x86.OR:
		res = (a | b) & widthMask(size)
		v.setLogicFlags(res, size)
	case x86.XOR:
		res = (a ^ b) & widthMask(size)
		v.setLogicFlags(res, size)
	case x86.TEST:
		v.setLogicFlags(a&b, size)
		write = false
	}
	if !write {
		return nil
	}
	return v.writeArg(&inst.Dst, res)
}

func (v *VM) shift(inst *x86.Inst) error {
	val, err := v.readArg(&inst.Dst)
	if err != nil {
		return err
	}
	cntv, err := v.readArg(&inst.Src)
	if err != nil {
		return err
	}
	size := inst.Dst.Size
	w := uint32(size) * 8
	count := cntv & 31
	if count == 0 {
		// Shift by zero changes neither the value nor any flags.
		return nil
	}
	mask := widthMask(size)
	val &= mask
	var res uint32
	switch inst.Op {
	case x86.SHL:
		if count <= w {
			v.cf = val&(1<<(w-count)) != 0
		} else {
			v.cf = false
		}
		if count >= w {
			res = 0
		} else {
			res = (val << count) & mask
		}
		v.of = ((res & signBit(size)) != 0) != v.cf
		v.setSZP(res, size)
	case x86.SHR:
		if count <= w {
			v.cf = val&(1<<(count-1)) != 0
		} else {
			v.cf = false
		}
		if count >= w {
			res = 0
		} else {
			res = val >> count
		}
		v.of = val&signBit(size) != 0 // defined for count==1; we fix it always
		v.setSZP(res, size)
	case x86.SAR:
		sv := int32(val)
		if size == 1 {
			sv = int32(int8(val))
		}
		if count >= w {
			res = uint32(sv>>31) & mask
			v.cf = sv < 0
		} else {
			v.cf = (uint32(sv)>>(count-1))&1 != 0
			res = uint32(sv>>count) & mask
		}
		v.of = false
		v.setSZP(res, size)
	case x86.ROL:
		c := count % w
		res = (val<<c | val>>(w-c)) & mask
		if c == 0 {
			res = val
		}
		v.cf = res&1 != 0
		v.of = ((res & signBit(size)) != 0) != v.cf
		// Rotates do not affect SF/ZF/PF.
	case x86.ROR:
		c := count % w
		res = (val>>c | val<<(w-c)) & mask
		if c == 0 {
			res = val
		}
		v.cf = res&signBit(size) != 0
		v.of = ((res&signBit(size) != 0) != (res&(signBit(size)>>1) != 0))
	}
	return v.writeArg(&inst.Dst, res)
}

// stringOp implements MOVSB/MOVSD/STOSB/STOSD with an optional REP
// prefix. The direction flag is architecturally always clear in the VXA
// subset (no STD instruction exists), so strings always run forward.
func (v *VM) stringOp(inst *x86.Inst) error {
	width := uint32(1)
	if inst.Op == x86.MOVSD || inst.Op == x86.STOSD {
		width = 4
	}
	count := uint32(1)
	if inst.Rep {
		count = v.regs[x86.ECX]
		if count == 0 {
			return nil
		}
	}
	n := count * width
	if n/width != count {
		return &Trap{Kind: TrapMemory, EIP: v.eip, Addr: v.regs[x86.EDI], Msg: "rep length overflow"}
	}
	dst := v.regs[x86.EDI]
	if !v.writable(dst, n) {
		return &Trap{Kind: TrapMemory, EIP: v.eip, Addr: dst}
	}
	switch inst.Op {
	case x86.MOVSB, x86.MOVSD:
		src := v.regs[x86.ESI]
		if !v.readable(src, n) {
			return &Trap{Kind: TrapMemory, EIP: v.eip, Addr: src}
		}
		if dst > src && dst < src+n {
			// Hardware MOVS copies element by element in ascending order,
			// so a copy whose destination overlaps its source propagates
			// the leading bytes (LZ77 decoders depend on this). Go's copy
			// is memmove, so emulate the architectural behaviour directly.
			for i := uint32(0); i < n; i++ {
				v.mem[dst+i] = v.mem[src+i]
			}
		} else {
			copy(v.mem[dst:dst+n], v.mem[src:src+n])
		}
		v.regs[x86.ESI] = src + n
	case x86.STOSB:
		al := byte(v.regs[x86.EAX])
		seg := v.mem[dst : dst+n]
		for i := range seg {
			seg[i] = al
		}
	case x86.STOSD:
		eax := v.regs[x86.EAX]
		for off := uint32(0); off < n; off += 4 {
			v.mem[dst+off] = byte(eax)
			v.mem[dst+off+1] = byte(eax >> 8)
			v.mem[dst+off+2] = byte(eax >> 16)
			v.mem[dst+off+3] = byte(eax >> 24)
		}
	}
	v.regs[x86.EDI] = dst + n
	if inst.Rep {
		v.regs[x86.ECX] = 0
		// Charge fuel for the iterations beyond the one already counted.
		if count > 1 {
			v.fuel -= int64(count - 1)
			v.stats.Steps += uint64(count - 1)
		}
	}
	return nil
}
