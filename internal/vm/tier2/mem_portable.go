//go:build !(amd64 || 386 || arm64 || ppc64le || wasm)

package tier2

// Portable guest word access, kept in lockstep with vm's
// uexec_portable.go: correct for big-endian hosts and platforms without
// guaranteed unaligned word access.

func le32(m []byte, addr uint32) uint32 {
	mm := m[addr : addr+4]
	return uint32(mm[0]) | uint32(mm[1])<<8 | uint32(mm[2])<<16 | uint32(mm[3])<<24
}

func st32(m []byte, addr, val uint32) {
	mm := m[addr : addr+4]
	mm[0] = byte(val)
	mm[1] = byte(val >> 8)
	mm[2] = byte(val >> 16)
	mm[3] = byte(val >> 24)
}
