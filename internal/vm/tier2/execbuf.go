package tier2

// execBuf owns one executable code mapping for a native trace. The
// platform-specific backend (native_amd64.go) allocates and seals it;
// on platforms without a native backend it is never instantiated. The
// Trace keeps the pointer so the mapping outlives every shim closure
// that can jump into it; a finalizer returns it to the kernel when the
// trace (and with it the owning superblock) becomes unreachable.
type execBuf struct {
	buf []byte
}
