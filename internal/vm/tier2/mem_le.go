//go:build amd64 || 386 || arm64 || ppc64le || wasm

package tier2

import "unsafe"

// Guest word access, kept in lockstep with vm's uexec_le.go: on
// little-endian hosts with architecturally guaranteed unaligned access,
// one machine load/store instead of four byte accesses. The leading
// index expression keeps Go-level memory safety; callers have already
// done the sandbox check.

func le32(m []byte, addr uint32) uint32 {
	_ = m[addr+3]
	return *(*uint32)(unsafe.Pointer(&m[addr]))
}

func st32(m []byte, addr, val uint32) {
	_ = m[addr+3]
	*(*uint32)(unsafe.Pointer(&m[addr])) = val
}
