//go:build amd64 && linux

#include "textflag.h"

// func jitcall(code uintptr, m *Machine) int32
//
// Enters emitted trace code with the Machine pointer in DI. The emitted
// code follows a private convention: DI = *Machine for the whole run,
// SI = guest memory base (loaded by the trace prologue), AX/CX/DX/R8-R11
// scratch, exit status returned in AX. It never calls back into Go,
// never grows the stack beyond this frame plus one return address, and
// preserves all callee-saved registers (including R14/g), so NOSPLIT is
// safe and the goroutine state stays coherent across the call.
TEXT ·jitcall(SB), NOSPLIT, $0-20
	MOVQ code+0(FP), AX
	MOVQ m+8(FP), DI
	CALL AX
	MOVL AX, ret+16(FP)
	RET
