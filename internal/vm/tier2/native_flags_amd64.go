package tier2

import (
	"unsafe"

	"vxa/internal/vm/uop"
	"vxa/internal/x86"
)

// Static lazy-flag tracking for the native backend.
//
// The closure backend materializes EFLAGS bits on demand by inspecting
// Fl.Op at run time. The native backend instead tracks the flag
// representation at COMPILE time: emission walks the trace linearly, so
// at any micro-op the last unconditional flag writer earlier in the
// trace is known statically, and the materialization sequence for
// exactly that FlagOp can be emitted inline. The trace entry state is
// pinned by contract instead of tracked: a trace whose consumers read
// flags before any in-trace writer sets Trace.NeedFlags, and the glue
// materializes the VM's flags before every entry, so the entry state
// is statically FlagNone; the loop back edge then re-materializes
// (matAll) whenever the body leaves a record behind, keeping the
// invariant on every iteration. Only a conditional writer (ShiftRCL
// skips its record when the masked count is zero) leaves the state
// unknown (flUnknown) and makes later consumers bail back to tier-1.
//
// Every sequence below mirrors a formula in uop/flags.go or a Machine
// accessor; none relies on host flag bits that x86 leaves undefined
// (shift OF, for one, is computed from the record, not replayed).

const (
	flUnknown = -1 // no statically-known writer: consumers bail
	flEntry   = -2 // trace entry: FlagNone, guaranteed by the NeedFlags glue
)

var (
	offFlKeep   = offFl + 1 // Fl.KeptCF; layout asserted in native_amd64.go
	offFlagsMat = int32(unsafe.Offsetof(zm.FlagsMaterialized))
)

// curFl resolves the tracked state for a consumer. Reading the entry
// state leans on the glue contract — runTier2 materializes the VM's
// flags before entering a NeedFlags trace, so the first iteration
// arrives with Fl.Op == FlagNone — and marks the trace as needing it.
func (e *nemit) curFl() uop.FlagOp {
	if e.flOp == flEntry {
		e.usedEntry = true
		return uop.FlagNone
	}
	return uop.FlagOp(e.flOp)
}

// matAll converts the current record to the eager representation —
// the five bools from the record, then Op = FlagNone — mirroring
// VM.materializeFlags (including its materialization counts: the
// extractors add 5, or 3 for the FlagSZP partial record). Emitted on
// the loop back edge of a trace that consumed its entry state, so
// every iteration sees the same FlagNone entry the glue guaranteed
// the first one. Does not advance e.flOp: a second looping edge of
// the same trace must still see the real end state.
func (e *nemit) matAll() {
	a := &e.a
	if uop.FlagOp(e.flOp) != uop.FlagSZP { // SZP keeps CF/OF eager already
		e.cfValue(hAX)
		a.storeM8(offCF, hAX)
		e.ofValue(hAX)
		a.storeM8(offOF, hAX)
	}
	e.zfValue(hAX)
	a.storeM8(offZF, hAX)
	e.sfValue(hAX)
	a.storeM8(offSF, hAX)
	e.pfValue(hAX)
	a.storeM8(offPF, hAX)
	a.storeMI8(offFlOp, byte(uop.FlagNone))
}

// cfValue leaves the guest CF as 0 or 1 in dst, mirroring
// Machine.fCF for the statically-known record e.flOp (which must not
// be flUnknown). Clobbers CX, DX and the host flags; dst must be
// neither of those.
func (e *nemit) cfValue(dst int) {
	a := &e.a
	switch op := e.curFl(); op {
	case uop.FlagNone, uop.FlagSZP:
		a.loadM8(dst, offCF) // eager bool is authoritative
		return
	case uop.FlagAddKeep, uop.FlagSubKeep:
		a.loadM8(dst, offFlKeep)
	case uop.FlagLogic, uop.FlagLogic8:
		a.movRI(dst, 0)
	case uop.FlagAdd:
		a.loadM(hCX, offFlA)
		a.aluRM(aluAddRM, hCX, offFlB)
		a.movRI(dst, 0)
		a.setcc(byte(x86.CCB), dst) // carry out of A+B
	case uop.FlagAdc:
		a.loadM(hCX, offFlCin)
		a.shiftRI(shrExt, hCX, 1) // host CF := Cin (Cin is 0 or 1)
		a.loadM(hDX, offFlA)
		a.aluRM(aluAdcRM, hDX, offFlB)
		a.movRI(dst, 0)
		a.setcc(byte(x86.CCB), dst)
	case uop.FlagSub, uop.FlagSub8:
		a.loadM(hCX, offFlA)
		a.aluRM(aluCmpRM, hCX, offFlB)
		a.movRI(dst, 0)
		a.setcc(byte(x86.CCB), dst) // A < B
	case uop.FlagSbb:
		// A < B+Cin over 33 bits: if B+Cin wraps 32 bits the borrow
		// is certain, otherwise compare against the 32-bit sum.
		a.loadM(hDX, offFlB)
		a.aluRM(aluAddRM, hDX, offFlCin)
		a.movRI(dst, 0)
		a.setcc(byte(x86.CCB), dst)
		a.loadM(hCX, offFlA)
		a.aluRR(aluCmpMR, hCX, hDX)
		a.movRI(hCX, 0)
		a.setcc(byte(x86.CCB), hCX)
		a.aluRR(aluOrMR, dst, hCX)
	case uop.FlagShl:
		// Bit (32-B) of A; the record guarantees B in 1..31.
		a.loadM(hCX, offFlB)
		a.movRI(hDX, 32)
		a.aluRR(aluSubMR, hDX, hCX)
		a.movRR(hCX, hDX)
		a.loadM(dst, offFlA)
		a.shiftCL(shrExt, dst)
		a.aluRI(aluAndExt, dst, 1)
	case uop.FlagShr, uop.FlagSar:
		// Bit (B-1) of A, through the matching shift for SAR.
		ext := shrExt
		if op == uop.FlagSar {
			ext = sarExt
		}
		a.loadM(hCX, offFlB)
		a.aluRI(aluSubExt, hCX, 1)
		a.loadM(dst, offFlA)
		a.shiftCL(ext, dst)
		a.aluRI(aluAndExt, dst, 1)
	case uop.FlagAdd8:
		a.loadM(dst, offFlA)
		a.aluRM(aluAddRM, dst, offFlB)
		a.shiftRI(shrExt, dst, 8) // bit 8 of an 8-bit sum
	case uop.FlagAdc8:
		a.loadM(dst, offFlA)
		a.aluRM(aluAddRM, dst, offFlB)
		a.aluRM(aluAddRM, dst, offFlCin)
		a.shiftRI(shrExt, dst, 8)
	case uop.FlagSbb8:
		// B+Cin <= 0x100: no 32-bit wrap possible, one compare does.
		a.loadM(hDX, offFlB)
		a.aluRM(aluAddRM, hDX, offFlCin)
		a.loadM(hCX, offFlA)
		a.aluRR(aluCmpMR, hCX, hDX)
		a.movRI(dst, 0)
		a.setcc(byte(x86.CCB), dst)
	}
	a.incM64(offFlagsMat)
}

// zfValue leaves the guest ZF as 0 or 1 in dst. Same clobbers as
// cfValue.
func (e *nemit) zfValue(dst int) {
	a := &e.a
	if e.curFl() == uop.FlagNone {
		a.loadM8(dst, offZF)
		return
	}
	a.loadM(hCX, offFlRes) // writers store Res pre-masked
	a.movRI(dst, 0)
	a.testRR(hCX, hCX)
	a.setcc(byte(x86.CCE), dst)
	a.incM64(offFlagsMat)
}

// sfValue leaves the guest SF as 0 or 1 in dst: the result's top bit
// at the record's width.
func (e *nemit) sfValue(dst int) {
	a := &e.a
	op := e.curFl()
	if op == uop.FlagNone {
		a.loadM8(dst, offSF)
		return
	}
	a.loadM(dst, offFlRes)
	if op >= uop.FlagAdd8 {
		a.shiftRI(shrExt, dst, 7) // Res pre-masked to 8 bits
	} else {
		a.shiftRI(shrExt, dst, 31)
	}
	a.incM64(offFlagsMat)
}

// pfValue leaves the guest PF as 0 or 1 in dst. Host PF after any
// width of TEST reflects only the low result byte — exactly the
// record formula.
func (e *nemit) pfValue(dst int) {
	a := &e.a
	if e.curFl() == uop.FlagNone {
		a.loadM8(dst, offPF)
		return
	}
	a.loadM(hCX, offFlRes)
	a.movRI(dst, 0)
	a.testRR(hCX, hCX)
	a.setcc(byte(x86.CCP), dst)
	a.incM64(offFlagsMat)
}

// ofValue leaves the guest OF as 0 or 1 in dst. The shift forms use
// the record formulas rather than a hardware replay: host OF after a
// multi-bit shift is undefined, the guest's is not.
func (e *nemit) ofValue(dst int) {
	a := &e.a
	op := e.curFl()
	switch op {
	case uop.FlagNone, uop.FlagSZP:
		a.loadM8(dst, offOF)
		return
	case uop.FlagLogic, uop.FlagLogic8, uop.FlagSar:
		a.movRI(dst, 0)
	case uop.FlagShr:
		a.loadM(dst, offFlA)
		a.shiftRI(shrExt, dst, 31)
	case uop.FlagShl:
		// OF = sign(Res) != CF; cfValue counts the materialization.
		e.cfValue(dst)
		a.loadM(hCX, offFlRes)
		a.shiftRI(shrExt, hCX, 31)
		a.aluRR(aluXorMR, dst, hCX)
		return
	default:
		// Add/sub families: signed overflow from operands and result.
		sign := uint32(0x80000000)
		if op >= uop.FlagAdd8 {
			sign = 0x80
		}
		a.loadM(dst, offFlA)
		a.loadM(hCX, offFlB)
		a.aluRR(aluXorMR, hCX, dst) // A^B
		switch op {
		case uop.FlagAdd, uop.FlagAdc, uop.FlagAddKeep, uop.FlagAdd8, uop.FlagAdc8:
			a.negNot(2, hCX) // add overflows where the signs agreed
		}
		a.loadM(hDX, offFlRes)
		a.aluRR(aluXorMR, hDX, dst) // A^Res
		a.aluRR(aluAndMR, hCX, hDX)
		a.testRI(hCX, sign)
		a.movRI(dst, 0)
		a.setcc(byte(x86.CCNE), dst)
	}
	a.incM64(offFlagsMat)
}

// flagsCond leaves the condition cc as 0 or 1 in dst, mirroring
// Machine.ucond against the statically-known flag state. sc is a
// second scratch register that must survive the per-flag sequences
// (R8 or R9). Returns false when the flag state is unknown here and
// the trace must stay on tier-1.
func (e *nemit) flagsCond(cc byte, dst, sc int) bool {
	if e.flOp == flUnknown {
		return false
	}
	a := &e.a
	switch cc &^ 1 { // the odd codes negate their even partner
	case byte(x86.CCO):
		e.ofValue(dst)
	case byte(x86.CCB):
		e.cfValue(dst)
	case byte(x86.CCE):
		e.zfValue(dst)
	case byte(x86.CCBE): // CF || ZF
		e.cfValue(dst)
		a.movRR(sc, dst)
		e.zfValue(dst)
		a.aluRR(aluOrMR, dst, sc)
	case byte(x86.CCS):
		e.sfValue(dst)
	case byte(x86.CCP):
		e.pfValue(dst)
	case byte(x86.CCL): // SF != OF
		e.ofValue(dst)
		a.movRR(sc, dst)
		e.sfValue(dst)
		a.aluRR(aluXorMR, dst, sc)
	default: // CCLE: ZF || SF != OF
		e.ofValue(dst)
		a.movRR(sc, dst)
		e.sfValue(dst)
		a.aluRR(aluXorMR, dst, sc)
		a.movRR(sc, dst)
		e.zfValue(dst)
		a.aluRR(aluOrMR, dst, sc)
	}
	if cc&1 != 0 {
		a.aluRI(aluXorExt, dst, 1)
	}
	return true
}
